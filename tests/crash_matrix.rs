//! Cross-scheme crash-consistency matrix.
//!
//! The paper's claim, stated adversarially:
//!
//! * group hashing and the logged (`-L`) baselines recover to a consistent
//!   state from a crash at **any** mutation event;
//! * the bare baselines do **not** always (that is why the paper adds
//!   logging to them for a fair comparison) — we demonstrate at least one
//!   corrupting crash for bare linear probing's backward-shift delete.

use gh_harness::{build_any, AnyScheme, SchemeKind};
use group_hashing::pmem::{
    run_with_crash, CrashPlan, CrashResolution, PmemRead, SimConfig, SimPmem,
};
use group_hashing::table::HashScheme;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Builds a populated table, then crashes one extra operation at every
/// event offset under several resolutions; recovery must restore full
/// consistency and all committed items each time.
fn crash_everywhere(kind: SchemeKind) {
    let seed = 11;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let keys: Vec<u64> = (0..160u64).collect();

    for op_is_delete in [false, true] {
        for how in [
            CrashResolution::DropUnflushed,
            CrashResolution::PersistAll,
            CrashResolution::Alternate { persist_first: true },
            CrashResolution::Alternate { persist_first: false },
            CrashResolution::Random(7),
        ] {
            let mut event = 0u64;
            loop {
                let (mut pm, mut table) =
                    build_any::<u64, u64>(kind, 1 << 9, seed, SimConfig::fast_test(), 32);
                for &k in &keys {
                    table.insert(&mut pm, k, k + 1).unwrap();
                }
                let victim = keys[rng.gen_range(0..keys.len())];
                let fresh = 10_000 + event;

                let base = pm.events();
                pm.set_crash_plan(Some(CrashPlan {
                    at_event: base + event,
                }));
                let completed = run_with_crash(|| {
                    if op_is_delete {
                        assert!(table.remove(&mut pm, &victim));
                    } else {
                        table.insert(&mut pm, fresh, 1).unwrap();
                    }
                })
                .is_ok();
                if completed {
                    break; // scanned every event of this op
                }
                pm.crash(how);

                // Re-open from raw bytes.
                let mut table = reopen(kind, &mut pm);
                table.recover(&mut pm);
                table.check_consistency(&pm).unwrap_or_else(|e| {
                    panic!("{kind:?} delete={op_is_delete} event={event} {how:?}: {e}")
                });
                // Committed keys (other than an in-flight delete victim)
                // must be present with their values.
                for &k in &keys {
                    if op_is_delete && k == victim {
                        let got = table.get(&pm, &k);
                        assert!(
                            got == Some(k + 1) || got.is_none(),
                            "{kind:?}: torn delete of {k}"
                        );
                    } else {
                        assert_eq!(
                            table.get(&pm, &k),
                            Some(k + 1),
                            "{kind:?} delete={op_is_delete} event={event} {how:?}: lost key {k}"
                        );
                    }
                }
                event += 1;
                assert!(event < 500, "{kind:?}: operation never completed");
            }
        }
    }
}

/// Reopens a scheme from pool bytes (sizes must match `crash_everywhere`).
fn reopen(kind: SchemeKind, pm: &mut SimPmem) -> AnyScheme<SimPmem, u64, u64> {
    use group_hashing::baselines::{Iceberg, LinearProbing, PathHash, Pfht};
    use group_hashing::core::GroupHash;
    use group_hashing::pmem::Region;
    let region = Region::new(0, pm.len());
    match kind {
        SchemeKind::Linear | SchemeKind::LinearL => {
            AnyScheme::Linear(LinearProbing::open(pm, region).unwrap())
        }
        SchemeKind::Pfht | SchemeKind::PfhtL => AnyScheme::Pfht(Pfht::open(pm, region).unwrap()),
        SchemeKind::Path | SchemeKind::PathL => AnyScheme::Path(PathHash::open(pm, region).unwrap()),
        SchemeKind::Iceberg | SchemeKind::IcebergL => {
            AnyScheme::Iceberg(Iceberg::open(pm, region).unwrap())
        }
        SchemeKind::Group | SchemeKind::Group2C => {
            AnyScheme::Group(GroupHash::open(pm, region).unwrap())
        }
    }
}

#[test]
fn group_hash_crash_safe_everywhere() {
    crash_everywhere(SchemeKind::Group);
}

#[test]
fn linear_logged_crash_safe_everywhere() {
    crash_everywhere(SchemeKind::LinearL);
}

#[test]
fn pfht_logged_crash_safe_everywhere() {
    crash_everywhere(SchemeKind::PfhtL);
}

#[test]
fn path_logged_crash_safe_everywhere() {
    crash_everywhere(SchemeKind::PathL);
}

/// Unlike the other bare baselines, *bare* iceberg is crash-safe at every
/// event: entries never move after insert, so its delete is a pure
/// bitmap retract — there is no multi-cell shift or displacement for a
/// crash to tear (the volatile fingerprint words are rebuilt on open).
#[test]
fn bare_iceberg_crash_safe_everywhere() {
    crash_everywhere(SchemeKind::Iceberg);
}

#[test]
fn iceberg_logged_crash_safe_everywhere() {
    crash_everywhere(SchemeKind::IcebergL);
}

/// Bare linear probing's backward-shift delete is NOT crash-safe: find a
/// crash point after which a committed key is unreachable or duplicated.
/// This is the paper's §2.2 motivation made executable.
#[test]
fn bare_linear_delete_can_corrupt() {
    let seed = 13;
    let mut corrupted = false;
    'outer: for victim_idx in 0..40usize {
        let mut event = 0u64;
        loop {
            let (mut pm, mut table) =
                build_any::<u64, u64>(SchemeKind::Linear, 1 << 8, seed, SimConfig::fast_test(), 32);
            // Dense fill to force long clusters (and thus multi-cell
            // backward shifts).
            let keys: Vec<u64> = (0..200u64).collect();
            for &k in &keys {
                table.insert(&mut pm, k, k + 1).unwrap();
            }
            let victim = keys[victim_idx * 5];

            let base = pm.events();
            pm.set_crash_plan(Some(CrashPlan {
                at_event: base + event,
            }));
            let completed = run_with_crash(|| {
                assert!(table.remove(&mut pm, &victim));
            })
            .is_ok();
            if completed {
                break;
            }
            // Most adversarial: everything unflushed persists (ordering
            // violations become visible).
            pm.crash(CrashResolution::PersistAll);
            let mut table = reopen(SchemeKind::Linear, &mut pm);
            table.recover(&mut pm);

            let structurally_broken = table.check_consistency(&pm).is_err();
            let lost_committed = keys.iter().any(|&k| {
                k != victim && table.get(&pm, &k) != Some(k + 1)
            });
            if structurally_broken || lost_committed {
                corrupted = true;
                break 'outer;
            }
            event += 1;
            assert!(event < 2000);
        }
    }
    assert!(
        corrupted,
        "expected at least one corrupting crash point in bare linear delete \
         (otherwise the paper's motivation would not hold)"
    );
}
