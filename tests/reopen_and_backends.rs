//! Cross-crate integration: re-opening tables from raw pool bytes, and
//! behavioural equality of the simulated and real pmem backends.

use group_hashing::baselines::{LinearProbing, PathHash, Pfht};
use group_hashing::core::{GroupHash, GroupHashConfig, HashScheme};
use group_hashing::pmem::{RealPmem, Region, SimConfig, SimPmem};
use group_hashing::table::ConsistencyMode;

/// All tables reconstruct exactly from their persisted header + regions.
#[test]
fn every_scheme_reopens_from_bytes() {
    // Group
    let cfg = GroupHashConfig::new(1 << 9, 32);
    let size = GroupHash::<SimPmem, u64, u64>::required_size(&cfg);
    let mut pm = SimPmem::new(size, SimConfig::fast_test());
    let region = Region::new(0, size);
    let mut t = GroupHash::<_, u64, u64>::create(&mut pm, region, cfg).unwrap();
    for k in 0..300u64 {
        t.insert(&mut pm, k, k).unwrap();
    }
    let _ = t;
    let t = GroupHash::<SimPmem, u64, u64>::open(&mut pm, region).unwrap();
    assert_eq!(t.len(&pm), 300);
    assert_eq!(t.config().group_size, 32);

    // Linear
    let size = LinearProbing::<SimPmem, u64, u64>::required_size(1 << 9);
    let mut pm = SimPmem::new(size, SimConfig::fast_test());
    let region = Region::new(0, size);
    let mut t =
        LinearProbing::<_, u64, u64>::create(&mut pm, region, 1 << 9, 5, ConsistencyMode::UndoLog)
            .unwrap();
    for k in 0..200u64 {
        t.insert(&mut pm, k, k).unwrap();
    }
    let _ = t;
    let t = LinearProbing::<SimPmem, u64, u64>::open(&mut pm, region).unwrap();
    assert_eq!(t.len(&pm), 200);
    assert_eq!(t.name(), "linear-L");

    // PFHT
    let (b, s) = Pfht::<SimPmem, u64, u64>::geometry_for(1 << 10);
    let size = Pfht::<SimPmem, u64, u64>::required_size(b, s);
    let mut pm = SimPmem::new(size, SimConfig::fast_test());
    let region = Region::new(0, size);
    let mut t =
        Pfht::<_, u64, u64>::create(&mut pm, region, b, s, 5, ConsistencyMode::None).unwrap();
    for k in 0..400u64 {
        t.insert(&mut pm, k, k).unwrap();
    }
    let _ = t;
    let t = Pfht::<SimPmem, u64, u64>::open(&mut pm, region).unwrap();
    assert_eq!(t.len(&pm), 400);

    // Path
    let size = PathHash::<SimPmem, u64, u64>::required_size(8, 6);
    let mut pm = SimPmem::new(size, SimConfig::fast_test());
    let region = Region::new(0, size);
    let mut t =
        PathHash::<_, u64, u64>::create(&mut pm, region, 8, 6, 5, ConsistencyMode::None).unwrap();
    for k in 0..250u64 {
        t.insert(&mut pm, k, k).unwrap();
    }
    let _ = t;
    let t = PathHash::<SimPmem, u64, u64>::open(&mut pm, region).unwrap();
    assert_eq!(t.len(&pm), 250);
    t.check_consistency(&pm).unwrap();
}

/// A wrong-magic open (pointing at the wrong region) fails cleanly.
#[test]
fn open_wrong_region_fails() {
    let cfg = GroupHashConfig::new(1 << 8, 16);
    let size = GroupHash::<SimPmem, u64, u64>::required_size(&cfg);
    let mut pm = SimPmem::new(size + 4096, SimConfig::fast_test());
    GroupHash::<_, u64, u64>::create(&mut pm, Region::new(0, size), cfg).unwrap();
    // Offset region: garbage header.
    assert!(GroupHash::<SimPmem, u64, u64>::open(&mut pm, Region::new(4096, size)).is_err());
    // Wrong scheme's opener on a group-hash header.
    assert!(LinearProbing::<SimPmem, u64, u64>::open(&mut pm, Region::new(0, size)).is_err());
}

/// The same operation sequence produces identical results on the
/// simulator and on the real-intrinsics backend (the table logic is
/// backend-generic; only timing differs).
#[test]
fn sim_and_real_backends_agree() {
    let cfg = GroupHashConfig::new(1 << 9, 32);
    let size = GroupHash::<SimPmem, u64, u64>::required_size(&cfg);

    let mut sim = SimPmem::new(size, SimConfig::fast_test());
    let mut real = RealPmem::with_write_latency(size, 0);
    let region = Region::new(0, size);
    let mut ts = GroupHash::<SimPmem, u64, u64>::create(&mut sim, region, cfg).unwrap();
    let mut tr = GroupHash::<RealPmem, u64, u64>::create(&mut real, region, cfg).unwrap();

    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
    let mut present = std::collections::HashSet::new();
    for step in 0..3000 {
        let k: u64 = rng.gen_range(0..700);
        match rng.gen_range(0..3) {
            0 => {
                if present.contains(&k) {
                    continue; // Algorithm 1 assumes distinct keys
                }
                let a = ts.insert(&mut sim, k, k + 2);
                let b = tr.insert(&mut real, k, k + 2);
                assert_eq!(a, b, "step {step} insert({k})");
                if a.is_ok() {
                    present.insert(k);
                }
            }
            1 => {
                assert_eq!(
                    ts.get(&sim, &k),
                    tr.get(&real, &k),
                    "step {step} get({k})"
                );
            }
            _ => {
                let a = ts.remove(&mut sim, &k);
                assert_eq!(a, tr.remove(&mut real, &k), "step {step} remove({k})");
                if a {
                    present.remove(&k);
                }
            }
        }
    }
    assert_eq!(ts.len(&sim), tr.len(&real));
    ts.check_consistency(&sim).unwrap();
    tr.check_consistency(&real).unwrap();

    // Even the raw persistent images agree: both backends execute the
    // identical store sequence into identically-sized pools.
    assert_eq!(sim.raw(), real.raw());
}

/// Facade paths work end-to-end (what the README advertises).
#[test]
fn facade_namespaces() {
    use group_hashing::hashfn::{md5, xxhash64};
    use group_hashing::traces::{RandomNum, Trace};

    assert_eq!(xxhash64(b"", 0), 0xEF46DB3751D8E999);
    assert_eq!(
        md5(b"abc"),
        [
            0x90, 0x01, 0x50, 0x98, 0x3c, 0xd2, 0x4f, 0xb0, 0xd6, 0x96, 0x3f, 0x7d, 0x28,
            0xe1, 0x7f, 0x72
        ]
    );
    let mut t = RandomNum::new(1);
    assert!(t.next_key() < 1 << 26);
}
