//! Every scheme must behave exactly like a `std::collections::HashMap`
//! oracle over long randomized operation sequences (insert/get/remove of
//! distinct keys, mixed with misses).

use gh_harness::{build_any, SchemeKind};
use group_hashing::pmem::SimConfig;
use group_hashing::table::{HashScheme, InsertError};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u16),
    Get(u16),
    Remove(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u16..512).prop_map(Op::Insert),
        (0u16..512).prop_map(Op::Get),
        (0u16..512).prop_map(Op::Remove),
    ]
}

fn check_scheme(kind: SchemeKind, ops: &[Op]) -> Result<(), TestCaseError> {
    let (mut pm, mut table) = build_any::<u64, u64>(kind, 1 << 11, 3, SimConfig::fast_test(), 64);
    let mut oracle: HashMap<u64, u64> = HashMap::new();
    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Insert(k) => {
                let k = k as u64;
                if oracle.contains_key(&k) {
                    continue; // table API assumes distinct keys
                }
                let v = k * 7 + 1;
                match table.insert(&mut pm, k, v) {
                    Ok(()) => {
                        oracle.insert(k, v);
                    }
                    Err(InsertError::TableFull) => {} // oracle unchanged
                    Err(e) => prop_assert!(false, "{kind:?} step {step}: {e}"),
                }
            }
            Op::Get(k) => {
                let k = k as u64;
                prop_assert_eq!(
                    table.get(&pm, &k),
                    oracle.get(&k).copied(),
                    "{:?} step {}: get({})",
                    kind,
                    step,
                    k
                );
            }
            Op::Remove(k) => {
                let k = k as u64;
                prop_assert_eq!(
                    table.remove(&mut pm, &k),
                    oracle.remove(&k).is_some(),
                    "{:?} step {}: remove({})",
                    kind,
                    step,
                    k
                );
            }
        }
    }
    // Final state identical.
    prop_assert_eq!(table.len(&pm), oracle.len() as u64);
    for (&k, &v) in &oracle {
        prop_assert_eq!(table.get(&pm, &k), Some(v));
    }
    table
        .check_consistency(&pm)
        .map_err(|e| TestCaseError::fail(format!("{kind:?}: {e}")))?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn group_matches_oracle(ops in prop::collection::vec(op_strategy(), 1..400)) {
        check_scheme(SchemeKind::Group, &ops)?;
    }

    #[test]
    fn linear_matches_oracle(ops in prop::collection::vec(op_strategy(), 1..400)) {
        check_scheme(SchemeKind::Linear, &ops)?;
        check_scheme(SchemeKind::LinearL, &ops)?;
    }

    #[test]
    fn pfht_matches_oracle(ops in prop::collection::vec(op_strategy(), 1..400)) {
        check_scheme(SchemeKind::Pfht, &ops)?;
        check_scheme(SchemeKind::PfhtL, &ops)?;
    }

    #[test]
    fn path_matches_oracle(ops in prop::collection::vec(op_strategy(), 1..400)) {
        check_scheme(SchemeKind::Path, &ops)?;
        check_scheme(SchemeKind::PathL, &ops)?;
    }
}

/// Deterministic long-run version (denser than the proptest cases).
#[test]
fn long_mixed_run_all_schemes() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
    let ops: Vec<Op> = (0..5000)
        .map(|_| match rng.gen_range(0..3) {
            0 => Op::Insert(rng.gen_range(0..900)),
            1 => Op::Get(rng.gen_range(0..900)),
            _ => Op::Remove(rng.gen_range(0..900)),
        })
        .collect();
    for kind in SchemeKind::ALL {
        check_scheme(kind, &ops).unwrap_or_else(|e| panic!("{kind:?}: {e:?}"));
    }
}
