//! Concurrency stress for the sharded table and the thread-safety
//! boundary of the whole stack.

use group_hashing::core::{GroupHash, GroupHashConfig, HashScheme, ShardedGroupHash};
use group_hashing::pmem::{Pmem, RealPmem, SimConfig, SimPmem};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

/// Iteration scale factor for the writer stress tests. CI runs the
/// release binary with `NVM_STRESS_ITERS` elevated (see `ci.sh`); the
/// default keeps debug-mode `cargo test` fast.
fn stress_iters(default: u64) -> u64 {
    std::env::var("NVM_STRESS_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Heavy mixed workload from many threads against the sharded table on
/// the real-intrinsics backend; afterwards every shard must be
/// structurally consistent and hold exactly the surviving keys.
#[test]
fn sharded_mixed_stress_real_backend() {
    let cfg = GroupHashConfig::new(1 << 12, 128);
    let table = Arc::new(
        ShardedGroupHash::<RealPmem, u64, u64>::create(8, cfg, |_, size| {
            RealPmem::with_write_latency(size, 0)
        })
        .unwrap(),
    );

    let threads = 8u64;
    let per_thread = 4000u64;
    let barrier = Arc::new(Barrier::new(threads as usize));
    let survivors = Arc::new(AtomicU64::new(0));

    let handles: Vec<_> = (0..threads)
        .map(|tid| {
            let table = Arc::clone(&table);
            let barrier = Arc::clone(&barrier);
            let survivors = Arc::clone(&survivors);
            std::thread::spawn(move || {
                barrier.wait();
                let mut kept = 0u64;
                for i in 0..per_thread {
                    // Disjoint key ranges per thread: deterministic final
                    // state without cross-thread coordination.
                    let k = tid * 1_000_000 + i;
                    table.insert(k, k ^ 0xABCD).unwrap();
                    if i % 3 == 0 {
                        assert_eq!(table.get(&k), Some(k ^ 0xABCD));
                    }
                    if i % 5 == 0 {
                        assert!(table.remove(&k));
                    } else {
                        kept += 1;
                    }
                }
                survivors.fetch_add(kept, Ordering::Relaxed);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    assert_eq!(table.len(), survivors.load(Ordering::Relaxed));
    table.check_consistency().unwrap();
    // Spot-check final contents.
    for tid in 0..threads {
        for i in [1u64, 2, 3, 4, 6, 7] {
            let k = tid * 1_000_000 + i;
            assert_eq!(table.get(&k), Some(k ^ 0xABCD), "key {k}");
        }
        assert_eq!(table.get(&(tid * 1_000_000)), None); // i % 5 == 0 removed
    }
}

/// The simulator backend is also Send: a whole (pool, table) pair can
/// move to another thread and continue (ownership transfer, the pattern
/// a thread-per-shard service uses).
#[test]
fn sim_pool_moves_across_threads() {
    let cfg = GroupHashConfig::new(256, 32);
    let size = GroupHash::<SimPmem, u64, u64>::required_size(&cfg);
    let mut pm = SimPmem::new(size, SimConfig::fast_test());
    let region = group_hashing::pmem::Region::new(0, size);
    let mut t = GroupHash::<SimPmem, u64, u64>::create(&mut pm, region, cfg).unwrap();
    for k in 0..100u64 {
        t.insert(&mut pm, k, k).unwrap();
    }

    let handle = std::thread::spawn(move || {
        for k in 100..200u64 {
            t.insert(&mut pm, k, k).unwrap();
        }
        (pm, t)
    });
    let (pm, t) = handle.join().unwrap();
    assert_eq!(t.len(&pm), 200);
    t.check_consistency(&pm).unwrap();
}

/// The seqlock guarantee, stressed: writers churn an *overlapping* key
/// range with multi-word in-place updates (the one mutation whose
/// visibility is not already guarded by the 8-byte bitmap commit) and
/// insert/remove over disjoint private ranges, while readers spin on
/// lock-free `get`. Readers must never observe a torn value (key bits
/// mismatching the key), a phantom miss of an always-present key, or a
/// ghost value in a private range that decodes to the wrong owner.
#[test]
fn seqlock_readers_see_no_torn_or_phantom_state() {
    const SHARED: u64 = 512; // keys 0..SHARED stay present forever
    const ROUNDS: u64 = 150;
    let encode = |k: u64, round: u64| (k << 20) | (round & ((1 << 20) - 1));

    let cfg = GroupHashConfig::new(1 << 11, 64);
    let table = Arc::new(
        ShardedGroupHash::<RealPmem, u64, u64>::create(4, cfg, |_, size| {
            RealPmem::with_write_latency(size, 0)
        })
        .unwrap(),
    );
    for k in 0..SHARED {
        table.insert(k, encode(k, 0)).unwrap();
    }

    let stop = Arc::new(AtomicU64::new(0));
    let writers: Vec<_> = (0..2u64)
        .map(|tid| {
            let table = Arc::clone(&table);
            std::thread::spawn(move || {
                let private = (tid + 1) * 1_000_000;
                for round in 1..=ROUNDS {
                    // Overlapping range: both writers update every shared
                    // key in place (two 8-byte words: racing readers
                    // would see torn values without the seqlock).
                    for k in 0..SHARED {
                        assert!(table.update_in_place(&k, encode(k, round)));
                    }
                    // Disjoint range: insert-then-remove churn, so
                    // readers race bitmap publishes and retractions.
                    for i in 0..64u64 {
                        let k = private + i;
                        table.insert(k, encode(k, round)).unwrap();
                    }
                    for i in 0..64u64 {
                        assert!(table.remove(&(private + i)));
                    }
                }
            })
        })
        .collect();

    let readers: Vec<_> = (0..2u64)
        .map(|rid| {
            let table = Arc::clone(&table);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut reads = 0u64;
                while stop.load(Ordering::Relaxed) == 0 {
                    let k = reads * (2 * rid + 1) % SHARED;
                    let v = table.get(&k).expect("phantom miss of a shared key");
                    assert_eq!(v >> 20, k, "torn value for key {k}: {v:#x}");
                    // Private ranges may or may not hold the key right
                    // now, but a hit must decode to that key.
                    let p = 1_000_000 + (reads % 64);
                    if let Some(v) = table.get(&p) {
                        assert_eq!(v >> 20, p, "ghost value for key {p}: {v:#x}");
                    }
                    reads += 1;
                }
                reads
            })
        })
        .collect();

    for w in writers {
        w.join().unwrap();
    }
    stop.store(1, Ordering::Relaxed);
    let total_reads: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(total_reads > 0);

    table.check_consistency().unwrap();
    for k in 0..SHARED {
        let v = table.get(&k).expect("shared key lost after the stress");
        assert_eq!(v >> 20, k);
    }
    // The counters are reporting-only; just prove they are wired up.
    let c = table.concurrency();
    assert!(c.seqlock_retries < u64::MAX && c.lock_waits < u64::MAX);
}

/// The seqlock guarantee for the vectorized read path: same churn as
/// `seqlock_readers_see_no_torn_or_phantom_state`, but readers issue
/// whole `get_batch` calls mixing always-present shared keys, volatile
/// private keys, and never-present keys. One sequence validation covers
/// each per-shard sub-batch, so every answer must still decode to its
/// own key (no torn values), every shared key must hit (no phantom
/// misses), and never-present keys must miss (no ghosts).
#[test]
fn seqlock_get_batch_readers_see_no_torn_or_phantom_state() {
    const SHARED: u64 = 512; // keys 0..SHARED stay present forever
    const ROUNDS: u64 = 120;
    let encode = |k: u64, round: u64| (k << 20) | (round & ((1 << 20) - 1));

    let cfg = GroupHashConfig::new(1 << 11, 64);
    let table = Arc::new(
        ShardedGroupHash::<RealPmem, u64, u64>::create(4, cfg, |_, size| {
            RealPmem::with_write_latency(size, 0)
        })
        .unwrap(),
    );
    for k in 0..SHARED {
        table.insert(k, encode(k, 0)).unwrap();
    }

    let stop = Arc::new(AtomicU64::new(0));
    let writers: Vec<_> = (0..2u64)
        .map(|tid| {
            let table = Arc::clone(&table);
            std::thread::spawn(move || {
                let private = (tid + 1) * 1_000_000;
                for round in 1..=ROUNDS {
                    for k in 0..SHARED {
                        assert!(table.update_in_place(&k, encode(k, round)));
                    }
                    for i in 0..64u64 {
                        let k = private + i;
                        table.insert(k, encode(k, round)).unwrap();
                    }
                    for i in 0..64u64 {
                        assert!(table.remove(&(private + i)));
                    }
                }
            })
        })
        .collect();

    let readers: Vec<_> = (0..2u64)
        .map(|rid| {
            let table = Arc::clone(&table);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut batches = 0u64;
                while stop.load(Ordering::Relaxed) == 0 {
                    // 64 shared + 16 churned-private + 4 never-present.
                    let keys: Vec<u64> = (0..64u64)
                        .map(|i| (batches * (2 * rid + 1) + i * 7) % SHARED)
                        .chain((0..16u64).map(|i| 1_000_000 + (batches + i) % 64))
                        .chain((0..4u64).map(|i| 5_000_000 + i))
                        .collect();
                    for (k, got) in keys.iter().zip(table.get_batch(&keys)) {
                        if *k < SHARED {
                            let v = got.expect("phantom miss of a shared key");
                            assert_eq!(v >> 20, *k, "torn value for key {k}: {v:#x}");
                        } else if *k >= 5_000_000 {
                            assert_eq!(got, None, "ghost hit for never-present key {k}");
                        } else if let Some(v) = got {
                            assert_eq!(v >> 20, *k, "ghost value for key {k}: {v:#x}");
                        }
                    }
                    batches += 1;
                }
                batches
            })
        })
        .collect();

    for w in writers {
        w.join().unwrap();
    }
    stop.store(1, Ordering::Relaxed);
    let total_batches: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(total_batches > 0);

    table.check_consistency().unwrap();
    for k in 0..SHARED {
        let v = table.get(&k).expect("shared key lost after the stress");
        assert_eq!(v >> 20, k);
    }
}

/// The `&self` read refactor must leave single-op persistence budgets
/// byte-identical to the paper's: 3 flushes / 3 fences / 2 atomic
/// writes per insert and per remove, and a `get` that costs no
/// persistence events at all.
#[test]
fn single_op_budgets_unchanged_by_shared_read_refactor() {
    let cfg = GroupHashConfig::new(256, 32);
    let size = GroupHash::<SimPmem, u64, u64>::required_size(&cfg);
    let mut pm = SimPmem::new(size, SimConfig::fast_test());
    let region = group_hashing::pmem::Region::new(0, size);
    let mut t = GroupHash::<SimPmem, u64, u64>::create(&mut pm, region, cfg).unwrap();

    pm.reset_stats();
    t.insert(&mut pm, 7, 700).unwrap();
    let s = pm.stats();
    assert_eq!((s.flushes, s.fences, s.atomic_writes), (3, 3, 2), "insert budget");

    pm.reset_stats();
    assert_eq!(t.get(&pm, &7), Some(700));
    let s = pm.stats();
    assert_eq!((s.flushes, s.fences, s.atomic_writes), (0, 0, 0), "get budget");
    assert_eq!(s.writes, 0, "get must not write");

    pm.reset_stats();
    assert!(t.remove(&mut pm, &7));
    let s = pm.stats();
    assert_eq!((s.flushes, s.fences, s.atomic_writes), (3, 3, 2), "remove budget");
}

/// The vectorized read path inherits the paper's query budget: whatever
/// prefetching and interleaving `get_batch` does, it must cost **zero**
/// flushes, zero fences, zero atomic writes, and zero plain writes —
/// prefetch is a pure hint, not a persistence event.
#[test]
fn get_batch_costs_zero_persistence_events() {
    let cfg = GroupHashConfig::new(256, 32);
    let size = GroupHash::<SimPmem, u64, u64>::required_size(&cfg);
    let mut pm = SimPmem::new(size, SimConfig::fast_test());
    let region = group_hashing::pmem::Region::new(0, size);
    let mut t = GroupHash::<SimPmem, u64, u64>::create(&mut pm, region, cfg).unwrap();
    for k in 0..200u64 {
        t.insert(&mut pm, k, k * 11).unwrap();
    }

    // Positive, negative, and mixed batches all stay event-free.
    let hits: Vec<u64> = (0..128u64).collect();
    let misses: Vec<u64> = (10_000..10_128u64).collect();
    let mixed: Vec<u64> = hits.iter().chain(misses.iter()).copied().collect();
    for keys in [&hits, &misses, &mixed] {
        pm.reset_stats();
        let out = t.get_batch(&pm, keys);
        assert_eq!(out.len(), keys.len());
        let s = pm.stats();
        assert_eq!(
            (s.flushes, s.fences, s.atomic_writes, s.writes),
            (0, 0, 0, 0),
            "get_batch budget"
        );
    }
}

/// The CAS fast path under maximum contention: one shard, so every
/// writer races every other on the same occupancy-bitmap words. All
/// inserts and removes must land exactly once (disjoint key ranges make
/// the final state deterministic), and the contention must actually be
/// observed by the counters — lost CAS attempts are retried, never
/// dropped.
#[test]
fn single_shard_cas_contention_loses_no_writes() {
    let per_thread = stress_iters(2000);
    let cfg = GroupHashConfig::new(1 << 12, 128);
    let table = Arc::new(
        ShardedGroupHash::<RealPmem, u64, u64>::create(1, cfg, |_, size| {
            RealPmem::with_write_latency(size, 0)
        })
        .unwrap(),
    );

    let threads = 4u64;
    let barrier = Arc::new(Barrier::new(threads as usize));
    let handles: Vec<_> = (0..threads)
        .map(|tid| {
            let table = Arc::clone(&table);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..per_thread {
                    let k = tid * 10_000_000 + i;
                    table.insert(k, k ^ 0xF00D).unwrap();
                    if i % 2 == 0 {
                        assert!(table.remove(&k));
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    assert_eq!(table.len(), threads * per_thread.div_ceil(2));
    table.check_consistency().unwrap();
    for tid in 0..threads {
        for i in [1u64, 3, 5] {
            let k = tid * 10_000_000 + i;
            assert_eq!(table.get(&k), Some(k ^ 0xF00D), "key {k}");
        }
        assert_eq!(table.get(&(tid * 10_000_000)), None);
    }
}

/// A single writer must never lose a CAS or wait on a latch: with no
/// contention, the lock-free fast path is exactly as cheap as the old
/// exclusive-lock path. This pins the claim structurally — a refactor
/// that introduces self-contention (e.g. a retried CAS against the
/// writer's own published state) fails here.
#[test]
fn single_writer_never_contends() {
    let cfg = GroupHashConfig::new(1 << 10, 64);
    let table = ShardedGroupHash::<RealPmem, u64, u64>::create(4, cfg, |_, size| {
        RealPmem::with_write_latency(size, 0)
    })
    .unwrap();
    for k in 0..2000u64 {
        table.insert(k, k).unwrap();
        if k % 3 == 0 {
            assert!(table.remove(&k));
        }
        if k % 7 == 0 {
            table.update_in_place(&(k / 2), k);
        }
    }
    let c = table.concurrency();
    assert_eq!(c.cas_failures, 0, "single writer lost a CAS");
    assert_eq!(c.latch_waits, 0, "single writer waited on a latch");
    table.check_consistency().unwrap();
}

/// Incremental online expansion under live write traffic: a small table
/// overflows mid-stream (triggering growth), a dedicated drainer thread
/// migrates a few entries at a time while the writers keep inserting,
/// and at the end every key must be present exactly once with its exact
/// value — migration never drops, duplicates, or misroutes an entry
/// racing a concurrent insert.
#[test]
fn expansion_mid_stream_keeps_every_write() {
    let per_thread = stress_iters(3000);
    // Deliberately undersized: the writers overflow every shard several
    // times, so inserts race both grow_shard and the drainer.
    let cfg = GroupHashConfig::new(256, 32);
    let table = Arc::new(
        ShardedGroupHash::<RealPmem, u64, u64>::create(2, cfg, |_, size| {
            RealPmem::with_write_latency(size, 0)
        })
        .unwrap(),
    );

    let threads = 2u64;
    let stop = Arc::new(AtomicU64::new(0));
    let drainer = {
        let table = Arc::clone(&table);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut steps = 0u64;
            while stop.load(Ordering::Relaxed) == 0 {
                for shard in 0..table.shard_count() {
                    if table.expand_step(shard, 8) {
                        steps += 1;
                    }
                }
                std::thread::yield_now();
            }
            steps
        })
    };
    let writers: Vec<_> = (0..threads)
        .map(|tid| {
            let table = Arc::clone(&table);
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    let k = tid * 10_000_000 + i;
                    table.insert(k, k ^ 0xBEEF).unwrap();
                    if i % 16 == 0 {
                        // Reads mid-expansion route active-then-draining.
                        assert_eq!(table.get(&k), Some(k ^ 0xBEEF));
                    }
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    stop.store(1, Ordering::Relaxed);
    drainer.join().unwrap();

    // Finish any drain still pending, then audit everything.
    for shard in 0..table.shard_count() {
        while table.expand_step(shard, 1024) {}
        assert!(!table.migration_pending(shard));
    }
    assert_eq!(table.len(), threads * per_thread);
    assert!(
        table.concurrency().migration_steps > 0,
        "the stress never exercised migration"
    );
    table.check_consistency().unwrap();
    for tid in 0..threads {
        for i in 0..per_thread {
            let k = tid * 10_000_000 + i;
            assert_eq!(table.get(&k), Some(k ^ 0xBEEF), "key {k}");
        }
    }
}

/// Concurrent read-heavy workload: many reader threads over disjoint
/// shards never block each other into inconsistency.
#[test]
fn concurrent_readers_after_bulk_population() {
    let cfg = GroupHashConfig::new(1 << 10, 64);
    let table = Arc::new(
        ShardedGroupHash::<RealPmem, u64, u64>::create(4, cfg, |_, size| {
            RealPmem::with_write_latency(size, 0)
        })
        .unwrap(),
    );
    for k in 0..3000u64 {
        table.insert(k, k * 2).unwrap();
    }

    let handles: Vec<_> = (0..6)
        .map(|r| {
            let table = Arc::clone(&table);
            std::thread::spawn(move || {
                for pass in 0..5u64 {
                    for k in (r..3000u64).step_by(6) {
                        assert_eq!(table.get(&k), Some(k * 2), "reader {r} pass {pass}");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(table.len(), 3000);
}
