//! Concurrency stress for the sharded table and the thread-safety
//! boundary of the whole stack.

use group_hashing::core::{GroupHash, GroupHashConfig, HashScheme, ShardedGroupHash};
use group_hashing::pmem::{RealPmem, SimConfig, SimPmem};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

/// Heavy mixed workload from many threads against the sharded table on
/// the real-intrinsics backend; afterwards every shard must be
/// structurally consistent and hold exactly the surviving keys.
#[test]
fn sharded_mixed_stress_real_backend() {
    let cfg = GroupHashConfig::new(1 << 12, 128);
    let size = GroupHash::<RealPmem, u64, u64>::required_size(&cfg);
    let table = Arc::new(
        ShardedGroupHash::<RealPmem, u64, u64>::create(8, cfg, |_| {
            RealPmem::with_write_latency(size, 0)
        })
        .unwrap(),
    );

    let threads = 8u64;
    let per_thread = 4000u64;
    let barrier = Arc::new(Barrier::new(threads as usize));
    let survivors = Arc::new(AtomicU64::new(0));

    let handles: Vec<_> = (0..threads)
        .map(|tid| {
            let table = Arc::clone(&table);
            let barrier = Arc::clone(&barrier);
            let survivors = Arc::clone(&survivors);
            std::thread::spawn(move || {
                barrier.wait();
                let mut kept = 0u64;
                for i in 0..per_thread {
                    // Disjoint key ranges per thread: deterministic final
                    // state without cross-thread coordination.
                    let k = tid * 1_000_000 + i;
                    table.insert(k, k ^ 0xABCD).unwrap();
                    if i % 3 == 0 {
                        assert_eq!(table.get(&k), Some(k ^ 0xABCD));
                    }
                    if i % 5 == 0 {
                        assert!(table.remove(&k));
                    } else {
                        kept += 1;
                    }
                }
                survivors.fetch_add(kept, Ordering::Relaxed);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    assert_eq!(table.len(), survivors.load(Ordering::Relaxed));
    table.check_consistency().unwrap();
    // Spot-check final contents.
    for tid in 0..threads {
        for i in [1u64, 2, 3, 4, 6, 7] {
            let k = tid * 1_000_000 + i;
            assert_eq!(table.get(&k), Some(k ^ 0xABCD), "key {k}");
        }
        assert_eq!(table.get(&(tid * 1_000_000)), None); // i % 5 == 0 removed
    }
}

/// The simulator backend is also Send: a whole (pool, table) pair can
/// move to another thread and continue (ownership transfer, the pattern
/// a thread-per-shard service uses).
#[test]
fn sim_pool_moves_across_threads() {
    let cfg = GroupHashConfig::new(256, 32);
    let size = GroupHash::<SimPmem, u64, u64>::required_size(&cfg);
    let mut pm = SimPmem::new(size, SimConfig::fast_test());
    let region = group_hashing::pmem::Region::new(0, size);
    let mut t = GroupHash::<SimPmem, u64, u64>::create(&mut pm, region, cfg).unwrap();
    for k in 0..100u64 {
        t.insert(&mut pm, k, k).unwrap();
    }

    let handle = std::thread::spawn(move || {
        for k in 100..200u64 {
            t.insert(&mut pm, k, k).unwrap();
        }
        (pm, t)
    });
    let (mut pm, t) = handle.join().unwrap();
    assert_eq!(t.len(&mut pm), 200);
    t.check_consistency(&mut pm).unwrap();
}

/// Concurrent read-heavy workload: many reader threads over disjoint
/// shards never block each other into inconsistency.
#[test]
fn concurrent_readers_after_bulk_population() {
    let cfg = GroupHashConfig::new(1 << 10, 64);
    let size = GroupHash::<RealPmem, u64, u64>::required_size(&cfg);
    let table = Arc::new(
        ShardedGroupHash::<RealPmem, u64, u64>::create(4, cfg, |_| {
            RealPmem::with_write_latency(size, 0)
        })
        .unwrap(),
    );
    for k in 0..3000u64 {
        table.insert(k, k * 2).unwrap();
    }

    let handles: Vec<_> = (0..6)
        .map(|r| {
            let table = Arc::clone(&table);
            std::thread::spawn(move || {
                for pass in 0..5u64 {
                    for k in (r..3000u64).step_by(6) {
                        assert_eq!(table.get(&k), Some(k * 2), "reader {r} pass {pass}");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(table.len(), 3000);
}
