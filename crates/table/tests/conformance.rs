//! Cross-scheme conformance suite.
//!
//! Every hashing scheme in the workspace — group hashing plus the four
//! baselines (linear, PFHT, path, iceberg) — is driven through the shared
//! [`HashScheme`] trait across both [`ConsistencyMode`]s. The suite
//! asserts the behavioural contract the trait documents (insert/get/remove
//! roundtrips, duplicate handling, graceful `TableFull`, persistence
//! across reopen, crash-recovery) without knowing anything scheme-specific
//! beyond the constructor.
//!
//! This is the payoff of the layered split: the generic drivers below
//! compile once and exercise five ops-layer implementations that all sit
//! on the same probe-plan + cell-store primitives.

use group_hash::{CommitStrategy, FpMode, GroupHash, GroupHashConfig};
use nvm_baselines::{Iceberg, LinearProbing, MetaMode, PathHash, Pfht};
use nvm_pmem::{
    run_with_crash, CrashPlan, CrashResolution, Pmem, PmemRead, Region, SimConfig, SimPmem,
};
use nvm_table::{
    migrate_recover, migrate_step_same_pool, ConsistencyMode, HashScheme, InsertError,
    MigrationSource,
};

const MODES: [ConsistencyMode; 2] = [ConsistencyMode::None, ConsistencyMode::UndoLog];

// ---------------------------------------------------------------- fixtures

fn group_pool(mode: ConsistencyMode, cells: u64) -> (SimPmem, GroupHash<SimPmem, u64, u64>) {
    let commit = match mode {
        ConsistencyMode::None => CommitStrategy::AtomicBitmap,
        ConsistencyMode::UndoLog => CommitStrategy::UndoLog,
    };
    let cfg = GroupHashConfig::new(cells, 16).with_commit(commit);
    let size = GroupHash::<SimPmem, u64, u64>::required_size(&cfg);
    let mut pm = SimPmem::new(size, SimConfig::fast_test());
    let t = GroupHash::create(&mut pm, Region::new(0, size), cfg).unwrap();
    (pm, t)
}

fn group_pool_fp(
    mode: ConsistencyMode,
    cells: u64,
    fp: FpMode,
) -> (SimPmem, GroupHash<SimPmem, u64, u64>) {
    let commit = match mode {
        ConsistencyMode::None => CommitStrategy::AtomicBitmap,
        ConsistencyMode::UndoLog => CommitStrategy::UndoLog,
    };
    let cfg = GroupHashConfig::new(cells, 16).with_commit(commit).with_fp_mode(fp);
    let size = GroupHash::<SimPmem, u64, u64>::required_size(&cfg);
    let mut pm = SimPmem::new(size, SimConfig::fast_test());
    let t = GroupHash::create(&mut pm, Region::new(0, size), cfg).unwrap();
    (pm, t)
}

fn group_open(pm: &mut SimPmem) -> GroupHash<SimPmem, u64, u64> {
    let len = pm.len();
    GroupHash::open(pm, Region::new(0, len)).unwrap()
}

fn linear_pool(mode: ConsistencyMode, n: u64) -> (SimPmem, LinearProbing<SimPmem, u64, u64>) {
    let size = LinearProbing::<SimPmem, u64, u64>::required_size(n);
    let mut pm = SimPmem::new(size, SimConfig::fast_test());
    let t = LinearProbing::create(&mut pm, Region::new(0, size), n, 7, mode).unwrap();
    (pm, t)
}

fn linear_open(pm: &mut SimPmem) -> LinearProbing<SimPmem, u64, u64> {
    let len = pm.len();
    LinearProbing::open(pm, Region::new(0, len)).unwrap()
}

fn pfht_pool(mode: ConsistencyMode, n_buckets: u64) -> (SimPmem, Pfht<SimPmem, u64, u64>) {
    let stash = (n_buckets / 4).max(2);
    let size = Pfht::<SimPmem, u64, u64>::required_size(n_buckets, stash);
    let mut pm = SimPmem::new(size, SimConfig::fast_test());
    let t = Pfht::create(&mut pm, Region::new(0, size), n_buckets, stash, 7, mode).unwrap();
    (pm, t)
}

fn pfht_open(pm: &mut SimPmem) -> Pfht<SimPmem, u64, u64> {
    let len = pm.len();
    Pfht::open(pm, Region::new(0, len)).unwrap()
}

fn path_pool(mode: ConsistencyMode, leaf_bits: u32) -> (SimPmem, PathHash<SimPmem, u64, u64>) {
    let size = PathHash::<SimPmem, u64, u64>::required_size(leaf_bits, 4);
    let mut pm = SimPmem::new(size, SimConfig::fast_test());
    let t = PathHash::create(&mut pm, Region::new(0, size), leaf_bits, 4, 7, mode).unwrap();
    (pm, t)
}

fn path_open(pm: &mut SimPmem) -> PathHash<SimPmem, u64, u64> {
    let len = pm.len();
    PathHash::open(pm, Region::new(0, len)).unwrap()
}

fn iceberg_pool_meta(
    mode: ConsistencyMode,
    cells: u64,
    meta: MetaMode,
) -> (SimPmem, Iceberg<SimPmem, u64, u64>) {
    let geo = Iceberg::<SimPmem, u64, u64>::geometry_for(cells);
    let size = Iceberg::<SimPmem, u64, u64>::required_size(geo.0, geo.1, geo.2);
    let mut pm = SimPmem::new(size, SimConfig::fast_test());
    let t = Iceberg::create(&mut pm, Region::new(0, size), geo, 7, mode, meta).unwrap();
    (pm, t)
}

fn iceberg_pool(mode: ConsistencyMode, cells: u64) -> (SimPmem, Iceberg<SimPmem, u64, u64>) {
    iceberg_pool_meta(mode, cells, MetaMode::On)
}

fn iceberg_open(pm: &mut SimPmem) -> Iceberg<SimPmem, u64, u64> {
    let len = pm.len();
    Iceberg::open(pm, Region::new(0, len)).unwrap()
}

const META_MODES: [MetaMode; 2] = [MetaMode::Off, MetaMode::On];

// ------------------------------------------------------- generic drivers

/// Insert/get/remove roundtrip plus duplicate handling, on a table big
/// enough that no scheme hits its collision limit.
fn basic_ops<S: HashScheme<SimPmem, u64, u64>>(pm: &mut SimPmem, t: &mut S) {
    let label = t.name();
    assert!(t.is_empty(pm), "{label}: fresh table not empty");
    assert_eq!(t.get(pm, &42), None);
    assert!(!t.remove(pm, &42), "{label}: remove on empty");

    for k in 0..60u64 {
        t.insert(pm, k, k * 3).unwrap_or_else(|e| panic!("{label}: insert {k}: {e}"));
    }
    assert_eq!(t.len(pm), 60, "{label}");
    for k in 0..60u64 {
        assert_eq!(t.get(pm, &k), Some(k * 3), "{label}: key {k}");
        assert!(t.contains(pm, &k), "{label}: contains {k}");
    }
    assert_eq!(t.get(pm, &999), None, "{label}: absent key");
    assert!(t.load_factor(pm) > 0.0 && t.load_factor(pm) <= 1.0);

    // Duplicate handling: insert_unique refuses and leaves state intact.
    assert_eq!(t.insert_unique(pm, 7, 1), Err(InsertError::DuplicateKey), "{label}");
    assert_eq!(t.get(pm, &7), Some(21), "{label}: duplicate must not clobber");
    assert_eq!(t.len(pm), 60, "{label}: duplicate must not grow the table");

    // Delete half, verify the survivors and the holes.
    for k in 0..30u64 {
        assert!(t.remove(pm, &k), "{label}: remove {k}");
    }
    assert!(!t.remove(pm, &0), "{label}: double remove");
    assert_eq!(t.len(pm), 30, "{label}");
    for k in 0..30u64 {
        assert_eq!(t.get(pm, &k), None, "{label}: deleted key {k}");
    }
    for k in 30..60u64 {
        assert_eq!(t.get(pm, &k), Some(k * 3), "{label}: survivor {k}");
    }

    // Holes must be reusable.
    for k in 0..30u64 {
        t.insert(pm, k, k + 1000).unwrap_or_else(|e| panic!("{label}: reinsert {k}: {e}"));
    }
    assert_eq!(t.len(pm), 60, "{label}");
    for k in 0..30u64 {
        assert_eq!(t.get(pm, &k), Some(k + 1000), "{label}: reinserted {k}");
    }
    t.check_consistency(pm).unwrap_or_else(|e| panic!("{label}: {e}"));
}

/// Fill until `TableFull`; the table must fail gracefully and keep every
/// key it accepted.
fn full_table<S: HashScheme<SimPmem, u64, u64>>(pm: &mut SimPmem, t: &mut S) {
    let label = t.name();
    let cap = t.capacity();
    let mut stored = Vec::new();
    for k in 0..20 * cap {
        // Odd-multiplier bijection keeps the keys distinct but scrambled.
        let key = k.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        match t.insert(pm, key, k) {
            Ok(()) => stored.push((key, k)),
            Err(InsertError::TableFull) => break,
            Err(e) => panic!("{label}: unexpected {e}"),
        }
        assert!((k as usize) < 2 * cap as usize + 16, "{label}: never reported full");
    }
    assert_eq!(t.len(pm), stored.len() as u64, "{label}");
    assert!(t.len(pm) <= cap, "{label}: len above capacity");
    assert!(
        stored.len() as u64 >= cap / 5,
        "{label}: gave up at {} of {cap} cells",
        stored.len()
    );
    for (key, v) in &stored {
        assert_eq!(t.get(pm, key), Some(*v), "{label}: key {key} lost during fill");
    }
    t.check_consistency(pm).unwrap_or_else(|e| panic!("{label}: {e}"));
}

/// Contents survive a drop + reopen of the pool bytes.
fn persists_across_reopen<S: HashScheme<SimPmem, u64, u64>>(
    mk: impl Fn() -> (SimPmem, S),
    open: impl Fn(&mut SimPmem) -> S,
) {
    let (mut pm, mut t) = mk();
    for k in 0..40u64 {
        t.insert(&mut pm, k, k * 7).unwrap();
    }
    t.remove(&mut pm, &11);
    let label = t.name();
    drop(t);

    let mut t = open(&mut pm);
    t.recover(&mut pm);
    assert_eq!(t.len(&pm), 39, "{label}");
    for k in 0..40u64 {
        let want = if k == 11 { None } else { Some(k * 7) };
        assert_eq!(t.get(&pm, &k), want, "{label}: key {k} after reopen");
    }
    t.check_consistency(&pm).unwrap_or_else(|e| panic!("{label}: {e}"));
}

/// Crash at every pmem event inside one `op`, then reopen + recover. After
/// recovery the structure must satisfy its invariants and all pre-existing
/// keys must be intact; `check` sees the recovered table to assert the
/// op-specific all-or-nothing visibility.
fn crash_loop<S: HashScheme<SimPmem, u64, u64>>(
    mk: impl Fn() -> (SimPmem, S),
    open: impl Fn(&mut SimPmem) -> S,
    op: impl Fn(&mut SimPmem, &mut S),
    check: impl Fn(&mut SimPmem, &S, u64),
) {
    let (mut pm0, mut t0) = mk();
    for k in 0..20u64 {
        t0.insert(&mut pm0, k, k + 100).unwrap();
    }
    let label = t0.name();
    drop(t0);

    for at in 0u64.. {
        assert!(at < 4096, "{label}: crash loop never finished");
        let mut pm = pm0.clone();
        let mut t = open(&mut pm);
        let base = pm.events();
        pm.set_crash_plan(Some(CrashPlan { at_event: base + at }));
        let done = run_with_crash(|| op(&mut pm, &mut t)).is_ok();
        if done {
            break;
        }
        pm.crash(CrashResolution::Random(at));
        let mut t = open(&mut pm);
        t.recover(&mut pm);
        t.check_consistency(&pm)
            .unwrap_or_else(|e| panic!("{label}: crash at +{at}: {e}"));
        for k in 0..20u64 {
            if k != 13 {
                assert_eq!(
                    t.get(&pm, &k),
                    Some(k + 100),
                    "{label}: pre-existing key {k} damaged by crash at +{at}"
                );
            }
        }
        check(&mut pm, &t, at);
    }
}

/// Batch API contract: roundtrip, empty batches, duplicate keys in a
/// remove batch, and absent keys counting zero.
fn batch_ops<S: HashScheme<SimPmem, u64, u64>>(pm: &mut SimPmem, t: &mut S) {
    let label = t.name();
    t.insert_batch(pm, &[]).unwrap_or_else(|e| panic!("{label}: empty batch: {e}"));
    let items: Vec<(u64, u64)> = (0..48u64).map(|k| (k, k * 3)).collect();
    t.insert_batch(pm, &items).unwrap_or_else(|e| panic!("{label}: {e}"));
    assert_eq!(t.len(pm), 48, "{label}");
    for (k, v) in &items {
        assert_eq!(t.get(pm, k), Some(*v), "{label}: key {k}");
    }
    assert_eq!(t.remove_batch(pm, &[]), 0, "{label}: empty remove batch");
    // Duplicates and absent keys: each present key counts exactly once.
    assert_eq!(t.remove_batch(pm, &[0, 1, 1, 999, 2]), 3, "{label}");
    for k in [0u64, 1, 2] {
        assert_eq!(t.get(pm, &k), None, "{label}: removed {k}");
    }
    assert_eq!(t.len(pm), 45, "{label}");
    t.check_consistency(pm).unwrap_or_else(|e| panic!("{label}: {e}"));
}

/// Batch insert into a table too small for the batch: the error reports
/// the committed prefix, which is durably stored; nothing after it is.
fn batch_full_table<S: HashScheme<SimPmem, u64, u64>>(pm: &mut SimPmem, t: &mut S) {
    let label = t.name();
    let cap = t.capacity();
    let items: Vec<(u64, u64)> = (0..2 * cap + 16)
        .map(|k| (k.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1, k))
        .collect();
    let err = t.insert_batch(pm, &items).unwrap_err();
    assert_eq!(err.error, InsertError::TableFull, "{label}");
    assert_eq!(t.len(pm), err.committed as u64, "{label}: committed prefix");
    for (k, v) in &items[..err.committed] {
        assert_eq!(t.get(pm, k), Some(*v), "{label}: committed key {k} lost");
    }
    t.check_consistency(pm).unwrap_or_else(|e| panic!("{label}: {e}"));
}

/// Keys used by the crash-batch drivers. Inserted fresh by
/// [`crash_insert_batch`]; a subset of the seeded keys for
/// [`crash_remove_batch`].
const INSERT_BATCH: [u64; 6] = [500, 501, 502, 503, 504, 505];
const REMOVE_BATCH: [u64; 5] = [3, 6, 9, 12, 15];

/// Crash at every pmem event inside a multi-op batch `op`, then reopen +
/// recover; the recovered table must satisfy its invariants and `check`
/// asserts the batch's prefix-durability contract.
fn crash_batch_loop<S: HashScheme<SimPmem, u64, u64>>(
    mk: impl Fn() -> (SimPmem, S),
    open: impl Fn(&mut SimPmem) -> S,
    op: impl Fn(&mut SimPmem, &mut S),
    check: impl Fn(&mut SimPmem, &S, u64),
) {
    let (mut pm0, mut t0) = mk();
    for k in 0..20u64 {
        t0.insert(&mut pm0, k, k + 100).unwrap();
    }
    let label = t0.name();
    drop(t0);

    for at in 0u64.. {
        assert!(at < 8192, "{label}: crash loop never finished");
        let mut pm = pm0.clone();
        let mut t = open(&mut pm);
        let base = pm.events();
        pm.set_crash_plan(Some(CrashPlan { at_event: base + at }));
        let done = run_with_crash(|| op(&mut pm, &mut t)).is_ok();
        if done {
            break;
        }
        pm.crash(CrashResolution::Random(at));
        let mut t = open(&mut pm);
        t.recover(&mut pm);
        t.check_consistency(&pm)
            .unwrap_or_else(|e| panic!("{label}: crash at +{at}: {e}"));
        check(&mut pm, &t, at);
    }
}

/// Crash-during-`insert_batch`: some *prefix* of the batch is durable —
/// never a gap in the middle, never a torn op — and every pre-existing
/// key survives.
fn crash_insert_batch<S: HashScheme<SimPmem, u64, u64>>(
    mk: impl Fn() -> (SimPmem, S),
    open: impl Fn(&mut SimPmem) -> S,
) {
    crash_batch_loop(
        mk,
        open,
        |pm, t| {
            let items: Vec<(u64, u64)> = INSERT_BATCH.iter().map(|&k| (k, k + 7)).collect();
            t.insert_batch(pm, &items).unwrap();
        },
        |pm, t, at| {
            let label = t.name();
            for k in 0..20u64 {
                assert_eq!(
                    t.get(pm, &k),
                    Some(k + 100),
                    "{label}: pre-existing key {k} damaged by crash at +{at}"
                );
            }
            let present: Vec<bool> = INSERT_BATCH
                .iter()
                .map(|&k| match t.get(pm, &k) {
                    None => false,
                    Some(v) => {
                        assert_eq!(v, k + 7, "{label}: torn value for {k} at +{at}");
                        true
                    }
                })
                .collect();
            let prefix = present.iter().take_while(|&&p| p).count();
            assert!(
                present[prefix..].iter().all(|&p| !p),
                "{label}: non-prefix durability at +{at}: {present:?}"
            );
        },
    );
}

/// Crash-during-`remove_batch`: some *prefix* of the batch's keys is gone,
/// the rest are fully intact, and untouched keys always survive.
fn crash_remove_batch<S: HashScheme<SimPmem, u64, u64>>(
    mk: impl Fn() -> (SimPmem, S),
    open: impl Fn(&mut SimPmem) -> S,
) {
    crash_batch_loop(
        mk,
        open,
        |pm, t| {
            assert_eq!(t.remove_batch(pm, &REMOVE_BATCH), REMOVE_BATCH.len());
        },
        |pm, t, at| {
            let label = t.name();
            for k in 0..20u64 {
                if REMOVE_BATCH.contains(&k) {
                    continue;
                }
                assert_eq!(
                    t.get(pm, &k),
                    Some(k + 100),
                    "{label}: untouched key {k} damaged by crash at +{at}"
                );
            }
            let removed: Vec<bool> = REMOVE_BATCH
                .iter()
                .map(|&k| match t.get(pm, &k) {
                    None => true,
                    Some(v) => {
                        assert_eq!(v, k + 100, "{label}: torn value for {k} at +{at}");
                        false
                    }
                })
                .collect();
            let prefix = removed.iter().take_while(|&&r| r).count();
            assert!(
                removed[prefix..].iter().all(|&r| !r),
                "{label}: non-prefix removal at +{at}: {removed:?}"
            );
        },
    );
}

/// Crash-at-every-event conformance for incremental online migration.
///
/// `mk_pair` builds source and destination tables of the same scheme in
/// one pool (the destination at least as large); `open_pair` re-opens
/// both. The driver seeds the source, then for every pmem event of a full
/// bounded-step drain: crash there, re-open, run both tables' own
/// `recover`, then [`migrate_recover`]'s dedup pass, and assert
///
/// * both tables satisfy their structural invariants,
/// * every committed key is visible in **exactly one** table with its
///   exact value (the move choreography can duplicate across the crash,
///   never lose; dedup removes the duplicate),
/// * resuming the drain from the persisted cursor finishes and lands all
///   keys in the destination.
fn crash_migration<S: MigrationSource<SimPmem, u64, u64>>(
    mk_pair: impl Fn() -> (SimPmem, S, S),
    open_pair: impl Fn(&mut SimPmem) -> (S, S),
) {
    let (mut pm0, mut src0, _dst0) = mk_pair();
    for k in 0..20u64 {
        src0.insert(&mut pm0, k, k + 100).unwrap();
    }
    let label = src0.name();
    drop(src0);

    for at in 0u64.. {
        assert!(at < 16384, "{label}: migration crash loop never finished");
        let mut pm = pm0.clone();
        let (mut src, mut dst) = open_pair(&mut pm);
        let base = pm.events();
        pm.set_crash_plan(Some(CrashPlan { at_event: base + at }));
        let done = run_with_crash(|| {
            while !migrate_step_same_pool(&mut pm, &mut src, &mut dst, 4) {}
        })
        .is_ok();
        if done {
            break;
        }
        pm.crash(CrashResolution::Random(at));

        let (mut src, mut dst) = open_pair(&mut pm);
        src.recover(&mut pm);
        dst.recover(&mut pm);
        let deduped = migrate_recover(&mut pm, &mut src, &dst);
        src.check_consistency(&pm)
            .unwrap_or_else(|e| panic!("{label}: src after crash at +{at}: {e}"));
        dst.check_consistency(&pm)
            .unwrap_or_else(|e| panic!("{label}: dst after crash at +{at}: {e}"));
        assert!(deduped <= 1, "{label}: {deduped} duplicates at +{at}");
        for k in 0..20u64 {
            let s = src.get(&pm, &k);
            let d = dst.get(&pm, &k);
            assert!(
                s.is_some() != d.is_some(),
                "{label}: key {k} in {} tables after recovery at +{at}",
                if s.is_some() { "both" } else { "neither" }
            );
            assert_eq!(s.or(d), Some(k + 100), "{label}: key {k} torn at +{at}");
        }
        assert_eq!(src.len(&pm) + dst.len(&pm), 20, "{label}: counts at +{at}");

        // The persisted cursor lets the drain resume where it stopped.
        while !migrate_step_same_pool(&mut pm, &mut src, &mut dst, 4) {}
        assert_eq!(src.len(&pm), 0, "{label}: src not drained at +{at}");
        assert_eq!(dst.len(&pm), 20, "{label}: dst incomplete at +{at}");
        assert!(!src.migration_active(&pm), "{label}: flag stuck at +{at}");
        for k in 0..20u64 {
            assert_eq!(dst.get(&pm, &k), Some(k + 100), "{label}: key {k} at +{at}");
        }
        src.check_consistency(&pm)
            .unwrap_or_else(|e| panic!("{label}: src after resume at +{at}: {e}"));
        dst.check_consistency(&pm)
            .unwrap_or_else(|e| panic!("{label}: dst after resume at +{at}: {e}"));
    }
}

/// Vectorized reads: `get_batch` must equal N sequential `get`s — same
/// hits, same misses, answers in input order, duplicates allowed — and
/// stay a pure read (zero persistence events), whatever pipeline the
/// scheme overrides it with.
fn get_batch_matches_gets<S: HashScheme<SimPmem, u64, u64>>(pm: &mut SimPmem, t: &mut S) {
    let label = t.name();
    for k in 0..120u64 {
        t.insert(pm, k, k.wrapping_mul(31))
            .unwrap_or_else(|e| panic!("{label}: insert {k}: {e}"));
    }
    // Tombstoned keys probe differently from never-present ones; cover both.
    for k in 0..40u64 {
        assert!(t.remove(pm, &(k * 3)), "{label}: remove {}", k * 3);
    }
    let keys: Vec<u64> = (0..160u64).chain([7, 7, 100_000, 3]).collect();
    assert!(t.get_batch(pm, &[]).is_empty(), "{label}: empty batch");
    let base = pm.stats();
    let batch = t.get_batch(pm, &keys);
    let spent = pm.stats().delta_since(&base);
    assert_eq!(
        (spent.flushes, spent.fences, spent.atomic_writes, spent.writes),
        (0, 0, 0, 0),
        "{label}: get_batch performed persistence events"
    );
    assert_eq!(batch.len(), keys.len(), "{label}");
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(batch[i], t.get(pm, k), "{label}: key {k} at position {i}");
    }
}

/// Crash-during-insert: the new key is either fully present or absent.
fn crash_insert<S: HashScheme<SimPmem, u64, u64>>(
    mk: impl Fn() -> (SimPmem, S),
    open: impl Fn(&mut SimPmem) -> S,
) {
    crash_loop(
        mk,
        open,
        |pm, t| {
            t.insert(pm, 500, 77).unwrap();
        },
        |pm, t, at| {
            let got = t.get(pm, &500);
            assert!(
                got.is_none() || got == Some(77),
                "{}: torn insert visible at +{at}: {got:?}",
                t.name()
            );
        },
    );
}

/// Crash-during-remove: the victim is either fully present or fully gone.
fn crash_remove<S: HashScheme<SimPmem, u64, u64>>(
    mk: impl Fn() -> (SimPmem, S),
    open: impl Fn(&mut SimPmem) -> S,
) {
    crash_loop(
        mk,
        open,
        |pm, t| {
            assert!(t.remove(pm, &13));
        },
        |pm, t, at| {
            let got = t.get(pm, &13);
            assert!(
                got.is_none() || got == Some(113),
                "{}: torn remove visible at +{at}: {got:?}",
                t.name()
            );
        },
    );
}

// ------------------------------------------------------------- group hash

#[test]
fn group_basic_ops() {
    for mode in MODES {
        let (mut pm, mut t) = group_pool(mode, 256);
        basic_ops(&mut pm, &mut t);
    }
}

#[test]
fn group_full_table() {
    for mode in MODES {
        let (mut pm, mut t) = group_pool(mode, 64);
        full_table(&mut pm, &mut t);
    }
}

#[test]
fn group_reopen() {
    for mode in MODES {
        persists_across_reopen(|| group_pool(mode, 256), group_open);
    }
}

#[test]
fn group_crash_insert() {
    for mode in MODES {
        crash_insert(|| group_pool(mode, 256), group_open);
    }
}

#[test]
fn group_crash_remove() {
    // Group hashing is failure-atomic in both modes: the 8-byte bitmap
    // commit (AtomicBitmap) or the undo log makes removal all-or-nothing.
    for mode in MODES {
        crash_remove(|| group_pool(mode, 256), group_open);
    }
}

#[test]
fn group_batch_ops() {
    for mode in MODES {
        let (mut pm, mut t) = group_pool(mode, 256);
        batch_ops(&mut pm, &mut t);
    }
}

#[test]
fn group_batch_full_table() {
    for mode in MODES {
        let (mut pm, mut t) = group_pool(mode, 64);
        batch_full_table(&mut pm, &mut t);
    }
}

#[test]
fn group_crash_insert_batch() {
    for mode in MODES {
        crash_insert_batch(|| group_pool(mode, 256), group_open);
    }
}

#[test]
fn group_crash_remove_batch() {
    for mode in MODES {
        crash_remove_batch(|| group_pool(mode, 256), group_open);
    }
}

/// The tentpole's headline number, pinned: a K-op insert batch costs one
/// drain fence + one per-op commit fence + one count fence — K + 2 total,
/// against 3K for K single ops (3 → 1 + 2/K fences per op).
#[test]
fn group_batch_of_64_inserts_pins_k_plus_two_fences() {
    let (mut pm, mut t) = group_pool(ConsistencyMode::None, 256);
    let items: Vec<(u64, u64)> = (0..64u64).map(|k| (k, k * 9)).collect();
    let base = pm.stats();
    t.insert_batch(&mut pm, &items).unwrap();
    let spent = pm.stats().delta_since(&base);
    assert!(spent.fences <= 64 + 2, "fences {} > K+2", spent.fences);
    assert_eq!(spent.fences, 64 + 2, "drain + 64 bit flips + count");
    assert_eq!(spent.flushes, 2 * 64 + 1, "64 cells + 64 words + count");
    assert_eq!(spent.atomic_writes, 64 + 1, "64 bits + count");
    for (k, v) in &items {
        assert_eq!(t.get(&pm, k), Some(*v));
    }
}

#[test]
fn group_get_batch_matches_gets() {
    // Both consistency modes × both fingerprint-cache modes: the tag-first
    // SWAR path and the key-first path must both match sequential gets.
    for mode in MODES {
        for fp in [FpMode::Off, FpMode::On] {
            let (mut pm, mut t) = group_pool_fp(mode, 256, fp);
            get_batch_matches_gets(&mut pm, &mut t);
        }
    }
}

// --------------------------------------------------------- linear probing

#[test]
fn linear_basic_ops() {
    for mode in MODES {
        let (mut pm, mut t) = linear_pool(mode, 256);
        basic_ops(&mut pm, &mut t);
    }
}

#[test]
fn linear_full_table() {
    for mode in MODES {
        let (mut pm, mut t) = linear_pool(mode, 64);
        full_table(&mut pm, &mut t);
    }
}

#[test]
fn linear_reopen() {
    for mode in MODES {
        persists_across_reopen(|| linear_pool(mode, 256), linear_open);
    }
}

#[test]
fn linear_crash_insert() {
    // A bare linear insert persists the cell before publishing its bitmap
    // bit, so even `ConsistencyMode::None` recovers cleanly.
    for mode in MODES {
        crash_insert(|| linear_pool(mode, 256), linear_open);
    }
}

#[test]
fn linear_crash_remove() {
    // Backward-shift deletion moves cells; only the logged variant is
    // all-or-nothing (the paper's point about the bare scheme).
    crash_remove(
        || linear_pool(ConsistencyMode::UndoLog, 256),
        linear_open,
    );
}

#[test]
fn linear_batch_ops() {
    for mode in MODES {
        let (mut pm, mut t) = linear_pool(mode, 256);
        batch_ops(&mut pm, &mut t);
    }
}

#[test]
fn linear_batch_full_table() {
    for mode in MODES {
        let (mut pm, mut t) = linear_pool(mode, 64);
        batch_full_table(&mut pm, &mut t);
    }
}

#[test]
fn linear_crash_insert_batch() {
    for mode in MODES {
        crash_insert_batch(|| linear_pool(mode, 256), linear_open);
    }
}

#[test]
fn linear_crash_remove_batch() {
    // remove_batch falls back to per-op backward-shift deletes, so the
    // same logged-only rule as `linear_crash_remove` applies.
    crash_remove_batch(|| linear_pool(ConsistencyMode::UndoLog, 256), linear_open);
}

#[test]
fn linear_get_batch_matches_gets() {
    for mode in MODES {
        let (mut pm, mut t) = linear_pool(mode, 256);
        get_batch_matches_gets(&mut pm, &mut t);
    }
}

// ------------------------------------------------------------------- pfht

#[test]
fn pfht_basic_ops() {
    for mode in MODES {
        let (mut pm, mut t) = pfht_pool(mode, 64);
        basic_ops(&mut pm, &mut t);
    }
}

#[test]
fn pfht_full_table() {
    for mode in MODES {
        let (mut pm, mut t) = pfht_pool(mode, 16);
        full_table(&mut pm, &mut t);
    }
}

#[test]
fn pfht_reopen() {
    for mode in MODES {
        persists_across_reopen(|| pfht_pool(mode, 64), pfht_open);
    }
}

#[test]
fn pfht_crash_insert() {
    // At this fill level no displacement triggers, so the bare mode's
    // cell-then-bit publish order is crash-safe too.
    for mode in MODES {
        crash_insert(|| pfht_pool(mode, 64), pfht_open);
    }
}

#[test]
fn pfht_crash_remove() {
    crash_remove(|| pfht_pool(ConsistencyMode::UndoLog, 64), pfht_open);
}

#[test]
fn pfht_batch_ops() {
    for mode in MODES {
        let (mut pm, mut t) = pfht_pool(mode, 64);
        batch_ops(&mut pm, &mut t);
    }
}

#[test]
fn pfht_batch_full_table() {
    for mode in MODES {
        let (mut pm, mut t) = pfht_pool(mode, 16);
        batch_full_table(&mut pm, &mut t);
    }
}

#[test]
fn pfht_crash_insert_batch() {
    // At this fill level every batch key finds a free bucket slot, so the
    // whole batch stages (no displacement fallback) in both modes.
    for mode in MODES {
        crash_insert_batch(|| pfht_pool(mode, 64), pfht_open);
    }
}

#[test]
fn pfht_crash_remove_batch() {
    crash_remove_batch(|| pfht_pool(ConsistencyMode::UndoLog, 64), pfht_open);
}

#[test]
fn pfht_get_batch_matches_gets() {
    for mode in MODES {
        let (mut pm, mut t) = pfht_pool(mode, 64);
        get_batch_matches_gets(&mut pm, &mut t);
    }
}

// ------------------------------------------------------------ path hashing

#[test]
fn path_basic_ops() {
    for mode in MODES {
        let (mut pm, mut t) = path_pool(mode, 8);
        basic_ops(&mut pm, &mut t);
    }
}

#[test]
fn path_full_table() {
    for mode in MODES {
        let (mut pm, mut t) = path_pool(mode, 6);
        full_table(&mut pm, &mut t);
    }
}

#[test]
fn path_reopen() {
    for mode in MODES {
        persists_across_reopen(|| path_pool(mode, 8), path_open);
    }
}

#[test]
fn path_crash_insert() {
    for mode in MODES {
        crash_insert(|| path_pool(mode, 8), path_open);
    }
}

#[test]
fn path_crash_remove() {
    crash_remove(|| path_pool(ConsistencyMode::UndoLog, 8), path_open);
}

#[test]
fn path_batch_ops() {
    for mode in MODES {
        let (mut pm, mut t) = path_pool(mode, 8);
        batch_ops(&mut pm, &mut t);
    }
}

#[test]
fn path_batch_full_table() {
    for mode in MODES {
        let (mut pm, mut t) = path_pool(mode, 6);
        batch_full_table(&mut pm, &mut t);
    }
}

#[test]
fn path_crash_insert_batch() {
    // Path's small undo log (4 ops/txn for u64 cells) splits the 6-op
    // batch into two chunks under UndoLog — chunk boundaries are also
    // valid prefix points, so the same assertion covers both modes.
    for mode in MODES {
        crash_insert_batch(|| path_pool(mode, 8), path_open);
    }
}

#[test]
fn path_crash_remove_batch() {
    crash_remove_batch(|| path_pool(ConsistencyMode::UndoLog, 8), path_open);
}

#[test]
fn path_get_batch_matches_gets() {
    for mode in MODES {
        let (mut pm, mut t) = path_pool(mode, 8);
        get_batch_matches_gets(&mut pm, &mut t);
    }
}

// ---------------------------------------------------------------- iceberg

#[test]
fn iceberg_basic_ops() {
    for mode in MODES {
        for meta in META_MODES {
            let (mut pm, mut t) = iceberg_pool_meta(mode, 256, meta);
            basic_ops(&mut pm, &mut t);
        }
    }
}

#[test]
fn iceberg_full_table() {
    for mode in MODES {
        for meta in META_MODES {
            let (mut pm, mut t) = iceberg_pool_meta(mode, 64, meta);
            full_table(&mut pm, &mut t);
        }
    }
}

#[test]
fn iceberg_reopen() {
    for mode in MODES {
        for meta in META_MODES {
            persists_across_reopen(|| iceberg_pool_meta(mode, 256, meta), iceberg_open);
        }
    }
}

#[test]
fn iceberg_crash_insert() {
    // Stability means an insert is a pure publish (cell bytes, then the
    // 8-byte bit flip) — crash-safe in both modes, like linear's insert.
    for mode in MODES {
        crash_insert(|| iceberg_pool(mode, 256), iceberg_open);
    }
}

#[test]
fn iceberg_crash_remove() {
    // Unlike every displacement baseline, iceberg's remove is a pure
    // retract (no backward-shift, no re-home) — so the *bare* mode is
    // crash-atomic too, and both modes run the loop.
    for mode in MODES {
        crash_remove(|| iceberg_pool(mode, 256), iceberg_open);
    }
}

#[test]
fn iceberg_batch_ops() {
    for mode in MODES {
        for meta in META_MODES {
            let (mut pm, mut t) = iceberg_pool_meta(mode, 256, meta);
            batch_ops(&mut pm, &mut t);
        }
    }
}

#[test]
fn iceberg_batch_full_table() {
    for mode in MODES {
        let (mut pm, mut t) = iceberg_pool(mode, 64);
        batch_full_table(&mut pm, &mut t);
    }
}

#[test]
fn iceberg_crash_insert_batch() {
    // No displacement fallback exists, so the whole batch always stages
    // and the prefix points are exactly the staged-commit boundaries.
    for mode in MODES {
        crash_insert_batch(|| iceberg_pool(mode, 256), iceberg_open);
    }
}

#[test]
fn iceberg_crash_remove_batch() {
    // Pure retracts: both modes hold prefix durability, not just -L.
    for mode in MODES {
        crash_remove_batch(|| iceberg_pool(mode, 256), iceberg_open);
    }
}

#[test]
fn iceberg_get_batch_matches_gets() {
    // Both consistency modes × both metadata modes: the SWAR tag-word
    // path and the occupancy-scan path must both match sequential gets.
    for mode in MODES {
        for meta in META_MODES {
            let (mut pm, mut t) = iceberg_pool_meta(mode, 256, meta);
            get_batch_matches_gets(&mut pm, &mut t);
        }
    }
}

// ------------------------------------------------- online migration crashes

/// Source + double-sized destination in one pool, for [`crash_migration`].
fn group_migration_pair(
    mode: ConsistencyMode,
) -> (SimPmem, GroupHash<SimPmem, u64, u64>, GroupHash<SimPmem, u64, u64>) {
    let commit = match mode {
        ConsistencyMode::None => CommitStrategy::AtomicBitmap,
        ConsistencyMode::UndoLog => CommitStrategy::UndoLog,
    };
    let cfg = GroupHashConfig::new(64, 16).with_commit(commit);
    let big = GroupHashConfig::new(128, 16).with_seed(cfg.seed).with_commit(commit);
    let a = GroupHash::<SimPmem, u64, u64>::required_size(&cfg);
    let b = GroupHash::<SimPmem, u64, u64>::required_size(&big);
    let mut pm = SimPmem::new(a + b + 128, SimConfig::fast_test());
    let src = GroupHash::create(&mut pm, Region::new(0, a), cfg).unwrap();
    let dst = GroupHash::create(&mut pm, Region::new(a, b + 128), big).unwrap();
    (pm, src, dst)
}

#[test]
fn group_crash_migration() {
    for mode in MODES {
        let cfg = GroupHashConfig::new(64, 16);
        let a = GroupHash::<SimPmem, u64, u64>::required_size(&cfg);
        crash_migration(
            || group_migration_pair(mode),
            move |pm| {
                let len = pm.len();
                let src = GroupHash::open(pm, Region::new(0, a)).unwrap();
                let dst = GroupHash::open(pm, Region::new(a, len - a)).unwrap();
                (src, dst)
            },
        );
    }
}

#[test]
fn linear_crash_migration() {
    for mode in MODES {
        let a = LinearProbing::<SimPmem, u64, u64>::required_size(64);
        let b = LinearProbing::<SimPmem, u64, u64>::required_size(128);
        crash_migration(
            move || {
                let mut pm = SimPmem::new(a + b + 128, SimConfig::fast_test());
                let src =
                    LinearProbing::create(&mut pm, Region::new(0, a), 64, 7, mode).unwrap();
                let dst =
                    LinearProbing::create(&mut pm, Region::new(a, b + 128), 128, 7, mode)
                        .unwrap();
                (pm, src, dst)
            },
            move |pm| {
                let len = pm.len();
                let src = LinearProbing::open(pm, Region::new(0, a)).unwrap();
                let dst = LinearProbing::open(pm, Region::new(a, len - a)).unwrap();
                (src, dst)
            },
        );
    }
}

#[test]
fn pfht_crash_migration() {
    for mode in MODES {
        let a = Pfht::<SimPmem, u64, u64>::required_size(16, 4);
        let b = Pfht::<SimPmem, u64, u64>::required_size(32, 8);
        crash_migration(
            move || {
                let mut pm = SimPmem::new(a + b + 128, SimConfig::fast_test());
                let src = Pfht::create(&mut pm, Region::new(0, a), 16, 4, 7, mode).unwrap();
                let dst =
                    Pfht::create(&mut pm, Region::new(a, b + 128), 32, 8, 7, mode).unwrap();
                (pm, src, dst)
            },
            move |pm| {
                let len = pm.len();
                let src = Pfht::open(pm, Region::new(0, a)).unwrap();
                let dst = Pfht::open(pm, Region::new(a, len - a)).unwrap();
                (src, dst)
            },
        );
    }
}

#[test]
fn iceberg_crash_migration() {
    for mode in MODES {
        let sg = Iceberg::<SimPmem, u64, u64>::geometry_for(64);
        let dg = Iceberg::<SimPmem, u64, u64>::geometry_for(128);
        let a = Iceberg::<SimPmem, u64, u64>::required_size(sg.0, sg.1, sg.2);
        let b = Iceberg::<SimPmem, u64, u64>::required_size(dg.0, dg.1, dg.2);
        crash_migration(
            move || {
                let mut pm = SimPmem::new(a + b + 128, SimConfig::fast_test());
                let src = Iceberg::create(
                    &mut pm,
                    Region::new(0, a),
                    sg,
                    7,
                    mode,
                    MetaMode::On,
                )
                .unwrap();
                let dst = Iceberg::create(
                    &mut pm,
                    Region::new(a, b + 128),
                    dg,
                    7,
                    mode,
                    MetaMode::On,
                )
                .unwrap();
                (pm, src, dst)
            },
            move |pm| {
                let src = Iceberg::open(pm, Region::new(0, a)).unwrap();
                let dst = Iceberg::open(pm, Region::new(a, b + 128)).unwrap();
                (src, dst)
            },
        );
    }
}

#[test]
fn path_crash_migration() {
    for mode in MODES {
        let a = PathHash::<SimPmem, u64, u64>::required_size(6, 4);
        let b = PathHash::<SimPmem, u64, u64>::required_size(7, 4);
        crash_migration(
            move || {
                let mut pm = SimPmem::new(a + b + 128, SimConfig::fast_test());
                let src =
                    PathHash::create(&mut pm, Region::new(0, a), 6, 4, 7, mode).unwrap();
                let dst =
                    PathHash::create(&mut pm, Region::new(a, b + 128), 7, 4, 7, mode).unwrap();
                (pm, src, dst)
            },
            move |pm| {
                let len = pm.len();
                let src = PathHash::open(pm, Region::new(0, a)).unwrap();
                let dst = PathHash::open(pm, Region::new(a, len - a)).unwrap();
                (src, dst)
            },
        );
    }
}
