//! Pure probe-plan unit tests: no pool, no I/O, just geometry.
//!
//! These pin the exact cell sequences each plan yields for small, known
//! geometries. Because plans are plain arithmetic, a regression here is a
//! probe-order change — exactly the kind of bug that would silently warp
//! every scheme's locality and persistence-cost numbers.

use nvm_table::probe::{
    broadcast, match_bits, GroupPlan, IcebergPlan, LinearPlan, PathPlan, PfhtPlan, ProbeLayout,
    ICEBERG_LANES,
};

// ------------------------------------------------------------- group plan

#[test]
fn group_contiguous_exact_sequence() {
    let p = GroupPlan::new(4, 4, ProbeLayout::Contiguous);
    assert_eq!(p.cells_per_level(), 16);
    let g2: Vec<u64> = p.group_cells(2).collect();
    assert_eq!(g2, vec![8, 9, 10, 11]);
    assert_eq!(p.cell(2, 3), 11);
    assert_eq!(p.group_of_cell(9), 2);
    assert_eq!(p.group_of_slot(7), 1);
}

#[test]
fn group_strided_exact_sequence() {
    let p = GroupPlan::new(4, 4, ProbeLayout::Strided);
    // Group 2 owns every 4th cell starting at 2: strided layout preserves
    // the partition but destroys contiguity (the observation-2 ablation).
    let g2: Vec<u64> = p.group_cells(2).collect();
    assert_eq!(g2, vec![2, 6, 10, 14]);
    assert_eq!(p.group_of_cell(10), 2);
    assert_eq!(p.group_of_cell(14), 2);
}

#[test]
fn group_layouts_partition_the_same_cells() {
    // Both layouts must partition [0, cells_per_level) into n_groups
    // disjoint sets — only the order within a group differs.
    for layout in [ProbeLayout::Contiguous, ProbeLayout::Strided] {
        let p = GroupPlan::new(8, 4, layout);
        let mut seen: Vec<u64> = (0..4).flat_map(|g| p.group_cells(g)).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..32).collect::<Vec<u64>>(), "{layout:?}");
        for g in 0..4 {
            for idx in p.group_cells(g) {
                assert_eq!(p.group_of_cell(idx), g, "{layout:?} cell {idx}");
            }
        }
    }
}

// ------------------------------------------------------------ linear plan

#[test]
fn linear_sequence_wraps_exactly_once() {
    let p = LinearPlan::new(8);
    let seq: Vec<u64> = p.sequence(6).collect();
    assert_eq!(seq, vec![6, 7, 0, 1, 2, 3, 4, 5]);
    assert_eq!(p.home(13), 5);
    assert_eq!(p.step(7), 0);
    assert_eq!(p.step(3), 4);
}

#[test]
fn linear_must_stay_ring_intervals() {
    // Hole at 2, entry at 5: an entry homed at 4 never probed through the
    // hole (2 < 4 <= 5), so it must stay; an entry homed at 1 did probe
    // through 2, so it may move.
    assert!(LinearPlan::must_stay(2, 4, 5));
    assert!(!LinearPlan::must_stay(2, 1, 5));
    // Wrapped case: hole at 6, entry at 1 (probe ran 6 → 7 → 0 → 1).
    assert!(LinearPlan::must_stay(6, 7, 1));
    assert!(LinearPlan::must_stay(6, 0, 1));
    assert!(!LinearPlan::must_stay(6, 6, 1));
    assert!(!LinearPlan::must_stay(6, 5, 1));
}

// -------------------------------------------------------------- pfht plan

#[test]
fn pfht_bucket_and_stash_geometry() {
    let p = PfhtPlan::new(8, 4, 3);
    assert_eq!(p.total_cells(), 35);
    assert_eq!(p.stash_base(), 32);
    let b3: Vec<u64> = p.bucket_range(3).collect();
    assert_eq!(b3, vec![12, 13, 14, 15]);
    assert_eq!(p.cell(3, 0), 12);
    assert_eq!(p.buckets(0x1_0005, 0x2_000B), (5, 3));
    assert_eq!(p.bucket_of_cell(13), Some(3));
    assert_eq!(p.bucket_of_cell(31), Some(7));
    assert_eq!(p.bucket_of_cell(32), None, "stash cell has no bucket");
    assert_eq!(p.bucket_of_cell(34), None);
}

// -------------------------------------------------------------- path plan

#[test]
fn path_distinct_leaves_exact_sequence() {
    // leaf_bits=3, levels=3: sizes 8/4/2, level bases 0/8/12, 14 cells.
    let p = PathPlan::new(3, 3);
    assert_eq!(p.total_cells(), 14);
    assert_eq!(p.level_base(0), 0);
    assert_eq!(p.level_base(1), 8);
    assert_eq!(p.level_base(2), 12);
    let cells: Vec<u64> = p.path_cells(2, 5).collect();
    assert_eq!(cells, vec![2, 5, 9, 10, 12, 13]);
}

#[test]
fn path_merged_ancestors_visited_once() {
    // Leaves 2 and 3 share every ancestor above level 0: the probe
    // sequence must not visit the shared cells twice.
    let p = PathPlan::new(3, 3);
    let cells: Vec<u64> = p.path_cells(2, 3).collect();
    assert_eq!(cells, vec![2, 3, 9, 12]);
    // Same leaf twice degenerates to a single path.
    let cells: Vec<u64> = p.path_cells(5, 5).collect();
    assert_eq!(cells, vec![5, 10, 13]);
}

#[test]
fn path_level_math_round_trips() {
    let p = PathPlan::new(3, 3);
    assert_eq!(p.level_of_cell(0), 0);
    assert_eq!(p.level_of_cell(7), 0);
    assert_eq!(p.level_of_cell(8), 1);
    assert_eq!(p.level_of_cell(12), 2);
    assert_eq!(p.level_of_cell(13), 2);
    assert!(p.on_path(5, 10));
    assert!(p.on_path(5, 13));
    assert!(!p.on_path(5, 9));
    // Levels clamp to the tree height; cell_count agrees with the plan.
    let tall = PathPlan::new(3, 99);
    assert_eq!(tall.levels(), 4);
    assert_eq!(tall.total_cells(), PathPlan::cell_count(3, 99));
    assert_eq!(tall.total_cells(), 15);
}

// ----------------------------------------------------------- iceberg plan

#[test]
fn iceberg_exact_cell_indices() {
    // 16 L1 + 8 L2 + 8 backyard buckets, 8 lanes each: 256 cells with
    // level bases at cells 0 / 128 / 192.
    let p = IcebergPlan::new(16, 8, 8);
    assert_eq!(ICEBERG_LANES, 8);
    assert_eq!(p.n_buckets(), 32);
    assert_eq!(p.total_cells(), 256);
    assert_eq!(p.backyard_base(), 24);
    assert_eq!(p.cell(0, 0), 0);
    assert_eq!(p.cell(15, 7), 127);
    assert_eq!(p.cell(16, 0), 128, "first level-2 cell");
    assert_eq!(p.cell(24, 0), 192, "first backyard cell");
    assert_eq!(p.bucket_cells(2).collect::<Vec<u64>>(), vec![16, 17, 18, 19, 20, 21, 22, 23]);
    assert_eq!(p.level_of_cell(127), 0);
    assert_eq!(p.level_of_cell(128), 1);
    assert_eq!(p.level_of_cell(191), 1);
    assert_eq!(p.level_of_cell(192), 2);
    assert_eq!(p.level_of_cell(255), 2);
}

#[test]
fn iceberg_bucket_addressing_masks_each_level() {
    let p = IcebergPlan::new(16, 8, 8);
    // L1 masks h1 by its own bucket count.
    assert_eq!(p.l1_bucket(0x123), 0x123 & 15);
    // The L2 pair masks h2/h3 by the level-2 count and offsets past L1.
    assert_eq!(p.l2_pair(0x29, 0x35), (16 + 1, 16 + 5));
    // The backyard home offsets past both upper levels.
    assert_eq!(p.backyard_home(0x0B), 24 + 3);
}

#[test]
fn iceberg_backyard_chain_wraps_exactly_once() {
    let p = IcebergPlan::new(16, 8, 8);
    let seq: Vec<u64> = p.backyard_sequence(6).collect();
    assert_eq!(seq, vec![30, 31, 24, 25, 26, 27, 28, 29]);
}

#[test]
fn iceberg_lane_round_trips() {
    let p = IcebergPlan::new(16, 8, 8);
    for idx in [0u64, 7, 8, 127, 128, 200, 255] {
        assert_eq!(p.cell(p.bucket_of_cell(idx), p.lane_of_cell(idx)), idx);
    }
}

#[test]
fn iceberg_reachability_is_level_scoped() {
    let p = IcebergPlan::new(16, 8, 8);
    let (h1, h2, h3) = (9u64, 3u64, 6u64);
    let own_l1 = p.l1_bucket(h1);
    for b in 0..p.l1_buckets() {
        assert_eq!(p.cell_reachable(p.cell(b, 0), h1, h2, h3), b == own_l1);
    }
    let (a, c) = p.l2_pair(h2, h3);
    for b in p.l1_buckets()..p.backyard_base() {
        assert_eq!(p.cell_reachable(p.cell(b, 4), h1, h2, h3), b == a || b == c);
    }
    for b in p.backyard_base()..p.n_buckets() {
        assert!(p.cell_reachable(p.cell(b, 7), h1, h2, h3));
    }
}

// ------------------------------------------------------- swar fingerprint

#[test]
fn broadcast_fills_every_lane() {
    assert_eq!(broadcast(0x5A), 0x5A5A_5A5A_5A5A_5A5A);
    assert_eq!(broadcast(0x00), 0);
    assert_eq!(broadcast(0xFF), u64::MAX);
}

#[test]
fn match_bits_exact_lanes() {
    // Lanes 1 and 3 (little-endian byte order) hold 0xAA.
    let word = 0x0000_00AA_00AA_0000u64.rotate_left(16);
    let got = match_bits(word, 0xAA);
    let mut want = 0u64;
    for lane in 0..8 {
        if (word >> (lane * 8)) as u8 == 0xAA {
            want |= 1 << lane;
        }
    }
    assert_eq!(got, want);
    assert_eq!(match_bits(broadcast(0x33), 0x33), 0xFF);
    assert_eq!(match_bits(broadcast(0x33), 0x34), 0);
    assert_eq!(match_bits(0, 0), 0xFF);
}
