//! The cell store: pmem-facing occupancy bitmap + cell codec + the
//! failure-atomic publish/retract choreography every scheme commits
//! through.
//!
//! A [`CellStore`] bundles one [`PmemBitmap`] with one [`CellArray`] over
//! the same cell index space and owns the *order* of persistent writes:
//!
//! * **publish** (paper Algorithm 1, last three lines): write the cell,
//!   persist it, then atomically flip its bitmap bit — the 8-byte bit flip
//!   is the commit point, so a crash before it leaves an unreferenced cell
//!   that recovery wipes.
//! * **retract** (Algorithm 3, inverted order): atomically clear the bit
//!   first, then scrub and persist the cell — a crash after the flip
//!   leaves stale bytes in a cell the bitmap already disowns.
//!
//! For undo-logged variants the matching `stage_*` helpers record the
//! pre-images into an open [`Journal`] transaction in the canonical span
//! order (publish: cell, bitmap word, count; retract: bitmap word, cell,
//! count) and seal them, so `ConsistencyMode::UndoLog` is applied in
//! exactly one place. Pure candidate-cell arithmetic lives one layer up in
//! [`crate::probe`]; scheme policy (which cell to try next) one layer above
//! that.

use crate::{CellArray, CellClaims, ConsistencyMode, Journal, MetaWords, PmemBitmap};
use nvm_hashfn::Pod;
use nvm_pmem::{Pmem, PmemRead, PmemWrite, Region};
use std::collections::HashSet;

/// Outcome of a lock-free [`CellStore::try_publish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryPublish {
    /// Committed. `cas_failures` counts lost bitmap-word races (0 when
    /// uncontended).
    Done {
        /// Lost CAS attempts on the bitmap word before the winning flip.
        cas_failures: u64,
    },
    /// The cell is claimed by another writer, or already committed —
    /// re-plan against fresh occupancy.
    Busy,
}

/// Outcome of a lock-free [`CellStore::try_retract`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRetract {
    /// Retracted. `cas_failures` as in [`TryPublish::Done`].
    Done {
        /// Lost CAS attempts on the bitmap word before the winning flip.
        cas_failures: u64,
    },
    /// Another writer holds the cell's claim right now — retry.
    Busy,
    /// The cell no longer holds the expected key (already removed, or
    /// reused for a different key) — re-locate.
    Gone,
}

/// One level (or the whole array) of a scheme's cells: bitmap + codec +
/// commit choreography.
#[derive(Debug)]
pub struct CellStore<K: Pod, V: Pod> {
    /// Per-cell occupancy bits; flipping one word is the commit point.
    pub bitmap: PmemBitmap,
    /// The cell payload array the bitmap guards.
    pub cells: CellArray<K, V>,
}

// Manual impls: `CellArray` is `Copy` regardless of K/V bounds, and
// `derive` would wrongly require `K: Clone + Copy, V: Clone + Copy`.
impl<K: Pod, V: Pod> Clone for CellStore<K, V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<K: Pod, V: Pod> Copy for CellStore<K, V> {}

impl<K: Pod, V: Pod> CellStore<K, V> {
    /// Creates a store over `n` cells: zeroes + persists the bitmap,
    /// attaches the cell array (cells are assumed zeroed, as in a fresh
    /// pool).
    pub fn create<P: Pmem>(pm: &mut P, bitmap_region: Region, cells_region: Region, n: u64) -> Self {
        CellStore {
            bitmap: PmemBitmap::create(pm, bitmap_region, n),
            cells: CellArray::attach(cells_region, n),
        }
    }

    /// Attaches to an existing store without touching pmem.
    pub fn attach(bitmap_region: Region, cells_region: Region, n: u64) -> Self {
        CellStore {
            bitmap: PmemBitmap::attach(bitmap_region, n),
            cells: CellArray::attach(cells_region, n),
        }
    }

    /// Cells in the store.
    pub fn len(&self) -> u64 {
        self.cells.len()
    }

    /// True when the store holds zero cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Is cell `idx` committed (bitmap bit set)?
    pub fn is_occupied<R: PmemRead>(&self, pm: &R, idx: u64) -> bool {
        self.bitmap.get(pm, idx)
    }

    /// Reads the key of cell `idx`.
    pub fn read_key<R: PmemRead>(&self, pm: &R, idx: u64) -> K {
        self.cells.read_key(pm, idx)
    }

    /// Reads the value of cell `idx`.
    pub fn read_value<R: PmemRead>(&self, pm: &R, idx: u64) -> V {
        self.cells.read_value(pm, idx)
    }

    /// Committed cells (bitmap popcount).
    pub fn occupied<R: PmemRead>(&self, pm: &R) -> u64 {
        self.bitmap.count_ones(pm)
    }

    /// Failure-atomic publish: cell bytes, persist, then the one-word
    /// bitmap flip that commits. 2 flushes, 2 fences, 1 atomic write.
    pub fn publish<P: Pmem>(&self, pm: &mut P, idx: u64, key: &K, value: &V) {
        self.cells.write_entry(pm, idx, key, value);
        self.cells.persist_entry(pm, idx);
        self.bitmap.set_and_persist(pm, idx, true);
    }

    /// Failure-atomic retract, in the *inverted* order: clear the bit
    /// first (the commit), then scrub and persist the cell so recovery
    /// never resurrects it.
    pub fn retract<P: Pmem>(&self, pm: &mut P, idx: u64) {
        self.bitmap.set_and_persist(pm, idx, false);
        self.cells.clear_entry(pm, idx);
        self.cells.persist_entry(pm, idx);
    }

    /// Lock-free publish for concurrent writers: claim the cell, write +
    /// persist its bytes, then commit with a CAS loop on the occupancy
    /// word — writers publishing *different* cells of the same group (even
    /// the same word) never block each other.
    ///
    /// Persistence cost is identical to [`CellStore::publish`]: 2 flushes,
    /// 2 fences, and (uncontended) 1 atomic write; each lost word race
    /// adds one atomic write, reported in [`TryPublish::Done`].
    ///
    /// `after_commit` runs while the claim is still held, after the bit is
    /// durable — the hook for volatile per-cell caches (fingerprint tags):
    /// holding the claim across the hook means no other writer can reuse
    /// the cell and race its own tag update against ours.
    ///
    /// Returns [`TryPublish::Busy`] (nothing written) if the cell is
    /// claimed or already committed; the caller re-plans.
    pub fn try_publish<W: PmemWrite>(
        &self,
        w: &W,
        claims: &CellClaims,
        idx: u64,
        key: &K,
        value: &V,
        after_commit: impl FnOnce(),
    ) -> TryPublish {
        if !claims.try_claim(idx) {
            return TryPublish::Busy;
        }
        if self.bitmap.get(w, idx) {
            // Lost the planning race: someone committed this cell between
            // our free-cell scan and the claim.
            claims.release(idx);
            return TryPublish::Busy;
        }
        self.cells.write_entry_shared(w, idx, key, value);
        self.cells.persist_entry_shared(w, idx);
        let cas_failures = self.bitmap.cas_bit_and_persist(w, idx, true);
        after_commit();
        claims.release(idx);
        TryPublish::Done { cas_failures }
    }

    /// Lock-free retract, inverted order like [`CellStore::retract`]:
    /// claim, verify the cell still commits `expected_key`, CAS-clear the
    /// bit (the commit), then scrub. Same 2-flush / 2-fence / 1-atomic
    /// budget as the exclusive path.
    ///
    /// `after_commit` runs under the claim once the bit-clear is durable
    /// and the cell is scrubbed (tag-cache invalidation hook; the claim
    /// prevents a concurrent re-publisher of this cell from setting its
    /// new tag before we clear the old one).
    pub fn try_retract<W: PmemWrite>(
        &self,
        w: &W,
        claims: &CellClaims,
        idx: u64,
        expected_key: &K,
        after_commit: impl FnOnce(),
    ) -> TryRetract
    where
        K: PartialEq,
    {
        if !claims.try_claim(idx) {
            return TryRetract::Busy;
        }
        if !self.bitmap.get(w, idx) || self.cells.read_key(w, idx) != *expected_key {
            claims.release(idx);
            return TryRetract::Gone;
        }
        let cas_failures = self.bitmap.cas_bit_and_persist(w, idx, false);
        self.cells.clear_entry_shared(w, idx);
        self.cells.persist_entry_shared(w, idx);
        after_commit();
        claims.release(idx);
        TryRetract::Done { cas_failures }
    }

    /// [`CellStore::publish`] plus the co-located volatile tag update:
    /// the pmem choreography is *identical* (2 flushes / 2 fences / 1
    /// atomic — the bitmap flip stays the only commit point), and the
    /// DRAM tag lane is spliced after the bit is durable, mirroring the
    /// ordering `try_publish`'s `after_commit` hook gives concurrent
    /// writers.
    pub fn publish_tagged<P: Pmem>(
        &self,
        pm: &mut P,
        meta: &MetaWords,
        idx: u64,
        tag: u8,
        key: &K,
        value: &V,
    ) {
        self.publish(pm, idx, key, value);
        meta.set(idx, tag);
    }

    /// [`CellStore::retract`] plus the tag-lane clear, after the
    /// bit-clear commits (a reader that still sees the stale tag merely
    /// pays a verification probe against a now-free cell).
    pub fn retract_tagged<P: Pmem>(&self, pm: &mut P, meta: &MetaWords, idx: u64) {
        self.retract(pm, idx);
        meta.clear(idx);
    }

    /// [`CellStore::try_publish`] with the tag splice as the
    /// `after_commit` hook: the claim held across the splice stops
    /// another writer from reusing the cell and racing its tag against
    /// ours. Same budget as the untagged CAS path.
    #[allow(clippy::too_many_arguments)]
    pub fn try_publish_tagged<W: PmemWrite>(
        &self,
        w: &W,
        claims: &CellClaims,
        meta: &MetaWords,
        idx: u64,
        tag: u8,
        key: &K,
        value: &V,
    ) -> TryPublish {
        self.try_publish(w, claims, idx, key, value, || meta.set(idx, tag))
    }

    /// [`CellStore::try_retract`] with the tag-lane clear under the claim.
    pub fn try_retract_tagged<W: PmemWrite>(
        &self,
        w: &W,
        claims: &CellClaims,
        meta: &MetaWords,
        idx: u64,
        expected_key: &K,
    ) -> TryRetract
    where
        K: PartialEq,
    {
        self.try_retract(w, claims, idx, expected_key, || meta.clear(idx))
    }

    /// Records the pre-images a [`CellStore::publish`] of `idx` will
    /// overwrite — cell span, bitmap word, then the count word if the
    /// scheme persists one — into an open journal transaction, and seals
    /// them. No-op in `ConsistencyMode::None`.
    pub fn stage_publish<P: Pmem>(
        &self,
        pm: &mut P,
        journal: &mut Journal,
        idx: u64,
        count_off: Option<usize>,
    ) {
        journal.record(pm, self.cells.cell_off(idx), self.cells.entry_len());
        journal.record(pm, self.bitmap.word_off_of(idx), 8);
        if let Some(off) = count_off {
            journal.record(pm, off, 8);
        }
        journal.seal(pm);
    }

    /// Records the pre-images a [`CellStore::retract`] of `idx` will
    /// overwrite — bitmap word first, mirroring the inverted write order,
    /// then cell span and optional count word — and seals them.
    pub fn stage_retract<P: Pmem>(
        &self,
        pm: &mut P,
        journal: &mut Journal,
        idx: u64,
        count_off: Option<usize>,
    ) {
        journal.record(pm, self.bitmap.word_off_of(idx), 8);
        journal.record(pm, self.cells.cell_off(idx), self.cells.entry_len());
        if let Some(off) = count_off {
            journal.record(pm, off, 8);
        }
        journal.seal(pm);
    }

    /// True when cell `idx` is free *for batch planning*: its committed
    /// bit is clear and no staged publish in `sess` has claimed it. Staged
    /// retracts do **not** free a cell for re-use within the same batch —
    /// the bit only clears at commit.
    pub fn is_free_for<R: PmemRead>(&self, pm: &R, sess: &BatchSession<K, V>, idx: u64) -> bool {
        !self.is_occupied(pm, idx) && !sess.is_claimed(self, idx)
    }

    /// The per-store half of recovery (paper Algorithm 4): counts
    /// committed cells and scrubs any uncommitted cell a crashed publish
    /// left bytes in. Returns the committed count.
    pub fn recover_cells<P: Pmem>(&self, pm: &mut P) -> u64 {
        let mut count = 0;
        for i in 0..self.len() {
            if self.bitmap.get(pm, i) {
                count += 1;
            } else if !self.cells.is_zeroed(pm, i) {
                self.cells.clear_entry(pm, i);
                self.cells.persist_entry(pm, i);
            }
        }
        count
    }
}

/// What a staged batch operation will do at commit time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BatchOpKind {
    Publish,
    Retract,
}

/// A group-commit session over one or more [`CellStore`]s: stage many
/// publishes/retracts, then flip all their bitmap bits in **staging
/// order** with the fences coalesced.
///
/// The fence arithmetic (K ops, `ConsistencyMode::None`):
///
/// * **stage**: each publish writes + flushes its cell — no fence;
/// * **commit**: one *drain* fence retires every staged cell line, then
///   each op's 8-byte bit flip is flushed and fenced individually (the
///   per-op fence is what makes the durable set a strict *prefix* — at
///   most the in-flight op is ever ambiguous, even when ops share a
///   bitmap word), then retracted cells are scrubbed under one more
///   drain fence, and finally the count commits.
///
/// Totals: `K + 2` fences and `2K + 1` flushes for K inserts — versus
/// `3K`/`3K` for K single ops — while each op keeps the paper's 8-byte
/// failure-atomic commit point. A `K = 1` session reproduces the
/// single-op trace (3 flushes / 3 fences / 2 atomics) event for event.
///
/// Under [`ConsistencyMode::UndoLog`] the caller wraps the session in one
/// journal transaction (`begin` before staging, the session seals and
/// commits): the whole chunk becomes all-or-nothing, so the per-op fences
/// drop out too (~5 fences per chunk). Chunk size must respect the log
/// capacity — see [`Journal::ops_per_txn`].
///
/// Crash safety, mode `None`: staged cells are durable (drain fence)
/// *before* any bit flips, so an "early" bit never publishes a torn cell;
/// stale counts and un-scrubbed cells are repaired by recovery's recount +
/// wipe (Algorithm 4). Mode `UndoLog`: every touched span (cells, bitmap
/// words, count) is pre-imaged before its first in-place write, so
/// rollback restores the pre-batch state exactly.
///
/// ```
/// use nvm_table::{BatchSession, CellStore, ConsistencyMode, Journal};
/// use nvm_pmem::{Pmem, Region, SimConfig, SimPmem};
///
/// let mut pm = SimPmem::new(4096, SimConfig::fast_test());
/// let store =
///     CellStore::<u64, u64>::create(&mut pm, Region::new(0, 64), Region::new(64, 1024), 64);
/// let mut journal = Journal::create(&mut pm, ConsistencyMode::None, Region::new(0, 0));
///
/// // Stage three publishes, then commit them as one group: the staged
/// // cell lines drain under a single fence, then each op's 8-byte bit
/// // flip commits it in staging order.
/// let mut sess = BatchSession::new();
/// for idx in 0..3u64 {
///     assert!(store.is_free_for(&pm, &sess, idx));
///     sess.stage_publish(&mut pm, &mut journal, store, idx, &idx, &!idx);
/// }
/// assert_eq!(sess.staged(), 3);
/// sess.commit(&mut pm, &mut journal, None);
/// assert!(store.is_occupied(&pm, 1));
/// assert_eq!(store.read_value(&pm, 1), !1);
/// ```
#[derive(Debug)]
pub struct BatchSession<K: Pod, V: Pod> {
    /// Staged ops in commit order.
    ops: Vec<(CellStore<K, V>, BatchOpKind, u64)>,
    /// Cells claimed by staged publishes, keyed by (bitmap offset, idx) —
    /// the bitmap's pool offset identifies the store.
    claimed: HashSet<(usize, u64)>,
    /// Cells claimed by staged retracts (same keying).
    retracted: HashSet<(usize, u64)>,
    /// Deferred volatile tag-lane updates (`Some(tag)` = set, `None` =
    /// clear), applied by [`BatchSession::commit_tagged`] once the
    /// corresponding bit flips are durable.
    meta_ops: Vec<(u64, Option<u8>)>,
}

impl<K: Pod, V: Pod> Default for BatchSession<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Pod, V: Pod> BatchSession<K, V> {
    /// An empty session.
    pub fn new() -> Self {
        BatchSession {
            ops: Vec::new(),
            claimed: HashSet::new(),
            retracted: HashSet::new(),
            meta_ops: Vec::new(),
        }
    }

    /// Staged ops not yet committed.
    pub fn staged(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    #[inline]
    fn cell_key(store: &CellStore<K, V>, idx: u64) -> (usize, u64) {
        (store.bitmap.region().off, idx)
    }

    /// Has a staged publish already claimed `idx` in `store`? Batch
    /// planners must treat claimed cells as occupied.
    pub fn is_claimed(&self, store: &CellStore<K, V>, idx: u64) -> bool {
        self.claimed.contains(&Self::cell_key(store, idx))
    }

    /// Has a staged retract already covered `idx` in `store`? Guards
    /// against double-retracting one cell (e.g. duplicate keys in a
    /// remove batch), which would double-count the decrement.
    pub fn is_retracted(&self, store: &CellStore<K, V>, idx: u64) -> bool {
        self.retracted.contains(&Self::cell_key(store, idx))
    }

    /// Stages a publish of `(key, value)` into `store[idx]`: records the
    /// cell + bitmap-word pre-images into the open journal transaction
    /// (no-op in mode `None`), writes the cell bytes and flushes them —
    /// **no fence**; [`BatchSession::commit`] drains all staged lines
    /// with one.
    pub fn stage_publish<P: Pmem>(
        &mut self,
        pm: &mut P,
        journal: &mut Journal,
        store: CellStore<K, V>,
        idx: u64,
        key: &K,
        value: &V,
    ) {
        debug_assert!(!self.is_claimed(&store, idx), "cell {idx} claimed twice");
        journal.record(pm, store.cells.cell_off(idx), store.cells.entry_len());
        journal.record(pm, store.bitmap.word_off_of(idx), 8);
        store.cells.write_entry(pm, idx, key, value);
        pm.flush(store.cells.cell_off(idx), store.cells.entry_len());
        self.claimed.insert(Self::cell_key(&store, idx));
        self.ops.push((store, BatchOpKind::Publish, idx));
    }

    /// Stages a retract of `store[idx]`: records the bitmap-word + cell
    /// pre-images (inverted span order, mirroring
    /// [`CellStore::stage_retract`]). No pool bytes change until commit —
    /// the bit clear *is* the retract's commit point and must stay in
    /// batch order.
    pub fn stage_retract<P: Pmem>(
        &mut self,
        pm: &mut P,
        journal: &mut Journal,
        store: CellStore<K, V>,
        idx: u64,
    ) {
        debug_assert!(!self.is_retracted(&store, idx), "cell {idx} retracted twice");
        journal.record(pm, store.bitmap.word_off_of(idx), 8);
        journal.record(pm, store.cells.cell_off(idx), store.cells.entry_len());
        self.retracted.insert(Self::cell_key(&store, idx));
        self.ops.push((store, BatchOpKind::Retract, idx));
    }

    /// [`BatchSession::stage_publish`] plus a deferred tag-lane splice:
    /// the pmem staging is identical; the volatile tag is recorded here
    /// and applied by [`BatchSession::commit_tagged`] after the op's bit
    /// flip is durable, so readers never see a tag for an uncommitted
    /// cell.
    #[allow(clippy::too_many_arguments)]
    pub fn stage_publish_tagged<P: Pmem>(
        &mut self,
        pm: &mut P,
        journal: &mut Journal,
        store: CellStore<K, V>,
        idx: u64,
        tag: u8,
        key: &K,
        value: &V,
    ) {
        self.stage_publish(pm, journal, store, idx, key, value);
        self.meta_ops.push((idx, Some(tag)));
    }

    /// [`BatchSession::stage_retract`] plus the deferred tag-lane clear.
    pub fn stage_retract_tagged<P: Pmem>(
        &mut self,
        pm: &mut P,
        journal: &mut Journal,
        store: CellStore<K, V>,
        idx: u64,
    ) {
        self.stage_retract(pm, journal, store, idx);
        self.meta_ops.push((idx, None));
    }

    /// [`BatchSession::commit`] followed by the deferred tag splices —
    /// DRAM-only, so the batch's pinned fence/flush/atomic arithmetic is
    /// untouched.
    pub fn commit_tagged<P: Pmem>(
        &mut self,
        pm: &mut P,
        journal: &mut Journal,
        count: Option<(usize, u64)>,
        meta: &MetaWords,
    ) {
        self.commit(pm, journal, count);
        for (idx, op) in self.meta_ops.drain(..) {
            match op {
                Some(tag) => meta.set(idx, tag),
                None => meta.clear(idx),
            }
        }
    }

    /// Commits every staged op in staging order, then the optional count
    /// word (`(pool offset, new absolute value)`), then the journal
    /// transaction.
    ///
    /// Mode `None`: drain staged cell flushes with one fence, flip each
    /// bit with its own flush + fence (the strict-prefix guarantee), scrub
    /// retracted cells, drain, commit the count. Mode `UndoLog`: the
    /// caller's open transaction is sealed here (count pre-image
    /// included), the per-op fences drop out, and `journal.commit` ends
    /// the chunk. Callers must have called [`Journal::begin`] before
    /// staging when the journal is logged, and should skip the whole
    /// begin/stage/commit dance for empty chunks.
    pub fn commit<P: Pmem>(
        &mut self,
        pm: &mut P,
        journal: &mut Journal,
        count: Option<(usize, u64)>,
    ) {
        let logged = journal.mode() == ConsistencyMode::UndoLog;
        let has_publish = self.ops.iter().any(|(_, k, _)| *k == BatchOpKind::Publish);
        let has_retract = self.ops.iter().any(|(_, k, _)| *k == BatchOpKind::Retract);
        if logged {
            if let Some((off, _)) = count {
                journal.record(pm, off, 8);
            }
            // Seal's fence also drains the staged cell flushes.
            journal.seal(pm);
        } else if has_publish {
            pm.fence(); // drain: every staged cell is durable before any bit flips
        }
        for &(store, kind, idx) in &self.ops {
            store.bitmap.set_volatile(pm, idx, kind == BatchOpKind::Publish);
            pm.flush(store.bitmap.word_off_of(idx), 8);
            if !logged {
                // The prefix point: ops before this fence are durable, at
                // most this op is in flight. Required even for ops sharing
                // a bitmap word — a coalesced trailing fence would let a
                // later op's word write outrun an earlier op's.
                pm.fence();
            }
        }
        for &(store, kind, idx) in &self.ops {
            if kind == BatchOpKind::Retract {
                store.cells.clear_entry(pm, idx);
                pm.flush(store.cells.cell_off(idx), store.cells.entry_len());
            }
        }
        if (logged && !self.ops.is_empty()) || has_retract {
            pm.fence(); // drain bit-flip / scrub flushes before the count commits
        }
        if let Some((off, v)) = count {
            pm.atomic_write_u64(off, v);
            pm.persist(off, 8);
        }
        journal.commit(pm);
        self.ops.clear();
        self.claimed.clear();
        self.retracted.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_pmem::{CrashResolution, Pmem, SimConfig, SimPmem};

    fn store(pm_bytes: usize, n: u64) -> (SimPmem, CellStore<u64, u64>) {
        let mut pm = SimPmem::new(pm_bytes, SimConfig::fast_test());
        let bm = Region::new(0, PmemBitmap::region_size(n).max(8));
        let cells = Region::new(1024, CellArray::<u64, u64>::region_size(n));
        let s = CellStore::create(&mut pm, bm, cells, n);
        (pm, s)
    }

    #[test]
    fn publish_then_retract_roundtrip() {
        let (mut pm, s) = store(1 << 16, 64);
        assert!(!s.is_occupied(&pm, 7));
        s.publish(&mut pm, 7, &0xAB, &0xCD);
        assert!(s.is_occupied(&pm, 7));
        assert_eq!(s.read_key(&pm, 7), 0xAB);
        assert_eq!(s.read_value(&pm, 7), 0xCD);
        assert_eq!(s.occupied(&pm), 1);
        s.retract(&mut pm, 7);
        assert!(!s.is_occupied(&pm, 7));
        assert!(s.cells.is_zeroed(&pm, 7));
        assert_eq!(s.occupied(&pm), 0);
    }

    #[test]
    fn publish_costs_two_flushes_one_atomic() {
        let (mut pm, s) = store(1 << 16, 64);
        pm.reset_stats();
        s.publish(&mut pm, 3, &1, &2);
        let st = pm.stats();
        assert_eq!(st.flushes, 2);
        assert_eq!(st.fences, 2);
        assert_eq!(st.atomic_writes, 1);
    }

    #[test]
    fn recover_wipes_uncommitted_cells_only() {
        let (mut pm, s) = store(1 << 16, 64);
        s.publish(&mut pm, 1, &10, &11);
        // A torn publish: cell written + persisted, bit never flipped.
        s.cells.write_entry(&mut pm, 2, &20, &21);
        s.cells.persist_entry(&mut pm, 2);
        assert_eq!(s.recover_cells(&mut pm), 1);
        assert!(s.cells.is_zeroed(&pm, 2));
        assert_eq!(s.read_key(&pm, 1), 10);
    }

    #[test]
    fn staged_publish_rolls_back_after_crash() {
        let (mut pm, s) = store(1 << 16, 64);
        let log_region = Region::new(1 << 15, 1024);
        let mut j = Journal::create(&mut pm, ConsistencyMode::UndoLog, log_region);
        j.begin(&mut pm);
        s.stage_publish(&mut pm, &mut j, 5, None);
        s.publish(&mut pm, 5, &50, &51);
        // Crash before commit: the undo log restores the pre-images.
        pm.crash(CrashResolution::PersistAll);
        let mut j2 = Journal::open(ConsistencyMode::UndoLog, log_region);
        assert!(j2.recover(&mut pm));
        assert!(!s.is_occupied(&pm, 5));
        assert!(s.cells.is_zeroed(&pm, 5));
    }

    #[test]
    fn staged_retract_rolls_back_after_crash() {
        let (mut pm, s) = store(1 << 16, 64);
        let log_region = Region::new(1 << 15, 1024);
        s.publish(&mut pm, 9, &90, &91);
        let mut j = Journal::create(&mut pm, ConsistencyMode::UndoLog, log_region);
        j.begin(&mut pm);
        s.stage_retract(&mut pm, &mut j, 9, None);
        s.retract(&mut pm, 9);
        pm.crash(CrashResolution::PersistAll);
        let mut j2 = Journal::open(ConsistencyMode::UndoLog, log_region);
        assert!(j2.recover(&mut pm));
        assert!(s.is_occupied(&pm, 9));
        assert_eq!(s.read_key(&pm, 9), 90);
        assert_eq!(s.read_value(&pm, 9), 91);
    }

    /// A one-publish batch (plus count) must cost exactly what the
    /// single-op path costs: 3 flushes, 3 fences, 2 atomic writes.
    #[test]
    fn batch_of_one_publish_matches_single_op_budget() {
        let (mut pm, s) = store(1 << 16, 64);
        let mut j = Journal::open(ConsistencyMode::None, Region::new(1 << 15, 1024));
        let count_off = 1 << 14;
        pm.reset_stats();
        let mut sess = BatchSession::new();
        sess.stage_publish(&mut pm, &mut j, s, 3, &1, &2);
        sess.commit(&mut pm, &mut j, Some((count_off, 1)));
        let st = pm.stats();
        assert_eq!(st.flushes, 3);
        assert_eq!(st.fences, 3);
        assert_eq!(st.atomic_writes, 2);
        assert!(s.is_occupied(&pm, 3));
        assert_eq!(pm.read_u64(count_off), 1);
    }

    /// A one-retract batch (plus count) likewise matches the single-op
    /// retract + count-decrement budget, bytes included.
    #[test]
    fn batch_of_one_retract_matches_single_op_budget() {
        let (mut pm, s) = store(1 << 16, 64);
        s.publish(&mut pm, 5, &50, &51);
        let mut j = Journal::open(ConsistencyMode::None, Region::new(1 << 15, 1024));
        let count_off = 1 << 14;
        pm.reset_stats();
        let mut sess = BatchSession::new();
        sess.stage_retract(&mut pm, &mut j, s, 5);
        sess.commit(&mut pm, &mut j, Some((count_off, 0)));
        let st = pm.stats();
        assert_eq!(st.flushes, 3);
        assert_eq!(st.fences, 3);
        assert_eq!(st.atomic_writes, 2);
        assert_eq!(st.bytes_written, 32); // word + 16-byte cell + count
        assert!(!s.is_occupied(&pm, 5));
        assert!(s.cells.is_zeroed(&pm, 5));
    }

    /// K publishes coalesce to K + 2 fences (drain, K prefix points,
    /// count) and 2K + 1 flushes.
    #[test]
    fn batch_publish_fences_are_k_plus_two() {
        let k = 8u64;
        let (mut pm, s) = store(1 << 16, 64);
        let mut j = Journal::open(ConsistencyMode::None, Region::new(1 << 15, 1024));
        pm.reset_stats();
        let mut sess = BatchSession::new();
        for i in 0..k {
            sess.stage_publish(&mut pm, &mut j, s, i, &i, &(i * 10));
        }
        sess.commit(&mut pm, &mut j, Some((1 << 14, k)));
        let st = pm.stats();
        assert_eq!(st.fences, k + 2);
        assert_eq!(st.flushes, 2 * k + 1);
        assert_eq!(st.atomic_writes, k + 1);
        for i in 0..k {
            assert!(s.is_occupied(&pm, i));
            assert_eq!(s.read_value(&pm, i), i * 10);
        }
    }

    /// The claimed-cell overlay: planners must see staged cells as taken
    /// even though their bits have not flipped yet.
    #[test]
    fn overlay_tracks_staged_cells() {
        let (mut pm, s) = store(1 << 16, 64);
        s.publish(&mut pm, 2, &1, &1);
        let mut j = Journal::open(ConsistencyMode::None, Region::new(1 << 15, 1024));
        let mut sess = BatchSession::new();
        assert!(s.is_free_for(&pm, &sess, 1));
        sess.stage_publish(&mut pm, &mut j, s, 1, &10, &11);
        assert!(!s.is_free_for(&pm, &sess, 1)); // claimed
        assert!(!s.is_free_for(&pm, &sess, 2)); // committed
        assert!(s.is_free_for(&pm, &sess, 3));
        sess.stage_retract(&mut pm, &mut j, s, 2);
        assert!(sess.is_retracted(&s, 2));
        // Retracted cells stay unavailable until commit.
        assert!(!s.is_free_for(&pm, &sess, 2));
        sess.commit(&mut pm, &mut j, None);
        assert!(s.is_occupied(&pm, 1));
        assert!(s.is_free_for(&pm, &sess, 2));
    }

    /// The lock-free publish/retract pair matches the exclusive-path
    /// persistence budget exactly (2 flushes / 2 fences / 1 atomic each).
    #[test]
    fn try_publish_and_retract_match_exclusive_budget() {
        let (mut pm, s) = store(1 << 16, 64);
        let claims = CellClaims::new(64);
        let w = pm.write_handle();
        pm.reset_stats();
        let r = s.try_publish(&w, &claims, 3, &7, &70, || {});
        assert_eq!(r, TryPublish::Done { cas_failures: 0 });
        let st = pm.stats();
        assert_eq!((st.flushes, st.fences, st.atomic_writes), (2, 2, 1));
        assert!(s.is_occupied(&pm, 3));
        assert_eq!(s.read_value(&pm, 3), 70);
        assert!(!claims.is_claimed(3), "claim released after commit");

        pm.reset_stats();
        let r = s.try_retract(&w, &claims, 3, &7, || {});
        assert_eq!(r, TryRetract::Done { cas_failures: 0 });
        let st = pm.stats();
        assert_eq!((st.flushes, st.fences, st.atomic_writes), (2, 2, 1));
        assert!(!s.is_occupied(&pm, 3));
        assert!(s.cells.is_zeroed(&pm, 3));
    }

    #[test]
    fn try_publish_refuses_claimed_or_occupied_cells() {
        let (mut pm, s) = store(1 << 16, 64);
        let claims = CellClaims::new(64);
        let w = pm.write_handle();
        assert!(claims.try_claim(5));
        assert_eq!(s.try_publish(&w, &claims, 5, &1, &2, || {}), TryPublish::Busy);
        claims.release(5);
        s.publish(&mut pm, 5, &1, &2);
        pm.reset_stats();
        assert_eq!(s.try_publish(&w, &claims, 5, &9, &9, || {}), TryPublish::Busy);
        assert_eq!(pm.stats().writes, 0, "busy publish writes nothing");
        assert!(!claims.is_claimed(5));
    }

    #[test]
    fn try_retract_reports_gone_on_mismatch() {
        let (mut pm, s) = store(1 << 16, 64);
        let claims = CellClaims::new(64);
        let w = pm.write_handle();
        assert_eq!(s.try_retract(&w, &claims, 2, &1, || {}), TryRetract::Gone);
        s.publish(&mut pm, 2, &10, &11);
        assert_eq!(s.try_retract(&w, &claims, 2, &99, || {}), TryRetract::Gone);
        assert!(s.is_occupied(&pm, 2), "mismatch must not retract");
        assert!(claims.try_claim(2));
        assert_eq!(s.try_retract(&w, &claims, 2, &10, || {}), TryRetract::Busy);
        claims.release(2);
        assert_eq!(s.try_retract(&w, &claims, 2, &10, || {}), TryRetract::Done { cas_failures: 0 });
    }

    #[test]
    fn after_commit_hook_runs_inside_claim_window() {
        let (mut pm, s) = store(1 << 16, 64);
        let claims = CellClaims::new(64);
        let w = pm.write_handle();
        let mut saw_claim = false;
        s.try_publish(&w, &claims, 1, &4, &5, || {
            saw_claim = claims.is_claimed(1);
        });
        assert!(saw_claim, "hook must run before the claim is released");
    }

    #[test]
    fn concurrent_publishers_share_a_bitmap_word_without_losing_bits() {
        let mut pm = SimPmem::new(1 << 18, SimConfig::fast_test());
        let bm = Region::new(0, PmemBitmap::region_size(64).max(8));
        let cells = Region::new(1024, CellArray::<u64, u64>::region_size(64));
        let s = CellStore::<u64, u64>::create(&mut pm, bm, cells, 64);
        let claims = std::sync::Arc::new(CellClaims::new(64));
        // 4 writers × 16 cells, all 64 bits in the SAME bitmap word.
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let w = pm.write_handle();
                let claims = std::sync::Arc::clone(&claims);
                std::thread::spawn(move || {
                    for i in (t * 16)..(t * 16 + 16) {
                        loop {
                            match s.try_publish(&w, &claims, i, &i, &(i * 2), || {}) {
                                TryPublish::Done { .. } => break,
                                TryPublish::Busy => std::hint::spin_loop(),
                            }
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(s.occupied(&pm), 64, "every publish committed");
        for i in 0..64 {
            assert_eq!(s.read_key(&pm, i), i);
            assert_eq!(s.read_value(&pm, i), i * 2);
        }
    }

    /// The tagged wrappers must cost exactly what the untagged paths
    /// cost: tag lanes are DRAM, the bitmap flip stays the only commit
    /// point.
    #[test]
    fn tagged_paths_match_untagged_budgets() {
        let (mut pm, s) = store(1 << 16, 64);
        let meta = MetaWords::new(64);
        pm.reset_stats();
        s.publish_tagged(&mut pm, &meta, 3, 0xA7, &1, &2);
        let st = pm.stats();
        assert_eq!((st.flushes, st.fences, st.atomic_writes), (2, 2, 1));
        assert_eq!(meta.tag(3), 0xA7);
        assert!(s.is_occupied(&pm, 3));

        pm.reset_stats();
        s.retract_tagged(&mut pm, &meta, 3);
        let st = pm.stats();
        assert_eq!((st.flushes, st.fences, st.atomic_writes), (2, 2, 1));
        assert_eq!(meta.tag(3), 0);
        assert!(!s.is_occupied(&pm, 3));

        let claims = CellClaims::new(64);
        let w = pm.write_handle();
        pm.reset_stats();
        let r = s.try_publish_tagged(&w, &claims, &meta, 5, 0x33, &9, &10);
        assert_eq!(r, TryPublish::Done { cas_failures: 0 });
        let st = pm.stats();
        assert_eq!((st.flushes, st.fences, st.atomic_writes), (2, 2, 1));
        assert_eq!(meta.tag(5), 0x33);

        pm.reset_stats();
        let r = s.try_retract_tagged(&w, &claims, &meta, 5, &9);
        assert_eq!(r, TryRetract::Done { cas_failures: 0 });
        let st = pm.stats();
        assert_eq!((st.flushes, st.fences, st.atomic_writes), (2, 2, 1));
        assert_eq!(meta.tag(5), 0);
    }

    /// A tagged batch of one matches the single-op 3/3/2 budget, and the
    /// tag lanes land only at commit.
    #[test]
    fn tagged_batch_of_one_matches_single_op_budget() {
        let (mut pm, s) = store(1 << 16, 64);
        let meta = MetaWords::new(64);
        let mut j = Journal::open(ConsistencyMode::None, Region::new(1 << 15, 1024));
        let count_off = 1 << 14;
        pm.reset_stats();
        let mut sess = BatchSession::new();
        sess.stage_publish_tagged(&mut pm, &mut j, s, 3, 0x61, &1, &2);
        assert_eq!(meta.tag(3), 0, "tag deferred until commit");
        sess.commit_tagged(&mut pm, &mut j, Some((count_off, 1)), &meta);
        let st = pm.stats();
        assert_eq!((st.flushes, st.fences, st.atomic_writes), (3, 3, 2));
        assert_eq!(meta.tag(3), 0x61);

        pm.reset_stats();
        sess.stage_retract_tagged(&mut pm, &mut j, s, 3);
        sess.commit_tagged(&mut pm, &mut j, Some((count_off, 0)), &meta);
        let st = pm.stats();
        assert_eq!((st.flushes, st.fences, st.atomic_writes), (3, 3, 2));
        assert_eq!(meta.tag(3), 0);
        assert!(!s.is_occupied(&pm, 3));
    }

    /// A logged batch chunk is all-or-nothing: crash before the journal
    /// commit rolls every staged op back.
    #[test]
    fn logged_batch_rolls_back_after_crash() {
        let (mut pm, s) = store(1 << 16, 64);
        s.publish(&mut pm, 0, &100, &101);
        let log_region = Region::new(1 << 15, 1024);
        let mut j = Journal::create(&mut pm, ConsistencyMode::UndoLog, log_region);
        j.begin(&mut pm);
        let mut sess = BatchSession::new();
        sess.stage_publish(&mut pm, &mut j, s, 1, &10, &11);
        sess.stage_publish(&mut pm, &mut j, s, 2, &20, &21);
        sess.stage_retract(&mut pm, &mut j, s, 0);
        // Run the commit by hand up to (but not including) journal.commit:
        // seal + flips + scrub are all pre-imaged.
        j.seal(&mut pm);
        s.bitmap.set_volatile(&mut pm, 1, true);
        s.bitmap.set_volatile(&mut pm, 2, true);
        s.bitmap.set_volatile(&mut pm, 0, false);
        s.cells.clear_entry(&mut pm, 0);
        pm.crash(CrashResolution::PersistAll);
        let mut j2 = Journal::open(ConsistencyMode::UndoLog, log_region);
        assert!(j2.recover(&mut pm));
        assert!(s.is_occupied(&pm, 0));
        assert_eq!(s.read_key(&pm, 0), 100);
        assert!(!s.is_occupied(&pm, 1));
        assert!(s.cells.is_zeroed(&pm, 1));
        assert!(!s.is_occupied(&pm, 2));
    }
}
