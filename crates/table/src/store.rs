//! The cell store: pmem-facing occupancy bitmap + cell codec + the
//! failure-atomic publish/retract choreography every scheme commits
//! through.
//!
//! A [`CellStore`] bundles one [`PmemBitmap`] with one [`CellArray`] over
//! the same cell index space and owns the *order* of persistent writes:
//!
//! * **publish** (paper Algorithm 1, last three lines): write the cell,
//!   persist it, then atomically flip its bitmap bit — the 8-byte bit flip
//!   is the commit point, so a crash before it leaves an unreferenced cell
//!   that recovery wipes.
//! * **retract** (Algorithm 3, inverted order): atomically clear the bit
//!   first, then scrub and persist the cell — a crash after the flip
//!   leaves stale bytes in a cell the bitmap already disowns.
//!
//! For undo-logged variants the matching `stage_*` helpers record the
//! pre-images into an open [`Journal`] transaction in the canonical span
//! order (publish: cell, bitmap word, count; retract: bitmap word, cell,
//! count) and seal them, so `ConsistencyMode::UndoLog` is applied in
//! exactly one place. Pure candidate-cell arithmetic lives one layer up in
//! [`crate::probe`]; scheme policy (which cell to try next) one layer above
//! that.

use crate::{CellArray, Journal, PmemBitmap};
use nvm_hashfn::Pod;
use nvm_pmem::{Pmem, Region};

/// One level (or the whole array) of a scheme's cells: bitmap + codec +
/// commit choreography.
#[derive(Debug)]
pub struct CellStore<K: Pod, V: Pod> {
    /// Per-cell occupancy bits; flipping one word is the commit point.
    pub bitmap: PmemBitmap,
    /// The cell payload array the bitmap guards.
    pub cells: CellArray<K, V>,
}

// Manual impls: `CellArray` is `Copy` regardless of K/V bounds, and
// `derive` would wrongly require `K: Clone + Copy, V: Clone + Copy`.
impl<K: Pod, V: Pod> Clone for CellStore<K, V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<K: Pod, V: Pod> Copy for CellStore<K, V> {}

impl<K: Pod, V: Pod> CellStore<K, V> {
    /// Creates a store over `n` cells: zeroes + persists the bitmap,
    /// attaches the cell array (cells are assumed zeroed, as in a fresh
    /// pool).
    pub fn create<P: Pmem>(pm: &mut P, bitmap_region: Region, cells_region: Region, n: u64) -> Self {
        CellStore {
            bitmap: PmemBitmap::create(pm, bitmap_region, n),
            cells: CellArray::attach(cells_region, n),
        }
    }

    /// Attaches to an existing store without touching pmem.
    pub fn attach(bitmap_region: Region, cells_region: Region, n: u64) -> Self {
        CellStore {
            bitmap: PmemBitmap::attach(bitmap_region, n),
            cells: CellArray::attach(cells_region, n),
        }
    }

    /// Cells in the store.
    pub fn len(&self) -> u64 {
        self.cells.len()
    }

    /// True when the store holds zero cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Is cell `idx` committed (bitmap bit set)?
    pub fn is_occupied<P: Pmem>(&self, pm: &mut P, idx: u64) -> bool {
        self.bitmap.get(pm, idx)
    }

    /// Reads the key of cell `idx`.
    pub fn read_key<P: Pmem>(&self, pm: &mut P, idx: u64) -> K {
        self.cells.read_key(pm, idx)
    }

    /// Reads the value of cell `idx`.
    pub fn read_value<P: Pmem>(&self, pm: &mut P, idx: u64) -> V {
        self.cells.read_value(pm, idx)
    }

    /// Committed cells (bitmap popcount).
    pub fn occupied<P: Pmem>(&self, pm: &mut P) -> u64 {
        self.bitmap.count_ones(pm)
    }

    /// Failure-atomic publish: cell bytes, persist, then the one-word
    /// bitmap flip that commits. 2 flushes, 2 fences, 1 atomic write.
    pub fn publish<P: Pmem>(&self, pm: &mut P, idx: u64, key: &K, value: &V) {
        self.cells.write_entry(pm, idx, key, value);
        self.cells.persist_entry(pm, idx);
        self.bitmap.set_and_persist(pm, idx, true);
    }

    /// Failure-atomic retract, in the *inverted* order: clear the bit
    /// first (the commit), then scrub and persist the cell so recovery
    /// never resurrects it.
    pub fn retract<P: Pmem>(&self, pm: &mut P, idx: u64) {
        self.bitmap.set_and_persist(pm, idx, false);
        self.cells.clear_entry(pm, idx);
        self.cells.persist_entry(pm, idx);
    }

    /// Records the pre-images a [`CellStore::publish`] of `idx` will
    /// overwrite — cell span, bitmap word, then the count word if the
    /// scheme persists one — into an open journal transaction, and seals
    /// them. No-op in `ConsistencyMode::None`.
    pub fn stage_publish<P: Pmem>(
        &self,
        pm: &mut P,
        journal: &mut Journal,
        idx: u64,
        count_off: Option<usize>,
    ) {
        journal.record(pm, self.cells.cell_off(idx), self.cells.entry_len());
        journal.record(pm, self.bitmap.word_off_of(idx), 8);
        if let Some(off) = count_off {
            journal.record(pm, off, 8);
        }
        journal.seal(pm);
    }

    /// Records the pre-images a [`CellStore::retract`] of `idx` will
    /// overwrite — bitmap word first, mirroring the inverted write order,
    /// then cell span and optional count word — and seals them.
    pub fn stage_retract<P: Pmem>(
        &self,
        pm: &mut P,
        journal: &mut Journal,
        idx: u64,
        count_off: Option<usize>,
    ) {
        journal.record(pm, self.bitmap.word_off_of(idx), 8);
        journal.record(pm, self.cells.cell_off(idx), self.cells.entry_len());
        if let Some(off) = count_off {
            journal.record(pm, off, 8);
        }
        journal.seal(pm);
    }

    /// The per-store half of recovery (paper Algorithm 4): counts
    /// committed cells and scrubs any uncommitted cell a crashed publish
    /// left bytes in. Returns the committed count.
    pub fn recover_cells<P: Pmem>(&self, pm: &mut P) -> u64 {
        let mut count = 0;
        for i in 0..self.len() {
            if self.bitmap.get(pm, i) {
                count += 1;
            } else if !self.cells.is_zeroed(pm, i) {
                self.cells.clear_entry(pm, i);
                self.cells.persist_entry(pm, i);
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConsistencyMode;
    use nvm_pmem::{CrashResolution, Pmem, SimConfig, SimPmem};

    fn store(pm_bytes: usize, n: u64) -> (SimPmem, CellStore<u64, u64>) {
        let mut pm = SimPmem::new(pm_bytes, SimConfig::fast_test());
        let bm = Region::new(0, PmemBitmap::region_size(n).max(8));
        let cells = Region::new(1024, CellArray::<u64, u64>::region_size(n));
        let s = CellStore::create(&mut pm, bm, cells, n);
        (pm, s)
    }

    #[test]
    fn publish_then_retract_roundtrip() {
        let (mut pm, s) = store(1 << 16, 64);
        assert!(!s.is_occupied(&mut pm, 7));
        s.publish(&mut pm, 7, &0xAB, &0xCD);
        assert!(s.is_occupied(&mut pm, 7));
        assert_eq!(s.read_key(&mut pm, 7), 0xAB);
        assert_eq!(s.read_value(&mut pm, 7), 0xCD);
        assert_eq!(s.occupied(&mut pm), 1);
        s.retract(&mut pm, 7);
        assert!(!s.is_occupied(&mut pm, 7));
        assert!(s.cells.is_zeroed(&mut pm, 7));
        assert_eq!(s.occupied(&mut pm), 0);
    }

    #[test]
    fn publish_costs_two_flushes_one_atomic() {
        let (mut pm, s) = store(1 << 16, 64);
        pm.reset_stats();
        s.publish(&mut pm, 3, &1, &2);
        let st = pm.stats();
        assert_eq!(st.flushes, 2);
        assert_eq!(st.fences, 2);
        assert_eq!(st.atomic_writes, 1);
    }

    #[test]
    fn recover_wipes_uncommitted_cells_only() {
        let (mut pm, s) = store(1 << 16, 64);
        s.publish(&mut pm, 1, &10, &11);
        // A torn publish: cell written + persisted, bit never flipped.
        s.cells.write_entry(&mut pm, 2, &20, &21);
        s.cells.persist_entry(&mut pm, 2);
        assert_eq!(s.recover_cells(&mut pm), 1);
        assert!(s.cells.is_zeroed(&mut pm, 2));
        assert_eq!(s.read_key(&mut pm, 1), 10);
    }

    #[test]
    fn staged_publish_rolls_back_after_crash() {
        let (mut pm, s) = store(1 << 16, 64);
        let log_region = Region::new(1 << 15, 1024);
        let mut j = Journal::create(&mut pm, ConsistencyMode::UndoLog, log_region);
        j.begin(&mut pm);
        s.stage_publish(&mut pm, &mut j, 5, None);
        s.publish(&mut pm, 5, &50, &51);
        // Crash before commit: the undo log restores the pre-images.
        pm.crash(CrashResolution::PersistAll);
        let mut j2 = Journal::open(ConsistencyMode::UndoLog, log_region);
        assert!(j2.recover(&mut pm));
        assert!(!s.is_occupied(&mut pm, 5));
        assert!(s.cells.is_zeroed(&mut pm, 5));
    }

    #[test]
    fn staged_retract_rolls_back_after_crash() {
        let (mut pm, s) = store(1 << 16, 64);
        let log_region = Region::new(1 << 15, 1024);
        s.publish(&mut pm, 9, &90, &91);
        let mut j = Journal::create(&mut pm, ConsistencyMode::UndoLog, log_region);
        j.begin(&mut pm);
        s.stage_retract(&mut pm, &mut j, 9, None);
        s.retract(&mut pm, 9);
        pm.crash(CrashResolution::PersistAll);
        let mut j2 = Journal::open(ConsistencyMode::UndoLog, log_region);
        assert!(j2.recover(&mut pm));
        assert!(s.is_occupied(&mut pm, 9));
        assert_eq!(s.read_key(&mut pm, 9), 90);
        assert_eq!(s.read_value(&mut pm, 9), 91);
    }
}
