//! Typed errors for table construction and attach.
//!
//! Every scheme used to report create/open failures as bare `String`s;
//! those were fine for humans but invisible to `?`-based layering and
//! impossible to match on. `TableError` keeps the exact message detail (the
//! `Display` impl reproduces the old strings) while implementing
//! [`std::error::Error`] so callers can box, wrap, or branch on it.

use core::fmt;

/// Why a table could not be created in, or opened from, a pmem region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// The region cannot hold the requested (or persisted) layout.
    RegionTooSmall {
        /// Bytes available.
        have: usize,
        /// Bytes the layout requires.
        need: usize,
    },
    /// The header magic does not identify the expected scheme.
    MagicMismatch {
        /// Magic found in the header.
        found: u64,
        /// Magic the caller expected.
        expected: u64,
    },
    /// The persisted key/value sizes disagree with the requested types.
    TypeMismatch {
        /// Key size recorded in the header.
        persisted_key: u64,
        /// Value size recorded in the header.
        persisted_value: u64,
        /// Key size of the requested type.
        requested_key: usize,
        /// Value size of the requested type.
        requested_value: usize,
    },
    /// Invalid construction parameters (power-of-two checks, geometry
    /// bounds). The string carries the specific complaint.
    Config(String),
    /// The persisted state is self-inconsistent or does not fit the region
    /// it claims to describe.
    Corrupt(String),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::RegionTooSmall { have, need } => {
                write!(f, "region too small: {have} < {need}")
            }
            TableError::MagicMismatch { found, expected } => write!(
                f,
                "header magic mismatch: found {found:#x}, expected {expected:#x}"
            ),
            TableError::TypeMismatch {
                persisted_key,
                persisted_value,
                requested_key,
                requested_value,
            } => write!(
                f,
                "type mismatch: persisted K/V sizes {persisted_key}/{persisted_value}, \
                 requested {requested_key}/{requested_value}"
            ),
            TableError::Config(msg) | TableError::Corrupt(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for TableError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_preserves_message_detail() {
        assert_eq!(
            TableError::RegionTooSmall { have: 64, need: 4096 }.to_string(),
            "region too small: 64 < 4096"
        );
        assert_eq!(
            TableError::MagicMismatch { found: 0xbad, expected: 0xf00d }.to_string(),
            "header magic mismatch: found 0xbad, expected 0xf00d"
        );
        assert_eq!(
            TableError::TypeMismatch {
                persisted_key: 8,
                persisted_value: 16,
                requested_key: 16,
                requested_value: 8,
            }
            .to_string(),
            "type mismatch: persisted K/V sizes 8/16, requested 16/8"
        );
        assert_eq!(
            TableError::Config("group_size 100 is not a power of two".into()).to_string(),
            "group_size 100 is not a power of two"
        );
    }

    #[test]
    fn is_a_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&TableError::Corrupt("x".into()));
    }
}
