//! The persistent occupancy bitmap.
//!
//! The paper attaches a 1-bit `bitmap` to each hash cell and commits every
//! insert/delete by atomically flipping it. We pack those bits 64 to a
//! word in a dedicated contiguous array: flipping a bit is then a
//! naturally-aligned 8-byte read-modify-write — failure-atomic under the
//! paper's assumption — and one bitmap cacheline summarizes the occupancy
//! of 512 cells, which is exactly the contiguity the group-sharing design
//! wants.

use nvm_pmem::{Pmem, PmemRead, PmemWrite, Region};

/// A fixed-size bitset in persistent memory, one bit per table cell.
#[derive(Debug, Clone, Copy)]
pub struct PmemBitmap {
    region: Region,
    bits: u64,
}

impl PmemBitmap {
    /// Bytes needed for `bits` bits (whole 8-byte words, cacheline-rounded
    /// up to the caller's allocator).
    pub fn region_size(bits: u64) -> usize {
        (bits.div_ceil(64) * 8) as usize
    }

    /// Creates a bitmap over `region`, zeroing (and persisting) it.
    pub fn create<P: Pmem>(pm: &mut P, region: Region, bits: u64) -> Self {
        let b = Self::attach(region, bits);
        let zeros = vec![0u8; region.len.min(4096)];
        let mut off = region.off;
        let end = region.off + Self::region_size(bits);
        while off < end {
            let n = zeros.len().min(end - off);
            pm.write(off, &zeros[..n]);
            off += n;
        }
        pm.persist(region.off, Self::region_size(bits));
        b
    }

    /// Attaches to an existing bitmap without touching it.
    pub fn attach(region: Region, bits: u64) -> Self {
        assert_eq!(region.off % 8, 0, "bitmap must be 8-byte aligned");
        assert!(
            region.len >= Self::region_size(bits),
            "bitmap region too small: {} < {}",
            region.len,
            Self::region_size(bits)
        );
        PmemBitmap { region, bits }
    }

    /// Number of bits (cells) tracked.
    pub fn len(&self) -> u64 {
        self.bits
    }

    /// True if the bitmap tracks zero cells.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    #[inline]
    fn word_off(&self, idx: u64) -> usize {
        debug_assert!(idx < self.bits, "bit {idx} out of range {}", self.bits);
        self.region.off + (idx / 64) as usize * 8
    }

    /// Reads bit `idx`. Shared-capability: any [`PmemRead`] view works.
    #[inline]
    pub fn get<R: PmemRead>(&self, pm: &R, idx: u64) -> bool {
        let w = pm.read_u64(self.word_off(idx));
        (w >> (idx % 64)) & 1 == 1
    }

    /// Atomically sets bit `idx` to `value` and persists the containing
    /// word — the paper's commit step (`Atomic Update bitmap;
    /// Persist(bitmap)`).
    #[inline]
    pub fn set_and_persist<P: Pmem>(&self, pm: &mut P, idx: u64, value: bool) {
        let off = self.word_off(idx);
        let w = pm.read_u64(off);
        let nw = if value {
            w | (1 << (idx % 64))
        } else {
            w & !(1 << (idx % 64))
        };
        pm.atomic_write_u64(off, nw);
        pm.persist(off, 8);
    }

    /// Like [`PmemBitmap::set_and_persist`] but without the persist (for
    /// bulk loading followed by a single range persist).
    #[inline]
    pub fn set_volatile<P: Pmem>(&self, pm: &mut P, idx: u64, value: bool) {
        let off = self.word_off(idx);
        let w = pm.read_u64(off);
        let nw = if value {
            w | (1 << (idx % 64))
        } else {
            w & !(1 << (idx % 64))
        };
        pm.atomic_write_u64(off, nw);
    }

    /// Lock-free variant of [`PmemBitmap::set_and_persist`] for shared
    /// writers: flips bit `idx` with a CAS loop on its containing word and
    /// persists the word. Neighbouring bits written concurrently by other
    /// writers survive — each lost race re-reads the word and retries.
    ///
    /// Returns the number of *lost* CAS attempts (0 on an uncontended
    /// flip). The winning attempt is the commit point; callers must hold
    /// the cell's claim so no two writers flip the *same* bit.
    #[inline]
    pub fn cas_bit_and_persist<W: PmemWrite>(&self, w: &W, idx: u64, value: bool) -> u64 {
        let off = self.word_off(idx);
        let mask = 1u64 << (idx % 64);
        let mut cur = w.read_u64(off);
        let mut failures = 0;
        loop {
            let nw = if value { cur | mask } else { cur & !mask };
            match w.compare_exchange_u64(off, cur, nw) {
                Ok(_) => break,
                Err(actual) => {
                    failures += 1;
                    cur = actual;
                }
            }
        }
        w.persist(off, 8);
        failures
    }

    /// Shared *test-and-set* publish: atomically transitions bit `idx`
    /// from `!value` to `value` with a CAS loop on its containing word,
    /// then persists the word. Unlike
    /// [`PmemBitmap::cas_bit_and_persist`] — which force-writes the bit
    /// and relies on an external claim table to serialize same-bit
    /// writers — this primitive *fails* when the bit is already in the
    /// target state, so the bit itself arbitrates: of N racers for one
    /// free slot, exactly one wins.
    ///
    /// Returns `Ok(lost_races)` for the winner (the word is persisted;
    /// this is the commit point) and `Err(lost_races)` for losers
    /// (nothing written, nothing persisted). Neighbouring bits written
    /// concurrently survive, exactly as in the CellStore publish idiom.
    #[inline]
    pub fn try_set_and_persist<W: PmemWrite>(
        &self,
        w: &W,
        idx: u64,
        value: bool,
    ) -> Result<u64, u64> {
        let off = self.word_off(idx);
        let mask = 1u64 << (idx % 64);
        let mut cur = w.read_u64(off);
        let mut lost = 0;
        loop {
            if (cur & mask != 0) == value {
                return Err(lost);
            }
            let nw = if value { cur | mask } else { cur & !mask };
            match w.compare_exchange_u64(off, cur, nw) {
                Ok(_) => break,
                Err(actual) => {
                    lost += 1;
                    cur = actual;
                }
            }
        }
        w.persist(off, 8);
        Ok(lost)
    }

    /// Pool offset of the word containing bit `idx` (for undo logging).
    pub fn word_off_of(&self, idx: u64) -> usize {
        self.word_off(idx)
    }

    /// Reads the whole 64-bit word containing bit `idx` (bit `i` of the
    /// result is cell `idx - idx%64 + i`). One memory access covers 64
    /// cells' occupancy — the word-wise scan primitive.
    #[inline]
    pub fn word_containing<R: PmemRead>(&self, pm: &R, idx: u64) -> u64 {
        pm.read_u64(self.word_off(idx))
    }

    /// Finds the first zero bit in `[start, start + n)`, reading word-wise
    /// (at most `n/64 + 2` word reads — this is why a group's empty-cell
    /// search is effectively one cacheline touch).
    pub fn find_zero_in_range<R: PmemRead>(&self, pm: &R, start: u64, n: u64) -> Option<u64> {
        let end = (start + n).min(self.bits);
        let mut idx = start;
        while idx < end {
            let word_base = idx - idx % 64;
            let w = pm.read_u64(self.word_off(idx));
            // Mask off bits below idx and at/after end within this word.
            let lo = idx % 64;
            let hi = (end - word_base).min(64);
            let mut free = !w & (u64::MAX << lo);
            if hi < 64 {
                free &= (1u64 << hi) - 1;
            }
            if free != 0 {
                return Some(word_base + free.trailing_zeros() as u64);
            }
            idx = word_base + 64;
        }
        None
    }

    /// Counts set bits in `[start, start + n)`.
    pub fn count_ones_in_range<R: PmemRead>(&self, pm: &R, start: u64, n: u64) -> u64 {
        let end = (start + n).min(self.bits);
        let mut idx = start;
        let mut total = 0u64;
        while idx < end {
            let word_base = idx - idx % 64;
            let w = pm.read_u64(self.word_off(idx));
            let lo = idx % 64;
            let hi = (end - word_base).min(64);
            let mut m = w & (u64::MAX << lo);
            if hi < 64 {
                m &= (1u64 << hi) - 1;
            }
            total += m.count_ones() as u64;
            idx = word_base + 64;
        }
        total
    }

    /// Total set bits.
    pub fn count_ones<R: PmemRead>(&self, pm: &R) -> u64 {
        self.count_ones_in_range(pm, 0, self.bits)
    }

    /// The bitmap's region.
    pub fn region(&self) -> Region {
        self.region
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_pmem::{CrashResolution, SimConfig, SimPmem};

    fn setup(bits: u64) -> (SimPmem, PmemBitmap) {
        let mut pm = SimPmem::new(1 << 16, SimConfig::fast_test());
        let bm = PmemBitmap::create(&mut pm, Region::new(0, PmemBitmap::region_size(bits)), bits);
        (pm, bm)
    }

    #[test]
    fn set_get_clear() {
        let (mut pm, bm) = setup(200);
        assert!(!bm.get(&pm, 77));
        bm.set_and_persist(&mut pm, 77, true);
        assert!(bm.get(&pm, 77));
        bm.set_and_persist(&mut pm, 77, false);
        assert!(!bm.get(&pm, 77));
    }

    #[test]
    fn bits_are_independent() {
        let (mut pm, bm) = setup(256);
        for i in (0..256).step_by(3) {
            bm.set_and_persist(&mut pm, i, true);
        }
        for i in 0..256 {
            assert_eq!(bm.get(&pm, i), i % 3 == 0, "bit {i}");
        }
    }

    #[test]
    fn committed_bit_survives_crash() {
        let (mut pm, bm) = setup(128);
        bm.set_and_persist(&mut pm, 100, true);
        pm.crash(CrashResolution::DropUnflushed);
        assert!(bm.get(&pm, 100));
    }

    #[test]
    fn uncommitted_volatile_bit_may_vanish() {
        let (mut pm, bm) = setup(128);
        bm.set_volatile(&mut pm, 100, true);
        pm.crash(CrashResolution::DropUnflushed);
        assert!(!bm.get(&pm, 100));
    }

    #[test]
    fn find_zero_basic() {
        let (mut pm, bm) = setup(512);
        assert_eq!(bm.find_zero_in_range(&pm, 128, 256), Some(128));
        for i in 128..140 {
            bm.set_and_persist(&mut pm, i, true);
        }
        assert_eq!(bm.find_zero_in_range(&pm, 128, 256), Some(140));
    }

    #[test]
    fn find_zero_none_when_full() {
        let (mut pm, bm) = setup(256);
        for i in 64..128 {
            bm.set_and_persist(&mut pm, i, true);
        }
        assert_eq!(bm.find_zero_in_range(&pm, 64, 64), None);
        assert_eq!(bm.find_zero_in_range(&pm, 64, 65), Some(128));
    }

    #[test]
    fn find_zero_unaligned_start() {
        let (mut pm, bm) = setup(256);
        for i in 70..100 {
            bm.set_and_persist(&mut pm, i, true);
        }
        assert_eq!(bm.find_zero_in_range(&pm, 70, 30), None);
        assert_eq!(bm.find_zero_in_range(&pm, 70, 31), Some(100));
        assert_eq!(bm.find_zero_in_range(&pm, 69, 31), Some(69));
    }

    #[test]
    fn find_zero_clamps_to_len() {
        let (mut pm, bm) = setup(100);
        assert_eq!(bm.find_zero_in_range(&pm, 90, 1000), Some(90));
        for i in 90..100 {
            bm.set_and_persist(&mut pm, i, true);
        }
        assert_eq!(bm.find_zero_in_range(&pm, 90, 1000), None);
    }

    #[test]
    fn count_ones_ranges() {
        let (mut pm, bm) = setup(300);
        for i in [0u64, 63, 64, 127, 128, 200, 299] {
            bm.set_and_persist(&mut pm, i, true);
        }
        assert_eq!(bm.count_ones(&pm), 7);
        assert_eq!(bm.count_ones_in_range(&pm, 0, 64), 2);
        assert_eq!(bm.count_ones_in_range(&pm, 64, 64), 2);
        assert_eq!(bm.count_ones_in_range(&pm, 63, 2), 2);
        assert_eq!(bm.count_ones_in_range(&pm, 128, 172), 3);
    }

    #[test]
    fn try_set_claims_exactly_once() {
        let mut pm = SimPmem::new(1 << 12, SimConfig::fast_test());
        let bm = PmemBitmap::create(&mut pm, Region::new(0, PmemBitmap::region_size(128)), 128);
        let w = pm.write_handle();
        assert_eq!(bm.try_set_and_persist(&w, 9, true), Ok(0));
        // Second attempt on the same bit loses: the bit arbitrates.
        assert_eq!(bm.try_set_and_persist(&w, 9, true), Err(0));
        assert!(bm.get(&pm, 9));
        // Clearing succeeds once, then fails.
        assert_eq!(bm.try_set_and_persist(&w, 9, false), Ok(0));
        assert_eq!(bm.try_set_and_persist(&w, 9, false), Err(0));
        assert!(!bm.get(&pm, 9));
        // Neighbouring bits are untouched throughout.
        assert_eq!(bm.count_ones(&pm), 0);
    }

    #[test]
    fn try_set_winner_is_durable() {
        let mut pm = SimPmem::new(1 << 12, SimConfig::fast_test());
        let bm = PmemBitmap::create(&mut pm, Region::new(0, PmemBitmap::region_size(64)), 64);
        let w = pm.write_handle();
        bm.try_set_and_persist(&w, 3, true).unwrap();
        pm.crash(CrashResolution::DropUnflushed);
        assert!(bm.get(&pm, 3), "winning try_set must persist its word");
    }

    #[test]
    fn try_set_racers_one_winner_per_slot() {
        use std::sync::Arc;
        let mut pm = SimPmem::new(1 << 14, SimConfig::fast_test());
        let bm = PmemBitmap::create(&mut pm, Region::new(0, PmemBitmap::region_size(64)), 64);
        let w = pm.write_handle();
        let wins = Arc::new(std::sync::atomic::AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let w = w.clone();
                let wins = wins.clone();
                let bm = &bm;
                s.spawn(move || {
                    for bit in 0..64 {
                        if bm.try_set_and_persist(&w, bit, true).is_ok() {
                            wins.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        // Every bit claimed by exactly one thread.
        assert_eq!(wins.load(std::sync::atomic::Ordering::Relaxed), 64);
        assert_eq!(bm.count_ones(&pm), 64);
    }

    #[test]
    fn create_zeroes_prior_garbage() {
        let mut pm = SimPmem::new(4096, SimConfig::fast_test());
        pm.write(0, &[0xFF; 64]);
        pm.persist(0, 64);
        let bm = PmemBitmap::create(&mut pm, Region::new(0, 64), 512);
        assert_eq!(bm.count_ones(&pm), 0);
    }
}
