//! The persistent table header — the paper's *Global info* block.
//!
//! One cacheline holding, in order: a magic word (scheme identity +
//! format version), the hash seed, the occupied-cell `count`, and up to
//! five scheme-specific geometry words (e.g. `table_size`, `group_size`).
//!
//! `count` follows the paper's discipline exactly: it is modified with an
//! 8-byte atomic store and persisted immediately (`AtomicInc(count);
//! Persist(count)` in Algorithms 1 and 3). After a crash it may lag the
//! bitmap by at most one operation, which recovery repairs by recounting.

use crate::TableError;
use nvm_pmem::{Pmem, PmemRead, Region, CACHELINE};

const OFF_MAGIC: usize = 0;
const OFF_SEED: usize = 8;
const OFF_COUNT: usize = 16;
const OFF_GEO: usize = 24;

/// Number of scheme-specific geometry slots.
pub const GEO_SLOTS: usize = 5;

/// Header region size (one cacheline).
const HEADER_LEN: usize = CACHELINE;

/// A table header at a fixed pool region.
#[derive(Debug, Clone, Copy)]
pub struct TableHeader {
    region: Region,
}

impl TableHeader {
    /// Bytes a header occupies.
    pub const SIZE: usize = HEADER_LEN;

    /// Initializes a header: magic + seed + geometry, `count = 0`, all
    /// persisted.
    pub fn create<P: Pmem>(
        pm: &mut P,
        region: Region,
        magic: u64,
        seed: u64,
        geometry: &[u64],
    ) -> Self {
        assert!(region.len >= HEADER_LEN, "header region too small");
        assert_eq!(region.off % 8, 0, "header must be 8-byte aligned");
        assert!(geometry.len() <= GEO_SLOTS, "too many geometry words");
        let h = TableHeader { region };
        pm.write_u64(region.off + OFF_SEED, seed);
        pm.write_u64(region.off + OFF_COUNT, 0);
        for (i, &g) in geometry.iter().enumerate() {
            pm.write_u64(region.off + OFF_GEO + i * 8, g);
        }
        pm.persist(region.off, HEADER_LEN);
        // Magic goes last: a header is valid only once fully initialized.
        pm.atomic_write_u64(region.off + OFF_MAGIC, magic);
        pm.persist(region.off + OFF_MAGIC, 8);
        h
    }

    /// Attaches to an existing header, validating the magic word.
    pub fn open<P: Pmem>(
        pm: &mut P,
        region: Region,
        expected_magic: u64,
    ) -> Result<Self, TableError> {
        let magic = pm.read_u64(region.off + OFF_MAGIC);
        if magic != expected_magic {
            return Err(TableError::MagicMismatch { found: magic, expected: expected_magic });
        }
        Ok(TableHeader { region })
    }

    /// The persisted hash seed.
    pub fn seed<R: PmemRead>(&self, pm: &R) -> u64 {
        pm.read_u64(self.region.off + OFF_SEED)
    }

    /// Geometry word `i`.
    pub fn geometry<R: PmemRead>(&self, pm: &R, i: usize) -> u64 {
        assert!(i < GEO_SLOTS);
        pm.read_u64(self.region.off + OFF_GEO + i * 8)
    }

    /// Current occupied-cell count.
    pub fn count<R: PmemRead>(&self, pm: &R) -> u64 {
        pm.read_u64(self.region.off + OFF_COUNT)
    }

    /// The paper's `AtomicInc(count); Persist(count)`.
    pub fn inc_count<P: Pmem>(&self, pm: &mut P) {
        let c = self.count(pm);
        pm.atomic_write_u64(self.region.off + OFF_COUNT, c + 1);
        pm.persist(self.region.off + OFF_COUNT, 8);
    }

    /// The paper's `AtomicDec(count); Persist(count)`.
    pub fn dec_count<P: Pmem>(&self, pm: &mut P) {
        let c = self.count(pm);
        assert!(c > 0, "count underflow");
        pm.atomic_write_u64(self.region.off + OFF_COUNT, c - 1);
        pm.persist(self.region.off + OFF_COUNT, 8);
    }

    /// Overwrites the count (recovery only).
    pub fn set_count<P: Pmem>(&self, pm: &mut P, count: u64) {
        pm.atomic_write_u64(self.region.off + OFF_COUNT, count);
        pm.persist(self.region.off + OFF_COUNT, 8);
    }

    /// Pool offset of the `count` word (for undo logging).
    pub fn count_off(&self) -> usize {
        self.region.off + OFF_COUNT
    }

    /// The header's region.
    pub fn region(&self) -> Region {
        self.region
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_pmem::{CrashResolution, SimConfig, SimPmem};

    const MAGIC: u64 = 0x6772_6F75_7048_6173; // "groupHas"

    fn pool() -> SimPmem {
        SimPmem::new(4096, SimConfig::fast_test())
    }

    #[test]
    fn create_open_roundtrip() {
        let mut pm = pool();
        let r = Region::new(0, 64);
        TableHeader::create(&mut pm, r, MAGIC, 77, &[100, 256]);
        let h = TableHeader::open(&mut pm, r, MAGIC).unwrap();
        assert_eq!(h.seed(&pm), 77);
        assert_eq!(h.geometry(&pm, 0), 100);
        assert_eq!(h.geometry(&pm, 1), 256);
        assert_eq!(h.count(&pm), 0);
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut pm = pool();
        let r = Region::new(0, 64);
        TableHeader::create(&mut pm, r, MAGIC, 1, &[]);
        assert!(TableHeader::open(&mut pm, r, MAGIC + 1).is_err());
    }

    #[test]
    fn count_inc_dec() {
        let mut pm = pool();
        let h = TableHeader::create(&mut pm, Region::new(0, 64), MAGIC, 0, &[]);
        h.inc_count(&mut pm);
        h.inc_count(&mut pm);
        assert_eq!(h.count(&pm), 2);
        h.dec_count(&mut pm);
        assert_eq!(h.count(&pm), 1);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn dec_below_zero_panics() {
        let mut pm = pool();
        let h = TableHeader::create(&mut pm, Region::new(0, 64), MAGIC, 0, &[]);
        h.dec_count(&mut pm);
    }

    #[test]
    fn header_survives_crash_after_create() {
        let mut pm = pool();
        let r = Region::new(0, 64);
        TableHeader::create(&mut pm, r, MAGIC, 9, &[5]);
        pm.crash(CrashResolution::DropUnflushed);
        let h = TableHeader::open(&mut pm, r, MAGIC).unwrap();
        assert_eq!(h.seed(&pm), 9);
        assert_eq!(h.geometry(&pm, 0), 5);
    }

    #[test]
    fn count_update_is_durable() {
        let mut pm = pool();
        let r = Region::new(0, 64);
        let h = TableHeader::create(&mut pm, r, MAGIC, 0, &[]);
        h.inc_count(&mut pm);
        pm.crash(CrashResolution::DropUnflushed);
        let h = TableHeader::open(&mut pm, r, MAGIC).unwrap();
        assert_eq!(h.count(&pm), 1);
    }
}
