//! The persistent table header — the paper's *Global info* block.
//!
//! Two cachelines. The first holds, in order: a magic word (scheme
//! identity + format version), the hash seed, the occupied-cell `count`,
//! and up to five scheme-specific geometry words (e.g. `table_size`,
//! `group_size`). The second holds the online-expansion state: the
//! persisted *migration cursor* (next source cell the drainer will visit)
//! and a migration-active flag — on its own cacheline so cursor persists
//! during a migration never contend with the count word's.
//!
//! `count` follows the paper's discipline exactly: it is modified with an
//! 8-byte atomic store and persisted immediately (`AtomicInc(count);
//! Persist(count)` in Algorithms 1 and 3). After a crash it may lag the
//! bitmap by at most one operation, which recovery repairs by recounting.
//! Under concurrent writers the same word is maintained with a CAS loop
//! ([`TableHeader::inc_count_shared`]) — still one atomic write + one
//! persist per uncontended op.

use crate::TableError;
use nvm_pmem::{Pmem, PmemRead, PmemWrite, Region, CACHELINE};

const OFF_MAGIC: usize = 0;
const OFF_SEED: usize = 8;
const OFF_COUNT: usize = 16;
const OFF_GEO: usize = 24;
const OFF_CURSOR: usize = CACHELINE;
const OFF_MIG_ACTIVE: usize = CACHELINE + 8;

/// Number of scheme-specific geometry slots.
pub const GEO_SLOTS: usize = 5;

/// Header region size (two cachelines: globals + migration state).
const HEADER_LEN: usize = 2 * CACHELINE;

/// A table header at a fixed pool region.
#[derive(Debug, Clone, Copy)]
pub struct TableHeader {
    region: Region,
}

impl TableHeader {
    /// Bytes a header occupies.
    pub const SIZE: usize = HEADER_LEN;

    /// Initializes a header: magic + seed + geometry, `count = 0`, all
    /// persisted.
    pub fn create<P: Pmem>(
        pm: &mut P,
        region: Region,
        magic: u64,
        seed: u64,
        geometry: &[u64],
    ) -> Self {
        assert!(region.len >= HEADER_LEN, "header region too small");
        assert_eq!(region.off % 8, 0, "header must be 8-byte aligned");
        assert!(geometry.len() <= GEO_SLOTS, "too many geometry words");
        let h = TableHeader { region };
        pm.write_u64(region.off + OFF_SEED, seed);
        pm.write_u64(region.off + OFF_COUNT, 0);
        for (i, &g) in geometry.iter().enumerate() {
            pm.write_u64(region.off + OFF_GEO + i * 8, g);
        }
        pm.write_u64(region.off + OFF_CURSOR, 0);
        pm.write_u64(region.off + OFF_MIG_ACTIVE, 0);
        pm.persist(region.off, HEADER_LEN);
        // Magic goes last: a header is valid only once fully initialized.
        pm.atomic_write_u64(region.off + OFF_MAGIC, magic);
        pm.persist(region.off + OFF_MAGIC, 8);
        h
    }

    /// Attaches to an existing header, validating the magic word.
    pub fn open<P: Pmem>(
        pm: &mut P,
        region: Region,
        expected_magic: u64,
    ) -> Result<Self, TableError> {
        let magic = pm.read_u64(region.off + OFF_MAGIC);
        if magic != expected_magic {
            return Err(TableError::MagicMismatch { found: magic, expected: expected_magic });
        }
        Ok(TableHeader { region })
    }

    /// The persisted hash seed.
    pub fn seed<R: PmemRead>(&self, pm: &R) -> u64 {
        pm.read_u64(self.region.off + OFF_SEED)
    }

    /// Geometry word `i`.
    pub fn geometry<R: PmemRead>(&self, pm: &R, i: usize) -> u64 {
        assert!(i < GEO_SLOTS);
        pm.read_u64(self.region.off + OFF_GEO + i * 8)
    }

    /// Current occupied-cell count.
    pub fn count<R: PmemRead>(&self, pm: &R) -> u64 {
        pm.read_u64(self.region.off + OFF_COUNT)
    }

    /// The paper's `AtomicInc(count); Persist(count)`.
    pub fn inc_count<P: Pmem>(&self, pm: &mut P) {
        let c = self.count(pm);
        pm.atomic_write_u64(self.region.off + OFF_COUNT, c + 1);
        pm.persist(self.region.off + OFF_COUNT, 8);
    }

    /// The paper's `AtomicDec(count); Persist(count)`.
    pub fn dec_count<P: Pmem>(&self, pm: &mut P) {
        let c = self.count(pm);
        assert!(c > 0, "count underflow");
        pm.atomic_write_u64(self.region.off + OFF_COUNT, c - 1);
        pm.persist(self.region.off + OFF_COUNT, 8);
    }

    /// Overwrites the count (recovery only).
    pub fn set_count<P: Pmem>(&self, pm: &mut P, count: u64) {
        pm.atomic_write_u64(self.region.off + OFF_COUNT, count);
        pm.persist(self.region.off + OFF_COUNT, 8);
    }

    /// Pool offset of the `count` word (for undo logging).
    pub fn count_off(&self) -> usize {
        self.region.off + OFF_COUNT
    }

    /// Shared-writer `AtomicInc(count); Persist(count)`: a CAS loop keeps
    /// concurrent increments exact where a blind store would lose updates.
    /// Returns lost CAS attempts (0 uncontended — then the cost is
    /// identical to [`TableHeader::inc_count`]: 1 atomic, 1 flush, 1
    /// fence).
    pub fn inc_count_shared<W: PmemWrite>(&self, w: &W) -> u64 {
        let off = self.region.off + OFF_COUNT;
        let mut c = w.read_u64(off);
        let mut failures = 0;
        while let Err(actual) = w.compare_exchange_u64(off, c, c + 1) {
            failures += 1;
            c = actual;
        }
        w.persist(off, 8);
        failures
    }

    /// Shared-writer `AtomicDec(count); Persist(count)` (CAS loop).
    pub fn dec_count_shared<W: PmemWrite>(&self, w: &W) -> u64 {
        let off = self.region.off + OFF_COUNT;
        let mut c = w.read_u64(off);
        let mut failures = 0;
        loop {
            assert!(c > 0, "count underflow");
            match w.compare_exchange_u64(off, c, c - 1) {
                Ok(_) => break,
                Err(actual) => {
                    failures += 1;
                    c = actual;
                }
            }
        }
        w.persist(off, 8);
        failures
    }

    /// The persisted migration cursor: cells `< cursor` of this table
    /// have been drained into the expansion target.
    pub fn migration_cursor<R: PmemRead>(&self, pm: &R) -> u64 {
        pm.read_u64(self.region.off + OFF_CURSOR)
    }

    /// Advances (or resets) the migration cursor, atomically + persisted:
    /// the cursor is the recovery watermark, so it must never run ahead
    /// of the moves it describes — callers persist each move first.
    pub fn set_migration_cursor<P: Pmem>(&self, pm: &mut P, cursor: u64) {
        pm.atomic_write_u64(self.region.off + OFF_CURSOR, cursor);
        pm.persist(self.region.off + OFF_CURSOR, 8);
    }

    /// True while an online expansion is draining this table.
    pub fn migration_active<R: PmemRead>(&self, pm: &R) -> bool {
        pm.read_u64(self.region.off + OFF_MIG_ACTIVE) != 0
    }

    /// Sets/clears the migration-active flag (atomic + persisted). Set
    /// *before* the first move, cleared *after* the last: a crash inside
    /// the window is then self-announcing to recovery.
    pub fn set_migration_active<P: Pmem>(&self, pm: &mut P, active: bool) {
        pm.atomic_write_u64(self.region.off + OFF_MIG_ACTIVE, active as u64);
        pm.persist(self.region.off + OFF_MIG_ACTIVE, 8);
    }

    /// The header's region.
    pub fn region(&self) -> Region {
        self.region
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_pmem::{CrashResolution, SimConfig, SimPmem};

    const MAGIC: u64 = 0x6772_6F75_7048_6173; // "groupHas"

    fn pool() -> SimPmem {
        SimPmem::new(4096, SimConfig::fast_test())
    }

    #[test]
    fn create_open_roundtrip() {
        let mut pm = pool();
        let r = Region::new(0, 128);
        TableHeader::create(&mut pm, r, MAGIC, 77, &[100, 256]);
        let h = TableHeader::open(&mut pm, r, MAGIC).unwrap();
        assert_eq!(h.seed(&pm), 77);
        assert_eq!(h.geometry(&pm, 0), 100);
        assert_eq!(h.geometry(&pm, 1), 256);
        assert_eq!(h.count(&pm), 0);
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut pm = pool();
        let r = Region::new(0, 128);
        TableHeader::create(&mut pm, r, MAGIC, 1, &[]);
        assert!(TableHeader::open(&mut pm, r, MAGIC + 1).is_err());
    }

    #[test]
    fn count_inc_dec() {
        let mut pm = pool();
        let h = TableHeader::create(&mut pm, Region::new(0, 128), MAGIC, 0, &[]);
        h.inc_count(&mut pm);
        h.inc_count(&mut pm);
        assert_eq!(h.count(&pm), 2);
        h.dec_count(&mut pm);
        assert_eq!(h.count(&pm), 1);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn dec_below_zero_panics() {
        let mut pm = pool();
        let h = TableHeader::create(&mut pm, Region::new(0, 128), MAGIC, 0, &[]);
        h.dec_count(&mut pm);
    }

    #[test]
    fn header_survives_crash_after_create() {
        let mut pm = pool();
        let r = Region::new(0, 128);
        TableHeader::create(&mut pm, r, MAGIC, 9, &[5]);
        pm.crash(CrashResolution::DropUnflushed);
        let h = TableHeader::open(&mut pm, r, MAGIC).unwrap();
        assert_eq!(h.seed(&pm), 9);
        assert_eq!(h.geometry(&pm, 0), 5);
    }

    #[test]
    fn shared_count_matches_exclusive_and_is_exact_under_races() {
        let mut pm = pool();
        let h = TableHeader::create(&mut pm, Region::new(0, 128), MAGIC, 0, &[]);
        let w = pm.write_handle();
        pm.reset_stats();
        assert_eq!(h.inc_count_shared(&w), 0);
        let st = pm.stats();
        assert_eq!((st.flushes, st.fences, st.atomic_writes), (1, 1, 1));
        assert_eq!(h.count(&pm), 1);
        assert_eq!(h.dec_count_shared(&w), 0);
        assert_eq!(h.count(&pm), 0);

        let threads: Vec<_> = (0..4)
            .map(|_| {
                let w = pm.write_handle();
                std::thread::spawn(move || {
                    let h = h;
                    for _ in 0..500 {
                        h.inc_count_shared(&w);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(&pm), 2000, "no lost increments");
    }

    #[test]
    fn migration_cursor_and_flag_roundtrip_and_survive_crash() {
        let mut pm = pool();
        let r = Region::new(0, 128);
        let h = TableHeader::create(&mut pm, r, MAGIC, 0, &[4]);
        assert_eq!(h.migration_cursor(&pm), 0);
        assert!(!h.migration_active(&pm));
        h.set_migration_active(&mut pm, true);
        h.set_migration_cursor(&mut pm, 37);
        pm.crash(CrashResolution::DropUnflushed);
        let h = TableHeader::open(&mut pm, r, MAGIC).unwrap();
        assert_eq!(h.migration_cursor(&pm), 37);
        assert!(h.migration_active(&pm));
        h.set_migration_active(&mut pm, false);
        h.set_migration_cursor(&mut pm, 0);
        assert!(!h.migration_active(&pm));
    }

    #[test]
    fn count_update_is_durable() {
        let mut pm = pool();
        let r = Region::new(0, 128);
        let h = TableHeader::create(&mut pm, r, MAGIC, 0, &[]);
        h.inc_count(&mut pm);
        pm.crash(CrashResolution::DropUnflushed);
        let h = TableHeader::open(&mut pm, r, MAGIC).unwrap();
        assert_eq!(h.count(&pm), 1);
    }
}
