//! DRAM cell-claim table for lock-free writers.
//!
//! The paper's commit point is one bit in one 8-byte bitmap word, which is
//! exactly what a CAS wants — but two writers must never *prepare* the
//! same free cell (both would write its bytes, then one CAS would publish
//! the other's half-written entry). A [`CellClaims`] table arbitrates
//! that: a writer claims a cell (one DRAM CAS), writes and publishes it,
//! then releases the claim. Claims are transient DRAM state — they carry
//! no durability and are simply absent after a restart, when no writer
//! can hold a cell anyway.
//!
//! Packing mirrors the persistent bitmap (64 cells per word) so claim
//! contention has the same locality as commit contention.

use std::sync::atomic::{AtomicU64, Ordering};

/// A transient bit-per-cell claim table guarding one cell index space.
#[derive(Debug)]
pub struct CellClaims {
    words: Vec<AtomicU64>,
    bits: u64,
}

impl CellClaims {
    /// A claim table for `bits` cells, all unclaimed.
    pub fn new(bits: u64) -> Self {
        let words = (0..bits.div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
        CellClaims { words, bits }
    }

    /// Number of cells tracked.
    pub fn len(&self) -> u64 {
        self.bits
    }

    /// True when the table tracks zero cells.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Attempts to claim cell `idx`. Returns `true` on success; `false`
    /// means another writer holds it right now.
    #[inline]
    pub fn try_claim(&self, idx: u64) -> bool {
        debug_assert!(idx < self.bits, "claim {idx} out of range {}", self.bits);
        let mask = 1u64 << (idx % 64);
        let prev = self.words[(idx / 64) as usize].fetch_or(mask, Ordering::AcqRel);
        prev & mask == 0
    }

    /// Releases a claim taken with [`CellClaims::try_claim`].
    #[inline]
    pub fn release(&self, idx: u64) {
        debug_assert!(idx < self.bits);
        let mask = 1u64 << (idx % 64);
        let prev = self.words[(idx / 64) as usize].fetch_and(!mask, Ordering::AcqRel);
        debug_assert!(prev & mask != 0, "releasing unclaimed cell {idx}");
    }

    /// Is cell `idx` currently claimed? Advisory only — the answer can be
    /// stale by the time the caller acts on it.
    #[inline]
    pub fn is_claimed(&self, idx: u64) -> bool {
        debug_assert!(idx < self.bits);
        let mask = 1u64 << (idx % 64);
        self.words[(idx / 64) as usize].load(Ordering::Acquire) & mask != 0
    }
}

impl Clone for CellClaims {
    /// Clones to a *fresh, unclaimed* table of the same size: claims are
    /// per-writer transient state, and a cloned table serves a cloned
    /// (single-owner) structure where no writer holds anything.
    fn clone(&self) -> Self {
        CellClaims::new(self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn claim_release_roundtrip() {
        let c = CellClaims::new(200);
        assert!(!c.is_claimed(70));
        assert!(c.try_claim(70));
        assert!(c.is_claimed(70));
        assert!(!c.try_claim(70), "double-claim must fail");
        c.release(70);
        assert!(c.try_claim(70));
    }

    #[test]
    fn claims_are_per_bit() {
        let c = CellClaims::new(128);
        assert!(c.try_claim(64));
        assert!(c.try_claim(65), "same word, different bit");
        assert!(c.try_claim(0), "different word");
        c.release(64);
        assert!(!c.is_claimed(64));
        assert!(c.is_claimed(65));
    }

    #[test]
    fn exactly_one_thread_wins_each_cell() {
        let c = Arc::new(CellClaims::new(64));
        let wins: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || (0..64).filter(|&i| c.try_claim(i)).count())
            })
            .map(|t| t.join().unwrap())
            .collect();
        assert_eq!(wins.iter().sum::<usize>(), 64, "each cell claimed once");
    }

    #[test]
    fn clone_starts_unclaimed() {
        let c = CellClaims::new(32);
        assert!(c.try_claim(3));
        let d = c.clone();
        assert_eq!(d.len(), 32);
        assert!(!d.is_claimed(3));
        assert!(d.try_claim(3));
    }
}
