//! A reusable exhaustive crash-point checker.
//!
//! Several test suites in this workspace follow the same pattern: build a
//! state, run one operation with a crash injected at every mutation
//! event, resolve the crash under several adversarial policies, recover,
//! and check invariants. This module packages that pattern so downstream
//! users can crash-test *their own* structures built on [`SimPmem`] the
//! same way the workspace tests group hashing.
//!
//! # Example
//!
//! ```
//! use nvm_pmem::{Pmem, PmemRead, SimConfig, SimPmem};
//! use nvm_table::crashtest::{exhaust_crash_points, CrashCheck};
//! use nvm_table::TableError;
//!
//! // A toy "structure": one committed counter at offset 0.
//! let report = exhaust_crash_points(CrashCheck {
//!     setup: &|| {
//!         let mut pm = SimPmem::new(4096, SimConfig::fast_test());
//!         pm.write_u64(0, 41);
//!         pm.persist(0, 8);
//!         pm
//!     },
//!     op: &|pm| {
//!         pm.atomic_write_u64(0, 42);
//!         pm.persist(0, 8);
//!     },
//!     recover_and_check: &|pm| {
//!         let v = pm.read_u64(0);
//!         (v == 41 || v == 42)
//!             .then_some(())
//!             .ok_or_else(|| TableError::Corrupt(format!("torn counter: {v}")))
//!     },
//!     max_events: 100,
//! })
//! .unwrap();
//! assert!(report.crash_points >= 2);
//! ```

use crate::TableError;
use nvm_pmem::{run_with_crash, CrashPlan, CrashResolution, SimPmem};

/// One exhaustive crash-scan specification.
pub struct CrashCheck<'a> {
    /// Builds the pre-op state (fresh pool each crash point).
    pub setup: &'a dyn Fn() -> SimPmem,
    /// The operation under test.
    pub op: &'a dyn Fn(&mut SimPmem),
    /// Runs recovery and validates every invariant on the crashed pool.
    /// Return `Err` describing the violation.
    pub recover_and_check: &'a dyn Fn(&mut SimPmem) -> Result<(), TableError>,
    /// Safety bound on the op's mutation events (fails if exceeded).
    pub max_events: u64,
}

/// What a completed scan covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashReport {
    /// Distinct crash points exercised (the op's mutation-event count).
    pub crash_points: u64,
    /// Total (crash point × resolution) cases checked.
    pub cases: u64,
}

/// The adversarial resolutions every point is checked under. The
/// `Alternate` pair guarantees mixed persist/drop outcomes across dirty
/// words (both phases), which random seeds can miss on small footprints.
const RESOLUTIONS: [CrashResolution; 6] = [
    CrashResolution::DropUnflushed,
    CrashResolution::PersistAll,
    CrashResolution::Alternate {
        persist_first: true,
    },
    CrashResolution::Alternate {
        persist_first: false,
    },
    CrashResolution::Random(0x5EED),
    CrashResolution::Random(0xDEAD_BEEF),
];

/// Runs `spec.op` with a crash injected before every mutation event, under
/// every resolution in turn; each crashed state must pass
/// `recover_and_check`. Returns the coverage report, or the first
/// violation (annotated with its crash point and resolution).
pub fn exhaust_crash_points(spec: CrashCheck<'_>) -> Result<CrashReport, TableError> {
    let mut crash_points = 0u64;
    let mut cases = 0u64;
    for how in RESOLUTIONS {
        let mut event = 0u64;
        loop {
            let mut pm = (spec.setup)();
            let base = pm.events();
            pm.set_crash_plan(Some(CrashPlan {
                at_event: base + event,
            }));
            let completed = run_with_crash(|| (spec.op)(&mut pm)).is_ok();
            if completed {
                break; // every interior event of the op has been scanned
            }
            pm.crash(how);
            (spec.recover_and_check)(&mut pm)
                .map_err(|e| TableError::Corrupt(format!("crash at +{event} under {how:?}: {e}")))?;
            cases += 1;
            event += 1;
            if event > spec.max_events {
                return Err(TableError::Config(format!(
                    "operation exceeded max_events = {}",
                    spec.max_events
                )));
            }
        }
        crash_points = crash_points.max(event);
    }
    Ok(CrashReport {
        crash_points,
        cases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_pmem::{Pmem, PmemRead, SimConfig, SimPmem};

    fn pool() -> SimPmem {
        SimPmem::new(4096, SimConfig::fast_test())
    }

    #[test]
    fn atomic_commit_pattern_passes() {
        // data-then-atomic-flag: the paper's idiom, which is crash safe.
        let report = exhaust_crash_points(CrashCheck {
            setup: &pool,
            op: &|pm| {
                pm.write(64, &[7u8; 16]);
                pm.persist(64, 16);
                pm.atomic_write_u64(0, 1); // flag commits the record
                pm.persist(0, 8);
            },
            recover_and_check: &|pm| {
                if pm.read_u64(0) == 1 {
                    let mut b = [0u8; 16];
                    pm.read(64, &mut b);
                    if b != [7u8; 16] {
                        return Err(TableError::Corrupt("flag set but record torn".into()));
                    }
                }
                Ok(())
            },
            max_events: 50,
        })
        .unwrap();
        assert!(report.crash_points >= 4);
        assert!(report.cases >= report.crash_points);
    }

    #[test]
    fn flag_before_data_is_caught() {
        // The broken ordering: flag first, data second. The checker must
        // find the crash point that exposes it.
        let err = exhaust_crash_points(CrashCheck {
            setup: &pool,
            op: &|pm| {
                pm.atomic_write_u64(0, 1);
                pm.persist(0, 8);
                pm.write(64, &[7u8; 16]);
                pm.persist(64, 16);
            },
            recover_and_check: &|pm| {
                if pm.read_u64(0) == 1 {
                    let mut b = [0u8; 16];
                    pm.read(64, &mut b);
                    if b != [7u8; 16] {
                        return Err(TableError::Corrupt("flag set but record missing".into()));
                    }
                }
                Ok(())
            },
            max_events: 50,
        })
        .unwrap_err();
        assert!(err.to_string().contains("flag set but record missing"), "{err}");
    }

    #[test]
    fn shared_fence_ordering_bug_is_caught() {
        // A classic subtle bug: record and commit flag each flushed, but
        // only ONE trailing fence for both — the flushes are unordered
        // relative to each other until that fence, so a crash between the
        // flushes' issue and the fence can persist the flag without the
        // record.
        let err = exhaust_crash_points(CrashCheck {
            setup: &pool,
            op: &|pm| {
                pm.write(64, &[9u8; 8]);
                pm.flush(64, 8);
                pm.atomic_write_u64(0, 1);
                pm.flush(0, 8);
                pm.fence(); // one fence "for both" — not enough
            },
            recover_and_check: &|pm| {
                if pm.read_u64(0) == 1 && pm.read_u64(64) != u64::from_le_bytes([9; 8]) {
                    return Err(TableError::Corrupt("record not durable despite flag".into()));
                }
                Ok(())
            },
            max_events: 50,
        })
        .unwrap_err();
        assert!(err.to_string().contains("not durable"), "{err}");
    }

    #[test]
    fn runaway_op_is_bounded() {
        let err = exhaust_crash_points(CrashCheck {
            setup: &pool,
            op: &|pm| {
                for i in 0..1000 {
                    pm.write_u64(i * 8 % 4096, 1);
                }
            },
            recover_and_check: &|_| Ok(()),
            max_events: 10,
        })
        .unwrap_err();
        assert!(err.to_string().contains("max_events"));
    }
}
