//! Probe plans: pure, I/O-free candidate-cell geometry.
//!
//! A *probe plan* answers one question — "for this hash, which cells may
//! hold the key, and in what order?" — with plain arithmetic. No pool, no
//! reads, no persistence: plans are unit-testable without pmem and are the
//! seam where the DRAM fingerprint gate (and, later, batched/SIMD probing)
//! plugs in. The pmem-facing half lives in the cell store
//! ([`crate::CellStore`]); the ops layer of each scheme composes the two.
//!
//! One plan per scheme family:
//!
//! * [`GroupPlan`] — the paper's two-level group sharing: a level-1 slot
//!   maps to a level-2 *group* of `group_size` cells, laid out contiguously
//!   or strided (the ablation of observation 2).
//! * [`LinearPlan`] — classic linear probing over a power-of-two array.
//! * [`PfhtPlan`] — PFHT's two 4-cell buckets plus a linear stash.
//! * [`PathPlan`] — path hashing's binary-tree descent from two leaves.
//!
//! The SWAR fingerprint matcher ([`match_bits`]) also lives here: it is
//! pure bit-twiddling over a tag word and belongs with the planning logic
//! that decides which cells are worth a key read.

/// Physical placement of a group's collision-resolution cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProbeLayout {
    /// The paper's design: group *i* of level 2 is the contiguous range
    /// `[i * group_size, (i+1) * group_size)`.
    #[default]
    Contiguous,
    /// Ablation: the same *partition* of cells into groups, but group *i*
    /// owns cells `{i + j * n_groups}` — every probe step jumps
    /// `n_groups` cells, destroying spatial locality while keeping the
    /// collision combinatorics identical. Isolates the value of group
    /// sharing's contiguity (the paper's observation 2).
    Strided,
}

/// The group table's two-level geometry (paper §3): `n_groups` groups of
/// `group_size` cells per level, with the level-2 cells of a group placed
/// according to [`ProbeLayout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupPlan {
    group_size: u64,
    n_groups: u64,
    layout: ProbeLayout,
}

impl GroupPlan {
    /// Builds the plan. `group_size` and `n_groups` must both be non-zero
    /// powers of two (validated by the scheme's config).
    pub fn new(group_size: u64, n_groups: u64, layout: ProbeLayout) -> Self {
        debug_assert!(group_size.is_power_of_two());
        debug_assert!(n_groups > 0);
        GroupPlan { group_size, n_groups, layout }
    }

    /// Cells in one level (`group_size * n_groups`).
    pub fn cells_per_level(&self) -> u64 {
        self.group_size * self.n_groups
    }

    /// Cells per group.
    pub fn group_size(&self) -> u64 {
        self.group_size
    }

    /// Number of groups per level.
    pub fn n_groups(&self) -> u64 {
        self.n_groups
    }

    /// The layout ablation knob.
    pub fn layout(&self) -> ProbeLayout {
        self.layout
    }

    /// Which group a level-1 slot belongs to.
    pub fn group_of_slot(&self, slot: u64) -> u64 {
        slot / self.group_size
    }

    /// The level-2 cell index of member `i` of group `g`.
    pub fn cell(&self, g: u64, i: u64) -> u64 {
        match self.layout {
            ProbeLayout::Contiguous => g * self.group_size + i,
            ProbeLayout::Strided => g + i * self.n_groups,
        }
    }

    /// Inverse of [`GroupPlan::cell`]: which group owns level-2 cell `idx`.
    pub fn group_of_cell(&self, idx: u64) -> u64 {
        match self.layout {
            ProbeLayout::Contiguous => idx / self.group_size,
            ProbeLayout::Strided => idx % self.n_groups,
        }
    }

    /// The level-2 scan sequence for group `g`, in probe order.
    pub fn group_cells(&self, g: u64) -> impl Iterator<Item = u64> + '_ {
        (0..self.group_size).map(move |i| self.cell(g, i))
    }
}

/// Linear probing over a power-of-two cell array: home slot, then
/// successive cells with wraparound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinearPlan {
    n: u64,
}

impl LinearPlan {
    /// Builds the plan over `n` cells (`n` must be a power of two).
    pub fn new(n: u64) -> Self {
        debug_assert!(n.is_power_of_two());
        LinearPlan { n }
    }

    /// Total cells.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The home slot of a hash.
    pub fn home(&self, hash: u64) -> u64 {
        hash & (self.n - 1)
    }

    /// The next cell in probe order (wraps).
    pub fn step(&self, i: u64) -> u64 {
        (i + 1) & (self.n - 1)
    }

    /// The full probe sequence from `home`: `n` cells, wrapping once.
    pub fn sequence(&self, home: u64) -> impl Iterator<Item = u64> + '_ {
        let n = self.n;
        (0..n).map(move |step| (home + step) & (n - 1))
    }

    /// Backward-shift predicate: with a hole at `hole`, may the entry at
    /// `i` (whose home slot is `home`) stay where it is? True when the
    /// hole does *not* lie on the entry's probe path from its home — i.e.
    /// moving it into the hole would break its reachability invariant.
    pub fn must_stay(hole: u64, home: u64, i: u64) -> bool {
        // Cyclic interval test: is `home` in the half-open ring interval
        // (hole, i]? If so the entry never probed through the hole.
        if hole < i {
            hole < home && home <= i
        } else {
            home > hole || home <= i
        }
    }
}

/// PFHT geometry: `n_buckets` buckets of `bucket_cells` cells addressed by
/// two hashes, then a linear stash of `stash_cells` cells at the end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PfhtPlan {
    n_buckets: u64,
    bucket_cells: u64,
    stash_cells: u64,
}

impl PfhtPlan {
    /// Builds the plan (`n_buckets` must be a power of two).
    pub fn new(n_buckets: u64, bucket_cells: u64, stash_cells: u64) -> Self {
        debug_assert!(n_buckets.is_power_of_two());
        debug_assert!(bucket_cells > 0);
        PfhtPlan { n_buckets, bucket_cells, stash_cells }
    }

    /// Number of buckets.
    pub fn n_buckets(&self) -> u64 {
        self.n_buckets
    }

    /// Cells per bucket.
    pub fn bucket_cells(&self) -> u64 {
        self.bucket_cells
    }

    /// Cells in the stash.
    pub fn stash_cells(&self) -> u64 {
        self.stash_cells
    }

    /// Total cells (buckets + stash).
    pub fn total_cells(&self) -> u64 {
        self.n_buckets * self.bucket_cells + self.stash_cells
    }

    /// The two candidate buckets of a key's hash pair.
    pub fn buckets(&self, h1: u64, h2: u64) -> (u64, u64) {
        (h1 & (self.n_buckets - 1), h2 & (self.n_buckets - 1))
    }

    /// The cell index of slot `s` of bucket `b`.
    pub fn cell(&self, b: u64, s: u64) -> u64 {
        b * self.bucket_cells + s
    }

    /// The cells of bucket `b`, in probe order.
    pub fn bucket_range(&self, b: u64) -> impl Iterator<Item = u64> {
        let base = b * self.bucket_cells;
        base..base + self.bucket_cells
    }

    /// First cell of the stash.
    pub fn stash_base(&self) -> u64 {
        self.n_buckets * self.bucket_cells
    }

    /// The bucket owning `idx`, or `None` for stash cells.
    pub fn bucket_of_cell(&self, idx: u64) -> Option<u64> {
        (idx < self.stash_base()).then(|| idx / self.bucket_cells)
    }
}

/// Path hashing geometry: a truncated binary tree, `1 << leaf_bits` leaf
/// cells at level 0 and each higher level half the size; a key probes the
/// root-ward paths of two leaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathPlan {
    leaf_bits: u64,
    levels: u64,
    level_base: Vec<u64>,
}

impl PathPlan {
    /// Builds the plan. `levels` is clamped to the tree height implied by
    /// `leaf_bits` (as [`PathPlan::cell_count`] does).
    pub fn new(leaf_bits: u64, levels: u64) -> Self {
        let levels = levels.min(leaf_bits + 1);
        let mut level_base = Vec::with_capacity(levels as usize);
        let mut base = 0u64;
        for i in 0..levels {
            level_base.push(base);
            base += 1u64 << (leaf_bits - i);
        }
        PathPlan { leaf_bits, levels, level_base }
    }

    /// Total cells of a `(leaf_bits, levels)` tree.
    pub fn cell_count(leaf_bits: u64, levels: u64) -> u64 {
        (0..levels.min(leaf_bits + 1))
            .map(|i| 1u64 << (leaf_bits - i))
            .sum()
    }

    /// log2 of the leaf level's size.
    pub fn leaf_bits(&self) -> u64 {
        self.leaf_bits
    }

    /// Levels kept (after clamping).
    pub fn levels(&self) -> u64 {
        self.levels
    }

    /// Total cells.
    pub fn total_cells(&self) -> u64 {
        Self::cell_count(self.leaf_bits, self.levels)
    }

    /// The two candidate leaves of a key's hash pair.
    pub fn leaves(&self, h1: u64, h2: u64) -> (u64, u64) {
        let mask = (1u64 << self.leaf_bits) - 1;
        (h1 & mask, h2 & mask)
    }

    /// The cell index of `leaf`'s ancestor at `level`.
    pub fn cell(&self, leaf: u64, level: u64) -> u64 {
        self.level_base[level as usize] + (leaf >> level)
    }

    /// First cell index of `level`.
    pub fn level_base(&self, level: u64) -> u64 {
        self.level_base[level as usize]
    }

    /// Cells in `level`.
    pub fn level_size(&self, level: u64) -> u64 {
        1u64 << (self.leaf_bits - level)
    }

    /// Which level a flat cell index belongs to.
    pub fn level_of_cell(&self, idx: u64) -> u64 {
        self.level_base
            .iter()
            .rposition(|&b| b <= idx)
            .expect("level 0 starts at cell 0") as u64
    }

    /// Is `idx` on the root-ward path of `leaf`?
    pub fn on_path(&self, leaf: u64, idx: u64) -> bool {
        let level = self.level_of_cell(idx);
        self.cell(leaf, level) == idx
    }

    /// The probe sequence of leaves `(l1, l2)`: per level the two
    /// ancestors, visiting the shared ancestor once where the paths have
    /// merged.
    pub fn path_cells(&self, l1: u64, l2: u64) -> impl Iterator<Item = u64> + '_ {
        (0..self.levels).flat_map(move |level| {
            let c1 = self.cell(l1, level);
            let c2 = self.cell(l2, level);
            std::iter::once(c1).chain((c2 != c1).then_some(c2))
        })
    }
}

/// Lanes per iceberg bucket: fixed at 8 so one bucket's fingerprint tags
/// pack into a single `u64` metadata word matched by [`match_bits`].
pub const ICEBERG_LANES: u64 = 8;

/// IcebergHT-style level geometry: wide level-1 buckets addressed by one
/// hash, a small level-2 of *paired* backup buckets chosen by
/// power-of-two-choices, and a "backyard" of overflow buckets probed
/// linearly from a hashed home. Every bucket holds [`ICEBERG_LANES`] cells,
/// so each bucket owns exactly one 8-lane fingerprint word — the metadata
/// array a scheme keeps in DRAM and rebuilds on open.
///
/// The flat cell index space is `[0, total_cells)`: level-1 cells first,
/// then level-2, then the backyard. An entry, once placed in a cell, never
/// moves (stability) — the plan therefore has no displacement predicates,
/// only candidate enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IcebergPlan {
    l1_buckets: u64,
    l2_buckets: u64,
    backyard_buckets: u64,
}

impl IcebergPlan {
    /// Builds the plan. All three bucket counts must be non-zero powers of
    /// two (validated by the scheme's config).
    pub fn new(l1_buckets: u64, l2_buckets: u64, backyard_buckets: u64) -> Self {
        debug_assert!(l1_buckets.is_power_of_two());
        debug_assert!(l2_buckets.is_power_of_two());
        debug_assert!(backyard_buckets.is_power_of_two());
        IcebergPlan { l1_buckets, l2_buckets, backyard_buckets }
    }

    /// Level-1 bucket count.
    pub fn l1_buckets(&self) -> u64 {
        self.l1_buckets
    }

    /// Level-2 bucket count.
    pub fn l2_buckets(&self) -> u64 {
        self.l2_buckets
    }

    /// Backyard bucket count.
    pub fn backyard_buckets(&self) -> u64 {
        self.backyard_buckets
    }

    /// Total bucket count across all three levels (== metadata words).
    pub fn n_buckets(&self) -> u64 {
        self.l1_buckets + self.l2_buckets + self.backyard_buckets
    }

    /// Total cells across all three levels.
    pub fn total_cells(&self) -> u64 {
        self.n_buckets() * ICEBERG_LANES
    }

    /// The global bucket index of a key's level-1 bucket.
    pub fn l1_bucket(&self, h1: u64) -> u64 {
        h1 & (self.l1_buckets - 1)
    }

    /// The key's *paired* level-2 candidates (global bucket indices): the
    /// scheme inserts into whichever of the two is emptier
    /// (power-of-two-choices) and probes both on lookup.
    pub fn l2_pair(&self, h2: u64, h3: u64) -> (u64, u64) {
        let base = self.l1_buckets;
        (base + (h2 & (self.l2_buckets - 1)), base + (h3 & (self.l2_buckets - 1)))
    }

    /// First global bucket index of the backyard.
    pub fn backyard_base(&self) -> u64 {
        self.l1_buckets + self.l2_buckets
    }

    /// The backyard home bucket of a hash (global bucket index).
    pub fn backyard_home(&self, h: u64) -> u64 {
        self.backyard_base() + (h & (self.backyard_buckets - 1))
    }

    /// The backyard probe sequence from `h`'s home: every backyard bucket
    /// once, wrapping — the overflow chain, in probe order.
    pub fn backyard_sequence(&self, h: u64) -> impl Iterator<Item = u64> + '_ {
        let base = self.backyard_base();
        let n = self.backyard_buckets;
        let home = h & (n - 1);
        (0..n).map(move |step| base + ((home + step) & (n - 1)))
    }

    /// The cell index of `lane` of global bucket `b`.
    pub fn cell(&self, b: u64, lane: u64) -> u64 {
        b * ICEBERG_LANES + lane
    }

    /// The cells of global bucket `b`, in lane order.
    pub fn bucket_cells(&self, b: u64) -> impl Iterator<Item = u64> {
        let base = b * ICEBERG_LANES;
        base..base + ICEBERG_LANES
    }

    /// Which global bucket owns cell `idx`.
    pub fn bucket_of_cell(&self, idx: u64) -> u64 {
        idx / ICEBERG_LANES
    }

    /// Which lane of its bucket cell `idx` occupies.
    pub fn lane_of_cell(&self, idx: u64) -> u64 {
        idx % ICEBERG_LANES
    }

    /// Which level (0, 1, or 2) cell `idx` belongs to.
    pub fn level_of_cell(&self, idx: u64) -> u64 {
        let b = self.bucket_of_cell(idx);
        if b < self.l1_buckets {
            0
        } else if b < self.backyard_base() {
            1
        } else {
            2
        }
    }

    /// Is `idx` a legal resting place for a key hashing to
    /// `(h1, h2, h3)`? Level-1 cells must sit in the key's level-1 bucket,
    /// level-2 cells in either paired candidate; any backyard cell is
    /// reachable (the overflow chain scans the whole backyard).
    pub fn cell_reachable(&self, idx: u64, h1: u64, h2: u64, h3: u64) -> bool {
        let b = self.bucket_of_cell(idx);
        match self.level_of_cell(idx) {
            0 => b == self.l1_bucket(h1),
            1 => {
                let (a, c) = self.l2_pair(h2, h3);
                b == a || b == c
            }
            _ => true,
        }
    }
}

/// A reusable selection vector: the positions of a batch still in flight.
///
/// The vectorized multi-get pipeline runs in phases (hash every key, check
/// every level-1 slot, scan every still-unresolved group). Between phases
/// the set of live keys shrinks; a selection vector carries exactly that
/// set as indices into the caller's flat per-key arrays, so each phase
/// loops over survivors only and no per-key state is ever moved. The
/// buffer is retained across batches — steady-state multi-gets allocate
/// nothing.
#[derive(Debug, Default, Clone)]
pub struct Selection {
    idx: Vec<u32>,
}

impl Selection {
    /// An empty selection with no retained capacity.
    pub fn new() -> Self {
        Selection::default()
    }

    /// Resets to the identity selection `0..n` (every batch position live).
    pub fn reset(&mut self, n: usize) {
        self.idx.clear();
        self.idx.extend(0..n as u32);
    }

    /// Drops every selected position.
    pub fn clear(&mut self) {
        self.idx.clear();
    }

    /// Number of live positions.
    pub fn len(&self) -> usize {
        self.idx.len()
    }

    /// True when nothing is selected.
    pub fn is_empty(&self) -> bool {
        self.idx.is_empty()
    }

    /// The live positions, in ascending batch order.
    pub fn indices(&self) -> &[u32] {
        &self.idx
    }

    /// Adds a position (callers keep insertions ordered).
    pub fn push(&mut self, i: u32) {
        self.idx.push(i);
    }

    /// Keeps only the positions for which `keep` returns true, compacting
    /// in place (order preserved, no allocation).
    pub fn retain(&mut self, mut keep: impl FnMut(u32) -> bool) {
        self.idx.retain(|&i| keep(i));
    }
}

/// One fingerprint tag word matched against many keys' tags at once: for
/// each `(position, tag)` pair whose key probes the group behind `word`,
/// reports the 8-lane candidate mask via `out`. The word stays in a
/// register across the whole run — the batch analogue of [`match_bits`],
/// and the reason the vectorized path loads each fp-cache word once per
/// *group* instead of once per key.
pub fn match_bits_many(word: u64, tags: &[(u32, u8)], mut out: impl FnMut(u32, u64)) {
    for &(pos, tag) in tags {
        out(pos, match_bits(word, tag));
    }
}

/// Fills every byte lane of a word with `tag`.
pub fn broadcast(tag: u8) -> u64 {
    u64::from(tag) * 0x0101_0101_0101_0101
}

/// Exact SWAR tag match: returns a bitmask with bit `i` set iff byte lane
/// `i` of `word` equals `tag`. Eight fingerprint comparisons in a handful
/// of ALU ops, no false positives at the lane level.
pub fn match_bits(word: u64, tag: u8) -> u64 {
    const LO7: u64 = 0x7F7F_7F7F_7F7F_7F7F;
    let x = word ^ broadcast(tag);
    // Per-byte zero test without carries leaking across lanes: a byte of
    // `x` is zero iff its low 7 bits don't carry into bit 7 *and* bit 7 is
    // clear.
    let y = (x & LO7).wrapping_add(LO7);
    let hi = !(y | x | LO7);
    // Compress each lane's bit 7 down to one bit per lane.
    ((hi >> 7).wrapping_mul(0x0102_0408_1020_4080)) >> 56
}

#[cfg(test)]
mod tests {
    use super::*;

    fn match_bits_reference(word: u64, tag: u8) -> u64 {
        let mut m = 0u64;
        for lane in 0..8 {
            if (word >> (lane * 8)) as u8 == tag {
                m |= 1 << lane;
            }
        }
        m
    }

    #[test]
    fn swar_matches_scalar_reference() {
        let words = [
            0u64,
            u64::MAX,
            0x0102_0304_0506_0708,
            0x8080_8080_8080_8080,
            0x7F00_FF01_807E_0081,
            0xDEAD_BEEF_CAFE_BABE,
        ];
        for &w in &words {
            for tag in [0u8, 1, 0x7F, 0x80, 0xFF, 0xAD, 0xBE] {
                assert_eq!(
                    match_bits(w, tag),
                    match_bits_reference(w, tag),
                    "word {w:#018x} tag {tag:#04x}"
                );
            }
        }
    }

    #[test]
    fn match_bits_all_and_none() {
        assert_eq!(match_bits(broadcast(0x5A), 0x5A), 0xFF);
        assert_eq!(match_bits(broadcast(0x5A), 0xA5), 0);
        assert_eq!(match_bits(0, 0), 0xFF);
    }

    #[test]
    fn match_bits_many_equals_per_key_matches() {
        let word = 0x7F00_FF01_807E_0081u64;
        let tags: Vec<(u32, u8)> = [0u8, 1, 0x7E, 0x7F, 0x80, 0x81, 0xFF, 0xAB]
            .iter()
            .enumerate()
            .map(|(i, &t)| (i as u32 * 3, t))
            .collect();
        let mut got = Vec::new();
        match_bits_many(word, &tags, |pos, mask| got.push((pos, mask)));
        let want: Vec<(u32, u64)> = tags
            .iter()
            .map(|&(pos, t)| (pos, match_bits_reference(word, t)))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn selection_reset_retain_compacts_in_order() {
        let mut sel = Selection::new();
        assert!(sel.is_empty());
        sel.reset(6);
        assert_eq!(sel.len(), 6);
        assert_eq!(sel.indices(), &[0, 1, 2, 3, 4, 5]);
        sel.retain(|i| i % 2 == 1);
        assert_eq!(sel.indices(), &[1, 3, 5]);
        sel.push(9);
        assert_eq!(sel.indices(), &[1, 3, 5, 9]);
        sel.clear();
        assert!(sel.is_empty());
        // Reuse after clear: the identity selection comes back whole.
        sel.reset(3);
        assert_eq!(sel.indices(), &[0, 1, 2]);
    }

    #[test]
    fn group_plan_contiguous_sequences() {
        let p = GroupPlan::new(4, 8, ProbeLayout::Contiguous);
        assert_eq!(p.cells_per_level(), 32);
        assert_eq!(p.group_cells(0).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(p.group_cells(3).collect::<Vec<_>>(), vec![12, 13, 14, 15]);
        assert_eq!(p.group_of_slot(13), 3);
        for g in 0..8 {
            for c in p.group_cells(g) {
                assert_eq!(p.group_of_cell(c), g);
            }
        }
    }

    #[test]
    fn group_plan_strided_sequences() {
        let p = GroupPlan::new(4, 8, ProbeLayout::Strided);
        assert_eq!(p.group_cells(0).collect::<Vec<_>>(), vec![0, 8, 16, 24]);
        assert_eq!(p.group_cells(3).collect::<Vec<_>>(), vec![3, 11, 19, 27]);
        for g in 0..8 {
            for c in p.group_cells(g) {
                assert_eq!(p.group_of_cell(c), g);
            }
        }
    }

    #[test]
    fn strided_and_contiguous_partition_identically() {
        // Same partition of cells into groups, different order: the
        // ablation changes locality only.
        for layout in [ProbeLayout::Contiguous, ProbeLayout::Strided] {
            let p = GroupPlan::new(8, 16, layout);
            let mut seen: Vec<u64> = (0..16).flat_map(|g| p.group_cells(g)).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..128).collect::<Vec<_>>());
        }
    }

    #[test]
    fn linear_plan_wraps() {
        let p = LinearPlan::new(8);
        assert_eq!(p.home(0x1234_5678), 0x1234_5678 & 7);
        assert_eq!(p.step(7), 0);
        assert_eq!(p.sequence(6).collect::<Vec<_>>(), vec![6, 7, 0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn linear_must_stay_matches_probe_reachability() {
        // Brute force: the entry at `i` with home `home` may stay iff its
        // probe path home..=i (cyclic) does not pass through the hole.
        let p = LinearPlan::new(8);
        for hole in 0..8u64 {
            for home in 0..8u64 {
                for i in 0..8u64 {
                    if i == hole {
                        continue;
                    }
                    let path_hits_hole = p
                        .sequence(home)
                        .take_while(|&c| c != i)
                        .any(|c| c == hole);
                    assert_eq!(
                        LinearPlan::must_stay(hole, home, i),
                        !path_hits_hole,
                        "hole {hole} home {home} i {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn pfht_plan_buckets_and_stash() {
        let p = PfhtPlan::new(16, 4, 3);
        assert_eq!(p.total_cells(), 67);
        assert_eq!(p.stash_base(), 64);
        assert_eq!(p.bucket_range(2).collect::<Vec<_>>(), vec![8, 9, 10, 11]);
        assert_eq!(p.cell(15, 3), 63);
        assert_eq!(p.buckets(0x21, 0x33), (1, 3));
        assert_eq!(p.bucket_of_cell(11), Some(2));
        assert_eq!(p.bucket_of_cell(64), None);
        assert_eq!(p.bucket_of_cell(66), None);
    }

    #[test]
    fn path_plan_known_geometry() {
        // leaf_bits 3, 3 levels: sizes 8 + 4 + 2 = 14 cells,
        // bases [0, 8, 12].
        let p = PathPlan::new(3, 3);
        assert_eq!(p.total_cells(), 14);
        assert_eq!(PathPlan::cell_count(3, 3), 14);
        assert_eq!(p.level_base(0), 0);
        assert_eq!(p.level_base(1), 8);
        assert_eq!(p.level_base(2), 12);
        assert_eq!(p.cell(5, 0), 5);
        assert_eq!(p.cell(5, 1), 8 + 2);
        assert_eq!(p.cell(5, 2), 12 + 1);
        assert_eq!(p.level_of_cell(7), 0);
        assert_eq!(p.level_of_cell(8), 1);
        assert_eq!(p.level_of_cell(13), 2);
        assert!(p.on_path(5, 10));
        assert!(!p.on_path(5, 9));
    }

    #[test]
    fn path_plan_sequence_dedups_merged_ancestors() {
        let p = PathPlan::new(3, 3);
        // Leaves 2 and 3 share ancestors from level 1 up.
        assert_eq!(p.path_cells(2, 3).collect::<Vec<_>>(), vec![2, 3, 9, 12]);
        // Distinct paths all the way up to the last kept level.
        assert_eq!(p.path_cells(0, 7).collect::<Vec<_>>(), vec![0, 7, 8, 11, 12, 13]);
        // Same leaf twice: each cell once.
        assert_eq!(p.path_cells(4, 4).collect::<Vec<_>>(), vec![4, 10, 13]);
    }

    #[test]
    fn path_plan_clamps_levels() {
        let p = PathPlan::new(2, 10);
        assert_eq!(p.levels(), 3);
        assert_eq!(p.total_cells(), 4 + 2 + 1);
    }

    #[test]
    fn iceberg_plan_level_bases_and_totals() {
        // 8 L1 + 4 L2 + 4 backyard buckets of 8 lanes = 128 cells.
        let p = IcebergPlan::new(8, 4, 4);
        assert_eq!(p.n_buckets(), 16);
        assert_eq!(p.total_cells(), 128);
        assert_eq!(p.backyard_base(), 12);
        assert_eq!(p.l1_bucket(0x35), 0x35 & 7);
        assert_eq!(p.l2_pair(0x11, 0x22), (8 + 1, 8 + 2));
        assert_eq!(p.cell(3, 5), 29);
        assert_eq!(p.bucket_of_cell(29), 3);
        assert_eq!(p.lane_of_cell(29), 5);
    }

    #[test]
    fn iceberg_plan_levels_partition_the_cells() {
        let p = IcebergPlan::new(8, 4, 4);
        let mut counts = [0u64; 3];
        for idx in 0..p.total_cells() {
            counts[p.level_of_cell(idx) as usize] += 1;
        }
        assert_eq!(counts, [64, 32, 32]);
    }

    #[test]
    fn iceberg_backyard_sequence_visits_every_bucket_once() {
        let p = IcebergPlan::new(8, 4, 4);
        for h in 0..16u64 {
            let mut seq: Vec<u64> = p.backyard_sequence(h).collect();
            assert_eq!(seq[0], p.backyard_home(h));
            seq.sort_unstable();
            assert_eq!(seq, vec![12, 13, 14, 15]);
        }
    }

    #[test]
    fn iceberg_reachability_matches_levels() {
        let p = IcebergPlan::new(8, 4, 4);
        let (h1, h2, h3) = (5u64, 2u64, 7u64);
        // L1: only the key's own bucket.
        assert!(p.cell_reachable(p.cell(5, 0), h1, h2, h3));
        assert!(!p.cell_reachable(p.cell(4, 0), h1, h2, h3));
        // L2: either paired candidate, nothing else.
        let (a, b) = p.l2_pair(h2, h3);
        assert!(p.cell_reachable(p.cell(a, 3), h1, h2, h3));
        assert!(p.cell_reachable(p.cell(b, 3), h1, h2, h3));
        assert!(!p.cell_reachable(p.cell(8 + 1, 0), h1, 2, 2), "bucket 9 not in pair for (2,2)");
        // Backyard: every bucket is on the overflow chain.
        for by in p.backyard_base()..p.n_buckets() {
            assert!(p.cell_reachable(p.cell(by, 7), h1, h2, h3));
        }
    }
}
