//! Volatile per-bucket fingerprint metadata words.
//!
//! An iceberg-style scheme keeps one 8-lane tag word per 8-cell bucket in
//! DRAM: byte lane `i` holds the fingerprint tag of the cell at lane `i`,
//! or 0 when the lane is believed empty. The words are *advisory* — a tag
//! hit still verifies occupancy and key bytes against pmem, and a key
//! whose tag happens to be 0 simply costs the same probe it would without
//! the filter (false positives allowed, false negatives not). Nothing
//! here is ever persisted: the array is rebuilt from the occupancy bitmap
//! and cell keys on open/recover, which is what keeps the failure-atomic
//! commit argument untouched — the 8-byte bitmap word stays the only
//! publish point.
//!
//! This module is pure DRAM bookkeeping: like the probe plans it never
//! names the pool (enforced by the ci.sh layering lint).

use std::sync::atomic::{AtomicU64, Ordering};

/// Cells covered by one metadata word (one byte lane per cell).
pub const META_LANES: u64 = 8;

/// A volatile array of 8-lane fingerprint words, one per 8-cell bucket.
///
/// Lane updates are single-CAS byte splices, so a concurrent reader always
/// observes either the old or the new tag — never a transient 0 that would
/// make the filter falsely negative for a published cell.
#[derive(Debug)]
pub struct MetaWords {
    words: Vec<AtomicU64>,
}

impl MetaWords {
    /// A zeroed metadata array covering `n_cells` cells (rounded up to a
    /// whole word).
    pub fn new(n_cells: u64) -> Self {
        let n_words = n_cells.div_ceil(META_LANES) as usize;
        MetaWords {
            words: (0..n_words).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Cells covered (always a multiple of [`META_LANES`]).
    pub fn n_cells(&self) -> u64 {
        self.words.len() as u64 * META_LANES
    }

    /// The raw tag word of `bucket` — feed to
    /// [`crate::probe::match_bits`] to test all 8 lanes at once.
    pub fn word(&self, bucket: u64) -> u64 {
        self.words[bucket as usize].load(Ordering::Acquire)
    }

    /// The tag currently recorded for cell `idx` (0 = believed empty).
    pub fn tag(&self, idx: u64) -> u8 {
        (self.word(idx / META_LANES) >> ((idx % META_LANES) * 8)) as u8
    }

    /// Records `tag` for cell `idx` (one CAS splice of the byte lane).
    pub fn set(&self, idx: u64, tag: u8) {
        self.splice(idx, tag);
    }

    /// Clears cell `idx`'s lane back to 0.
    pub fn clear(&self, idx: u64) {
        self.splice(idx, 0);
    }

    /// Zeroes every word (rebuild prelude).
    pub fn reset(&self) {
        for w in &self.words {
            w.store(0, Ordering::Release);
        }
    }

    fn splice(&self, idx: u64, tag: u8) {
        let shift = (idx % META_LANES) * 8;
        let lane_mask = 0xFFu64 << shift;
        let lane_val = u64::from(tag) << shift;
        let word = &self.words[(idx / META_LANES) as usize];
        let mut cur = word.load(Ordering::Relaxed);
        loop {
            let next = (cur & !lane_mask) | lane_val;
            match word.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::match_bits;

    #[test]
    fn lanes_round_trip_and_pack_into_words() {
        let m = MetaWords::new(24);
        assert_eq!(m.n_cells(), 24);
        for idx in 0..24u64 {
            m.set(idx, (idx as u8) | 0x40);
        }
        for idx in 0..24u64 {
            assert_eq!(m.tag(idx), (idx as u8) | 0x40);
        }
        // Word 1 covers cells 8..16, lane order little-endian.
        let w = m.word(1);
        for lane in 0..8u64 {
            assert_eq!((w >> (lane * 8)) as u8, (8 + lane) as u8 | 0x40);
        }
    }

    #[test]
    fn clear_restores_the_empty_lane() {
        let m = MetaWords::new(8);
        m.set(3, 0xAB);
        assert_eq!(m.tag(3), 0xAB);
        m.clear(3);
        assert_eq!(m.tag(3), 0);
        assert_eq!(m.word(0), 0);
    }

    #[test]
    fn words_feed_the_swar_matcher() {
        let m = MetaWords::new(16);
        m.set(9, 0x5A);
        m.set(12, 0x5A);
        m.set(14, 0x77);
        let mask = match_bits(m.word(1), 0x5A);
        assert_eq!(mask, (1 << 1) | (1 << 4));
    }

    #[test]
    fn rounds_up_to_whole_words() {
        let m = MetaWords::new(3);
        assert_eq!(m.n_cells(), 8);
        m.set(2, 1);
        m.reset();
        assert_eq!(m.tag(2), 0);
    }

    #[test]
    fn concurrent_splices_in_one_word_lose_nothing() {
        let m = std::sync::Arc::new(MetaWords::new(8));
        let threads: Vec<_> = (0..8u64)
            .map(|lane| {
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || {
                    for round in 0..200u64 {
                        m.set(lane, ((lane as u8) ^ (round as u8)) | 1);
                    }
                    m.set(lane, lane as u8 + 1);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        for lane in 0..8u64 {
            assert_eq!(m.tag(lane), lane as u8 + 1);
        }
    }
}
