//! Optional undo-log journal shared by every scheme.
//!
//! This is the single place [`ConsistencyMode`] is applied: the group table
//! and all three baselines funnel their pre-images through `Journal`, so
//! switching modes changes *only* the consistency cost, never a scheme's
//! logic. In [`ConsistencyMode::None`] every call is a no-op that compiles
//! down to a branch on an empty `Option`.

use crate::ConsistencyMode;
use nvm_pmem::{Pmem, Region};
use nvm_wal::UndoLog;

/// A consistency journal: either a no-op (bare scheme) or an undo log
/// (the paper's `-L` variants).
#[derive(Debug, Clone)]
pub struct Journal {
    log: Option<UndoLog>,
}

impl Journal {
    /// Creates the journal, initializing the log region when `mode`
    /// requires one.
    pub fn create<P: Pmem>(pm: &mut P, mode: ConsistencyMode, region: Region) -> Self {
        Journal {
            log: match mode {
                ConsistencyMode::None => None,
                ConsistencyMode::UndoLog => Some(UndoLog::create(pm, region)),
            },
        }
    }

    /// Attaches to an existing journal region.
    pub fn open(mode: ConsistencyMode, region: Region) -> Self {
        Journal {
            log: match mode {
                ConsistencyMode::None => None,
                ConsistencyMode::UndoLog => Some(UndoLog::open(region)),
            },
        }
    }

    /// The mode this journal runs in.
    pub fn mode(&self) -> ConsistencyMode {
        if self.log.is_some() {
            ConsistencyMode::UndoLog
        } else {
            ConsistencyMode::None
        }
    }

    /// Opens a transaction (no-op without a log).
    pub fn begin<P: Pmem>(&mut self, pm: &mut P) {
        if let Some(log) = self.log.as_mut() {
            log.begin(pm);
        }
    }

    /// Records a pre-image (no-op without a log). Volatile until
    /// [`Journal::seal`].
    pub fn record<P: Pmem>(&mut self, pm: &mut P, off: usize, len: usize) {
        if let Some(log) = self.log.as_mut() {
            log.record(pm, off, len);
        }
    }

    /// Makes recorded pre-images durable (one batched flush + fence).
    /// Must precede the in-place writes they protect.
    pub fn seal<P: Pmem>(&mut self, pm: &mut P) {
        if let Some(log) = self.log.as_mut() {
            log.seal(pm);
        }
    }

    /// Record + seal in one step (incremental multi-write updates).
    pub fn record_sealed<P: Pmem>(&mut self, pm: &mut P, off: usize, len: usize) {
        if let Some(log) = self.log.as_mut() {
            log.record_sealed(pm, off, len);
        }
    }

    /// Commits (no-op without a log).
    pub fn commit<P: Pmem>(&mut self, pm: &mut P) {
        if let Some(log) = self.log.as_mut() {
            log.commit(pm);
        }
    }

    /// Rolls back an in-flight transaction after a crash. Returns whether
    /// a rollback happened.
    pub fn recover<P: Pmem>(&mut self, pm: &mut P) -> bool {
        match self.log.as_mut() {
            Some(log) => log.recover(pm),
            None => false,
        }
    }

    /// Log bytes one recorded span of `len` bytes costs: a 16-byte record
    /// header plus the payload padded to 8.
    pub fn record_cost(len: usize) -> usize {
        16 + len.div_ceil(8) * 8
    }

    /// How many batch ops fit in one transaction, when each op records
    /// spans of `op_record_lens` bytes and the transaction additionally
    /// records each of `fixed_record_lens` once (e.g. the count word).
    /// Unbounded (`usize::MAX`) without a log; at least 1 with one, so
    /// batch loops always make progress (a single op is known to fit —
    /// it is exactly what the non-batched path records).
    pub fn ops_per_txn(&self, op_record_lens: &[usize], fixed_record_lens: &[usize]) -> usize {
        let Some(log) = self.log.as_ref() else {
            return usize::MAX;
        };
        let budget = log.region().len.saturating_sub(64);
        let fixed: usize = fixed_record_lens.iter().map(|&l| Self::record_cost(l)).sum();
        let per_op: usize = op_record_lens.iter().map(|&l| Self::record_cost(l)).sum();
        (budget.saturating_sub(fixed) / per_op.max(1)).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_pmem::{Pmem, PmemRead, SimConfig, SimPmem};

    #[test]
    fn none_mode_is_free() {
        let mut pm = SimPmem::new(8192, SimConfig::fast_test());
        let mut j = Journal::create(&mut pm, ConsistencyMode::None, Region::new(0, 1024));
        pm.reset_stats();
        j.begin(&mut pm);
        j.record(&mut pm, 2048, 16);
        j.commit(&mut pm);
        assert_eq!(pm.stats().writes, 0);
        assert_eq!(pm.stats().flushes, 0);
        assert!(!j.recover(&mut pm));
        assert_eq!(j.mode(), ConsistencyMode::None);
    }

    #[test]
    fn ops_per_txn_chunks_by_log_capacity() {
        let mut pm = SimPmem::new(8192, SimConfig::fast_test());
        // 1024-byte log → 960 bytes of records. A u64/u64 publish records
        // a 16-byte cell (32 bytes logged) + an 8-byte word (24), the
        // count is 24 once: (960 - 24) / 56 = 16.
        let j = Journal::create(&mut pm, ConsistencyMode::UndoLog, Region::new(0, 1024));
        assert_eq!(j.ops_per_txn(&[16, 8], &[8]), 16);
        // No log → no chunking needed.
        let j_none = Journal::create(&mut pm, ConsistencyMode::None, Region::new(0, 1024));
        assert_eq!(j_none.ops_per_txn(&[16, 8], &[8]), usize::MAX);
        // Never returns 0, even for absurdly small logs.
        let j_tiny = Journal::create(&mut pm, ConsistencyMode::UndoLog, Region::new(4096, 128));
        assert_eq!(j_tiny.ops_per_txn(&[16, 8], &[8]), 1);
    }

    #[test]
    fn undo_mode_logs_and_recovers() {
        let mut pm = SimPmem::new(8192, SimConfig::fast_test());
        pm.write_u64(2048, 77);
        pm.persist(2048, 8);
        let mut j = Journal::create(&mut pm, ConsistencyMode::UndoLog, Region::new(0, 1024));
        assert_eq!(j.mode(), ConsistencyMode::UndoLog);
        j.begin(&mut pm);
        j.record(&mut pm, 2048, 8);
        j.seal(&mut pm);
        pm.write_u64(2048, 88);
        pm.persist(2048, 8);
        // No commit: simulate crash, reopen, roll back.
        pm.crash(nvm_pmem::CrashResolution::PersistAll);
        let mut j2 = Journal::open(ConsistencyMode::UndoLog, Region::new(0, 1024));
        assert!(j2.recover(&mut pm));
        assert_eq!(pm.read_u64(2048), 77);
    }
}
