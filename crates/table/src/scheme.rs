//! The common interface every hashing scheme implements.

use crate::TableError;
use nvm_hashfn::{HashKey, Pod};
use nvm_metrics::SchemeInstrumentation;
use nvm_pmem::Pmem;

/// Why an insertion failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertError {
    /// No free cell reachable by the scheme's collision policy. For the
    /// space-utilization experiment (Figure 7) this is the event that
    /// defines a scheme's utilization ratio.
    TableFull,
    /// The key is already present (only returned by `insert_unique`-style
    /// entry points; the paper's Algorithm 1 never probes for duplicates).
    DuplicateKey,
}

impl std::fmt::Display for InsertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InsertError::TableFull => write!(f, "no free cell reachable for this key"),
            InsertError::DuplicateKey => write!(f, "key already present"),
        }
    }
}

impl std::error::Error for InsertError {}

/// Why (and where) a batched insert stopped.
///
/// Batches commit in order with **prefix durability**: when op `i` fails,
/// ops `0..i` are durably applied and ops `i..` are not — never a torn
/// middle. `committed` is that prefix length, so callers can retry
/// `items[committed..]` after making room.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchError {
    /// Ops durably applied before the failure — always a prefix of the
    /// batch.
    pub committed: usize,
    /// Why the op at index `committed` failed.
    pub error: InsertError,
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "batch stopped after {} ops: {}", self.committed, self.error)
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Consistency discipline for the baseline schemes.
///
/// Group hashing never needs a log (its 8-byte bitmap commit is the whole
/// point); the baselines are measured both bare (`None`, the original
/// published schemes) and logged (`UndoLog`, the paper's `-L` variants that
/// actually guarantee recoverability).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConsistencyMode {
    /// Writes are persisted but updates are not atomic across fields — a
    /// crash mid-update can corrupt the structure.
    #[default]
    None,
    /// Every update runs in an undo-log transaction.
    UndoLog,
}

/// Request types measured by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Insert a fresh key (the paper's Algorithm 1).
    Insert,
    /// Look up a key (Algorithm 2's probe path).
    Query,
    /// Remove a key (Algorithm 3).
    Delete,
}

impl OpKind {
    /// Every request type, in the paper's figure order.
    pub const ALL: [OpKind; 3] = [OpKind::Insert, OpKind::Query, OpKind::Delete];

    /// The label used in figures and CSV columns.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Insert => "insert",
            OpKind::Query => "query",
            OpKind::Delete => "delete",
        }
    }
}

/// A persistent hash table over a pmem pool.
///
/// All persistent state lives in the pool; `self` holds only geometry
/// derived from the persisted header, so a table can be re-opened from the
/// raw pool bytes after a crash.
pub trait HashScheme<P: Pmem, K: HashKey, V: Pod> {
    /// Scheme name as used in the paper's figures ("linear", "PFHT", ...).
    fn name(&self) -> &'static str;

    /// Inserts `(key, value)`. Assumes `key` is not present (the paper's
    /// Algorithm 1); inserting a duplicate shadows rather than updates.
    fn insert(&mut self, pm: &mut P, key: K, value: V) -> Result<(), InsertError>;

    /// Looks up `key`. Shared-capability (`&P`): the query path never
    /// mutates, so concurrent wrappers can run it without the writer lock.
    fn get(&self, pm: &P, key: &K) -> Option<V>;

    /// Looks up every key of a batch, returning one `Option<V>` per key in
    /// input order. Semantically identical to calling [`HashScheme::get`]
    /// per element — same results, same shared-capability `&P`, still zero
    /// persistence events — but schemes override it with a vectorized
    /// pipeline: hash the whole vector up front, software-prefetch every
    /// candidate line, then resolve probes interleaved across keys so the
    /// NVM read latencies overlap instead of serializing.
    ///
    /// The default implementation is the per-key loop.
    ///
    /// ```
    /// use group_hash::{GroupHash, GroupHashConfig};
    /// use nvm_pmem::{Pmem, Region, SimConfig, SimPmem};
    /// use nvm_table::HashScheme;
    ///
    /// let cfg = GroupHashConfig::new(1 << 10, 64);
    /// let size = GroupHash::<SimPmem, u64, u64>::required_size(&cfg);
    /// let mut pm = SimPmem::new(size, SimConfig::fast_test());
    /// let mut t = GroupHash::create(&mut pm, Region::new(0, size), cfg).unwrap();
    /// for k in 0..100u64 {
    ///     t.insert(&mut pm, k, k * 2).unwrap();
    /// }
    ///
    /// let keys = [3u64, 77, 500, 42]; // 500 is absent
    /// let hits = t.get_batch(&pm, &keys);
    /// assert_eq!(hits, vec![Some(6), Some(154), None, Some(84)]);
    /// ```
    fn get_batch(&self, pm: &P, keys: &[K]) -> Vec<Option<V>> {
        keys.iter().map(|key| self.get(pm, key)).collect()
    }

    /// Removes `key`, returning whether it was present.
    fn remove(&mut self, pm: &mut P, key: &K) -> bool;

    /// Occupied cells, read from the persistent header.
    fn len(&self, pm: &P) -> u64;

    /// Total cells (both levels / all buckets / stash included).
    fn capacity(&self) -> u64;

    /// `len / capacity`.
    fn load_factor(&self, pm: &P) -> f64 {
        self.len(pm) as f64 / self.capacity() as f64
    }

    /// True when no cell is occupied.
    fn is_empty(&self, pm: &P) -> bool {
        self.len(pm) == 0
    }

    /// Post-crash recovery: restores all structural invariants using only
    /// persistent state. Idempotent.
    fn recover(&mut self, pm: &mut P);

    /// Verifies structural invariants (count matches occupancy, every key
    /// reachable from its hash position, no duplicates). The first
    /// violation comes back as [`TableError::Corrupt`]. Test/debug aid —
    /// O(capacity).
    fn check_consistency(&self, pm: &P) -> Result<(), TableError>;

    /// Inserts every `(key, value)` in order, amortizing persistence
    /// fences across the batch where the scheme supports it (group
    /// hashing and the baselines coalesce to ~`K + 2` fences for `K` ops
    /// instead of `3K`). Semantics match calling [`HashScheme::insert`]
    /// per element: duplicates shadow, and on failure the already-applied
    /// ops stay — [`BatchError::committed`] reports that durable prefix.
    ///
    /// The default implementation is the per-op loop; schemes override it
    /// with a fence-coalescing fast path. A crash mid-batch recovers to
    /// some prefix of the batch (never a torn op) in both consistency
    /// modes.
    fn insert_batch(&mut self, pm: &mut P, items: &[(K, V)]) -> Result<(), BatchError> {
        for (i, (key, value)) in items.iter().enumerate() {
            if let Err(error) = self.insert(pm, *key, *value) {
                return Err(BatchError {
                    committed: i,
                    error,
                });
            }
        }
        Ok(())
    }

    /// Removes every key in order, returning how many were present (and
    /// are now gone). Same amortization and prefix-durability story as
    /// [`HashScheme::insert_batch`]. When one key appears several times
    /// in `keys`, at most one removal takes effect per batch (there is
    /// only one cell to retract).
    fn remove_batch(&mut self, pm: &mut P, keys: &[K]) -> usize {
        keys.iter().filter(|key| self.remove(pm, key)).count()
    }

    /// Insert that first checks for presence, returning
    /// [`InsertError::DuplicateKey`] instead of shadowing. Convenience for
    /// library users; the paper's workloads use distinct keys.
    fn insert_unique(&mut self, pm: &mut P, key: K, value: V) -> Result<(), InsertError> {
        if self.get(pm, &key).is_some() {
            return Err(InsertError::DuplicateKey);
        }
        self.insert(pm, key, value)
    }

    /// True if `key` is present.
    fn contains(&self, pm: &P, key: &K) -> bool {
        self.get(pm, key).is_some()
    }

    /// The scheme's probe/occupancy/displacement histograms, when the
    /// implementation records them (schemes compile recording behind an
    /// `instrument` feature; without it this stays `None` and the hooks
    /// cost nothing). Concurrent wrappers return an aggregate across
    /// shards.
    fn instrumentation(&self) -> Option<&SchemeInstrumentation> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_error_display() {
        assert!(InsertError::TableFull.to_string().contains("free cell"));
        assert!(InsertError::DuplicateKey.to_string().contains("present"));
    }

    #[test]
    fn batch_error_reports_prefix_and_cause() {
        let e = BatchError {
            committed: 7,
            error: InsertError::TableFull,
        };
        assert!(e.to_string().contains("after 7 ops"));
        assert!(e.to_string().contains("free cell"));
        use std::error::Error;
        assert!(e.source().is_some());
    }

    #[test]
    fn op_kind_labels() {
        assert_eq!(OpKind::ALL.len(), 3);
        assert_eq!(OpKind::Insert.label(), "insert");
        assert_eq!(OpKind::Query.label(), "query");
        assert_eq!(OpKind::Delete.label(), "delete");
    }

    #[test]
    fn consistency_default_is_none() {
        assert_eq!(ConsistencyMode::default(), ConsistencyMode::None);
    }
}
