//! Incremental online migration between two tables of the same scheme.
//!
//! Stop-the-world rehashing is the latency cliff the ROADMAP's north star
//! cannot eat: doubling a table that holds millions of entries stalls
//! every writer for the whole rebuild. This module replaces it with a
//! *drainer* that moves a bounded number of entries per call, so normal
//! operations interleave with the migration:
//!
//! * the **source** table keeps a persisted *migration cursor* in its
//!   header ([`crate::TableHeader::migration_cursor`]) — all source cells
//!   `< cursor` are guaranteed drained;
//! * each step is two failure-atomic commits in strict order: publish the
//!   entry into the **destination**, then retract it from the source.
//!   A crash between the two leaves the entry in *both* tables, which is
//!   benign for lookups (either copy answers) and is deduplicated by
//!   [`migrate_recover`];
//! * the cursor only advances *after* both commits are durable, so it
//!   never claims a move that did not happen;
//! * the source's migration-active flag brackets the whole drain: set
//!   before the first move, cleared after the cursor passes the end, so
//!   a crash mid-migration is self-announcing to recovery.
//!
//! Routing during a migration is the caller's job (the concurrent wrapper
//! probes source-then-destination); this module owns only the persistent
//! choreography and its recovery rule.

use crate::HashScheme;
use nvm_hashfn::{HashKey, Pod};
use nvm_pmem::Pmem;

/// A scheme that can be drained cell-by-cell into another instance of
/// itself — the source side of incremental online expansion.
///
/// Implementations expose their raw cell index space (`0..migration_cells`)
/// so the drainer can walk it with a persisted cursor. The index order is
/// the implementation's choice but must be stable across re-opens of the
/// same pool (recovery resumes from the persisted cursor).
pub trait MigrationSource<P: Pmem, K: HashKey, V: Pod>: HashScheme<P, K, V> {
    /// Size of the raw cell index space the cursor walks.
    fn migration_cells(&self) -> u64;

    /// The committed entry at raw cell `i`, if any.
    fn entry_at(&self, pm: &P, i: u64) -> Option<(K, V)>;

    /// Retracts raw cell `i` (failure-atomic, count maintained). Returns
    /// `false` if the cell was already empty. Used by the drainer after
    /// the entry is durably republished elsewhere, and by recovery's
    /// dedup pass.
    fn evict_cell(&mut self, pm: &mut P, i: u64) -> bool;

    /// Reads the persisted migration cursor from this table's header.
    fn migration_cursor(&self, pm: &P) -> u64;

    /// Persists a new migration cursor (atomic 8-byte store + persist).
    fn set_migration_cursor(&mut self, pm: &mut P, cursor: u64);

    /// Reads the persisted migration-active flag.
    fn migration_active(&self, pm: &P) -> bool;

    /// Persists the migration-active flag.
    fn set_migration_active(&mut self, pm: &mut P, active: bool);
}

/// One bounded drain step where source and destination live in *different*
/// pools. Moves at most `max_moves` committed entries from `src` (starting
/// at its persisted cursor) into `dst`, advancing and persisting the
/// cursor as it goes. Returns `true` when the source is fully drained (the
/// active flag is then cleared).
///
/// Ordering per moved entry: `dst` publish commits, then `src` retract
/// commits, then the cursor advances — each step durable before the next.
/// A crash leaves at most one entry duplicated across the tables, never
/// lost; [`migrate_recover`] removes the duplicate.
///
/// Panics if `dst` cannot take an entry (`TableFull`): expansion targets
/// are sized ≥ 2× the source, so a full destination is a sizing bug, not
/// a runtime condition.
pub fn migrate_step<P, K, V, S>(
    src_pm: &mut P,
    dst_pm: &mut P,
    src: &mut S,
    dst: &mut S,
    max_moves: u64,
) -> bool
where
    P: Pmem,
    K: HashKey,
    V: Pod,
    S: MigrationSource<P, K, V>,
{
    let total = src.migration_cells();
    let mut cursor = src.migration_cursor(src_pm);
    if cursor >= total {
        finish(src_pm, src, total);
        return true;
    }
    if !src.migration_active(src_pm) {
        src.set_migration_active(src_pm, true);
    }
    let mut moved = 0;
    while cursor < total && moved < max_moves {
        if let Some((key, value)) = src.entry_at(src_pm, cursor) {
            dst.insert(dst_pm, key, value)
                .expect("expansion destination full: target must be sized >= source");
            src.evict_cell(src_pm, cursor);
            moved += 1;
        }
        cursor += 1;
        src.set_migration_cursor(src_pm, cursor);
    }
    if cursor >= total {
        finish(src_pm, src, total);
        return true;
    }
    false
}

/// [`migrate_step`] for source and destination regions inside the *same*
/// pool (the sharded wrapper's in-place expansion layout). Identical
/// choreography; the single `&mut P` serves both tables.
pub fn migrate_step_same_pool<P, K, V, S>(
    pm: &mut P,
    src: &mut S,
    dst: &mut S,
    max_moves: u64,
) -> bool
where
    P: Pmem,
    K: HashKey,
    V: Pod,
    S: MigrationSource<P, K, V>,
{
    let total = src.migration_cells();
    let mut cursor = src.migration_cursor(pm);
    if cursor >= total {
        finish(pm, src, total);
        return true;
    }
    if !src.migration_active(pm) {
        src.set_migration_active(pm, true);
    }
    let mut moved = 0;
    while cursor < total && moved < max_moves {
        if let Some((key, value)) = src.entry_at(pm, cursor) {
            dst.insert(pm, key, value)
                .expect("expansion destination full: target must be sized >= source");
            src.evict_cell(pm, cursor);
            moved += 1;
        }
        cursor += 1;
        src.set_migration_cursor(pm, cursor);
    }
    if cursor >= total {
        finish(pm, src, total);
        return true;
    }
    false
}

fn finish<P, K, V, S>(src_pm: &mut P, src: &mut S, total: u64)
where
    P: Pmem,
    K: HashKey,
    V: Pod,
    S: MigrationSource<P, K, V>,
{
    if src.migration_cursor(src_pm) != total {
        src.set_migration_cursor(src_pm, total);
    }
    if src.migration_active(src_pm) {
        src.set_migration_active(src_pm, false);
    }
}

/// Post-crash repair for an interrupted migration (same pool). Call
/// *after* both tables' own `recover` has restored their per-table
/// invariants.
///
/// If the source's migration-active flag is clear, nothing happened (or
/// it finished) — no-op. If set, the only possible inconsistency is an
/// entry present in **both** tables (publish committed, retract did not):
/// every committed source entry whose key answers in the destination is
/// evicted from the source. The scan covers *all* source cells, not just
/// `[cursor, total)` — the cursor trails the moves by design, so the
/// duplicate may sit exactly at the cursor. Idempotent; crashing inside
/// recovery and re-running converges to the same state.
pub fn migrate_recover<P, K, V, S>(pm: &mut P, src: &mut S, dst: &S) -> u64
where
    P: Pmem,
    K: HashKey,
    V: Pod,
    S: MigrationSource<P, K, V>,
{
    if !src.migration_active(pm) {
        return 0;
    }
    let mut deduped = 0;
    for i in 0..src.migration_cells() {
        if let Some((key, _)) = src.entry_at(pm, i) {
            if dst.get(pm, &key).is_some() {
                src.evict_cell(pm, i);
                deduped += 1;
            }
        }
    }
    deduped
}

/// [`migrate_recover`] for source and destination in *different* pools
/// (the [`migrate_step`] layout): same dedup rule, the destination is
/// probed through its own pool. Returns the number of duplicates evicted
/// from the source.
pub fn migrate_recover_split<P, K, V, S>(
    src_pm: &mut P,
    dst_pm: &P,
    src: &mut S,
    dst: &S,
) -> u64
where
    P: Pmem,
    K: HashKey,
    V: Pod,
    S: MigrationSource<P, K, V>,
{
    if !src.migration_active(src_pm) {
        return 0;
    }
    let mut deduped = 0;
    for i in 0..src.migration_cells() {
        if let Some((key, _)) = src.entry_at(src_pm, i) {
            if dst.get(dst_pm, &key).is_some() {
                src.evict_cell(src_pm, i);
                deduped += 1;
            }
        }
    }
    deduped
}
