//! Shared toolkit for persistent hash tables.
//!
//! Every scheme in the workspace (group hashing and the three baselines) is
//! built from the same persistent primitives, so that performance and
//! consistency comparisons measure the *scheme*, not incidental plumbing:
//!
//! * [`TableHeader`] — a cacheline of global metadata (the paper's *Global
//!   info*: `count`, `group_size`, `table_size`, plus magic/seed), with the
//!   paper's atomic-increment-then-persist counter discipline;
//! * [`PmemBitmap`] — the per-cell occupancy bitmap. One bit per cell,
//!   packed 64 to a word; setting or clearing a bit is a naturally-aligned
//!   8-byte store — the paper's failure-atomic commit primitive;
//! * [`CellArray`] — a contiguous array of fixed-size key/value cells;
//! * [`HashScheme`] — the trait the workload driver and experiment harness
//!   program against;
//! * [`ConsistencyMode`] — whether a baseline wraps updates in the undo log
//!   (the paper's `-L` variants) or runs bare.
//!
//! On top of those primitives the crate defines the three-layer split every
//! scheme is built as (see DESIGN.md § "Layered architecture"):
//!
//! 1. **probe plans** ([`probe`]) — pure, I/O-free candidate-cell
//!    geometry (group/linear/PFHT/path sequences, SWAR fingerprint match);
//! 2. **cell store** ([`CellStore`] + [`Journal`] + [`BatchSession`]) —
//!    the pmem-facing bitmap/codec pair with the failure-atomic
//!    publish/retract choreography (single-op and fence-coalesced group
//!    commit) and the one place `ConsistencyMode::UndoLog` applies;
//! 3. **ops** — each scheme's insert/get/delete policy, written as a
//!    composition of the two layers (in `group-hash` and `nvm-baselines`).
//!
//! Construction and attach errors are the typed [`TableError`].

#![warn(missing_docs)]

mod bitmap;
mod cells;
mod claims;
pub mod crashtest;
mod error;
mod header;
mod journal;
pub mod meta;
mod migrate;
pub mod probe;
mod scheme;
mod store;

pub use bitmap::PmemBitmap;
pub use cells::CellArray;
pub use claims::CellClaims;
pub use error::TableError;
pub use header::TableHeader;
pub use journal::Journal;
pub use meta::MetaWords;
pub use migrate::{
    migrate_recover, migrate_recover_split, migrate_step, migrate_step_same_pool, MigrationSource,
};
pub use scheme::{BatchError, ConsistencyMode, HashScheme, InsertError, OpKind};
pub use store::{BatchSession, CellStore, TryPublish, TryRetract};
