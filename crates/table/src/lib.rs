//! Shared toolkit for persistent hash tables.
//!
//! Every scheme in the workspace (group hashing and the three baselines) is
//! built from the same persistent primitives, so that performance and
//! consistency comparisons measure the *scheme*, not incidental plumbing:
//!
//! * [`TableHeader`] — a cacheline of global metadata (the paper's *Global
//!   info*: `count`, `group_size`, `table_size`, plus magic/seed), with the
//!   paper's atomic-increment-then-persist counter discipline;
//! * [`PmemBitmap`] — the per-cell occupancy bitmap. One bit per cell,
//!   packed 64 to a word; setting or clearing a bit is a naturally-aligned
//!   8-byte store — the paper's failure-atomic commit primitive;
//! * [`CellArray`] — a contiguous array of fixed-size key/value cells;
//! * [`HashScheme`] — the trait the workload driver and experiment harness
//!   program against;
//! * [`ConsistencyMode`] — whether a baseline wraps updates in the undo log
//!   (the paper's `-L` variants) or runs bare.

mod bitmap;
mod cells;
pub mod crashtest;
mod header;
mod scheme;

pub use bitmap::PmemBitmap;
pub use cells::CellArray;
pub use header::TableHeader;
pub use scheme::{ConsistencyMode, HashScheme, InsertError, OpKind};
