//! Contiguous arrays of fixed-size key/value cells.
//!
//! A cell is `K::SIZE + V::SIZE` bytes, padded to 8-byte alignment so
//! every cell (and thus the atomic commit of any word inside it) is
//! naturally aligned. The paper's traces use 16-byte cells (u64 key +
//! u64 value) and 32-byte cells (16-byte MD5 key + 16-byte value).

use nvm_hashfn::Pod;
use nvm_pmem::{align_up, Pmem, PmemRead, PmemWrite, Region};
use std::marker::PhantomData;

/// A persistent array of `n` cells of type `(K, V)`.
#[derive(Debug)]
pub struct CellArray<K: Pod, V: Pod> {
    region: Region,
    n: u64,
    _marker: PhantomData<(K, V)>,
}

// PhantomData<(K,V)> would otherwise require K, V: Clone for derive.
impl<K: Pod, V: Pod> Clone for CellArray<K, V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<K: Pod, V: Pod> Copy for CellArray<K, V> {}

impl<K: Pod, V: Pod> CellArray<K, V> {
    /// Bytes per cell: key + value, rounded up to 8.
    pub const CELL_SIZE: usize = {
        let raw = K::SIZE + V::SIZE;
        (raw + 7) & !7
    };

    /// Region size for `n` cells.
    pub fn region_size(n: u64) -> usize {
        align_up(n as usize * Self::CELL_SIZE, 8)
    }

    /// Attaches to a region holding `n` cells (no initialization — cells
    /// are interpreted through the occupancy bitmap).
    pub fn attach(region: Region, n: u64) -> Self {
        assert_eq!(region.off % 8, 0, "cell array must be 8-byte aligned");
        assert!(
            region.len >= Self::region_size(n),
            "cell region too small: {} < {}",
            region.len,
            Self::region_size(n)
        );
        CellArray {
            region,
            n,
            _marker: PhantomData,
        }
    }

    /// Number of cells.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// True when the array holds zero cells.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Pool offset of cell `idx`.
    #[inline]
    pub fn cell_off(&self, idx: u64) -> usize {
        debug_assert!(idx < self.n, "cell {idx} out of range {}", self.n);
        self.region.off + idx as usize * Self::CELL_SIZE
    }

    /// Reads the key of cell `idx`.
    #[inline]
    pub fn read_key<R: PmemRead>(&self, pm: &R, idx: u64) -> K {
        let mut buf = [0u8; 64];
        debug_assert!(K::SIZE <= 64);
        pm.read(self.cell_off(idx), &mut buf[..K::SIZE]);
        K::read_from(&buf[..K::SIZE])
    }

    /// Reads the value of cell `idx`.
    #[inline]
    pub fn read_value<R: PmemRead>(&self, pm: &R, idx: u64) -> V {
        let mut buf = [0u8; 64];
        debug_assert!(V::SIZE <= 64);
        pm.read(self.cell_off(idx) + K::SIZE, &mut buf[..V::SIZE]);
        V::read_from(&buf[..V::SIZE])
    }

    /// Writes key and value into cell `idx` (volatile until persisted).
    #[inline]
    pub fn write_entry<P: Pmem>(&self, pm: &mut P, idx: u64, key: &K, value: &V) {
        let mut buf = [0u8; 128];
        debug_assert!(K::SIZE + V::SIZE <= 128);
        key.write_to(&mut buf[..K::SIZE]);
        value.write_to(&mut buf[K::SIZE..K::SIZE + V::SIZE]);
        pm.write(self.cell_off(idx), &buf[..K::SIZE + V::SIZE]);
    }

    /// Zeroes cell `idx` (volatile until persisted). Used by deletion and
    /// by the paper's recovery step ("Reset(key,value)").
    #[inline]
    pub fn clear_entry<P: Pmem>(&self, pm: &mut P, idx: u64) {
        let zeros = [0u8; 128];
        pm.write(self.cell_off(idx), &zeros[..K::SIZE + V::SIZE]);
    }

    /// True if every byte of cell `idx` is zero.
    pub fn is_zeroed<R: PmemRead>(&self, pm: &R, idx: u64) -> bool {
        let mut buf = [0u8; 128];
        pm.read(self.cell_off(idx), &mut buf[..K::SIZE + V::SIZE]);
        buf[..K::SIZE + V::SIZE].iter().all(|&b| b == 0)
    }

    /// Persists cell `idx` (`clflush` + `mfence`).
    #[inline]
    pub fn persist_entry<P: Pmem>(&self, pm: &mut P, idx: u64) {
        pm.persist(self.cell_off(idx), K::SIZE + V::SIZE);
    }

    /// Shared-writer variant of [`CellArray::write_entry`]. The caller
    /// must hold cell `idx`'s claim — two concurrent writers to the same
    /// cell would interleave bytes.
    #[inline]
    pub fn write_entry_shared<W: PmemWrite>(&self, w: &W, idx: u64, key: &K, value: &V) {
        let mut buf = [0u8; 128];
        debug_assert!(K::SIZE + V::SIZE <= 128);
        key.write_to(&mut buf[..K::SIZE]);
        value.write_to(&mut buf[K::SIZE..K::SIZE + V::SIZE]);
        w.write(self.cell_off(idx), &buf[..K::SIZE + V::SIZE]);
    }

    /// Shared-writer variant of [`CellArray::clear_entry`] (claim
    /// required, as above).
    #[inline]
    pub fn clear_entry_shared<W: PmemWrite>(&self, w: &W, idx: u64) {
        let zeros = [0u8; 128];
        w.write(self.cell_off(idx), &zeros[..K::SIZE + V::SIZE]);
    }

    /// Shared-writer variant of [`CellArray::persist_entry`].
    #[inline]
    pub fn persist_entry_shared<W: PmemWrite>(&self, w: &W, idx: u64) {
        w.persist(self.cell_off(idx), K::SIZE + V::SIZE);
    }

    /// Byte length of one entry (un-padded).
    pub fn entry_len(&self) -> usize {
        K::SIZE + V::SIZE
    }

    /// The array's region.
    pub fn region(&self) -> Region {
        self.region
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_pmem::{SimConfig, SimPmem};

    type A16 = CellArray<u64, u64>; // 16-byte cells (RandomNum/Bag-of-Words)
    type A32 = CellArray<[u8; 16], [u8; 16]>; // 32-byte cells (Fingerprint)

    fn pool() -> SimPmem {
        SimPmem::new(1 << 16, SimConfig::fast_test())
    }

    #[test]
    fn cell_sizes_match_paper() {
        assert_eq!(A16::CELL_SIZE, 16);
        assert_eq!(A32::CELL_SIZE, 32);
        // An odd-sized payload pads to 8.
        assert_eq!(CellArray::<u32, u8>::CELL_SIZE, 8);
    }

    #[test]
    fn entry_roundtrip() {
        let mut pm = pool();
        let a = A16::attach(Region::new(0, A16::region_size(100)), 100);
        a.write_entry(&mut pm, 5, &0xAAAA, &0xBBBB);
        assert_eq!(a.read_key(&pm, 5), 0xAAAA);
        assert_eq!(a.read_value(&pm, 5), 0xBBBB);
    }

    #[test]
    fn wide_entry_roundtrip() {
        let mut pm = pool();
        let a = A32::attach(Region::new(64, A32::region_size(10)), 10);
        let k = [7u8; 16];
        let v = [9u8; 16];
        a.write_entry(&mut pm, 9, &k, &v);
        assert_eq!(a.read_key(&pm, 9), k);
        assert_eq!(a.read_value(&pm, 9), v);
    }

    #[test]
    fn cells_do_not_overlap() {
        let mut pm = pool();
        let a = A16::attach(Region::new(0, A16::region_size(10)), 10);
        for i in 0..10 {
            a.write_entry(&mut pm, i, &(i * 10), &(i * 100));
        }
        for i in 0..10 {
            assert_eq!(a.read_key(&pm, i), i * 10);
            assert_eq!(a.read_value(&pm, i), i * 100);
        }
    }

    #[test]
    fn clear_and_is_zeroed() {
        let mut pm = pool();
        let a = A16::attach(Region::new(0, A16::region_size(4)), 4);
        a.write_entry(&mut pm, 2, &1, &2);
        assert!(!a.is_zeroed(&pm, 2));
        a.clear_entry(&mut pm, 2);
        assert!(a.is_zeroed(&pm, 2));
        assert!(a.is_zeroed(&pm, 3)); // untouched pool is zeroed
    }

    #[test]
    fn offsets_are_contiguous() {
        let a = A16::attach(Region::new(128, A16::region_size(8)), 8);
        assert_eq!(a.cell_off(0), 128);
        assert_eq!(a.cell_off(1), 144);
        assert_eq!(a.cell_off(7), 128 + 7 * 16);
    }
}
