//! Shared constructors for the crate's tests.

use crate::config::GroupHashConfig;
use crate::table::GroupHash;
use nvm_pmem::{Region, SimConfig, SimPmem};

/// A `u64 -> u64` table with `n` cells per level and groups of `g`, on a
/// fresh fast-test pool.
pub(crate) fn make(n: u64, g: u64) -> (SimPmem, GroupHash<SimPmem, u64, u64>, Region) {
    make_cfg(GroupHashConfig::new(n, g))
}

/// Same, from an explicit configuration.
pub(crate) fn make_cfg(
    cfg: GroupHashConfig,
) -> (SimPmem, GroupHash<SimPmem, u64, u64>, Region) {
    let size = GroupHash::<SimPmem, u64, u64>::required_size(&cfg);
    let mut pm = SimPmem::new(size, SimConfig::fast_test());
    let region = Region::new(0, size);
    let t = GroupHash::create(&mut pm, region, cfg).unwrap();
    (pm, t, region)
}
