//! Crash-safe bulk loading.
//!
//! Inserting n entries one by one costs ~3 persisted cachelines each
//! (cell, bitmap word, count). An initial load can do far better without
//! giving up crash safety, by exploiting the same ordering discipline as
//! Algorithm 1 at region granularity:
//!
//! 1. **Place** every entry and write its cell — *cells only*, tracked
//!    against a DRAM occupancy overlay so no persistent bitmap word is
//!    touched yet;
//! 2. **persist all written cells**, then fence;
//! 3. **publish**: write the updated bitmap words and persist them;
//! 4. commit the new `count`.
//!
//! If power fails during 1–2, every occupancy bit is still durable-zero,
//! so recovery wipes the partial cells: the load never happened. If it
//! fails during 3–4, any bit that became durable points at a cell made
//! durable in step 2 — a consistent prefix of the load survives. This is
//! the per-entry insert proof, applied once to the whole batch.

use crate::table::GroupHash;
use nvm_hashfn::{HashKey, Pod};
use nvm_pmem::Pmem;
use nvm_table::InsertError;

/// Outcome of a bulk load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BulkLoadReport {
    /// Entries stored.
    pub loaded: usize,
    /// Entries rejected because their group was full.
    pub rejected: usize,
}

/// A DRAM mirror of the two occupancy bitmaps, used to make placement
/// decisions without touching persistent words.
struct Overlay {
    level1: Vec<u64>,
    level2: Vec<u64>,
    /// Word indices dirtied per level (for selective write-back).
    dirty1: Vec<bool>,
    dirty2: Vec<bool>,
}

impl Overlay {
    fn get(words: &[u64], idx: u64) -> bool {
        words[(idx / 64) as usize] >> (idx % 64) & 1 == 1
    }

    fn set(words: &mut [u64], dirty: &mut [bool], idx: u64) {
        words[(idx / 64) as usize] |= 1 << (idx % 64);
        dirty[(idx / 64) as usize] = true;
    }
}

impl<P: Pmem, K: HashKey, V: Pod> GroupHash<P, K, V> {
    /// Loads `entries` with amortized persistence (see the module docs).
    /// Entries whose matched group is full are skipped and counted in
    /// [`BulkLoadReport::rejected`]. Keys are assumed distinct from each
    /// other and from the table's contents (as in Algorithm 1).
    pub fn bulk_load(
        &mut self,
        pm: &mut P,
        entries: impl IntoIterator<Item = (K, V)>,
    ) -> BulkLoadReport {
        let (config, bitmap1, bitmap2, cells1, cells2) = self.parts();
        let n = config.cells_per_level;
        let gs = config.group_size;
        let plan = self.plan();
        let words = n.div_ceil(64) as usize;
        // Detached so placements can record tags while `self.slot_of`
        // borrows the table; restored right after the placement loop.
        let mut fp = self.take_fp();

        // Snapshot the current occupancy into DRAM.
        let mut ov = Overlay {
            level1: (0..words)
                .map(|w| bitmap1.word_containing(pm, (w * 64) as u64))
                .collect(),
            level2: (0..words)
                .map(|w| bitmap2.word_containing(pm, (w * 64) as u64))
                .collect(),
            dirty1: vec![false; words],
            dirty2: vec![false; words],
        };

        // Phase 1: place + write cells (volatile), tracking the span of
        // touched cells for a batched persist.
        let mut loaded = 0usize;
        let mut rejected = 0usize;
        for (key, value) in entries {
            let k = self.slot_of(&key);
            if !Overlay::get(&ov.level1, k) {
                cells1.write_entry(pm, k, &key, &value);
                Overlay::set(&mut ov.level1, &mut ov.dirty1, k);
                if let Some(fp) = &mut fp {
                    fp.set(0, k, self.fp_tag(&key));
                }
                loaded += 1;
                continue;
            }
            let g = k / gs;
            let mut placed = false;
            for idx in plan.group_cells(g) {
                if !Overlay::get(&ov.level2, idx) {
                    cells2.write_entry(pm, idx, &key, &value);
                    Overlay::set(&mut ov.level2, &mut ov.dirty2, idx);
                    if let Some(fp) = &mut fp {
                        fp.set(1, idx, self.fp_tag(&key));
                    }
                    loaded += 1;
                    placed = true;
                    break;
                }
            }
            if !placed {
                rejected += 1;
            }
        }
        self.put_fp(fp);

        // Phase 2: make every written cell durable. Persist the cell span
        // covered by each dirty bitmap word (64 cells per word).
        for (w, &d) in ov.dirty1.iter().enumerate() {
            if d {
                let first = (w * 64) as u64;
                let count = 64.min(n - first);
                pm.flush(cells1.cell_off(first), count as usize * cells1.entry_len());
            }
        }
        for (w, &d) in ov.dirty2.iter().enumerate() {
            if d {
                let first = (w * 64) as u64;
                let count = 64.min(n - first);
                pm.flush(cells2.cell_off(first), count as usize * cells2.entry_len());
            }
        }
        pm.fence();

        // Phase 3: publish occupancy — write back dirty bitmap words and
        // persist them.
        for (w, &d) in ov.dirty1.iter().enumerate() {
            if d {
                pm.atomic_write_u64(bitmap1.word_off_of((w * 64) as u64), ov.level1[w]);
                pm.flush(bitmap1.word_off_of((w * 64) as u64), 8);
            }
        }
        for (w, &d) in ov.dirty2.iter().enumerate() {
            if d {
                pm.atomic_write_u64(bitmap2.word_off_of((w * 64) as u64), ov.level2[w]);
                pm.flush(bitmap2.word_off_of((w * 64) as u64), 8);
            }
        }
        pm.fence();

        // Phase 4: commit the count.
        let new_count = self.len(pm) + loaded as u64;
        self.set_count_committed(pm, new_count);

        BulkLoadReport { loaded, rejected }
    }

    /// Like [`GroupHash::bulk_load`] but fails fast if anything is
    /// rejected (all-or-error convenience for known-fitting batches —
    /// note entries already placed stay placed; "error" reports, not
    /// rolls back).
    pub fn bulk_load_all(
        &mut self,
        pm: &mut P,
        entries: impl IntoIterator<Item = (K, V)>,
    ) -> Result<usize, InsertError> {
        let r = self.bulk_load(pm, entries);
        if r.rejected > 0 {
            Err(InsertError::TableFull)
        } else {
            Ok(r.loaded)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GroupHashConfig;
    use crate::testutil::{make, make_cfg};
    use nvm_pmem::{CrashResolution, Pmem, Region, SimConfig, SimPmem};
    use nvm_table::HashScheme;

    #[test]
    fn bulk_load_equals_incremental() {
        let (mut pm_a, mut a, _) = make(256, 16);
        let (mut pm_b, mut b, _) = make(256, 16);
        let entries: Vec<(u64, u64)> = (0..300u64).map(|k| (k, k * 3)).collect();

        let mut inc_loaded = 0;
        for &(k, v) in &entries {
            if a.insert(&mut pm_a, k, v).is_ok() {
                inc_loaded += 1;
            }
        }
        let r = b.bulk_load(&mut pm_b, entries.iter().copied());
        assert_eq!(r.loaded as u64 + r.rejected as u64, 300);
        assert_eq!(r.loaded, inc_loaded);
        assert_eq!(a.len(&pm_a), b.len(&pm_b));
        for &(k, v) in &entries {
            assert_eq!(a.get(&pm_a, &k), b.get(&pm_b, &k), "key {k}");
            if a.get(&pm_a, &k).is_some() {
                assert_eq!(b.get(&pm_b, &k), Some(v));
            }
        }
        b.check_consistency(&pm_b).unwrap();
    }

    #[test]
    fn bulk_load_is_much_cheaper() {
        let (mut pm_a, mut a, _) = make(1 << 12, 256);
        let (mut pm_b, mut b, _) = make(1 << 12, 256);
        let entries: Vec<(u64, u64)> = (0..3000u64).map(|k| (k, k)).collect();

        pm_a.reset_stats();
        for &(k, v) in &entries {
            a.insert(&mut pm_a, k, v).unwrap();
        }
        let inc_flushes = pm_a.stats().flushes;

        pm_b.reset_stats();
        b.bulk_load_all(&mut pm_b, entries.iter().copied()).unwrap();
        let bulk_flushes = pm_b.stats().flushes;

        assert!(
            bulk_flushes * 4 < inc_flushes,
            "bulk {bulk_flushes} vs incremental {inc_flushes} flushes"
        );
    }

    #[test]
    fn bulk_load_into_populated_table() {
        let (mut pm, mut t, _) = make(256, 16);
        for k in 0..50u64 {
            t.insert(&mut pm, k, k).unwrap();
        }
        let r = t.bulk_load(&mut pm, (100..200u64).map(|k| (k, k + 1)));
        assert_eq!(r.loaded + r.rejected, 100);
        assert_eq!(t.len(&pm), 50 + r.loaded as u64);
        for k in 0..50u64 {
            assert_eq!(t.get(&pm, &k), Some(k), "pre-existing key {k}");
        }
        t.check_consistency(&pm).unwrap();
    }

    #[test]
    fn crash_during_bulk_load_is_consistent() {
        use nvm_pmem::{run_with_crash, CrashPlan};
        type Table = GroupHash<SimPmem, u64, u64>;
        let cfg = GroupHashConfig::new(128, 16);
        let size = Table::required_size(&cfg);
        let region = Region::new(0, size);
        let entries: Vec<(u64, u64)> = (0..120u64).map(|k| (k, k + 7)).collect();

        for at in (0..400).step_by(7) {
            let mut pm = SimPmem::new(size, SimConfig::fast_test());
            let mut t = Table::create(&mut pm, region, cfg).unwrap();
            // Pre-commit a little base data.
            for k in 1000..1010u64 {
                t.insert(&mut pm, k, k).unwrap();
            }
            let base = pm.events();
            pm.set_crash_plan(Some(CrashPlan {
                at_event: base + at,
            }));
            let done = run_with_crash(|| {
                t.bulk_load(&mut pm, entries.iter().copied());
            })
            .is_ok();
            pm.crash(CrashResolution::Random(at));
            let mut t = Table::open(&mut pm, region).unwrap();
            t.recover(&mut pm);
            t.check_consistency(&pm)
                .unwrap_or_else(|e| panic!("crash at +{at}: {e}"));
            // Base data intact.
            for k in 1000..1010u64 {
                assert_eq!(t.get(&pm, &k), Some(k), "base key {k} at +{at}");
            }
            // Any surviving bulk entry must carry its correct value.
            for &(k, v) in &entries {
                if let Some(got) = t.get(&pm, &k) {
                    assert_eq!(got, v, "torn bulk entry {k} at +{at}");
                }
            }
            if done {
                break;
            }
        }
    }

    #[test]
    fn strided_layout_bulk_load() {
        use crate::config::ProbeLayout;
        let cfg = GroupHashConfig::new(256, 16).with_probe(ProbeLayout::Strided);
        let (mut pm, mut t, _) = make_cfg(cfg);
        let r = t.bulk_load(&mut pm, (0..200u64).map(|k| (k, k)));
        assert!(r.loaded >= 190, "{r:?}");
        for k in 0..200u64 {
            if t.get(&pm, &k).is_some() {
                assert_eq!(t.get(&pm, &k), Some(k));
            }
        }
        t.check_consistency(&pm).unwrap();
    }
}
