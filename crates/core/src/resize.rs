//! Automatic capacity growth.
//!
//! Algorithm 1 returns *table full* when a key's matched group has no
//! free cell; [`GroupHash::expand_into`] rehashes into a larger table.
//! `ResizingGroupHash` automates the loop for applications that do not
//! want to manage pools themselves: it owns the current `(pool, table)`
//! pair plus a pool factory, and on a full insert builds a table with
//! doubled `cells_per_level` in a fresh pool, migrates, and retries.
//!
//! Crash safety across a resize follows from `expand_into`'s argument:
//! the old pool is never modified during migration and the new table
//! becomes valid only when its header's magic commits; a crash mid-resize
//! leaves the old pool authoritative. (With volatile pools the point is
//! moot; with image-backed pools the application persists the *new* image
//! and only then retires the old one.)

use crate::config::GroupHashConfig;
use crate::table::GroupHash;
use nvm_hashfn::{HashKey, Pod};
use nvm_pmem::{Pmem, Region};
use nvm_table::{InsertError, TableError};

/// A group hash table that grows itself when an insert finds its group
/// full.
pub struct ResizingGroupHash<P: Pmem, K: HashKey, V: Pod> {
    pm: P,
    table: GroupHash<P, K, V>,
    make_pool: Box<dyn FnMut(usize) -> P + Send>,
    resizes: u32,
}

impl<P: Pmem, K: HashKey, V: Pod> ResizingGroupHash<P, K, V> {
    /// Creates the initial table with `config` in a pool from
    /// `make_pool(bytes)`.
    pub fn create(
        config: GroupHashConfig,
        mut make_pool: impl FnMut(usize) -> P + Send + 'static,
    ) -> Result<Self, TableError> {
        let size = GroupHash::<P, K, V>::required_size(&config);
        let mut pm = make_pool(size);
        if pm.len() < size {
            return Err(TableError::RegionTooSmall {
                have: pm.len(),
                need: size,
            });
        }
        let table = GroupHash::create(&mut pm, Region::new(0, size), config)?;
        Ok(ResizingGroupHash {
            pm,
            table,
            make_pool: Box::new(make_pool),
            resizes: 0,
        })
    }

    /// Doubles capacity: new pool, rehash, swap.
    fn grow(&mut self) -> Result<(), InsertError> {
        let new_cfg = self.table.doubled_config();
        let size = GroupHash::<P, K, V>::required_size(&new_cfg);
        let mut new_pm = (self.make_pool)(size);
        assert!(new_pm.len() >= size, "factory pool too small for resize");
        let mut new_table = GroupHash::create(&mut new_pm, Region::new(0, size), new_cfg)
            .expect("doubled config is valid");

        // Migrate via bulk load (amortized persists; crash-safe per
        // bulk_load's phase argument).
        let mut entries = Vec::with_capacity(self.table.len(&self.pm) as usize);
        self.table
            .for_each_entry(&self.pm, |k, v| entries.push((k, v)));
        let report = new_table.bulk_load(&mut new_pm, entries);
        if report.rejected > 0 {
            // Doubling not enough (pathological skew): caller retries and
            // we grow again on the next failure.
            debug_assert!(false, "doubling rejected {} entries", report.rejected);
        }
        self.pm = new_pm;
        self.table = new_table;
        self.resizes += 1;
        Ok(())
    }

    /// Inserts, growing as needed (at most a few attempts; each doubles).
    pub fn insert(&mut self, key: K, value: V) -> Result<(), InsertError> {
        for _ in 0..4 {
            match self.table.insert(&mut self.pm, key, value) {
                Ok(()) => return Ok(()),
                Err(InsertError::TableFull) => self.grow()?,
                Err(e) => return Err(e),
            }
        }
        Err(InsertError::TableFull)
    }

    /// Looks up `key`.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.table.get(&self.pm, key)
    }

    /// Removes `key`.
    pub fn remove(&mut self, key: &K) -> bool {
        self.table.remove(&mut self.pm, key)
    }

    /// Updates an existing key's value in place.
    pub fn update_in_place(&mut self, key: &K, value: V) -> bool {
        self.table.update_in_place(&mut self.pm, key, value)
    }

    /// Entries stored.
    pub fn len(&mut self) -> u64 {
        self.table.len(&self.pm)
    }

    /// True when empty.
    pub fn is_empty(&mut self) -> bool {
        self.len() == 0
    }

    /// Total cells of the current table.
    pub fn capacity(&self) -> u64 {
        self.table.capacity()
    }

    /// How many times the table has grown.
    pub fn resizes(&self) -> u32 {
        self.resizes
    }

    /// Access to the current pool and table (e.g. for consistency checks
    /// or saving the pool image).
    pub fn parts_mut(&mut self) -> (&mut P, &GroupHash<P, K, V>) {
        (&mut self.pm, &self.table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_pmem::{SimConfig, SimPmem};
    use nvm_table::HashScheme;

    fn make(initial_cells_per_level: u64) -> ResizingGroupHash<SimPmem, u64, u64> {
        let cfg = GroupHashConfig::new(initial_cells_per_level, 16.min(initial_cells_per_level));
        ResizingGroupHash::create(cfg, |size| SimPmem::new(size, SimConfig::fast_test()))
            .unwrap()
    }

    #[test]
    fn grows_transparently_past_initial_capacity() {
        let mut t = make(32); // initial capacity 64 cells
        for k in 0..1000u64 {
            t.insert(k, k * 3).unwrap();
        }
        assert_eq!(t.len(), 1000);
        assert!(t.resizes() >= 4, "resizes: {}", t.resizes());
        assert!(t.capacity() >= 1000);
        for k in 0..1000u64 {
            assert_eq!(t.get(&k), Some(k * 3), "key {k}");
        }
        let (pm, table) = t.parts_mut();
        table.check_consistency(pm).unwrap();
    }

    #[test]
    fn removals_and_updates_survive_growth() {
        let mut t = make(32);
        for k in 0..400u64 {
            t.insert(k, k).unwrap();
        }
        for k in (0..400u64).step_by(2) {
            assert!(t.remove(&k));
        }
        for k in (1..400u64).step_by(2) {
            assert!(t.update_in_place(&k, k + 9000));
        }
        for k in 400..800u64 {
            t.insert(k, k).unwrap(); // more growth after deletions
        }
        assert_eq!(t.len(), 200 + 400);
        for k in (1..400u64).step_by(2) {
            assert_eq!(t.get(&k), Some(k + 9000));
        }
        for k in (0..400u64).step_by(2) {
            assert_eq!(t.get(&k), None);
        }
        let (pm, table) = t.parts_mut();
        table.check_consistency(pm).unwrap();
    }

    #[test]
    fn no_growth_when_capacity_suffices() {
        let mut t = make(1 << 10);
        for k in 0..500u64 {
            t.insert(k, k).unwrap();
        }
        assert_eq!(t.resizes(), 0);
    }

    #[test]
    fn fingerprint_cache_survives_growth() {
        use crate::config::FpMode;
        // Growth migrates via bulk_load, which must keep the volatile tag
        // cache in step with every placement it makes in the new table.
        let cfg = GroupHashConfig::new(32, 16).with_fp_mode(FpMode::On);
        let mut t = ResizingGroupHash::<SimPmem, u64, u64>::create(cfg, |size| {
            SimPmem::new(size, SimConfig::fast_test())
        })
        .unwrap();
        for k in 0..600u64 {
            t.insert(k, k + 1).unwrap();
        }
        assert!(t.resizes() > 0);
        for k in (0..600u64).step_by(3) {
            assert!(t.remove(&k));
        }
        let (pm, table) = t.parts_mut();
        assert_eq!(table.config().fp, FpMode::On);
        table.verify_fp_cache(pm).unwrap();
        table.check_consistency(pm).unwrap();
        for k in 0..600u64 {
            assert_eq!(t.get(&k), (k % 3 != 0).then_some(k + 1), "key {k}");
        }
    }

    #[test]
    fn preserves_config_knobs_across_growth() {
        use crate::config::ChoiceMode;
        let cfg = GroupHashConfig::new(32, 16).with_choice(ChoiceMode::TwoChoice);
        let mut t = ResizingGroupHash::<SimPmem, u64, u64>::create(cfg, |size| {
            SimPmem::new(size, SimConfig::fast_test())
        })
        .unwrap();
        for k in 0..500u64 {
            t.insert(k, k).unwrap();
        }
        assert!(t.resizes() > 0);
        let (pm, table) = t.parts_mut();
        assert_eq!(table.config().choice, ChoiceMode::TwoChoice);
        table.check_consistency(pm).unwrap();
    }
}
