//! Automatic capacity growth, online.
//!
//! Algorithm 1 returns *table full* when a key's matched group has no
//! free cell. `ResizingGroupHash` automates growth for applications that
//! do not want to manage pools themselves — and it does so **without the
//! stop-the-world rehash**: on a full insert it builds a table with
//! doubled `cells_per_level` in a fresh pool and starts *draining* the
//! old table into it through the bounded [`migrate_step`] choreography,
//! a handful of entries per subsequent operation. Normal inserts, gets,
//! removes and updates interleave with the drain; lookups probe the new
//! (active) table first and fall back to the still-draining source.
//!
//! Crash safety: the drain is the persisted-cursor protocol of
//! [`nvm_table::migrate_step`] — each moved entry is republished in the
//! destination *before* it is retracted from the source, the cursor
//! advances only after both commits, and the source's migration-active
//! flag brackets the whole drain. A crash at any instant loses nothing
//! and duplicates at most one entry, which [`nvm_table::migrate_recover`]
//! removes. (With volatile pools the point is moot; with image-backed
//! pools the application persists both images across the drain window
//! and may retire the old one once the flag clears.)

use crate::config::GroupHashConfig;
use crate::table::GroupHash;
use nvm_hashfn::{HashKey, Pod};
use nvm_pmem::{Pmem, Region};
use nvm_table::{migrate_step, InsertError, MigrationSource, TableError};

/// Entries drained from the old table per mutating operation while a
/// growth is in flight. Amortizes the rehash over the operations that
/// follow it instead of stalling the triggering insert for O(capacity).
const MIGRATE_PER_OP: u64 = 8;

/// A group hash table that grows itself when an insert finds its group
/// full, draining the old table incrementally instead of rehashing it in
/// one stop-the-world pass.
pub struct ResizingGroupHash<P: Pmem, K: HashKey, V: Pod> {
    /// The live table every insert targets.
    active: (P, GroupHash<P, K, V>),
    /// The previous table while its entries drain into `active`.
    draining: Option<(P, GroupHash<P, K, V>)>,
    make_pool: Box<dyn FnMut(usize) -> P + Send>,
    resizes: u32,
}

impl<P: Pmem, K: HashKey, V: Pod> ResizingGroupHash<P, K, V> {
    /// Creates the initial table with `config` in a pool from
    /// `make_pool(bytes)`.
    pub fn create(
        config: GroupHashConfig,
        mut make_pool: impl FnMut(usize) -> P + Send + 'static,
    ) -> Result<Self, TableError> {
        let size = GroupHash::<P, K, V>::required_size(&config);
        let mut pm = make_pool(size);
        if pm.len() < size {
            return Err(TableError::RegionTooSmall {
                have: pm.len(),
                need: size,
            });
        }
        let table = GroupHash::create(&mut pm, Region::new(0, size), config)?;
        Ok(ResizingGroupHash {
            active: (pm, table),
            draining: None,
            make_pool: Box::new(make_pool),
            resizes: 0,
        })
    }

    /// Starts a doubling: new pool + empty doubled table become active,
    /// the old pair is queued for incremental draining. O(1) — no entry
    /// moves here.
    fn grow(&mut self) {
        // A second overflow while a drain is still pending (pathological
        // skew or tiny tables): finish the current drain first so at most
        // one source is ever in flight.
        self.drain_all();
        let new_cfg = self.active.1.doubled_config();
        let size = GroupHash::<P, K, V>::required_size(&new_cfg);
        let mut pm = (self.make_pool)(size);
        assert!(pm.len() >= size, "factory pool too small for resize");
        let table = GroupHash::create(&mut pm, Region::new(0, size), new_cfg)
            .expect("doubled config is valid");
        let old = std::mem::replace(&mut self.active, (pm, table));
        self.draining = Some(old);
        // Announce the drain window up front: a crash between here and
        // the first migrate_step must already read as "migration was in
        // flight" to recovery.
        let d = self.draining.as_mut().expect("just set");
        d.1.set_migration_active(&mut d.0, true);
        self.resizes += 1;
    }

    /// One bounded drain step ([`migrate_step`] with `max_moves`); no-op
    /// when no growth is pending. Returns `true` while a drain remains.
    pub fn migration_pending(&mut self) -> bool {
        self.draining.is_some()
    }

    fn step(&mut self, max_moves: u64) {
        let Some((src_pm, src)) = self.draining.as_mut() else {
            return;
        };
        let (dst_pm, dst) = &mut self.active;
        if migrate_step(src_pm, dst_pm, src, dst, max_moves) {
            self.draining = None;
        }
    }

    /// Drains any pending migration to completion.
    pub fn drain_all(&mut self) {
        while self.draining.is_some() {
            self.step(u64::MAX);
        }
    }

    /// Inserts, growing as needed (at most a few attempts; each doubles).
    /// While a previous growth is draining, each insert also moves a
    /// bounded handful of old entries.
    pub fn insert(&mut self, key: K, value: V) -> Result<(), InsertError> {
        for _ in 0..4 {
            self.step(MIGRATE_PER_OP);
            match self.active.1.insert(&mut self.active.0, key, value) {
                Ok(()) => return Ok(()),
                Err(InsertError::TableFull) => self.grow(),
                Err(e) => return Err(e),
            }
        }
        Err(InsertError::TableFull)
    }

    /// Looks up `key`: active table first, then the draining source (an
    /// entry mid-migration may transiently exist in both; either copy is
    /// the committed value).
    pub fn get(&mut self, key: &K) -> Option<V> {
        let hit = self.active.1.get(&self.active.0, key);
        if hit.is_some() {
            return hit;
        }
        self.draining
            .as_ref()
            .and_then(|(pm, t)| t.get(pm, key))
    }

    /// Removes `key` from whichever table holds it.
    pub fn remove(&mut self, key: &K) -> bool {
        self.step(MIGRATE_PER_OP);
        if self.active.1.remove(&mut self.active.0, key) {
            return true;
        }
        match self.draining.as_mut() {
            Some((pm, t)) => t.remove(pm, key),
            None => false,
        }
    }

    /// Updates an existing key's value in place, wherever it lives.
    pub fn update_in_place(&mut self, key: &K, value: V) -> bool {
        self.step(MIGRATE_PER_OP);
        if self.active.1.update_in_place(&mut self.active.0, key, value) {
            return true;
        }
        match self.draining.as_mut() {
            Some((pm, t)) => t.update_in_place(pm, key, value),
            None => false,
        }
    }

    /// Entries stored (across the active table and any draining source;
    /// between operations a migrating entry is never counted twice).
    pub fn len(&mut self) -> u64 {
        self.active.1.len(&self.active.0)
            + self
                .draining
                .as_ref()
                .map_or(0, |(pm, t)| t.len(pm))
    }

    /// True when empty.
    pub fn is_empty(&mut self) -> bool {
        self.len() == 0
    }

    /// Total cells of the active table.
    pub fn capacity(&self) -> u64 {
        self.active.1.capacity()
    }

    /// How many times the table has grown.
    pub fn resizes(&self) -> u32 {
        self.resizes
    }

    /// Access to the current pool and table (e.g. for consistency checks
    /// or saving the pool image). Finishes any pending drain first so the
    /// pair is the whole table.
    pub fn parts_mut(&mut self) -> (&mut P, &GroupHash<P, K, V>) {
        self.drain_all();
        (&mut self.active.0, &self.active.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_pmem::{SimConfig, SimPmem};
    use nvm_table::HashScheme;

    fn make(initial_cells_per_level: u64) -> ResizingGroupHash<SimPmem, u64, u64> {
        let cfg = GroupHashConfig::new(initial_cells_per_level, 16.min(initial_cells_per_level));
        ResizingGroupHash::create(cfg, |size| SimPmem::new(size, SimConfig::fast_test()))
            .unwrap()
    }

    #[test]
    fn grows_transparently_past_initial_capacity() {
        let mut t = make(32); // initial capacity 64 cells
        for k in 0..1000u64 {
            t.insert(k, k * 3).unwrap();
        }
        assert_eq!(t.len(), 1000);
        assert!(t.resizes() >= 4, "resizes: {}", t.resizes());
        assert!(t.capacity() >= 1000);
        for k in 0..1000u64 {
            assert_eq!(t.get(&k), Some(k * 3), "key {k}");
        }
        let (pm, table) = t.parts_mut();
        table.check_consistency(pm).unwrap();
    }

    #[test]
    fn lookups_hit_both_tables_mid_drain() {
        let mut t = make(32);
        let mut k = 0u64;
        // Fill until a growth actually starts, then stop mutating: the
        // drain is now frozen mid-flight and gets must consult both sides.
        while t.resizes() == 0 {
            t.insert(k, k + 1).unwrap();
            k += 1;
        }
        assert!(t.migration_pending(), "growth leaves a draining source");
        for i in 0..k {
            assert_eq!(t.get(&i), Some(i + 1), "key {i} lost mid-drain");
        }
        // Mutations drain incrementally; eventually the source empties.
        let mut extra = k;
        while t.migration_pending() {
            t.insert(extra, extra + 1).unwrap();
            extra += 1;
        }
        for i in 0..extra {
            assert_eq!(t.get(&i), Some(i + 1));
        }
        let (pm, table) = t.parts_mut();
        table.check_consistency(pm).unwrap();
    }

    #[test]
    fn removals_and_updates_survive_growth() {
        let mut t = make(32);
        for k in 0..400u64 {
            t.insert(k, k).unwrap();
        }
        for k in (0..400u64).step_by(2) {
            assert!(t.remove(&k));
        }
        for k in (1..400u64).step_by(2) {
            assert!(t.update_in_place(&k, k + 9000));
        }
        for k in 400..800u64 {
            t.insert(k, k).unwrap(); // more growth after deletions
        }
        assert_eq!(t.len(), 200 + 400);
        for k in (1..400u64).step_by(2) {
            assert_eq!(t.get(&k), Some(k + 9000));
        }
        for k in (0..400u64).step_by(2) {
            assert_eq!(t.get(&k), None);
        }
        let (pm, table) = t.parts_mut();
        table.check_consistency(pm).unwrap();
    }

    #[test]
    fn no_growth_when_capacity_suffices() {
        let mut t = make(1 << 10);
        for k in 0..500u64 {
            t.insert(k, k).unwrap();
        }
        assert_eq!(t.resizes(), 0);
        assert!(!t.migration_pending());
    }

    #[test]
    fn fingerprint_cache_survives_growth() {
        use crate::config::FpMode;
        // Growth drains entry-by-entry through normal inserts, which must
        // keep the destination's volatile tag cache in step throughout.
        let cfg = GroupHashConfig::new(32, 16).with_fp_mode(FpMode::On);
        let mut t = ResizingGroupHash::<SimPmem, u64, u64>::create(cfg, |size| {
            SimPmem::new(size, SimConfig::fast_test())
        })
        .unwrap();
        for k in 0..600u64 {
            t.insert(k, k + 1).unwrap();
        }
        assert!(t.resizes() > 0);
        for k in (0..600u64).step_by(3) {
            assert!(t.remove(&k));
        }
        let (pm, table) = t.parts_mut();
        assert_eq!(table.config().fp, FpMode::On);
        table.verify_fp_cache(pm).unwrap();
        table.check_consistency(pm).unwrap();
        for k in 0..600u64 {
            assert_eq!(t.get(&k), (k % 3 != 0).then_some(k + 1), "key {k}");
        }
    }

    #[test]
    fn preserves_config_knobs_across_growth() {
        use crate::config::ChoiceMode;
        let cfg = GroupHashConfig::new(32, 16).with_choice(ChoiceMode::TwoChoice);
        let mut t = ResizingGroupHash::<SimPmem, u64, u64>::create(cfg, |size| {
            SimPmem::new(size, SimConfig::fast_test())
        })
        .unwrap();
        for k in 0..500u64 {
            t.insert(k, k).unwrap();
        }
        assert!(t.resizes() > 0);
        let (pm, table) = t.parts_mut();
        assert_eq!(table.config().choice, ChoiceMode::TwoChoice);
        table.check_consistency(pm).unwrap();
    }
}
