//! # Group hashing
//!
//! A write-efficient, crash-consistent hash table for non-volatile memory,
//! reproducing *"A Write-efficient and Consistent Hashing Scheme for
//! Non-Volatile Memory"* (Zhang, Feng, Hua, Chen, Fu — ICPP 2018).
//!
//! ## Design (paper §3)
//!
//! Storage cells are split into two equal **levels**:
//!
//! * **Level 1** is hash-addressable: key `x` maps to cell `h(x) mod N`.
//! * **Level 2** is not addressable; it only resolves collisions.
//!
//! Both levels are divided into **groups** of `group_size` contiguous
//! cells, and group *i* of level 1 shares group *i* of level 2. An insert
//! whose level-1 cell is taken scans the *matched* level-2 group — a
//! contiguous memory range, so the scan walks consecutive cachelines and a
//! single miss prefetches the following cells.
//!
//! Consistency needs **no logging**: a per-cell occupancy bit, packed into
//! 8-byte bitmap words, is the commit point. Inserts persist the cell
//! *then* atomically set the bit; deletes atomically clear the bit *then*
//! erase the cell (Algorithms 1 and 3 — note the inverted order, §3.4).
//! A crash at any instant leaves the table recoverable by Algorithm 4:
//! erase cells whose bit is clear, recount `count`.
//!
//! ## Quick start
//!
//! ```
//! use group_hash::{GroupHash, GroupHashConfig};
//! use nvm_pmem::{Pmem, PmemRead, Region, SimPmem, SimConfig};
//!
//! let cfg = GroupHashConfig::new(1 << 10, 64); // 1024 cells/level, groups of 64
//! let mut pm = SimPmem::new(
//!     GroupHash::<SimPmem, u64, u64>::required_size(&cfg),
//!     SimConfig::fast_test(),
//! );
//! let region = Region::new(0, pm.len());
//! let mut table = GroupHash::<_, u64, u64>::create(&mut pm, region, cfg).unwrap();
//!
//! table.insert(&mut pm, 42, 4200).unwrap();
//! assert_eq!(table.get(&pm, &42), Some(4200));
//! assert!(table.remove(&mut pm, &42));
//! assert_eq!(table.get(&pm, &42), None);
//! ```
//!
//! ## Crash recovery
//!
//! ```
//! use group_hash::{GroupHash, GroupHashConfig};
//! use nvm_pmem::{CrashResolution, Pmem, Region, SimPmem, SimConfig};
//!
//! let cfg = GroupHashConfig::new(256, 16);
//! let size = GroupHash::<SimPmem, u64, u64>::required_size(&cfg);
//! let mut pm = SimPmem::new(size, SimConfig::fast_test());
//! let region = Region::new(0, size);
//! let mut t = GroupHash::<_, u64, u64>::create(&mut pm, region, cfg).unwrap();
//! t.insert(&mut pm, 1, 100).unwrap();
//!
//! pm.crash(CrashResolution::DropUnflushed);          // power failure
//! let mut t = GroupHash::<_, u64, u64>::open(&mut pm, region).unwrap();
//! t.recover(&mut pm);                                 // Algorithm 4
//! assert_eq!(t.get(&pm, &1), Some(100));          // committed data survives
//! ```

#![warn(missing_docs)]

mod analysis;
mod bulk;
mod concurrent;
mod config;
mod expand;
mod fpcache;
mod resize;
mod table;

#[cfg(test)]
pub(crate) mod testutil;

pub use analysis::{GroupFill, TableAnalysis};
pub use bulk::BulkLoadReport;
pub use concurrent::ShardedGroupHash;
pub use resize::ResizingGroupHash;
pub use config::{ChoiceMode, CommitStrategy, CountMode, FpMode, GroupHashConfig, ProbeLayout};
pub use table::{GroupHash, GroupReadView, SharedCommit, TableClaims};

// Re-exported so downstream users need only this crate for the common case.
pub use nvm_table::{
    migrate_recover, migrate_recover_split, migrate_step, migrate_step_same_pool, HashScheme,
    InsertError, MigrationSource,
};
