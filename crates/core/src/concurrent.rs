//! A sharded concurrent wrapper (extension beyond the paper).
//!
//! The paper's table is single-writer. For multi-threaded use the natural
//! NVM-friendly construction is sharding: route each key by an independent
//! hash to one of `S` shards, each a private `(pool, GroupHash)` pair
//! behind a mutex. Shards never share cachelines or persistence state, so
//! every per-shard consistency argument carries over verbatim, and threads
//! only contend when they touch the same shard.

use crate::config::GroupHashConfig;
use crate::table::GroupHash;
use nvm_hashfn::{HashKey, Pod, SplitMix64};
use nvm_metrics::SchemeInstrumentation;
use nvm_pmem::{Pmem, Region};
use nvm_table::{BatchError, HashScheme, InsertError, TableError};
use parking_lot::Mutex;

struct Shard<P: Pmem, K: HashKey, V: Pod> {
    pm: P,
    table: GroupHash<P, K, V>,
}

/// A thread-safe group hash table built from independent shards.
pub struct ShardedGroupHash<P: Pmem, K: HashKey, V: Pod> {
    shards: Vec<Mutex<Shard<P, K, V>>>,
    /// Seed for the shard-routing hash (independent of table seeds).
    route_seed: u64,
}

impl<P: Pmem, K: HashKey, V: Pod> ShardedGroupHash<P, K, V> {
    /// Builds `n_shards` shards. `make_pool(i)` must return a pool of at
    /// least [`GroupHash::required_size`] bytes for `per_shard_config`.
    /// Each shard's table gets a distinct hash seed derived from the
    /// config's seed.
    pub fn create(
        n_shards: usize,
        per_shard_config: GroupHashConfig,
        mut make_pool: impl FnMut(usize) -> P,
    ) -> Result<Self, TableError> {
        assert!(n_shards > 0, "need at least one shard");
        let mut seeds = SplitMix64::new(per_shard_config.seed);
        let route_seed = seeds.next();
        let mut shards = Vec::with_capacity(n_shards);
        for i in 0..n_shards {
            let mut pm = make_pool(i);
            let cfg = per_shard_config.with_seed(seeds.next());
            let region = Region::new(0, GroupHash::<P, K, V>::required_size(&cfg));
            if pm.len() < region.len {
                return Err(TableError::RegionTooSmall {
                    have: pm.len(),
                    need: region.len,
                });
            }
            let table = GroupHash::create(&mut pm, region, cfg)?;
            shards.push(Mutex::new(Shard { pm, table }));
        }
        Ok(ShardedGroupHash { shards, route_seed })
    }

    #[inline]
    fn shard_of(&self, key: &K) -> usize {
        (key.hash64(self.route_seed) % self.shards.len() as u64) as usize
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Inserts `(key, value)` into the owning shard.
    pub fn insert(&self, key: K, value: V) -> Result<(), InsertError> {
        let mut s = self.shards[self.shard_of(&key)].lock();
        let Shard { pm, table } = &mut *s;
        table.insert(pm, key, value)
    }

    /// Looks up `key`.
    pub fn get(&self, key: &K) -> Option<V> {
        let mut s = self.shards[self.shard_of(key)].lock();
        let Shard { pm, table } = &mut *s;
        table.get(pm, key)
    }

    /// Removes `key`, returning whether it was present.
    pub fn remove(&self, key: &K) -> bool {
        let mut s = self.shards[self.shard_of(key)].lock();
        let Shard { pm, table } = &mut *s;
        table.remove(pm, key)
    }

    /// Inserts every `(key, value)`, splitting the batch by owning shard
    /// and group-committing each shard's sub-batch under its lock, so the
    /// fence amortization happens per shard. Sub-batches run in shard
    /// order — on failure [`BatchError::committed`] counts ops durably
    /// applied across all shards, and the durable set is a union of
    /// per-shard prefixes of `items`, not a single global prefix.
    pub fn insert_batch(&self, items: &[(K, V)]) -> Result<(), BatchError> {
        let mut by_shard: Vec<Vec<(K, V)>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for item in items {
            by_shard[self.shard_of(&item.0)].push(*item);
        }
        let mut committed = 0usize;
        for (i, sub) in by_shard.into_iter().enumerate() {
            if sub.is_empty() {
                continue;
            }
            let mut s = self.shards[i].lock();
            let Shard { pm, table } = &mut *s;
            match table.insert_batch(pm, &sub) {
                Ok(()) => committed += sub.len(),
                Err(e) => {
                    return Err(BatchError {
                        committed: committed + e.committed,
                        error: e.error,
                    })
                }
            }
        }
        Ok(())
    }

    /// Removes every key, split by owning shard like
    /// [`ShardedGroupHash::insert_batch`]; returns how many were present.
    pub fn remove_batch(&self, keys: &[K]) -> usize {
        let mut by_shard: Vec<Vec<K>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for key in keys {
            by_shard[self.shard_of(key)].push(*key);
        }
        let mut removed = 0usize;
        for (i, sub) in by_shard.into_iter().enumerate() {
            if sub.is_empty() {
                continue;
            }
            let mut s = self.shards[i].lock();
            let Shard { pm, table } = &mut *s;
            removed += table.remove_batch(pm, &sub);
        }
        removed
    }

    /// Inserts `(key, value)` only if `key` is absent (atomic per shard:
    /// the probe and the insert happen under the owning shard's lock).
    pub fn insert_unique(&self, key: K, value: V) -> Result<(), InsertError> {
        let mut s = self.shards[self.shard_of(&key)].lock();
        let Shard { pm, table } = &mut *s;
        table.insert_unique(pm, key, value)
    }

    /// Updates the value of an existing `key` in place, returning whether
    /// the key was found. Same failure-atomicity caveats as
    /// [`GroupHash::update_in_place`]; atomic per shard.
    pub fn update_in_place(&self, key: &K, value: V) -> bool {
        let mut s = self.shards[self.shard_of(key)].lock();
        let Shard { pm, table } = &mut *s;
        table.update_in_place(pm, key, value)
    }

    /// Total entries across shards. Consistent only when quiescent.
    pub fn len(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                let mut s = s.lock();
                let Shard { pm, table } = &mut *s;
                table.len(pm)
            })
            .sum()
    }

    /// True when every shard is empty. Consistent only when quiescent.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs recovery on every shard.
    pub fn recover_all(&self) {
        for s in &self.shards {
            let mut s = s.lock();
            let Shard { pm, table } = &mut *s;
            table.recover(pm);
        }
    }

    /// Probe/occupancy/displacement histograms aggregated across all
    /// shards — an owned snapshot merged under each shard's lock, so it
    /// is internally consistent per shard but only globally consistent
    /// when quiescent. `None` unless the crate was built with the
    /// `instrument` feature.
    pub fn instrumentation(&self) -> Option<SchemeInstrumentation> {
        let mut agg: Option<SchemeInstrumentation> = None;
        for s in &self.shards {
            let guard = s.lock();
            if let Some(i) = HashScheme::instrumentation(&guard.table) {
                let a = agg.get_or_insert_with(|| {
                    SchemeInstrumentation::new(guard.table.config().group_size as usize)
                });
                a.merge(i);
            }
        }
        agg
    }

    /// Checks consistency of every shard; the first violation comes back
    /// as [`TableError::Corrupt`], prefixed with the shard number.
    pub fn check_consistency(&self) -> Result<(), TableError> {
        for (i, s) in self.shards.iter().enumerate() {
            let mut s = s.lock();
            let Shard { pm, table } = &mut *s;
            crate::analysis::check_consistency(table, pm)
                .map_err(|e| TableError::Corrupt(format!("shard {i}: {e}")))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_pmem::{SimConfig, SimPmem};
    use std::sync::Arc;

    fn build(n_shards: usize) -> ShardedGroupHash<SimPmem, u64, u64> {
        let cfg = GroupHashConfig::new(1 << 10, 64);
        let size = GroupHash::<SimPmem, u64, u64>::required_size(&cfg);
        ShardedGroupHash::create(n_shards, cfg, |_| {
            SimPmem::new(size, SimConfig::fast_test())
        })
        .unwrap()
    }

    #[test]
    fn single_thread_roundtrip() {
        let t = build(4);
        for k in 0..500u64 {
            t.insert(k, k * 2).unwrap();
        }
        assert_eq!(t.len(), 500);
        for k in 0..500u64 {
            assert_eq!(t.get(&k), Some(k * 2));
        }
        for k in 0..250u64 {
            assert!(t.remove(&k));
        }
        assert_eq!(t.len(), 250);
        t.check_consistency().unwrap();
    }

    #[test]
    fn keys_spread_across_shards() {
        let t = build(8);
        for k in 0..2000u64 {
            t.insert(k, k).unwrap();
        }
        // Every shard should own a non-trivial share.
        let per_shard: Vec<u64> = t
            .shards
            .iter()
            .map(|s| {
                let mut s = s.lock();
                let Shard { pm, table } = &mut *s;
                table.len(pm)
            })
            .collect();
        assert!(per_shard.iter().all(|&n| n > 100), "{per_shard:?}");
    }

    #[test]
    fn concurrent_inserts_and_reads() {
        let t = Arc::new(build(8));
        let threads: Vec<_> = (0..4u64)
            .map(|tid| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let k = tid * 10_000 + i;
                        t.insert(k, k + 1).unwrap();
                        assert_eq!(t.get(&k), Some(k + 1));
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(t.len(), 2000);
        t.check_consistency().unwrap();
    }

    #[test]
    fn concurrent_mixed_workload() {
        let t = Arc::new(build(4));
        for k in 0..1000u64 {
            t.insert(k, k).unwrap();
        }
        let threads: Vec<_> = (0..4u64)
            .map(|tid| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    let lo = tid * 250;
                    for k in lo..lo + 250 {
                        assert_eq!(t.get(&k), Some(k));
                        assert!(t.remove(&k));
                        assert_eq!(t.get(&k), None);
                        t.insert(k, k + 7).unwrap();
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(t.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(t.get(&k), Some(k + 7));
        }
        t.check_consistency().unwrap();
    }

    #[test]
    fn update_in_place_and_insert_unique_roundtrip() {
        let t = build(4);
        t.insert_unique(5, 50).unwrap();
        assert_eq!(
            t.insert_unique(5, 51),
            Err(nvm_table::InsertError::DuplicateKey)
        );
        assert_eq!(t.get(&5), Some(50));
        assert!(t.update_in_place(&5, 500));
        assert_eq!(t.get(&5), Some(500));
        assert!(!t.update_in_place(&6, 1));
        assert_eq!(t.len(), 1);
        t.check_consistency().unwrap();
    }

    #[test]
    fn concurrent_updates_in_place() {
        // Each thread owns a disjoint key range: inserts via insert_unique,
        // then repeatedly updates in place while other threads hammer
        // their own ranges; values must never tear or leak across keys.
        let t = Arc::new(build(8));
        let threads: Vec<_> = (0..4u64)
            .map(|tid| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    let lo = tid * 1000;
                    for k in lo..lo + 200 {
                        t.insert_unique(k, k).unwrap();
                        assert_eq!(t.insert_unique(k, 0), Err(InsertError::DuplicateKey));
                    }
                    for round in 1..=5u64 {
                        for k in lo..lo + 200 {
                            assert!(t.update_in_place(&k, k + round));
                            assert_eq!(t.get(&k), Some(k + round));
                        }
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(t.len(), 800);
        for tid in 0..4u64 {
            for k in tid * 1000..tid * 1000 + 200 {
                assert_eq!(t.get(&k), Some(k + 5));
            }
        }
        t.check_consistency().unwrap();
    }

    #[test]
    fn sharded_fingerprint_mode_roundtrip() {
        use crate::config::FpMode;
        let cfg = GroupHashConfig::new(1 << 10, 64).with_fp_mode(FpMode::On);
        let size = GroupHash::<SimPmem, u64, u64>::required_size(&cfg);
        let t: ShardedGroupHash<SimPmem, u64, u64> =
            ShardedGroupHash::create(4, cfg, |_| SimPmem::new(size, SimConfig::fast_test()))
                .unwrap();
        for k in 0..800u64 {
            t.insert(k, k * 2).unwrap();
        }
        for k in 0..400u64 {
            assert!(t.remove(&k));
        }
        for k in 400..800u64 {
            assert_eq!(t.get(&k), Some(k * 2));
            assert!(t.update_in_place(&k, k));
        }
        t.recover_all();
        for k in 400..800u64 {
            assert_eq!(t.get(&k), Some(k));
        }
        // check_consistency verifies the per-shard fingerprint caches.
        t.check_consistency().unwrap();
    }

    #[test]
    fn batched_ops_split_by_shard() {
        let t = build(4);
        let items: Vec<(u64, u64)> = (0..600u64).map(|k| (k, k * 3)).collect();
        t.insert_batch(&items).unwrap();
        assert_eq!(t.len(), 600);
        for k in 0..600u64 {
            assert_eq!(t.get(&k), Some(k * 3));
        }
        let keys: Vec<u64> = (0..300u64).collect();
        assert_eq!(t.remove_batch(&keys), 300);
        assert_eq!(t.len(), 300);
        assert_eq!(t.remove_batch(&keys), 0, "already removed");
        t.check_consistency().unwrap();
    }

    #[test]
    fn recover_all_shards() {
        let t = build(3);
        for k in 0..300u64 {
            t.insert(k, k).unwrap();
        }
        t.recover_all();
        assert_eq!(t.len(), 300);
        t.check_consistency().unwrap();
    }
}
