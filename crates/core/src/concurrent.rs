//! A sharded concurrent wrapper (extension beyond the paper).
//!
//! The paper's table is single-writer. For multi-threaded use the natural
//! NVM-friendly construction is sharding: route each key by an independent
//! hash to one of `S` shards, each a private `(pool, GroupHash)` pair.
//! Shards never share cachelines or persistence state, so every per-shard
//! consistency argument carries over verbatim, and threads only contend
//! when they touch the same shard.
//!
//! # Lock-free reads: the per-shard seqlock
//!
//! Writers serialize through a per-shard mutex, but readers take **no
//! lock**. Each shard carries a sequence counter that its writers bump to
//! an odd value before mutating and back to even after; a reader
//! snapshots the counter, runs the lookup through a read-only
//! [`GroupReadView`] + [`Pmem::read_handle`], and accepts the result only
//! if the counter is still even and unchanged. Otherwise it retries
//! (counted in [`ConcurrencyCounters`]).
//!
//! Why an optimistic read can never return garbage *between* retries: the
//! paper's commit protocol makes every mutation's visibility point a
//! single 8-byte atomic bitmap write. An insert writes the cell bytes
//! first and flips the bit last; a delete flips the bit first and scrubs
//! the cell after. A racing reader therefore sees each cell either
//! committed-and-complete or not-committed — never a half-written
//! committed cell. What the seqlock adds is *point-in-time* validity: it
//! rejects reads that overlapped any writer at all, so a lookup cannot
//! mix cells from two different table states (e.g. miss a key that a
//! concurrent remove+reinsert moved between groups), and torn
//! `update_in_place` values (which bypass the bitmap) are never returned.
//!
//! The batch path changes nothing in this argument: a group commit flips
//! its bitmap bits one 8-byte atomic word-write at a time under the same
//! shard lock, so readers still only ever race individual atomic commits
//! — they just retry once per overlapping *batch* instead of per op.

use crate::config::GroupHashConfig;
use crate::table::{GroupHash, GroupReadView};
use nvm_hashfn::{HashKey, Pod, SplitMix64};
use nvm_metrics::{ConcurrencyCounters, ConcurrencySnapshot, SchemeInstrumentation};
use nvm_pmem::{Pmem, Region};
use nvm_table::{BatchError, HashScheme, InsertError, TableError};
use parking_lot::{Mutex, MutexGuard};
use std::sync::atomic::{fence, AtomicU64, Ordering};

/// The write-side state of one shard: its pool and table, behind the
/// shard mutex.
struct ShardInner<P: Pmem, K: HashKey, V: Pod> {
    pm: P,
    table: GroupHash<P, K, V>,
}

struct Shard<P: Pmem, K: HashKey, V: Pod> {
    /// Seqlock generation: even = quiescent, odd = a writer is mutating.
    seq: AtomicU64,
    inner: Mutex<ShardInner<P, K, V>>,
    /// Read-only probe machine over this shard's cells (layout only —
    /// stays valid across mutations).
    view: GroupReadView<K, V>,
    /// Shared read handle onto the shard's pool.
    reader: P::ReadHandle,
}

/// A thread-safe group hash table built from independent shards, with
/// mutex-serialized writers and seqlock-validated lock-free readers.
pub struct ShardedGroupHash<P: Pmem, K: HashKey, V: Pod> {
    shards: Vec<Shard<P, K, V>>,
    /// Seed for the shard-routing hash (independent of table seeds).
    route_seed: u64,
    /// Seqlock-retry / lock-wait event counters, shared by all threads.
    counters: ConcurrencyCounters,
}

/// RAII writer section: entered with the shard mutex held and the
/// sequence bumped to odd; restores even on drop (panic-safe, so a
/// poisoned writer cannot wedge readers into believing a mutation is
/// forever in flight — though a mid-mutation panic still leaves readers
/// retrying against whatever the table recovered to).
struct SeqWriteGuard<'a, P: Pmem, K: HashKey, V: Pod> {
    seq: &'a AtomicU64,
    inner: MutexGuard<'a, ShardInner<P, K, V>>,
}

impl<P: Pmem, K: HashKey, V: Pod> Drop for SeqWriteGuard<'_, P, K, V> {
    fn drop(&mut self) {
        // Order every mutation before the even-publish: a reader that
        // sees the new (even) sequence also sees the writes.
        fence(Ordering::SeqCst);
        self.seq.fetch_add(1, Ordering::Release);
    }
}

/// Retry backoff for optimistic readers: a short spin (the writer is
/// usually mid-publish for nanoseconds), then yield — on few-core
/// machines a descheduled writer would otherwise leave the reader
/// spinning out its whole timeslice against a stuck-odd sequence.
#[inline]
fn backoff(spins: &mut u32) {
    if *spins < 64 {
        *spins += 1;
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

impl<P: Pmem, K: HashKey, V: Pod> ShardedGroupHash<P, K, V> {
    /// Builds `n_shards` shards. `make_pool(i)` must return a pool of at
    /// least [`GroupHash::required_size`] bytes for `per_shard_config`.
    /// Each shard's table gets a distinct hash seed derived from the
    /// config's seed.
    pub fn create(
        n_shards: usize,
        per_shard_config: GroupHashConfig,
        mut make_pool: impl FnMut(usize) -> P,
    ) -> Result<Self, TableError> {
        assert!(n_shards > 0, "need at least one shard");
        let mut seeds = SplitMix64::new(per_shard_config.seed);
        let route_seed = seeds.next();
        let mut shards = Vec::with_capacity(n_shards);
        for i in 0..n_shards {
            let mut pm = make_pool(i);
            let cfg = per_shard_config.with_seed(seeds.next());
            let region = Region::new(0, GroupHash::<P, K, V>::required_size(&cfg));
            if pm.len() < region.len {
                return Err(TableError::RegionTooSmall {
                    have: pm.len(),
                    need: region.len,
                });
            }
            let table = GroupHash::create(&mut pm, region, cfg)?;
            let view = table.read_view();
            let reader = pm.read_handle();
            shards.push(Shard {
                seq: AtomicU64::new(0),
                inner: Mutex::new(ShardInner { pm, table }),
                view,
                reader,
            });
        }
        Ok(ShardedGroupHash {
            shards,
            route_seed,
            counters: ConcurrencyCounters::new(),
        })
    }

    #[inline]
    fn shard_of(&self, key: &K) -> usize {
        (key.hash64(self.route_seed) % self.shards.len() as u64) as usize
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Seqlock-retry and lock-wait totals since creation.
    pub fn concurrency(&self) -> ConcurrencySnapshot {
        self.counters.snapshot()
    }

    /// Locks shard `i` for mutation and bumps its sequence to odd, so
    /// concurrent readers retry instead of trusting an in-flight state.
    fn write_shard(&self, i: usize) -> SeqWriteGuard<'_, P, K, V> {
        let shard = &self.shards[i];
        let inner = match shard.inner.try_lock() {
            Some(g) => g,
            None => {
                self.counters.note_lock_wait();
                shard.inner.lock()
            }
        };
        shard.seq.fetch_add(1, Ordering::AcqRel);
        // Order the odd-publish before the mutation's first write.
        fence(Ordering::SeqCst);
        SeqWriteGuard {
            seq: &shard.seq,
            inner,
        }
    }

    /// Locks shard `i` *without* bumping the sequence — for operations
    /// that hold the lock but never mutate (length, consistency checks,
    /// instrumentation merges). Concurrent lock-free readers keep
    /// running; concurrent writers queue behind the mutex as usual.
    fn locked_shard(&self, i: usize) -> MutexGuard<'_, ShardInner<P, K, V>> {
        match self.shards[i].inner.try_lock() {
            Some(g) => g,
            None => {
                self.counters.note_lock_wait();
                self.shards[i].inner.lock()
            }
        }
    }

    /// Inserts `(key, value)` into the owning shard.
    pub fn insert(&self, key: K, value: V) -> Result<(), InsertError> {
        let mut g = self.write_shard(self.shard_of(&key));
        let ShardInner { pm, table } = &mut *g.inner;
        table.insert(pm, key, value)
    }

    /// Looks up `key` without taking any lock: an optimistic read through
    /// the shard's [`GroupReadView`], validated by the shard's sequence
    /// counter and retried whenever a writer overlapped. See the module
    /// docs for why a validated read can never be torn.
    pub fn get(&self, key: &K) -> Option<V> {
        let shard = &self.shards[self.shard_of(key)];
        let mut spins = 0u32;
        loop {
            let s1 = shard.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                // A writer is mid-mutation; don't bother probing.
                self.counters.note_seqlock_retry();
                backoff(&mut spins);
                continue;
            }
            let v = shard.view.get(&shard.reader, key);
            // Order the probe's loads before the validation load.
            fence(Ordering::Acquire);
            if shard.seq.load(Ordering::Relaxed) == s1 {
                return v;
            }
            self.counters.note_seqlock_retry();
            backoff(&mut spins);
        }
    }

    /// Looks up every key without taking any lock, returning one answer
    /// per key in input order. The batch is split by owning shard with the
    /// same `(shard, index)` routing permutation the write batches use,
    /// then each shard's sub-batch runs as **one** optimistic
    /// [`GroupReadView::get_batch_into`] pass — prefetch-pipelined across
    /// the sub-batch's keys — validated by **one** sequence-counter check.
    ///
    /// Validating per shard rather than per key is what keeps the batch
    /// phantom/torn-free: every answer in a sub-batch was probed strictly
    /// between two even, equal sequence reads, so the whole sub-batch
    /// reflects a single quiescent table state (no mixing cells from two
    /// states, no torn `update_in_place` values). A writer overlapping the
    /// sub-batch costs one retry of that shard's keys only — other shards'
    /// answers stand.
    pub fn get_batch(&self, keys: &[K]) -> Vec<Option<V>> {
        let mut out: Vec<Option<V>> = vec![None; keys.len()];
        let order = self.route_by_shard(keys.iter());
        let mut scratch: Vec<K> = Vec::new();
        let mut answers: Vec<Option<V>> = Vec::new();
        let mut pos = 0usize;
        while pos < order.len() {
            let shard_no = order[pos].0;
            let run_start = pos;
            scratch.clear();
            while pos < order.len() && order[pos].0 == shard_no {
                scratch.push(keys[order[pos].1 as usize]);
                pos += 1;
            }
            let shard = &self.shards[shard_no as usize];
            let mut spins = 0u32;
            loop {
                let s1 = shard.seq.load(Ordering::Acquire);
                if s1 & 1 == 1 {
                    // A writer is mid-mutation; don't bother probing.
                    self.counters.note_seqlock_retry();
                    backoff(&mut spins);
                    continue;
                }
                shard.view.get_batch_into(&shard.reader, &scratch, &mut answers);
                // Order the probes' loads before the validation load.
                fence(Ordering::Acquire);
                if shard.seq.load(Ordering::Relaxed) == s1 {
                    break;
                }
                self.counters.note_seqlock_retry();
                backoff(&mut spins);
            }
            for (i, v) in answers.iter().enumerate() {
                out[order[run_start + i].1 as usize] = *v;
            }
        }
        out
    }

    /// Removes `key`, returning whether it was present.
    pub fn remove(&self, key: &K) -> bool {
        let mut g = self.write_shard(self.shard_of(key));
        let ShardInner { pm, table } = &mut *g.inner;
        table.remove(pm, key)
    }

    /// Inserts every `(key, value)`, splitting the batch by owning shard
    /// and group-committing each shard's sub-batch under its lock, so the
    /// fence amortization happens per shard. Sub-batches run in shard
    /// order — on failure [`BatchError::committed`] counts ops durably
    /// applied across all shards, and the durable set is a union of
    /// per-shard prefixes of `items`, not a single global prefix.
    ///
    /// Routing allocates exactly twice per call — a `(shard, index)`
    /// permutation and one scratch buffer reused across shards — instead
    /// of one `Vec` per shard; see `route_by_shard`.
    pub fn insert_batch(&self, items: &[(K, V)]) -> Result<(), BatchError> {
        let order = self.route_by_shard(items.iter().map(|(k, _)| k));
        let mut scratch: Vec<(K, V)> = Vec::new();
        let mut committed = 0usize;
        let mut pos = 0usize;
        while pos < order.len() {
            let shard = order[pos].0;
            scratch.clear();
            while pos < order.len() && order[pos].0 == shard {
                scratch.push(items[order[pos].1 as usize]);
                pos += 1;
            }
            let mut g = self.write_shard(shard as usize);
            let ShardInner { pm, table } = &mut *g.inner;
            match table.insert_batch(pm, &scratch) {
                Ok(()) => committed += scratch.len(),
                Err(e) => {
                    return Err(BatchError {
                        committed: committed + e.committed,
                        error: e.error,
                    })
                }
            }
        }
        Ok(())
    }

    /// Removes every key, split by owning shard like
    /// [`ShardedGroupHash::insert_batch`]; returns how many were present.
    pub fn remove_batch(&self, keys: &[K]) -> usize {
        let order = self.route_by_shard(keys.iter());
        let mut scratch: Vec<K> = Vec::new();
        let mut removed = 0usize;
        let mut pos = 0usize;
        while pos < order.len() {
            let shard = order[pos].0;
            scratch.clear();
            while pos < order.len() && order[pos].0 == shard {
                scratch.push(keys[order[pos].1 as usize]);
                pos += 1;
            }
            let mut g = self.write_shard(shard as usize);
            let ShardInner { pm, table } = &mut *g.inner;
            removed += table.remove_batch(pm, &scratch);
        }
        removed
    }

    /// Builds the batch routing permutation: `(owning shard, original
    /// index)` per item, sorted so equal shards are contiguous and each
    /// shard's run preserves the caller's item order (the sort key's
    /// second component). One allocation, O(n log n); the former
    /// per-shard `Vec<Vec<_>>` cost `shard_count` allocations per call
    /// even for batches touching one shard.
    fn route_by_shard<'a>(&self, keys: impl Iterator<Item = &'a K>) -> Vec<(u32, u32)>
    where
        K: 'a,
    {
        let mut order: Vec<(u32, u32)> = keys
            .enumerate()
            .map(|(i, k)| (self.shard_of(k) as u32, i as u32))
            .collect();
        assert!(order.len() <= u32::MAX as usize, "batch too large");
        order.sort_unstable();
        order
    }

    /// Inserts `(key, value)` only if `key` is absent (atomic per shard:
    /// the probe and the insert happen under the owning shard's lock).
    pub fn insert_unique(&self, key: K, value: V) -> Result<(), InsertError> {
        let mut g = self.write_shard(self.shard_of(&key));
        let ShardInner { pm, table } = &mut *g.inner;
        table.insert_unique(pm, key, value)
    }

    /// Updates the value of an existing `key` in place, returning whether
    /// the key was found. Same failure-atomicity caveats as
    /// [`GroupHash::update_in_place`]; atomic per shard. The seqlock is
    /// what keeps concurrent readers from returning a torn multi-word
    /// value: the in-place write happens at odd sequence, so any
    /// overlapping read retries.
    pub fn update_in_place(&self, key: &K, value: V) -> bool {
        let mut g = self.write_shard(self.shard_of(key));
        let ShardInner { pm, table } = &mut *g.inner;
        table.update_in_place(pm, key, value)
    }

    /// Total entries across shards. Consistent only when quiescent.
    pub fn len(&self) -> u64 {
        (0..self.shards.len())
            .map(|i| {
                let g = self.locked_shard(i);
                g.table.len(&g.pm)
            })
            .sum()
    }

    /// True when every shard is empty. Consistent only when quiescent.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs recovery on every shard (a mutation: uncommitted cells are
    /// scrubbed, counts recount, fingerprint caches rebuild).
    pub fn recover_all(&self) {
        for i in 0..self.shards.len() {
            let mut g = self.write_shard(i);
            let ShardInner { pm, table } = &mut *g.inner;
            table.recover(pm);
        }
    }

    /// Probe/occupancy/displacement histograms aggregated across all
    /// shards — an owned snapshot merged under each shard's lock, so it
    /// is internally consistent per shard but only globally consistent
    /// when quiescent. `None` unless the crate was built with the
    /// `instrument` feature.
    pub fn instrumentation(&self) -> Option<SchemeInstrumentation> {
        let mut agg: Option<SchemeInstrumentation> = None;
        for i in 0..self.shards.len() {
            let g = self.locked_shard(i);
            if let Some(instr) = HashScheme::instrumentation(&g.table) {
                let a = agg.get_or_insert_with(|| {
                    SchemeInstrumentation::new(g.table.config().group_size as usize)
                });
                a.merge(instr);
            }
        }
        agg
    }

    /// Checks consistency of every shard; the first violation comes back
    /// as [`TableError::Corrupt`], prefixed with the shard number.
    pub fn check_consistency(&self) -> Result<(), TableError> {
        for i in 0..self.shards.len() {
            let g = self.locked_shard(i);
            crate::analysis::check_consistency(&g.table, &g.pm)
                .map_err(|e| TableError::Corrupt(format!("shard {i}: {e}")))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_pmem::{SimConfig, SimPmem};
    use std::sync::Arc;

    fn build(n_shards: usize) -> ShardedGroupHash<SimPmem, u64, u64> {
        let cfg = GroupHashConfig::new(1 << 10, 64);
        let size = GroupHash::<SimPmem, u64, u64>::required_size(&cfg);
        ShardedGroupHash::create(n_shards, cfg, |_| {
            SimPmem::new(size, SimConfig::fast_test())
        })
        .unwrap()
    }

    #[test]
    fn single_thread_roundtrip() {
        let t = build(4);
        for k in 0..500u64 {
            t.insert(k, k * 2).unwrap();
        }
        assert_eq!(t.len(), 500);
        for k in 0..500u64 {
            assert_eq!(t.get(&k), Some(k * 2));
        }
        for k in 0..250u64 {
            assert!(t.remove(&k));
        }
        assert_eq!(t.len(), 250);
        t.check_consistency().unwrap();
    }

    #[test]
    fn keys_spread_across_shards() {
        let t = build(8);
        for k in 0..2000u64 {
            t.insert(k, k).unwrap();
        }
        // Every shard should own a non-trivial share.
        let per_shard: Vec<u64> = (0..t.shard_count())
            .map(|i| {
                let g = t.locked_shard(i);
                g.table.len(&g.pm)
            })
            .collect();
        assert!(per_shard.iter().all(|&n| n > 100), "{per_shard:?}");
    }

    #[test]
    fn sequences_are_even_when_quiescent() {
        let t = build(4);
        for k in 0..200u64 {
            t.insert(k, k).unwrap();
            assert!(t.remove(&k));
        }
        for s in &t.shards {
            assert_eq!(s.seq.load(Ordering::Relaxed) & 1, 0);
        }
        // No readers raced any writer in this single-threaded test.
        assert_eq!(t.concurrency().seqlock_retries, 0);
    }

    #[test]
    fn concurrent_inserts_and_reads() {
        let t = Arc::new(build(8));
        let threads: Vec<_> = (0..4u64)
            .map(|tid| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let k = tid * 10_000 + i;
                        t.insert(k, k + 1).unwrap();
                        assert_eq!(t.get(&k), Some(k + 1));
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(t.len(), 2000);
        t.check_consistency().unwrap();
    }

    #[test]
    fn concurrent_mixed_workload() {
        let t = Arc::new(build(4));
        for k in 0..1000u64 {
            t.insert(k, k).unwrap();
        }
        let threads: Vec<_> = (0..4u64)
            .map(|tid| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    let lo = tid * 250;
                    for k in lo..lo + 250 {
                        assert_eq!(t.get(&k), Some(k));
                        assert!(t.remove(&k));
                        assert_eq!(t.get(&k), None);
                        t.insert(k, k + 7).unwrap();
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(t.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(t.get(&k), Some(k + 7));
        }
        t.check_consistency().unwrap();
    }

    #[test]
    fn update_in_place_and_insert_unique_roundtrip() {
        let t = build(4);
        t.insert_unique(5, 50).unwrap();
        assert_eq!(
            t.insert_unique(5, 51),
            Err(nvm_table::InsertError::DuplicateKey)
        );
        assert_eq!(t.get(&5), Some(50));
        assert!(t.update_in_place(&5, 500));
        assert_eq!(t.get(&5), Some(500));
        assert!(!t.update_in_place(&6, 1));
        assert_eq!(t.len(), 1);
        t.check_consistency().unwrap();
    }

    #[test]
    fn concurrent_updates_in_place() {
        // Each thread owns a disjoint key range: inserts via insert_unique,
        // then repeatedly updates in place while other threads hammer
        // their own ranges; values must never tear or leak across keys.
        let t = Arc::new(build(8));
        let threads: Vec<_> = (0..4u64)
            .map(|tid| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    let lo = tid * 1000;
                    for k in lo..lo + 200 {
                        t.insert_unique(k, k).unwrap();
                        assert_eq!(t.insert_unique(k, 0), Err(InsertError::DuplicateKey));
                    }
                    for round in 1..=5u64 {
                        for k in lo..lo + 200 {
                            assert!(t.update_in_place(&k, k + round));
                            assert_eq!(t.get(&k), Some(k + round));
                        }
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(t.len(), 800);
        for tid in 0..4u64 {
            for k in tid * 1000..tid * 1000 + 200 {
                assert_eq!(t.get(&k), Some(k + 5));
            }
        }
        t.check_consistency().unwrap();
    }

    #[test]
    fn sharded_fingerprint_mode_roundtrip() {
        use crate::config::FpMode;
        let cfg = GroupHashConfig::new(1 << 10, 64).with_fp_mode(FpMode::On);
        let size = GroupHash::<SimPmem, u64, u64>::required_size(&cfg);
        let t: ShardedGroupHash<SimPmem, u64, u64> =
            ShardedGroupHash::create(4, cfg, |_| SimPmem::new(size, SimConfig::fast_test()))
                .unwrap();
        for k in 0..800u64 {
            t.insert(k, k * 2).unwrap();
        }
        for k in 0..400u64 {
            assert!(t.remove(&k));
        }
        for k in 400..800u64 {
            assert_eq!(t.get(&k), Some(k * 2));
            assert!(t.update_in_place(&k, k));
        }
        t.recover_all();
        for k in 400..800u64 {
            assert_eq!(t.get(&k), Some(k));
        }
        // check_consistency verifies the per-shard fingerprint caches.
        t.check_consistency().unwrap();
    }

    #[test]
    fn batched_ops_split_by_shard() {
        let t = build(4);
        let items: Vec<(u64, u64)> = (0..600u64).map(|k| (k, k * 3)).collect();
        t.insert_batch(&items).unwrap();
        assert_eq!(t.len(), 600);
        for k in 0..600u64 {
            assert_eq!(t.get(&k), Some(k * 3));
        }
        let keys: Vec<u64> = (0..300u64).collect();
        assert_eq!(t.remove_batch(&keys), 300);
        assert_eq!(t.len(), 300);
        assert_eq!(t.remove_batch(&keys), 0, "already removed");
        t.check_consistency().unwrap();
    }

    #[test]
    fn get_batch_matches_sequential_gets_across_shards() {
        let t = build(4);
        for k in 0..600u64 {
            t.insert(k, k * 3).unwrap();
        }
        // Mix of hits, misses, and duplicates, in caller order.
        let keys: Vec<u64> = (0..800u64).chain([5, 5, 599]).collect();
        let batch = t.get_batch(&keys);
        assert_eq!(batch.len(), keys.len());
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(batch[i], t.get(k), "key {k}");
        }
        assert_eq!(t.get_batch(&[]), Vec::<Option<u64>>::new());
    }

    #[test]
    fn concurrent_get_batch_sees_committed_values_only() {
        // Writers churn disjoint ranges while readers batch-read across
        // all of them; every answer must be a value some writer committed
        // for that exact key.
        let t = Arc::new(build(4));
        for k in 0..256u64 {
            t.insert(k, k * 1_000_000).unwrap();
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for round in 1..=200u64 {
                    for k in 0..256u64 {
                        t.update_in_place(&k, k * 1_000_000 + round);
                    }
                }
                stop.store(true, Ordering::Release);
            })
        };
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let t = Arc::clone(&t);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let keys: Vec<u64> = (0..300u64).collect(); // 256.. miss
                    while !stop.load(Ordering::Acquire) {
                        for (k, v) in keys.iter().zip(t.get_batch(&keys)) {
                            if *k < 256 {
                                let v = v.expect("inserted key vanished");
                                assert_eq!(v / 1_000_000, *k, "torn or cross-key value {v}");
                                assert!(v % 1_000_000 <= 200, "phantom round in {v}");
                            } else {
                                assert_eq!(v, None, "phantom key {k}");
                            }
                        }
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        t.check_consistency().unwrap();
    }

    #[test]
    fn batch_routing_preserves_item_order_within_a_shard() {
        // Duplicate keys in one batch land in the same shard; the routing
        // permutation must keep them in caller order so "last write wins"
        // semantics match the unsharded table's sequential batch.
        let t = build(4);
        let items: Vec<(u64, u64)> = (0..50u64)
            .flat_map(|k| [(k, k), (k, k + 1000)])
            .collect();
        // The unsharded batch rejects duplicates; route through singles
        // semantics instead: insert first copies, then batch-remove.
        let firsts: Vec<(u64, u64)> = (0..50u64).map(|k| (k, k)).collect();
        t.insert_batch(&firsts).unwrap();
        let order = t.route_by_shard(items.iter().map(|(k, _)| k));
        for w in order.windows(2) {
            assert!(w[0] <= w[1], "sorted by (shard, original index)");
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "caller order kept within a shard");
            }
        }
        assert_eq!(t.remove_batch(&(0..50u64).collect::<Vec<_>>()), 50);
    }

    #[test]
    fn recover_all_shards() {
        let t = build(3);
        for k in 0..300u64 {
            t.insert(k, k).unwrap();
        }
        t.recover_all();
        assert_eq!(t.len(), 300);
        t.check_consistency().unwrap();
    }

    #[test]
    fn readers_race_writers_without_torn_values() {
        // One writer cycles a key range while readers spin on get: every
        // observed value must be one some writer wrote for that exact key.
        let t = Arc::new(build(2));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for round in 0..200u64 {
                    for k in 0..64u64 {
                        if round == 0 {
                            t.insert(k, k * 1_000_000 + round).unwrap();
                        } else {
                            t.update_in_place(&k, k * 1_000_000 + round);
                        }
                    }
                }
                stop.store(true, Ordering::Release);
            })
        };
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let t = Arc::clone(&t);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        for k in 0..64u64 {
                            if let Some(v) = t.get(&k) {
                                assert_eq!(v / 1_000_000, k, "torn or cross-key value {v}");
                                assert!(v % 1_000_000 < 200, "phantom round in {v}");
                            }
                        }
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        t.check_consistency().unwrap();
    }
}
