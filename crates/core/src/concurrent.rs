//! A sharded concurrent wrapper (extension beyond the paper).
//!
//! The paper's table is single-writer. For multi-threaded use the natural
//! NVM-friendly construction is sharding: route each key by an independent
//! hash to one of `S` shards, each a private `(pool, GroupHash)` pair.
//! Shards never share cachelines or persistence state, so every per-shard
//! consistency argument carries over verbatim.
//!
//! # Lock-free writes: the bitmap-word CAS fast path
//!
//! Within a shard, plain inserts and removes do **not** serialize through
//! an exclusive lock. They run the shared-writer path of
//! [`GroupHash::try_insert_shared`] / [`GroupHash::try_remove_shared`]:
//! claim the target cell in a DRAM claim table, write + persist the cell
//! bytes unpublished, then commit with a CAS loop on the 8-byte occupancy
//! bitmap *word* — the paper's atomic commit write, made contention-safe.
//! Writers to the same shard only collide on the hardware CAS (counted as
//! `cas_failures`), never on a mutex. The shard's `RwLock` is held in
//! *read* mode for these ops: it is a group-level DRAM latch whose
//! exclusive side is reserved for the operations that genuinely need
//! mutual exclusion — batches, `update_in_place`, `insert_unique`,
//! recovery, and online expansion. Ops that fall back to that latch are
//! counted as `latch_waits`.
//!
//! # Lock-free reads: seqlock + commit protocol
//!
//! Readers take no lock at all: they probe an epoch-published
//! ([`std::sync::atomic::AtomicPtr`]) pair of read-only
//! [`GroupReadView`]s — the active table and, during an expansion, the
//! draining source — through shared [`Pmem::ReadHandle`]s, validated by
//! the shard's sequence counter. The seqlock is bumped **only** by
//! exclusive-latch operations; CAS-path writers never touch it. That
//! split is sound because the commit protocol makes every CAS mutation's
//! visibility point a single 8-byte atomic bitmap write (a racing reader
//! sees each cell committed-and-complete or not at all, and the view
//! revalidates every hit against the bit), while the operations that
//! *can* produce torn or cross-state reads — multi-word
//! `update_in_place`, batch commits, migration moves, pool swaps — all
//! run at odd sequence, so overlapped readers retry.
//!
//! # Incremental online expansion
//!
//! When an insert finds its shard full, the shard doubles *online*: a
//! fresh pool + doubled table become active, and the old table drains
//! through the persisted-cursor choreography of [`migrate_step`] — a
//! bounded handful of entries per subsequent exclusive operation (or via
//! [`ShardedGroupHash::expand_step`]), never a stop-the-world rehash.
//! Lookups probe active-then-draining; a crash at any instant recovers
//! via per-table recovery plus [`migrate_recover_split`] dedup (see
//! [`ShardedGroupHash::recover_all`]). While a drain is pending the
//! shard's writes use the exclusive latch (migration moves must not race
//! the CAS path's placement decisions); the fast path resumes the moment
//! the source empties.

use crate::config::GroupHashConfig;
use crate::table::{GroupHash, GroupReadView, TableClaims};
use nvm_hashfn::{HashKey, Pod, SplitMix64};
use nvm_metrics::{ConcurrencyCounters, ConcurrencySnapshot, SchemeInstrumentation};
use nvm_pmem::{Pmem, Region};
use nvm_table::{
    migrate_recover_split, migrate_step, BatchError, HashScheme, InsertError, MigrationSource,
    TableError,
};
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::sync::atomic::{fence, AtomicPtr, AtomicU64, Ordering};

/// Entries drained from a shard's old table per exclusive operation while
/// an expansion is in flight.
const MIGRATE_PER_OP: u64 = 32;

/// The old `(pool, table)` pair of a shard mid-expansion, draining into
/// the shard's active pair.
struct Draining<P: Pmem, K: HashKey, V: Pod> {
    pm: P,
    table: GroupHash<P, K, V>,
}

/// The write-side state of one shard, behind the shard latch.
struct ShardInner<P: Pmem, K: HashKey, V: Pod> {
    pm: P,
    table: GroupHash<P, K, V>,
    /// Shared write handle the CAS fast path runs through (read-latch
    /// holders mutate the pool via `&self`).
    wh: P::WriteHandle,
    /// DRAM claim bits for the active table's cells.
    claims: TableClaims,
    draining: Option<Draining<P, K, V>>,
}

/// The reader-side snapshot a shard publishes: probe machines + read
/// handles for the active table and any draining source. Swapped
/// atomically on expansion; retired snapshots stay allocated until the
/// shard drops, so a reader holding a stale pointer never dangles.
struct Views<K: HashKey, V: Pod, RH> {
    active: (GroupReadView<K, V>, RH),
    draining: Option<(GroupReadView<K, V>, RH)>,
}

type ShardViews<P, K, V> = Views<K, V, <P as Pmem>::ReadHandle>;

struct Shard<P: Pmem, K: HashKey, V: Pod> {
    /// Seqlock generation: even = no exclusive writer, odd = an
    /// exclusive-latch operation is mutating. CAS-path writers never bump
    /// it (their commits are atomic; readers revalidate hits).
    seq: AtomicU64,
    inner: RwLock<ShardInner<P, K, V>>,
    /// Current reader snapshot (owned `Box` leaked into the pointer).
    views: AtomicPtr<ShardViews<P, K, V>>,
    /// Superseded snapshots, kept alive for stale readers.
    retired: Mutex<Vec<Box<ShardViews<P, K, V>>>>,
}

impl<P: Pmem, K: HashKey, V: Pod> Drop for Shard<P, K, V> {
    fn drop(&mut self) {
        let p = *self.views.get_mut();
        if !p.is_null() {
            // Published by us via Box::into_raw; no readers can outlive
            // the table that owns this shard.
            drop(unsafe { Box::from_raw(p) });
        }
    }
}

/// A thread-safe group hash table built from independent shards:
/// CAS-committed lock-free plain writes, seqlock-validated lock-free
/// reads, and incremental online expansion per shard.
pub struct ShardedGroupHash<P: Pmem, K: HashKey, V: Pod> {
    shards: Vec<Shard<P, K, V>>,
    /// Seed for the shard-routing hash (independent of table seeds).
    route_seed: u64,
    /// Contention / migration event counters, shared by all threads.
    counters: ConcurrencyCounters,
    /// Pool factory for expansion targets: `(shard, bytes) -> pool`.
    make_pool: Mutex<Box<dyn FnMut(usize, usize) -> P + Send>>,
}

/// RAII exclusive writer section: entered with the shard write latch held
/// and the sequence bumped to odd; restores even on drop (panic-safe).
struct SeqWriteGuard<'a, P: Pmem, K: HashKey, V: Pod> {
    seq: &'a AtomicU64,
    inner: RwLockWriteGuard<'a, ShardInner<P, K, V>>,
}

impl<P: Pmem, K: HashKey, V: Pod> Drop for SeqWriteGuard<'_, P, K, V> {
    fn drop(&mut self) {
        // Order every mutation before the even-publish: a reader that
        // sees the new (even) sequence also sees the writes.
        fence(Ordering::SeqCst);
        self.seq.fetch_add(1, Ordering::Release);
    }
}

/// Retry backoff for optimistic readers: a short spin (the writer is
/// usually mid-publish for nanoseconds), then yield — on few-core
/// machines a descheduled writer would otherwise leave the reader
/// spinning out its whole timeslice against a stuck-odd sequence.
#[inline]
fn backoff(spins: &mut u32) {
    if *spins < 64 {
        *spins += 1;
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

impl<P: Pmem, K: HashKey, V: Pod> ShardedGroupHash<P, K, V> {
    /// Builds `n_shards` shards. `make_pool(shard, bytes)` must return a
    /// pool of at least `bytes` — it is called once per shard at creation
    /// and again for each online expansion's destination pool. Each
    /// shard's table gets a distinct hash seed derived from the config's
    /// seed.
    pub fn create(
        n_shards: usize,
        per_shard_config: GroupHashConfig,
        mut make_pool: impl FnMut(usize, usize) -> P + Send + 'static,
    ) -> Result<Self, TableError> {
        assert!(n_shards > 0, "need at least one shard");
        let mut seeds = SplitMix64::new(per_shard_config.seed);
        let route_seed = seeds.next();
        let mut shards = Vec::with_capacity(n_shards);
        for i in 0..n_shards {
            let cfg = per_shard_config.with_seed(seeds.next());
            let size = GroupHash::<P, K, V>::required_size(&cfg);
            let mut pm = make_pool(i, size);
            if pm.len() < size {
                return Err(TableError::RegionTooSmall {
                    have: pm.len(),
                    need: size,
                });
            }
            let table = GroupHash::create(&mut pm, Region::new(0, size), cfg)?;
            let wh = pm.write_handle();
            let claims = TableClaims::new(cfg.cells_per_level);
            let views = Box::new(Views {
                active: (table.read_view(), pm.read_handle()),
                draining: None,
            });
            shards.push(Shard {
                seq: AtomicU64::new(0),
                inner: RwLock::new(ShardInner {
                    pm,
                    table,
                    wh,
                    claims,
                    draining: None,
                }),
                views: AtomicPtr::new(Box::into_raw(views)),
                retired: Mutex::new(Vec::new()),
            });
        }
        Ok(ShardedGroupHash {
            shards,
            route_seed,
            counters: ConcurrencyCounters::new(),
            make_pool: Mutex::new(Box::new(make_pool)),
        })
    }

    #[inline]
    fn shard_of(&self, key: &K) -> usize {
        (key.hash64(self.route_seed) % self.shards.len() as u64) as usize
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Contention and migration event totals since creation.
    pub fn concurrency(&self) -> ConcurrencySnapshot {
        self.counters.snapshot()
    }

    /// Takes the shard latch in *read* mode (the CAS fast path's grip:
    /// excludes structural ops, not other CAS writers).
    fn read_inner(&self, i: usize) -> RwLockReadGuard<'_, ShardInner<P, K, V>> {
        match self.shards[i].inner.try_read() {
            Some(g) => g,
            None => {
                self.counters.note_lock_wait();
                self.shards[i].inner.read()
            }
        }
    }

    /// Takes the shard latch exclusively and bumps the sequence to odd,
    /// so concurrent readers retry instead of trusting in-flight state.
    fn write_shard(&self, i: usize) -> SeqWriteGuard<'_, P, K, V> {
        let shard = &self.shards[i];
        let inner = match shard.inner.try_write() {
            Some(g) => g,
            None => {
                self.counters.note_lock_wait();
                shard.inner.write()
            }
        };
        shard.seq.fetch_add(1, Ordering::AcqRel);
        // Order the odd-publish before the mutation's first write.
        fence(Ordering::SeqCst);
        SeqWriteGuard {
            seq: &shard.seq,
            inner,
        }
    }

    /// Rebuilds and atomically publishes shard `i`'s reader snapshot from
    /// `inner`'s current pools/tables; the superseded snapshot is retired
    /// (kept alive), not freed.
    fn publish_views(&self, i: usize, inner: &ShardInner<P, K, V>) {
        let shard = &self.shards[i];
        let views: Box<ShardViews<P, K, V>> = Box::new(Views {
            active: (inner.table.read_view(), inner.pm.read_handle()),
            draining: inner
                .draining
                .as_ref()
                .map(|d| (d.table.read_view(), d.pm.read_handle())),
        });
        let old = shard.views.swap(Box::into_raw(views), Ordering::AcqRel);
        shard.retired.lock().push(unsafe { Box::from_raw(old) });
    }

    /// One bounded migration step for shard `i` (caller holds the
    /// exclusive latch). Publishes a drain-free snapshot when the source
    /// empties.
    fn step_migration(&self, i: usize, inner: &mut ShardInner<P, K, V>, max_moves: u64) {
        let done = {
            let ShardInner {
                pm,
                table,
                draining,
                ..
            } = &mut *inner;
            let Some(d) = draining.as_mut() else { return };
            migrate_step(&mut d.pm, pm, &mut d.table, table, max_moves)
        };
        self.counters.note_migration_steps(1);
        if done {
            inner.draining = None;
            self.publish_views(i, inner);
        }
    }

    /// Doubles shard `i` online (caller holds the exclusive latch): any
    /// pending drain finishes, then a fresh pool + doubled table become
    /// active and the old pair starts draining. O(previous drain), not
    /// O(capacity) — no entries move for the new expansion here.
    fn expand_locked(&self, i: usize, inner: &mut ShardInner<P, K, V>) {
        while inner.draining.is_some() {
            self.step_migration(i, inner, u64::MAX);
        }
        let new_cfg = inner.table.doubled_config();
        let size = GroupHash::<P, K, V>::required_size(&new_cfg);
        let mut factory = self.make_pool.lock();
        let mut pm = (*factory)(i, size);
        drop(factory);
        assert!(pm.len() >= size, "factory pool too small for shard expansion");
        let table = GroupHash::create(&mut pm, Region::new(0, size), new_cfg)
            .expect("doubled config is valid");
        inner.wh = pm.write_handle();
        inner.claims = TableClaims::new(new_cfg.cells_per_level);
        let old_pm = std::mem::replace(&mut inner.pm, pm);
        let old_table = std::mem::replace(&mut inner.table, table);
        inner.draining = Some(Draining {
            pm: old_pm,
            table: old_table,
        });
        let d = inner.draining.as_mut().expect("just set");
        // Announce the drain window before any entry moves: a crash here
        // must already read as migration-in-flight to recovery.
        d.table.set_migration_active(&mut d.pm, true);
        self.publish_views(i, inner);
    }

    /// Forces shard `shard` to double online right now (normally growth
    /// triggers itself on a full insert). The drain then proceeds
    /// incrementally via subsequent operations or
    /// [`ShardedGroupHash::expand_step`].
    pub fn grow_shard(&self, shard: usize) {
        let mut g = self.write_shard(shard);
        self.expand_locked(shard, &mut g.inner);
    }

    /// Runs one bounded drain step (≤ `max_moves` entries) of shard
    /// `shard`'s pending expansion, if any. Returns `true` while a drain
    /// remains pending afterwards.
    pub fn expand_step(&self, shard: usize, max_moves: u64) -> bool {
        let mut g = self.write_shard(shard);
        self.step_migration(shard, &mut g.inner, max_moves);
        g.inner.draining.is_some()
    }

    /// Whether shard `shard` has an expansion drain in flight.
    pub fn migration_pending(&self, shard: usize) -> bool {
        self.read_inner(shard).draining.is_some()
    }

    /// Inserts `(key, value)` into the owning shard. Fast path: lock-free
    /// CAS commit under the shard's read latch. Falls back to the
    /// exclusive latch (counted as a `latch_wait`) when an expansion is
    /// draining or the config forbids shared writes; grows the shard
    /// online when full.
    pub fn insert(&self, key: K, value: V) -> Result<(), InsertError> {
        let si = self.shard_of(&key);
        for _ in 0..4 {
            {
                let r = self.read_inner(si);
                if r.draining.is_none() && r.table.supports_shared_writes() {
                    match r.table.try_insert_shared(&r.wh, &r.claims, key, value) {
                        Ok(c) => {
                            self.counters.note_cas_failures(c.cas_failures);
                            return Ok(());
                        }
                        Err(InsertError::TableFull) => {} // grow below
                        Err(e) => return Err(e),
                    }
                }
            }
            self.counters.note_latch_wait();
            let mut g = self.write_shard(si);
            let inner = &mut *g.inner;
            self.step_migration(si, inner, MIGRATE_PER_OP);
            let full = {
                let ShardInner { pm, table, .. } = &mut *inner;
                match table.insert(pm, key, value) {
                    Ok(()) => return Ok(()),
                    Err(InsertError::TableFull) => true,
                    Err(e) => return Err(e),
                }
            };
            if full {
                self.expand_locked(si, inner);
            }
        }
        Err(InsertError::TableFull)
    }

    /// Removes `key`, returning whether it was present. Same fast/slow
    /// split as [`ShardedGroupHash::insert`]; during a drain the key may
    /// live in either table.
    pub fn remove(&self, key: &K) -> bool {
        let si = self.shard_of(key);
        {
            let r = self.read_inner(si);
            if r.draining.is_none() && r.table.supports_shared_writes() {
                return match r.table.try_remove_shared(&r.wh, &r.claims, key) {
                    Some(c) => {
                        self.counters.note_cas_failures(c.cas_failures);
                        true
                    }
                    None => false,
                };
            }
        }
        self.counters.note_latch_wait();
        let mut g = self.write_shard(si);
        let inner = &mut *g.inner;
        self.step_migration(si, inner, MIGRATE_PER_OP);
        let ShardInner {
            pm,
            table,
            draining,
            ..
        } = &mut *inner;
        if table.remove(pm, key) {
            return true;
        }
        match draining.as_mut() {
            Some(d) => d.table.remove(&mut d.pm, key),
            None => false,
        }
    }

    /// Looks up `key` without taking any lock: an optimistic probe of the
    /// shard's published views (active table, then any draining source),
    /// validated by the shard's sequence counter and retried whenever an
    /// exclusive writer overlapped. CAS-path writers don't bump the
    /// sequence — their commits are single atomic bit flips the view
    /// revalidates per hit, so reads stay wait-free under them.
    pub fn get(&self, key: &K) -> Option<V> {
        let shard = &self.shards[self.shard_of(key)];
        let mut spins = 0u32;
        loop {
            let s1 = shard.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                // An exclusive writer is mid-mutation; don't bother.
                self.counters.note_seqlock_retry();
                backoff(&mut spins);
                continue;
            }
            let views = unsafe { &*shard.views.load(Ordering::Acquire) };
            let v = views.active.0.get(&views.active.1, key).or_else(|| {
                views
                    .draining
                    .as_ref()
                    .and_then(|(vw, rh)| vw.get(rh, key))
            });
            // Order the probe's loads before the validation load.
            fence(Ordering::Acquire);
            if shard.seq.load(Ordering::Relaxed) == s1 {
                return v;
            }
            self.counters.note_seqlock_retry();
            backoff(&mut spins);
        }
    }

    /// Looks up every key without taking any lock, returning one answer
    /// per key in input order. The batch is split by owning shard with the
    /// same `(shard, index)` routing permutation the write batches use,
    /// then each shard's sub-batch runs as **one** optimistic
    /// [`GroupReadView::get_batch_into`] pass over the active view
    /// (prefetch-pipelined), misses falling back to the draining view —
    /// all validated by **one** sequence-counter check, so the whole
    /// sub-batch reflects a single exclusive-writer-free window.
    pub fn get_batch(&self, keys: &[K]) -> Vec<Option<V>> {
        let mut out: Vec<Option<V>> = vec![None; keys.len()];
        let order = self.route_by_shard(keys.iter());
        let mut scratch: Vec<K> = Vec::new();
        let mut answers: Vec<Option<V>> = Vec::new();
        let mut pos = 0usize;
        while pos < order.len() {
            let shard_no = order[pos].0;
            let run_start = pos;
            scratch.clear();
            while pos < order.len() && order[pos].0 == shard_no {
                scratch.push(keys[order[pos].1 as usize]);
                pos += 1;
            }
            let shard = &self.shards[shard_no as usize];
            let mut spins = 0u32;
            loop {
                let s1 = shard.seq.load(Ordering::Acquire);
                if s1 & 1 == 1 {
                    self.counters.note_seqlock_retry();
                    backoff(&mut spins);
                    continue;
                }
                let views = unsafe { &*shard.views.load(Ordering::Acquire) };
                views
                    .active
                    .0
                    .get_batch_into(&views.active.1, &scratch, &mut answers);
                if let Some((vw, rh)) = &views.draining {
                    for (j, a) in answers.iter_mut().enumerate() {
                        if a.is_none() {
                            *a = vw.get(rh, &scratch[j]);
                        }
                    }
                }
                // Order the probes' loads before the validation load.
                fence(Ordering::Acquire);
                if shard.seq.load(Ordering::Relaxed) == s1 {
                    break;
                }
                self.counters.note_seqlock_retry();
                backoff(&mut spins);
            }
            for (i, v) in answers.iter().enumerate() {
                out[order[run_start + i].1 as usize] = *v;
            }
        }
        out
    }

    /// Inserts every `(key, value)`, splitting the batch by owning shard
    /// and group-committing each shard's sub-batch under its exclusive
    /// latch, so the fence amortization happens per shard. A sub-batch
    /// that fills its shard grows it online and continues with the
    /// uncommitted remainder. Sub-batches run in shard order — on failure
    /// [`BatchError::committed`] counts ops durably applied across all
    /// shards, and the durable set is a union of per-shard prefixes of
    /// `items`, not a single global prefix.
    pub fn insert_batch(&self, items: &[(K, V)]) -> Result<(), BatchError> {
        let order = self.route_by_shard(items.iter().map(|(k, _)| k));
        let mut scratch: Vec<(K, V)> = Vec::new();
        let mut committed = 0usize;
        let mut pos = 0usize;
        while pos < order.len() {
            let shard = order[pos].0;
            scratch.clear();
            while pos < order.len() && order[pos].0 == shard {
                scratch.push(items[order[pos].1 as usize]);
                pos += 1;
            }
            let mut g = self.write_shard(shard as usize);
            let inner = &mut *g.inner;
            self.step_migration(shard as usize, inner, MIGRATE_PER_OP);
            let mut off = 0usize;
            let mut grows = 0u32;
            while off < scratch.len() {
                let full = {
                    let ShardInner { pm, table, .. } = &mut *inner;
                    match table.insert_batch(pm, &scratch[off..]) {
                        Ok(()) => {
                            committed += scratch.len() - off;
                            off = scratch.len();
                            false
                        }
                        Err(e) if matches!(e.error, InsertError::TableFull) && grows < 4 => {
                            committed += e.committed;
                            off += e.committed;
                            true
                        }
                        Err(e) => {
                            return Err(BatchError {
                                committed: committed + e.committed,
                                error: e.error,
                            })
                        }
                    }
                };
                if full {
                    grows += 1;
                    self.expand_locked(shard as usize, inner);
                }
            }
        }
        Ok(())
    }

    /// Removes every key, split by owning shard like
    /// [`ShardedGroupHash::insert_batch`]; returns how many were present.
    /// While a shard is draining, its keys are removed one by one across
    /// both tables instead of group-committed.
    pub fn remove_batch(&self, keys: &[K]) -> usize {
        let order = self.route_by_shard(keys.iter());
        let mut scratch: Vec<K> = Vec::new();
        let mut removed = 0usize;
        let mut pos = 0usize;
        while pos < order.len() {
            let shard = order[pos].0;
            scratch.clear();
            while pos < order.len() && order[pos].0 == shard {
                scratch.push(keys[order[pos].1 as usize]);
                pos += 1;
            }
            let mut g = self.write_shard(shard as usize);
            let inner = &mut *g.inner;
            self.step_migration(shard as usize, inner, MIGRATE_PER_OP);
            let ShardInner {
                pm,
                table,
                draining,
                ..
            } = &mut *inner;
            match draining.as_mut() {
                None => removed += table.remove_batch(pm, &scratch),
                Some(d) => {
                    for k in &scratch {
                        if table.remove(pm, k) || d.table.remove(&mut d.pm, k) {
                            removed += 1;
                        }
                    }
                }
            }
        }
        removed
    }

    /// Builds the batch routing permutation: `(owning shard, original
    /// index)` per item, sorted so equal shards are contiguous and each
    /// shard's run preserves the caller's item order (the sort key's
    /// second component). One allocation, O(n log n); the former
    /// per-shard `Vec<Vec<_>>` cost `shard_count` allocations per call
    /// even for batches touching one shard.
    fn route_by_shard<'a>(&self, keys: impl Iterator<Item = &'a K>) -> Vec<(u32, u32)>
    where
        K: 'a,
    {
        let mut order: Vec<(u32, u32)> = keys
            .enumerate()
            .map(|(i, k)| (self.shard_of(k) as u32, i as u32))
            .collect();
        assert!(order.len() <= u32::MAX as usize, "batch too large");
        order.sort_unstable();
        order
    }

    /// Inserts `(key, value)` only if `key` is absent (atomic per shard:
    /// the probe and the insert happen under the owning shard's exclusive
    /// latch; a mid-drain duplicate in the old table counts as present).
    pub fn insert_unique(&self, key: K, value: V) -> Result<(), InsertError> {
        let si = self.shard_of(&key);
        for _ in 0..4 {
            let mut g = self.write_shard(si);
            let inner = &mut *g.inner;
            self.step_migration(si, inner, MIGRATE_PER_OP);
            let full = {
                let ShardInner {
                    pm,
                    table,
                    draining,
                    ..
                } = &mut *inner;
                if let Some(d) = draining.as_ref() {
                    if d.table.get(&d.pm, &key).is_some() {
                        return Err(InsertError::DuplicateKey);
                    }
                }
                match table.insert_unique(pm, key, value) {
                    Ok(()) => return Ok(()),
                    Err(InsertError::TableFull) => true,
                    Err(e) => return Err(e),
                }
            };
            if full {
                self.expand_locked(si, inner);
            }
        }
        Err(InsertError::TableFull)
    }

    /// Updates the value of an existing `key` in place, returning whether
    /// the key was found (in the active table or a draining source). Same
    /// failure-atomicity caveats as [`GroupHash::update_in_place`]. The
    /// exclusive latch + seqlock are what keep concurrent readers from
    /// returning a torn multi-word value: the in-place write happens at
    /// odd sequence, so any overlapping read retries.
    pub fn update_in_place(&self, key: &K, value: V) -> bool {
        let si = self.shard_of(key);
        let mut g = self.write_shard(si);
        let inner = &mut *g.inner;
        self.step_migration(si, inner, MIGRATE_PER_OP);
        let ShardInner {
            pm,
            table,
            draining,
            ..
        } = &mut *inner;
        if table.update_in_place(pm, key, value) {
            return true;
        }
        match draining.as_mut() {
            Some(d) => d.table.update_in_place(&mut d.pm, key, value),
            None => false,
        }
    }

    /// Total entries across shards (draining sources included; between
    /// operations a migrating entry is never counted twice). Consistent
    /// only when quiescent.
    pub fn len(&self) -> u64 {
        (0..self.shards.len())
            .map(|i| {
                let g = self.read_inner(i);
                g.table.len(&g.pm)
                    + g.draining.as_ref().map_or(0, |d| d.table.len(&d.pm))
            })
            .sum()
    }

    /// True when every shard is empty. Consistent only when quiescent.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs recovery on every shard: per-table recovery (uncommitted
    /// cells scrubbed, counts recounted, fingerprint caches rebuilt),
    /// then — if the shard crashed mid-expansion — the cross-table dedup
    /// of [`migrate_recover_split`], so an entry whose move committed in
    /// the destination but not yet retracted from the source survives
    /// exactly once.
    pub fn recover_all(&self) {
        for i in 0..self.shards.len() {
            let mut g = self.write_shard(i);
            let inner = &mut *g.inner;
            {
                let ShardInner {
                    pm,
                    table,
                    draining,
                    ..
                } = &mut *inner;
                table.recover(pm);
                if let Some(d) = draining.as_mut() {
                    d.table.recover(&mut d.pm);
                    migrate_recover_split(&mut d.pm, pm, &mut d.table, table);
                }
            }
            self.publish_views(i, inner);
        }
    }

    /// Probe/occupancy/displacement histograms aggregated across all
    /// shards (draining sources included) — an owned snapshot merged
    /// under each shard's latch, so it is internally consistent per shard
    /// but only globally consistent when quiescent. `None` unless the
    /// crate was built with the `instrument` feature.
    pub fn instrumentation(&self) -> Option<SchemeInstrumentation> {
        let mut agg: Option<SchemeInstrumentation> = None;
        for i in 0..self.shards.len() {
            let g = self.read_inner(i);
            let tables = [Some(&g.table), g.draining.as_ref().map(|d| &d.table)];
            for t in tables.into_iter().flatten() {
                if let Some(instr) = HashScheme::instrumentation(t) {
                    let a = agg.get_or_insert_with(|| {
                        SchemeInstrumentation::new(g.table.config().group_size as usize)
                    });
                    a.merge(instr);
                }
            }
        }
        agg
    }

    /// Checks consistency of every shard (draining sources included); the
    /// first violation comes back as [`TableError::Corrupt`], prefixed
    /// with the shard number.
    pub fn check_consistency(&self) -> Result<(), TableError> {
        for i in 0..self.shards.len() {
            let g = self.read_inner(i);
            crate::analysis::check_consistency(&g.table, &g.pm)
                .map_err(|e| TableError::Corrupt(format!("shard {i}: {e}")))?;
            if let Some(d) = &g.draining {
                crate::analysis::check_consistency(&d.table, &d.pm)
                    .map_err(|e| TableError::Corrupt(format!("shard {i} (draining): {e}")))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_pmem::{SimConfig, SimPmem};
    use std::sync::Arc;

    fn build(n_shards: usize) -> ShardedGroupHash<SimPmem, u64, u64> {
        let cfg = GroupHashConfig::new(1 << 10, 64);
        ShardedGroupHash::create(n_shards, cfg, |_, size| {
            SimPmem::new(size, SimConfig::fast_test())
        })
        .unwrap()
    }

    /// Small shards so inserts overflow and trigger online expansion.
    fn build_small(n_shards: usize) -> ShardedGroupHash<SimPmem, u64, u64> {
        let cfg = GroupHashConfig::new(64, 16);
        ShardedGroupHash::create(n_shards, cfg, |_, size| {
            SimPmem::new(size, SimConfig::fast_test())
        })
        .unwrap()
    }

    #[test]
    fn single_thread_roundtrip() {
        let t = build(4);
        for k in 0..500u64 {
            t.insert(k, k * 2).unwrap();
        }
        assert_eq!(t.len(), 500);
        for k in 0..500u64 {
            assert_eq!(t.get(&k), Some(k * 2));
        }
        for k in 0..250u64 {
            assert!(t.remove(&k));
        }
        assert_eq!(t.len(), 250);
        t.check_consistency().unwrap();
    }

    #[test]
    fn single_writer_cas_path_never_fails_a_cas() {
        let t = build(4);
        for k in 0..800u64 {
            t.insert(k, k).unwrap();
        }
        for k in 0..400u64 {
            assert!(t.remove(&k));
        }
        let c = t.concurrency();
        assert_eq!(c.cas_failures, 0, "single writer never loses a CAS");
        assert_eq!(c.latch_waits, 0, "plain ops never fell back to the latch");
        assert_eq!(c.lock_waits, 0);
    }

    #[test]
    fn keys_spread_across_shards() {
        let t = build(8);
        for k in 0..2000u64 {
            t.insert(k, k).unwrap();
        }
        // Every shard should own a non-trivial share.
        let per_shard: Vec<u64> = (0..t.shard_count())
            .map(|i| {
                let g = t.read_inner(i);
                g.table.len(&g.pm)
            })
            .collect();
        assert!(per_shard.iter().all(|&n| n > 100), "{per_shard:?}");
    }

    #[test]
    fn sequences_are_even_when_quiescent() {
        let t = build(4);
        for k in 0..200u64 {
            t.insert(k, k).unwrap();
            assert!(t.remove(&k));
        }
        for s in &t.shards {
            assert_eq!(s.seq.load(Ordering::Relaxed) & 1, 0);
        }
        // No readers raced any exclusive writer in this test.
        assert_eq!(t.concurrency().seqlock_retries, 0);
    }

    #[test]
    fn concurrent_inserts_and_reads() {
        let t = Arc::new(build(8));
        let threads: Vec<_> = (0..4u64)
            .map(|tid| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let k = tid * 10_000 + i;
                        t.insert(k, k + 1).unwrap();
                        assert_eq!(t.get(&k), Some(k + 1));
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(t.len(), 2000);
        t.check_consistency().unwrap();
    }

    #[test]
    fn concurrent_mixed_workload() {
        let t = Arc::new(build(4));
        for k in 0..1000u64 {
            t.insert(k, k).unwrap();
        }
        let threads: Vec<_> = (0..4u64)
            .map(|tid| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    let lo = tid * 250;
                    for k in lo..lo + 250 {
                        assert_eq!(t.get(&k), Some(k));
                        assert!(t.remove(&k));
                        assert_eq!(t.get(&k), None);
                        t.insert(k, k + 7).unwrap();
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(t.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(t.get(&k), Some(k + 7));
        }
        t.check_consistency().unwrap();
    }

    #[test]
    fn update_in_place_and_insert_unique_roundtrip() {
        let t = build(4);
        t.insert_unique(5, 50).unwrap();
        assert_eq!(
            t.insert_unique(5, 51),
            Err(nvm_table::InsertError::DuplicateKey)
        );
        assert_eq!(t.get(&5), Some(50));
        assert!(t.update_in_place(&5, 500));
        assert_eq!(t.get(&5), Some(500));
        assert!(!t.update_in_place(&6, 1));
        assert_eq!(t.len(), 1);
        t.check_consistency().unwrap();
    }

    #[test]
    fn concurrent_updates_in_place() {
        // Each thread owns a disjoint key range: inserts via insert_unique,
        // then repeatedly updates in place while other threads hammer
        // their own ranges; values must never tear or leak across keys.
        let t = Arc::new(build(8));
        let threads: Vec<_> = (0..4u64)
            .map(|tid| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    let lo = tid * 1000;
                    for k in lo..lo + 200 {
                        t.insert_unique(k, k).unwrap();
                        assert_eq!(t.insert_unique(k, 0), Err(InsertError::DuplicateKey));
                    }
                    for round in 1..=5u64 {
                        for k in lo..lo + 200 {
                            assert!(t.update_in_place(&k, k + round));
                            assert_eq!(t.get(&k), Some(k + round));
                        }
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(t.len(), 800);
        for tid in 0..4u64 {
            for k in tid * 1000..tid * 1000 + 200 {
                assert_eq!(t.get(&k), Some(k + 5));
            }
        }
        t.check_consistency().unwrap();
    }

    #[test]
    fn sharded_fingerprint_mode_roundtrip() {
        use crate::config::FpMode;
        let cfg = GroupHashConfig::new(1 << 10, 64).with_fp_mode(FpMode::On);
        let t: ShardedGroupHash<SimPmem, u64, u64> =
            ShardedGroupHash::create(4, cfg, |_, size| SimPmem::new(size, SimConfig::fast_test()))
                .unwrap();
        for k in 0..800u64 {
            t.insert(k, k * 2).unwrap();
        }
        for k in 0..400u64 {
            assert!(t.remove(&k));
        }
        for k in 400..800u64 {
            assert_eq!(t.get(&k), Some(k * 2));
            assert!(t.update_in_place(&k, k));
        }
        t.recover_all();
        for k in 400..800u64 {
            assert_eq!(t.get(&k), Some(k));
        }
        // check_consistency verifies the per-shard fingerprint caches.
        t.check_consistency().unwrap();
    }

    #[test]
    fn batched_ops_split_by_shard() {
        let t = build(4);
        let items: Vec<(u64, u64)> = (0..600u64).map(|k| (k, k * 3)).collect();
        t.insert_batch(&items).unwrap();
        assert_eq!(t.len(), 600);
        for k in 0..600u64 {
            assert_eq!(t.get(&k), Some(k * 3));
        }
        let keys: Vec<u64> = (0..300u64).collect();
        assert_eq!(t.remove_batch(&keys), 300);
        assert_eq!(t.len(), 300);
        assert_eq!(t.remove_batch(&keys), 0, "already removed");
        t.check_consistency().unwrap();
    }

    #[test]
    fn get_batch_matches_sequential_gets_across_shards() {
        let t = build(4);
        for k in 0..600u64 {
            t.insert(k, k * 3).unwrap();
        }
        // Mix of hits, misses, and duplicates, in caller order.
        let keys: Vec<u64> = (0..800u64).chain([5, 5, 599]).collect();
        let batch = t.get_batch(&keys);
        assert_eq!(batch.len(), keys.len());
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(batch[i], t.get(k), "key {k}");
        }
        assert_eq!(t.get_batch(&[]), Vec::<Option<u64>>::new());
    }

    #[test]
    fn concurrent_get_batch_sees_committed_values_only() {
        // Writers churn disjoint ranges while readers batch-read across
        // all of them; every answer must be a value some writer committed
        // for that exact key.
        let t = Arc::new(build(4));
        for k in 0..256u64 {
            t.insert(k, k * 1_000_000).unwrap();
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for round in 1..=200u64 {
                    for k in 0..256u64 {
                        t.update_in_place(&k, k * 1_000_000 + round);
                    }
                }
                stop.store(true, Ordering::Release);
            })
        };
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let t = Arc::clone(&t);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let keys: Vec<u64> = (0..300u64).collect(); // 256.. miss
                    while !stop.load(Ordering::Acquire) {
                        for (k, v) in keys.iter().zip(t.get_batch(&keys)) {
                            if *k < 256 {
                                let v = v.expect("inserted key vanished");
                                assert_eq!(v / 1_000_000, *k, "torn or cross-key value {v}");
                                assert!(v % 1_000_000 <= 200, "phantom round in {v}");
                            } else {
                                assert_eq!(v, None, "phantom key {k}");
                            }
                        }
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        t.check_consistency().unwrap();
    }

    #[test]
    fn batch_routing_preserves_item_order_within_a_shard() {
        // Duplicate keys in one batch land in the same shard; the routing
        // permutation must keep them in caller order so "last write wins"
        // semantics match the unsharded table's sequential batch.
        let t = build(4);
        let items: Vec<(u64, u64)> = (0..50u64)
            .flat_map(|k| [(k, k), (k, k + 1000)])
            .collect();
        // The unsharded batch rejects duplicates; route through singles
        // semantics instead: insert first copies, then batch-remove.
        let firsts: Vec<(u64, u64)> = (0..50u64).map(|k| (k, k)).collect();
        t.insert_batch(&firsts).unwrap();
        let order = t.route_by_shard(items.iter().map(|(k, _)| k));
        for w in order.windows(2) {
            assert!(w[0] <= w[1], "sorted by (shard, original index)");
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "caller order kept within a shard");
            }
        }
        assert_eq!(t.remove_batch(&(0..50u64).collect::<Vec<_>>()), 50);
    }

    #[test]
    fn recover_all_shards() {
        let t = build(3);
        for k in 0..300u64 {
            t.insert(k, k).unwrap();
        }
        t.recover_all();
        assert_eq!(t.len(), 300);
        t.check_consistency().unwrap();
    }

    #[test]
    fn readers_race_writers_without_torn_values() {
        // One writer cycles a key range while readers spin on get: every
        // observed value must be one some writer wrote for that exact key.
        let t = Arc::new(build(2));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for round in 0..200u64 {
                    for k in 0..64u64 {
                        if round == 0 {
                            t.insert(k, k * 1_000_000 + round).unwrap();
                        } else {
                            t.update_in_place(&k, k * 1_000_000 + round);
                        }
                    }
                }
                stop.store(true, Ordering::Release);
            })
        };
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let t = Arc::clone(&t);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        for k in 0..64u64 {
                            if let Some(v) = t.get(&k) {
                                assert_eq!(v / 1_000_000, k, "torn or cross-key value {v}");
                                assert!(v % 1_000_000 < 200, "phantom round in {v}");
                            }
                        }
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        t.check_consistency().unwrap();
    }

    #[test]
    fn shards_grow_online_past_initial_capacity() {
        let t = build_small(2);
        // 2 shards × 128 cells: 2000 keys force several doublings each.
        for k in 0..2000u64 {
            t.insert(k, k * 3).unwrap();
        }
        assert_eq!(t.len(), 2000);
        for k in 0..2000u64 {
            assert_eq!(t.get(&k), Some(k * 3), "key {k}");
        }
        assert!(t.concurrency().migration_steps > 0, "growth must migrate");
        // Finish any pending drains, then verify consistency everywhere.
        for si in 0..t.shard_count() {
            while t.expand_step(si, u64::MAX) {}
        }
        t.check_consistency().unwrap();
    }

    #[test]
    fn forced_growth_drains_incrementally_while_serving() {
        let t = build_small(1);
        for k in 0..100u64 {
            t.insert(k, k + 1).unwrap();
        }
        t.grow_shard(0);
        assert!(t.migration_pending(0));
        // Every key answers while the drain is parked mid-flight.
        for k in 0..100u64 {
            assert_eq!(t.get(&k), Some(k + 1), "key {k} lost mid-drain");
        }
        // Step the drain a few entries at a time, reading throughout.
        let mut steps = 0u64;
        while t.expand_step(0, 8) {
            steps += 1;
            assert!(steps < 10_000, "drain does not terminate");
            let probe = (steps * 13) % 100;
            assert_eq!(t.get(&probe), Some(probe + 1));
        }
        assert!(steps > 1, "bounded steps must take several calls");
        assert!(!t.migration_pending(0));
        assert_eq!(t.len(), 100);
        t.check_consistency().unwrap();
        // Mutations after the drain go back to the CAS fast path.
        let before = t.concurrency().latch_waits;
        t.insert(5000, 1).unwrap();
        assert_eq!(t.concurrency().latch_waits, before);
    }

    #[test]
    fn concurrent_writers_survive_mid_stream_expansion() {
        // Four writers insert disjoint ranges while the main thread keeps
        // forcing expansions and stepping drains: nothing may be lost.
        let t = Arc::new(build_small(4));
        let threads: Vec<_> = (0..4u64)
            .map(|tid| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..400u64 {
                        let k = tid * 100_000 + i;
                        t.insert(k, k + 1).unwrap();
                        if i % 64 == 0 {
                            assert!(t.remove(&k));
                            t.insert(k, k + 1).unwrap();
                        }
                    }
                })
            })
            .collect();
        for round in 0..8 {
            for si in 0..t.shard_count() {
                if round % 4 == 0 && !t.migration_pending(si) {
                    t.grow_shard(si);
                }
                t.expand_step(si, 16);
            }
            std::thread::yield_now();
        }
        for th in threads {
            th.join().unwrap();
        }
        for si in 0..t.shard_count() {
            while t.expand_step(si, u64::MAX) {}
        }
        assert_eq!(t.len(), 1600);
        for tid in 0..4u64 {
            for i in 0..400u64 {
                let k = tid * 100_000 + i;
                assert_eq!(t.get(&k), Some(k + 1), "lost key {k}");
            }
        }
        t.check_consistency().unwrap();
    }

    #[test]
    fn undo_log_config_routes_through_exclusive_latch() {
        use crate::config::CommitStrategy;
        // The journaling ablation cannot run the CAS path; plain ops must
        // transparently use the exclusive latch instead.
        let cfg = GroupHashConfig::new(1 << 9, 64).with_commit(CommitStrategy::UndoLog);
        let t: ShardedGroupHash<SimPmem, u64, u64> =
            ShardedGroupHash::create(2, cfg, |_, size| SimPmem::new(size, SimConfig::fast_test()))
                .unwrap();
        for k in 0..300u64 {
            t.insert(k, k).unwrap();
        }
        assert!(t.concurrency().latch_waits > 0, "ablation must use latch");
        for k in 0..300u64 {
            assert_eq!(t.get(&k), Some(k));
            assert!(t.remove(&k));
        }
        t.check_consistency().unwrap();
    }
}
