//! Capacity expansion.
//!
//! Algorithm 1 returns *table full* when a key's matched group has no free
//! cell; the paper notes "the capacity of the hash table needs to be
//! expanded" without giving a mechanism. This module provides the natural
//! one: build a larger table in a fresh region and rehash every entry into
//! it. The rehash is crash-safe without any extra machinery because the
//! source table is never modified and the destination is only *valid* once
//! its header (written last during `create`) carries the magic word; a
//! crash mid-expansion simply leaves the old table authoritative.

use crate::config::GroupHashConfig;
use crate::table::GroupHash;
use nvm_hashfn::{HashKey, Pod};
use nvm_pmem::{Pmem, Region};
use nvm_table::{InsertError, TableError};

impl<P: Pmem, K: HashKey, V: Pod> GroupHash<P, K, V> {
    /// Creates a new table in `dst_region` with `dst_config` and rehashes
    /// every entry of `self` into it. Returns the new table.
    ///
    /// Fails with [`InsertError::TableFull`] if the destination cannot fit
    /// some entry (callers normally double `cells_per_level`).
    pub fn expand_into(
        &self,
        pm: &mut P,
        dst_region: Region,
        dst_config: GroupHashConfig,
    ) -> Result<GroupHash<P, K, V>, ExpandError> {
        let mut dst =
            GroupHash::create(pm, dst_region, dst_config).map_err(ExpandError::Create)?;
        // Collect first: both tables live in the same pool and the visitor
        // borrows `pm` for reads.
        let mut entries = Vec::with_capacity(self.len(pm) as usize);
        self.for_each_entry(pm, |k, v| entries.push((k, v)));
        for (k, v) in entries {
            dst.insert(pm, k, v).map_err(ExpandError::Insert)?;
        }
        Ok(dst)
    }

    /// Convenience: a doubled-geometry configuration preserving seed and
    /// ablation knobs.
    pub fn doubled_config(&self) -> GroupHashConfig {
        let mut c = *self.config();
        c.cells_per_level *= 2;
        c
    }
}

/// Why an expansion failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExpandError {
    /// Destination region/config invalid.
    Create(TableError),
    /// An entry did not fit in the destination (pathological geometry).
    Insert(InsertError),
}

impl std::fmt::Display for ExpandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExpandError::Create(e) => write!(f, "creating destination table: {e}"),
            ExpandError::Insert(e) => write!(f, "rehashing entry: {e}"),
        }
    }
}

impl std::error::Error for ExpandError {}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_pmem::{SimConfig, SimPmem};
    use nvm_table::HashScheme;

    #[test]
    fn expansion_preserves_entries() {
        let cfg = GroupHashConfig::new(128, 16);
        let small = GroupHash::<SimPmem, u64, u64>::required_size(&cfg);
        let big_cfg = GroupHashConfig::new(256, 16).with_seed(cfg.seed);
        let big = GroupHash::<SimPmem, u64, u64>::required_size(&big_cfg);
        let mut pm = SimPmem::new(small + big + 128, SimConfig::fast_test());

        let mut t =
            GroupHash::<SimPmem, u64, u64>::create(&mut pm, Region::new(0, small), cfg).unwrap();
        for k in 0..100u64 {
            t.insert(&mut pm, k, k * 3).unwrap();
        }
        let t2 = t
            .expand_into(&mut pm, Region::new(small, big + 128), big_cfg)
            .unwrap();
        assert_eq!(t2.len(&pm), 100);
        for k in 0..100u64 {
            assert_eq!(t2.get(&pm, &k), Some(k * 3));
        }
        t2.check_consistency(&pm).unwrap();
        // Source untouched.
        assert_eq!(t.len(&pm), 100);
        t.check_consistency(&pm).unwrap();
    }

    #[test]
    fn doubled_config_doubles_cells() {
        let cfg = GroupHashConfig::new(128, 16);
        let size = GroupHash::<SimPmem, u64, u64>::required_size(&cfg);
        let mut pm = SimPmem::new(size, SimConfig::fast_test());
        let t = GroupHash::<SimPmem, u64, u64>::create(&mut pm, Region::new(0, size), cfg)
            .unwrap();
        let d = t.doubled_config();
        assert_eq!(d.cells_per_level, 256);
        assert_eq!(d.group_size, 16);
        d.validate().unwrap();
    }

    #[test]
    fn expansion_preserves_fingerprint_cache() {
        use crate::config::FpMode;
        let cfg = GroupHashConfig::new(128, 16).with_fp_mode(FpMode::On);
        let small = GroupHash::<SimPmem, u64, u64>::required_size(&cfg);
        let big_cfg = GroupHashConfig::new(256, 16)
            .with_seed(cfg.seed)
            .with_fp_mode(FpMode::On);
        let big = GroupHash::<SimPmem, u64, u64>::required_size(&big_cfg);
        let mut pm = SimPmem::new(small + big + 128, SimConfig::fast_test());

        let mut t =
            GroupHash::<SimPmem, u64, u64>::create(&mut pm, Region::new(0, small), cfg).unwrap();
        for k in 0..100u64 {
            t.insert(&mut pm, k, k * 3).unwrap();
        }
        let t2 = t
            .expand_into(&mut pm, Region::new(small, big + 128), big_cfg)
            .unwrap();
        assert_eq!(t2.config().fp, FpMode::On);
        // The destination's volatile tag cache was maintained insert-by-
        // insert during the rehash; verify it agrees with the pool.
        t2.verify_fp_cache(&pm).unwrap();
        t2.check_consistency(&pm).unwrap();
        for k in 0..100u64 {
            assert_eq!(t2.get(&pm, &k), Some(k * 3));
        }
    }

    #[test]
    fn expansion_after_table_full() {
        // Fill a single-group table until full, then expand and continue.
        let cfg = GroupHashConfig::new(32, 32);
        let small = GroupHash::<SimPmem, u64, u64>::required_size(&cfg);
        let big_cfg = GroupHashConfig::new(128, 32);
        let big = GroupHash::<SimPmem, u64, u64>::required_size(&big_cfg);
        let mut pm = SimPmem::new(small + big + 128, SimConfig::fast_test());
        let mut t =
            GroupHash::<SimPmem, u64, u64>::create(&mut pm, Region::new(0, small), cfg).unwrap();
        let mut k = 0u64;
        let full_at = loop {
            match t.insert(&mut pm, k, k) {
                Ok(()) => k += 1,
                Err(InsertError::TableFull) => break k,
                Err(e) => panic!("unexpected error: {e}"),
            }
        };
        let mut t2 = t
            .expand_into(&mut pm, Region::new(small, big + 128), big_cfg)
            .unwrap();
        // The key that failed now fits.
        t2.insert(&mut pm, full_at, full_at).unwrap();
        assert_eq!(t2.len(&pm), t.len(&pm) + 1);
        t2.check_consistency(&pm).unwrap();
    }
}
