//! The group hash table: layout, Algorithms 1–4, and the
//! [`HashScheme`] implementation.

use crate::config::{ChoiceMode, CommitStrategy, CountMode, GroupHashConfig, ProbeLayout};
use nvm_hashfn::{HashKey, HashPair, Pod};
use nvm_metrics::SchemeInstrumentation;
use nvm_pmem::{Pmem, Region, RegionAllocator, CACHELINE};
use nvm_table::{CellArray, HashScheme, InsertError, PmemBitmap, TableHeader};
use nvm_wal::UndoLog;
use std::marker::PhantomData;

/// Magic word identifying a group-hash header ("GRPHASH1").
const MAGIC: u64 = 0x4752_5048_4153_4831;

/// Reserved undo-log footprint (used only by the forced-logging ablation,
/// but always carved so the layout is config-independent).
const LOG_BYTES: usize = 1024;

/// Which level a cell index refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Level {
    One,
    Two,
}

/// The paper's hash table. See the crate docs for the design; all
/// persistent state lives in the pool region handed to
/// [`GroupHash::create`], and [`GroupHash::open`] reconstructs the table
/// from that region alone.
#[derive(Debug)]
pub struct GroupHash<P: Pmem, K: HashKey, V: Pod> {
    config: GroupHashConfig,
    hash: HashPair,
    header: TableHeader,
    bitmap1: PmemBitmap,
    bitmap2: PmemBitmap,
    cells1: CellArray<K, V>,
    cells2: CellArray<K, V>,
    log: Option<UndoLog>,
    /// Cached count for [`CountMode::Volatile`].
    volatile_count: u64,
    /// Probe/occupancy/displacement recording. Derived purely from
    /// arithmetic the operations already do — recording never touches the
    /// pool, so instrumented runs report identical `PmemStats`.
    #[cfg(feature = "instrument")]
    instr: SchemeInstrumentation,
    region: Region,
    _marker: PhantomData<fn(&mut P)>,
}

impl<P: Pmem, K: HashKey, V: Pod> GroupHash<P, K, V> {
    /// Carves `region` into the table's sub-regions. Deterministic, so
    /// `open` can redo it from persisted geometry.
    fn layout(
        region: Region,
        n: u64,
    ) -> (Region, Region, Region, Region, Region, Region) {
        let mut alloc = RegionAllocator::new(region.off, region.end());
        let header = alloc.alloc_lines(TableHeader::SIZE);
        let bitmap1 = alloc.alloc_lines(PmemBitmap::region_size(n).max(8));
        let bitmap2 = alloc.alloc_lines(PmemBitmap::region_size(n).max(8));
        let cells1 = alloc.alloc_lines(CellArray::<K, V>::region_size(n));
        let cells2 = alloc.alloc_lines(CellArray::<K, V>::region_size(n));
        let log = alloc.alloc_lines(LOG_BYTES);
        (header, bitmap1, bitmap2, cells1, cells2, log)
    }

    /// Pool bytes needed for a table with this configuration.
    pub fn required_size(config: &GroupHashConfig) -> usize {
        let n = config.cells_per_level;
        TableHeader::SIZE
            + 2 * (PmemBitmap::region_size(n).max(8) + CACHELINE)
            + 2 * (CellArray::<K, V>::region_size(n) + CACHELINE)
            + LOG_BYTES
            + 2 * CACHELINE
    }

    fn assemble(region: Region, config: GroupHashConfig, header: TableHeader) -> Self {
        let n = config.cells_per_level;
        let (_, b1, b2, c1, c2, log_r) = Self::layout(region, n);
        let log = match config.commit {
            CommitStrategy::UndoLog => Some(UndoLog::open(log_r)),
            CommitStrategy::AtomicBitmap => None,
        };
        GroupHash {
            config,
            hash: HashPair::from_seed(config.seed),
            header,
            bitmap1: PmemBitmap::attach(b1, n),
            bitmap2: PmemBitmap::attach(b2, n),
            cells1: CellArray::attach(c1, n),
            cells2: CellArray::attach(c2, n),
            log,
            volatile_count: 0,
            #[cfg(feature = "instrument")]
            instr: SchemeInstrumentation::new(config.group_size as usize),
            region,
            _marker: PhantomData,
        }
    }

    /// Records a completed lookup-style probe sequence (no-op without the
    /// `instrument` feature).
    #[inline]
    fn note_probe(&self, cells: u64) {
        #[cfg(feature = "instrument")]
        self.instr.record_probe(cells);
        #[cfg(not(feature = "instrument"))]
        let _ = cells;
    }

    /// Records one insert attempt: cells examined, occupied cells stepped
    /// over before placement, and the scheme's displacement count (always
    /// 0 — group hashing never relocates entries).
    #[inline]
    fn note_insert(&self, probes: u64, occupied: u64) {
        #[cfg(feature = "instrument")]
        {
            self.instr.record_probe(probes);
            self.instr.record_occupancy(occupied);
            self.instr.record_displacement(0);
        }
        #[cfg(not(feature = "instrument"))]
        let _ = (probes, occupied);
    }

    /// Creates and initializes a fresh table in `region`.
    pub fn create(pm: &mut P, region: Region, config: GroupHashConfig) -> Result<Self, String> {
        config.validate()?;
        let need = Self::required_size(&config);
        if region.len < need {
            return Err(format!("region too small: {} < {need}", region.len));
        }
        let n = config.cells_per_level;
        let (h_r, b1, b2, _c1, _c2, log_r) = Self::layout(region, n);
        // Cells are left as-is: the bitmap decides occupancy, and recovery
        // only trusts cells whose bit is set.
        PmemBitmap::create(pm, b1, n);
        PmemBitmap::create(pm, b2, n);
        if config.commit == CommitStrategy::UndoLog {
            UndoLog::create(pm, log_r);
        }
        let header = TableHeader::create(
            pm,
            h_r,
            MAGIC,
            config.seed,
            &[n, config.group_size, K::SIZE as u64, V::SIZE as u64, config.flags()],
        );
        Ok(Self::assemble(region, config, header))
    }

    /// Header location (first allocation of `layout`), computable without
    /// the geometry — `open` must validate the header before running the
    /// full layout, or a bogus region would panic instead of erroring.
    fn header_region(region: Region) -> Region {
        Region::new(
            nvm_pmem::align_up(region.off, CACHELINE),
            TableHeader::SIZE,
        )
    }

    /// Re-opens a table previously created in `region` (e.g. after a
    /// crash). Call [`GroupHash::recover`] before using it.
    pub fn open(pm: &mut P, region: Region) -> Result<Self, String> {
        let h_r = Self::header_region(region);
        if !region.contains(h_r.off, h_r.len) {
            return Err("region too small for a table header".into());
        }
        let header = TableHeader::open(pm, h_r, MAGIC)?;
        let n = header.geometry(pm, 0);
        let group_size = header.geometry(pm, 1);
        let key_size = header.geometry(pm, 2);
        let value_size = header.geometry(pm, 3);
        let flags = header.geometry(pm, 4);
        if key_size != K::SIZE as u64 || value_size != V::SIZE as u64 {
            return Err(format!(
                "type mismatch: persisted K/V sizes {key_size}/{value_size}, \
                 requested {}/{}",
                K::SIZE,
                V::SIZE
            ));
        }
        let seed = header.seed(pm);
        let config = GroupHashConfig::from_persisted(n, group_size, seed, flags);
        config.validate()?;
        if region.len < Self::required_size(&config) {
            return Err("region smaller than persisted geometry requires".into());
        }
        let mut t = Self::assemble(region, config, header);
        if t.config.count_mode == CountMode::Volatile {
            t.volatile_count = t.bitmap1.count_ones(pm) + t.bitmap2.count_ones(pm);
        }
        Ok(t)
    }

    /// The configuration (as persisted).
    pub fn config(&self) -> &GroupHashConfig {
        &self.config
    }

    /// The pool region this table occupies.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Level-1 slot for `key` (the paper's `k = h(key)`).
    #[inline]
    pub fn slot_of(&self, key: &K) -> u64 {
        self.hash.h1(key) & (self.config.cells_per_level - 1)
    }

    /// Second candidate slot under [`ChoiceMode::TwoChoice`]; `None` in the
    /// paper's single-hash design or when both hashes coincide.
    #[inline]
    pub fn slot2_of(&self, key: &K) -> Option<u64> {
        match self.config.choice {
            ChoiceMode::Single => None,
            ChoiceMode::TwoChoice => {
                let s2 = self.hash.h2(key) & (self.config.cells_per_level - 1);
                (s2 != self.slot_of(key)).then_some(s2)
            }
        }
    }

    /// Group number of level-1 slot `k`.
    #[inline]
    fn group_of(&self, k: u64) -> u64 {
        k / self.config.group_size
    }

    /// The `i`-th level-2 cell of group `g` under the configured layout.
    #[inline]
    fn group_cell(&self, g: u64, i: u64) -> u64 {
        match self.config.probe {
            ProbeLayout::Contiguous => g * self.config.group_size + i,
            ProbeLayout::Strided => g + i * self.config.n_groups(),
        }
    }

    /// Group that owns level-2 cell `idx` (inverse of `group_cell`).
    #[inline]
    fn group_of_l2(&self, idx: u64) -> u64 {
        match self.config.probe {
            ProbeLayout::Contiguous => idx / self.config.group_size,
            ProbeLayout::Strided => idx % self.config.n_groups(),
        }
    }

    fn bump_count(&mut self, pm: &mut P, up: bool) {
        match self.config.count_mode {
            CountMode::Persistent => {
                if up {
                    self.header.inc_count(pm);
                } else {
                    self.header.dec_count(pm);
                }
            }
            CountMode::Volatile => {
                if up {
                    self.volatile_count += 1;
                } else {
                    self.volatile_count -= 1;
                }
            }
        }
    }

    /// Sets the count to an absolute value with the usual atomic+persist
    /// commit (bulk operations).
    pub(crate) fn set_count_committed(&mut self, pm: &mut P, count: u64) {
        match self.config.count_mode {
            CountMode::Persistent => self.header.set_count(pm, count),
            CountMode::Volatile => self.volatile_count = count,
        }
    }

    fn level_parts(&self, level: Level) -> (PmemBitmap, CellArray<K, V>) {
        match level {
            Level::One => (self.bitmap1, self.cells1),
            Level::Two => (self.bitmap2, self.cells2),
        }
    }

    /// Commits an insert at `(level, idx)`: Algorithm 1 lines 4–9 / 16–21.
    fn commit_insert(&mut self, pm: &mut P, level: Level, idx: u64, key: &K, value: &V) {
        let (bitmap, cells) = self.level_parts(level);
        if self.config.commit == CommitStrategy::UndoLog {
            // Ablation: duplicate-copy the touched ranges first.
            let count_off = self.header.count_off();
            let log = self.log.as_mut().expect("undo log present");
            log.begin(pm);
            log.record(pm, cells.cell_off(idx), cells.entry_len());
            log.record(pm, bitmap.word_off_of(idx), 8);
            if self.config.count_mode == CountMode::Persistent {
                log.record(pm, count_off, 8);
            }
            log.seal(pm);
        }
        cells.write_entry(pm, idx, key, value);
        cells.persist_entry(pm, idx);
        bitmap.set_and_persist(pm, idx, true);
        self.bump_count(pm, true);
        if self.config.commit == CommitStrategy::UndoLog {
            self.log.as_mut().expect("undo log present").commit(pm);
        }
    }

    /// Commits a delete at `(level, idx)`: Algorithm 3 lines 4–9 / 16–21.
    /// Note the inverted order versus insert: the bit is cleared *first*,
    /// so a crash mid-erase leaves an unreferenced (bit = 0) cell that
    /// recovery wipes.
    fn commit_delete(&mut self, pm: &mut P, level: Level, idx: u64) {
        let (bitmap, cells) = self.level_parts(level);
        if self.config.commit == CommitStrategy::UndoLog {
            let count_off = self.header.count_off();
            let log = self.log.as_mut().expect("undo log present");
            log.begin(pm);
            log.record(pm, bitmap.word_off_of(idx), 8);
            log.record(pm, cells.cell_off(idx), cells.entry_len());
            if self.config.count_mode == CountMode::Persistent {
                log.record(pm, count_off, 8);
            }
            log.seal(pm);
        }
        bitmap.set_and_persist(pm, idx, false);
        cells.clear_entry(pm, idx);
        cells.persist_entry(pm, idx);
        self.bump_count(pm, false);
        if self.config.commit == CommitStrategy::UndoLog {
            self.log.as_mut().expect("undo log present").commit(pm);
        }
    }

    /// Finds an empty level-2 cell in group `g`, honouring the probe
    /// layout. Also returns how many cells were examined: the offset of
    /// the free cell plus one, or the whole group on a miss (every cell
    /// examined before the free one is occupied, which is what the
    /// occupancy histogram records).
    fn find_free_in_group(&self, pm: &mut P, g: u64) -> (Option<u64>, u64) {
        match self.config.probe {
            ProbeLayout::Contiguous => {
                let start = g * self.config.group_size;
                match self.bitmap2.find_zero_in_range(pm, start, self.config.group_size) {
                    Some(idx) => (Some(idx), idx - start + 1),
                    None => (None, self.config.group_size),
                }
            }
            ProbeLayout::Strided => {
                for i in 0..self.config.group_size {
                    let idx = self.group_cell(g, i);
                    if !self.bitmap2.get(pm, idx) {
                        return (Some(idx), i + 1);
                    }
                }
                (None, self.config.group_size)
            }
        }
    }

    /// Scans group `g`'s level-2 cells for `key`; returns the cell index.
    ///
    /// In the contiguous layout the scan is word-wise: one bitmap read
    /// covers 64 cells, and the occupied cells are then compared in
    /// ascending address order — an access pattern the hardware stream
    /// prefetcher locks onto (the mechanism behind the paper's
    /// "a single memory access can prefetch the following cells").
    /// The second return value counts key comparisons performed (occupied
    /// cells whose key bytes were read), feeding the probe histogram.
    fn find_key_in_group(&self, pm: &mut P, g: u64, key: &K) -> (Option<u64>, u64) {
        let mut compared = 0u64;
        match self.config.probe {
            ProbeLayout::Contiguous => {
                let start = g * self.config.group_size;
                let end = start + self.config.group_size;
                let mut base = start;
                while base < end {
                    let mut word = self.bitmap2.word_containing(pm, base);
                    // Mask off bits outside [start, end) within this word
                    // (only relevant for groups smaller than 64).
                    let lo = base % 64;
                    if lo != 0 {
                        word &= u64::MAX << lo;
                    }
                    let word_base = base - lo;
                    let span = (end - word_base).min(64);
                    if span < 64 {
                        word &= (1u64 << span) - 1;
                    }
                    while word != 0 {
                        let bit = word.trailing_zeros() as u64;
                        let idx = word_base + bit;
                        compared += 1;
                        if self.cells2.read_key(pm, idx) == *key {
                            return (Some(idx), compared);
                        }
                        word &= word - 1;
                    }
                    base = word_base + 64;
                }
                (None, compared)
            }
            ProbeLayout::Strided => {
                for i in 0..self.config.group_size {
                    let idx = self.group_cell(g, i);
                    if self.bitmap2.get(pm, idx) {
                        compared += 1;
                        if self.cells2.read_key(pm, idx) == *key {
                            return (Some(idx), compared);
                        }
                    }
                }
                (None, compared)
            }
        }
    }

    /// Candidate level-1 slots for `key`, primary first.
    #[inline]
    fn candidate_slots(&self, key: &K) -> (u64, Option<u64>) {
        (self.slot_of(key), self.slot2_of(key))
    }

    /// Algorithm 1 (with the §4.4 two-choice extension when configured:
    /// try the second slot and the second matched group before giving up).
    pub fn insert(&mut self, pm: &mut P, key: K, value: V) -> Result<(), InsertError> {
        let (k1, k2) = self.candidate_slots(&key);
        let mut probes = 1u64; // the k1 slot check
        if !self.bitmap1.get(pm, k1) {
            self.commit_insert(pm, Level::One, k1, &key, &value);
            self.note_insert(probes, 0);
            return Ok(());
        }
        if let Some(k2) = k2 {
            probes += 1;
            if !self.bitmap1.get(pm, k2) {
                self.commit_insert(pm, Level::One, k2, &key, &value);
                self.note_insert(probes, 1);
                return Ok(());
            }
        }
        // Occupied cells stepped over so far: every checked level-1 slot.
        let mut occupied = probes;
        let g1 = self.group_of(k1);
        let (free, examined) = self.find_free_in_group(pm, g1);
        probes += examined;
        if let Some(idx) = free {
            occupied += examined - 1;
            self.commit_insert(pm, Level::Two, idx, &key, &value);
            self.note_insert(probes, occupied);
            return Ok(());
        }
        occupied += examined;
        if let Some(k2) = k2 {
            let g2 = self.group_of(k2);
            if g2 != g1 {
                let (free, examined) = self.find_free_in_group(pm, g2);
                probes += examined;
                if let Some(idx) = free {
                    occupied += examined - 1;
                    self.commit_insert(pm, Level::Two, idx, &key, &value);
                    self.note_insert(probes, occupied);
                    return Ok(());
                }
                occupied += examined;
            }
        }
        // "If there are no empty cells in the matched group, the
        // capacity of the hash table needs to be expanded."
        self.note_insert(probes, occupied);
        Err(InsertError::TableFull)
    }

    /// Algorithm 2.
    pub fn get(&self, pm: &mut P, key: &K) -> Option<V> {
        self.locate(pm, key)
            .map(|(level, idx)| match level {
                Level::One => self.cells1.read_value(pm, idx),
                Level::Two => self.cells2.read_value(pm, idx),
            })
    }

    /// Finds the `(level, cell)` holding `key`, probing the candidate
    /// slot(s) then the matched group(s). Records one probe-length sample
    /// (cells examined) per call when instrumentation is enabled.
    fn locate(&self, pm: &mut P, key: &K) -> Option<(Level, u64)> {
        let (k1, k2) = self.candidate_slots(key);
        let mut probes = 1u64;
        if self.bitmap1.get(pm, k1) && self.cells1.read_key(pm, k1) == *key {
            self.note_probe(probes);
            return Some((Level::One, k1));
        }
        if let Some(k2) = k2 {
            probes += 1;
            if self.bitmap1.get(pm, k2) && self.cells1.read_key(pm, k2) == *key {
                self.note_probe(probes);
                return Some((Level::One, k2));
            }
        }
        let g1 = self.group_of(k1);
        let (found, compared) = self.find_key_in_group(pm, g1, key);
        probes += compared;
        if let Some(idx) = found {
            self.note_probe(probes);
            return Some((Level::Two, idx));
        }
        if let Some(k2) = k2 {
            let g2 = self.group_of(k2);
            if g2 != g1 {
                let (found, compared) = self.find_key_in_group(pm, g2, key);
                probes += compared;
                if let Some(idx) = found {
                    self.note_probe(probes);
                    return Some((Level::Two, idx));
                }
            }
        }
        self.note_probe(probes);
        None
    }

    /// Updates the value of an existing `key` in place, returning whether
    /// the key was found.
    ///
    /// The value bytes are overwritten and persisted where they are. For
    /// values of 8 bytes or less this is **failure-atomic** (the write is
    /// a single aligned store — cells are 8-byte aligned and the key
    /// prefix is a multiple of 8 for all provided key types): a crash
    /// leaves either the old or the new value. For larger values a crash
    /// mid-update can tear at 8-byte granularity; use remove+insert (or
    /// an indirection pointer as `nvm-kv` does) when multi-word values
    /// must switch atomically.
    pub fn update_in_place(&mut self, pm: &mut P, key: &K, value: V) -> bool {
        match self.locate(pm, key) {
            Some((level, idx)) => {
                let (_, cells) = self.level_parts(level);
                let mut buf = [0u8; 64];
                debug_assert!(V::SIZE <= 64);
                value.write_to(&mut buf[..V::SIZE]);
                let off = cells.cell_off(idx) + K::SIZE;
                pm.write(off, &buf[..V::SIZE]);
                pm.persist(off, V::SIZE);
                true
            }
            None => false,
        }
    }

    /// Algorithm 3.
    pub fn remove(&mut self, pm: &mut P, key: &K) -> bool {
        match self.locate(pm, key) {
            Some((level, idx)) => {
                self.commit_delete(pm, level, idx);
                true
            }
            None => false,
        }
    }

    /// Algorithm 4: post-crash recovery. Scans the whole table, erases any
    /// cell whose occupancy bit is clear (wiping partial inserts/deletes),
    /// and recounts `count`. Idempotent; O(capacity).
    pub fn recover(&mut self, pm: &mut P) {
        // Forced-logging ablation: roll back an in-flight transaction
        // before trusting the cells.
        if let Some(log) = self.log.as_mut() {
            log.recover(pm);
        }
        let n = self.config.cells_per_level;
        let mut count = 0u64;
        for i in 0..n {
            for level in [Level::One, Level::Two] {
                let (bitmap, cells) = self.level_parts(level);
                if bitmap.get(pm, i) {
                    count += 1;
                } else if !cells.is_zeroed(pm, i) {
                    // The paper resets unconditionally; skipping the write
                    // when already zero is state-identical and saves NVM
                    // writes.
                    cells.clear_entry(pm, i);
                    cells.persist_entry(pm, i);
                }
            }
        }
        match self.config.count_mode {
            CountMode::Persistent => self.header.set_count(pm, count),
            CountMode::Volatile => self.volatile_count = count,
        }
    }

    /// Occupied cells.
    pub fn len(&self, pm: &mut P) -> u64 {
        match self.config.count_mode {
            CountMode::Persistent => self.header.count(pm),
            CountMode::Volatile => self.volatile_count,
        }
    }

    /// True when no cell is occupied.
    pub fn is_empty(&self, pm: &mut P) -> bool {
        self.len(pm) == 0
    }

    /// Total cells across both levels.
    pub fn capacity(&self) -> u64 {
        2 * self.config.cells_per_level
    }

    /// Visits every stored `(key, value)` pair. Level 1 first, then level
    /// 2, each in index order.
    pub fn for_each_entry(&self, pm: &mut P, mut f: impl FnMut(K, V)) {
        let n = self.config.cells_per_level;
        for level in [Level::One, Level::Two] {
            let (bitmap, cells) = self.level_parts(level);
            for i in 0..n {
                if bitmap.get(pm, i) {
                    f(cells.read_key(pm, i), cells.read_value(pm, i));
                }
            }
        }
    }

    // ---- crate-internal accessors for analysis/expansion ----

    pub(crate) fn parts(
        &self,
    ) -> (
        &GroupHashConfig,
        PmemBitmap,
        PmemBitmap,
        CellArray<K, V>,
        CellArray<K, V>,
    ) {
        (&self.config, self.bitmap1, self.bitmap2, self.cells1, self.cells2)
    }

    pub(crate) fn group_of_l2_cell(&self, idx: u64) -> u64 {
        self.group_of_l2(idx)
    }
}

impl<P: Pmem, K: HashKey, V: Pod> HashScheme<P, K, V> for GroupHash<P, K, V> {
    fn name(&self) -> &'static str {
        "group"
    }

    fn insert(&mut self, pm: &mut P, key: K, value: V) -> Result<(), InsertError> {
        GroupHash::insert(self, pm, key, value)
    }

    fn get(&self, pm: &mut P, key: &K) -> Option<V> {
        GroupHash::get(self, pm, key)
    }

    fn remove(&mut self, pm: &mut P, key: &K) -> bool {
        GroupHash::remove(self, pm, key)
    }

    fn len(&self, pm: &mut P) -> u64 {
        GroupHash::len(self, pm)
    }

    fn capacity(&self) -> u64 {
        GroupHash::capacity(self)
    }

    fn recover(&mut self, pm: &mut P) {
        GroupHash::recover(self, pm)
    }

    fn check_consistency(&self, pm: &mut P) -> Result<(), String> {
        crate::analysis::check_consistency(self, pm)
    }

    fn instrumentation(&self) -> Option<&SchemeInstrumentation> {
        #[cfg(feature = "instrument")]
        {
            Some(&self.instr)
        }
        #[cfg(not(feature = "instrument"))]
        {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{make, make_cfg};
    use nvm_pmem::{SimConfig, SimPmem};

    #[test]
    fn insert_get_remove_roundtrip() {
        let (mut pm, mut t, _) = make(256, 16);
        assert_eq!(t.get(&mut pm, &5), None);
        t.insert(&mut pm, 5, 50).unwrap();
        assert_eq!(t.get(&mut pm, &5), Some(50));
        assert_eq!(t.len(&mut pm), 1);
        assert!(t.remove(&mut pm, &5));
        assert_eq!(t.get(&mut pm, &5), None);
        assert_eq!(t.len(&mut pm), 0);
        assert!(!t.remove(&mut pm, &5));
    }

    #[test]
    fn collisions_go_to_matched_group() {
        let (mut pm, mut t, _) = make(256, 16);
        // Insert enough keys to force level-2 placements.
        for k in 0..200u64 {
            t.insert(&mut pm, k, k * 10).unwrap();
        }
        for k in 0..200u64 {
            assert_eq!(t.get(&mut pm, &k), Some(k * 10), "key {k}");
        }
        t.check_consistency(&mut pm).unwrap();
        assert_eq!(t.len(&mut pm), 200);
    }

    #[test]
    fn fill_to_capacity_overflows_gracefully() {
        let (mut pm, mut t, _) = make(64, 64); // single group: capacity 128
        let mut inserted = 0u64;
        let mut k = 0u64;
        while inserted < 128 {
            match t.insert(&mut pm, k, k) {
                Ok(()) => inserted += 1,
                Err(InsertError::TableFull) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
            k += 1;
        }
        // A single-group table fills its level-2 group completely; level 1
        // keeps only direct hits, so TableFull must appear at or before
        // 128 and after 64 (all level-2 cells usable).
        assert!(t.len(&mut pm) >= 64, "len {}", t.len(&mut pm));
        assert!(t.len(&mut pm) <= 128);
        t.check_consistency(&mut pm).unwrap();
        // Everything inserted is still retrievable.
        for key in 0..k {
            if t.get(&mut pm, &key).is_some() {
                assert_eq!(t.get(&mut pm, &key), Some(key));
            }
        }
    }

    #[test]
    fn duplicate_insert_shadows_until_removed() {
        // Paper semantics: insert doesn't probe for duplicates.
        let (mut pm, mut t, _) = make(256, 16);
        t.insert(&mut pm, 7, 1).unwrap();
        t.insert(&mut pm, 7, 2).unwrap();
        // One of the copies is visible; removing twice drains both.
        assert!(t.get(&mut pm, &7).is_some());
        assert!(t.remove(&mut pm, &7));
        assert!(t.get(&mut pm, &7).is_some());
        assert!(t.remove(&mut pm, &7));
        assert_eq!(t.get(&mut pm, &7), None);
    }

    #[test]
    fn insert_unique_rejects_duplicates() {
        let (mut pm, mut t, _) = make(256, 16);
        t.insert_unique(&mut pm, 7, 1).unwrap();
        assert_eq!(
            t.insert_unique(&mut pm, 7, 2),
            Err(InsertError::DuplicateKey)
        );
        assert_eq!(t.get(&mut pm, &7), Some(1));
    }

    #[test]
    fn update_in_place_swaps_value() {
        let (mut pm, mut t, _) = make(256, 16);
        for k in 0..120u64 {
            t.insert(&mut pm, k, k).unwrap();
        }
        assert!(t.update_in_place(&mut pm, &7, 700));
        assert_eq!(t.get(&mut pm, &7), Some(700));
        assert!(!t.update_in_place(&mut pm, &9999, 1));
        assert_eq!(t.len(&mut pm), 120);
        t.check_consistency(&mut pm).unwrap();
    }

    #[test]
    fn update_in_place_is_atomic_under_crash() {
        use nvm_pmem::{run_with_crash, CrashPlan, CrashResolution};
        let (pm0, t0, region) = make(64, 16);
        let mut pm0 = pm0;
        let mut t0 = t0;
        t0.insert(&mut pm0, 5, 111).unwrap();
        for at in 0..20 {
            let mut pm = pm0.clone();
            let mut t = GroupHash::<SimPmem, u64, u64>::open(&mut pm, region).unwrap();
            let base = pm.events();
            pm.set_crash_plan(Some(CrashPlan { at_event: base + at }));
            let done = run_with_crash(|| t.update_in_place(&mut pm, &5, 222)).is_ok();
            pm.crash(CrashResolution::Random(at));
            let mut t = GroupHash::<SimPmem, u64, u64>::open(&mut pm, region).unwrap();
            t.recover(&mut pm);
            let got = t.get(&mut pm, &5);
            assert!(
                got == Some(111) || got == Some(222),
                "torn update at +{at}: {got:?}"
            );
            if done {
                break;
            }
        }
    }

    #[test]
    fn open_matches_created_table() {
        let (mut pm, mut t, region) = make(256, 16);
        for k in 0..100u64 {
            t.insert(&mut pm, k, k + 1000).unwrap();
        }
        let t2 = GroupHash::<SimPmem, u64, u64>::open(&mut pm, region).unwrap();
        assert_eq!(t2.len(&mut pm), 100);
        for k in 0..100u64 {
            assert_eq!(t2.get(&mut pm, &k), Some(k + 1000));
        }
        t2.check_consistency(&mut pm).unwrap();
    }

    #[test]
    fn open_rejects_wrong_types() {
        let (mut pm, _t, region) = make(256, 16);
        assert!(GroupHash::<SimPmem, u64, u128>::open(&mut pm, region).is_err());
        assert!(GroupHash::<SimPmem, [u8; 16], u64>::open(&mut pm, region).is_err());
    }

    #[test]
    fn for_each_entry_visits_all() {
        let (mut pm, mut t, _) = make(256, 16);
        for k in 0..50u64 {
            t.insert(&mut pm, k, k * 2).unwrap();
        }
        let mut seen = std::collections::HashMap::new();
        t.for_each_entry(&mut pm, |k, v| {
            seen.insert(k, v);
        });
        assert_eq!(seen.len(), 50);
        for k in 0..50u64 {
            assert_eq!(seen[&k], k * 2);
        }
    }

    #[test]
    fn wide_key_value_types() {
        let cfg = GroupHashConfig::new(128, 16);
        let size = GroupHash::<SimPmem, [u8; 16], [u8; 16]>::required_size(&cfg);
        let mut pm = SimPmem::new(size, SimConfig::fast_test());
        let mut t =
            GroupHash::<SimPmem, [u8; 16], [u8; 16]>::create(&mut pm, Region::new(0, size), cfg)
                .unwrap();
        let k = [0xAB; 16];
        let v = [0xCD; 16];
        t.insert(&mut pm, k, v).unwrap();
        assert_eq!(t.get(&mut pm, &k), Some(v));
        t.check_consistency(&mut pm).unwrap();
    }

    #[test]
    fn strided_layout_behaves_identically() {
        let cfg = GroupHashConfig::new(256, 16).with_probe(ProbeLayout::Strided);
        let (mut pm, mut t, _) = make_cfg(cfg);
        for k in 0..180u64 {
            t.insert(&mut pm, k, k).unwrap();
        }
        for k in 0..180u64 {
            assert_eq!(t.get(&mut pm, &k), Some(k));
        }
        t.check_consistency(&mut pm).unwrap();
        for k in 0..180u64 {
            assert!(t.remove(&mut pm, &k));
        }
        assert_eq!(t.len(&mut pm), 0);
        t.check_consistency(&mut pm).unwrap();
    }

    #[test]
    fn two_choice_behaves_identically() {
        let cfg = GroupHashConfig::new(256, 16).with_choice(ChoiceMode::TwoChoice);
        let (mut pm, mut t, region) = make_cfg(cfg);
        for k in 0..200u64 {
            t.insert(&mut pm, k, k + 9).unwrap();
        }
        for k in 0..200u64 {
            assert_eq!(t.get(&mut pm, &k), Some(k + 9));
        }
        t.check_consistency(&mut pm).unwrap();
        for k in 0..100u64 {
            assert!(t.remove(&mut pm, &k));
        }
        assert_eq!(t.len(&mut pm), 100);
        t.check_consistency(&mut pm).unwrap();
        // Reopen keeps the mode.
        let t2 = GroupHash::<SimPmem, u64, u64>::open(&mut pm, region).unwrap();
        assert_eq!(t2.config().choice, ChoiceMode::TwoChoice);
        assert_eq!(t2.len(&mut pm), 100);
    }

    #[test]
    fn two_choice_improves_utilization() {
        // The paper's §4.4 claim: a second hash function raises the
        // space-utilization ratio (at a locality cost).
        let fill_until_full = |cfg: GroupHashConfig| {
            let (mut pm, mut t, _) = make_cfg(cfg);
            let mut k = 0u64;
            loop {
                match t.insert(&mut pm, k.wrapping_mul(0x9E3779B97F4A7C15), k) {
                    Ok(()) => k += 1,
                    Err(InsertError::TableFull) => break,
                    Err(e) => panic!("{e}"),
                }
            }
            t.len(&mut pm) as f64 / t.capacity() as f64
        };
        let single = fill_until_full(GroupHashConfig::new(512, 64));
        let double = fill_until_full(
            GroupHashConfig::new(512, 64).with_choice(ChoiceMode::TwoChoice),
        );
        assert!(
            double > single + 0.03,
            "two-choice {double:.3} should beat single {single:.3}"
        );
    }

    #[test]
    fn logged_commit_behaves_identically() {
        let cfg = GroupHashConfig::new(256, 16).with_commit(CommitStrategy::UndoLog);
        let (mut pm, mut t, _) = make_cfg(cfg);
        for k in 0..100u64 {
            t.insert(&mut pm, k, k + 5).unwrap();
        }
        for k in 0..50u64 {
            assert!(t.remove(&mut pm, &k));
        }
        for k in 50..100u64 {
            assert_eq!(t.get(&mut pm, &k), Some(k + 5));
        }
        t.check_consistency(&mut pm).unwrap();
    }

    #[test]
    fn volatile_count_matches_persistent() {
        let cfg_v = GroupHashConfig::new(256, 16).with_count_mode(CountMode::Volatile);
        let (mut pm_v, mut tv, region) = make_cfg(cfg_v);
        let (mut pm_p, mut tp, _) = make(256, 16);
        for k in 0..120u64 {
            tv.insert(&mut pm_v, k, k).unwrap();
            tp.insert(&mut pm_p, k, k).unwrap();
        }
        for k in 0..40u64 {
            tv.remove(&mut pm_v, &k);
            tp.remove(&mut pm_p, &k);
        }
        assert_eq!(tv.len(&mut pm_v), tp.len(&mut pm_p));
        // Volatile count is rebuilt on open.
        let tv2 = GroupHash::<SimPmem, u64, u64>::open(&mut pm_v, region).unwrap();
        assert_eq!(tv2.len(&mut pm_v), 80);
    }

    #[test]
    fn volatile_count_skips_header_flushes() {
        let cfg_v = GroupHashConfig::new(256, 16).with_count_mode(CountMode::Volatile);
        let (mut pm_v, mut tv, _) = make_cfg(cfg_v);
        let (mut pm_p, mut tp, _) = make(256, 16);
        pm_v.reset_stats();
        pm_p.reset_stats();
        tv.insert(&mut pm_v, 1, 1).unwrap();
        tp.insert(&mut pm_p, 1, 1).unwrap();
        assert!(pm_v.stats().flushes < pm_p.stats().flushes);
    }

    #[test]
    fn paper_insert_flush_budget() {
        // The paper's insert: persist cell + persist bitmap + persist count
        // = 3 flushed lines, 3 fences. No more (that is the whole point).
        let (mut pm, mut t, _) = make(256, 16);
        pm.reset_stats();
        t.insert(&mut pm, 1, 1).unwrap();
        assert_eq!(pm.stats().flushes, 3);
        assert_eq!(pm.stats().fences, 3);
        // And the logged ablation costs strictly more.
        let cfg = GroupHashConfig::new(256, 16).with_commit(CommitStrategy::UndoLog);
        let (mut pm_l, mut tl, _) = make_cfg(cfg);
        pm_l.reset_stats();
        tl.insert(&mut pm_l, 1, 1).unwrap();
        assert!(pm_l.stats().flushes >= 2 * pm.stats().flushes);
    }
}
