//! The group hash table: layout, Algorithms 1–4, and the
//! [`HashScheme`] implementation.

use crate::config::{ChoiceMode, CommitStrategy, CountMode, FpMode, GroupHashConfig, ProbeLayout};
use crate::fpcache::{match_bits, FpCache};
use nvm_hashfn::{HashKey, HashPair, Pod};
use nvm_metrics::SchemeInstrumentation;
use nvm_pmem::{Pmem, Region, RegionAllocator, CACHELINE};
use nvm_table::{CellArray, HashScheme, InsertError, PmemBitmap, TableHeader};
use nvm_wal::UndoLog;
use std::marker::PhantomData;

/// Magic word identifying a group-hash header ("GRPHASH1").
const MAGIC: u64 = 0x4752_5048_4153_4831;

/// Reserved undo-log footprint (used only by the forced-logging ablation,
/// but always carved so the layout is config-independent).
const LOG_BYTES: usize = 1024;

/// Which level a cell index refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Level {
    One,
    Two,
}

impl Level {
    /// The [`FpCache`] array index for this level.
    #[inline]
    fn idx(self) -> usize {
        match self {
            Level::One => 0,
            Level::Two => 1,
        }
    }
}

/// The paper's hash table. See the crate docs for the design; all
/// persistent state lives in the pool region handed to
/// [`GroupHash::create`], and [`GroupHash::open`] reconstructs the table
/// from that region alone.
#[derive(Debug)]
pub struct GroupHash<P: Pmem, K: HashKey, V: Pod> {
    config: GroupHashConfig,
    hash: HashPair,
    header: TableHeader,
    bitmap1: PmemBitmap,
    bitmap2: PmemBitmap,
    cells1: CellArray<K, V>,
    cells2: CellArray<K, V>,
    log: Option<UndoLog>,
    /// Cached count for [`CountMode::Volatile`].
    volatile_count: u64,
    /// DRAM-resident fingerprint tags for [`FpMode::On`]; never persisted,
    /// rebuilt from bitmaps + cells on `open`/`recover`.
    fp: Option<FpCache>,
    /// Probe/occupancy/displacement recording. Derived purely from
    /// arithmetic the operations already do — recording never touches the
    /// pool, so instrumented runs report identical `PmemStats`.
    #[cfg(feature = "instrument")]
    instr: SchemeInstrumentation,
    region: Region,
    _marker: PhantomData<fn(&mut P)>,
}

impl<P: Pmem, K: HashKey, V: Pod> GroupHash<P, K, V> {
    /// Carves `region` into the table's sub-regions. Deterministic, so
    /// `open` can redo it from persisted geometry.
    fn layout(
        region: Region,
        n: u64,
    ) -> (Region, Region, Region, Region, Region, Region) {
        let mut alloc = RegionAllocator::new(region.off, region.end());
        let header = alloc.alloc_lines(TableHeader::SIZE);
        let bitmap1 = alloc.alloc_lines(PmemBitmap::region_size(n).max(8));
        let bitmap2 = alloc.alloc_lines(PmemBitmap::region_size(n).max(8));
        let cells1 = alloc.alloc_lines(CellArray::<K, V>::region_size(n));
        let cells2 = alloc.alloc_lines(CellArray::<K, V>::region_size(n));
        let log = alloc.alloc_lines(LOG_BYTES);
        (header, bitmap1, bitmap2, cells1, cells2, log)
    }

    /// Pool bytes needed for a table with this configuration.
    pub fn required_size(config: &GroupHashConfig) -> usize {
        let n = config.cells_per_level;
        TableHeader::SIZE
            + 2 * (PmemBitmap::region_size(n).max(8) + CACHELINE)
            + 2 * (CellArray::<K, V>::region_size(n) + CACHELINE)
            + LOG_BYTES
            + 2 * CACHELINE
    }

    fn assemble(region: Region, config: GroupHashConfig, header: TableHeader) -> Self {
        let n = config.cells_per_level;
        let (_, b1, b2, c1, c2, log_r) = Self::layout(region, n);
        let log = match config.commit {
            CommitStrategy::UndoLog => Some(UndoLog::open(log_r)),
            CommitStrategy::AtomicBitmap => None,
        };
        GroupHash {
            config,
            hash: HashPair::from_seed(config.seed),
            header,
            bitmap1: PmemBitmap::attach(b1, n),
            bitmap2: PmemBitmap::attach(b2, n),
            cells1: CellArray::attach(c1, n),
            cells2: CellArray::attach(c2, n),
            log,
            volatile_count: 0,
            fp: (config.fp == FpMode::On).then(|| FpCache::new(n)),
            #[cfg(feature = "instrument")]
            instr: SchemeInstrumentation::new(config.group_size as usize),
            region,
            _marker: PhantomData,
        }
    }

    /// Records a completed lookup-style probe sequence (no-op without the
    /// `instrument` feature).
    #[inline]
    fn note_probe(&self, cells: u64) {
        #[cfg(feature = "instrument")]
        self.instr.record_probe(cells);
        #[cfg(not(feature = "instrument"))]
        let _ = cells;
    }

    /// Records one insert attempt: cells examined, occupied cells stepped
    /// over before placement, and the scheme's displacement count (always
    /// 0 — group hashing never relocates entries).
    #[inline]
    fn note_insert(&self, probes: u64, occupied: u64) {
        #[cfg(feature = "instrument")]
        {
            self.instr.record_probe(probes);
            self.instr.record_occupancy(occupied);
            self.instr.record_displacement(0);
        }
        #[cfg(not(feature = "instrument"))]
        let _ = (probes, occupied);
    }

    /// Records key loads issued from the pool by a lookup-style probe
    /// (recorded in both fingerprint modes, so filtered and unfiltered
    /// runs report the probe path's NVM traffic in the same counter).
    #[inline]
    fn note_key_reads(&self, n: u64) {
        #[cfg(feature = "instrument")]
        self.instr.fingerprint.key_reads.add(n);
        #[cfg(not(feature = "instrument"))]
        let _ = n;
    }

    /// Records fingerprint-filter outcomes: occupied cells skipped on a
    /// tag mismatch, tag matches whose key compared unequal, and tag
    /// matches confirmed by the key bytes.
    #[inline]
    fn note_fp(&self, skips: u64, false_positives: u64, hits: u64) {
        #[cfg(feature = "instrument")]
        {
            self.instr.fingerprint.skips.add(skips);
            self.instr.fingerprint.false_positives.add(false_positives);
            self.instr.fingerprint.hits.add(hits);
        }
        #[cfg(not(feature = "instrument"))]
        let _ = (skips, false_positives, hits);
    }

    /// Creates and initializes a fresh table in `region`.
    pub fn create(pm: &mut P, region: Region, config: GroupHashConfig) -> Result<Self, String> {
        config.validate()?;
        let need = Self::required_size(&config);
        if region.len < need {
            return Err(format!("region too small: {} < {need}", region.len));
        }
        let n = config.cells_per_level;
        let (h_r, b1, b2, _c1, _c2, log_r) = Self::layout(region, n);
        // Cells are left as-is: the bitmap decides occupancy, and recovery
        // only trusts cells whose bit is set.
        PmemBitmap::create(pm, b1, n);
        PmemBitmap::create(pm, b2, n);
        if config.commit == CommitStrategy::UndoLog {
            UndoLog::create(pm, log_r);
        }
        let header = TableHeader::create(
            pm,
            h_r,
            MAGIC,
            config.seed,
            &[n, config.group_size, K::SIZE as u64, V::SIZE as u64, config.flags()],
        );
        Ok(Self::assemble(region, config, header))
    }

    /// Header location (first allocation of `layout`), computable without
    /// the geometry — `open` must validate the header before running the
    /// full layout, or a bogus region would panic instead of erroring.
    fn header_region(region: Region) -> Region {
        Region::new(
            nvm_pmem::align_up(region.off, CACHELINE),
            TableHeader::SIZE,
        )
    }

    /// Re-opens a table previously created in `region` (e.g. after a
    /// crash). Call [`GroupHash::recover`] before using it.
    pub fn open(pm: &mut P, region: Region) -> Result<Self, String> {
        let h_r = Self::header_region(region);
        if !region.contains(h_r.off, h_r.len) {
            return Err("region too small for a table header".into());
        }
        let header = TableHeader::open(pm, h_r, MAGIC)?;
        let n = header.geometry(pm, 0);
        let group_size = header.geometry(pm, 1);
        let key_size = header.geometry(pm, 2);
        let value_size = header.geometry(pm, 3);
        let flags = header.geometry(pm, 4);
        if key_size != K::SIZE as u64 || value_size != V::SIZE as u64 {
            return Err(format!(
                "type mismatch: persisted K/V sizes {key_size}/{value_size}, \
                 requested {}/{}",
                K::SIZE,
                V::SIZE
            ));
        }
        let seed = header.seed(pm);
        let config = GroupHashConfig::from_persisted(n, group_size, seed, flags);
        config.validate()?;
        if region.len < Self::required_size(&config) {
            return Err("region smaller than persisted geometry requires".into());
        }
        let mut t = Self::assemble(region, config, header);
        if t.config.count_mode == CountMode::Volatile {
            t.volatile_count = t.bitmap1.count_ones(pm) + t.bitmap2.count_ones(pm);
        }
        t.rebuild_fp_cache(pm);
        Ok(t)
    }

    /// The configuration (as persisted).
    pub fn config(&self) -> &GroupHashConfig {
        &self.config
    }

    /// The pool region this table occupies.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Level-1 slot for `key` (the paper's `k = h(key)`).
    #[inline]
    pub fn slot_of(&self, key: &K) -> u64 {
        self.hash.h1(key) & (self.config.cells_per_level - 1)
    }

    /// Second candidate slot under [`ChoiceMode::TwoChoice`]; `None` in the
    /// paper's single-hash design or when both hashes coincide.
    #[inline]
    pub fn slot2_of(&self, key: &K) -> Option<u64> {
        match self.config.choice {
            ChoiceMode::Single => None,
            ChoiceMode::TwoChoice => {
                let s2 = self.hash.h2(key) & (self.config.cells_per_level - 1);
                (s2 != self.slot_of(key)).then_some(s2)
            }
        }
    }

    /// The volatile fingerprint tag for `key`: the low byte of the third
    /// hash stream, so tags are uncorrelated with the slot/group the
    /// placement hashes choose (a tag that re-encoded `h1` bits would
    /// carry no information within a group, where those bits are equal).
    #[inline]
    pub fn fp_tag(&self, key: &K) -> u8 {
        self.hash.h3(key) as u8
    }

    /// Rebuilds the fingerprint cache from the bitmaps + cells (the only
    /// authoritative state). No-op under [`FpMode::Off`]. O(capacity),
    /// reading one key per occupied cell.
    fn rebuild_fp_cache(&mut self, pm: &mut P) {
        let Some(mut fp) = self.fp.take() else { return };
        fp.reset();
        let n = self.config.cells_per_level;
        for level in [Level::One, Level::Two] {
            let (bitmap, cells) = self.level_parts(level);
            let mut base = 0u64;
            while base < n {
                let mut word = bitmap.word_containing(pm, base);
                while word != 0 {
                    let idx = base + word.trailing_zeros() as u64;
                    let tag = self.fp_tag(&cells.read_key(pm, idx));
                    fp.set(level.idx(), idx, tag);
                    word &= word - 1;
                }
                base += 64;
            }
        }
        self.fp = Some(fp);
    }

    /// Checks that the fingerprint cache agrees with the pool: every
    /// occupied cell's cached tag must equal the tag of the key stored
    /// there (free cells are ignored — their tags are never consulted).
    /// `Ok` under [`FpMode::Off`].
    pub fn verify_fp_cache(&self, pm: &mut P) -> Result<(), String> {
        let Some(fp) = &self.fp else { return Ok(()) };
        for level in [Level::One, Level::Two] {
            let (bitmap, cells) = self.level_parts(level);
            for i in 0..self.config.cells_per_level {
                if !bitmap.get(pm, i) {
                    continue;
                }
                let want = self.fp_tag(&cells.read_key(pm, i));
                let got = fp.get(level.idx(), i);
                if got != want {
                    return Err(format!(
                        "fingerprint cache stale at level {}/cell {i}: \
                         cached {got:#04x}, key tag {want:#04x}",
                        level.idx() + 1
                    ));
                }
            }
        }
        Ok(())
    }

    /// Group number of level-1 slot `k`.
    #[inline]
    fn group_of(&self, k: u64) -> u64 {
        k / self.config.group_size
    }

    /// The `i`-th level-2 cell of group `g` under the configured layout.
    #[inline]
    fn group_cell(&self, g: u64, i: u64) -> u64 {
        match self.config.probe {
            ProbeLayout::Contiguous => g * self.config.group_size + i,
            ProbeLayout::Strided => g + i * self.config.n_groups(),
        }
    }

    /// Group that owns level-2 cell `idx` (inverse of `group_cell`).
    #[inline]
    fn group_of_l2(&self, idx: u64) -> u64 {
        match self.config.probe {
            ProbeLayout::Contiguous => idx / self.config.group_size,
            ProbeLayout::Strided => idx % self.config.n_groups(),
        }
    }

    fn bump_count(&mut self, pm: &mut P, up: bool) {
        match self.config.count_mode {
            CountMode::Persistent => {
                if up {
                    self.header.inc_count(pm);
                } else {
                    self.header.dec_count(pm);
                }
            }
            CountMode::Volatile => {
                if up {
                    self.volatile_count += 1;
                } else {
                    self.volatile_count -= 1;
                }
            }
        }
    }

    /// Sets the count to an absolute value with the usual atomic+persist
    /// commit (bulk operations).
    pub(crate) fn set_count_committed(&mut self, pm: &mut P, count: u64) {
        match self.config.count_mode {
            CountMode::Persistent => self.header.set_count(pm, count),
            CountMode::Volatile => self.volatile_count = count,
        }
    }

    fn level_parts(&self, level: Level) -> (PmemBitmap, CellArray<K, V>) {
        match level {
            Level::One => (self.bitmap1, self.cells1),
            Level::Two => (self.bitmap2, self.cells2),
        }
    }

    /// Commits an insert at `(level, idx)`: Algorithm 1 lines 4–9 / 16–21.
    fn commit_insert(&mut self, pm: &mut P, level: Level, idx: u64, key: &K, value: &V) {
        let (bitmap, cells) = self.level_parts(level);
        if self.config.commit == CommitStrategy::UndoLog {
            // Ablation: duplicate-copy the touched ranges first.
            let count_off = self.header.count_off();
            let log = self.log.as_mut().expect("undo log present");
            log.begin(pm);
            log.record(pm, cells.cell_off(idx), cells.entry_len());
            log.record(pm, bitmap.word_off_of(idx), 8);
            if self.config.count_mode == CountMode::Persistent {
                log.record(pm, count_off, 8);
            }
            log.seal(pm);
        }
        cells.write_entry(pm, idx, key, value);
        cells.persist_entry(pm, idx);
        bitmap.set_and_persist(pm, idx, true);
        self.bump_count(pm, true);
        if self.fp.is_some() {
            // DRAM only — no pool write, no flush, no fence.
            let tag = self.fp_tag(key);
            if let Some(fp) = &mut self.fp {
                fp.set(level.idx(), idx, tag);
            }
        }
        if self.config.commit == CommitStrategy::UndoLog {
            self.log.as_mut().expect("undo log present").commit(pm);
        }
    }

    /// Commits a delete at `(level, idx)`: Algorithm 3 lines 4–9 / 16–21.
    /// Note the inverted order versus insert: the bit is cleared *first*,
    /// so a crash mid-erase leaves an unreferenced (bit = 0) cell that
    /// recovery wipes.
    fn commit_delete(&mut self, pm: &mut P, level: Level, idx: u64) {
        let (bitmap, cells) = self.level_parts(level);
        if self.config.commit == CommitStrategy::UndoLog {
            let count_off = self.header.count_off();
            let log = self.log.as_mut().expect("undo log present");
            log.begin(pm);
            log.record(pm, bitmap.word_off_of(idx), 8);
            log.record(pm, cells.cell_off(idx), cells.entry_len());
            if self.config.count_mode == CountMode::Persistent {
                log.record(pm, count_off, 8);
            }
            log.seal(pm);
        }
        bitmap.set_and_persist(pm, idx, false);
        cells.clear_entry(pm, idx);
        cells.persist_entry(pm, idx);
        self.bump_count(pm, false);
        if let Some(fp) = &mut self.fp {
            fp.clear(level.idx(), idx);
        }
        if self.config.commit == CommitStrategy::UndoLog {
            self.log.as_mut().expect("undo log present").commit(pm);
        }
    }

    /// Finds an empty level-2 cell in group `g`, honouring the probe
    /// layout. Also returns how many cells were examined: the offset of
    /// the free cell plus one, or the whole group on a miss (every cell
    /// examined before the free one is occupied, which is what the
    /// occupancy histogram records).
    fn find_free_in_group(&self, pm: &mut P, g: u64) -> (Option<u64>, u64) {
        match self.config.probe {
            ProbeLayout::Contiguous => {
                let start = g * self.config.group_size;
                match self.bitmap2.find_zero_in_range(pm, start, self.config.group_size) {
                    Some(idx) => (Some(idx), idx - start + 1),
                    None => (None, self.config.group_size),
                }
            }
            ProbeLayout::Strided => {
                // The stride is `n_groups`, so consecutive probe steps
                // often land in the same 64-bit word; hoist the word read
                // like the contiguous path instead of one `get` per cell.
                let mut cached: Option<(u64, u64)> = None; // (word_base, word)
                for i in 0..self.config.group_size {
                    let idx = self.group_cell(g, i);
                    let word_base = idx & !63;
                    let word = match cached {
                        Some((b, w)) if b == word_base => w,
                        _ => {
                            let w = self.bitmap2.word_containing(pm, idx);
                            cached = Some((word_base, w));
                            w
                        }
                    };
                    if word >> (idx % 64) & 1 == 0 {
                        return (Some(idx), i + 1);
                    }
                }
                (None, self.config.group_size)
            }
        }
    }

    /// Scans group `g`'s level-2 cells for `key`; returns the cell index.
    ///
    /// In the contiguous layout the scan is word-wise: one bitmap read
    /// covers 64 cells, and the occupied cells are then compared in
    /// ascending address order — an access pattern the hardware stream
    /// prefetcher locks onto (the mechanism behind the paper's
    /// "a single memory access can prefetch the following cells").
    ///
    /// `tag` is `Some` exactly under [`FpMode::On`]: the scan then goes
    /// *tag-first* — eight cached tags load as one word, a SWAR compare
    /// against the probe tag ANDed with the occupancy bits selects the
    /// candidate cells, and only those have their key bytes read from the
    /// pool.
    ///
    /// The second return value counts occupied cells examined in scan
    /// order up to (and including) the hit — the same value in both
    /// fingerprint modes, so probe histograms stay mode-independent and
    /// comparable (under `FpMode::On` an "examined" cell may have been
    /// resolved from its DRAM tag alone).
    fn find_key_in_group(
        &self,
        pm: &mut P,
        g: u64,
        key: &K,
        tag: Option<u8>,
    ) -> (Option<u64>, u64) {
        let mut examined = 0u64;
        match self.config.probe {
            ProbeLayout::Contiguous => {
                let start = g * self.config.group_size;
                let end = start + self.config.group_size;
                let mut base = start;
                while base < end {
                    let mut word = self.bitmap2.word_containing(pm, base);
                    // Mask off bits outside [start, end) within this word
                    // (only relevant for groups smaller than 64).
                    let lo = base % 64;
                    if lo != 0 {
                        word &= u64::MAX << lo;
                    }
                    let word_base = base - lo;
                    let span = (end - word_base).min(64);
                    if span < 64 {
                        word &= (1u64 << span) - 1;
                    }
                    match tag {
                        Some(tag) => {
                            let fp = self.fp.as_ref().expect("tag implies cache");
                            // Tag-first: 8 cells (one tag word) at a time.
                            let mut sub = 0u64;
                            while sub < 64 {
                                let occ = word >> sub & 0xFF;
                                if occ != 0 {
                                    let tags = fp.word(Level::Two.idx(), word_base + sub);
                                    let cand = match_bits(tags, tag) & occ;
                                    let mut c = cand;
                                    while c != 0 {
                                        let bit = c.trailing_zeros() as u64;
                                        let idx = word_base + sub + bit;
                                        self.note_key_reads(1);
                                        if self.cells2.read_key(pm, idx) == *key {
                                            let below = (1u64 << bit) - 1;
                                            examined +=
                                                u64::from((occ & (below | 1 << bit)).count_ones());
                                            let skipped = (occ & !cand & below).count_ones();
                                            self.note_fp(u64::from(skipped), 0, 1);
                                            return (Some(idx), examined);
                                        }
                                        self.note_fp(0, 1, 0);
                                        c &= c - 1;
                                    }
                                    examined += u64::from(occ.count_ones());
                                    self.note_fp(u64::from((occ & !cand).count_ones()), 0, 0);
                                }
                                sub += 8;
                            }
                        }
                        None => {
                            while word != 0 {
                                let bit = word.trailing_zeros() as u64;
                                let idx = word_base + bit;
                                examined += 1;
                                self.note_key_reads(1);
                                if self.cells2.read_key(pm, idx) == *key {
                                    return (Some(idx), examined);
                                }
                                word &= word - 1;
                            }
                        }
                    }
                    base = word_base + 64;
                }
                (None, examined)
            }
            ProbeLayout::Strided => {
                // Hoisted occupancy-word reads (stride = n_groups, so
                // consecutive steps often share a word); per-cell tag
                // checks — strided tags are not adjacent in the cache, so
                // there is no word to load.
                let mut cached: Option<(u64, u64)> = None;
                for i in 0..self.config.group_size {
                    let idx = self.group_cell(g, i);
                    let word_base = idx & !63;
                    let word = match cached {
                        Some((b, w)) if b == word_base => w,
                        _ => {
                            let w = self.bitmap2.word_containing(pm, idx);
                            cached = Some((word_base, w));
                            w
                        }
                    };
                    if word >> (idx % 64) & 1 == 0 {
                        continue;
                    }
                    examined += 1;
                    if let Some(tag) = tag {
                        let fp = self.fp.as_ref().expect("tag implies cache");
                        if fp.get(Level::Two.idx(), idx) != tag {
                            self.note_fp(1, 0, 0);
                            continue;
                        }
                    }
                    self.note_key_reads(1);
                    if self.cells2.read_key(pm, idx) == *key {
                        if tag.is_some() {
                            self.note_fp(0, 0, 1);
                        }
                        return (Some(idx), examined);
                    }
                    if tag.is_some() {
                        self.note_fp(0, 1, 0);
                    }
                }
                (None, examined)
            }
        }
    }

    /// Candidate level-1 slots for `key`, primary first.
    #[inline]
    fn candidate_slots(&self, key: &K) -> (u64, Option<u64>) {
        (self.slot_of(key), self.slot2_of(key))
    }

    /// Algorithm 1 (with the §4.4 two-choice extension when configured:
    /// try the second slot and the second matched group before giving up).
    pub fn insert(&mut self, pm: &mut P, key: K, value: V) -> Result<(), InsertError> {
        let (k1, k2) = self.candidate_slots(&key);
        let mut probes = 1u64; // the k1 slot check
        if !self.bitmap1.get(pm, k1) {
            self.commit_insert(pm, Level::One, k1, &key, &value);
            self.note_insert(probes, 0);
            return Ok(());
        }
        if let Some(k2) = k2 {
            probes += 1;
            if !self.bitmap1.get(pm, k2) {
                self.commit_insert(pm, Level::One, k2, &key, &value);
                self.note_insert(probes, 1);
                return Ok(());
            }
        }
        // Occupied cells stepped over so far: every checked level-1 slot.
        let mut occupied = probes;
        let g1 = self.group_of(k1);
        let (free, examined) = self.find_free_in_group(pm, g1);
        probes += examined;
        if let Some(idx) = free {
            occupied += examined - 1;
            self.commit_insert(pm, Level::Two, idx, &key, &value);
            self.note_insert(probes, occupied);
            return Ok(());
        }
        occupied += examined;
        if let Some(k2) = k2 {
            let g2 = self.group_of(k2);
            if g2 != g1 {
                let (free, examined) = self.find_free_in_group(pm, g2);
                probes += examined;
                if let Some(idx) = free {
                    occupied += examined - 1;
                    self.commit_insert(pm, Level::Two, idx, &key, &value);
                    self.note_insert(probes, occupied);
                    return Ok(());
                }
                occupied += examined;
            }
        }
        // "If there are no empty cells in the matched group, the
        // capacity of the hash table needs to be expanded."
        self.note_insert(probes, occupied);
        Err(InsertError::TableFull)
    }

    /// Algorithm 2.
    pub fn get(&self, pm: &mut P, key: &K) -> Option<V> {
        self.locate(pm, key)
            .map(|(level, idx)| match level {
                Level::One => self.cells1.read_value(pm, idx),
                Level::Two => self.cells2.read_value(pm, idx),
            })
    }

    /// Checks whether level-1 slot `k` holds `key`, reading the key bytes
    /// only when the slot is occupied and (under [`FpMode::On`]) its
    /// cached tag matches.
    #[inline]
    fn level1_holds(&self, pm: &mut P, k: u64, key: &K, tag: Option<u8>) -> bool {
        if !self.bitmap1.get(pm, k) {
            return false;
        }
        if let Some(tag) = tag {
            let fp = self.fp.as_ref().expect("tag implies cache");
            if fp.get(Level::One.idx(), k) != tag {
                self.note_fp(1, 0, 0);
                return false;
            }
        }
        self.note_key_reads(1);
        let hit = self.cells1.read_key(pm, k) == *key;
        if tag.is_some() {
            if hit {
                self.note_fp(0, 0, 1);
            } else {
                self.note_fp(0, 1, 0);
            }
        }
        hit
    }

    /// Finds the `(level, cell)` holding `key`, probing the candidate
    /// slot(s) then the matched group(s). Records one probe-length sample
    /// (cells examined) per call when instrumentation is enabled.
    fn locate(&self, pm: &mut P, key: &K) -> Option<(Level, u64)> {
        let (k1, k2) = self.candidate_slots(key);
        let tag = self.fp.as_ref().map(|_| self.fp_tag(key));
        let mut probes = 1u64;
        if self.level1_holds(pm, k1, key, tag) {
            self.note_probe(probes);
            return Some((Level::One, k1));
        }
        if let Some(k2) = k2 {
            probes += 1;
            if self.level1_holds(pm, k2, key, tag) {
                self.note_probe(probes);
                return Some((Level::One, k2));
            }
        }
        let g1 = self.group_of(k1);
        let (found, compared) = self.find_key_in_group(pm, g1, key, tag);
        probes += compared;
        if let Some(idx) = found {
            self.note_probe(probes);
            return Some((Level::Two, idx));
        }
        if let Some(k2) = k2 {
            let g2 = self.group_of(k2);
            if g2 != g1 {
                let (found, compared) = self.find_key_in_group(pm, g2, key, tag);
                probes += compared;
                if let Some(idx) = found {
                    self.note_probe(probes);
                    return Some((Level::Two, idx));
                }
            }
        }
        self.note_probe(probes);
        None
    }

    /// Updates the value of an existing `key` in place, returning whether
    /// the key was found.
    ///
    /// The value bytes are overwritten and persisted where they are. For
    /// values of 8 bytes or less this is **failure-atomic** (the write is
    /// a single aligned store — cells are 8-byte aligned and the key
    /// prefix is a multiple of 8 for all provided key types): a crash
    /// leaves either the old or the new value. For larger values a crash
    /// mid-update can tear at 8-byte granularity; use remove+insert (or
    /// an indirection pointer as `nvm-kv` does) when multi-word values
    /// must switch atomically.
    pub fn update_in_place(&mut self, pm: &mut P, key: &K, value: V) -> bool {
        match self.locate(pm, key) {
            Some((level, idx)) => {
                let (_, cells) = self.level_parts(level);
                let mut buf = [0u8; 64];
                debug_assert!(V::SIZE <= 64);
                value.write_to(&mut buf[..V::SIZE]);
                let off = cells.cell_off(idx) + K::SIZE;
                pm.write(off, &buf[..V::SIZE]);
                pm.persist(off, V::SIZE);
                true
            }
            None => false,
        }
    }

    /// Algorithm 3.
    pub fn remove(&mut self, pm: &mut P, key: &K) -> bool {
        match self.locate(pm, key) {
            Some((level, idx)) => {
                self.commit_delete(pm, level, idx);
                true
            }
            None => false,
        }
    }

    /// Algorithm 4: post-crash recovery. Scans the whole table, erases any
    /// cell whose occupancy bit is clear (wiping partial inserts/deletes),
    /// and recounts `count`. Idempotent; O(capacity).
    pub fn recover(&mut self, pm: &mut P) {
        // Forced-logging ablation: roll back an in-flight transaction
        // before trusting the cells.
        if let Some(log) = self.log.as_mut() {
            log.recover(pm);
        }
        let n = self.config.cells_per_level;
        let mut count = 0u64;
        for i in 0..n {
            for level in [Level::One, Level::Two] {
                let (bitmap, cells) = self.level_parts(level);
                if bitmap.get(pm, i) {
                    count += 1;
                } else if !cells.is_zeroed(pm, i) {
                    // The paper resets unconditionally; skipping the write
                    // when already zero is state-identical and saves NVM
                    // writes.
                    cells.clear_entry(pm, i);
                    cells.persist_entry(pm, i);
                }
            }
        }
        match self.config.count_mode {
            CountMode::Persistent => self.header.set_count(pm, count),
            CountMode::Volatile => self.volatile_count = count,
        }
        // The volatile tags may describe pre-crash state; rebuild them
        // from the (now repaired) bitmaps + cells.
        self.rebuild_fp_cache(pm);
    }

    /// Occupied cells.
    pub fn len(&self, pm: &mut P) -> u64 {
        match self.config.count_mode {
            CountMode::Persistent => self.header.count(pm),
            CountMode::Volatile => self.volatile_count,
        }
    }

    /// True when no cell is occupied.
    pub fn is_empty(&self, pm: &mut P) -> bool {
        self.len(pm) == 0
    }

    /// Total cells across both levels.
    pub fn capacity(&self) -> u64 {
        2 * self.config.cells_per_level
    }

    /// Visits every stored `(key, value)` pair. Level 1 first, then level
    /// 2, each in index order.
    pub fn for_each_entry(&self, pm: &mut P, mut f: impl FnMut(K, V)) {
        let n = self.config.cells_per_level;
        for level in [Level::One, Level::Two] {
            let (bitmap, cells) = self.level_parts(level);
            for i in 0..n {
                if bitmap.get(pm, i) {
                    f(cells.read_key(pm, i), cells.read_value(pm, i));
                }
            }
        }
    }

    // ---- crate-internal accessors for analysis/expansion ----

    pub(crate) fn parts(
        &self,
    ) -> (
        &GroupHashConfig,
        PmemBitmap,
        PmemBitmap,
        CellArray<K, V>,
        CellArray<K, V>,
    ) {
        (&self.config, self.bitmap1, self.bitmap2, self.cells1, self.cells2)
    }

    pub(crate) fn group_of_l2_cell(&self, idx: u64) -> u64 {
        self.group_of_l2(idx)
    }

    /// Detaches the fingerprint cache so bulk operations can update tags
    /// while iterating with `&self` accessors (NLL-friendly); pair with
    /// [`GroupHash::put_fp`].
    pub(crate) fn take_fp(&mut self) -> Option<FpCache> {
        self.fp.take()
    }

    pub(crate) fn put_fp(&mut self, fp: Option<FpCache>) {
        self.fp = fp;
    }
}

impl<P: Pmem, K: HashKey, V: Pod> HashScheme<P, K, V> for GroupHash<P, K, V> {
    fn name(&self) -> &'static str {
        "group"
    }

    fn insert(&mut self, pm: &mut P, key: K, value: V) -> Result<(), InsertError> {
        GroupHash::insert(self, pm, key, value)
    }

    fn get(&self, pm: &mut P, key: &K) -> Option<V> {
        GroupHash::get(self, pm, key)
    }

    fn remove(&mut self, pm: &mut P, key: &K) -> bool {
        GroupHash::remove(self, pm, key)
    }

    fn len(&self, pm: &mut P) -> u64 {
        GroupHash::len(self, pm)
    }

    fn capacity(&self) -> u64 {
        GroupHash::capacity(self)
    }

    fn recover(&mut self, pm: &mut P) {
        GroupHash::recover(self, pm)
    }

    fn check_consistency(&self, pm: &mut P) -> Result<(), String> {
        crate::analysis::check_consistency(self, pm)
    }

    fn instrumentation(&self) -> Option<&SchemeInstrumentation> {
        #[cfg(feature = "instrument")]
        {
            Some(&self.instr)
        }
        #[cfg(not(feature = "instrument"))]
        {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{make, make_cfg};
    use nvm_pmem::{SimConfig, SimPmem};

    #[test]
    fn insert_get_remove_roundtrip() {
        let (mut pm, mut t, _) = make(256, 16);
        assert_eq!(t.get(&mut pm, &5), None);
        t.insert(&mut pm, 5, 50).unwrap();
        assert_eq!(t.get(&mut pm, &5), Some(50));
        assert_eq!(t.len(&mut pm), 1);
        assert!(t.remove(&mut pm, &5));
        assert_eq!(t.get(&mut pm, &5), None);
        assert_eq!(t.len(&mut pm), 0);
        assert!(!t.remove(&mut pm, &5));
    }

    #[test]
    fn collisions_go_to_matched_group() {
        let (mut pm, mut t, _) = make(256, 16);
        // Insert enough keys to force level-2 placements.
        for k in 0..200u64 {
            t.insert(&mut pm, k, k * 10).unwrap();
        }
        for k in 0..200u64 {
            assert_eq!(t.get(&mut pm, &k), Some(k * 10), "key {k}");
        }
        t.check_consistency(&mut pm).unwrap();
        assert_eq!(t.len(&mut pm), 200);
    }

    #[test]
    fn fill_to_capacity_overflows_gracefully() {
        let (mut pm, mut t, _) = make(64, 64); // single group: capacity 128
        let mut inserted = 0u64;
        let mut k = 0u64;
        while inserted < 128 {
            match t.insert(&mut pm, k, k) {
                Ok(()) => inserted += 1,
                Err(InsertError::TableFull) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
            k += 1;
        }
        // A single-group table fills its level-2 group completely; level 1
        // keeps only direct hits, so TableFull must appear at or before
        // 128 and after 64 (all level-2 cells usable).
        assert!(t.len(&mut pm) >= 64, "len {}", t.len(&mut pm));
        assert!(t.len(&mut pm) <= 128);
        t.check_consistency(&mut pm).unwrap();
        // Everything inserted is still retrievable.
        for key in 0..k {
            if t.get(&mut pm, &key).is_some() {
                assert_eq!(t.get(&mut pm, &key), Some(key));
            }
        }
    }

    #[test]
    fn duplicate_insert_shadows_until_removed() {
        // Paper semantics: insert doesn't probe for duplicates.
        let (mut pm, mut t, _) = make(256, 16);
        t.insert(&mut pm, 7, 1).unwrap();
        t.insert(&mut pm, 7, 2).unwrap();
        // One of the copies is visible; removing twice drains both.
        assert!(t.get(&mut pm, &7).is_some());
        assert!(t.remove(&mut pm, &7));
        assert!(t.get(&mut pm, &7).is_some());
        assert!(t.remove(&mut pm, &7));
        assert_eq!(t.get(&mut pm, &7), None);
    }

    #[test]
    fn insert_unique_rejects_duplicates() {
        let (mut pm, mut t, _) = make(256, 16);
        t.insert_unique(&mut pm, 7, 1).unwrap();
        assert_eq!(
            t.insert_unique(&mut pm, 7, 2),
            Err(InsertError::DuplicateKey)
        );
        assert_eq!(t.get(&mut pm, &7), Some(1));
    }

    #[test]
    fn update_in_place_swaps_value() {
        let (mut pm, mut t, _) = make(256, 16);
        for k in 0..120u64 {
            t.insert(&mut pm, k, k).unwrap();
        }
        assert!(t.update_in_place(&mut pm, &7, 700));
        assert_eq!(t.get(&mut pm, &7), Some(700));
        assert!(!t.update_in_place(&mut pm, &9999, 1));
        assert_eq!(t.len(&mut pm), 120);
        t.check_consistency(&mut pm).unwrap();
    }

    #[test]
    fn update_in_place_is_atomic_under_crash() {
        use nvm_pmem::{run_with_crash, CrashPlan, CrashResolution};
        let (pm0, t0, region) = make(64, 16);
        let mut pm0 = pm0;
        let mut t0 = t0;
        t0.insert(&mut pm0, 5, 111).unwrap();
        for at in 0..20 {
            let mut pm = pm0.clone();
            let mut t = GroupHash::<SimPmem, u64, u64>::open(&mut pm, region).unwrap();
            let base = pm.events();
            pm.set_crash_plan(Some(CrashPlan { at_event: base + at }));
            let done = run_with_crash(|| t.update_in_place(&mut pm, &5, 222)).is_ok();
            pm.crash(CrashResolution::Random(at));
            let mut t = GroupHash::<SimPmem, u64, u64>::open(&mut pm, region).unwrap();
            t.recover(&mut pm);
            let got = t.get(&mut pm, &5);
            assert!(
                got == Some(111) || got == Some(222),
                "torn update at +{at}: {got:?}"
            );
            if done {
                break;
            }
        }
    }

    #[test]
    fn open_matches_created_table() {
        let (mut pm, mut t, region) = make(256, 16);
        for k in 0..100u64 {
            t.insert(&mut pm, k, k + 1000).unwrap();
        }
        let t2 = GroupHash::<SimPmem, u64, u64>::open(&mut pm, region).unwrap();
        assert_eq!(t2.len(&mut pm), 100);
        for k in 0..100u64 {
            assert_eq!(t2.get(&mut pm, &k), Some(k + 1000));
        }
        t2.check_consistency(&mut pm).unwrap();
    }

    #[test]
    fn open_rejects_wrong_types() {
        let (mut pm, _t, region) = make(256, 16);
        assert!(GroupHash::<SimPmem, u64, u128>::open(&mut pm, region).is_err());
        assert!(GroupHash::<SimPmem, [u8; 16], u64>::open(&mut pm, region).is_err());
    }

    #[test]
    fn for_each_entry_visits_all() {
        let (mut pm, mut t, _) = make(256, 16);
        for k in 0..50u64 {
            t.insert(&mut pm, k, k * 2).unwrap();
        }
        let mut seen = std::collections::HashMap::new();
        t.for_each_entry(&mut pm, |k, v| {
            seen.insert(k, v);
        });
        assert_eq!(seen.len(), 50);
        for k in 0..50u64 {
            assert_eq!(seen[&k], k * 2);
        }
    }

    #[test]
    fn wide_key_value_types() {
        let cfg = GroupHashConfig::new(128, 16);
        let size = GroupHash::<SimPmem, [u8; 16], [u8; 16]>::required_size(&cfg);
        let mut pm = SimPmem::new(size, SimConfig::fast_test());
        let mut t =
            GroupHash::<SimPmem, [u8; 16], [u8; 16]>::create(&mut pm, Region::new(0, size), cfg)
                .unwrap();
        let k = [0xAB; 16];
        let v = [0xCD; 16];
        t.insert(&mut pm, k, v).unwrap();
        assert_eq!(t.get(&mut pm, &k), Some(v));
        t.check_consistency(&mut pm).unwrap();
    }

    #[test]
    fn strided_layout_behaves_identically() {
        let cfg = GroupHashConfig::new(256, 16).with_probe(ProbeLayout::Strided);
        let (mut pm, mut t, _) = make_cfg(cfg);
        for k in 0..180u64 {
            t.insert(&mut pm, k, k).unwrap();
        }
        for k in 0..180u64 {
            assert_eq!(t.get(&mut pm, &k), Some(k));
        }
        t.check_consistency(&mut pm).unwrap();
        for k in 0..180u64 {
            assert!(t.remove(&mut pm, &k));
        }
        assert_eq!(t.len(&mut pm), 0);
        t.check_consistency(&mut pm).unwrap();
    }

    #[test]
    fn two_choice_behaves_identically() {
        let cfg = GroupHashConfig::new(256, 16).with_choice(ChoiceMode::TwoChoice);
        let (mut pm, mut t, region) = make_cfg(cfg);
        for k in 0..200u64 {
            t.insert(&mut pm, k, k + 9).unwrap();
        }
        for k in 0..200u64 {
            assert_eq!(t.get(&mut pm, &k), Some(k + 9));
        }
        t.check_consistency(&mut pm).unwrap();
        for k in 0..100u64 {
            assert!(t.remove(&mut pm, &k));
        }
        assert_eq!(t.len(&mut pm), 100);
        t.check_consistency(&mut pm).unwrap();
        // Reopen keeps the mode.
        let t2 = GroupHash::<SimPmem, u64, u64>::open(&mut pm, region).unwrap();
        assert_eq!(t2.config().choice, ChoiceMode::TwoChoice);
        assert_eq!(t2.len(&mut pm), 100);
    }

    #[test]
    fn two_choice_improves_utilization() {
        // The paper's §4.4 claim: a second hash function raises the
        // space-utilization ratio (at a locality cost).
        let fill_until_full = |cfg: GroupHashConfig| {
            let (mut pm, mut t, _) = make_cfg(cfg);
            let mut k = 0u64;
            loop {
                match t.insert(&mut pm, k.wrapping_mul(0x9E3779B97F4A7C15), k) {
                    Ok(()) => k += 1,
                    Err(InsertError::TableFull) => break,
                    Err(e) => panic!("{e}"),
                }
            }
            t.len(&mut pm) as f64 / t.capacity() as f64
        };
        let single = fill_until_full(GroupHashConfig::new(512, 64));
        let double = fill_until_full(
            GroupHashConfig::new(512, 64).with_choice(ChoiceMode::TwoChoice),
        );
        assert!(
            double > single + 0.03,
            "two-choice {double:.3} should beat single {single:.3}"
        );
    }

    #[test]
    fn logged_commit_behaves_identically() {
        let cfg = GroupHashConfig::new(256, 16).with_commit(CommitStrategy::UndoLog);
        let (mut pm, mut t, _) = make_cfg(cfg);
        for k in 0..100u64 {
            t.insert(&mut pm, k, k + 5).unwrap();
        }
        for k in 0..50u64 {
            assert!(t.remove(&mut pm, &k));
        }
        for k in 50..100u64 {
            assert_eq!(t.get(&mut pm, &k), Some(k + 5));
        }
        t.check_consistency(&mut pm).unwrap();
    }

    #[test]
    fn volatile_count_matches_persistent() {
        let cfg_v = GroupHashConfig::new(256, 16).with_count_mode(CountMode::Volatile);
        let (mut pm_v, mut tv, region) = make_cfg(cfg_v);
        let (mut pm_p, mut tp, _) = make(256, 16);
        for k in 0..120u64 {
            tv.insert(&mut pm_v, k, k).unwrap();
            tp.insert(&mut pm_p, k, k).unwrap();
        }
        for k in 0..40u64 {
            tv.remove(&mut pm_v, &k);
            tp.remove(&mut pm_p, &k);
        }
        assert_eq!(tv.len(&mut pm_v), tp.len(&mut pm_p));
        // Volatile count is rebuilt on open.
        let tv2 = GroupHash::<SimPmem, u64, u64>::open(&mut pm_v, region).unwrap();
        assert_eq!(tv2.len(&mut pm_v), 80);
    }

    #[test]
    fn volatile_count_skips_header_flushes() {
        let cfg_v = GroupHashConfig::new(256, 16).with_count_mode(CountMode::Volatile);
        let (mut pm_v, mut tv, _) = make_cfg(cfg_v);
        let (mut pm_p, mut tp, _) = make(256, 16);
        pm_v.reset_stats();
        pm_p.reset_stats();
        tv.insert(&mut pm_v, 1, 1).unwrap();
        tp.insert(&mut pm_p, 1, 1).unwrap();
        assert!(pm_v.stats().flushes < pm_p.stats().flushes);
    }

    #[test]
    fn fingerprint_mode_behaves_identically() {
        let cfg = GroupHashConfig::new(256, 16).with_fp_mode(FpMode::On);
        let (mut pm, mut t, region) = make_cfg(cfg);
        for k in 0..200u64 {
            t.insert(&mut pm, k, k * 7).unwrap();
        }
        for k in 0..200u64 {
            assert_eq!(t.get(&mut pm, &k), Some(k * 7));
        }
        for k in 200..400u64 {
            assert_eq!(t.get(&mut pm, &k), None, "negative lookup {k}");
        }
        t.check_consistency(&mut pm).unwrap(); // includes verify_fp_cache
        for k in 0..100u64 {
            assert!(t.remove(&mut pm, &k));
            assert_eq!(t.get(&mut pm, &k), None);
        }
        assert!(t.update_in_place(&mut pm, &150, 1));
        assert_eq!(t.get(&mut pm, &150), Some(1));
        t.check_consistency(&mut pm).unwrap();
        // Reopen keeps the mode and rebuilds an agreeing cache.
        let t2 = GroupHash::<SimPmem, u64, u64>::open(&mut pm, region).unwrap();
        assert_eq!(t2.config().fp, FpMode::On);
        t2.verify_fp_cache(&mut pm).unwrap();
        for k in 100..200u64 {
            assert_eq!(t2.get(&mut pm, &k), Some(if k == 150 { 1 } else { k * 7 }));
        }
    }

    #[test]
    fn fingerprint_matches_off_mode_state() {
        // Same ops, fp on vs off: the NVM image must be bit-identical
        // (the cache is a pure accelerator).
        let (mut pm_off, mut t_off, _) = make(256, 16);
        let cfg = GroupHashConfig::new(256, 16).with_fp_mode(FpMode::On);
        let (mut pm_on, mut t_on, _) = make_cfg(cfg);
        for k in 0..150u64 {
            t_off.insert(&mut pm_off, k, k).unwrap();
            t_on.insert(&mut pm_on, k, k).unwrap();
        }
        for k in 0..50u64 {
            assert_eq!(t_off.remove(&mut pm_off, &k), t_on.remove(&mut pm_on, &k));
        }
        // Compare the whole pool except the header's flags slot (the
        // persisted FpMode bit is the single intended difference).
        let len = pm_off.len();
        let mut a = vec![0u8; len];
        let mut b = vec![0u8; len];
        pm_off.read(0, &mut a);
        pm_on.read(0, &mut b);
        // The flags geometry slot (header offset 56) is the single
        // intended difference: the persisted FpMode bit.
        let diff: Vec<usize> = (0..len).filter(|&i| a[i] != b[i]).collect();
        assert!(
            !diff.is_empty() && diff.iter().all(|&i| (56..64).contains(&i)),
            "unexpected NVM divergence at offsets {:?}",
            &diff[..diff.len().min(8)]
        );
    }

    #[test]
    fn fingerprint_strided_roundtrip() {
        let cfg = GroupHashConfig::new(256, 16)
            .with_probe(ProbeLayout::Strided)
            .with_fp_mode(FpMode::On);
        let (mut pm, mut t, _) = make_cfg(cfg);
        for k in 0..180u64 {
            t.insert(&mut pm, k, k).unwrap();
        }
        for k in 0..180u64 {
            assert_eq!(t.get(&mut pm, &k), Some(k));
        }
        for k in 180..360u64 {
            assert_eq!(t.get(&mut pm, &k), None);
        }
        t.check_consistency(&mut pm).unwrap();
        for k in 0..180u64 {
            assert!(t.remove(&mut pm, &k));
        }
        t.check_consistency(&mut pm).unwrap();
    }

    #[test]
    fn fingerprint_two_choice_roundtrip() {
        let cfg = GroupHashConfig::new(256, 16)
            .with_choice(ChoiceMode::TwoChoice)
            .with_fp_mode(FpMode::On);
        let (mut pm, mut t, _) = make_cfg(cfg);
        for k in 0..220u64 {
            t.insert(&mut pm, k, k + 3).unwrap();
        }
        for k in 0..220u64 {
            assert_eq!(t.get(&mut pm, &k), Some(k + 3));
        }
        for k in 1000..1200u64 {
            assert_eq!(t.get(&mut pm, &k), None);
        }
        t.check_consistency(&mut pm).unwrap();
    }

    #[test]
    fn fingerprint_insert_flush_budget_unchanged() {
        // The cache must be free on the write path: exactly the paper's
        // 3 flushes / 3 fences per insert, and identical remove costs.
        let (mut pm_off, mut t_off, _) = make(256, 16);
        let cfg = GroupHashConfig::new(256, 16).with_fp_mode(FpMode::On);
        let (mut pm_on, mut t_on, _) = make_cfg(cfg);
        pm_off.reset_stats();
        pm_on.reset_stats();
        t_off.insert(&mut pm_off, 1, 1).unwrap();
        t_on.insert(&mut pm_on, 1, 1).unwrap();
        assert_eq!(pm_on.stats().flushes, 3);
        assert_eq!(pm_on.stats().fences, 3);
        assert_eq!(pm_on.stats().flushes, pm_off.stats().flushes);
        assert_eq!(pm_on.stats().fences, pm_off.stats().fences);
        assert_eq!(pm_on.stats().writes, pm_off.stats().writes);
        assert_eq!(pm_on.stats().atomic_writes, pm_off.stats().atomic_writes);
        pm_off.reset_stats();
        pm_on.reset_stats();
        assert!(t_off.remove(&mut pm_off, &1));
        assert!(t_on.remove(&mut pm_on, &1));
        assert_eq!(pm_on.stats().flushes, pm_off.stats().flushes);
        assert_eq!(pm_on.stats().fences, pm_off.stats().fences);
        assert_eq!(pm_on.stats().bytes_written, pm_off.stats().bytes_written);
    }

    #[test]
    fn fingerprint_cuts_key_reads_on_negative_lookups() {
        // The accelerator's whole point: far fewer pool reads when the
        // probed keys are absent. (bytes_read compares the full probe
        // path; the harness experiment quantifies the cell-key reads.)
        let run = |fp: FpMode| {
            let cfg = GroupHashConfig::new(1 << 12, 64).with_fp_mode(fp);
            let (mut pm, mut t, _) = make_cfg(cfg);
            for k in 0..4000u64 {
                t.insert(&mut pm, k, k).unwrap();
            }
            pm.reset_stats();
            for k in 100_000..101_000u64 {
                assert_eq!(t.get(&mut pm, &k), None);
            }
            pm.stats().bytes_read
        };
        let off = run(FpMode::Off);
        let on = run(FpMode::On);
        assert!(
            on * 2 < off,
            "fp cache should halve negative-probe NVM reads: {on} vs {off}"
        );
    }

    #[cfg(feature = "instrument")]
    #[test]
    fn fingerprint_counters_and_probe_parity() {
        // Probe histograms are defined to be mode-independent, and the
        // fingerprint counters must account for every occupied cell the
        // scan passed: key_reads = hits + false_positives.
        let run = |fp: FpMode| {
            let cfg = GroupHashConfig::new(512, 32).with_fp_mode(fp);
            let (mut pm, mut t, _) = make_cfg(cfg);
            for k in 0..700u64 {
                let _ = t.insert(&mut pm, k, k);
            }
            for k in 0..700u64 {
                let _ = t.get(&mut pm, &k);
            }
            for k in 5000..5500u64 {
                assert_eq!(t.get(&mut pm, &k), None);
            }
            t
        };
        let t_off = run(FpMode::Off);
        let t_on = run(FpMode::On);
        let (i_off, i_on) = (&t_off.instr, &t_on.instr);
        assert_eq!(i_off.probe.count(), i_on.probe.count());
        assert_eq!(i_off.probe.to_json().to_string(), i_on.probe.to_json().to_string());
        let f = &i_on.fingerprint;
        assert_eq!(f.key_reads.get(), f.hits.get() + f.false_positives.get());
        assert!(f.skips.get() > 0, "tag filter never skipped a cell");
        assert!(f.key_reads.get() < i_off.fingerprint.key_reads.get());
        // Off mode: no filter outcomes, only raw key reads.
        assert_eq!(i_off.fingerprint.hits.get(), 0);
        assert_eq!(i_off.fingerprint.skips.get(), 0);
    }

    #[test]
    fn paper_insert_flush_budget() {
        // The paper's insert: persist cell + persist bitmap + persist count
        // = 3 flushed lines, 3 fences. No more (that is the whole point).
        let (mut pm, mut t, _) = make(256, 16);
        pm.reset_stats();
        t.insert(&mut pm, 1, 1).unwrap();
        assert_eq!(pm.stats().flushes, 3);
        assert_eq!(pm.stats().fences, 3);
        // And the logged ablation costs strictly more.
        let cfg = GroupHashConfig::new(256, 16).with_commit(CommitStrategy::UndoLog);
        let (mut pm_l, mut tl, _) = make_cfg(cfg);
        pm_l.reset_stats();
        tl.insert(&mut pm_l, 1, 1).unwrap();
        assert!(pm_l.stats().flushes >= 2 * pm.stats().flushes);
    }
}
