//! DRAM-resident per-cell fingerprint cache.
//!
//! One volatile tag byte per cell, per level, derived from a third hash
//! stream ([`HashPair::h3`]) so the tag carries information the slot index
//! does not already encode. The cache is a **pure accelerator**: nothing
//! is persisted, no flush or fence is ever issued on its behalf, and the
//! table's NVM state is bit-identical with the cache on or off. On
//! `open`/`recover` it is rebuilt from the occupancy bitmaps + cells, the
//! only authoritative state.
//!
//! Group scans consult the cache word-wise: eight tags load as one `u64`
//! and are compared against the probe tag with the SWAR zero-byte trick
//! ([`match_bits`](nvm_table::probe::match_bits), shared with the other
//! schemes via the probe-plan layer), then ANDed with the corresponding
//! occupancy bits so only plausible cells have their key bytes read from
//! the pool.
//!
//! # Shared-writer maintenance
//!
//! Tags are packed eight to an [`AtomicU64`] and updated with a single
//! read-modify-write per byte lane, so the lock-free CAS insert/remove
//! path (`GroupHash::try_insert_shared` / `try_remove_shared`) can
//! maintain the cache through `&self` while other writers update
//! neighbouring lanes of the same word. A tag is written inside the
//! publishing writer's cell-claim window, so two writers never race on
//! the *same* lane; the word-level RMW only arbitrates *different* cells
//! sharing a word. Readers load whole words `Relaxed` — a racing update
//! can at worst make the filter admit a stale candidate (the key compare
//! rejects it) for cells the reader was not synchronized with anyway.
//!
//! [`HashPair::h3`]: nvm_hashfn::HashPair::h3

use std::sync::atomic::{AtomicU64, Ordering};

/// The volatile tag arrays for a two-level table. Indexed by level
/// (0 = level 1, 1 = level 2) and cell index; eight tags per word.
#[derive(Debug)]
pub(crate) struct FpCache {
    levels: [Vec<AtomicU64>; 2],
}

impl Clone for FpCache {
    fn clone(&self) -> Self {
        let copy = |l: &Vec<AtomicU64>| {
            l.iter()
                .map(|w| AtomicU64::new(w.load(Ordering::Relaxed)))
                .collect()
        };
        FpCache {
            levels: [copy(&self.levels[0]), copy(&self.levels[1])],
        }
    }
}

impl FpCache {
    /// A zeroed cache for `cells_per_level` cells in each level. The
    /// arrays are padded to a multiple of 64 tags (8 words) so word loads
    /// near the end of tiny tables never index out of bounds (padding
    /// tags are never candidates — their occupancy bits are always
    /// clear).
    pub fn new(cells_per_level: u64) -> FpCache {
        let words = (cells_per_level as usize).next_multiple_of(64) / 8;
        let make = || (0..words).map(|_| AtomicU64::new(0)).collect();
        FpCache {
            levels: [make(), make()],
        }
    }

    /// The cached tag for `(level, idx)`. Only meaningful while the
    /// cell's occupancy bit is set.
    #[inline]
    pub fn get(&self, level: usize, idx: u64) -> u8 {
        let w = self.levels[level][idx as usize / 8].load(Ordering::Relaxed);
        (w >> (8 * (idx % 8))) as u8
    }

    /// Stores `tag` into one byte lane of the word owning `idx` with a
    /// single RMW, leaving the other seven lanes as their current values.
    #[inline]
    fn store_lane(&self, level: usize, idx: u64, tag: u8) {
        let shift = 8 * (idx % 8);
        let mask = 0xFFu64 << shift;
        let lane = u64::from(tag) << shift;
        self.levels[level][idx as usize / 8]
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |w| {
                Some((w & !mask) | lane)
            })
            .expect("fetch_update closure never fails");
    }

    /// Records `tag` for `(level, idx)` (on insert / bulk load / rebuild).
    /// `&self`: safe to call from concurrent writers holding the cell's
    /// claim.
    #[inline]
    pub fn set(&self, level: usize, idx: u64, tag: u8) {
        self.store_lane(level, idx, tag);
    }

    /// Zeroes the tag for `(level, idx)` (on delete; keeps the cache
    /// canonical so rebuilds compare bit-for-bit).
    #[inline]
    pub fn clear(&self, level: usize, idx: u64) {
        self.store_lane(level, idx, 0);
    }

    /// Loads the eight tags `[byte_base, byte_base + 8)` of `level` as a
    /// little-endian word. `byte_base` must be 8-byte aligned.
    #[inline]
    pub fn word(&self, level: usize, byte_base: u64) -> u64 {
        debug_assert_eq!(byte_base % 8, 0);
        self.levels[level][byte_base as usize / 8].load(Ordering::Relaxed)
    }

    /// Zeroes every tag (rebuild preamble).
    pub fn reset(&self) {
        for l in &self.levels {
            for w in l {
                w.store(0, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_table::probe::match_bits;

    #[test]
    fn word_loads_tags_in_lane_order() {
        let fp = FpCache::new(64);
        for i in 0..8u64 {
            fp.set(1, 8 + i, 0x10 + i as u8);
        }
        let w = fp.word(1, 8);
        assert_eq!(match_bits(w, 0x13), 1 << 3);
        fp.clear(1, 11);
        assert_eq!(match_bits(fp.word(1, 8), 0x13), 0);
    }

    #[test]
    fn padding_allows_word_loads_on_tiny_tables() {
        let fp = FpCache::new(4); // padded to 64
        assert_eq!(fp.word(0, 0), 0);
        assert_eq!(fp.word(1, 56), 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let fp = FpCache::new(128);
        fp.set(0, 3, 9);
        fp.set(1, 100, 7);
        fp.reset();
        assert_eq!(fp.get(0, 3), 0);
        assert_eq!(fp.get(1, 100), 0);
    }

    #[test]
    fn clone_copies_current_tags() {
        let fp = FpCache::new(64);
        fp.set(0, 5, 0xAB);
        let c = fp.clone();
        fp.set(0, 5, 0xCD);
        assert_eq!(c.get(0, 5), 0xAB);
        assert_eq!(fp.get(0, 5), 0xCD);
    }

    #[test]
    fn concurrent_writers_on_one_word_keep_all_lanes() {
        // Eight threads each own one lane of the same tag word; every
        // update must survive its neighbours' RMWs.
        let fp = std::sync::Arc::new(FpCache::new(64));
        let threads: Vec<_> = (0..8u64)
            .map(|lane| {
                let fp = std::sync::Arc::clone(&fp);
                std::thread::spawn(move || {
                    for round in 0..1000u64 {
                        fp.set(1, lane, (lane as u8) ^ (round as u8));
                    }
                    fp.set(1, lane, 0x40 + lane as u8);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        for lane in 0..8u64 {
            assert_eq!(fp.get(1, lane), 0x40 + lane as u8);
        }
    }
}
