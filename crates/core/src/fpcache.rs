//! DRAM-resident per-cell fingerprint cache.
//!
//! One volatile tag byte per cell, per level, derived from a third hash
//! stream ([`HashPair::h3`]) so the tag carries information the slot index
//! does not already encode. The cache is a **pure accelerator**: nothing
//! is persisted, no flush or fence is ever issued on its behalf, and the
//! table's NVM state is bit-identical with the cache on or off. On
//! `open`/`recover` it is rebuilt from the occupancy bitmaps + cells, the
//! only authoritative state.
//!
//! Group scans consult the cache word-wise: eight tags load as one `u64`
//! and are compared against the probe tag with the SWAR zero-byte trick
//! ([`match_bits`](nvm_table::probe::match_bits), shared with the other
//! schemes via the probe-plan layer), then ANDed with the corresponding
//! occupancy bits so only plausible cells have their key bytes read from
//! the pool.
//!
//! [`HashPair::h3`]: nvm_hashfn::HashPair::h3

/// The volatile tag arrays for a two-level table. Indexed by level
/// (0 = level 1, 1 = level 2) and cell index.
#[derive(Debug, Clone)]
pub(crate) struct FpCache {
    levels: [Vec<u8>; 2],
}

impl FpCache {
    /// A zeroed cache for `cells_per_level` cells in each level. The
    /// arrays are padded to a multiple of 64 bytes so word loads near the
    /// end of tiny tables never index out of bounds (padding tags are
    /// never candidates — their occupancy bits are always clear).
    pub fn new(cells_per_level: u64) -> FpCache {
        let len = (cells_per_level as usize).next_multiple_of(64);
        FpCache {
            levels: [vec![0; len], vec![0; len]],
        }
    }

    /// The cached tag for `(level, idx)`. Only meaningful while the
    /// cell's occupancy bit is set.
    #[inline]
    pub fn get(&self, level: usize, idx: u64) -> u8 {
        self.levels[level][idx as usize]
    }

    /// Records `tag` for `(level, idx)` (on insert / bulk load / rebuild).
    #[inline]
    pub fn set(&mut self, level: usize, idx: u64, tag: u8) {
        self.levels[level][idx as usize] = tag;
    }

    /// Zeroes the tag for `(level, idx)` (on delete; keeps the cache
    /// canonical so rebuilds compare bit-for-bit).
    #[inline]
    pub fn clear(&mut self, level: usize, idx: u64) {
        self.levels[level][idx as usize] = 0;
    }

    /// Loads the eight tags `[byte_base, byte_base + 8)` of `level` as a
    /// little-endian word. `byte_base` must be 8-byte aligned.
    #[inline]
    pub fn word(&self, level: usize, byte_base: u64) -> u64 {
        debug_assert_eq!(byte_base % 8, 0);
        let b = byte_base as usize;
        u64::from_le_bytes(self.levels[level][b..b + 8].try_into().unwrap())
    }

    /// Zeroes every tag (rebuild preamble).
    pub fn reset(&mut self) {
        for l in &mut self.levels {
            l.fill(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_table::probe::match_bits;

    #[test]
    fn word_loads_tags_in_lane_order() {
        let mut fp = FpCache::new(64);
        for i in 0..8u64 {
            fp.set(1, 8 + i, 0x10 + i as u8);
        }
        let w = fp.word(1, 8);
        assert_eq!(match_bits(w, 0x13), 1 << 3);
        fp.clear(1, 11);
        assert_eq!(match_bits(fp.word(1, 8), 0x13), 0);
    }

    #[test]
    fn padding_allows_word_loads_on_tiny_tables() {
        let fp = FpCache::new(4); // padded to 64
        assert_eq!(fp.word(0, 0), 0);
        assert_eq!(fp.word(1, 56), 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut fp = FpCache::new(128);
        fp.set(0, 3, 9);
        fp.set(1, 100, 7);
        fp.reset();
        assert_eq!(fp.get(0, 3), 0);
        assert_eq!(fp.get(1, 100), 0);
    }
}
