//! DRAM-resident per-cell fingerprint cache.
//!
//! One volatile tag byte per cell, per level, derived from a third hash
//! stream ([`HashPair::h3`]) so the tag carries information the slot index
//! does not already encode. The cache is a **pure accelerator**: nothing
//! is persisted, no flush or fence is ever issued on its behalf, and the
//! table's NVM state is bit-identical with the cache on or off. On
//! `open`/`recover` it is rebuilt from the occupancy bitmaps + cells, the
//! only authoritative state.
//!
//! Group scans consult the cache word-wise: eight tags load as one `u64`
//! and are compared against the probe tag with the SWAR zero-byte trick
//! (no unsafe SIMD), then ANDed with the corresponding occupancy bits so
//! only plausible cells have their key bytes read from the pool.
//!
//! [`HashPair::h3`]: nvm_hashfn::HashPair::h3

/// Broadcasts `tag` into all eight lanes of a `u64`.
#[inline]
pub(crate) fn broadcast(tag: u8) -> u64 {
    u64::from(tag) * 0x0101_0101_0101_0101
}

/// Returns an 8-bit mask whose bit `i` is set iff byte `i` (little-endian
/// lane order) of `word` equals `tag`.
///
/// Lane-equality uses the SWAR zero-byte test on
/// `x = word ^ broadcast(tag)`. Note the *exact* per-byte variant: the
/// textbook `(x - 0x01…) & !x & 0x80…` only answers "is there a zero
/// byte" — its subtraction borrows can mark the byte above a zero byte
/// too. Adding `0x7F` to each byte's low 7 bits instead never carries
/// across lanes, so `y | x` has a byte's high bit set iff that byte is
/// nonzero. The zero-byte high bits are then compressed to the low 8
/// bits with a carry-free multiply (all partial products land on
/// distinct bit positions).
#[inline]
pub(crate) fn match_bits(word: u64, tag: u8) -> u64 {
    const LO7: u64 = 0x7F7F_7F7F_7F7F_7F7F;
    let x = word ^ broadcast(tag);
    let y = (x & LO7).wrapping_add(LO7);
    let hi = !(y | x | LO7); // bit 8i+7 set iff byte i of x is zero
    ((hi >> 7).wrapping_mul(0x0102_0408_1020_4080)) >> 56
}

/// The volatile tag arrays for a two-level table. Indexed by level
/// (0 = level 1, 1 = level 2) and cell index.
#[derive(Debug, Clone)]
pub(crate) struct FpCache {
    levels: [Vec<u8>; 2],
}

impl FpCache {
    /// A zeroed cache for `cells_per_level` cells in each level. The
    /// arrays are padded to a multiple of 64 bytes so word loads near the
    /// end of tiny tables never index out of bounds (padding tags are
    /// never candidates — their occupancy bits are always clear).
    pub fn new(cells_per_level: u64) -> FpCache {
        let len = (cells_per_level as usize).next_multiple_of(64);
        FpCache {
            levels: [vec![0; len], vec![0; len]],
        }
    }

    /// The cached tag for `(level, idx)`. Only meaningful while the
    /// cell's occupancy bit is set.
    #[inline]
    pub fn get(&self, level: usize, idx: u64) -> u8 {
        self.levels[level][idx as usize]
    }

    /// Records `tag` for `(level, idx)` (on insert / bulk load / rebuild).
    #[inline]
    pub fn set(&mut self, level: usize, idx: u64, tag: u8) {
        self.levels[level][idx as usize] = tag;
    }

    /// Zeroes the tag for `(level, idx)` (on delete; keeps the cache
    /// canonical so rebuilds compare bit-for-bit).
    #[inline]
    pub fn clear(&mut self, level: usize, idx: u64) {
        self.levels[level][idx as usize] = 0;
    }

    /// Loads the eight tags `[byte_base, byte_base + 8)` of `level` as a
    /// little-endian word. `byte_base` must be 8-byte aligned.
    #[inline]
    pub fn word(&self, level: usize, byte_base: u64) -> u64 {
        debug_assert_eq!(byte_base % 8, 0);
        let b = byte_base as usize;
        u64::from_le_bytes(self.levels[level][b..b + 8].try_into().unwrap())
    }

    /// Zeroes every tag (rebuild preamble).
    pub fn reset(&mut self) {
        for l in &mut self.levels {
            l.fill(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar reference for the SWAR lane-equality compress.
    fn match_bits_ref(word: u64, tag: u8) -> u64 {
        let mut m = 0u64;
        for i in 0..8 {
            if (word >> (8 * i)) as u8 == tag {
                m |= 1 << i;
            }
        }
        m
    }

    #[test]
    fn swar_matches_scalar_reference() {
        // Deterministic pseudo-random coverage plus adversarial corners.
        let mut x = 0x243F_6A88_85A3_08D3u64; // splitmix-ish walk
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(29)
                .wrapping_add(1);
            let tag = (x >> 56) as u8;
            assert_eq!(match_bits(x, tag), match_bits_ref(x, tag), "word {x:#x}");
            assert_eq!(match_bits(x, 0), match_bits_ref(x, 0));
        }
        for word in [0u64, u64::MAX, 0x0001_0203_0405_0607, broadcast(0x7F)] {
            for tag in [0u8, 1, 0x7F, 0x80, 0xFF] {
                assert_eq!(match_bits(word, tag), match_bits_ref(word, tag));
            }
        }
    }

    #[test]
    fn match_bits_all_and_none() {
        assert_eq!(match_bits(broadcast(0xAB), 0xAB), 0xFF);
        assert_eq!(match_bits(broadcast(0xAB), 0xAC), 0);
    }

    #[test]
    fn word_loads_tags_in_lane_order() {
        let mut fp = FpCache::new(64);
        for i in 0..8u64 {
            fp.set(1, 8 + i, 0x10 + i as u8);
        }
        let w = fp.word(1, 8);
        assert_eq!(match_bits(w, 0x13), 1 << 3);
        fp.clear(1, 11);
        assert_eq!(match_bits(fp.word(1, 8), 0x13), 0);
    }

    #[test]
    fn padding_allows_word_loads_on_tiny_tables() {
        let fp = FpCache::new(4); // padded to 64
        assert_eq!(fp.word(0, 0), 0);
        assert_eq!(fp.word(1, 56), 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut fp = FpCache::new(128);
        fp.set(0, 3, 9);
        fp.set(1, 100, 7);
        fp.reset();
        assert_eq!(fp.get(0, 3), 0);
        assert_eq!(fp.get(1, 100), 0);
    }
}
