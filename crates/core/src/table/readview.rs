//! A read-only, `Copy`-able view of a [`GroupHash`](super::GroupHash).
//!
//! [`GroupReadView`] snapshots the table's *volatile* description — the
//! config, the hash streams, and the two cell-store handles (regions +
//! geometry, no pool bytes) — and answers lookups through any
//! [`PmemRead`] implementor. It deliberately carries **no** write-capable
//! pool surface, no fingerprint cache, and no instrumentation: it is the
//! minimal probe machine that concurrent readers clone and run lock-free
//! (the seqlock in `crate::concurrent` validates each optimistic read).
//!
//! The view stays correct across any number of inserts/removes on the
//! owning table because everything it holds is layout, not contents: the
//! paper's 8-byte atomic bitmap publish means the pool itself is always
//! in a consistent committed state between (not during) bit flips.
//!
//! Layering: this module may name only the read-side pool surface — the
//! `ci.sh` lint rejects any use of the write-capable trait here.

use super::probe;
use crate::config::GroupHashConfig;
use nvm_hashfn::{HashKey, HashPair, Pod};
use nvm_pmem::PmemRead;
use nvm_table::probe::GroupPlan;
use nvm_table::CellStore;

/// A read-only snapshot of a group-hash table's geometry: enough to run
/// Algorithm 2 (`get`) against any read handle, nothing more.
///
/// `Copy` by construction — cloning a view is moving ~100 bytes of plain
/// data, so every reader thread can own one.
#[derive(Debug)]
pub struct GroupReadView<K: HashKey, V: Pod> {
    config: GroupHashConfig,
    hash: HashPair,
    store1: CellStore<K, V>,
    store2: CellStore<K, V>,
}

// Manual impls for the same reason as `CellStore`: a derive would
// wrongly require `K: Copy, V: Copy`.
impl<K: HashKey, V: Pod> Clone for GroupReadView<K, V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<K: HashKey, V: Pod> Copy for GroupReadView<K, V> {}

impl<K: HashKey, V: Pod> GroupReadView<K, V> {
    pub(super) fn new(
        config: GroupHashConfig,
        hash: HashPair,
        store1: CellStore<K, V>,
        store2: CellStore<K, V>,
    ) -> Self {
        GroupReadView {
            config,
            hash,
            store1,
            store2,
        }
    }

    /// The configuration the view was captured from.
    pub fn config(&self) -> &GroupHashConfig {
        &self.config
    }

    /// Algorithm 2 against a bare read handle: candidate level-1 slot(s),
    /// then the matched level-2 group(s). Key-first (no fingerprint
    /// filter — the DRAM tag cache belongs to the owning table, whose
    /// mutators keep it coherent; a detached view could not see updates).
    pub fn get<R: PmemRead>(&self, pm: &R, key: &K) -> Option<V> {
        let (k1, k2) = probe::candidate_slots(&self.hash, &self.config, key);
        if self.level1_holds(pm, k1, key) {
            return Some(self.store1.read_value(pm, k1));
        }
        if let Some(k2) = k2 {
            if self.level1_holds(pm, k2, key) {
                return Some(self.store1.read_value(pm, k2));
            }
        }
        let plan = probe::plan(&self.config);
        let g1 = plan.group_of_slot(k1);
        if let Some(idx) = self.find_in_group(pm, &plan, g1, key) {
            return Some(self.store2.read_value(pm, idx));
        }
        if let Some(k2) = k2 {
            let g2 = plan.group_of_slot(k2);
            if g2 != g1 {
                if let Some(idx) = self.find_in_group(pm, &plan, g2, key) {
                    return Some(self.store2.read_value(pm, idx));
                }
            }
        }
        None
    }

    /// Whether `key` is present.
    pub fn contains<R: PmemRead>(&self, pm: &R, key: &K) -> bool {
        self.get(pm, key).is_some()
    }

    #[inline]
    fn level1_holds<R: PmemRead>(&self, pm: &R, k: u64, key: &K) -> bool {
        self.store1.is_occupied(pm, k) && self.store1.read_key(pm, k) == *key
    }

    /// Scans group `g`'s level-2 cells for `key` under the configured
    /// probe layout (the `plan.cell` indirection covers both contiguous
    /// and strided).
    fn find_in_group<R: PmemRead>(
        &self,
        pm: &R,
        plan: &GroupPlan,
        g: u64,
        key: &K,
    ) -> Option<u64> {
        for i in 0..self.config.group_size {
            let idx = plan.cell(g, i);
            if self.store2.is_occupied(pm, idx) && self.store2.read_key(pm, idx) == *key {
                return Some(idx);
            }
        }
        None
    }
}
