//! A read-only, `Copy`-able view of a [`GroupHash`](super::GroupHash).
//!
//! [`GroupReadView`] snapshots the table's *volatile* description — the
//! config, the hash streams, and the two cell-store handles (regions +
//! geometry, no pool bytes) — and answers lookups through any
//! [`PmemRead`] implementor. It deliberately carries **no** write-capable
//! pool surface, no fingerprint cache, and no instrumentation: it is the
//! minimal probe machine that concurrent readers clone and run lock-free
//! (the seqlock in `crate::concurrent` validates each optimistic read).
//!
//! The view stays correct across any number of inserts/removes on the
//! owning table because everything it holds is layout, not contents: the
//! paper's 8-byte atomic bitmap publish means the pool itself is always
//! in a consistent committed state between (not during) bit flips.
//!
//! Layering: this module may name only the read-side pool surface — the
//! `ci.sh` lint rejects any use of the write-capable trait here.
//!
//! # Racing CAS writers
//!
//! Under the sharded table's lock-free insert/remove path, writers
//! retract cells by clearing the occupancy bit *without* bumping the
//! shard's seqlock. A reader can therefore match a cell, lose the race
//! to a remover, and read a value the scrub is already overwriting. The
//! view defends with **hit revalidation**: after reading a matched
//! cell's value it re-checks the occupancy bit and the key, and treats
//! the cell as non-matching if either changed — a linearizable miss (the
//! remove committed before the read returned). The residual ABA window —
//! retract + republish of a *different* key into the same cell, with the
//! value read landing between the two key re-checks — cannot yield a
//! torn value for ≤8-byte aligned values (single atomic load) and is
//! closed for larger values by the seqlock the concurrent wrapper layers
//! on top of structural operations.

use super::probe;
use crate::config::{GroupHashConfig, ProbeLayout};
use nvm_hashfn::{HashKey, HashPair, Pod};
use nvm_pmem::PmemRead;
use nvm_table::probe::{GroupPlan, Selection};
use nvm_table::CellStore;

/// A read-only snapshot of a group-hash table's geometry: enough to run
/// Algorithm 2 (`get`) against any read handle, nothing more.
///
/// `Copy` by construction — cloning a view is moving ~100 bytes of plain
/// data, so every reader thread can own one.
#[derive(Debug)]
pub struct GroupReadView<K: HashKey, V: Pod> {
    config: GroupHashConfig,
    hash: HashPair,
    store1: CellStore<K, V>,
    store2: CellStore<K, V>,
}

// Manual impls for the same reason as `CellStore`: a derive would
// wrongly require `K: Copy, V: Copy`.
impl<K: HashKey, V: Pod> Clone for GroupReadView<K, V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<K: HashKey, V: Pod> Copy for GroupReadView<K, V> {}

impl<K: HashKey, V: Pod> GroupReadView<K, V> {
    pub(super) fn new(
        config: GroupHashConfig,
        hash: HashPair,
        store1: CellStore<K, V>,
        store2: CellStore<K, V>,
    ) -> Self {
        GroupReadView {
            config,
            hash,
            store1,
            store2,
        }
    }

    /// The configuration the view was captured from.
    pub fn config(&self) -> &GroupHashConfig {
        &self.config
    }

    /// Algorithm 2 against a bare read handle: candidate level-1 slot(s),
    /// then the matched level-2 group(s). Key-first (no fingerprint
    /// filter — the DRAM tag cache belongs to the owning table, whose
    /// mutators keep it coherent; a detached view could not see updates).
    pub fn get<R: PmemRead>(&self, pm: &R, key: &K) -> Option<V> {
        let (k1, k2) = probe::candidate_slots(&self.hash, &self.config, key);
        if self.level1_holds(pm, k1, key) {
            if let Some(v) = self.read_hit(&self.store1, pm, k1, key) {
                return Some(v);
            }
        }
        if let Some(k2) = k2 {
            if self.level1_holds(pm, k2, key) {
                if let Some(v) = self.read_hit(&self.store1, pm, k2, key) {
                    return Some(v);
                }
            }
        }
        let plan = probe::plan(&self.config);
        let g1 = plan.group_of_slot(k1);
        if let Some(v) = self.find_in_group(pm, &plan, g1, key) {
            return Some(v);
        }
        if let Some(k2) = k2 {
            let g2 = plan.group_of_slot(k2);
            if g2 != g1 {
                if let Some(v) = self.find_in_group(pm, &plan, g2, key) {
                    return Some(v);
                }
            }
        }
        None
    }

    /// Batched Algorithm 2: one lookup per key, answers in input order,
    /// same results as calling [`GroupReadView::get`] per element. The
    /// batch is pipelined — hash everything, software-prefetch every
    /// candidate line, then resolve the probes against warm cache — so
    /// the per-key NVM latency overlaps instead of serializing.
    ///
    /// ```
    /// use group_hash::{GroupHash, GroupHashConfig};
    /// use nvm_pmem::{Pmem, PmemRead, Region, SimConfig, SimPmem};
    ///
    /// let cfg = GroupHashConfig::new(1 << 10, 64);
    /// let size = GroupHash::<SimPmem, u64, u64>::required_size(&cfg);
    /// let mut pm = SimPmem::new(size, SimConfig::fast_test());
    /// let mut t = GroupHash::create(&mut pm, Region::new(0, size), cfg).unwrap();
    /// for k in 0..64u64 {
    ///     t.insert(&mut pm, k, !k).unwrap();
    /// }
    ///
    /// // A view + read handle answer batches without the owning table.
    /// let view = t.read_view();
    /// let reader = pm.read_handle();
    /// let hits = view.get_batch(&reader, &[1u64, 63, 9999]);
    /// assert_eq!(hits, vec![Some(!1), Some(!63), None]);
    /// ```
    pub fn get_batch<R: PmemRead>(&self, pm: &R, keys: &[K]) -> Vec<Option<V>> {
        let mut out = Vec::new();
        self.get_batch_into(pm, keys, &mut out);
        out
    }

    /// Scratch-reusing form of [`GroupReadView::get_batch`]: clears `out`
    /// and fills it with one answer per key. The sharded concurrent path
    /// calls this once per seqlock attempt, reusing the same buffer across
    /// shards and retries so validation failures cost no allocation.
    pub fn get_batch_into<R: PmemRead>(&self, pm: &R, keys: &[K], out: &mut Vec<Option<V>>) {
        out.clear();
        out.resize(keys.len(), None);
        if keys.is_empty() {
            return;
        }
        // Hash the whole vector up front...
        let mut slots: Vec<(u64, Option<u64>)> = Vec::with_capacity(keys.len());
        for key in keys {
            slots.push(probe::candidate_slots(&self.hash, &self.config, key));
        }
        // ...issue every level-1 prefetch before resolving any probe...
        for &(k1, k2) in &slots {
            self.prefetch_level1(pm, k1);
            if let Some(k2) = k2 {
                self.prefetch_level1(pm, k2);
            }
        }
        // ...then resolve level 1 against warm lines. Misses survive into
        // the selection vector for the group phase.
        let plan = probe::plan(&self.config);
        let mut sel = Selection::new();
        for (i, key) in keys.iter().enumerate() {
            let (k1, k2) = slots[i];
            if self.level1_holds(pm, k1, key) {
                if let Some(v) = self.read_hit(&self.store1, pm, k1, key) {
                    out[i] = Some(v);
                    continue;
                }
            }
            if let Some(k2) = k2 {
                if self.level1_holds(pm, k2, key) {
                    if let Some(v) = self.read_hit(&self.store1, pm, k2, key) {
                        out[i] = Some(v);
                        continue;
                    }
                }
            }
            sel.push(i as u32);
        }
        // Warm the survivors' groups (contiguous layout only — strided
        // cells share no lines, so there is nothing coherent to fetch).
        if self.config.probe == ProbeLayout::Contiguous {
            for &i in sel.indices() {
                let (k1, k2) = slots[i as usize];
                let g1 = plan.group_of_slot(k1);
                self.prefetch_group(pm, g1);
                if let Some(k2) = k2 {
                    let g2 = plan.group_of_slot(k2);
                    if g2 != g1 {
                        self.prefetch_group(pm, g2);
                    }
                }
            }
        }
        for &i in sel.indices() {
            let i = i as usize;
            let key = &keys[i];
            let (k1, k2) = slots[i];
            let g1 = plan.group_of_slot(k1);
            if let Some(v) = self.find_in_group(pm, &plan, g1, key) {
                out[i] = Some(v);
                continue;
            }
            if let Some(k2) = k2 {
                let g2 = plan.group_of_slot(k2);
                if g2 != g1 {
                    if let Some(v) = self.find_in_group(pm, &plan, g2, key) {
                        out[i] = Some(v);
                    }
                }
            }
        }
    }

    /// Whether `key` is present.
    pub fn contains<R: PmemRead>(&self, pm: &R, key: &K) -> bool {
        self.get(pm, key).is_some()
    }

    /// Prefetches the lines a level-1 probe of slot `k` touches: its
    /// occupancy word and its cell's key/value bytes.
    #[inline]
    fn prefetch_level1<R: PmemRead>(&self, pm: &R, k: u64) {
        pm.prefetch(self.store1.bitmap.word_off_of(k), 8);
        pm.prefetch(self.store1.cells.cell_off(k), self.store1.cells.entry_len());
    }

    /// Prefetches a contiguous group scan's cold start: the group's
    /// occupancy words (a random access no streamer predicts) plus the
    /// head of its cell range. Key-first views walk the cells in
    /// ascending line order — the pattern the hardware stream prefetcher
    /// locks onto after the first touches — so warming the head is
    /// enough; a software prefetch per line would pay the issue cost for
    /// lines the streamer covers free.
    fn prefetch_group<R: PmemRead>(&self, pm: &R, g: u64) {
        let start = g * self.config.group_size;
        let end = start + self.config.group_size;
        let bits_lo = self.store2.bitmap.word_off_of(start);
        let bits_hi = self.store2.bitmap.word_off_of(end - 1) + 8;
        pm.prefetch(bits_lo, bits_hi - bits_lo);
        let lo = self.store2.cells.cell_off(start);
        let span = self.store2.cells.cell_off(end - 1) + self.store2.cells.entry_len() - lo;
        pm.prefetch(lo, span.min(2 * 64));
    }

    #[inline]
    fn level1_holds<R: PmemRead>(&self, pm: &R, k: u64, key: &K) -> bool {
        self.store1.is_occupied(pm, k) && self.store1.read_key(pm, k) == *key
    }

    /// Reads a matched cell's value, then revalidates the match (bit
    /// still set, key still ours). `None` means a concurrent retract beat
    /// the read — the caller treats the cell as non-matching, which
    /// linearizes the lookup after the remove's commit.
    #[inline]
    fn read_hit<R: PmemRead>(
        &self,
        store: &CellStore<K, V>,
        pm: &R,
        idx: u64,
        key: &K,
    ) -> Option<V> {
        let v = store.read_value(pm, idx);
        (store.is_occupied(pm, idx) && store.read_key(pm, idx) == *key).then_some(v)
    }

    /// Scans group `g`'s level-2 cells for `key` under the configured
    /// probe layout (the `plan.cell` indirection covers both contiguous
    /// and strided) and returns the revalidated value on a hit. A cell
    /// that matches but fails revalidation is skipped — the remover won;
    /// the rest of the group still gets scanned.
    fn find_in_group<R: PmemRead>(
        &self,
        pm: &R,
        plan: &GroupPlan,
        g: u64,
        key: &K,
    ) -> Option<V> {
        for i in 0..self.config.group_size {
            let idx = plan.cell(g, i);
            if self.store2.is_occupied(pm, idx) && self.store2.read_key(pm, idx) == *key {
                if let Some(v) = self.read_hit(&self.store2, pm, idx, key) {
                    return Some(v);
                }
            }
        }
        None
    }
}
