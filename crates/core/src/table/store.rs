//! Persistence choreography: how the group table commits.
//!
//! Every mutation — single ops included, as one-element batches — runs
//! through a [`BatchSession`](nvm_table::BatchSession) over the shared
//! [`CellStore`] primitives, with the [`Journal`](nvm_table::Journal)
//! staging pre-images first under the forced-logging ablation (and
//! compiling to nothing under the paper's atomic-bitmap commit):
//!
//! * insert (Algorithm 1 lines 4–9 / 16–21): publish = cell bytes,
//!   persist, atomic bit set — then the count bump;
//! * delete (Algorithm 3 lines 4–9 / 16–21): retract = atomic bit clear
//!   *first*, then cell scrub — a crash mid-erase leaves an unreferenced
//!   (bit = 0) cell that recovery wipes.
//!
//! The DRAM fingerprint cache is maintained here too: tags change exactly
//! when a commit changes a cell, and never cost a pool write.

use super::{GroupHash, Level};
use crate::config::CountMode;
use nvm_hashfn::{HashKey, Pod};
use nvm_pmem::Pmem;
use nvm_table::{BatchSession, TableError};

impl<P: Pmem, K: HashKey, V: Pod> GroupHash<P, K, V> {
    /// Sets the count to an absolute value with the usual atomic+persist
    /// commit (bulk operations).
    pub(crate) fn set_count_committed(&mut self, pm: &mut P, count: u64) {
        match self.config.count_mode {
            CountMode::Persistent => self.header.set_count(pm, count),
            CountMode::Volatile => {
                self.volatile_count.store(count, std::sync::atomic::Ordering::Relaxed)
            }
        }
    }

    /// Stages an insert at `(level, idx)` into `sess`: opens the journal
    /// transaction on the session's first op (ablation; no-op under the
    /// paper's atomic-bitmap commit), writes + flushes the cell bytes,
    /// and updates the DRAM fingerprint tag (no pool write).
    pub(super) fn stage_insert(
        &mut self,
        pm: &mut P,
        sess: &mut BatchSession<K, V>,
        level: Level,
        idx: u64,
        key: &K,
        value: &V,
    ) {
        if sess.is_empty() {
            self.journal.begin(pm);
        }
        let store = self.level_store(level);
        sess.stage_publish(pm, &mut self.journal, store, idx, key, value);
        if let Some(fp) = &self.fp {
            fp.set(level.idx(), idx, self.fp_tag(key));
        }
    }

    /// Stages a delete at `(level, idx)` into `sess` and drops the cell's
    /// fingerprint tag. Nothing in the pool changes until
    /// [`GroupHash::commit_batch`] — the bit clear is the delete's commit
    /// point and stays in batch order.
    pub(super) fn stage_delete(
        &mut self,
        pm: &mut P,
        sess: &mut BatchSession<K, V>,
        level: Level,
        idx: u64,
    ) {
        if sess.is_empty() {
            self.journal.begin(pm);
        }
        let store = self.level_store(level);
        sess.stage_retract(pm, &mut self.journal, store, idx);
        if let Some(fp) = &self.fp {
            fp.clear(level.idx(), idx);
        }
    }

    /// Group-commits a staged session and moves the count by `delta`
    /// (publishes minus retracts). A persistent count rides the session's
    /// commit (pre-imaged under the ablation); a volatile one is adjusted
    /// after. A one-op session reproduces the paper's single-op trace —
    /// Algorithm 1/3 lines 4–9 / 16–21 — event for event.
    pub(super) fn commit_batch(&mut self, pm: &mut P, sess: &mut BatchSession<K, V>, delta: i64) {
        debug_assert!(!sess.is_empty(), "empty sessions must skip commit");
        let count = match self.config.count_mode {
            CountMode::Persistent => {
                let v = self.header.count(pm);
                let v = v.checked_add_signed(delta).expect("count out of range");
                Some((self.header.count_off(), v))
            }
            CountMode::Volatile => None,
        };
        sess.commit(pm, &mut self.journal, count);
        if self.config.count_mode == CountMode::Volatile {
            use std::sync::atomic::Ordering;
            let v = self
                .volatile_count
                .load(Ordering::Relaxed)
                .checked_add_signed(delta)
                .expect("count out of range");
            self.volatile_count.store(v, Ordering::Relaxed);
        }
    }

    /// Rebuilds the fingerprint cache from the bitmaps + cells (the only
    /// authoritative state). No-op under `FpMode::Off`. O(capacity),
    /// reading one key per occupied cell.
    pub(super) fn rebuild_fp_cache(&mut self, pm: &P) {
        let Some(fp) = &self.fp else { return };
        fp.reset();
        let n = self.config.cells_per_level;
        for level in [Level::One, Level::Two] {
            let store = self.level_store(level);
            let mut base = 0u64;
            while base < n {
                let mut word = store.bitmap.word_containing(pm, base);
                while word != 0 {
                    let idx = base + word.trailing_zeros() as u64;
                    let tag = self.fp_tag(&store.cells.read_key(pm, idx));
                    fp.set(level.idx(), idx, tag);
                    word &= word - 1;
                }
                base += 64;
            }
        }
    }

    /// Checks that the fingerprint cache agrees with the pool: every
    /// occupied cell's cached tag must equal the tag of the key stored
    /// there (free cells are ignored — their tags are never consulted).
    /// `Ok` under `FpMode::Off`.
    pub fn verify_fp_cache(&self, pm: &P) -> Result<(), TableError> {
        let Some(fp) = &self.fp else { return Ok(()) };
        for level in [Level::One, Level::Two] {
            let store = self.level_store(level);
            for i in 0..self.config.cells_per_level {
                if !store.is_occupied(pm, i) {
                    continue;
                }
                let want = self.fp_tag(&store.read_key(pm, i));
                let got = fp.get(level.idx(), i);
                if got != want {
                    return Err(TableError::Corrupt(format!(
                        "fingerprint cache stale at level {}/cell {i}: \
                         cached {got:#04x}, key tag {want:#04x}",
                        level.idx() + 1
                    )));
                }
            }
        }
        Ok(())
    }
}
