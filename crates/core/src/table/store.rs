//! Persistence choreography: how the group table commits.
//!
//! Both mutations go through the shared [`CellStore`] primitives, with the
//! [`Journal`](nvm_table::Journal) staging pre-images first under the
//! forced-logging ablation (and compiling to nothing under the paper's
//! atomic-bitmap commit):
//!
//! * insert (Algorithm 1 lines 4–9 / 16–21): publish = cell bytes,
//!   persist, atomic bit set — then the count bump;
//! * delete (Algorithm 3 lines 4–9 / 16–21): retract = atomic bit clear
//!   *first*, then cell scrub — a crash mid-erase leaves an unreferenced
//!   (bit = 0) cell that recovery wipes.
//!
//! The DRAM fingerprint cache is maintained here too: tags change exactly
//! when a commit changes a cell, and never cost a pool write.

use super::{GroupHash, Level};
use crate::config::CountMode;
use nvm_hashfn::{HashKey, Pod};
use nvm_pmem::Pmem;

impl<P: Pmem, K: HashKey, V: Pod> GroupHash<P, K, V> {
    pub(super) fn bump_count(&mut self, pm: &mut P, up: bool) {
        match self.config.count_mode {
            CountMode::Persistent => {
                if up {
                    self.header.inc_count(pm);
                } else {
                    self.header.dec_count(pm);
                }
            }
            CountMode::Volatile => {
                if up {
                    self.volatile_count += 1;
                } else {
                    self.volatile_count -= 1;
                }
            }
        }
    }

    /// Sets the count to an absolute value with the usual atomic+persist
    /// commit (bulk operations).
    pub(crate) fn set_count_committed(&mut self, pm: &mut P, count: u64) {
        match self.config.count_mode {
            CountMode::Persistent => self.header.set_count(pm, count),
            CountMode::Volatile => self.volatile_count = count,
        }
    }

    /// The pre-image span the journal must cover for the count, if the
    /// count is persistent at all.
    fn journaled_count_off(&self) -> Option<usize> {
        (self.config.count_mode == CountMode::Persistent).then(|| self.header.count_off())
    }

    /// Commits an insert at `(level, idx)`: Algorithm 1 lines 4–9 / 16–21.
    pub(super) fn commit_insert(&mut self, pm: &mut P, level: Level, idx: u64, key: &K, value: &V) {
        let store = self.level_store(level);
        // Ablation: duplicate-copy the touched ranges first (no-op under
        // the paper's atomic-bitmap commit).
        let count_off = self.journaled_count_off();
        self.journal.begin(pm);
        store.stage_publish(pm, &mut self.journal, idx, count_off);
        store.publish(pm, idx, key, value);
        self.bump_count(pm, true);
        if self.fp.is_some() {
            // DRAM only — no pool write, no flush, no fence.
            let tag = self.fp_tag(key);
            if let Some(fp) = &mut self.fp {
                fp.set(level.idx(), idx, tag);
            }
        }
        self.journal.commit(pm);
    }

    /// Commits a delete at `(level, idx)`: Algorithm 3 lines 4–9 / 16–21.
    /// Note the inverted order versus insert (see
    /// [`CellStore::retract`](nvm_table::CellStore::retract)).
    pub(super) fn commit_delete(&mut self, pm: &mut P, level: Level, idx: u64) {
        let store = self.level_store(level);
        let count_off = self.journaled_count_off();
        self.journal.begin(pm);
        store.stage_retract(pm, &mut self.journal, idx, count_off);
        store.retract(pm, idx);
        self.bump_count(pm, false);
        if let Some(fp) = &mut self.fp {
            fp.clear(level.idx(), idx);
        }
        self.journal.commit(pm);
    }

    /// Rebuilds the fingerprint cache from the bitmaps + cells (the only
    /// authoritative state). No-op under `FpMode::Off`. O(capacity),
    /// reading one key per occupied cell.
    pub(super) fn rebuild_fp_cache(&mut self, pm: &mut P) {
        let Some(mut fp) = self.fp.take() else { return };
        fp.reset();
        let n = self.config.cells_per_level;
        for level in [Level::One, Level::Two] {
            let store = self.level_store(level);
            let mut base = 0u64;
            while base < n {
                let mut word = store.bitmap.word_containing(pm, base);
                while word != 0 {
                    let idx = base + word.trailing_zeros() as u64;
                    let tag = self.fp_tag(&store.cells.read_key(pm, idx));
                    fp.set(level.idx(), idx, tag);
                    word &= word - 1;
                }
                base += 64;
            }
        }
        self.fp = Some(fp);
    }

    /// Checks that the fingerprint cache agrees with the pool: every
    /// occupied cell's cached tag must equal the tag of the key stored
    /// there (free cells are ignored — their tags are never consulted).
    /// `Ok` under `FpMode::Off`.
    pub fn verify_fp_cache(&self, pm: &mut P) -> Result<(), String> {
        let Some(fp) = &self.fp else { return Ok(()) };
        for level in [Level::One, Level::Two] {
            let store = self.level_store(level);
            for i in 0..self.config.cells_per_level {
                if !store.is_occupied(pm, i) {
                    continue;
                }
                let want = self.fp_tag(&store.read_key(pm, i));
                let got = fp.get(level.idx(), i);
                if got != want {
                    return Err(format!(
                        "fingerprint cache stale at level {}/cell {i}: \
                         cached {got:#04x}, key tag {want:#04x}",
                        level.idx() + 1
                    ));
                }
            }
        }
        Ok(())
    }
}
