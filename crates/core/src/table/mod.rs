//! The group hash table, split along the workspace's three layers:
//!
//! * [`probe`] — pure candidate-slot/group planning (no pool I/O);
//! * [`store`] — the persistence choreography: how Algorithms 1 and 3
//!   commit through the shared [`CellStore`] + [`Journal`];
//! * [`ops`] — Algorithms 1–4 themselves, composing the two.
//!
//! This file owns the persistent layout (header/bitmaps/cells/log
//! carving), construction (`create`/`open`), and the read-side accessors;
//! the algorithmic policy lives in the submodules.

mod migration;
mod ops;
mod probe;
mod readview;
mod shared;
mod store;
#[cfg(test)]
mod tests;

pub use readview::GroupReadView;
pub use shared::{SharedCommit, TableClaims};

use crate::config::{CommitStrategy, CountMode, FpMode, GroupHashConfig};
use crate::fpcache::FpCache;
use nvm_hashfn::{HashKey, HashPair, Pod};
use nvm_metrics::SchemeInstrumentation;
use nvm_pmem::{Pmem, Region, RegionAllocator, CACHELINE};
use nvm_table::probe::GroupPlan;
use nvm_table::{
    BatchError, CellArray, CellStore, ConsistencyMode, HashScheme, InsertError, Journal,
    PmemBitmap, TableError, TableHeader,
};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// Magic word identifying a group-hash header ("GRPHASH1").
const MAGIC: u64 = 0x4752_5048_4153_4831;

/// Reserved undo-log footprint (used only by the forced-logging ablation,
/// but always carved so the layout is config-independent).
const LOG_BYTES: usize = 1024;

/// Which level a cell index refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Level {
    One,
    Two,
}

impl Level {
    /// The [`FpCache`] array index for this level.
    #[inline]
    fn idx(self) -> usize {
        match self {
            Level::One => 0,
            Level::Two => 1,
        }
    }
}

/// The journal mode implied by the commit-strategy ablation knob.
fn consistency_of(commit: CommitStrategy) -> ConsistencyMode {
    match commit {
        CommitStrategy::AtomicBitmap => ConsistencyMode::None,
        CommitStrategy::UndoLog => ConsistencyMode::UndoLog,
    }
}

/// The paper's hash table. See the crate docs for the design; all
/// persistent state lives in the pool region handed to
/// [`GroupHash::create`], and [`GroupHash::open`] reconstructs the table
/// from that region alone.
#[derive(Debug)]
pub struct GroupHash<P: Pmem, K: HashKey, V: Pod> {
    config: GroupHashConfig,
    hash: HashPair,
    header: TableHeader,
    /// Level-1 cells (the direct-mapped slots).
    store1: CellStore<K, V>,
    /// Level-2 cells (the shared groups).
    store2: CellStore<K, V>,
    /// The one place [`ConsistencyMode`] applies: a no-op under the
    /// paper's atomic-bitmap commit, an undo log under the ablation.
    journal: Journal,
    /// Cached count for [`CountMode::Volatile`]. Atomic so the shared
    /// CAS write path can maintain it through `&self`; exclusive paths
    /// use plain load/store (they own the table).
    volatile_count: AtomicU64,
    /// DRAM-resident fingerprint tags for [`FpMode::On`]; never persisted,
    /// rebuilt from bitmaps + cells on `open`/`recover`.
    fp: Option<FpCache>,
    /// Probe/occupancy/displacement recording. Derived purely from
    /// arithmetic the operations already do — recording never touches the
    /// pool, so instrumented runs report identical `PmemStats`.
    #[cfg(feature = "instrument")]
    instr: SchemeInstrumentation,
    region: Region,
    _marker: PhantomData<fn(&mut P)>,
}

impl<P: Pmem, K: HashKey, V: Pod> GroupHash<P, K, V> {
    /// Carves `region` into the table's sub-regions. Deterministic, so
    /// `open` can redo it from persisted geometry.
    fn layout(
        region: Region,
        n: u64,
    ) -> (Region, Region, Region, Region, Region, Region) {
        let mut alloc = RegionAllocator::new(region.off, region.end());
        let header = alloc.alloc_lines(TableHeader::SIZE);
        let bitmap1 = alloc.alloc_lines(PmemBitmap::region_size(n).max(8));
        let bitmap2 = alloc.alloc_lines(PmemBitmap::region_size(n).max(8));
        let cells1 = alloc.alloc_lines(CellArray::<K, V>::region_size(n));
        let cells2 = alloc.alloc_lines(CellArray::<K, V>::region_size(n));
        let log = alloc.alloc_lines(LOG_BYTES);
        (header, bitmap1, bitmap2, cells1, cells2, log)
    }

    /// Pool bytes needed for a table with this configuration.
    pub fn required_size(config: &GroupHashConfig) -> usize {
        let n = config.cells_per_level;
        TableHeader::SIZE
            + 2 * (PmemBitmap::region_size(n).max(8) + CACHELINE)
            + 2 * (CellArray::<K, V>::region_size(n) + CACHELINE)
            + LOG_BYTES
            + 2 * CACHELINE
    }

    fn assemble(region: Region, config: GroupHashConfig, header: TableHeader) -> Self {
        let n = config.cells_per_level;
        let (_, b1, b2, c1, c2, log_r) = Self::layout(region, n);
        GroupHash {
            config,
            hash: HashPair::from_seed(config.seed),
            header,
            store1: CellStore::attach(b1, c1, n),
            store2: CellStore::attach(b2, c2, n),
            journal: Journal::open(consistency_of(config.commit), log_r),
            volatile_count: AtomicU64::new(0),
            fp: (config.fp == FpMode::On).then(|| FpCache::new(n)),
            #[cfg(feature = "instrument")]
            instr: SchemeInstrumentation::new(config.group_size as usize),
            region,
            _marker: PhantomData,
        }
    }

    /// Records a completed lookup-style probe sequence (no-op without the
    /// `instrument` feature).
    #[inline]
    fn note_probe(&self, cells: u64) {
        #[cfg(feature = "instrument")]
        self.instr.record_probe(cells);
        #[cfg(not(feature = "instrument"))]
        let _ = cells;
    }

    /// Records one insert attempt: cells examined, occupied cells stepped
    /// over before placement, and the scheme's displacement count (always
    /// 0 — group hashing never relocates entries).
    #[inline]
    fn note_insert(&self, probes: u64, occupied: u64) {
        #[cfg(feature = "instrument")]
        {
            self.instr.record_probe(probes);
            self.instr.record_occupancy(occupied);
            self.instr.record_displacement(0);
        }
        #[cfg(not(feature = "instrument"))]
        let _ = (probes, occupied);
    }

    /// Records one completed batch entry point: ops committed and the
    /// pmem fences/flushes its body spent (no-op without `instrument`).
    /// Single ops route through a one-element batch and count here too.
    #[inline]
    fn note_batch(&self, ops: u64, fences: u64, flushes: u64) {
        #[cfg(feature = "instrument")]
        self.instr.batch.record(ops, fences, flushes);
        #[cfg(not(feature = "instrument"))]
        let _ = (ops, fences, flushes);
    }

    /// Records key loads issued from the pool by a lookup-style probe
    /// (recorded in both fingerprint modes, so filtered and unfiltered
    /// runs report the probe path's NVM traffic in the same counter).
    #[inline]
    fn note_key_reads(&self, n: u64) {
        #[cfg(feature = "instrument")]
        self.instr.fingerprint.key_reads.add(n);
        #[cfg(not(feature = "instrument"))]
        let _ = n;
    }

    /// Records fingerprint-filter outcomes: occupied cells skipped on a
    /// tag mismatch, tag matches whose key compared unequal, and tag
    /// matches confirmed by the key bytes.
    #[inline]
    fn note_fp(&self, skips: u64, false_positives: u64, hits: u64) {
        #[cfg(feature = "instrument")]
        {
            self.instr.fingerprint.skips.add(skips);
            self.instr.fingerprint.false_positives.add(false_positives);
            self.instr.fingerprint.hits.add(hits);
        }
        #[cfg(not(feature = "instrument"))]
        let _ = (skips, false_positives, hits);
    }

    /// Creates and initializes a fresh table in `region`.
    pub fn create(
        pm: &mut P,
        region: Region,
        config: GroupHashConfig,
    ) -> Result<Self, TableError> {
        config.validate()?;
        let need = Self::required_size(&config);
        if region.len < need {
            return Err(TableError::RegionTooSmall { have: region.len, need });
        }
        let n = config.cells_per_level;
        let (h_r, b1, b2, c1, c2, log_r) = Self::layout(region, n);
        // Cells are left as-is: the bitmap decides occupancy, and recovery
        // only trusts cells whose bit is set.
        CellStore::<K, V>::create(pm, b1, c1, n);
        CellStore::<K, V>::create(pm, b2, c2, n);
        Journal::create(pm, consistency_of(config.commit), log_r);
        let header = TableHeader::create(
            pm,
            h_r,
            MAGIC,
            config.seed,
            &[n, config.group_size, K::SIZE as u64, V::SIZE as u64, config.flags()],
        );
        Ok(Self::assemble(region, config, header))
    }

    /// Header location (first allocation of `layout`), computable without
    /// the geometry — `open` must validate the header before running the
    /// full layout, or a bogus region would panic instead of erroring.
    fn header_region(region: Region) -> Region {
        Region::new(
            nvm_pmem::align_up(region.off, CACHELINE),
            TableHeader::SIZE,
        )
    }

    /// Re-opens a table previously created in `region` (e.g. after a
    /// crash). Call [`GroupHash::recover`] before using it.
    pub fn open(pm: &mut P, region: Region) -> Result<Self, TableError> {
        let h_r = Self::header_region(region);
        if !region.contains(h_r.off, h_r.len) {
            return Err(TableError::Corrupt(
                "region too small for a table header".into(),
            ));
        }
        let header = TableHeader::open(pm, h_r, MAGIC)?;
        let n = header.geometry(pm, 0);
        let group_size = header.geometry(pm, 1);
        let key_size = header.geometry(pm, 2);
        let value_size = header.geometry(pm, 3);
        let flags = header.geometry(pm, 4);
        if key_size != K::SIZE as u64 || value_size != V::SIZE as u64 {
            return Err(TableError::TypeMismatch {
                persisted_key: key_size,
                persisted_value: value_size,
                requested_key: K::SIZE,
                requested_value: V::SIZE,
            });
        }
        let seed = header.seed(pm);
        let config = GroupHashConfig::from_persisted(n, group_size, seed, flags);
        config.validate()?;
        if region.len < Self::required_size(&config) {
            return Err(TableError::Corrupt(
                "region smaller than persisted geometry requires".into(),
            ));
        }
        let mut t = Self::assemble(region, config, header);
        if t.config.count_mode == CountMode::Volatile {
            t.volatile_count
                .store(t.store1.occupied(pm) + t.store2.occupied(pm), Ordering::Relaxed);
        }
        t.rebuild_fp_cache(pm);
        Ok(t)
    }

    /// The configuration (as persisted).
    pub fn config(&self) -> &GroupHashConfig {
        &self.config
    }

    /// The pool region this table occupies.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Level-1 slot for `key` (the paper's `k = h(key)`).
    #[inline]
    pub fn slot_of(&self, key: &K) -> u64 {
        probe::slot_of(&self.hash, &self.config, key)
    }

    /// Second candidate slot under [`ChoiceMode::TwoChoice`]; `None` in the
    /// paper's single-hash design or when both hashes coincide.
    ///
    /// [`ChoiceMode::TwoChoice`]: crate::config::ChoiceMode::TwoChoice
    #[inline]
    pub fn slot2_of(&self, key: &K) -> Option<u64> {
        probe::slot2_of(&self.hash, &self.config, key)
    }

    /// The volatile fingerprint tag for `key`: the low byte of the third
    /// hash stream, independent of the placement hashes.
    #[inline]
    pub fn fp_tag(&self, key: &K) -> u8 {
        probe::fp_tag(&self.hash, key)
    }

    /// The level-2 geometry as a pure probe plan.
    #[inline]
    pub(crate) fn plan(&self) -> GroupPlan {
        probe::plan(&self.config)
    }

    /// Group number of level-1 slot `k`.
    #[inline]
    fn group_of(&self, k: u64) -> u64 {
        self.plan().group_of_slot(k)
    }

    /// The `i`-th level-2 cell of group `g` under the configured layout.
    #[inline]
    fn group_cell(&self, g: u64, i: u64) -> u64 {
        self.plan().cell(g, i)
    }

    /// Group that owns level-2 cell `idx` (inverse of `group_cell`).
    #[inline]
    fn group_of_l2(&self, idx: u64) -> u64 {
        self.plan().group_of_cell(idx)
    }

    /// The cell store of a level.
    fn level_store(&self, level: Level) -> CellStore<K, V> {
        match level {
            Level::One => self.store1,
            Level::Two => self.store2,
        }
    }

    /// Occupied cells.
    pub fn len(&self, pm: &P) -> u64 {
        match self.config.count_mode {
            CountMode::Persistent => self.header.count(pm),
            CountMode::Volatile => self.volatile_count.load(Ordering::Relaxed),
        }
    }

    /// True when no cell is occupied.
    pub fn is_empty(&self, pm: &P) -> bool {
        self.len(pm) == 0
    }

    /// Total cells across both levels.
    pub fn capacity(&self) -> u64 {
        2 * self.config.cells_per_level
    }

    /// Captures a [`GroupReadView`]: a `Copy`-able, read-only probe
    /// machine over this table's cells that answers `get` through any
    /// [`PmemRead`](nvm_pmem::PmemRead) handle. The view holds layout
    /// only (no pool bytes), so it stays valid across mutations of the
    /// owning table; concurrent readers must pair it with a validation
    /// protocol (see `ShardedGroupHash`).
    pub fn read_view(&self) -> GroupReadView<K, V> {
        GroupReadView::new(self.config, self.hash, self.store1, self.store2)
    }

    /// Visits every stored `(key, value)` pair. Level 1 first, then level
    /// 2, each in index order.
    pub fn for_each_entry(&self, pm: &P, mut f: impl FnMut(K, V)) {
        let n = self.config.cells_per_level;
        for level in [Level::One, Level::Two] {
            let store = self.level_store(level);
            for i in 0..n {
                if store.is_occupied(pm, i) {
                    f(store.read_key(pm, i), store.read_value(pm, i));
                }
            }
        }
    }

    // ---- crate-internal accessors for analysis/expansion ----

    pub(crate) fn parts(
        &self,
    ) -> (
        &GroupHashConfig,
        PmemBitmap,
        PmemBitmap,
        CellArray<K, V>,
        CellArray<K, V>,
    ) {
        (
            &self.config,
            self.store1.bitmap,
            self.store2.bitmap,
            self.store1.cells,
            self.store2.cells,
        )
    }

    pub(crate) fn group_of_l2_cell(&self, idx: u64) -> u64 {
        self.group_of_l2(idx)
    }

    /// Detaches the fingerprint cache so bulk operations can update tags
    /// while iterating with `&self` accessors (NLL-friendly); pair with
    /// [`GroupHash::put_fp`].
    pub(crate) fn take_fp(&mut self) -> Option<FpCache> {
        self.fp.take()
    }

    pub(crate) fn put_fp(&mut self, fp: Option<FpCache>) {
        self.fp = fp;
    }
}

impl<P: Pmem, K: HashKey, V: Pod> HashScheme<P, K, V> for GroupHash<P, K, V> {
    fn name(&self) -> &'static str {
        "group"
    }

    fn insert(&mut self, pm: &mut P, key: K, value: V) -> Result<(), InsertError> {
        GroupHash::insert(self, pm, key, value)
    }

    fn get(&self, pm: &P, key: &K) -> Option<V> {
        GroupHash::get(self, pm, key)
    }

    fn get_batch(&self, pm: &P, keys: &[K]) -> Vec<Option<V>> {
        GroupHash::get_batch(self, pm, keys)
    }

    fn remove(&mut self, pm: &mut P, key: &K) -> bool {
        GroupHash::remove(self, pm, key)
    }

    fn insert_batch(&mut self, pm: &mut P, items: &[(K, V)]) -> Result<(), BatchError> {
        GroupHash::insert_batch(self, pm, items)
    }

    fn remove_batch(&mut self, pm: &mut P, keys: &[K]) -> usize {
        GroupHash::remove_batch(self, pm, keys)
    }

    fn len(&self, pm: &P) -> u64 {
        GroupHash::len(self, pm)
    }

    fn capacity(&self) -> u64 {
        GroupHash::capacity(self)
    }

    fn recover(&mut self, pm: &mut P) {
        GroupHash::recover(self, pm)
    }

    fn check_consistency(&self, pm: &P) -> Result<(), TableError> {
        crate::analysis::check_consistency(self, pm)
    }

    fn instrumentation(&self) -> Option<&SchemeInstrumentation> {
        #[cfg(feature = "instrument")]
        {
            Some(&self.instr)
        }
        #[cfg(not(feature = "instrument"))]
        {
            None
        }
    }
}
