//! Algorithms 1–4: the group table's insert/get/delete/recover policy,
//! written as probe-plan + cell-store compositions.
//!
//! The scans here decide *which* cells to examine (via the pure plans in
//! [`super::probe`]) and read occupancy words/keys through the shared
//! [`CellStore`](nvm_table::CellStore) accessors; every mutation funnels
//! through the commit choreography in `store.rs`.

use super::{GroupHash, Level};
use crate::config::{CountMode, ProbeLayout};
use nvm_hashfn::{HashKey, Pod};
use nvm_pmem::{Pmem, PmemRead};
use nvm_table::probe::{match_bits, Selection};
use nvm_table::{BatchError, BatchSession, InsertError};

impl<P: Pmem, K: HashKey, V: Pod> GroupHash<P, K, V> {
    /// Finds an empty level-2 cell in group `g`, honouring the probe
    /// layout; cells claimed by a staged publish in `sess` count as
    /// occupied. Also returns how many cells were examined: the offset of
    /// the free cell plus one, or the whole group on a miss (every cell
    /// examined before the free one is occupied, which is what the
    /// occupancy histogram records).
    fn find_free_in_group(
        &self,
        pm: &P,
        sess: &BatchSession<K, V>,
        g: u64,
    ) -> (Option<u64>, u64) {
        match self.config.probe {
            ProbeLayout::Contiguous => {
                let start = g * self.config.group_size;
                let end = start + self.config.group_size;
                let mut cur = start;
                while cur < end {
                    match self.store2.bitmap.find_zero_in_range(pm, cur, end - cur) {
                        Some(idx) if sess.is_claimed(&self.store2, idx) => cur = idx + 1,
                        Some(idx) => return (Some(idx), idx - start + 1),
                        None => break,
                    }
                }
                (None, self.config.group_size)
            }
            ProbeLayout::Strided => {
                // The stride is `n_groups`, so consecutive probe steps
                // often land in the same 64-bit word; hoist the word read
                // like the contiguous path instead of one `get` per cell.
                let mut cached: Option<(u64, u64)> = None; // (word_base, word)
                for i in 0..self.config.group_size {
                    let idx = self.group_cell(g, i);
                    let word_base = idx & !63;
                    let word = match cached {
                        Some((b, w)) if b == word_base => w,
                        _ => {
                            let w = self.store2.bitmap.word_containing(pm, idx);
                            cached = Some((word_base, w));
                            w
                        }
                    };
                    if word >> (idx % 64) & 1 == 0 && !sess.is_claimed(&self.store2, idx) {
                        return (Some(idx), i + 1);
                    }
                }
                (None, self.config.group_size)
            }
        }
    }

    /// Scans group `g`'s level-2 cells for `key`; returns the cell index.
    ///
    /// In the contiguous layout the scan is word-wise: one bitmap read
    /// covers 64 cells, and the occupied cells are then compared in
    /// ascending address order — an access pattern the hardware stream
    /// prefetcher locks onto (the mechanism behind the paper's
    /// "a single memory access can prefetch the following cells").
    ///
    /// `tag` is `Some` exactly under `FpMode::On`: the scan then goes
    /// *tag-first* — eight cached tags load as one word, a SWAR compare
    /// against the probe tag ANDed with the occupancy bits selects the
    /// candidate cells, and only those have their key bytes read from the
    /// pool.
    ///
    /// The second return value counts occupied cells examined in scan
    /// order up to (and including) the hit — the same value in both
    /// fingerprint modes, so probe histograms stay mode-independent and
    /// comparable (under `FpMode::On` an "examined" cell may have been
    /// resolved from its DRAM tag alone).
    fn find_key_in_group<R: PmemRead>(
        &self,
        pm: &R,
        g: u64,
        key: &K,
        tag: Option<u8>,
    ) -> (Option<u64>, u64) {
        let mut examined = 0u64;
        match self.config.probe {
            ProbeLayout::Contiguous => {
                let start = g * self.config.group_size;
                let end = start + self.config.group_size;
                let mut base = start;
                while base < end {
                    let mut word = self.store2.bitmap.word_containing(pm, base);
                    // Mask off bits outside [start, end) within this word
                    // (only relevant for groups smaller than 64).
                    let lo = base % 64;
                    if lo != 0 {
                        word &= u64::MAX << lo;
                    }
                    let word_base = base - lo;
                    let span = (end - word_base).min(64);
                    if span < 64 {
                        word &= (1u64 << span) - 1;
                    }
                    match tag {
                        Some(tag) => {
                            let fp = self.fp.as_ref().expect("tag implies cache");
                            // Tag-first: 8 cells (one tag word) at a time.
                            let mut sub = 0u64;
                            while sub < 64 {
                                let occ = word >> sub & 0xFF;
                                if occ != 0 {
                                    let tags = fp.word(Level::Two.idx(), word_base + sub);
                                    let cand = match_bits(tags, tag) & occ;
                                    let mut c = cand;
                                    while c != 0 {
                                        let bit = c.trailing_zeros() as u64;
                                        let idx = word_base + sub + bit;
                                        self.note_key_reads(1);
                                        if self.store2.cells.read_key(pm, idx) == *key {
                                            let below = (1u64 << bit) - 1;
                                            examined +=
                                                u64::from((occ & (below | 1 << bit)).count_ones());
                                            let skipped = (occ & !cand & below).count_ones();
                                            self.note_fp(u64::from(skipped), 0, 1);
                                            return (Some(idx), examined);
                                        }
                                        self.note_fp(0, 1, 0);
                                        c &= c - 1;
                                    }
                                    examined += u64::from(occ.count_ones());
                                    self.note_fp(u64::from((occ & !cand).count_ones()), 0, 0);
                                }
                                sub += 8;
                            }
                        }
                        None => {
                            while word != 0 {
                                let bit = word.trailing_zeros() as u64;
                                let idx = word_base + bit;
                                examined += 1;
                                self.note_key_reads(1);
                                if self.store2.cells.read_key(pm, idx) == *key {
                                    return (Some(idx), examined);
                                }
                                word &= word - 1;
                            }
                        }
                    }
                    base = word_base + 64;
                }
                (None, examined)
            }
            ProbeLayout::Strided => {
                // Hoisted occupancy-word reads (stride = n_groups, so
                // consecutive steps often share a word); per-cell tag
                // checks — strided tags are not adjacent in the cache, so
                // there is no word to load.
                let mut cached: Option<(u64, u64)> = None;
                for i in 0..self.config.group_size {
                    let idx = self.group_cell(g, i);
                    let word_base = idx & !63;
                    let word = match cached {
                        Some((b, w)) if b == word_base => w,
                        _ => {
                            let w = self.store2.bitmap.word_containing(pm, idx);
                            cached = Some((word_base, w));
                            w
                        }
                    };
                    if word >> (idx % 64) & 1 == 0 {
                        continue;
                    }
                    examined += 1;
                    if let Some(tag) = tag {
                        let fp = self.fp.as_ref().expect("tag implies cache");
                        if fp.get(Level::Two.idx(), idx) != tag {
                            self.note_fp(1, 0, 0);
                            continue;
                        }
                    }
                    self.note_key_reads(1);
                    if self.store2.cells.read_key(pm, idx) == *key {
                        if tag.is_some() {
                            self.note_fp(0, 0, 1);
                        }
                        return (Some(idx), examined);
                    }
                    if tag.is_some() {
                        self.note_fp(0, 1, 0);
                    }
                }
                (None, examined)
            }
        }
    }

    /// Candidate level-1 slots for `key`, primary first.
    #[inline]
    fn candidate_slots(&self, key: &K) -> (u64, Option<u64>) {
        super::probe::candidate_slots(&self.hash, &self.config, key)
    }

    /// Algorithm 1's placement decision (with the §4.4 two-choice
    /// extension when configured: try the second slot and the second
    /// matched group before giving up), planned against the committed bits
    /// *plus* `sess`'s staged claims so a batch never places two keys in
    /// one cell. Pure reads — records the insert's probe/occupancy sample
    /// but writes nothing.
    fn plan_insert(
        &self,
        pm: &P,
        sess: &BatchSession<K, V>,
        key: &K,
    ) -> Result<(Level, u64), InsertError> {
        let (k1, k2) = self.candidate_slots(key);
        let mut probes = 1u64; // the k1 slot check
        if self.store1.is_free_for(pm, sess, k1) {
            self.note_insert(probes, 0);
            return Ok((Level::One, k1));
        }
        if let Some(k2) = k2 {
            probes += 1;
            if self.store1.is_free_for(pm, sess, k2) {
                self.note_insert(probes, 1);
                return Ok((Level::One, k2));
            }
        }
        // Occupied cells stepped over so far: every checked level-1 slot.
        let mut occupied = probes;
        let g1 = self.group_of(k1);
        let (free, examined) = self.find_free_in_group(pm, sess, g1);
        probes += examined;
        if let Some(idx) = free {
            occupied += examined - 1;
            self.note_insert(probes, occupied);
            return Ok((Level::Two, idx));
        }
        occupied += examined;
        if let Some(k2) = k2 {
            let g2 = self.group_of(k2);
            if g2 != g1 {
                let (free, examined) = self.find_free_in_group(pm, sess, g2);
                probes += examined;
                if let Some(idx) = free {
                    occupied += examined - 1;
                    self.note_insert(probes, occupied);
                    return Ok((Level::Two, idx));
                }
                occupied += examined;
            }
        }
        // "If there are no empty cells in the matched group, the
        // capacity of the hash table needs to be expanded."
        self.note_insert(probes, occupied);
        Err(InsertError::TableFull)
    }

    /// Algorithm 1: a one-element batch, reproducing the paper's 3-flush /
    /// 3-fence / 2-atomic single-op trace event for event.
    pub fn insert(&mut self, pm: &mut P, key: K, value: V) -> Result<(), InsertError> {
        self.insert_batch(pm, &[(key, value)]).map_err(|e| e.error)
    }

    /// Batched Algorithm 1 with fence coalescing: each op is planned
    /// against the committed bits plus the batch's staged claims, its cell
    /// write is staged, and the commits are grouped so `K` inserts cost
    /// `K + 2` fences instead of `3K` — while keeping each op's 8-byte
    /// bitmap flip individually failure-atomic (prefix durability; see
    /// [`BatchSession`]). Under the forced-logging ablation the batch is
    /// split into log-capacity chunks, each an all-or-nothing transaction.
    ///
    /// On `TableFull` the already-staged prefix is committed before
    /// returning; [`BatchError::committed`] reports its length.
    pub fn insert_batch(&mut self, pm: &mut P, items: &[(K, V)]) -> Result<(), BatchError> {
        if items.is_empty() {
            return Ok(());
        }
        let base = pm.stats();
        let per_op = [self.store1.cells.entry_len(), 8];
        let fixed: &[usize] = match self.config.count_mode {
            CountMode::Persistent => &[8],
            CountMode::Volatile => &[],
        };
        let chunk_cap = self.journal.ops_per_txn(&per_op, fixed);
        let mut sess = BatchSession::new();
        let mut committed = 0usize;
        let mut failure = None;
        for (key, value) in items {
            match self.plan_insert(pm, &sess, key) {
                Ok((level, idx)) => {
                    self.stage_insert(pm, &mut sess, level, idx, key, value);
                    if sess.staged() >= chunk_cap {
                        let n = sess.staged();
                        self.commit_batch(pm, &mut sess, n as i64);
                        committed += n;
                    }
                }
                Err(error) => {
                    failure = Some(error);
                    break;
                }
            }
        }
        if !sess.is_empty() {
            let n = sess.staged();
            self.commit_batch(pm, &mut sess, n as i64);
            committed += n;
        }
        let spent = pm.stats().delta_since(&base);
        self.note_batch(committed as u64, spent.fences, spent.flushes);
        match failure {
            Some(error) => Err(BatchError { committed, error }),
            None => Ok(()),
        }
    }

    /// Algorithm 2.
    pub fn get(&self, pm: &P, key: &K) -> Option<V> {
        self.locate(pm, key)
            .map(|(level, idx)| self.level_store(level).read_value(pm, idx))
    }

    /// Vectorized Algorithm 2: one lookup per key, same results (and same
    /// probe/fingerprint instrumentation totals) as calling
    /// [`GroupHash::get`] per element, but pipelined so NVM read latencies
    /// overlap instead of serializing:
    ///
    /// 1. hash the whole key vector up front (slots, groups, tags);
    /// 2. software-prefetch every key's level-1 bitmap word and cell line;
    /// 3. resolve all level-1 probes against the now-warm lines; keys
    ///    still unresolved survive into a [`Selection`] vector;
    /// 4. prefetch the matched groups' occupancy words for the survivors,
    ///    then (contiguous layout) the candidate cells those words + the
    ///    DRAM tag cache select;
    /// 5. run the group scans — every line they touch was prefetched.
    ///
    /// Like `get`, this is a pure read: zero flushes, zero fences, zero
    /// (atomic) writes. The strided ablation layout skips the group
    /// prefetches (its cells share no lines — there is nothing coherent
    /// to fetch ahead), keeping the comparison honest.
    pub fn get_batch(&self, pm: &P, keys: &[K]) -> Vec<Option<V>> {
        let mut out: Vec<Option<V>> = vec![None; keys.len()];
        if keys.is_empty() {
            return out;
        }
        // Phase 1: hash everything before touching the pool.
        let tagging = self.fp.is_some();
        let mut slots: Vec<(u64, Option<u64>)> = Vec::with_capacity(keys.len());
        let mut tags: Vec<u8> = Vec::with_capacity(keys.len());
        for key in keys {
            slots.push(self.candidate_slots(key));
            tags.push(if tagging { self.fp_tag(key) } else { 0 });
        }
        // Phase 2: issue the level-1 prefetches for the whole batch.
        for (i, &(k1, k2)) in slots.iter().enumerate() {
            let tag = tagging.then(|| tags[i]);
            self.prefetch_level1(pm, k1, tag);
            if let Some(k2) = k2 {
                self.prefetch_level1(pm, k2, tag);
            }
        }
        // Phase 3: resolve level 1 for every key; survivors go on.
        let mut sel = Selection::new();
        let mut probes: Vec<u64> = vec![0; keys.len()];
        for (i, key) in keys.iter().enumerate() {
            let (k1, k2) = slots[i];
            let tag = tagging.then(|| tags[i]);
            probes[i] = 1;
            if self.level1_holds(pm, k1, key, tag) {
                self.note_probe(probes[i]);
                out[i] = Some(self.store1.read_value(pm, k1));
                continue;
            }
            if let Some(k2) = k2 {
                probes[i] += 1;
                if self.level1_holds(pm, k2, key, tag) {
                    self.note_probe(probes[i]);
                    out[i] = Some(self.store1.read_value(pm, k2));
                    continue;
                }
            }
            sel.push(i as u32);
        }
        // Phase 4: warm the survivors' groups before scanning any of them.
        if self.config.probe == ProbeLayout::Contiguous {
            for &i in sel.indices() {
                let (k1, k2) = slots[i as usize];
                let g1 = self.group_of(k1);
                self.prefetch_group(pm, g1, tagging.then(|| tags[i as usize]));
                if let Some(k2) = k2 {
                    let g2 = self.group_of(k2);
                    if g2 != g1 {
                        self.prefetch_group(pm, g2, tagging.then(|| tags[i as usize]));
                    }
                }
            }
        }
        // Phase 5: the scans themselves — identical code (and identical
        // instrumentation) to the single-key path, now against warm lines.
        for &i in sel.indices() {
            let i = i as usize;
            let key = &keys[i];
            let (k1, k2) = slots[i];
            let tag = tagging.then(|| tags[i]);
            let g1 = self.group_of(k1);
            let (found, compared) = self.find_key_in_group(pm, g1, key, tag);
            probes[i] += compared;
            if let Some(idx) = found {
                self.note_probe(probes[i]);
                out[i] = Some(self.store2.read_value(pm, idx));
                continue;
            }
            if let Some(k2) = k2 {
                let g2 = self.group_of(k2);
                if g2 != g1 {
                    let (found, compared) = self.find_key_in_group(pm, g2, key, tag);
                    probes[i] += compared;
                    if let Some(idx) = found {
                        self.note_probe(probes[i]);
                        out[i] = Some(self.store2.read_value(pm, idx));
                        continue;
                    }
                }
            }
            self.note_probe(probes[i]);
        }
        out
    }

    /// Prefetches the lines a level-1 probe of slot `k` will touch: the
    /// occupancy word, and — unless the DRAM tag sieve already rejects
    /// the slot — the cell's key/value bytes. Under `FpMode::On` the
    /// resolve phase never reads a mismatching slot's key, so warming
    /// that line would be pure issue overhead (the sieve rejects
    /// ~255/256 of wrong slots).
    #[inline]
    fn prefetch_level1(&self, pm: &P, k: u64, tag: Option<u8>) {
        pm.prefetch(self.store1.bitmap.word_off_of(k), 8);
        if let Some(tag) = tag {
            let fp = self.fp.as_ref().expect("tag implies cache");
            if fp.get(Level::One.idx(), k) != tag {
                return;
            }
        }
        pm.prefetch(self.store1.cells.cell_off(k), self.store1.cells.entry_len());
    }

    /// Prefetches what a contiguous group scan of `g` will read, without
    /// duplicating the hardware stream prefetcher:
    ///
    /// * the group's occupancy words, always (the scan's first load, and
    ///   a random access no streamer predicts);
    /// * with the tag sieve **off**, only the *head* of the group's cell
    ///   range — the scan walks the cells in ascending line order, which
    ///   is exactly the pattern the L2 streamer locks onto after the
    ///   first touches, so issuing a software prefetch per line would
    ///   pay the issue cost for lines the streamer covers free;
    /// * with the tag sieve **on**, exactly the cells whose cached tag
    ///   matches — the sieve leaves a sparse candidate set that forms no
    ///   stream, so each survivor is prefetched individually (peeking at
    ///   the just-warmed occupancy words plus the DRAM tag cache; the
    ///   peek re-reads lines the scan reads again later, and neither
    ///   read is a persistence event).
    fn prefetch_group(&self, pm: &P, g: u64, tag: Option<u8>) {
        let start = g * self.config.group_size;
        let end = start + self.config.group_size;
        let bits_lo = self.store2.bitmap.word_off_of(start);
        let bits_hi = self.store2.bitmap.word_off_of(end - 1) + 8;
        pm.prefetch(bits_lo, bits_hi - bits_lo);
        let Some(tag) = tag else {
            let lo = self.store2.cells.cell_off(start);
            let span = self.store2.cells.cell_off(end - 1) + self.store2.cells.entry_len() - lo;
            pm.prefetch(lo, span.min(2 * 64));
            return;
        };
        let fp = self.fp.as_ref().expect("tag implies cache");
        let mut base = start;
        while base < end {
            let mut word = self.store2.bitmap.word_containing(pm, base);
            let lo = base % 64;
            if lo != 0 {
                word &= u64::MAX << lo;
            }
            let word_base = base - lo;
            let span = (end - word_base).min(64);
            if span < 64 {
                word &= (1u64 << span) - 1;
            }
            let mut cand = 0u64;
            let mut sub = 0u64;
            while sub < 64 {
                let occ = word >> sub & 0xFF;
                if occ != 0 {
                    let tags = fp.word(Level::Two.idx(), word_base + sub);
                    cand |= (match_bits(tags, tag) & occ) << sub;
                }
                sub += 8;
            }
            while cand != 0 {
                let bit = cand.trailing_zeros() as u64;
                let idx = word_base + bit;
                pm.prefetch(self.store2.cells.cell_off(idx), self.store2.cells.entry_len());
                cand &= cand - 1;
            }
            base = word_base + 64;
        }
    }

    /// Checks whether level-1 slot `k` holds `key`, reading the key bytes
    /// only when the slot is occupied and (under `FpMode::On`) its
    /// cached tag matches.
    #[inline]
    fn level1_holds<R: PmemRead>(&self, pm: &R, k: u64, key: &K, tag: Option<u8>) -> bool {
        if !self.store1.is_occupied(pm, k) {
            return false;
        }
        if let Some(tag) = tag {
            let fp = self.fp.as_ref().expect("tag implies cache");
            if fp.get(Level::One.idx(), k) != tag {
                self.note_fp(1, 0, 0);
                return false;
            }
        }
        self.note_key_reads(1);
        let hit = self.store1.cells.read_key(pm, k) == *key;
        if tag.is_some() {
            if hit {
                self.note_fp(0, 0, 1);
            } else {
                self.note_fp(0, 1, 0);
            }
        }
        hit
    }

    /// Finds the `(level, cell)` holding `key`, probing the candidate
    /// slot(s) then the matched group(s). Records one probe-length sample
    /// (cells examined) per call when instrumentation is enabled.
    pub(super) fn locate<R: PmemRead>(&self, pm: &R, key: &K) -> Option<(Level, u64)> {
        let (k1, k2) = self.candidate_slots(key);
        let tag = self.fp.as_ref().map(|_| self.fp_tag(key));
        let mut probes = 1u64;
        if self.level1_holds(pm, k1, key, tag) {
            self.note_probe(probes);
            return Some((Level::One, k1));
        }
        if let Some(k2) = k2 {
            probes += 1;
            if self.level1_holds(pm, k2, key, tag) {
                self.note_probe(probes);
                return Some((Level::One, k2));
            }
        }
        let g1 = self.group_of(k1);
        let (found, compared) = self.find_key_in_group(pm, g1, key, tag);
        probes += compared;
        if let Some(idx) = found {
            self.note_probe(probes);
            return Some((Level::Two, idx));
        }
        if let Some(k2) = k2 {
            let g2 = self.group_of(k2);
            if g2 != g1 {
                let (found, compared) = self.find_key_in_group(pm, g2, key, tag);
                probes += compared;
                if let Some(idx) = found {
                    self.note_probe(probes);
                    return Some((Level::Two, idx));
                }
            }
        }
        self.note_probe(probes);
        None
    }

    /// Updates the value of an existing `key` in place, returning whether
    /// the key was found.
    ///
    /// The value bytes are overwritten and persisted where they are. For
    /// values of 8 bytes or less this is **failure-atomic** (the write is
    /// a single aligned store — cells are 8-byte aligned and the key
    /// prefix is a multiple of 8 for all provided key types): a crash
    /// leaves either the old or the new value. For larger values a crash
    /// mid-update can tear at 8-byte granularity; use remove+insert (or
    /// an indirection pointer as `nvm-kv` does) when multi-word values
    /// must switch atomically.
    pub fn update_in_place(&mut self, pm: &mut P, key: &K, value: V) -> bool {
        match self.locate(pm, key) {
            Some((level, idx)) => {
                let store = self.level_store(level);
                let mut buf = [0u8; 64];
                debug_assert!(V::SIZE <= 64);
                value.write_to(&mut buf[..V::SIZE]);
                let off = store.cells.cell_off(idx) + K::SIZE;
                pm.write(off, &buf[..V::SIZE]);
                pm.persist(off, V::SIZE);
                true
            }
            None => false,
        }
    }

    /// Algorithm 3: a one-element batch, reproducing the single-op trace.
    pub fn remove(&mut self, pm: &mut P, key: &K) -> bool {
        self.remove_batch(pm, std::slice::from_ref(key)) == 1
    }

    /// Batched Algorithm 3, same fence coalescing and prefix durability as
    /// [`GroupHash::insert_batch`]. Returns how many keys were present
    /// (and are now gone); when one key appears several times in `keys`,
    /// at most one removal takes effect (there is only one cell to
    /// retract — its bit stays set until the chunk commits).
    pub fn remove_batch(&mut self, pm: &mut P, keys: &[K]) -> usize {
        if keys.is_empty() {
            return 0;
        }
        let base = pm.stats();
        let per_op = [8, self.store1.cells.entry_len()];
        let fixed: &[usize] = match self.config.count_mode {
            CountMode::Persistent => &[8],
            CountMode::Volatile => &[],
        };
        let chunk_cap = self.journal.ops_per_txn(&per_op, fixed);
        let mut sess = BatchSession::new();
        let mut removed = 0usize;
        for key in keys {
            let Some((level, idx)) = self.locate(pm, key) else {
                continue;
            };
            if sess.is_retracted(&self.level_store(level), idx) {
                continue; // duplicate key within the batch
            }
            self.stage_delete(pm, &mut sess, level, idx);
            if sess.staged() >= chunk_cap {
                let n = sess.staged();
                self.commit_batch(pm, &mut sess, -(n as i64));
                removed += n;
            }
        }
        if !sess.is_empty() {
            let n = sess.staged();
            self.commit_batch(pm, &mut sess, -(n as i64));
            removed += n;
        }
        let spent = pm.stats().delta_since(&base);
        self.note_batch(removed as u64, spent.fences, spent.flushes);
        removed
    }

    /// Algorithm 4: post-crash recovery. Scans the whole table, erases any
    /// cell whose occupancy bit is clear (wiping partial inserts/deletes),
    /// and recounts `count`. Idempotent; O(capacity).
    pub fn recover(&mut self, pm: &mut P) {
        // Forced-logging ablation: roll back an in-flight transaction
        // before trusting the cells.
        self.journal.recover(pm);
        let count = self.store1.recover_cells(pm) + self.store2.recover_cells(pm);
        self.set_count_committed(pm, count);
        // The volatile tags may describe pre-crash state; rebuild them
        // from the (now repaired) bitmaps + cells.
        self.rebuild_fp_cache(pm);
    }
}
