//! Pure probe planning for the group table — no pool I/O.
//!
//! Everything here is arithmetic over the configuration and a key's hash
//! streams: candidate level-1 slots, the matched group, the fingerprint
//! tag, and the level-2 geometry as a [`GroupPlan`]. The pmem-facing
//! scans that consume these plans live in `ops.rs`; keeping this module
//! free of any pmem dependency is enforced by the `ci.sh` layering lint.

use crate::config::{ChoiceMode, GroupHashConfig};
use nvm_hashfn::{HashKey, HashPair};
use nvm_table::probe::GroupPlan;

/// The level-2 group geometry implied by `config`.
#[inline]
pub(super) fn plan(config: &GroupHashConfig) -> GroupPlan {
    GroupPlan::new(config.group_size, config.n_groups(), config.probe)
}

/// Level-1 slot for `key` (the paper's `k = h(key)`).
#[inline]
pub(super) fn slot_of<K: HashKey>(hash: &HashPair, config: &GroupHashConfig, key: &K) -> u64 {
    hash.h1(key) & (config.cells_per_level - 1)
}

/// Second candidate slot under [`ChoiceMode::TwoChoice`]; `None` in the
/// paper's single-hash design or when both hashes coincide.
#[inline]
pub(super) fn slot2_of<K: HashKey>(
    hash: &HashPair,
    config: &GroupHashConfig,
    key: &K,
) -> Option<u64> {
    match config.choice {
        ChoiceMode::Single => None,
        ChoiceMode::TwoChoice => {
            let s2 = hash.h2(key) & (config.cells_per_level - 1);
            (s2 != slot_of(hash, config, key)).then_some(s2)
        }
    }
}

/// The volatile fingerprint tag for `key`: the low byte of the third
/// hash stream, so tags are uncorrelated with the slot/group the
/// placement hashes choose (a tag that re-encoded `h1` bits would
/// carry no information within a group, where those bits are equal).
#[inline]
pub(super) fn fp_tag<K: HashKey>(hash: &HashPair, key: &K) -> u8 {
    hash.h3(key) as u8
}

/// Candidate level-1 slots for `key`, primary first.
#[inline]
pub(super) fn candidate_slots<K: HashKey>(
    hash: &HashPair,
    config: &GroupHashConfig,
    key: &K,
) -> (u64, Option<u64>) {
    (slot_of(hash, config, key), slot2_of(hash, config, key))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_table::probe::ProbeLayout;

    #[test]
    fn plan_mirrors_config_geometry() {
        let cfg = GroupHashConfig::new(256, 16);
        let p = plan(&cfg);
        assert_eq!(p.cells_per_level(), 256);
        assert_eq!(p.n_groups(), 16);
        assert_eq!(p.layout(), ProbeLayout::Contiguous);
        let strided = plan(&cfg.with_probe(ProbeLayout::Strided));
        assert_eq!(strided.layout(), ProbeLayout::Strided);
        // Same partition either way (the ablation's invariant).
        assert_eq!(p.group_of_cell(17), 1);
        assert_eq!(strided.cell(1, 0), 1);
    }

    #[test]
    fn slots_are_masked_and_distinct_under_two_choice() {
        let cfg = GroupHashConfig::new(256, 16);
        let hash = HashPair::from_seed(cfg.seed);
        for k in 0..500u64 {
            assert!(slot_of(&hash, &cfg, &k) < 256);
            assert_eq!(slot2_of(&hash, &cfg, &k), None, "single-choice has no slot 2");
        }
        let cfg2 = cfg.with_choice(ChoiceMode::TwoChoice);
        for k in 0..500u64 {
            if let Some(s2) = slot2_of(&hash, &cfg2, &k) {
                assert!(s2 < 256);
                assert_ne!(s2, slot_of(&hash, &cfg2, &k));
            }
        }
    }
}
