//! Lock-free shared-writer operations (`&self` CAS insert/remove).
//!
//! The paper's commit protocol already funnels every mutation's
//! visibility through one 8-byte occupancy-bitmap word, which is exactly
//! the shape a compare-and-swap loop wants. This module exposes that as a
//! first-class write path: any number of writer threads sharing one
//! [`GroupHash`] by reference can insert and remove concurrently through
//! [`PmemWrite`] handles, with **no shard- or table-wide lock**:
//!
//! 1. a volatile [`TableClaims`] bit (DRAM, [`CellClaims`] per level)
//!    reserves the target cell so two writers never interleave bytes in
//!    one cell;
//! 2. the cell bytes are written and persisted while unpublished;
//! 3. the occupancy bit is flipped with a CAS loop on its bitmap *word*
//!    ([`CellStore::try_publish`] / [`CellStore::try_retract`]), so
//!    writers publishing different cells of the same word serialize on
//!    the hardware CAS instead of a lock;
//! 4. the persistent count moves by a CAS loop too
//!    ([`TableHeader::inc_count_shared`]).
//!
//! The per-op persistence trace is identical to the exclusive path —
//! 3 flushes / 3 fences / 2 atomic writes uncontended — because the CAS
//! *is* the paper's atomic bitmap write; contention only re-runs the CAS
//! (counted, never re-flushed cell bytes).
//!
//! Scope: only [`CommitStrategy::AtomicBitmap`] tables support shared
//! writes (the undo-log ablation journals through `&mut` state and must
//! keep the exclusive path). Callers must serialize operations *on the
//! same key* (e.g. by key-range ownership or the sharded wrapper's
//! routing); concurrent same-key inserts would commit two cells for one
//! key, exactly as two unsynchronized inserts into any multi-writer map.
//!
//! [`CellStore::try_publish`]: nvm_table::CellStore::try_publish
//! [`CellStore::try_retract`]: nvm_table::CellStore::try_retract
//! [`TableHeader::inc_count_shared`]: nvm_table::TableHeader::inc_count_shared
//! [`CommitStrategy::AtomicBitmap`]: crate::config::CommitStrategy::AtomicBitmap

use super::{probe, GroupHash, Level};
use crate::config::{CommitStrategy, CountMode};
use nvm_hashfn::{HashKey, Pod};
use nvm_pmem::{Pmem, PmemRead, PmemWrite};
use nvm_table::{CellClaims, InsertError, TryPublish, TryRetract};
use std::sync::atomic::Ordering;

/// Volatile claim bits for both levels of one table — the DRAM half of
/// the shared write path. One instance per table, shared by reference
/// among all writers of that table.
#[derive(Debug)]
pub struct TableClaims {
    l1: CellClaims,
    l2: CellClaims,
}

impl TableClaims {
    /// Fresh (all-unclaimed) claim bits for a table with
    /// `cells_per_level` cells in each level.
    pub fn new(cells_per_level: u64) -> Self {
        TableClaims {
            l1: CellClaims::new(cells_per_level),
            l2: CellClaims::new(cells_per_level),
        }
    }

    fn of(&self, level: Level) -> &CellClaims {
        match level {
            Level::One => &self.l1,
            Level::Two => &self.l2,
        }
    }
}

/// What a successful shared-path commit cost in contention events.
#[derive(Debug, Clone, Copy, Default)]
pub struct SharedCommit {
    /// Failed CAS attempts across the bitmap-word and count loops
    /// (0 single-writer — pinned by the stress suite).
    pub cas_failures: u64,
    /// Times the placement plan was thrown away because another writer
    /// claimed or published the chosen cell first.
    pub replans: u64,
}

impl<P: Pmem, K: HashKey, V: Pod> GroupHash<P, K, V> {
    /// Whether this table's configuration admits the lock-free shared
    /// write path (the paper's atomic-bitmap commit; the undo-log
    /// ablation journals through exclusive state).
    pub fn supports_shared_writes(&self) -> bool {
        self.config.commit == CommitStrategy::AtomicBitmap
    }

    /// Moves the count by ±1 through the shared-writer discipline,
    /// returning CAS failures (0 for a volatile count).
    fn count_delta_shared<W: PmemWrite>(&self, w: &W, up: bool) -> u64 {
        match self.config.count_mode {
            CountMode::Persistent => {
                if up {
                    self.header.inc_count_shared(w)
                } else {
                    self.header.dec_count_shared(w)
                }
            }
            CountMode::Volatile => {
                if up {
                    self.volatile_count.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.volatile_count.fetch_sub(1, Ordering::Relaxed);
                }
                0
            }
        }
    }

    /// Algorithm 1's placement decision against the *committed* bits plus
    /// the live claim table: a cell is a candidate only if its occupancy
    /// bit is clear and no concurrent writer holds its claim. Pure reads.
    fn plan_insert_shared<R: PmemRead>(
        &self,
        pm: &R,
        claims: &TableClaims,
        key: &K,
    ) -> Result<(Level, u64), InsertError> {
        let free_l1 = |k: u64| !self.store1.is_occupied(pm, k) && !claims.l1.is_claimed(k);
        let free_l2 = |idx: u64| !self.store2.is_occupied(pm, idx) && !claims.l2.is_claimed(idx);
        let (k1, k2) = probe::candidate_slots(&self.hash, &self.config, key);
        let mut probes = 1u64;
        if free_l1(k1) {
            self.note_insert(probes, 0);
            return Ok((Level::One, k1));
        }
        if let Some(k2) = k2 {
            probes += 1;
            if free_l1(k2) {
                self.note_insert(probes, 1);
                return Ok((Level::One, k2));
            }
        }
        let mut occupied = probes;
        let plan = self.plan();
        let g1 = plan.group_of_slot(k1);
        let mut groups = [Some(g1), None];
        if let Some(k2) = k2 {
            let g2 = plan.group_of_slot(k2);
            if g2 != g1 {
                groups[1] = Some(g2);
            }
        }
        for g in groups.into_iter().flatten() {
            for i in 0..self.config.group_size {
                let idx = plan.cell(g, i);
                probes += 1;
                if free_l2(idx) {
                    self.note_insert(probes, occupied + i);
                    return Ok((Level::Two, idx));
                }
            }
            occupied += self.config.group_size;
        }
        self.note_insert(probes, occupied);
        Err(InsertError::TableFull)
    }

    /// Lock-free Algorithm 1: plans against committed-plus-claimed cells,
    /// then publishes through the claim → write → persist → CAS-bit
    /// choreography. Replans (without re-flushing anything) whenever a
    /// racing writer takes the chosen cell first. The DRAM fingerprint
    /// tag is updated inside the claim window, after the commit.
    ///
    /// Requires [`GroupHash::supports_shared_writes`]; panics otherwise —
    /// routing the ablation here would silently skip its journaling.
    pub fn try_insert_shared<W: PmemWrite>(
        &self,
        w: &W,
        claims: &TableClaims,
        key: K,
        value: V,
    ) -> Result<SharedCommit, InsertError> {
        assert!(
            self.supports_shared_writes(),
            "shared writes require the atomic-bitmap commit strategy"
        );
        let mut out = SharedCommit::default();
        loop {
            let (level, idx) = self.plan_insert_shared(w, claims, &key)?;
            let store = self.level_store(level);
            let fp_hook = || {
                if let Some(fp) = &self.fp {
                    fp.set(level.idx(), idx, self.fp_tag(&key));
                }
            };
            match store.try_publish(w, claims.of(level), idx, &key, &value, fp_hook) {
                TryPublish::Done { cas_failures } => {
                    out.cas_failures = out.cas_failures + cas_failures
                        + self.count_delta_shared(w, true);
                    return Ok(out);
                }
                TryPublish::Busy => out.replans += 1,
            }
        }
    }

    /// Lock-free Algorithm 3: locates the key through the committed bits,
    /// then retracts through claim → CAS-bit-clear → scrub. `Gone`
    /// verdicts (the cell changed between locate and claim) re-locate;
    /// a key no longer anywhere returns `None`. The fingerprint tag is
    /// dropped inside the claim window, after the bit clear.
    ///
    /// Same preconditions as [`GroupHash::try_insert_shared`].
    pub fn try_remove_shared<W: PmemWrite>(
        &self,
        w: &W,
        claims: &TableClaims,
        key: &K,
    ) -> Option<SharedCommit> {
        assert!(
            self.supports_shared_writes(),
            "shared writes require the atomic-bitmap commit strategy"
        );
        let mut out = SharedCommit::default();
        loop {
            let (level, idx) = self.locate(w, key)?;
            let store = self.level_store(level);
            let fp_hook = || {
                if let Some(fp) = &self.fp {
                    fp.clear(level.idx(), idx);
                }
            };
            match store.try_retract(w, claims.of(level), idx, key, fp_hook) {
                TryRetract::Done { cas_failures } => {
                    out.cas_failures = out.cas_failures + cas_failures
                        + self.count_delta_shared(w, false);
                    return Some(out);
                }
                // The cell was republished/retracted under us — the key
                // may now live elsewhere (or nowhere): re-locate.
                TryRetract::Gone | TryRetract::Busy => out.replans += 1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CountMode, FpMode, GroupHashConfig};
    use crate::table::GroupHash;
    use nvm_pmem::{Pmem, Region, SimConfig, SimPmem};
    use nvm_table::HashScheme;
    use std::sync::Arc;

    fn build(
        cfg: GroupHashConfig,
    ) -> (SimPmem, GroupHash<SimPmem, u64, u64>, TableClaims) {
        let size = GroupHash::<SimPmem, u64, u64>::required_size(&cfg);
        let mut pm = SimPmem::new(size, SimConfig::fast_test());
        let t = GroupHash::create(&mut pm, Region::new(0, size), cfg).unwrap();
        let claims = TableClaims::new(cfg.cells_per_level);
        (pm, t, claims)
    }

    #[test]
    fn shared_ops_match_exclusive_semantics_single_writer() {
        let (mut pm, t, claims) = build(GroupHashConfig::new(1 << 10, 64));
        let w = pm.write_handle();
        for k in 0..500u64 {
            let c = t.try_insert_shared(&w, &claims, k, k * 2).unwrap();
            assert_eq!(c.cas_failures, 0, "single writer never loses a CAS");
            assert_eq!(c.replans, 0);
        }
        assert_eq!(t.len(&pm), 500);
        for k in 0..500u64 {
            assert_eq!(t.get(&pm, &k), Some(k * 2));
        }
        for k in 0..250u64 {
            let c = t.try_remove_shared(&w, &claims, &k).unwrap();
            assert_eq!(c.cas_failures, 0);
        }
        assert!(t.try_remove_shared(&w, &claims, &0).is_none());
        assert_eq!(t.len(&pm), 250);
        t.check_consistency(&pm).unwrap();
    }

    #[test]
    fn shared_insert_budget_matches_paper_trace() {
        // 3 flushes / 3 fences / 2 atomic writes per op, uncontended —
        // the CAS path must not cost one event more than the exclusive
        // path it replaces.
        let (mut pm, t, claims) = build(GroupHashConfig::new(1 << 10, 64));
        let w = pm.write_handle();
        t.try_insert_shared(&w, &claims, 1, 1).unwrap(); // warm-up
        let base = pm.stats();
        t.try_insert_shared(&w, &claims, 2, 2).unwrap();
        let d = pm.stats().delta_since(&base);
        assert_eq!((d.flushes, d.fences, d.atomic_writes), (3, 3, 2), "insert");
        let base = pm.stats();
        t.try_remove_shared(&w, &claims, &2).unwrap();
        let d = pm.stats().delta_since(&base);
        assert_eq!((d.flushes, d.fences, d.atomic_writes), (3, 3, 2), "remove");
    }

    #[test]
    fn shared_path_keeps_fingerprint_cache_coherent() {
        let cfg = GroupHashConfig::new(1 << 9, 64).with_fp_mode(FpMode::On);
        let (mut pm, t, claims) = build(cfg);
        let w = pm.write_handle();
        for k in 0..300u64 {
            t.try_insert_shared(&w, &claims, k, !k).unwrap();
        }
        for k in (0..300u64).step_by(3) {
            t.try_remove_shared(&w, &claims, &k).unwrap();
        }
        t.verify_fp_cache(&pm).unwrap();
        for k in 0..300u64 {
            assert_eq!(t.get(&pm, &k), (k % 3 != 0).then_some(!k));
        }
    }

    #[test]
    fn concurrent_shared_writers_lose_nothing() {
        // Four writers insert disjoint ranges into ONE table (no shards,
        // no locks); every key must be present exactly once afterwards.
        for count_mode in [CountMode::Persistent, CountMode::Volatile] {
            let cfg = GroupHashConfig::new(1 << 12, 64).with_count_mode(count_mode);
            let (mut pm, t, claims) = build(cfg);
            let w = pm.write_handle();
            let t = Arc::new(t);
            let claims = Arc::new(claims);
            let per = 700u64;
            let threads: Vec<_> = (0..4u64)
                .map(|tid| {
                    let (t, claims, w) = (Arc::clone(&t), Arc::clone(&claims), w.clone());
                    std::thread::spawn(move || {
                        let mut failures = 0;
                        for i in 0..per {
                            let k = tid * 100_000 + i;
                            failures += t
                                .try_insert_shared(&w, &claims, k, k + 1)
                                .unwrap()
                                .cas_failures;
                        }
                        failures
                    })
                })
                .collect();
            let _total_failures: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();
            assert_eq!(t.len(&pm), 4 * per, "{count_mode:?}");
            for tid in 0..4u64 {
                for i in 0..per {
                    let k = tid * 100_000 + i;
                    assert_eq!(t.get(&pm, &k), Some(k + 1), "lost key {k}");
                }
            }
            t.check_consistency(&pm).unwrap();
        }
    }

    #[test]
    fn concurrent_insert_remove_churn_stays_consistent() {
        // Each writer churns its own key range (insert → remove →
        // reinsert) against the shared claim table; the final state must
        // be exactly the last round's inserts.
        let cfg = GroupHashConfig::new(1 << 12, 64);
        let (mut pm, t, claims) = build(cfg);
        let w = pm.write_handle();
        let t = Arc::new(t);
        let claims = Arc::new(claims);
        let threads: Vec<_> = (0..4u64)
            .map(|tid| {
                let (t, claims, w) = (Arc::clone(&t), Arc::clone(&claims), w.clone());
                std::thread::spawn(move || {
                    let lo = tid * 100_000;
                    for round in 0..3u64 {
                        for k in lo..lo + 300 {
                            t.try_insert_shared(&w, &claims, k, k + round).unwrap();
                            assert!(t.try_remove_shared(&w, &claims, &k).is_some());
                        }
                    }
                    for k in lo..lo + 300 {
                        t.try_insert_shared(&w, &claims, k, k + 99).unwrap();
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(t.len(&pm), 4 * 300);
        for tid in 0..4u64 {
            for k in tid * 100_000..tid * 100_000 + 300 {
                assert_eq!(t.get(&pm, &k), Some(k + 99));
            }
        }
        t.check_consistency(&pm).unwrap();
    }

    #[test]
    #[should_panic(expected = "atomic-bitmap commit strategy")]
    fn undo_log_ablation_rejects_shared_writes() {
        use crate::config::CommitStrategy;
        let cfg = GroupHashConfig::new(256, 16).with_commit(CommitStrategy::UndoLog);
        let (mut pm, t, claims) = build(cfg);
        let w = pm.write_handle();
        let _ = t.try_insert_shared(&w, &claims, 1, 1);
    }
}
