//! In-module tests for the group table, including the pinned
//! persistence-cost budgets the refactors must not disturb.

use super::*;
use crate::config::{ChoiceMode, ProbeLayout};
use crate::testutil::{make, make_cfg};
use nvm_pmem::{PmemRead, SimConfig, SimPmem};

#[test]
fn insert_get_remove_roundtrip() {
    let (mut pm, mut t, _) = make(256, 16);
    assert_eq!(t.get(&pm, &5), None);
    t.insert(&mut pm, 5, 50).unwrap();
    assert_eq!(t.get(&pm, &5), Some(50));
    assert_eq!(t.len(&pm), 1);
    assert!(t.remove(&mut pm, &5));
    assert_eq!(t.get(&pm, &5), None);
    assert_eq!(t.len(&pm), 0);
    assert!(!t.remove(&mut pm, &5));
}

#[test]
fn collisions_go_to_matched_group() {
    let (mut pm, mut t, _) = make(256, 16);
    // Insert enough keys to force level-2 placements.
    for k in 0..200u64 {
        t.insert(&mut pm, k, k * 10).unwrap();
    }
    for k in 0..200u64 {
        assert_eq!(t.get(&pm, &k), Some(k * 10), "key {k}");
    }
    t.check_consistency(&pm).unwrap();
    assert_eq!(t.len(&pm), 200);
}

#[test]
fn fill_to_capacity_overflows_gracefully() {
    let (mut pm, mut t, _) = make(64, 64); // single group: capacity 128
    let mut inserted = 0u64;
    let mut k = 0u64;
    while inserted < 128 {
        match t.insert(&mut pm, k, k) {
            Ok(()) => inserted += 1,
            Err(InsertError::TableFull) => break,
            Err(e) => panic!("unexpected error: {e}"),
        }
        k += 1;
    }
    // A single-group table fills its level-2 group completely; level 1
    // keeps only direct hits, so TableFull must appear at or before
    // 128 and after 64 (all level-2 cells usable).
    assert!(t.len(&pm) >= 64, "len {}", t.len(&pm));
    assert!(t.len(&pm) <= 128);
    t.check_consistency(&pm).unwrap();
    // Everything inserted is still retrievable.
    for key in 0..k {
        if t.get(&pm, &key).is_some() {
            assert_eq!(t.get(&pm, &key), Some(key));
        }
    }
}

#[test]
fn duplicate_insert_shadows_until_removed() {
    // Paper semantics: insert doesn't probe for duplicates.
    let (mut pm, mut t, _) = make(256, 16);
    t.insert(&mut pm, 7, 1).unwrap();
    t.insert(&mut pm, 7, 2).unwrap();
    // One of the copies is visible; removing twice drains both.
    assert!(t.get(&pm, &7).is_some());
    assert!(t.remove(&mut pm, &7));
    assert!(t.get(&pm, &7).is_some());
    assert!(t.remove(&mut pm, &7));
    assert_eq!(t.get(&pm, &7), None);
}

#[test]
fn insert_unique_rejects_duplicates() {
    let (mut pm, mut t, _) = make(256, 16);
    t.insert_unique(&mut pm, 7, 1).unwrap();
    assert_eq!(
        t.insert_unique(&mut pm, 7, 2),
        Err(InsertError::DuplicateKey)
    );
    assert_eq!(t.get(&pm, &7), Some(1));
}

#[test]
fn update_in_place_swaps_value() {
    let (mut pm, mut t, _) = make(256, 16);
    for k in 0..120u64 {
        t.insert(&mut pm, k, k).unwrap();
    }
    assert!(t.update_in_place(&mut pm, &7, 700));
    assert_eq!(t.get(&pm, &7), Some(700));
    assert!(!t.update_in_place(&mut pm, &9999, 1));
    assert_eq!(t.len(&pm), 120);
    t.check_consistency(&pm).unwrap();
}

#[test]
fn update_in_place_is_atomic_under_crash() {
    use nvm_pmem::{run_with_crash, CrashPlan, CrashResolution};
    let (pm0, t0, region) = make(64, 16);
    let mut pm0 = pm0;
    let mut t0 = t0;
    t0.insert(&mut pm0, 5, 111).unwrap();
    for at in 0..20 {
        let mut pm = pm0.clone();
        let mut t = GroupHash::<SimPmem, u64, u64>::open(&mut pm, region).unwrap();
        let base = pm.events();
        pm.set_crash_plan(Some(CrashPlan { at_event: base + at }));
        let done = run_with_crash(|| t.update_in_place(&mut pm, &5, 222)).is_ok();
        pm.crash(CrashResolution::Random(at));
        let mut t = GroupHash::<SimPmem, u64, u64>::open(&mut pm, region).unwrap();
        t.recover(&mut pm);
        let got = t.get(&pm, &5);
        assert!(
            got == Some(111) || got == Some(222),
            "torn update at +{at}: {got:?}"
        );
        if done {
            break;
        }
    }
}

#[test]
fn open_matches_created_table() {
    let (mut pm, mut t, region) = make(256, 16);
    for k in 0..100u64 {
        t.insert(&mut pm, k, k + 1000).unwrap();
    }
    let t2 = GroupHash::<SimPmem, u64, u64>::open(&mut pm, region).unwrap();
    assert_eq!(t2.len(&pm), 100);
    for k in 0..100u64 {
        assert_eq!(t2.get(&pm, &k), Some(k + 1000));
    }
    t2.check_consistency(&pm).unwrap();
}

#[test]
fn open_rejects_wrong_types() {
    let (mut pm, _t, region) = make(256, 16);
    assert!(GroupHash::<SimPmem, u64, u128>::open(&mut pm, region).is_err());
    assert!(GroupHash::<SimPmem, [u8; 16], u64>::open(&mut pm, region).is_err());
}

#[test]
fn for_each_entry_visits_all() {
    let (mut pm, mut t, _) = make(256, 16);
    for k in 0..50u64 {
        t.insert(&mut pm, k, k * 2).unwrap();
    }
    let mut seen = std::collections::HashMap::new();
    t.for_each_entry(&pm, |k, v| {
        seen.insert(k, v);
    });
    assert_eq!(seen.len(), 50);
    for k in 0..50u64 {
        assert_eq!(seen[&k], k * 2);
    }
}

#[test]
fn wide_key_value_types() {
    let cfg = GroupHashConfig::new(128, 16);
    let size = GroupHash::<SimPmem, [u8; 16], [u8; 16]>::required_size(&cfg);
    let mut pm = SimPmem::new(size, SimConfig::fast_test());
    let mut t =
        GroupHash::<SimPmem, [u8; 16], [u8; 16]>::create(&mut pm, Region::new(0, size), cfg)
            .unwrap();
    let k = [0xAB; 16];
    let v = [0xCD; 16];
    t.insert(&mut pm, k, v).unwrap();
    assert_eq!(t.get(&pm, &k), Some(v));
    t.check_consistency(&pm).unwrap();
}

#[test]
fn strided_layout_behaves_identically() {
    let cfg = GroupHashConfig::new(256, 16).with_probe(ProbeLayout::Strided);
    let (mut pm, mut t, _) = make_cfg(cfg);
    for k in 0..180u64 {
        t.insert(&mut pm, k, k).unwrap();
    }
    for k in 0..180u64 {
        assert_eq!(t.get(&pm, &k), Some(k));
    }
    t.check_consistency(&pm).unwrap();
    for k in 0..180u64 {
        assert!(t.remove(&mut pm, &k));
    }
    assert_eq!(t.len(&pm), 0);
    t.check_consistency(&pm).unwrap();
}

#[test]
fn two_choice_behaves_identically() {
    let cfg = GroupHashConfig::new(256, 16).with_choice(ChoiceMode::TwoChoice);
    let (mut pm, mut t, region) = make_cfg(cfg);
    for k in 0..200u64 {
        t.insert(&mut pm, k, k + 9).unwrap();
    }
    for k in 0..200u64 {
        assert_eq!(t.get(&pm, &k), Some(k + 9));
    }
    t.check_consistency(&pm).unwrap();
    for k in 0..100u64 {
        assert!(t.remove(&mut pm, &k));
    }
    assert_eq!(t.len(&pm), 100);
    t.check_consistency(&pm).unwrap();
    // Reopen keeps the mode.
    let t2 = GroupHash::<SimPmem, u64, u64>::open(&mut pm, region).unwrap();
    assert_eq!(t2.config().choice, ChoiceMode::TwoChoice);
    assert_eq!(t2.len(&pm), 100);
}

#[test]
fn two_choice_improves_utilization() {
    // The paper's §4.4 claim: a second hash function raises the
    // space-utilization ratio (at a locality cost).
    let fill_until_full = |cfg: GroupHashConfig| {
        let (mut pm, mut t, _) = make_cfg(cfg);
        let mut k = 0u64;
        loop {
            match t.insert(&mut pm, k.wrapping_mul(0x9E3779B97F4A7C15), k) {
                Ok(()) => k += 1,
                Err(InsertError::TableFull) => break,
                Err(e) => panic!("{e}"),
            }
        }
        t.len(&pm) as f64 / t.capacity() as f64
    };
    let single = fill_until_full(GroupHashConfig::new(512, 64));
    let double = fill_until_full(
        GroupHashConfig::new(512, 64).with_choice(ChoiceMode::TwoChoice),
    );
    assert!(
        double > single + 0.03,
        "two-choice {double:.3} should beat single {single:.3}"
    );
}

#[test]
fn logged_commit_behaves_identically() {
    let cfg = GroupHashConfig::new(256, 16).with_commit(CommitStrategy::UndoLog);
    let (mut pm, mut t, _) = make_cfg(cfg);
    for k in 0..100u64 {
        t.insert(&mut pm, k, k + 5).unwrap();
    }
    for k in 0..50u64 {
        assert!(t.remove(&mut pm, &k));
    }
    for k in 50..100u64 {
        assert_eq!(t.get(&pm, &k), Some(k + 5));
    }
    t.check_consistency(&pm).unwrap();
}

#[test]
fn volatile_count_matches_persistent() {
    let cfg_v = GroupHashConfig::new(256, 16).with_count_mode(CountMode::Volatile);
    let (mut pm_v, mut tv, region) = make_cfg(cfg_v);
    let (mut pm_p, mut tp, _) = make(256, 16);
    for k in 0..120u64 {
        tv.insert(&mut pm_v, k, k).unwrap();
        tp.insert(&mut pm_p, k, k).unwrap();
    }
    for k in 0..40u64 {
        tv.remove(&mut pm_v, &k);
        tp.remove(&mut pm_p, &k);
    }
    assert_eq!(tv.len(&pm_v), tp.len(&pm_p));
    // Volatile count is rebuilt on open.
    let tv2 = GroupHash::<SimPmem, u64, u64>::open(&mut pm_v, region).unwrap();
    assert_eq!(tv2.len(&pm_v), 80);
}

#[test]
fn volatile_count_skips_header_flushes() {
    let cfg_v = GroupHashConfig::new(256, 16).with_count_mode(CountMode::Volatile);
    let (mut pm_v, mut tv, _) = make_cfg(cfg_v);
    let (mut pm_p, mut tp, _) = make(256, 16);
    pm_v.reset_stats();
    pm_p.reset_stats();
    tv.insert(&mut pm_v, 1, 1).unwrap();
    tp.insert(&mut pm_p, 1, 1).unwrap();
    assert!(pm_v.stats().flushes < pm_p.stats().flushes);
}

#[test]
fn fingerprint_mode_behaves_identically() {
    let cfg = GroupHashConfig::new(256, 16).with_fp_mode(FpMode::On);
    let (mut pm, mut t, region) = make_cfg(cfg);
    for k in 0..200u64 {
        t.insert(&mut pm, k, k * 7).unwrap();
    }
    for k in 0..200u64 {
        assert_eq!(t.get(&pm, &k), Some(k * 7));
    }
    for k in 200..400u64 {
        assert_eq!(t.get(&pm, &k), None, "negative lookup {k}");
    }
    t.check_consistency(&pm).unwrap(); // includes verify_fp_cache
    for k in 0..100u64 {
        assert!(t.remove(&mut pm, &k));
        assert_eq!(t.get(&pm, &k), None);
    }
    assert!(t.update_in_place(&mut pm, &150, 1));
    assert_eq!(t.get(&pm, &150), Some(1));
    t.check_consistency(&pm).unwrap();
    // Reopen keeps the mode and rebuilds an agreeing cache.
    let t2 = GroupHash::<SimPmem, u64, u64>::open(&mut pm, region).unwrap();
    assert_eq!(t2.config().fp, FpMode::On);
    t2.verify_fp_cache(&pm).unwrap();
    for k in 100..200u64 {
        assert_eq!(t2.get(&pm, &k), Some(if k == 150 { 1 } else { k * 7 }));
    }
}

#[test]
fn fingerprint_matches_off_mode_state() {
    // Same ops, fp on vs off: the NVM image must be bit-identical
    // (the cache is a pure accelerator).
    let (mut pm_off, mut t_off, _) = make(256, 16);
    let cfg = GroupHashConfig::new(256, 16).with_fp_mode(FpMode::On);
    let (mut pm_on, mut t_on, _) = make_cfg(cfg);
    for k in 0..150u64 {
        t_off.insert(&mut pm_off, k, k).unwrap();
        t_on.insert(&mut pm_on, k, k).unwrap();
    }
    for k in 0..50u64 {
        assert_eq!(t_off.remove(&mut pm_off, &k), t_on.remove(&mut pm_on, &k));
    }
    // Compare the whole pool except the header's flags slot (the
    // persisted FpMode bit is the single intended difference).
    let len = pm_off.len();
    let mut a = vec![0u8; len];
    let mut b = vec![0u8; len];
    pm_off.read(0, &mut a);
    pm_on.read(0, &mut b);
    // The flags geometry slot (header offset 56) is the single
    // intended difference: the persisted FpMode bit.
    let diff: Vec<usize> = (0..len).filter(|&i| a[i] != b[i]).collect();
    assert!(
        !diff.is_empty() && diff.iter().all(|&i| (56..64).contains(&i)),
        "unexpected NVM divergence at offsets {:?}",
        &diff[..diff.len().min(8)]
    );
}

#[test]
fn fingerprint_strided_roundtrip() {
    let cfg = GroupHashConfig::new(256, 16)
        .with_probe(ProbeLayout::Strided)
        .with_fp_mode(FpMode::On);
    let (mut pm, mut t, _) = make_cfg(cfg);
    for k in 0..180u64 {
        t.insert(&mut pm, k, k).unwrap();
    }
    for k in 0..180u64 {
        assert_eq!(t.get(&pm, &k), Some(k));
    }
    for k in 180..360u64 {
        assert_eq!(t.get(&pm, &k), None);
    }
    t.check_consistency(&pm).unwrap();
    for k in 0..180u64 {
        assert!(t.remove(&mut pm, &k));
    }
    t.check_consistency(&pm).unwrap();
}

#[test]
fn fingerprint_two_choice_roundtrip() {
    let cfg = GroupHashConfig::new(256, 16)
        .with_choice(ChoiceMode::TwoChoice)
        .with_fp_mode(FpMode::On);
    let (mut pm, mut t, _) = make_cfg(cfg);
    for k in 0..220u64 {
        t.insert(&mut pm, k, k + 3).unwrap();
    }
    for k in 0..220u64 {
        assert_eq!(t.get(&pm, &k), Some(k + 3));
    }
    for k in 1000..1200u64 {
        assert_eq!(t.get(&pm, &k), None);
    }
    t.check_consistency(&pm).unwrap();
}

#[test]
fn fingerprint_insert_flush_budget_unchanged() {
    // The cache must be free on the write path: exactly the paper's
    // 3 flushes / 3 fences per insert, and identical remove costs.
    let (mut pm_off, mut t_off, _) = make(256, 16);
    let cfg = GroupHashConfig::new(256, 16).with_fp_mode(FpMode::On);
    let (mut pm_on, mut t_on, _) = make_cfg(cfg);
    pm_off.reset_stats();
    pm_on.reset_stats();
    t_off.insert(&mut pm_off, 1, 1).unwrap();
    t_on.insert(&mut pm_on, 1, 1).unwrap();
    assert_eq!(pm_on.stats().flushes, 3);
    assert_eq!(pm_on.stats().fences, 3);
    assert_eq!(pm_on.stats().flushes, pm_off.stats().flushes);
    assert_eq!(pm_on.stats().fences, pm_off.stats().fences);
    assert_eq!(pm_on.stats().writes, pm_off.stats().writes);
    assert_eq!(pm_on.stats().atomic_writes, pm_off.stats().atomic_writes);
    pm_off.reset_stats();
    pm_on.reset_stats();
    assert!(t_off.remove(&mut pm_off, &1));
    assert!(t_on.remove(&mut pm_on, &1));
    assert_eq!(pm_on.stats().flushes, pm_off.stats().flushes);
    assert_eq!(pm_on.stats().fences, pm_off.stats().fences);
    assert_eq!(pm_on.stats().bytes_written, pm_off.stats().bytes_written);
}

#[test]
fn fingerprint_cuts_key_reads_on_negative_lookups() {
    // The accelerator's whole point: far fewer pool reads when the
    // probed keys are absent. (bytes_read compares the full probe
    // path; the harness experiment quantifies the cell-key reads.)
    let run = |fp: FpMode| {
        let cfg = GroupHashConfig::new(1 << 12, 64).with_fp_mode(fp);
        let (mut pm, mut t, _) = make_cfg(cfg);
        for k in 0..4000u64 {
            t.insert(&mut pm, k, k).unwrap();
        }
        pm.reset_stats();
        for k in 100_000..101_000u64 {
            assert_eq!(t.get(&pm, &k), None);
        }
        pm.stats().bytes_read
    };
    let off = run(FpMode::Off);
    let on = run(FpMode::On);
    assert!(
        on * 2 < off,
        "fp cache should halve negative-probe NVM reads: {on} vs {off}"
    );
}

#[cfg(feature = "instrument")]
#[test]
fn fingerprint_counters_and_probe_parity() {
    // Probe histograms are defined to be mode-independent, and the
    // fingerprint counters must account for every occupied cell the
    // scan passed: key_reads = hits + false_positives.
    let run = |fp: FpMode| {
        let cfg = GroupHashConfig::new(512, 32).with_fp_mode(fp);
        let (mut pm, mut t, _) = make_cfg(cfg);
        for k in 0..700u64 {
            let _ = t.insert(&mut pm, k, k);
        }
        for k in 0..700u64 {
            let _ = t.get(&pm, &k);
        }
        for k in 5000..5500u64 {
            assert_eq!(t.get(&pm, &k), None);
        }
        t
    };
    let t_off = run(FpMode::Off);
    let t_on = run(FpMode::On);
    let (i_off, i_on) = (&t_off.instr, &t_on.instr);
    assert_eq!(i_off.probe.count(), i_on.probe.count());
    assert_eq!(i_off.probe.to_json().to_string(), i_on.probe.to_json().to_string());
    let f = &i_on.fingerprint;
    assert_eq!(f.key_reads.get(), f.hits.get() + f.false_positives.get());
    assert!(f.skips.get() > 0, "tag filter never skipped a cell");
    assert!(f.key_reads.get() < i_off.fingerprint.key_reads.get());
    // Off mode: no filter outcomes, only raw key reads.
    assert_eq!(i_off.fingerprint.hits.get(), 0);
    assert_eq!(i_off.fingerprint.skips.get(), 0);
}

#[test]
fn paper_insert_flush_budget() {
    // The paper's insert: persist cell + persist bitmap + persist count
    // = 3 flushed lines, 3 fences. No more (that is the whole point).
    let (mut pm, mut t, _) = make(256, 16);
    pm.reset_stats();
    t.insert(&mut pm, 1, 1).unwrap();
    assert_eq!(pm.stats().flushes, 3);
    assert_eq!(pm.stats().fences, 3);
    // And the logged ablation costs strictly more.
    let cfg = GroupHashConfig::new(256, 16).with_commit(CommitStrategy::UndoLog);
    let (mut pm_l, mut tl, _) = make_cfg(cfg);
    pm_l.reset_stats();
    tl.insert(&mut pm_l, 1, 1).unwrap();
    assert!(pm_l.stats().flushes >= 2 * pm.stats().flushes);
}
