//! [`MigrationSource`] for [`GroupHash`]: the scheme's side of
//! incremental online expansion.
//!
//! The raw cell index space the drainer's persisted cursor walks is
//! level 1 (`0..n`) followed by level 2 (`n..2n`) — the same stable order
//! [`GroupHash::for_each_entry`] uses, derived purely from the persisted
//! geometry so it survives re-opens. Each eviction is a one-element
//! retract batch: the paper's failure-atomic bit-clear-then-scrub with
//! the count maintained, identical to a `remove` that skips the probe.

use super::{GroupHash, Level};
use nvm_hashfn::{HashKey, Pod};
use nvm_pmem::Pmem;
use nvm_table::{BatchSession, MigrationSource};

impl<P: Pmem, K: HashKey, V: Pod> GroupHash<P, K, V> {
    /// Splits a raw migration index into (level, cell index).
    fn split_migration_index(&self, i: u64) -> (Level, u64) {
        let n = self.config.cells_per_level;
        if i < n {
            (Level::One, i)
        } else {
            (Level::Two, i - n)
        }
    }
}

impl<P: Pmem, K: HashKey, V: Pod> MigrationSource<P, K, V> for GroupHash<P, K, V> {
    fn migration_cells(&self) -> u64 {
        2 * self.config.cells_per_level
    }

    fn entry_at(&self, pm: &P, i: u64) -> Option<(K, V)> {
        let (level, idx) = self.split_migration_index(i);
        let store = self.level_store(level);
        store
            .is_occupied(pm, idx)
            .then(|| (store.read_key(pm, idx), store.read_value(pm, idx)))
    }

    fn evict_cell(&mut self, pm: &mut P, i: u64) -> bool {
        let (level, idx) = self.split_migration_index(i);
        if !self.level_store(level).is_occupied(pm, idx) {
            return false;
        }
        let mut sess = BatchSession::new();
        self.stage_delete(pm, &mut sess, level, idx);
        self.commit_batch(pm, &mut sess, -1);
        true
    }

    fn migration_cursor(&self, pm: &P) -> u64 {
        self.header.migration_cursor(pm)
    }

    fn set_migration_cursor(&mut self, pm: &mut P, cursor: u64) {
        self.header.set_migration_cursor(pm, cursor);
    }

    fn migration_active(&self, pm: &P) -> bool {
        self.header.migration_active(pm)
    }

    fn set_migration_active(&mut self, pm: &mut P, active: bool) {
        self.header.set_migration_active(pm, active);
    }
}

#[cfg(test)]
mod tests {
    use crate::config::GroupHashConfig;
    use crate::table::GroupHash;
    use nvm_pmem::{Region, SimConfig, SimPmem};
    use nvm_table::{migrate_step, migrate_step_same_pool, HashScheme, MigrationSource};

    type T = GroupHash<SimPmem, u64, u64>;

    #[test]
    fn bounded_steps_drain_everything_between_two_pools() {
        let cfg = GroupHashConfig::new(256, 16);
        let big = GroupHashConfig::new(512, 16).with_seed(cfg.seed);
        let a = T::required_size(&cfg);
        let b = T::required_size(&big);
        let mut src_pm = SimPmem::new(a, SimConfig::fast_test());
        let mut dst_pm = SimPmem::new(b, SimConfig::fast_test());
        let mut src = T::create(&mut src_pm, Region::new(0, a), cfg).unwrap();
        let mut dst = T::create(&mut dst_pm, Region::new(0, b), big).unwrap();
        for k in 0..200u64 {
            src.insert(&mut src_pm, k, k * 7).unwrap();
        }
        let mut steps = 0;
        while !migrate_step(&mut src_pm, &mut dst_pm, &mut src, &mut dst, 16) {
            steps += 1;
            assert!(steps < 10_000, "drain does not terminate");
            // Lookups stay answerable from one side or the other mid-drain.
            let probe = (steps * 13) % 200;
            assert!(
                dst.get(&dst_pm, &probe).or(src.get(&src_pm, &probe)) == Some(probe * 7),
                "key {probe} unreachable mid-migration"
            );
        }
        assert!(steps > 1, "bounded steps must take several calls");
        assert_eq!(src.len(&src_pm), 0);
        assert_eq!(dst.len(&dst_pm), 200);
        assert!(!src.migration_active(&src_pm));
        for k in 0..200u64 {
            assert_eq!(dst.get(&dst_pm, &k), Some(k * 7));
        }
        src.check_consistency(&src_pm).unwrap();
        dst.check_consistency(&dst_pm).unwrap();
    }

    #[test]
    fn same_pool_drain_with_fingerprints() {
        use crate::config::FpMode;
        let cfg = GroupHashConfig::new(256, 16).with_fp_mode(FpMode::On);
        let big = GroupHashConfig::new(512, 16)
            .with_seed(cfg.seed)
            .with_fp_mode(FpMode::On);
        let a = T::required_size(&cfg);
        let b = T::required_size(&big);
        let mut pm = SimPmem::new(a + b + 128, SimConfig::fast_test());
        let mut src = T::create(&mut pm, Region::new(0, a), cfg).unwrap();
        let mut dst = T::create(&mut pm, Region::new(a, b + 128), big).unwrap();
        for k in 0..150u64 {
            src.insert(&mut pm, k, k).unwrap();
        }
        while !migrate_step_same_pool(&mut pm, &mut src, &mut dst, 32) {}
        assert_eq!(dst.len(&pm), 150);
        dst.verify_fp_cache(&pm).unwrap();
        src.verify_fp_cache(&pm).unwrap();
        dst.check_consistency(&pm).unwrap();
    }

    #[test]
    fn cursor_survives_reopen_and_resumes() {
        let cfg = GroupHashConfig::new(256, 16);
        let big = GroupHashConfig::new(512, 16).with_seed(cfg.seed);
        let a = T::required_size(&cfg);
        let b = T::required_size(&big);
        let mut pm = SimPmem::new(a + b + 128, SimConfig::fast_test());
        let mut src = T::create(&mut pm, Region::new(0, a), cfg).unwrap();
        let mut dst = T::create(&mut pm, Region::new(a, b + 128), big).unwrap();
        for k in 0..100u64 {
            src.insert(&mut pm, k, k + 1).unwrap();
        }
        // Partially drain, then simulate a clean restart (re-open).
        migrate_step_same_pool(&mut pm, &mut src, &mut dst, 10);
        let cursor = src.migration_cursor(&pm);
        assert!(cursor > 0 && src.migration_active(&pm));
        let mut src = T::open(&mut pm, Region::new(0, a)).unwrap();
        let mut dst = T::open(&mut pm, Region::new(a, b + 128)).unwrap();
        assert_eq!(MigrationSource::<_, u64, u64>::migration_cursor(&src, &pm), cursor);
        while !migrate_step_same_pool(&mut pm, &mut src, &mut dst, 10) {}
        assert_eq!(dst.len(&pm), 100);
        assert_eq!(src.len(&pm), 0);
        for k in 0..100u64 {
            assert_eq!(dst.get(&pm, &k), Some(k + 1));
        }
    }
}
