//! Structural introspection: consistency checking, occupancy analysis.

use crate::table::GroupHash;
use nvm_hashfn::{HashKey, Pod};
use nvm_pmem::Pmem;
use nvm_table::TableError;
use std::collections::HashMap;

/// Occupancy of one group.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupFill {
    /// Occupied level-1 cells in the group's slot range.
    pub level1: u64,
    /// Occupied level-2 (collision-resolution) cells owned by the group.
    pub level2: u64,
}

impl GroupFill {
    /// Total occupied cells of the group.
    pub fn total(&self) -> u64 {
        self.level1 + self.level2
    }
}

/// A full occupancy snapshot of a table.
#[derive(Debug, Clone)]
pub struct TableAnalysis {
    /// Per-group occupancy, indexed by group number.
    pub groups: Vec<GroupFill>,
    /// Total occupied level-1 cells.
    pub level1_used: u64,
    /// Total occupied level-2 cells.
    pub level2_used: u64,
    /// Cells per group.
    pub group_size: u64,
}

impl TableAnalysis {
    /// Builds an occupancy snapshot (O(capacity)).
    pub fn capture<P: Pmem, K: HashKey, V: Pod>(
        table: &GroupHash<P, K, V>,
        pm: &P,
    ) -> Self {
        let (config, bitmap1, bitmap2, _c1, _c2) = table.parts();
        let gs = config.group_size;
        let mut groups = vec![GroupFill::default(); config.n_groups() as usize];
        for i in 0..config.cells_per_level {
            if bitmap1.get(pm, i) {
                groups[(i / gs) as usize].level1 += 1;
            }
            if bitmap2.get(pm, i) {
                groups[table.group_of_l2_cell(i) as usize].level2 += 1;
            }
        }
        let level1_used = groups.iter().map(|g| g.level1).sum();
        let level2_used = groups.iter().map(|g| g.level2).sum();
        TableAnalysis {
            groups,
            level1_used,
            level2_used,
            group_size: gs,
        }
    }

    /// Occupied cells in the fullest group.
    pub fn max_group_fill(&self) -> u64 {
        self.groups.iter().map(GroupFill::total).max().unwrap_or(0)
    }

    /// Fraction of level-2 cells in use, per group, averaged.
    pub fn mean_overflow_ratio(&self) -> f64 {
        if self.groups.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .groups
            .iter()
            .map(|g| g.level2 as f64 / self.group_size as f64)
            .sum();
        total / self.groups.len() as f64
    }

    /// Histogram of group total fills (bucket i = number of groups with
    /// exactly i occupied cells); length `2 * group_size + 1`.
    pub fn fill_histogram(&self) -> Vec<u64> {
        let mut h = vec![0u64; (2 * self.group_size + 1) as usize];
        for g in &self.groups {
            h[g.total() as usize] += 1;
        }
        h
    }
}

/// Verifies every structural invariant of a group hash table:
///
/// 1. `count` equals the number of set occupancy bits;
/// 2. every cell whose bit is clear is fully zeroed (holds outside of
///    in-flight operations; recovery restores it after a crash);
/// 3. every occupied level-1 cell holds a key that hashes to that slot;
/// 4. every occupied level-2 cell holds a key whose group matches the
///    cell's owning group;
/// 5. no key appears twice;
/// 6. under [`FpMode::On`](crate::FpMode), the volatile fingerprint cache
///    agrees with the pool for every occupied cell.
///
/// The first violation comes back as [`TableError::Corrupt`].
pub fn check_consistency<P: Pmem, K: HashKey, V: Pod>(
    table: &GroupHash<P, K, V>,
    pm: &P,
) -> Result<(), TableError> {
    let (config, bitmap1, bitmap2, cells1, cells2) = table.parts();
    let n = config.cells_per_level;
    let gs = config.group_size;
    let mut occupied = 0u64;
    // Keys are Eq but not std::hash::Hash; index by their serialized bytes.
    let mut seen: HashMap<Vec<u8>, u64> = HashMap::new();
    let key_bytes = |key: &K| {
        let mut b = vec![0u8; K::SIZE];
        key.write_to(&mut b);
        b
    };

    for i in 0..n {
        if bitmap1.get(pm, i) {
            occupied += 1;
            let key = cells1.read_key(pm, i);
            let want1 = table.slot_of(&key);
            let want2 = table.slot2_of(&key);
            if want1 != i && want2 != Some(i) {
                return Err(TableError::Corrupt(format!(
                    "level-1 cell {i} holds a key that hashes to slot {want1} ({want2:?})"
                )));
            }
            if let Some(prev) = seen.insert(key_bytes(&key), i) {
                return Err(TableError::Corrupt(format!(
                    "duplicate key in cells {prev} and {i} (level 1)"
                )));
            }
        } else if !cells1.is_zeroed(pm, i) {
            return Err(TableError::Corrupt(format!(
                "empty level-1 cell {i} is not zeroed"
            )));
        }

        if bitmap2.get(pm, i) {
            occupied += 1;
            let key = cells2.read_key(pm, i);
            let g1 = table.slot_of(&key) / gs;
            let g2 = table.slot2_of(&key).map(|s| s / gs);
            let cell_group = table.group_of_l2_cell(i);
            if g1 != cell_group && g2 != Some(cell_group) {
                return Err(TableError::Corrupt(format!(
                    "level-2 cell {i} (group {cell_group}) holds a key of group {g1} ({g2:?})"
                )));
            }
            if let Some(prev) = seen.insert(key_bytes(&key), n + i) {
                return Err(TableError::Corrupt(format!(
                    "duplicate key in cells {prev} and {} (level 2)",
                    n + i
                )));
            }
        } else if !cells2.is_zeroed(pm, i) {
            return Err(TableError::Corrupt(format!(
                "empty level-2 cell {i} is not zeroed"
            )));
        }
    }

    let count = table.len(pm);
    if count != occupied {
        return Err(TableError::Corrupt(format!(
            "count field says {count}, bitmaps say {occupied}"
        )));
    }
    table.verify_fp_cache(pm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::make;
    use nvm_table::HashScheme;

    #[test]
    fn analysis_counts_match_len() {
        let (mut pm, mut t, _) = make(256, 16);
        for k in 0..150u64 {
            t.insert(&mut pm, k, k).unwrap();
        }
        let a = TableAnalysis::capture(&t, &pm);
        assert_eq!(a.level1_used + a.level2_used, 150);
        assert_eq!(a.groups.len(), 16);
        assert_eq!(
            a.fill_histogram().iter().enumerate().map(|(i, &c)| i as u64 * c).sum::<u64>(),
            150
        );
        assert!(a.max_group_fill() <= 2 * 16);
    }

    #[test]
    fn empty_table_analysis() {
        let (pm, t, _) = make(256, 16);
        let a = TableAnalysis::capture(&t, &pm);
        assert_eq!(a.level1_used, 0);
        assert_eq!(a.level2_used, 0);
        assert_eq!(a.max_group_fill(), 0);
        assert_eq!(a.mean_overflow_ratio(), 0.0);
        t.check_consistency(&pm).unwrap();
    }

    #[test]
    fn consistency_detects_bad_count() {
        let (mut pm, mut t, _) = make(256, 16);
        t.insert(&mut pm, 3, 30).unwrap();
        // Corrupt the persistent count directly.
        let (config, ..) = t.parts();
        assert_eq!(config.cells_per_level, 256);
        // count lives at header offset +16; header starts at region offset 0.
        nvm_pmem::Pmem::atomic_write_u64(&mut pm, 16, 5);
        let err = t.check_consistency(&pm).unwrap_err();
        assert!(err.to_string().contains("count"), "{err}");
    }

    #[test]
    fn consistency_detects_unzeroed_ghost() {
        let (mut pm, mut t, _) = make(256, 16);
        t.insert(&mut pm, 3, 30).unwrap();
        let slot = {
            let (_, b1, ..) = t.parts();
            // find the occupied level-1 slot
            (0..256).find(|&i| b1.get(&pm, i)).unwrap()
        };
        // Clear the bit without erasing the cell: a mid-delete crash state.
        let (_, b1, ..) = t.parts();
        b1.set_and_persist(&mut pm, slot, false);
        assert!(t.check_consistency(&pm).is_err());
        // Recovery repairs it.
        t.recover(&mut pm);
        t.check_consistency(&pm).unwrap();
    }
}
