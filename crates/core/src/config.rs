//! Construction parameters and ablation knobs for [`GroupHash`].
//!
//! [`GroupHash`]: crate::GroupHash

use nvm_table::TableError;

/// How updates are committed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommitStrategy {
    /// The paper's design: persist the cell, then atomically flip its
    /// occupancy bit (8-byte failure-atomic write). No duplicate copies.
    #[default]
    AtomicBitmap,
    /// Ablation: force every update through an undo-log transaction, like
    /// the `-L` baselines. Quantifies exactly what the bitmap commit saves.
    UndoLog,
}

/// Physical placement of a group's collision-resolution cells.
///
/// Defined in the shared probe-plan layer ([`nvm_table::probe`]) so the
/// pure [`GroupPlan`](nvm_table::probe::GroupPlan) iterators and this
/// crate's config agree on the geometry; re-exported here unchanged.
pub use nvm_table::probe::ProbeLayout;

/// How many hash functions address level 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChoiceMode {
    /// The paper's design: one hash function; collisions go to the single
    /// matched group. Best locality, ~82 % utilization.
    #[default]
    Single,
    /// The extension the paper sketches in §4.4: a second hash function
    /// gives each key two candidate slots and two candidate groups,
    /// raising utilization at the cost of probing two scattered regions
    /// ("the continuity of the collision resolution cells is damaged").
    TwoChoice,
}

/// Where the global `count` lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CountMode {
    /// The paper's design: `count` is persistent and updated with
    /// `AtomicInc + Persist` on every insert/delete (one extra flush per
    /// operation); recovery repairs at most one lost update.
    #[default]
    Persistent,
    /// Ablation: `count` is DRAM-resident and rebuilt from the bitmaps on
    /// open/recovery, trading one flush per update for a full-table scan
    /// at recovery (which Algorithm 4 performs anyway).
    Volatile,
}

/// Whether the table keeps a DRAM-resident fingerprint cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FpMode {
    /// The paper-faithful path: every probe reads key bytes from the pool.
    #[default]
    Off,
    /// Accelerator: one volatile tag byte per cell (from a third hash of
    /// the key) filters probes so key bytes are only read when the tag
    /// matches. Adds zero persisted state and zero flushes; the cache is
    /// rebuilt from the bitmaps + cells on `open`/`recover`.
    On,
}

/// Parameters for creating a group hash table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupHashConfig {
    /// Cells per level. The table's total capacity is `2 * cells_per_level`.
    /// Must be a power of two.
    pub cells_per_level: u64,
    /// Cells per group (the paper's default is 256). Must be a power of
    /// two dividing `cells_per_level`.
    pub group_size: u64,
    /// Hash seed (persisted; derives the hash function).
    pub seed: u64,
    /// How an insert's commit point is persisted (bitmap word vs cell).
    pub commit: CommitStrategy,
    /// How a group's cells are laid out for the level-2 scan.
    pub probe: ProbeLayout,
    /// Where the live-entry count lives (persisted vs recomputed).
    pub count_mode: CountMode,
    /// How many level-1 candidate slots a key gets (one vs two hashes).
    pub choice: ChoiceMode,
    /// Whether the volatile fingerprint (tag) cache filters probes.
    pub fp: FpMode,
}

impl GroupHashConfig {
    /// Paper-default knobs with the given geometry.
    pub fn new(cells_per_level: u64, group_size: u64) -> Self {
        GroupHashConfig {
            cells_per_level,
            group_size,
            seed: 0x6772_6F75_7068_6173, // "grouphas"
            commit: CommitStrategy::default(),
            probe: ProbeLayout::default(),
            count_mode: CountMode::default(),
            choice: ChoiceMode::default(),
            fp: FpMode::default(),
        }
    }

    /// The paper's default group size.
    pub const DEFAULT_GROUP_SIZE: u64 = 256;

    /// Paper defaults sized for `total_cells` cells across both levels,
    /// routed through [`GroupHashConfig::build`] like every other
    /// constructor path (it used to `assert!` its precondition and skip
    /// validation entirely).
    pub fn for_total_cells(total_cells: u64) -> Result<Self, TableError> {
        if total_cells < 2 {
            return Err(TableError::Config(format!(
                "need at least two cells, got {total_cells}"
            )));
        }
        let per_level = (total_cells / 2).next_power_of_two();
        let per_level = if per_level > total_cells / 2 {
            per_level / 2
        } else {
            per_level
        };
        let group = Self::DEFAULT_GROUP_SIZE.min(per_level);
        GroupHashConfig::new(per_level.max(1), group.max(1)).build()
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the commit strategy (ablation).
    pub fn with_commit(mut self, commit: CommitStrategy) -> Self {
        self.commit = commit;
        self
    }

    /// Overrides the probe layout (ablation).
    pub fn with_probe(mut self, probe: ProbeLayout) -> Self {
        self.probe = probe;
        self
    }

    /// Overrides the count mode (ablation).
    pub fn with_count_mode(mut self, count_mode: CountMode) -> Self {
        self.count_mode = count_mode;
        self
    }

    /// Overrides the choice mode (the paper's two-hash extension, §4.4).
    pub fn with_choice(mut self, choice: ChoiceMode) -> Self {
        self.choice = choice;
        self
    }

    /// Enables/disables the volatile fingerprint cache (extension).
    pub fn with_fp_mode(mut self, fp: FpMode) -> Self {
        self.fp = fp;
        self
    }

    /// Terminal step for builder chains: validates the geometry and hands
    /// the config back. This is the single validated build point — every
    /// constructor path funnels through it (`for_total_cells` internally;
    /// `GroupHash::create`/`open` re-validate), so an invalid `new` +
    /// `with_*` chain is caught before any pool bytes move.
    pub fn build(self) -> Result<Self, TableError> {
        self.validate()?;
        Ok(self)
    }

    /// Validates the geometry.
    pub fn validate(&self) -> Result<(), TableError> {
        if !self.cells_per_level.is_power_of_two() {
            return Err(TableError::Config(format!(
                "cells_per_level {} is not a power of two",
                self.cells_per_level
            )));
        }
        if !self.group_size.is_power_of_two() {
            return Err(TableError::Config(format!(
                "group_size {} is not a power of two",
                self.group_size
            )));
        }
        if self.group_size > self.cells_per_level {
            return Err(TableError::Config(format!(
                "group_size {} exceeds cells_per_level {}",
                self.group_size, self.cells_per_level
            )));
        }
        Ok(())
    }

    /// Number of groups per level.
    pub fn n_groups(&self) -> u64 {
        self.cells_per_level / self.group_size
    }

    /// Packs the ablation knobs into a persisted flags word.
    pub(crate) fn flags(&self) -> u64 {
        let mut f = 0u64;
        if self.commit == CommitStrategy::UndoLog {
            f |= 1;
        }
        if self.probe == ProbeLayout::Strided {
            f |= 2;
        }
        if self.count_mode == CountMode::Volatile {
            f |= 4;
        }
        if self.choice == ChoiceMode::TwoChoice {
            f |= 8;
        }
        if self.fp == FpMode::On {
            f |= 16;
        }
        f
    }

    /// Inverse of [`GroupHashConfig::flags`].
    pub(crate) fn from_persisted(
        cells_per_level: u64,
        group_size: u64,
        seed: u64,
        flags: u64,
    ) -> Self {
        GroupHashConfig {
            cells_per_level,
            group_size,
            seed,
            commit: if flags & 1 != 0 {
                CommitStrategy::UndoLog
            } else {
                CommitStrategy::AtomicBitmap
            },
            probe: if flags & 2 != 0 {
                ProbeLayout::Strided
            } else {
                ProbeLayout::Contiguous
            },
            count_mode: if flags & 4 != 0 {
                CountMode::Volatile
            } else {
                CountMode::Persistent
            },
            choice: if flags & 8 != 0 {
                ChoiceMode::TwoChoice
            } else {
                ChoiceMode::Single
            },
            fp: if flags & 16 != 0 { FpMode::On } else { FpMode::Off },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(GroupHashConfig::new(1024, 256).validate().is_ok());
        assert!(GroupHashConfig::new(1000, 256).validate().is_err());
        assert!(GroupHashConfig::new(1024, 100).validate().is_err());
        assert!(GroupHashConfig::new(64, 128).validate().is_err());
        assert!(GroupHashConfig::new(64, 64).validate().is_ok());
    }

    #[test]
    fn for_total_cells_halves() {
        let c = GroupHashConfig::for_total_cells(1 << 20).unwrap();
        assert_eq!(c.cells_per_level, 1 << 19);
        assert_eq!(c.group_size, 256);
        c.validate().unwrap();
        // Tiny tables clamp the group size.
        let tiny = GroupHashConfig::for_total_cells(64).unwrap();
        assert_eq!(tiny.cells_per_level, 32);
        assert_eq!(tiny.group_size, 32);
        tiny.validate().unwrap();
    }

    /// Regression: every constructor path reports invalid geometry as
    /// `TableError::Config` instead of panicking or deferring to `create`.
    #[test]
    fn constructor_paths_are_validated() {
        // for_total_cells used to assert!(total_cells >= 2).
        assert!(matches!(
            GroupHashConfig::for_total_cells(1),
            Err(TableError::Config(_))
        ));
        GroupHashConfig::for_total_cells(2).unwrap().validate().unwrap();
        // A with_* chain ending in build() catches bad geometry early.
        let err = GroupHashConfig::new(1024, 100).with_seed(7).build();
        assert!(matches!(err, Err(TableError::Config(_))));
        let ok = GroupHashConfig::new(1024, 256).with_seed(7).build().unwrap();
        assert_eq!(ok.seed, 7);
    }

    #[test]
    fn flags_roundtrip() {
        for commit in [CommitStrategy::AtomicBitmap, CommitStrategy::UndoLog] {
            for probe in [ProbeLayout::Contiguous, ProbeLayout::Strided] {
                for cm in [CountMode::Persistent, CountMode::Volatile] {
                    for ch in [ChoiceMode::Single, ChoiceMode::TwoChoice] {
                        for fp in [FpMode::Off, FpMode::On] {
                            let c = GroupHashConfig::new(256, 16)
                                .with_commit(commit)
                                .with_probe(probe)
                                .with_count_mode(cm)
                                .with_choice(ch)
                                .with_fp_mode(fp)
                                .with_seed(99);
                            let r = GroupHashConfig::from_persisted(256, 16, 99, c.flags());
                            assert_eq!(c, r);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn n_groups() {
        assert_eq!(GroupHashConfig::new(1024, 256).n_groups(), 4);
        assert_eq!(GroupHashConfig::new(1024, 1024).n_groups(), 1);
    }
}
