//! Pins the paper's write-efficiency claim at the persistence-op level.
//!
//! Table 2 credits group hashing with one failure-atomic 8-byte commit
//! per structural change instead of a log transaction. These tests wrap
//! single operations in an [`OpTrace`] window and assert the *exact*
//! flush/fence counts, so any regression that adds a write-back to the
//! hot path fails loudly rather than showing up as a few percent in a
//! benchmark:
//!
//! * insert = 3 flushes / 3 fences (cell write-back, bitmap commit,
//!   count update);
//! * remove = 3 flushes / 3 fences (bitmap commit — the logical delete —
//!   then the cell scrub and count update);
//! * query  = 0 flushes / 0 fences;
//! * the bitmap commit itself is exactly one flush of one atomic 8-byte
//!   store.

use group_hash::{FpMode, GroupHash, GroupHashConfig};
use nvm_metrics::{OpDelta, OpTrace};
use nvm_pmem::{Pmem, Region, SimConfig, SimPmem};

fn build() -> (SimPmem, GroupHash<SimPmem, u64, u64>) {
    build_with_fp(FpMode::Off)
}

fn build_with_fp(fp: FpMode) -> (SimPmem, GroupHash<SimPmem, u64, u64>) {
    let cfg = GroupHashConfig::new(1 << 10, 64).with_seed(9).with_fp_mode(fp);
    let size = GroupHash::<SimPmem, u64, u64>::required_size(&cfg);
    let mut pm = SimPmem::new(size, SimConfig::paper_default());
    let table = GroupHash::create(&mut pm, Region::new(0, size), cfg).unwrap();
    (pm, table)
}

fn traced(pm: &mut SimPmem, op: impl FnOnce(&mut SimPmem)) -> OpDelta {
    let tr = OpTrace::begin(pm);
    op(pm);
    tr.end(pm)
}

#[test]
fn insert_costs_three_flushes_three_fences() {
    let (mut pm, mut table) = build();
    for k in 0..200u64 {
        let d = traced(&mut pm, |pm| {
            table.insert(pm, k, k + 1).unwrap();
        });
        assert_eq!(
            (d.pmem.flushes, d.pmem.fences),
            (3, 3),
            "insert of key {k}: {:?}",
            d.pmem
        );
        // Exactly one of the three is the atomic bitmap commit... plus
        // the atomic count update: two 8-byte atomics, one data line.
        assert_eq!(d.pmem.atomic_writes, 2, "key {k}: {:?}", d.pmem);
    }
}

#[test]
fn remove_costs_three_flushes_three_fences() {
    let (mut pm, mut table) = build();
    for k in 0..100u64 {
        table.insert(&mut pm, k, k).unwrap();
    }
    for k in 0..100u64 {
        let d = traced(&mut pm, |pm| {
            assert!(table.remove(pm, &k));
        });
        assert_eq!(
            (d.pmem.flushes, d.pmem.fences),
            (3, 3),
            "remove of key {k}: {:?}",
            d.pmem
        );
        // Bitmap clear + count update are the two 8-byte atomics; the
        // third write scrubs the 16-byte cell (so recovery never sees a
        // cleared bit over live-looking bytes). 8 + 16 + 8 = 32 bytes —
        // still no log entry anywhere.
        assert_eq!(d.pmem.atomic_writes, 2, "key {k}: {:?}", d.pmem);
        assert_eq!(d.pmem.bytes_written, 32, "key {k}: {:?}", d.pmem);
    }
}

#[test]
fn query_never_persists() {
    let (mut pm, mut table) = build();
    for k in 0..100u64 {
        table.insert(&mut pm, k, k * 7).unwrap();
    }
    for k in 0..100u64 {
        let mut got = None;
        let d = traced(&mut pm, |pm| {
            got = table.get(pm, &k);
        });
        assert_eq!(got, Some(k * 7));
        assert_eq!((d.pmem.flushes, d.pmem.fences), (0, 0), "{:?}", d.pmem);
        assert_eq!(d.pmem.writes + d.pmem.atomic_writes, 0, "{:?}", d.pmem);
    }
}

#[test]
fn commit_bit_is_one_flush_of_one_atomic_store() {
    // The primitive underneath Algorithm 1's step 3: an 8-byte atomic
    // store plus one line flush and one fence.
    let mut pm = SimPmem::new(4096, SimConfig::paper_default());
    let tr = OpTrace::begin(&pm);
    pm.atomic_write_u64(128, 0xFFFF_0000_FFFF_0000);
    pm.flush(128, 8);
    pm.fence();
    let d = tr.end(&pm);
    assert_eq!(d.pmem.atomic_writes, 1);
    assert_eq!(d.pmem.flushes, 1);
    assert_eq!(d.pmem.fences, 1);
    // The atomic store is the only write (atomics count as writes too).
    assert_eq!(d.pmem.writes, 1);
    assert_eq!(d.pmem.bytes_written, 8);
}

#[test]
fn fingerprint_cache_never_changes_persistence_costs() {
    // The DRAM fingerprint cache is a pure accelerator: with FpMode::On
    // every operation must issue *exactly* the same persistence traffic
    // as the paper-faithful path. Pin the budgets side by side.
    let (mut pm_off, mut off) = build_with_fp(FpMode::Off);
    let (mut pm_on, mut on) = build_with_fp(FpMode::On);
    for k in 0..200u64 {
        let d_off = traced(&mut pm_off, |pm| off.insert(pm, k, k + 1).unwrap());
        let d_on = traced(&mut pm_on, |pm| on.insert(pm, k, k + 1).unwrap());
        assert_eq!((d_on.pmem.flushes, d_on.pmem.fences), (3, 3), "key {k}");
        assert_eq!(d_on.pmem.atomic_writes, 2, "key {k}");
        assert_eq!(
            (d_off.pmem.flushes, d_off.pmem.fences, d_off.pmem.writes, d_off.pmem.bytes_written),
            (d_on.pmem.flushes, d_on.pmem.fences, d_on.pmem.writes, d_on.pmem.bytes_written),
            "insert of key {k} diverged"
        );
    }
    for k in 0..100u64 {
        let d_off = traced(&mut pm_off, |pm| assert!(off.remove(pm, &k)));
        let d_on = traced(&mut pm_on, |pm| assert!(on.remove(pm, &k)));
        assert_eq!((d_on.pmem.flushes, d_on.pmem.fences), (3, 3), "key {k}");
        assert_eq!(d_on.pmem.atomic_writes, 2, "key {k}");
        assert_eq!(d_on.pmem.bytes_written, 32, "key {k}");
        assert_eq!(
            (d_off.pmem.flushes, d_off.pmem.fences, d_off.pmem.writes, d_off.pmem.bytes_written),
            (d_on.pmem.flushes, d_on.pmem.fences, d_on.pmem.writes, d_on.pmem.bytes_written),
            "remove of key {k} diverged"
        );
    }
    for k in 100..200u64 {
        let d = traced(&mut pm_on, |pm| {
            assert_eq!(on.get(pm, &k), Some(k + 1));
        });
        assert_eq!((d.pmem.flushes, d.pmem.fences), (0, 0), "{:?}", d.pmem);
        assert_eq!(d.pmem.writes + d.pmem.atomic_writes, 0, "{:?}", d.pmem);
    }
}

#[test]
fn sim_latency_is_attributed_to_the_window() {
    let (mut pm, mut table) = build();
    table.insert(&mut pm, 1, 1).unwrap();
    let idle = traced(&mut pm, |_| {});
    assert_eq!(idle.sim_ns, Some(0), "empty window must cost nothing");
    let d = traced(&mut pm, |pm| {
        table.insert(pm, 2, 2).unwrap();
    });
    assert!(d.sim_ns.unwrap() > 0, "insert must advance the sim clock");
    assert!(d.latency_ns() >= d.sim_ns.unwrap());
}
