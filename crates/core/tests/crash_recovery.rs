//! Exhaustive crash-point testing of group hashing (paper §3.3–3.5).
//!
//! The paper argues informally that a crash at *any* instant of an insert
//! or delete leaves the table recoverable. These tests check that claim
//! mechanically: for every operation in a workload, for **every mutation
//! event** inside that operation, inject a crash, resolve the non-durable
//! words adversarially (all dropped / all persisted / randomized), re-open
//! the table from the raw pool bytes, run Algorithm 4, and verify
//!
//! 1. every structural invariant holds ([`check_consistency`]);
//! 2. all previously committed entries are intact;
//! 3. the in-flight operation is atomic: its key is either fully present
//!    (with the new value) or fully absent — never mangled.

use group_hash::{GroupHash, GroupHashConfig, HashScheme};
use nvm_pmem::{run_with_crash, CrashPlan, CrashResolution, Region, SimConfig, SimPmem};
use std::collections::BTreeMap;

type Table = GroupHash<SimPmem, u64, u64>;

fn fresh(cfg: GroupHashConfig) -> (SimPmem, Table, Region) {
    let size = Table::required_size(&cfg);
    let mut pm = SimPmem::new(size, SimConfig::fast_test());
    let region = Region::new(0, size);
    let t = Table::create(&mut pm, region, cfg).unwrap();
    (pm, t, region)
}

/// One workload step.
#[derive(Debug, Clone, Copy)]
enum Step {
    Insert(u64, u64),
    Remove(u64),
}

/// Runs `steps[..i]` fully, then `steps[i]` with a crash injected at
/// `event`, resolves, recovers, and checks all three properties above.
/// Returns `false` if the operation actually completed before the crash
/// point (event index beyond the op), which tells the caller to stop
/// scanning events for this step.
fn crash_at(
    cfg: GroupHashConfig,
    steps: &[Step],
    i: usize,
    event_offset: u64,
    how: CrashResolution,
) -> bool {
    let (mut pm, mut t, region) = fresh(cfg);
    // Oracle of committed state before the in-flight op.
    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
    for s in &steps[..i] {
        match *s {
            Step::Insert(k, v) => {
                t.insert(&mut pm, k, v).unwrap();
                oracle.insert(k, v);
            }
            Step::Remove(k) => {
                assert!(t.remove(&mut pm, &k));
                oracle.remove(&k);
            }
        }
    }

    let base_events = pm.events();
    pm.set_crash_plan(Some(CrashPlan {
        at_event: base_events + event_offset,
    }));
    let step = steps[i];
    let outcome = run_with_crash(|| match step {
        Step::Insert(k, v) => {
            t.insert(&mut pm, k, v).unwrap();
        }
        Step::Remove(k) => {
            assert!(t.remove(&mut pm, &k));
        }
    });
    if outcome.is_ok() {
        // The op used fewer events than event_offset: nothing to crash.
        pm.set_crash_plan(None);
        return false;
    }

    pm.crash(how);

    // Re-open purely from pool bytes and recover.
    let mut t = Table::open(&mut pm, region).unwrap();
    t.recover(&mut pm);
    t.check_consistency(&pm)
        .unwrap_or_else(|e| panic!("inconsistent after crash at +{event_offset} ({how:?}): {e}"));

    // Committed entries must be intact...
    let in_flight_key = match step {
        Step::Insert(k, _) => k,
        Step::Remove(k) => k,
    };
    for (&k, &v) in &oracle {
        if k == in_flight_key {
            continue; // the op targeting this key may have completed
        }
        assert_eq!(
            t.get(&pm, &k),
            Some(v),
            "committed key {k} lost (crash at +{event_offset}, {how:?})"
        );
    }
    // ...and the in-flight op must be atomic.
    match step {
        Step::Insert(k, v) => match t.get(&pm, &k) {
            None => {}
            Some(got) => assert_eq!(got, v, "torn insert of key {k}"),
        },
        Step::Remove(k) => match t.get(&pm, &k) {
            None => {}
            Some(got) => {
                assert_eq!(got, oracle[&k], "torn delete of key {k}");
            }
        },
    }
    true
}

/// Scans every crash event of step `i` under every resolution.
fn scan_step(cfg: GroupHashConfig, steps: &[Step], i: usize) {
    for how in [
        CrashResolution::DropUnflushed,
        CrashResolution::PersistAll,
        CrashResolution::Alternate { persist_first: true },
        CrashResolution::Alternate { persist_first: false },
        CrashResolution::Random(0xC0FFEE),
        CrashResolution::Random(42),
    ] {
        let mut event = 0u64;
        while crash_at(cfg, steps, i, event, how) {
            event += 1;
            assert!(event < 200, "operation used implausibly many events");
        }
    }
}

fn small_cfg() -> GroupHashConfig {
    GroupHashConfig::new(64, 16)
}

#[test]
fn insert_into_empty_slot_is_crash_atomic() {
    let steps = [Step::Insert(1, 100)];
    scan_step(small_cfg(), &steps, 0);
}

#[test]
fn insert_into_group_is_crash_atomic() {
    // Force level-2 placement: seed keys until one collides.
    let cfg = small_cfg();
    let (pm, t, _) = fresh(cfg);
    // Find two keys with the same level-1 slot.
    let base_slot = t.slot_of(&1000);
    let collider = (1001..)
        .find(|k| t.slot_of(k) == base_slot)
        .unwrap();
    let _ = (t, pm);
    let steps = [Step::Insert(1000, 1), Step::Insert(collider, 2)];
    scan_step(cfg, &steps, 1);
}

#[test]
fn delete_from_level1_is_crash_atomic() {
    let steps = [
        Step::Insert(5, 50),
        Step::Insert(6, 60),
        Step::Remove(5),
    ];
    scan_step(small_cfg(), &steps, 2);
}

#[test]
fn delete_from_group_is_crash_atomic() {
    let cfg = small_cfg();
    let (pm, t, _) = fresh(cfg);
    let base_slot = t.slot_of(&2000);
    let collider = (2001..).find(|k| t.slot_of(k) == base_slot).unwrap();
    let _ = (t, pm);
    let steps = [
        Step::Insert(2000, 1),
        Step::Insert(collider, 2),
        Step::Remove(collider), // lives in level 2
    ];
    scan_step(cfg, &steps, 2);
}

#[test]
fn crash_during_longer_history() {
    // A denser table: crashes land amid populated bitmap words.
    let mut steps: Vec<Step> = (0..40u64).map(|k| Step::Insert(k, k * 7)).collect();
    steps.push(Step::Remove(11));
    steps.push(Step::Insert(100, 1));
    let last = steps.len() - 1;
    scan_step(small_cfg(), &steps, last);
    scan_step(small_cfg(), &steps, last - 1);
}

#[test]
fn recovery_is_idempotent_after_crash() {
    let cfg = small_cfg();
    let steps = [Step::Insert(3, 33)];
    // Crash mid-insert, recover twice: second recovery must be a no-op.
    let (mut pm, mut t, region) = fresh(cfg);
    pm.set_crash_plan(Some(CrashPlan { at_event: 2 }));
    let _ = run_with_crash(|| t.insert(&mut pm, steps[0].key(), 33));
    pm.crash(CrashResolution::Random(9));
    let mut t = Table::open(&mut pm, region).unwrap();
    t.recover(&mut pm);
    let image1 = pm.raw().to_vec();
    t.recover(&mut pm);
    t.check_consistency(&pm).unwrap();
    assert_eq!(pm.raw(), &image1[..], "second recovery changed state");
}

impl Step {
    fn key(&self) -> u64 {
        match *self {
            Step::Insert(k, _) => k,
            Step::Remove(k) => k,
        }
    }
}

#[test]
fn logged_ablation_is_also_crash_safe() {
    use group_hash::CommitStrategy;
    let cfg = small_cfg().with_commit(CommitStrategy::UndoLog);
    let steps = [Step::Insert(9, 90), Step::Remove(9)];
    scan_step(cfg, &steps, 0);
    scan_step(cfg, &steps, 1);
}

#[test]
fn two_choice_extension_is_also_crash_safe() {
    use group_hash::ChoiceMode;
    let cfg = small_cfg().with_choice(ChoiceMode::TwoChoice);
    let steps = [Step::Insert(7, 70), Step::Insert(8, 80), Step::Remove(7)];
    scan_step(cfg, &steps, 1);
    scan_step(cfg, &steps, 2);
}

#[test]
fn strided_ablation_is_also_crash_safe() {
    use group_hash::ProbeLayout;
    let cfg = small_cfg().with_probe(ProbeLayout::Strided);
    let (pm, t, _) = fresh(cfg);
    let base_slot = t.slot_of(&3000);
    let collider = (3001..).find(|k| t.slot_of(k) == base_slot).unwrap();
    let _ = (t, pm);
    let steps = [Step::Insert(3000, 1), Step::Insert(collider, 2)];
    scan_step(cfg, &steps, 1);
}
