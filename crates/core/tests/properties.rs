//! Property-based tests for group hashing.

use group_hash::{
    ChoiceMode, CommitStrategy, CountMode, FpMode, GroupHash, GroupHashConfig, HashScheme,
    ProbeLayout, TableAnalysis,
};
use nvm_pmem::{run_with_crash, CrashPlan, CrashResolution, Region, SimConfig, SimPmem};
use proptest::prelude::*;
use std::collections::HashMap;

type Table = GroupHash<SimPmem, u64, u64>;

fn fresh(cfg: GroupHashConfig) -> (SimPmem, Table, Region) {
    let size = Table::required_size(&cfg);
    let mut pm = SimPmem::new(size, SimConfig::fast_test());
    let region = Region::new(0, size);
    let t = Table::create(&mut pm, region, cfg).unwrap();
    (pm, t, region)
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u16, u64),
    Remove(u16),
    Get(u16),
}

fn ops_strategy(max_len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            ((0u16..256), any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
            (0u16..256).prop_map(Op::Remove),
            (0u16..256).prop_map(Op::Get),
        ],
        1..max_len,
    )
}

fn all_configs() -> Vec<GroupHashConfig> {
    vec![
        GroupHashConfig::new(128, 16),
        GroupHashConfig::new(128, 16).with_probe(ProbeLayout::Strided),
        GroupHashConfig::new(128, 16).with_commit(CommitStrategy::UndoLog),
        GroupHashConfig::new(128, 16).with_count_mode(CountMode::Volatile),
        GroupHashConfig::new(128, 16).with_choice(ChoiceMode::TwoChoice),
        GroupHashConfig::new(128, 128),
        GroupHashConfig::new(128, 16).with_fp_mode(FpMode::On),
        GroupHashConfig::new(128, 16)
            .with_probe(ProbeLayout::Strided)
            .with_fp_mode(FpMode::On),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Under every configuration, the table behaves like a HashMap oracle
    /// and stays structurally consistent.
    #[test]
    fn oracle_equivalence_all_configs(ops in ops_strategy(200)) {
        for cfg in all_configs() {
            let (mut pm, mut t, _) = fresh(cfg);
            let mut oracle: HashMap<u64, u64> = HashMap::new();
            for op in &ops {
                match *op {
                    Op::Insert(k, v) => {
                        let k = k as u64;
                        if oracle.contains_key(&k) {
                            continue;
                        }
                        if t.insert(&mut pm, k, v).is_ok() {
                            oracle.insert(k, v);
                        }
                    }
                    Op::Remove(k) => {
                        let k = k as u64;
                        prop_assert_eq!(t.remove(&mut pm, &k), oracle.remove(&k).is_some());
                    }
                    Op::Get(k) => {
                        let k = k as u64;
                        prop_assert_eq!(t.get(&pm, &k), oracle.get(&k).copied());
                    }
                }
            }
            prop_assert_eq!(t.len(&pm), oracle.len() as u64, "{:?}", cfg);
            t.check_consistency(&pm)
                .map_err(|e| TestCaseError::fail(format!("{cfg:?}: {e}")))?;
        }
    }

    /// A crash at a random event during a random workload always recovers
    /// to a consistent state containing exactly the committed entries
    /// (modulo the single in-flight operation).
    #[test]
    fn random_crash_recovers(
        ops in ops_strategy(120),
        crash_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let cfg = GroupHashConfig::new(128, 16);
        let (mut pm, mut t, region) = fresh(cfg);

        // First pass: count total events for this workload.
        let mut oracle: HashMap<u64, u64> = HashMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    let k = k as u64;
                    if !oracle.contains_key(&k) && t.insert(&mut pm, k, v).is_ok() {
                        oracle.insert(k, v);
                    }
                }
                Op::Remove(k) => {
                    let k = k as u64;
                    if t.remove(&mut pm, &k) {
                        oracle.remove(&k);
                    }
                }
                Op::Get(_) => {}
            }
        }
        let total_events = pm.events();
        prop_assume!(total_events > 0);
        let crash_at = (total_events as f64 * crash_frac) as u64;

        // Second pass on a fresh pool with the crash armed.
        let (mut pm, mut t, _) = fresh(cfg);
        pm.set_crash_plan(Some(CrashPlan { at_event: crash_at }));
        let mut committed: HashMap<u64, u64> = HashMap::new();
        let crashed = run_with_crash(|| {
            for op in &ops {
                match *op {
                    Op::Insert(k, v) => {
                        let k = k as u64;
                        if !committed.contains_key(&k) && t.insert(&mut pm, k, v).is_ok() {
                            committed.insert(k, v);
                        }
                    }
                    Op::Remove(k) => {
                        let k = k as u64;
                        if t.remove(&mut pm, &k) {
                            committed.remove(&k);
                        }
                    }
                    Op::Get(_) => {}
                }
            }
        })
        .is_err();

        pm.crash(CrashResolution::Random(seed));
        let mut t = Table::open(&mut pm, region).unwrap();
        t.recover(&mut pm);
        t.check_consistency(&pm)
            .map_err(|e| TestCaseError::fail(format!("crash@{crash_at}: {e}")))?;

        if crashed {
            // Recovered contents differ from `committed` by at most the
            // in-flight op; strong check: every recovered key must have
            // been inserted with that value at some point, and the count
            // differs from committed by at most 1.
            let mut recovered = 0u64;
            t.for_each_entry(&pm, |_, _| recovered += 1);
            let committed_n = committed.len() as u64;
            prop_assert!(
                recovered + 1 >= committed_n && recovered <= committed_n + 1,
                "recovered {} vs committed-at-crash {}",
                recovered,
                committed_n
            );
        } else {
            // No crash fired: full equality.
            for (&k, &v) in &committed {
                prop_assert_eq!(t.get(&pm, &k), Some(v));
            }
            prop_assert_eq!(t.len(&pm), committed.len() as u64);
        }
    }

    /// With the fingerprint cache on, a crash at a random event followed by
    /// `open` + `recover` rebuilds the volatile tag cache so that it agrees
    /// exactly with the bitmaps and cells: every occupied cell's tag
    /// matches its key's third-hash byte (free cells are ignored).
    /// `check_consistency` includes `verify_fp_cache`, so this also
    /// re-proves all structural invariants under `FpMode::On`.
    #[test]
    fn fingerprint_cache_rebuilt_after_crash(
        ops in ops_strategy(120),
        crash_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let cfg = GroupHashConfig::new(128, 16).with_fp_mode(FpMode::On);
        let (mut pm, mut t, _) = fresh(cfg);

        // First pass: count total events for this workload (inserts are
        // guarded by an oracle — the raw insert permits duplicates).
        let mut oracle: HashMap<u64, u64> = HashMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    let k = k as u64;
                    if !oracle.contains_key(&k) && t.insert(&mut pm, k, v).is_ok() {
                        oracle.insert(k, v);
                    }
                }
                Op::Remove(k) => {
                    let k = k as u64;
                    if t.remove(&mut pm, &k) {
                        oracle.remove(&k);
                    }
                }
                Op::Get(k) => {
                    t.get(&pm, &(k as u64));
                }
            }
        }
        let total_events = pm.events();
        prop_assume!(total_events > 0);
        let crash_at = (total_events as f64 * crash_frac) as u64;

        // Second pass on a fresh pool with the crash armed.
        let (mut pm, mut t, region) = fresh(cfg);
        pm.set_crash_plan(Some(CrashPlan { at_event: crash_at }));
        let mut committed: HashMap<u64, u64> = HashMap::new();
        let _ = run_with_crash(|| {
            for op in &ops {
                match *op {
                    Op::Insert(k, v) => {
                        let k = k as u64;
                        if !committed.contains_key(&k) && t.insert(&mut pm, k, v).is_ok() {
                            committed.insert(k, v);
                        }
                    }
                    Op::Remove(k) => {
                        let k = k as u64;
                        if t.remove(&mut pm, &k) {
                            committed.remove(&k);
                        }
                    }
                    Op::Get(k) => {
                        t.get(&pm, &(k as u64));
                    }
                }
            }
        });

        pm.crash(CrashResolution::Random(seed));
        let mut t = Table::open(&mut pm, region).unwrap();
        t.recover(&mut pm);
        t.verify_fp_cache(&pm)
            .map_err(|e| TestCaseError::fail(format!("fp cache after crash@{crash_at}: {e}")))?;
        t.check_consistency(&pm)
            .map_err(|e| TestCaseError::fail(format!("crash@{crash_at}: {e}")))?;
    }

    /// Occupancy analysis invariants: group totals sum to `len`, no group
    /// exceeds `2 * group_size`, level-2 use only begins after level-1
    /// collisions exist.
    #[test]
    fn analysis_invariants(keys in prop::collection::hash_set(any::<u64>(), 1..300)) {
        let cfg = GroupHashConfig::new(256, 32);
        let (mut pm, mut t, _) = fresh(cfg);
        let mut inserted = 0u64;
        for &k in &keys {
            if t.insert(&mut pm, k, k).is_ok() {
                inserted += 1;
            }
        }
        let a = TableAnalysis::capture(&t, &pm);
        prop_assert_eq!(a.level1_used + a.level2_used, inserted);
        prop_assert!(a.max_group_fill() <= 64);
        let hist_total: u64 = a
            .fill_histogram()
            .iter()
            .enumerate()
            .map(|(i, &c)| i as u64 * c)
            .sum();
        prop_assert_eq!(hist_total, inserted);
    }

    /// Open-after-quiescence equals the original table for any workload.
    #[test]
    fn reopen_equivalence(ops in ops_strategy(150)) {
        let cfg = GroupHashConfig::new(128, 16);
        let (mut pm, mut t, region) = fresh(cfg);
        let mut oracle: HashMap<u64, u64> = HashMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    let k = k as u64;
                    if !oracle.contains_key(&k) && t.insert(&mut pm, k, v).is_ok() {
                        oracle.insert(k, v);
                    }
                }
                Op::Remove(k) => {
                    let k = k as u64;
                    if t.remove(&mut pm, &k) {
                        oracle.remove(&k);
                    }
                }
                Op::Get(_) => {}
            }
        }
        let _ = t;
        let t2 = Table::open(&mut pm, region).unwrap();
        prop_assert_eq!(t2.len(&pm), oracle.len() as u64);
        for (&k, &v) in &oracle {
            prop_assert_eq!(t2.get(&pm, &k), Some(v));
        }
        t2.check_consistency(&pm).map_err(|e| TestCaseError::fail(e.to_string()))?;
    }
}
