//! Property-based tests for the persistent allocator.

use nvm_alloc::{AllocConfig, AllocError, PmemAlloc, PmemPtr, SizeClass};
use nvm_pmem::{CrashResolution, Region, SimConfig, SimPmem};
use proptest::prelude::*;
use std::collections::HashMap;

fn small_heap() -> (SimPmem, PmemAlloc, Region) {
    let cfg = AllocConfig {
        classes: vec![
            SizeClass {
                slot_size: 32,
                slots: 24,
            },
            SizeClass {
                slot_size: 64,
                slots: 12,
            },
            SizeClass {
                slot_size: 256,
                slots: 6,
            },
        ],
    };
    let size = PmemAlloc::required_size(&cfg);
    let mut pm = SimPmem::new(size, SimConfig::fast_test());
    let region = Region::new(0, size);
    let a = PmemAlloc::create(&mut pm, region, &cfg).unwrap();
    (pm, a, region)
}

#[derive(Debug, Clone)]
enum Op {
    /// Allocate a blob of this size filled with this byte.
    Alloc(usize, u8),
    /// Free the i-th live allocation (mod live count).
    Free(usize),
    /// Read the i-th live allocation and verify.
    Read(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..240, any::<u8>()).prop_map(|(n, b)| Op::Alloc(n, b)),
            any::<usize>().prop_map(Op::Free),
            any::<usize>().prop_map(Op::Read),
        ],
        1..300,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The allocator behaves like an oracle map of live allocations:
    /// reads return exactly what was written, frees make pointers invalid,
    /// capacity errors are the only failures, and accounting matches.
    #[test]
    fn oracle_equivalence(ops in ops()) {
        let (mut pm, mut heap, _) = small_heap();
        let mut live: Vec<(PmemPtr, Vec<u8>)> = Vec::new();
        let mut freed: Vec<PmemPtr> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc(n, b) => {
                    let blob = vec![b; n];
                    match heap.alloc(&mut pm, &blob) {
                        Ok(p) => {
                            // A fresh pointer never aliases a live one.
                            prop_assert!(live.iter().all(|(q, _)| *q != p));
                            freed.retain(|q| *q != p); // slot reuse is fine
                            live.push((p, blob));
                        }
                        Err(AllocError::OutOfMemory) => {}
                        Err(e) => prop_assert!(false, "unexpected {e}"),
                    }
                }
                Op::Free(i) => {
                    if live.is_empty() {
                        continue;
                    }
                    let (p, _) = live.remove(i % live.len());
                    heap.free(&mut pm, p).unwrap();
                    freed.push(p);
                }
                Op::Read(i) => {
                    if live.is_empty() {
                        continue;
                    }
                    let (p, blob) = &live[i % live.len()];
                    prop_assert_eq!(&heap.read(&pm, *p).unwrap(), blob);
                }
            }
        }

        // Accounting and end-state checks.
        prop_assert_eq!(heap.allocated(&pm), live.len() as u64);
        for (p, blob) in &live {
            prop_assert_eq!(&heap.read(&pm, *p).unwrap(), blob);
        }
        for p in &freed {
            prop_assert!(heap.read(&pm, *p).is_err(), "freed ptr readable");
        }
    }

    /// Crash + reopen: live blobs (all individually committed) survive
    /// any crash resolution verbatim.
    #[test]
    fn committed_blobs_survive_crashes(
        blobs in prop::collection::vec((1usize..200, any::<u8>()), 1..12),
        seed in any::<u64>(),
    ) {
        let (mut pm, mut heap, region) = small_heap();
        let mut stored: HashMap<PmemPtr, Vec<u8>> = HashMap::new();
        for (n, b) in blobs {
            let blob = vec![b; n];
            if let Ok(p) = heap.alloc(&mut pm, &blob) {
                stored.insert(p, blob);
            }
        }
        pm.crash(CrashResolution::Random(seed));
        let heap = PmemAlloc::open(&pm, region).unwrap();
        prop_assert_eq!(heap.allocated(&pm), stored.len() as u64);
        for (p, blob) in &stored {
            prop_assert_eq!(&heap.read(&pm, *p).unwrap(), blob);
        }
    }
}
