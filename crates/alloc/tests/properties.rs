//! Property-based tests for the layered value heap.
//!
//! Two groups: pure properties of the size-class/layout layer (no pmem
//! at all — rounding is minimal, monotone and growth-bounded; freelist
//! geometry round-trips), and whole-heap properties against an oracle
//! map plus crash/reopen survival.

use nvm_alloc::{
    AllocError, ClassSpec, ClassTable, HeapConfig, PmemHeap, PmemPtr, SlabGeometry, LEN_PREFIX,
};
use nvm_pmem::{CrashResolution, Region, SimConfig, SimPmem};
use proptest::prelude::*;
use std::collections::HashMap;

// ---- pure size-class layer -----------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any valid geometric table and any blob size in range, the
    /// chosen class fits, is the *smallest* class that fits, and the
    /// mapping is monotone in the blob size.
    #[test]
    fn rounding_is_minimal_and_monotone(
        base in 16u64..512,
        max_blob in 64u64..8192,
        lens in prop::collection::vec(0usize..8192, 1..64),
    ) {
        let t = ClassTable::geometric(base, (5, 4), max_blob).unwrap();
        let mut sorted = lens.clone();
        sorted.sort_unstable();
        let mut prev_class = 0;
        for len in sorted {
            if len > t.largest_blob() {
                prop_assert_eq!(t.class_for(len), Err(AllocError::TooLarge(len)));
                continue;
            }
            let ci = t.class_for(len).unwrap();
            prop_assert!(t.get(ci).max_blob() >= len, "chosen class must fit");
            if ci > 0 {
                prop_assert!(t.get(ci - 1).max_blob() < len, "class must be minimal");
            }
            prop_assert!(ci >= prev_class, "rounding must be monotone");
            prev_class = ci;
        }
    }

    /// Geometric growth stays within the 1.25 bound (modulo rounding up
    /// to 8): each slot size is at most ceil(prev * 5/4) rounded to 8.
    #[test]
    fn growth_is_bounded_by_factor(base in 16u64..512, max_blob in 64u64..8192) {
        let t = ClassTable::geometric(base, (5, 4), max_blob).unwrap();
        let sizes: Vec<u64> = t.iter().map(|c| c.slot_size).collect();
        for w in sizes.windows(2) {
            let bound = (w[0] * 5).div_ceil(4).div_ceil(8) * 8;
            prop_assert!(
                w[1] <= bound,
                "class step {} -> {} exceeds 1.25 growth bound {}",
                w[0], w[1], bound
            );
        }
    }

    /// Slot offsets and slot indices are inverse maps; non-slot-start
    /// offsets never resolve.
    #[test]
    fn slab_geometry_round_trips(
        slot_size in (2u64..512).prop_map(|n| n * 8),
        slots in 1u64..512,
        probe in any::<u64>(),
    ) {
        let g = SlabGeometry { slot_size, slots };
        for i in [0, slots / 2, slots - 1] {
            prop_assert_eq!(g.slot_of(g.slot_off(i)), Some(i));
        }
        let rel = probe % (slot_size * slots);
        match g.slot_of(rel) {
            Some(i) => prop_assert_eq!(g.slot_off(i), rel),
            None => prop_assert!(rel % slot_size != 0),
        }
        prop_assert_eq!(g.slot_of(slot_size * slots), None);
        prop_assert_eq!(g.bitmap_bytes() as u64, slots.div_ceil(64) * 8);
    }

    /// `balanced` always yields a valid config whose classes can hold
    /// every blob up to the largest class.
    #[test]
    fn balanced_configs_validate(budget in 4096u64..(1 << 22)) {
        let cfg = HeapConfig::balanced(budget);
        cfg.validate().unwrap();
        let t = cfg.class_table().unwrap();
        prop_assert!(t.largest_blob() >= 4096 - LEN_PREFIX);
    }
}

// ---- whole-heap properties -----------------------------------------------

fn small_heap() -> (SimPmem, PmemHeap, Region) {
    let cfg = HeapConfig {
        classes: vec![
            ClassSpec {
                slot_size: 32,
                slots_per_slab: 12,
            },
            ClassSpec {
                slot_size: 64,
                slots_per_slab: 6,
            },
            ClassSpec {
                slot_size: 256,
                slots_per_slab: 3,
            },
        ],
        slabs_per_class: 2,
    };
    let size = PmemHeap::required_size(&cfg);
    let mut pm = SimPmem::new(size, SimConfig::fast_test());
    let region = Region::new(0, size);
    let h = PmemHeap::create(&mut pm, region, &cfg).unwrap();
    (pm, h, region)
}

#[derive(Debug, Clone)]
enum Op {
    /// Allocate a blob of this size filled with this byte.
    Alloc(usize, u8),
    /// Free the i-th live allocation (mod live count).
    Free(usize),
    /// Read the i-th live allocation and verify.
    Read(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..240, any::<u8>()).prop_map(|(n, b)| Op::Alloc(n, b)),
            any::<usize>().prop_map(Op::Free),
            any::<usize>().prop_map(Op::Read),
        ],
        1..300,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The heap behaves like an oracle map of live allocations:
    /// reads return exactly what was written, frees make pointers invalid,
    /// capacity errors are the only failures, and accounting matches.
    #[test]
    fn oracle_equivalence(ops in ops()) {
        let (mut pm, mut heap, _) = small_heap();
        let mut live: Vec<(PmemPtr, Vec<u8>)> = Vec::new();
        let mut freed: Vec<PmemPtr> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc(n, b) => {
                    let blob = vec![b; n];
                    match heap.alloc(&mut pm, &blob) {
                        Ok(p) => {
                            // A fresh pointer never aliases a live one.
                            prop_assert!(live.iter().all(|(q, _)| *q != p));
                            freed.retain(|q| *q != p); // slot reuse is fine
                            live.push((p, blob));
                        }
                        Err(AllocError::OutOfMemory) => {}
                        Err(e) => prop_assert!(false, "unexpected {e}"),
                    }
                }
                Op::Free(i) => {
                    if live.is_empty() {
                        continue;
                    }
                    let (p, _) = live.remove(i % live.len());
                    heap.free(&mut pm, p).unwrap();
                    freed.push(p);
                }
                Op::Read(i) => {
                    if live.is_empty() {
                        continue;
                    }
                    let (p, blob) = &live[i % live.len()];
                    prop_assert_eq!(&heap.read(&pm, *p).unwrap(), blob);
                }
            }
        }

        // Accounting and end-state checks.
        prop_assert_eq!(heap.allocated(&pm), live.len() as u64);
        for (p, blob) in &live {
            prop_assert_eq!(&heap.read(&pm, *p).unwrap(), blob);
        }
        for p in &freed {
            prop_assert!(heap.read(&pm, *p).is_err(), "freed ptr readable");
        }
    }

    /// Crash + reopen: live blobs (all individually committed) survive
    /// any crash resolution verbatim.
    #[test]
    fn committed_blobs_survive_crashes(
        blobs in prop::collection::vec((1usize..200, any::<u8>()), 1..12),
        seed in any::<u64>(),
    ) {
        let (mut pm, mut heap, region) = small_heap();
        let mut stored: HashMap<PmemPtr, Vec<u8>> = HashMap::new();
        for (n, b) in blobs {
            let blob = vec![b; n];
            if let Ok(p) = heap.alloc(&mut pm, &blob) {
                stored.insert(p, blob);
            }
        }
        pm.crash(CrashResolution::Random(seed));
        let heap = PmemHeap::open(&pm, region).unwrap();
        prop_assert_eq!(heap.allocated(&pm), stored.len() as u64);
        for (p, blob) in &stored {
            prop_assert_eq!(&heap.read(&pm, *p).unwrap(), blob);
        }
    }
}
