//! Typed failures for every heap layer.
//!
//! One enum serves all three layers (class table, slab store, policy):
//! geometry validation, capacity, and pointer errors are each a variant —
//! no stringly-typed `Result`s anywhere in the crate (enforced by the
//! `ci.sh` error-type lint).

use crate::PmemPtr;

/// Allocation and geometry errors. Every failure mode is a typed
/// variant — no stringly-typed `Result`s (enforced by the `ci.sh` lint).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// No size class fits a blob this large.
    TooLarge(usize),
    /// Every eligible slab of the fitting size class is out of slots.
    OutOfMemory,
    /// The pointer does not name an allocated slot.
    BadPointer(PmemPtr),
    /// A config declared zero or more than [`crate::MAX_CLASSES`] size
    /// classes.
    BadClassCount(usize),
    /// A class's slot size is not a multiple of 8 or leaves no blob room.
    BadSlotSize {
        /// Index of the offending class.
        class: usize,
        /// Its declared slot size.
        slot_size: u64,
    },
    /// A class declared zero slots per slab.
    ZeroSlots {
        /// Index of the offending class.
        class: usize,
    },
    /// Class slot sizes are not strictly ascending.
    NonAscendingClasses {
        /// Index of the first out-of-order class.
        class: usize,
    },
    /// The config declared zero or more than [`crate::MAX_SLABS_PER_CLASS`]
    /// slabs per class.
    BadSlabCount(u64),
    /// A geometric class table was asked for with a non-growing factor
    /// (growth must be > 1) or a base too small to hold any blob.
    BadGrowth {
        /// Numerator of the offending growth factor.
        num: u64,
        /// Denominator of the offending growth factor.
        den: u64,
    },
    /// The region cannot hold the configured (or persisted) geometry.
    RegionTooSmall {
        /// Bytes the region offers.
        have: usize,
        /// Bytes the geometry needs.
        need: usize,
    },
    /// `open` found no valid heap header (static description).
    BadHeader(&'static str),
    /// `open` read a class count outside `1..=MAX_CLASSES`.
    CorruptClassCount(u64),
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::TooLarge(n) => write!(f, "blob of {n} bytes exceeds every size class"),
            AllocError::OutOfMemory => write!(f, "size class exhausted"),
            AllocError::BadPointer(p) => write!(f, "invalid persistent pointer {:#x}", p.0),
            AllocError::BadClassCount(n) => {
                write!(f, "need 1..={} size classes, got {n}", crate::MAX_CLASSES)
            }
            AllocError::BadSlotSize { class, slot_size } => {
                write!(f, "class {class}: bad slot size {slot_size}")
            }
            AllocError::ZeroSlots { class } => write!(f, "class {class}: zero slots"),
            AllocError::NonAscendingClasses { class } => {
                write!(f, "class {class}: slot sizes must be ascending")
            }
            AllocError::BadSlabCount(n) => {
                write!(
                    f,
                    "need 1..={} slabs per class, got {n}",
                    crate::MAX_SLABS_PER_CLASS
                )
            }
            AllocError::BadGrowth { num, den } => {
                write!(f, "class growth factor {num}/{den} must be > 1")
            }
            AllocError::RegionTooSmall { have, need } => {
                write!(f, "region too small: {have} < {need}")
            }
            AllocError::BadHeader(msg) => f.write_str(msg),
            AllocError::CorruptClassCount(n) => write!(f, "corrupt class count {n}"),
        }
    }
}

impl std::error::Error for AllocError {}
