//! The heap policy layer: wear-aware placement and crash-resumable GC.
//!
//! [`PmemHeap`] owns a [`SlabStore`] plus a persisted header and decides
//! *where* allocations land:
//!
//! * **Wear-aware rotation** ([`RotationPolicy::WearAware`], the
//!   default): each size class owns several slabs, and allocation steers
//!   to the least-written eligible slab using per-slab write counters.
//!   Hot small-value churn therefore spreads across a class's slabs
//!   instead of grinding one region of the media — the same wear axis
//!   `results/wear.csv` instruments for the index.
//!   [`RotationPolicy::FirstFit`] is the no-rotation baseline the `heap`
//!   experiment compares against.
//! * **GC/compaction drainer** ([`PmemHeap::gc_step`]): a bounded,
//!   crash-resumable sweep modeled on the table's `migrate_step`. A
//!   persisted cursor walks the flat slot space; each allocated slot is
//!   checked against the *owner* (the structure holding pointers into
//!   the heap, e.g. `PmemKv`'s index) via [`GcOwner::is_live`]. Dead
//!   slots — leaked by a crash mid-batch or orphaned by an overwrite —
//!   are freed; live slots in sparse slabs are compacted by
//!   copy-then-[`GcOwner::repoint`]-then-free, so at any crash point at
//!   most **one** duplicate blob exists and the owner's pointer always
//!   names an allocated slot. Re-running a partially-persisted cursor
//!   range is harmless: `is_live`/`repoint` are idempotent checks.
//!
//! The write counters are volatile hints (reset on re-open); all
//! *correctness* state — occupancy bitmaps, GC cursor, GC active flag —
//! is persistent and committed with single 8-byte atomic stores, per the
//! paper's consistency discipline.

use crate::classes::{ClassSpec, ClassTable, HeapConfig, MAX_CLASSES, MAX_SLABS_PER_CLASS};
use crate::slab::SlabStore;
use crate::{AllocError, PmemPtr};
use nvm_pmem::{align_up, Pmem, PmemRead, Region, RegionAllocator, CACHELINE};

/// Magic word identifying a heap header ("NVHEAP01").
const MAGIC: u64 = 0x4E56_4845_4150_3031;

/// Header offsets relative to the header region: magic, class count,
/// slabs per class, GC cursor, GC active flag, then per-class
/// (slot_size, slots_per_slab) pairs.
const H_MAGIC: usize = 0;
const H_NCLASSES: usize = 8;
const H_SLABS: usize = 16;
const H_GC_CURSOR: usize = 24;
const H_GC_ACTIVE: usize = 32;
const H_CLASSES: usize = 40;

/// How the heap picks a slab within a size class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RotationPolicy {
    /// Steer to the least-written eligible slab (wear leveling).
    #[default]
    WearAware,
    /// Always try slabs in index order — the no-rotation baseline.
    FirstFit,
}

/// Volatile heap counters (see `HeapCounters` in nvm-metrics for the
/// instrumented mirror).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Completed allocations.
    pub allocs: u64,
    /// Completed frees (including GC-initiated ones).
    pub frees: u64,
    /// Blobs relocated by the GC compactor.
    pub gc_moves: u64,
    /// Dead/leaked blobs reclaimed by the GC sweep.
    pub leaked_reclaimed: u64,
}

/// Fragmentation accounting from [`PmemHeap::frag_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FragStats {
    /// Bytes of live blob payload (length prefixes excluded).
    pub live_blob_bytes: u64,
    /// Bytes of slots currently allocated (slot widths, not payloads).
    pub allocated_slot_bytes: u64,
    /// Total slot bytes the heap owns.
    pub total_slot_bytes: u64,
}

/// The heap's view of the structure that owns pointers into it, consulted
/// by the GC drainer. Both calls must be idempotent — the drainer may
/// revisit a slot after a crash rolled its cursor back.
pub trait GcOwner<P: Pmem> {
    /// Whether the owner still references the blob at `ptr` (whose bytes
    /// are `blob`). Unreferenced blobs are reclaimed.
    fn is_live(&mut self, pm: &P, ptr: PmemPtr, blob: &[u8]) -> bool;

    /// Atomically retarget the owner's reference from `old` to `new`
    /// (both allocated, same bytes). Return `false` to decline — e.g. the
    /// reference changed since [`GcOwner::is_live`] — in which case the
    /// drainer frees `new` and leaves `old` in place.
    fn repoint(&mut self, pm: &mut P, old: PmemPtr, new: PmemPtr, blob: &[u8]) -> bool;
}

/// The value heap: slab store + placement policy + GC, behind one
/// persisted header.
#[derive(Debug, Clone)]
pub struct PmemHeap {
    store: SlabStore,
    table: ClassTable,
    region: Region,
    header: Region,
    rotation: RotationPolicy,
    /// Per-slab rotating allocation cursors (volatile hints).
    cursors: Vec<u64>,
    /// Per-slab write counters: slot writes from allocs + GC copy-ins
    /// (volatile hints driving wear-aware rotation).
    writes: Vec<u64>,
    stats: HeapStats,
}

impl PmemHeap {
    fn header_len(n_classes: usize) -> usize {
        H_CLASSES + n_classes * 16
    }

    /// Pool bytes needed for `config`.
    pub fn required_size(config: &HeapConfig) -> usize {
        align_up(Self::header_len(config.classes.len()), 8)
            + CACHELINE
            + SlabStore::required_size(config)
    }

    fn layout(region: Region, config: &HeapConfig) -> (Region, RegionAllocator) {
        let mut ra = RegionAllocator::new(region.off, region.end());
        let header = ra.alloc_lines(align_up(Self::header_len(config.classes.len()), 8));
        (header, ra)
    }

    fn assemble(region: Region, config: &HeapConfig, store: SlabStore, header: Region) -> Self {
        let table = config.class_table().expect("validated config");
        let n = store.n_slabs();
        PmemHeap {
            store,
            table,
            region,
            header,
            rotation: RotationPolicy::default(),
            cursors: vec![0; n],
            writes: vec![0; n],
            stats: HeapStats::default(),
        }
    }

    /// Creates a fresh heap in `region`.
    pub fn create<P: Pmem>(
        pm: &mut P,
        region: Region,
        config: &HeapConfig,
    ) -> Result<Self, AllocError> {
        config.validate()?;
        let need = Self::required_size(config);
        if region.len < need {
            return Err(AllocError::RegionTooSmall {
                have: region.len,
                need,
            });
        }
        let (header, mut ra) = Self::layout(region, config);
        let store = SlabStore::create(pm, &mut ra, config);
        // Header: geometry and GC state first, magic last (a header is
        // valid only once fully initialized).
        pm.write_u64(header.off + H_NCLASSES, config.classes.len() as u64);
        pm.write_u64(header.off + H_SLABS, config.slabs_per_class);
        pm.write_u64(header.off + H_GC_CURSOR, 0);
        pm.write_u64(header.off + H_GC_ACTIVE, 0);
        for (i, c) in config.classes.iter().enumerate() {
            pm.write_u64(header.off + H_CLASSES + i * 16, c.slot_size);
            pm.write_u64(header.off + H_CLASSES + i * 16 + 8, c.slots_per_slab);
        }
        pm.persist(header.off, Self::header_len(config.classes.len()));
        pm.atomic_write_u64(header.off + H_MAGIC, MAGIC);
        pm.persist(header.off + H_MAGIC, 8);
        Ok(Self::assemble(region, config, store, header))
    }

    /// Re-opens a heap previously created in `region`, reading its
    /// geometry back from the persisted header. Read-only: any
    /// [`PmemRead`] handle suffices. An interrupted GC pass is *not*
    /// resumed here — check [`PmemHeap::gc_pending`] and drive
    /// [`PmemHeap::gc_step`] to finish it.
    pub fn open<R: PmemRead>(pm: &R, region: Region) -> Result<Self, AllocError> {
        let header_off = align_up(region.off, CACHELINE);
        if !region.contains(header_off, H_CLASSES) {
            return Err(AllocError::BadHeader("region too small for a heap header"));
        }
        if pm.read_u64(header_off + H_MAGIC) != MAGIC {
            return Err(AllocError::BadHeader("heap magic mismatch"));
        }
        let n = pm.read_u64(header_off + H_NCLASSES);
        if n == 0 || n > MAX_CLASSES as u64 {
            return Err(AllocError::CorruptClassCount(n));
        }
        let slabs_per_class = pm.read_u64(header_off + H_SLABS);
        if slabs_per_class == 0 || slabs_per_class > MAX_SLABS_PER_CLASS {
            return Err(AllocError::BadSlabCount(slabs_per_class));
        }
        let classes = (0..n as usize)
            .map(|i| ClassSpec {
                slot_size: pm.read_u64(header_off + H_CLASSES + i * 16),
                slots_per_slab: pm.read_u64(header_off + H_CLASSES + i * 16 + 8),
            })
            .collect::<Vec<_>>();
        let config = HeapConfig {
            classes,
            slabs_per_class,
        };
        config.validate()?;
        let need = Self::required_size(&config);
        if region.len < need {
            return Err(AllocError::RegionTooSmall {
                have: region.len,
                need,
            });
        }
        let (header, mut ra) = Self::layout(region, &config);
        let store = SlabStore::attach(&mut ra, &config);
        Ok(Self::assemble(region, &config, store, header))
    }

    /// Switches the slab-selection policy (volatile; takes effect on the
    /// next allocation).
    pub fn set_rotation(&mut self, policy: RotationPolicy) {
        self.rotation = policy;
    }

    /// Allocates and stores `blob`, returning its persistent pointer.
    /// The blob is durable and committed when this returns; placement
    /// follows the configured [`RotationPolicy`].
    pub fn alloc<P: Pmem>(&mut self, pm: &mut P, blob: &[u8]) -> Result<PmemPtr, AllocError> {
        let ci = self.table.class_for(blob.len())?;
        let range = self.store.class_slabs(ci);
        let mut order: Vec<usize> = range.collect();
        if self.rotation == RotationPolicy::WearAware {
            order.sort_by_key(|&s| self.writes[s]);
        }
        for s in order {
            match self.store.alloc_in(pm, s, blob, self.cursors[s]) {
                Ok((ptr, slot)) => {
                    self.cursors[s] = slot + 1;
                    self.writes[s] += 1;
                    self.stats.allocs += 1;
                    return Ok(ptr);
                }
                Err(AllocError::OutOfMemory) => continue,
                Err(e) => return Err(e),
            }
        }
        Err(AllocError::OutOfMemory)
    }

    /// Allocates and stores every blob in `blobs` with **fence-coalesced
    /// commits**: all blob bytes are written and flushed first (no
    /// fences), one fence orders them, every occupancy bit is set
    /// atomically with its word flushed, and one closing fence commits —
    /// K allocations for 2 fences instead of the 2K that K
    /// [`PmemHeap::alloc`] calls would spend. Placement follows the same
    /// [`RotationPolicy`] as single allocations, with slots already
    /// staged by this batch vetoed in DRAM (their bits are still clear).
    ///
    /// Returns one pointer per blob, in input order. On error (a blob too
    /// large for every class, or the heap out of space) **nothing is
    /// committed**: no bit was set, so every staged byte is unreachable
    /// and the heap is unchanged.
    ///
    /// Crash ordering matches the single-alloc path: a crash anywhere
    /// leaves an arbitrary subset of the batch allocated, each committed
    /// slot intact, each uncommitted slot free.
    pub fn alloc_batch<P: Pmem>(
        &mut self,
        pm: &mut P,
        blobs: &[&[u8]],
    ) -> Result<Vec<PmemPtr>, AllocError> {
        if blobs.is_empty() {
            return Ok(Vec::new());
        }
        let mut staged: Vec<(usize, u64)> = Vec::with_capacity(blobs.len());
        let mut staged_set: std::collections::HashSet<(usize, u64)> =
            std::collections::HashSet::with_capacity(blobs.len());
        let mut ptrs = Vec::with_capacity(blobs.len());
        // Remember the cursor/wear hints so a failed batch rolls the
        // volatile policy state back along with it.
        let saved_cursors = self.cursors.clone();
        let saved_writes = self.writes.clone();
        for blob in blobs {
            let ci = match self.table.class_for(blob.len()) {
                Ok(ci) => ci,
                Err(e) => {
                    self.cursors = saved_cursors;
                    self.writes = saved_writes;
                    return Err(e);
                }
            };
            let range = self.store.class_slabs(ci);
            let mut order: Vec<usize> = range.collect();
            if self.rotation == RotationPolicy::WearAware {
                order.sort_by_key(|&s| self.writes[s]);
            }
            let mut placed = false;
            for s in order {
                let slot = self.store.find_free_skipping(pm, s, self.cursors[s], |slot| {
                    staged_set.contains(&(s, slot))
                });
                if let Some(slot) = slot {
                    ptrs.push(self.store.stage_write(pm, s, slot, blob));
                    staged_set.insert((s, slot));
                    staged.push((s, slot));
                    self.cursors[s] = slot + 1;
                    self.writes[s] += 1;
                    placed = true;
                    break;
                }
            }
            if !placed {
                // No bit committed yet — the staged bytes are unreachable
                // and the heap is observably unchanged.
                self.cursors = saved_cursors;
                self.writes = saved_writes;
                return Err(AllocError::OutOfMemory);
            }
        }
        self.store.publish_staged(pm, &staged);
        self.stats.allocs += blobs.len() as u64;
        Ok(ptrs)
    }

    /// Frees the blob at `ptr` (atomic bitmap clear — the commit point).
    pub fn free<P: Pmem>(&mut self, pm: &mut P, ptr: PmemPtr) -> Result<(), AllocError> {
        let (s, slot) = self.store.free(pm, ptr)?;
        self.cursors[s] = slot; // freed slot becomes the next candidate
        self.stats.frees += 1;
        Ok(())
    }

    /// Reads the blob at `ptr`.
    pub fn read<R: PmemRead>(&self, pm: &R, ptr: PmemPtr) -> Result<Vec<u8>, AllocError> {
        self.store.read(pm, ptr)
    }

    /// True if `ptr` names a currently-allocated slot.
    pub fn is_allocated<R: PmemRead>(&self, pm: &R, ptr: PmemPtr) -> bool {
        self.store.is_allocated(pm, ptr)
    }

    /// Visits every allocated slot (for mark-and-sweep by owners).
    pub fn for_each_allocated<R: PmemRead>(&self, pm: &R, f: impl FnMut(PmemPtr)) {
        self.store.for_each_allocated(pm, f)
    }

    /// (allocated slots, total slots) per class.
    pub fn class_usage<R: PmemRead>(&self, pm: &R) -> Vec<(u64, u64)> {
        (0..self.table.len())
            .map(|ci| {
                let mut live = 0;
                let mut total = 0;
                for s in self.store.class_slabs(ci) {
                    live += self.store.live_slots(pm, s);
                    total += self.store.slab(s).geom.slots;
                }
                (live, total)
            })
            .collect()
    }

    /// Total allocated slots.
    pub fn allocated<R: PmemRead>(&self, pm: &R) -> u64 {
        self.class_usage(pm).iter().map(|&(a, _)| a).sum()
    }

    /// Live-payload vs slot-byte accounting for fragmentation reporting.
    pub fn frag_stats<R: PmemRead>(&self, pm: &R) -> FragStats {
        let mut f = FragStats::default();
        for s in 0..self.store.n_slabs() {
            let slab = self.store.slab(s);
            f.total_slot_bytes += slab.geom.slot_size * slab.geom.slots;
            let live = self.store.live_slots(pm, s);
            f.allocated_slot_bytes += live * slab.geom.slot_size;
        }
        self.store.for_each_allocated(pm, |p| {
            f.live_blob_bytes += pm.read_u64(p.0 as usize);
        });
        f
    }

    /// The heap's volatile counters.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Per-slab write counters (slot writes from allocs + GC copy-ins;
    /// volatile, reset on re-open).
    pub fn slab_writes(&self) -> &[u64] {
        &self.writes
    }

    /// The slab store's slot regions, per slab (for per-range media wear
    /// reporting against a simulator).
    pub fn slab_regions(&self) -> Vec<Region> {
        (0..self.store.n_slabs())
            .map(|s| self.store.slab(s).slots_region())
            .collect()
    }

    /// The heap's pool region.
    pub fn region(&self) -> Region {
        self.region
    }

    /// A read-only view over the heap's slots, safe to clone into reader
    /// threads (pure geometry — occupancy is always read from pmem).
    pub fn read_view(&self) -> HeapReadView {
        HeapReadView {
            store: self.store.clone(),
        }
    }

    // ---- GC/compaction drainer ------------------------------------------

    /// Whether a GC pass is in flight (persisted; survives crashes).
    pub fn gc_pending<R: PmemRead>(&self, pm: &R) -> bool {
        pm.read_u64(self.header.off + H_GC_ACTIVE) != 0
    }

    /// Runs one bounded GC increment: scans up to `max_slots` slots from
    /// the persisted cursor, reclaiming blobs the `owner` no longer
    /// references and compacting sparse slabs (copy → `repoint` → free,
    /// at most one duplicate at any crash point). Returns `true` while
    /// the pass is incomplete — keep calling; `false` ends the pass.
    ///
    /// The cursor is persisted once per call, *after* the batch: a crash
    /// mid-batch re-scans those slots on resume, which is safe because
    /// [`GcOwner`] calls are idempotent.
    pub fn gc_step<P: Pmem>(
        &mut self,
        pm: &mut P,
        max_slots: u64,
        owner: &mut impl GcOwner<P>,
    ) -> Result<bool, AllocError> {
        let cursor_off = self.header.off + H_GC_CURSOR;
        let active_off = self.header.off + H_GC_ACTIVE;
        if !self.gc_pending(pm) {
            // Start a pass: cursor first, then the active flag — if we
            // crash in between, the flag stays clear and the next start
            // rewinds the cursor again.
            pm.atomic_write_u64(cursor_off, 0);
            pm.persist(cursor_off, 8);
            pm.atomic_write_u64(active_off, 1);
            pm.persist(active_off, 8);
        }
        let total = self.store.total_slots();
        let mut cur = pm.read_u64(cursor_off);
        let end = cur.saturating_add(max_slots.max(1)).min(total);
        while cur < end {
            if let Some((s, slot)) = self.store.locate_flat(cur) {
                if self.store.slot_allocated(pm, s, slot) {
                    let ptr = PmemPtr(self.store.slab(s).slot_off(slot));
                    let blob = self.store.read(pm, ptr)?;
                    if !owner.is_live(pm, ptr, &blob) {
                        // Leaked by a crash or orphaned by an overwrite.
                        self.store.free(pm, ptr)?;
                        self.stats.frees += 1;
                        self.stats.leaked_reclaimed += 1;
                    } else if self.slab_is_sparse(pm, s) {
                        self.compact_one(pm, s, ptr, &blob, owner)?;
                    }
                }
            }
            cur += 1;
        }
        pm.atomic_write_u64(cursor_off, cur);
        pm.persist(cursor_off, 8);
        if cur >= total {
            pm.atomic_write_u64(active_off, 0);
            pm.persist(active_off, 8);
            return Ok(false);
        }
        Ok(true)
    }

    /// A slab is compaction-worthy when ≤ ¼ full (and big enough for the
    /// ratio to mean anything).
    fn slab_is_sparse<R: PmemRead>(&self, pm: &R, s: usize) -> bool {
        let slots = self.store.slab(s).geom.slots;
        slots >= 4 && self.store.live_slots(pm, s) * 4 <= slots
    }

    /// Moves one live blob out of sparse slab `s`: copy into the densest
    /// non-full sibling slab, retarget the owner, free the original.
    /// Skips (without error) when no sibling has room or the owner
    /// declines the repoint.
    fn compact_one<P: Pmem>(
        &mut self,
        pm: &mut P,
        s: usize,
        old: PmemPtr,
        blob: &[u8],
        owner: &mut impl GcOwner<P>,
    ) -> Result<(), AllocError> {
        let ci = self.store.slab(s).class_idx;
        let dest = self
            .store
            .class_slabs(ci)
            .filter(|&t| t != s)
            .map(|t| (t, self.store.live_slots(pm, t)))
            .filter(|&(t, live)| live < self.store.slab(t).geom.slots)
            .max_by_key(|&(_, live)| live);
        let Some((dest, dest_live)) = dest else {
            return Ok(()); // every sibling is full
        };
        if dest_live <= self.store.live_slots(pm, s) {
            return Ok(()); // we're already the densest option
        }
        let (new, slot) = match self.store.alloc_in(pm, dest, blob, self.cursors[dest]) {
            Ok(ok) => ok,
            Err(AllocError::OutOfMemory) => return Ok(()),
            Err(e) => return Err(e),
        };
        self.cursors[dest] = slot + 1;
        self.writes[dest] += 1;
        // Crash window: both copies allocated, owner still at `old` — the
        // next pass sees `new` as dead and reclaims it. ≤ 1 duplicate.
        if owner.repoint(pm, old, new, blob) {
            self.store.free(pm, old)?;
            self.stats.frees += 1;
            self.stats.gc_moves += 1;
        } else {
            self.store.free(pm, new)?;
        }
        Ok(())
    }

    /// Runs GC passes to completion: finishes any interrupted pass, then
    /// one full fresh pass. Returns the number of blobs reclaimed as
    /// leaked/dead.
    pub fn gc_full<P: Pmem>(
        &mut self,
        pm: &mut P,
        owner: &mut impl GcOwner<P>,
    ) -> Result<u64, AllocError> {
        let before = self.stats.leaked_reclaimed;
        if self.gc_pending(pm) {
            while self.gc_step(pm, 1024, owner)? {}
        }
        while self.gc_step(pm, 1024, owner)? {}
        Ok(self.stats.leaked_reclaimed - before)
    }
}

/// A read-only heap view for reader threads: resolves and reads blobs
/// through any [`PmemRead`] handle, never writes.
#[derive(Debug, Clone)]
pub struct HeapReadView {
    store: SlabStore,
}

impl HeapReadView {
    /// Reads the blob at `ptr`.
    pub fn read<R: PmemRead>(&self, pm: &R, ptr: PmemPtr) -> Result<Vec<u8>, AllocError> {
        self.store.read(pm, ptr)
    }

    /// True if `ptr` names a currently-allocated slot.
    pub fn is_allocated<R: PmemRead>(&self, pm: &R, ptr: PmemPtr) -> bool {
        self.store.is_allocated(pm, ptr)
    }
}
