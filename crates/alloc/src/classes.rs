//! The pure size-class and slab-layout layer.
//!
//! Everything in this module is arithmetic: class tables, blob-to-class
//! rounding, and per-slab freelist geometry. Nothing here touches
//! persistent memory (the `ci.sh` layering lint fails the build if
//! `nvm_pmem` is ever named in this file), which makes the layer
//! unit-testable exactly like the table crate's `probe::*` plans — and
//! proptestable: rounding is minimal and monotone, geometry round-trips.
//!
//! The default class table follows memcached's slab design: a small base
//! slot grown by a fixed factor (80 bytes × 1.25) until the largest
//! class covers the biggest supported blob. Offsets produced here are
//! *slab-relative*; the slab store (one layer down the stack) anchors
//! them in a pool region.

use crate::AllocError;

/// Per-slot length-prefix bytes (`[len u64-LE | blob]`).
pub const LEN_PREFIX: usize = 8;

/// Maximum size classes a heap may declare.
pub const MAX_CLASSES: usize = 32;

/// Maximum slabs per size class.
pub const MAX_SLABS_PER_CLASS: u64 = 64;

/// Memcached's base slot size (bytes) for the default geometric table.
pub const DEFAULT_BASE: u64 = 80;

/// Memcached's growth factor, as an integer ratio (1.25 = 5/4).
pub const DEFAULT_GROWTH: (u64, u64) = (5, 4);

/// One size class: a fixed slot width in bytes, including the 8-byte
/// length prefix. Always a multiple of 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeClass {
    /// Slot width in bytes, including the length prefix. Must be a
    /// multiple of 8 and strictly larger than [`LEN_PREFIX`].
    pub slot_size: u64,
}

impl SizeClass {
    /// Largest blob this class stores.
    pub fn max_blob(&self) -> usize {
        self.slot_size as usize - LEN_PREFIX
    }
}

/// An ascending table of size classes with minimal-fit rounding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassTable {
    classes: Vec<SizeClass>,
}

impl ClassTable {
    /// Builds a table from explicit slot sizes (each a multiple of 8,
    /// strictly ascending, `> LEN_PREFIX`).
    pub fn new(slot_sizes: &[u64]) -> Result<ClassTable, AllocError> {
        let t = ClassTable {
            classes: slot_sizes.iter().map(|&s| SizeClass { slot_size: s }).collect(),
        };
        t.validate()?;
        Ok(t)
    }

    /// The memcached-style geometric table: slots of `base` bytes grown
    /// by `growth = (num, den)` (each size rounded up to a multiple of 8,
    /// duplicates collapsed) until one class holds `max_blob` bytes.
    pub fn geometric(
        base: u64,
        growth: (u64, u64),
        max_blob: u64,
    ) -> Result<ClassTable, AllocError> {
        let (num, den) = growth;
        if den == 0 || num <= den {
            return Err(AllocError::BadGrowth { num, den });
        }
        if base <= LEN_PREFIX as u64 {
            return Err(AllocError::BadSlotSize {
                class: 0,
                slot_size: base,
            });
        }
        let mut sizes: Vec<u64> = Vec::new();
        let mut want = base;
        loop {
            let slot = round_up8(want);
            if sizes.last() != Some(&slot) {
                sizes.push(slot);
            }
            if slot - LEN_PREFIX as u64 >= max_blob {
                break;
            }
            if sizes.len() > MAX_CLASSES {
                return Err(AllocError::BadClassCount(sizes.len()));
            }
            want = (want * num).div_ceil(den);
        }
        ClassTable::new(&sizes)
    }

    /// Validates the table's invariants.
    pub fn validate(&self) -> Result<(), AllocError> {
        if self.classes.is_empty() || self.classes.len() > MAX_CLASSES {
            return Err(AllocError::BadClassCount(self.classes.len()));
        }
        let mut prev = 0;
        for (i, c) in self.classes.iter().enumerate() {
            if c.slot_size % 8 != 0 || c.slot_size <= LEN_PREFIX as u64 {
                return Err(AllocError::BadSlotSize {
                    class: i,
                    slot_size: c.slot_size,
                });
            }
            if c.slot_size <= prev {
                return Err(AllocError::NonAscendingClasses { class: i });
            }
            prev = c.slot_size;
        }
        Ok(())
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True when the table holds no classes (never, post-validation).
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// The class at index `i`.
    pub fn get(&self, i: usize) -> SizeClass {
        self.classes[i]
    }

    /// Iterates the classes in ascending slot-size order.
    pub fn iter(&self) -> impl Iterator<Item = SizeClass> + '_ {
        self.classes.iter().copied()
    }

    /// The smallest class index whose slot fits a `len`-byte blob —
    /// minimal and monotone in `len` by construction (ascending table,
    /// first fit).
    pub fn class_for(&self, len: usize) -> Result<usize, AllocError> {
        self.classes
            .iter()
            .position(|c| c.max_blob() >= len)
            .ok_or(AllocError::TooLarge(len))
    }

    /// The largest blob any class stores.
    pub fn largest_blob(&self) -> usize {
        self.classes.last().map_or(0, |c| c.max_blob())
    }
}

/// Rounds `n` up to the next multiple of 8.
fn round_up8(n: u64) -> u64 {
    n.div_ceil(8) * 8
}

/// Freelist geometry of one slab: `slots` fixed-width slots of
/// `slot_size` bytes, addressed by slab-relative byte offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlabGeometry {
    /// Slot width in bytes (includes the length prefix).
    pub slot_size: u64,
    /// Number of slots in the slab.
    pub slots: u64,
}

impl SlabGeometry {
    /// Slab-relative byte offset of slot `i`.
    pub fn slot_off(&self, i: u64) -> u64 {
        debug_assert!(i < self.slots);
        i * self.slot_size
    }

    /// Slot index of slab-relative offset `rel`, if it names a slot
    /// start ([`SlabGeometry::slot_off`] round-trips through this).
    pub fn slot_of(&self, rel: u64) -> Option<u64> {
        let i = rel / self.slot_size;
        (i < self.slots && rel.is_multiple_of(self.slot_size)).then_some(i)
    }

    /// Total slot-storage bytes.
    pub fn slots_bytes(&self) -> usize {
        (self.slot_size * self.slots) as usize
    }

    /// Bytes of occupancy bitmap (one bit per slot, whole 8-byte words —
    /// the same packing as the table crate's persistent bitmap).
    pub fn bitmap_bytes(&self) -> usize {
        (self.slots.div_ceil(64) * 8) as usize
    }
}

/// Heap geometry: the class table plus how many slabs each class gets
/// and how many slots each of those slabs holds. Pure configuration —
/// regions and headers belong to the layers above.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeapConfig {
    /// Slot sizes (ascending) and per-slab slot counts, one per class.
    pub classes: Vec<ClassSpec>,
    /// Slabs per class (the rotation set the wear policy steers over).
    pub slabs_per_class: u64,
}

/// One class's spec in a [`HeapConfig`]: slot width plus per-slab slot
/// count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassSpec {
    /// Slot width in bytes, including the length prefix.
    pub slot_size: u64,
    /// Slots in each of the class's slabs.
    pub slots_per_slab: u64,
}

impl HeapConfig {
    /// A general-purpose split of roughly `budget_bytes` of slot storage
    /// over the default memcached-style table (80 B × 1.25, up to 4 KiB
    /// blobs) and 4 slabs per class. Byte share per class is weighted by
    /// `1/slot_size` — every class gets roughly the same *slot count* —
    /// because small-value churn dominates the memcached-class workloads
    /// the classes are modeled on.
    pub fn balanced(budget_bytes: u64) -> HeapConfig {
        Self::balanced_with(budget_bytes, 4, 4096 - LEN_PREFIX as u64)
    }

    /// [`HeapConfig::balanced`] with explicit slab count and largest
    /// supported blob.
    pub fn balanced_with(budget_bytes: u64, slabs_per_class: u64, max_blob: u64) -> HeapConfig {
        let table = ClassTable::geometric(DEFAULT_BASE, DEFAULT_GROWTH, max_blob)
            .expect("default geometric table is valid");
        let weights: Vec<f64> = table.iter().map(|c| 1.0 / c.slot_size as f64).collect();
        let total: f64 = weights.iter().sum();
        let classes = table
            .iter()
            .zip(&weights)
            .map(|(c, w)| {
                let class_bytes = (budget_bytes as f64 * w / total) as u64;
                ClassSpec {
                    slot_size: c.slot_size,
                    slots_per_slab: (class_bytes / slabs_per_class / c.slot_size).max(1),
                }
            })
            .collect();
        HeapConfig {
            classes,
            slabs_per_class,
        }
    }

    /// Validates geometry.
    pub fn validate(&self) -> Result<(), AllocError> {
        self.class_table()?;
        if self.slabs_per_class == 0 || self.slabs_per_class > MAX_SLABS_PER_CLASS {
            return Err(AllocError::BadSlabCount(self.slabs_per_class));
        }
        for (i, c) in self.classes.iter().enumerate() {
            if c.slots_per_slab == 0 {
                return Err(AllocError::ZeroSlots { class: i });
            }
        }
        Ok(())
    }

    /// The config's class table (validated as part of construction).
    pub fn class_table(&self) -> Result<ClassTable, AllocError> {
        ClassTable::new(&self.classes.iter().map(|c| c.slot_size).collect::<Vec<_>>())
    }

    /// The freelist geometry of every slab of class `i`.
    pub fn slab_geometry(&self, i: usize) -> SlabGeometry {
        SlabGeometry {
            slot_size: self.classes[i].slot_size,
            slots: self.classes[i].slots_per_slab,
        }
    }

    /// Total slabs across all classes.
    pub fn total_slabs(&self) -> u64 {
        self.classes.len() as u64 * self.slabs_per_class
    }

    /// Total slots across all slabs.
    pub fn total_slots(&self) -> u64 {
        self.classes
            .iter()
            .map(|c| c.slots_per_slab * self.slabs_per_class)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_matches_memcached_shape() {
        let t = ClassTable::geometric(DEFAULT_BASE, DEFAULT_GROWTH, 4096 - 8).unwrap();
        assert_eq!(t.get(0).slot_size, 80);
        // 80 * 1.25 = 100 -> rounds to 104.
        assert_eq!(t.get(1).slot_size, 104);
        // Strictly ascending, all multiples of 8, covers the max blob.
        let sizes: Vec<u64> = t.iter().map(|c| c.slot_size).collect();
        assert!(sizes.windows(2).all(|w| w[0] < w[1]));
        assert!(sizes.iter().all(|s| s % 8 == 0));
        assert!(t.largest_blob() >= 4096 - 8);
        assert!(t.len() <= MAX_CLASSES);
    }

    #[test]
    fn class_for_is_minimal_and_monotone() {
        let t = ClassTable::geometric(80, (5, 4), 2048).unwrap();
        let mut prev = 0;
        for len in 0..=2048usize {
            let ci = t.class_for(len).unwrap();
            assert!(t.get(ci).max_blob() >= len, "class must fit");
            if ci > 0 {
                assert!(t.get(ci - 1).max_blob() < len, "class must be minimal");
            }
            assert!(ci >= prev, "rounding must be monotone");
            prev = ci;
        }
        assert_eq!(
            t.class_for(t.largest_blob() + 1),
            Err(AllocError::TooLarge(t.largest_blob() + 1))
        );
    }

    #[test]
    fn geometric_rejects_bad_growth() {
        assert!(matches!(
            ClassTable::geometric(80, (1, 1), 1024),
            Err(AllocError::BadGrowth { .. })
        ));
        assert!(matches!(
            ClassTable::geometric(80, (3, 0), 1024),
            Err(AllocError::BadGrowth { .. })
        ));
        assert!(matches!(
            ClassTable::geometric(8, (5, 4), 1024),
            Err(AllocError::BadSlotSize { .. })
        ));
    }

    #[test]
    fn explicit_tables_validate() {
        assert!(ClassTable::new(&[32, 64, 128]).is_ok());
        assert!(matches!(
            ClassTable::new(&[]),
            Err(AllocError::BadClassCount(0))
        ));
        assert!(matches!(
            ClassTable::new(&[32, 30]),
            Err(AllocError::BadSlotSize { class: 1, .. })
        ));
        assert!(matches!(
            ClassTable::new(&[64, 64]),
            Err(AllocError::NonAscendingClasses { class: 1 })
        ));
    }

    #[test]
    fn slab_geometry_round_trips() {
        let g = SlabGeometry {
            slot_size: 104,
            slots: 13,
        };
        for i in 0..g.slots {
            assert_eq!(g.slot_of(g.slot_off(i)), Some(i));
        }
        assert_eq!(g.slot_of(1), None); // not a slot start
        assert_eq!(g.slot_of(104 * 13), None); // one past the end
        assert_eq!(g.slots_bytes(), 104 * 13);
        assert_eq!(g.bitmap_bytes(), 8);
    }

    #[test]
    fn balanced_weights_small_classes() {
        let cfg = HeapConfig::balanced(1 << 20);
        cfg.validate().unwrap();
        let small = &cfg.classes[0];
        let large = cfg.classes.last().unwrap();
        // Smaller slots get more slots per slab, not just more bytes.
        assert!(small.slots_per_slab > large.slots_per_slab);
        assert_eq!(cfg.slabs_per_class, 4);
    }

    #[test]
    fn config_validation_catches_bad_slab_counts() {
        let mut cfg = HeapConfig::balanced(1 << 16);
        cfg.slabs_per_class = 0;
        assert_eq!(cfg.validate(), Err(AllocError::BadSlabCount(0)));
        cfg.slabs_per_class = MAX_SLABS_PER_CLASS + 1;
        assert!(matches!(cfg.validate(), Err(AllocError::BadSlabCount(_))));
        let mut cfg = HeapConfig::balanced(1 << 16);
        cfg.classes[2].slots_per_slab = 0;
        assert_eq!(cfg.validate(), Err(AllocError::ZeroSlots { class: 2 }));
    }
}
