//! The pmem-facing slab store.
//!
//! One layer above the pure geometry in [`crate::classes`]: this module
//! anchors slabs in a pool region and performs the actual failure-atomic
//! allocate/free publishes. Every slab is a contiguous array of
//! fixed-width slots plus a persistent occupancy bitmap (the same
//! [`PmemBitmap`] the hash tables use), and every state change commits
//! through a single 8-byte bitmap word:
//!
//! * **allocate** writes the blob (length prefix + bytes) into a free
//!   slot, persists it, and only then atomically sets the slot's bit — a
//!   crash before the commit leaves the slot free and the torn blob
//!   unreachable;
//! * **free** atomically clears the bit; the stale bytes are
//!   unreachable the instant the 8-byte store lands.
//!
//! Shared writers use [`SlabStore::try_alloc_in`], which replays the
//! `CellStore::try_publish` choreography: claim the slot in DRAM
//! ([`CellClaims`]), verify its bit is still clear, write and persist the
//! blob, then commit with a bit-arbitrated CAS
//! ([`PmemBitmap::try_set_and_persist`]) and release the claim.
//!
//! Placement *policy* — which slab of a class to allocate from — lives
//! one layer up in [`crate::heap`]; this layer only answers "allocate in
//! slab `s`".

use crate::classes::{HeapConfig, SlabGeometry, LEN_PREFIX};
use crate::{AllocError, PmemPtr};
use nvm_pmem::{Pmem, PmemRead, PmemWrite, Region, RegionAllocator};
use nvm_table::{CellClaims, PmemBitmap};

/// One slab: a bitmap plus a slot array, anchored in the pool.
#[derive(Debug, Clone, Copy)]
pub struct Slab {
    /// Index of the slab's size class in the heap's class table.
    pub class_idx: usize,
    /// The slab's freelist geometry (slot width and count).
    pub geom: SlabGeometry,
    bitmap: PmemBitmap,
    slots_region: Region,
    /// First flat slot index of this slab (slabs number their slots into
    /// one contiguous space for claims and GC cursors).
    flat_base: u64,
}

impl Slab {
    /// Pool offset of slot `i`.
    pub fn slot_off(&self, i: u64) -> u64 {
        self.slots_region.off as u64 + self.geom.slot_off(i)
    }

    /// Slot index of pool offset `off`, if it names a slot start here.
    fn slot_of(&self, off: u64) -> Option<u64> {
        let base = self.slots_region.off as u64;
        off.checked_sub(base).and_then(|rel| self.geom.slot_of(rel))
    }

    /// The slab's slot storage region (for per-range media wear stats).
    pub fn slots_region(&self) -> Region {
        self.slots_region
    }

    /// First flat slot index of this slab.
    pub fn flat_base(&self) -> u64 {
        self.flat_base
    }
}

/// The slab store: every slab of every class, anchored in one pool
/// region. Purely mechanical — placement policy lives in
/// [`crate::heap::PmemHeap`].
#[derive(Debug, Clone)]
pub struct SlabStore {
    slabs: Vec<Slab>,
    /// Slabs per class (slab `class * per_class + k` is class `class`'s
    /// `k`-th slab).
    per_class: u64,
    total_slots: u64,
}

impl SlabStore {
    /// Pool bytes the store needs for `config`, excluding any caller
    /// header (each slab costs a cacheline-rounded bitmap plus a
    /// cacheline-rounded slot array).
    pub fn required_size(config: &HeapConfig) -> usize {
        use nvm_pmem::CACHELINE;
        let mut total = 0;
        for i in 0..config.classes.len() {
            let g = config.slab_geometry(i);
            total += (PmemBitmap::region_size(g.slots).max(8) + CACHELINE
                + g.slots_bytes()
                + CACHELINE)
                * config.slabs_per_class as usize;
        }
        total
    }

    /// Lays the store out from `ra` (class-major, deterministic — create
    /// and open must call with identical geometry to agree on offsets).
    fn assemble(ra: &mut RegionAllocator, config: &HeapConfig) -> Vec<(Region, Slab)> {
        let mut slabs = Vec::new();
        let mut flat = 0u64;
        for ci in 0..config.classes.len() {
            let g = config.slab_geometry(ci);
            for _ in 0..config.slabs_per_class {
                let bm = ra.alloc_lines(PmemBitmap::region_size(g.slots).max(8));
                let slots = ra.alloc_lines(g.slots_bytes());
                slabs.push((
                    bm,
                    Slab {
                        class_idx: ci,
                        geom: g,
                        bitmap: PmemBitmap::attach(bm, g.slots),
                        slots_region: slots,
                        flat_base: flat,
                    },
                ));
                flat += g.slots;
            }
        }
        slabs
    }

    /// Creates a fresh store, zeroing every slab bitmap.
    pub fn create<P: Pmem>(
        pm: &mut P,
        ra: &mut RegionAllocator,
        config: &HeapConfig,
    ) -> SlabStore {
        let parts = Self::assemble(ra, config);
        for (bm_region, slab) in &parts {
            PmemBitmap::create(pm, *bm_region, slab.geom.slots);
        }
        Self::finish(parts, config)
    }

    /// Attaches to an existing store without touching pmem.
    pub fn attach(ra: &mut RegionAllocator, config: &HeapConfig) -> SlabStore {
        let parts = Self::assemble(ra, config);
        Self::finish(parts, config)
    }

    fn finish(parts: Vec<(Region, Slab)>, config: &HeapConfig) -> SlabStore {
        let slabs: Vec<Slab> = parts.into_iter().map(|(_, s)| s).collect();
        let total_slots = slabs.iter().map(|s| s.geom.slots).sum();
        SlabStore {
            slabs,
            per_class: config.slabs_per_class,
            total_slots,
        }
    }

    /// Number of slabs.
    pub fn n_slabs(&self) -> usize {
        self.slabs.len()
    }

    /// Total slots across all slabs (the flat claim/cursor space).
    pub fn total_slots(&self) -> u64 {
        self.total_slots
    }

    /// The slab at index `s`.
    pub fn slab(&self, s: usize) -> &Slab {
        &self.slabs[s]
    }

    /// Slab indices belonging to class `ci`.
    pub fn class_slabs(&self, ci: usize) -> std::ops::Range<usize> {
        let per = self.per_class as usize;
        ci * per..(ci + 1) * per
    }

    /// The slab and slot owning flat slot index `flat`, if in range.
    pub fn locate_flat(&self, flat: u64) -> Option<(usize, u64)> {
        // Slabs are ordered by flat_base; partition_point finds the owner.
        let s = self.slabs.partition_point(|sl| sl.flat_base <= flat);
        let slab = &self.slabs[s.checked_sub(1)?];
        let rel = flat - slab.flat_base;
        (rel < slab.geom.slots).then_some((s - 1, rel))
    }

    /// Exclusive-writer allocation in slab `s`: stores `blob` in the
    /// first free slot at or after `cursor` (wrapping), publishing with
    /// one failure-atomic bitmap-word commit. Data is persisted *before*
    /// the bit — a crash in between leaves the slot free.
    pub fn alloc_in<P: Pmem>(
        &self,
        pm: &mut P,
        s: usize,
        blob: &[u8],
        cursor: u64,
    ) -> Result<(PmemPtr, u64), AllocError> {
        let slab = &self.slabs[s];
        debug_assert!(blob.len() <= slab.geom.slot_size as usize - LEN_PREFIX);
        let n = slab.geom.slots;
        let start = cursor % n;
        let slot = slab
            .bitmap
            .find_zero_in_range(pm, start, n - start)
            .or_else(|| slab.bitmap.find_zero_in_range(pm, 0, start))
            .ok_or(AllocError::OutOfMemory)?;
        let off = slab.slot_off(slot) as usize;
        // Data first...
        pm.write_u64(off, blob.len() as u64);
        if !blob.is_empty() {
            pm.write(off + LEN_PREFIX, blob);
        }
        pm.persist(off, LEN_PREFIX + blob.len());
        // ...then the atomic commit.
        slab.bitmap.set_and_persist(pm, slot, true);
        Ok((PmemPtr(off as u64), slot))
    }

    /// First free slot of slab `s` at or after `cursor` (wrapping), with
    /// candidates for which `staged` returns `true` skipped — the scan
    /// half of [`SlabStore::alloc_in`] split out so a fence-coalesced
    /// batch can place several blobs in one slab *before* any of their
    /// occupancy bits commit (the bitmap still reads those slots as
    /// free, so the batch itself must veto them).
    pub fn find_free_skipping<R: PmemRead>(
        &self,
        pm: &R,
        s: usize,
        cursor: u64,
        staged: impl Fn(u64) -> bool,
    ) -> Option<u64> {
        let slab = &self.slabs[s];
        let n = slab.geom.slots;
        let start = cursor % n;
        // Two linear segments, exactly like alloc_in's wrap: [start, n)
        // then [0, start). Each skip advances the probe, so both loops
        // terminate.
        for (mut probe, end) in [(start, n), (0, start)] {
            while probe < end {
                let Some(slot) = slab.bitmap.find_zero_in_range(pm, probe, end - probe) else {
                    break;
                };
                if !staged(slot) {
                    return Some(slot);
                }
                probe = slot + 1;
            }
        }
        None
    }

    /// Stage half of a fence-coalesced batched allocation: writes `blob`
    /// (length prefix + bytes) into free slot `slot` of slab `s` and
    /// flushes the lines, but issues **no fence and no bitmap commit** —
    /// the slot still reads as free and the bytes are unreachable. The
    /// batch completes with one [`SlabStore::publish_staged`] call.
    pub fn stage_write<P: Pmem>(&self, pm: &mut P, s: usize, slot: u64, blob: &[u8]) -> PmemPtr {
        let slab = &self.slabs[s];
        debug_assert!(blob.len() <= slab.geom.slot_size as usize - LEN_PREFIX);
        debug_assert!(!slab.bitmap.get(pm, slot), "staging into an allocated slot");
        let off = slab.slot_off(slot) as usize;
        pm.write_u64(off, blob.len() as u64);
        if !blob.is_empty() {
            pm.write(off + LEN_PREFIX, blob);
        }
        pm.flush(off, LEN_PREFIX + blob.len());
        PmemPtr(off as u64)
    }

    /// Commit half of a fence-coalesced batched allocation: one fence
    /// orders every staged blob's flushed data, then each staged slot's
    /// bit is set atomically and its bitmap word flushed (words deduped),
    /// then one closing fence commits the batch — K allocations for 2
    /// fences instead of 2K.
    ///
    /// Crash ordering matches [`SlabStore::alloc_in`] exactly: data is
    /// durable before any bit commits, and each bit set is an individual
    /// failure-atomic 8-byte store, so a crash mid-publish leaves an
    /// arbitrary *subset* of the batch allocated — every committed slot
    /// holds intact bytes, every uncommitted slot still reads as free.
    pub fn publish_staged<P: Pmem>(&self, pm: &mut P, staged: &[(usize, u64)]) {
        if staged.is_empty() {
            return;
        }
        pm.fence();
        let mut words: Vec<usize> = Vec::with_capacity(staged.len());
        for &(s, slot) in staged {
            let slab = &self.slabs[s];
            slab.bitmap.set_volatile(pm, slot, true);
            words.push(slab.bitmap.word_off_of(slot));
        }
        words.sort_unstable();
        words.dedup();
        for w in words {
            pm.flush(w, 8);
        }
        pm.fence();
    }

    /// Shared-writer allocation in slab `s` — the `CellStore`
    /// try_publish choreography on slot granularity. `claims` must span
    /// [`SlabStore::total_slots`] flat slot indices and be shared by all
    /// writers of this store:
    ///
    /// 1. claim the candidate slot in DRAM (losers move on),
    /// 2. re-check its bit (a racer may have committed before we claimed),
    /// 3. write and persist the blob — exclusively ours under the claim,
    /// 4. commit with a bit-arbitrated CAS and release the claim.
    pub fn try_alloc_in<W: PmemWrite>(
        &self,
        w: &W,
        claims: &CellClaims,
        s: usize,
        blob: &[u8],
        cursor: u64,
    ) -> Result<(PmemPtr, u64), AllocError> {
        let slab = &self.slabs[s];
        debug_assert!(blob.len() <= slab.geom.slot_size as usize - LEN_PREFIX);
        let n = slab.geom.slots;
        let mut probe = cursor % n;
        for _ in 0..n {
            if let Some(slot) = slab
                .bitmap
                .find_zero_in_range(w, probe, n - probe)
                .or_else(|| slab.bitmap.find_zero_in_range(w, 0, probe))
            {
                let flat = slab.flat_base + slot;
                if !claims.try_claim(flat) {
                    // Another writer is mid-publish here; probe past it.
                    probe = (slot + 1) % n;
                    continue;
                }
                if slab.bitmap.get(w, slot) {
                    // Committed between our scan and our claim.
                    claims.release(flat);
                    probe = (slot + 1) % n;
                    continue;
                }
                let off = slab.slot_off(slot) as usize;
                w.write_u64(off, blob.len() as u64);
                if !blob.is_empty() {
                    w.write(off + LEN_PREFIX, blob);
                }
                w.persist(off, LEN_PREFIX + blob.len());
                let won = slab.bitmap.try_set_and_persist(w, slot, true).is_ok();
                claims.release(flat);
                debug_assert!(won, "claimed slot was stolen");
                return Ok((PmemPtr(off as u64), slot));
            }
            return Err(AllocError::OutOfMemory);
        }
        Err(AllocError::OutOfMemory)
    }

    /// Resolves `ptr` to its slab and slot, requiring the slot to be
    /// allocated.
    pub fn resolve<R: PmemRead>(&self, pm: &R, ptr: PmemPtr) -> Result<(usize, u64), AllocError> {
        for (s, slab) in self.slabs.iter().enumerate() {
            if let Some(slot) = slab.slot_of(ptr.0) {
                if slab.bitmap.get(pm, slot) {
                    return Ok((s, slot));
                }
                return Err(AllocError::BadPointer(ptr));
            }
        }
        Err(AllocError::BadPointer(ptr))
    }

    /// Frees the slot at `ptr` (atomic bitmap clear — the commit point).
    /// Returns the slab the slot belonged to.
    pub fn free<P: Pmem>(&self, pm: &mut P, ptr: PmemPtr) -> Result<(usize, u64), AllocError> {
        let (s, slot) = self.resolve(pm, ptr)?;
        self.slabs[s].bitmap.set_and_persist(pm, slot, false);
        Ok((s, slot))
    }

    /// Reads the blob at `ptr`. A length prefix exceeding the slot's
    /// capacity — a torn slot observed by a lock-free reader racing a
    /// writer, or media corruption — is an error, never a read past the
    /// slot's bounds.
    pub fn read<R: PmemRead>(&self, pm: &R, ptr: PmemPtr) -> Result<Vec<u8>, AllocError> {
        let (s, _) = self.resolve(pm, ptr)?;
        let len = pm.read_u64(ptr.0 as usize) as usize;
        if len > self.slabs[s].geom.slot_size as usize - LEN_PREFIX {
            return Err(AllocError::BadPointer(ptr));
        }
        let mut buf = vec![0u8; len];
        if len > 0 {
            pm.read(ptr.0 as usize + LEN_PREFIX, &mut buf);
        }
        Ok(buf)
    }

    /// True if `ptr` names a currently-allocated slot.
    pub fn is_allocated<R: PmemRead>(&self, pm: &R, ptr: PmemPtr) -> bool {
        self.resolve(pm, ptr).is_ok()
    }

    /// Whether slot `slot` of slab `s` is allocated.
    pub fn slot_allocated<R: PmemRead>(&self, pm: &R, s: usize, slot: u64) -> bool {
        self.slabs[s].bitmap.get(pm, slot)
    }

    /// Visits every allocated slot (for mark-and-sweep by owners).
    pub fn for_each_allocated<R: PmemRead>(&self, pm: &R, mut f: impl FnMut(PmemPtr)) {
        for slab in &self.slabs {
            for slot in 0..slab.geom.slots {
                if slab.bitmap.get(pm, slot) {
                    f(PmemPtr(slab.slot_off(slot)));
                }
            }
        }
    }

    /// Allocated slots in slab `s`.
    pub fn live_slots<R: PmemRead>(&self, pm: &R, s: usize) -> u64 {
        self.slabs[s].bitmap.count_ones(pm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_pmem::{SimConfig, SimPmem};

    fn setup() -> (SimPmem, SlabStore) {
        let cfg = HeapConfig {
            classes: vec![
                crate::ClassSpec {
                    slot_size: 64,
                    slots_per_slab: 16,
                },
                crate::ClassSpec {
                    slot_size: 128,
                    slots_per_slab: 8,
                },
            ],
            slabs_per_class: 2,
        };
        let size = SlabStore::required_size(&cfg);
        let mut pm = SimPmem::new(size, SimConfig::fast_test());
        let mut ra = RegionAllocator::new(0, size);
        let store = SlabStore::create(&mut pm, &mut ra, &cfg);
        (pm, store)
    }

    #[test]
    fn alloc_free_roundtrip_per_slab() {
        let (mut pm, store) = setup();
        let (p, slot) = store.alloc_in(&mut pm, 1, b"second slab of class 0", 0).unwrap();
        assert_eq!(slot, 0);
        assert_eq!(store.read(&pm, p).unwrap(), b"second slab of class 0");
        assert_eq!(store.live_slots(&pm, 1), 1);
        assert_eq!(store.live_slots(&pm, 0), 0);
        assert_eq!(store.free(&mut pm, p).unwrap(), (1, 0));
        assert!(!store.is_allocated(&pm, p));
    }

    #[test]
    fn flat_slot_space_round_trips() {
        let (_, store) = setup();
        assert_eq!(store.total_slots(), 16 * 2 + 8 * 2);
        let mut flat = 0;
        for s in 0..store.n_slabs() {
            assert_eq!(store.slab(s).flat_base(), flat);
            for slot in 0..store.slab(s).geom.slots {
                assert_eq!(store.locate_flat(flat + slot), Some((s, slot)));
            }
            flat += store.slab(s).geom.slots;
        }
        assert_eq!(store.locate_flat(flat), None);
    }

    #[test]
    fn exhaustion_is_per_slab() {
        let (mut pm, store) = setup();
        for _ in 0..16 {
            store.alloc_in(&mut pm, 0, &[7; 40], 0).unwrap();
        }
        assert_eq!(
            store.alloc_in(&mut pm, 0, &[7; 40], 0),
            Err(AllocError::OutOfMemory)
        );
        // The sibling slab still has room.
        assert!(store.alloc_in(&mut pm, 1, &[7; 40], 0).is_ok());
    }

    #[test]
    fn shared_alloc_racers_get_distinct_slots() {
        let (mut pm, store) = setup();
        let w = pm.write_handle();
        let claims = CellClaims::new(store.total_slots());
        let ptrs: Vec<PmemPtr> = std::thread::scope(|sc| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let w = w.clone();
                    let claims = &claims;
                    let store = &store;
                    sc.spawn(move || {
                        (0..4)
                            .map(|i| {
                                let blob = [t as u8 * 16 + i as u8; 24];
                                store.try_alloc_in(&w, claims, 0, &blob, 0).unwrap().0
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        // 16 allocations, 16 distinct slots, slab exactly full.
        let mut uniq = ptrs.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 16);
        assert_eq!(store.live_slots(&pm, 0), 16);
        assert_eq!(
            store.try_alloc_in(&w, &claims, 0, &[0; 24], 0),
            Err(AllocError::OutOfMemory)
        );
    }
}
