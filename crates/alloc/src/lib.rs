//! A layered, crash-consistent slab heap for persistent memory.
//!
//! Group hashing stores fixed-size cells; real key-value systems also
//! need somewhere to put *variable-size* values. This crate extends the
//! paper's consistency idiom — *data first, then one failure-atomic
//! 8-byte bitmap commit* — from hash cells to allocation, and splits the
//! allocator into three explicit layers (the same shape as the table
//! crate's geometry/store/policy split):
//!
//! ```text
//! ┌────────────────────────────────────────────────────────────┐
//! │ heap      PmemHeap — placement policy + GC                 │
//! │           wear-aware slab rotation, crash-resumable        │
//! │           gc_step drainer (persisted cursor, ≤1 duplicate) │
//! ├────────────────────────────────────────────────────────────┤
//! │ slab      SlabStore — pmem-facing slot arrays              │
//! │           failure-atomic alloc/free publish on a per-slab  │
//! │           bitmap word; CellStore try_publish idiom for     │
//! │           shared writers                                   │
//! ├────────────────────────────────────────────────────────────┤
//! │ classes   pure geometry — no pmem                          │
//! │           memcached-style size classes (80 B × 1.25),      │
//! │           rounding, per-slab freelist geometry             │
//! └────────────────────────────────────────────────────────────┘
//! ```
//!
//! The bottom layer never names `nvm_pmem` (enforced by a `ci.sh`
//! layering lint) and is proptested: class rounding is minimal, monotone
//! and within the growth bound, freelist geometry round-trips. The slab
//! store owns every persistent byte; the heap owns every decision.
//!
//! There is no log. The bitmaps plus a tiny header (GC cursor + active
//! flag) are the only metadata and they are always consistent. After a
//! crash the worst case is a *leak* — a slot whose bit committed but
//! whose owner (e.g. a hash-table entry pointing at it) did not — and
//! leaks are bounded-work reclaimable: [`PmemHeap::gc_step`] sweeps the
//! slot space against the owner ([`GcOwner`]) in resumable increments.
//!
//! # Example
//!
//! ```
//! use nvm_alloc::{HeapConfig, PmemHeap};
//! use nvm_pmem::{Pmem, Region, SimConfig, SimPmem};
//!
//! let cfg = HeapConfig::balanced(64 * 1024);
//! let size = PmemHeap::required_size(&cfg);
//! let mut pm = SimPmem::new(size, SimConfig::fast_test());
//! let mut heap = PmemHeap::create(&mut pm, Region::new(0, size), &cfg).unwrap();
//!
//! let p = heap.alloc(&mut pm, b"hello nvm").unwrap();
//! assert_eq!(heap.read(&pm, p).unwrap(), b"hello nvm");
//! heap.free(&mut pm, p).unwrap();
//! ```

#![warn(missing_docs)]

pub mod classes;
mod error;
pub mod heap;
pub mod slab;

pub use classes::{
    ClassSpec, ClassTable, HeapConfig, SizeClass, SlabGeometry, DEFAULT_BASE, DEFAULT_GROWTH,
    LEN_PREFIX, MAX_CLASSES, MAX_SLABS_PER_CLASS,
};
pub use error::AllocError;
pub use heap::{FragStats, GcOwner, HeapReadView, HeapStats, PmemHeap, RotationPolicy};
pub use slab::{Slab, SlabStore};

/// A persistent pointer: the pool offset of an allocated slot. Stable
/// across re-opens (store it in other persistent structures).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PmemPtr(pub u64);

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_pmem::{CrashResolution, Pmem, Region, SimConfig, SimPmem};

    fn setup(budget: u64) -> (SimPmem, PmemHeap, Region) {
        let cfg = HeapConfig::balanced(budget);
        let size = PmemHeap::required_size(&cfg);
        let mut pm = SimPmem::new(size, SimConfig::fast_test());
        let region = Region::new(0, size);
        let h = PmemHeap::create(&mut pm, region, &cfg).unwrap();
        (pm, h, region)
    }

    /// An owner over a DRAM pointer set — the simplest GcOwner.
    struct SetOwner {
        live: std::collections::HashMap<u64, Vec<u8>>,
    }

    impl SetOwner {
        fn new() -> Self {
            SetOwner {
                live: Default::default(),
            }
        }
    }

    impl<P: Pmem> GcOwner<P> for SetOwner {
        fn is_live(&mut self, _pm: &P, ptr: PmemPtr, blob: &[u8]) -> bool {
            self.live.get(&ptr.0).is_some_and(|b| b == blob)
        }
        fn repoint(&mut self, _pm: &mut P, old: PmemPtr, new: PmemPtr, _blob: &[u8]) -> bool {
            let Some(b) = self.live.remove(&old.0) else {
                return false;
            };
            self.live.insert(new.0, b);
            true
        }
    }

    #[test]
    fn roundtrip_various_sizes() {
        let (mut pm, mut h, _) = setup(64 * 1024);
        let blobs: Vec<Vec<u8>> = [0usize, 1, 7, 24, 72, 120, 248, 1000, 4000]
            .iter()
            .map(|&n| (0..n).map(|i| (i * 7) as u8).collect())
            .collect();
        let ptrs: Vec<PmemPtr> = blobs.iter().map(|b| h.alloc(&mut pm, b).unwrap()).collect();
        for (b, &p) in blobs.iter().zip(&ptrs) {
            assert_eq!(&h.read(&pm, p).unwrap(), b);
        }
        assert_eq!(h.allocated(&pm), blobs.len() as u64);
        assert_eq!(h.stats().allocs, blobs.len() as u64);
    }

    #[test]
    fn free_enables_reuse() {
        let (mut pm, mut h, _) = setup(16 * 1024);
        h.set_rotation(RotationPolicy::FirstFit);
        let p1 = h.alloc(&mut pm, &[1u8; 20]).unwrap();
        h.free(&mut pm, p1).unwrap();
        assert!(!h.is_allocated(&pm, p1));
        let p2 = h.alloc(&mut pm, &[2u8; 20]).unwrap();
        assert_eq!(p1, p2, "freed slot should be reused first under first-fit");
        assert_eq!(h.read(&pm, p2).unwrap(), vec![2u8; 20]);
    }

    #[test]
    fn exhaustion_and_oversize_are_reported() {
        let cfg = HeapConfig {
            classes: vec![ClassSpec {
                slot_size: 32,
                slots_per_slab: 2,
            }],
            slabs_per_class: 2,
        };
        let size = PmemHeap::required_size(&cfg);
        let mut pm = SimPmem::new(size, SimConfig::fast_test());
        let mut h = PmemHeap::create(&mut pm, Region::new(0, size), &cfg).unwrap();
        for i in 0..4 {
            h.alloc(&mut pm, &[i as u8; 10]).unwrap();
        }
        assert_eq!(h.alloc(&mut pm, &[9; 10]), Err(AllocError::OutOfMemory));
        assert_eq!(h.alloc(&mut pm, &[9; 100]), Err(AllocError::TooLarge(100)));
    }

    #[test]
    fn bad_pointers_rejected() {
        let (mut pm, mut h, _) = setup(16 * 1024);
        let p = h.alloc(&mut pm, b"x").unwrap();
        assert!(h.read(&pm, PmemPtr(p.0 + 1)).is_err()); // misaligned
        assert!(h.read(&pm, PmemPtr(3)).is_err()); // header area
        h.free(&mut pm, p).unwrap();
        assert!(h.read(&pm, p).is_err()); // freed
        assert_eq!(h.free(&mut pm, p), Err(AllocError::BadPointer(p)));
    }

    #[test]
    fn reopen_preserves_heap() {
        let (mut pm, mut h, region) = setup(32 * 1024);
        let p = h.alloc(&mut pm, b"persistent blob").unwrap();
        drop(h);
        let h2 = PmemHeap::open(&pm, region).unwrap();
        assert_eq!(h2.read(&pm, p).unwrap(), b"persistent blob");
        assert_eq!(h2.allocated(&pm), 1);
        assert!(!h2.gc_pending(&pm));
    }

    #[test]
    fn open_rejects_garbage() {
        let pm = SimPmem::new(4096, SimConfig::fast_test());
        assert!(PmemHeap::open(&pm, Region::new(0, 4096)).is_err());
    }

    #[test]
    fn uncommitted_alloc_vanishes_on_crash() {
        use nvm_pmem::{run_with_crash, CrashPlan};
        let (pm0, h0, region) = setup(16 * 1024);
        // Crash at every event of an alloc; afterwards the heap is either
        // empty (commit didn't land) or holds exactly the intact blob.
        for at in 0..60 {
            let mut pm = pm0.clone();
            let mut h = h0.clone();
            let base = pm.events();
            pm.set_crash_plan(Some(CrashPlan {
                at_event: base + at,
            }));
            let done = run_with_crash(|| h.alloc(&mut pm, &[0xAB; 40]).unwrap()).is_ok();
            pm.crash(CrashResolution::Random(at));
            let h = PmemHeap::open(&pm, region).unwrap();
            let mut live = vec![];
            h.for_each_allocated(&pm, |p| live.push(p));
            match live.len() {
                0 => {}
                1 => {
                    assert_eq!(h.read(&pm, live[0]).unwrap(), vec![0xAB; 40]);
                }
                n => panic!("{n} blobs after one alloc (crash at +{at})"),
            }
            if done {
                break;
            }
        }
    }

    #[test]
    fn alloc_batch_roundtrips_and_coalesces_fences() {
        let (mut pm, mut h, _) = setup(64 * 1024);
        let blobs: Vec<Vec<u8>> = (0..24usize)
            .map(|i| vec![i as u8; 8 + (i * 37) % 300])
            .collect();
        let refs: Vec<&[u8]> = blobs.iter().map(|b| b.as_slice()).collect();
        pm.reset_stats();
        let ptrs = h.alloc_batch(&mut pm, &refs).unwrap();
        // The whole point: K allocations, exactly 2 fences (K singles
        // would spend 2K).
        assert_eq!(pm.stats().fences, 2);
        assert_eq!(ptrs.len(), blobs.len());
        let mut uniq = ptrs.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), ptrs.len(), "batch reused a slot");
        for (b, &p) in blobs.iter().zip(&ptrs) {
            assert_eq!(&h.read(&pm, p).unwrap(), b);
        }
        assert_eq!(h.allocated(&pm), blobs.len() as u64);
        assert_eq!(h.stats().allocs, blobs.len() as u64);
        assert!(h.alloc_batch(&mut pm, &[]).unwrap().is_empty());
    }

    #[test]
    fn alloc_batch_failure_commits_nothing() {
        let cfg = HeapConfig {
            classes: vec![ClassSpec {
                slot_size: 32,
                slots_per_slab: 2,
            }],
            slabs_per_class: 2,
        };
        let size = PmemHeap::required_size(&cfg);
        let mut pm = SimPmem::new(size, SimConfig::fast_test());
        let mut h = PmemHeap::create(&mut pm, Region::new(0, size), &cfg).unwrap();
        let writes_before = h.slab_writes().to_vec();
        // Five blobs into four slots: the batch must fail whole.
        let blobs: Vec<&[u8]> = vec![&[1; 10]; 5];
        assert_eq!(h.alloc_batch(&mut pm, &blobs), Err(AllocError::OutOfMemory));
        assert_eq!(h.allocated(&pm), 0, "failed batch leaked slots");
        assert_eq!(h.stats().allocs, 0);
        assert_eq!(h.slab_writes(), &writes_before[..], "wear hints not rolled back");
        // An oversize blob anywhere in the batch fails the same way.
        assert_eq!(
            h.alloc_batch(&mut pm, &[&[2; 10], &[2; 100]]),
            Err(AllocError::TooLarge(100))
        );
        assert_eq!(h.allocated(&pm), 0);
        // The heap still works after the failures.
        let ptrs = h.alloc_batch(&mut pm, &[&[3; 10], &[4; 10]]).unwrap();
        assert_eq!(h.read(&pm, ptrs[0]).unwrap(), vec![3; 10]);
        assert_eq!(h.read(&pm, ptrs[1]).unwrap(), vec![4; 10]);
    }

    #[test]
    fn crash_anywhere_in_alloc_batch_leaves_intact_subset() {
        use nvm_pmem::{run_with_crash, CrashPlan};
        let (pm0, h0, region) = setup(32 * 1024);
        let blobs: Vec<Vec<u8>> = (0..6usize).map(|i| vec![0x50 + i as u8; 40]).collect();
        let refs: Vec<&[u8]> = blobs.iter().map(|b| b.as_slice()).collect();
        let mut at = 0u64;
        loop {
            let mut pm = pm0.clone();
            let mut h = h0.clone();
            let base = pm.events();
            pm.set_crash_plan(Some(CrashPlan {
                at_event: base + at,
            }));
            let done = run_with_crash(|| h.alloc_batch(&mut pm, &refs).unwrap()).is_ok();
            pm.crash(CrashResolution::Random(at));
            // Whatever subset of bits landed, each committed slot holds an
            // intact blob from the batch.
            let h = PmemHeap::open(&pm, region).unwrap();
            let mut live = vec![];
            h.for_each_allocated(&pm, |p| live.push(p));
            assert!(live.len() <= blobs.len(), "crash at +{at}");
            for p in live {
                let got = h.read(&pm, p).unwrap();
                assert!(
                    blobs.contains(&got),
                    "torn blob surfaced at +{at}: {got:?}"
                );
            }
            if done {
                break;
            }
            at += 1;
            assert!(at < 500, "alloc_batch never completed");
        }
    }

    #[test]
    fn wear_rotation_spreads_across_slabs() {
        let cfg = HeapConfig {
            classes: vec![ClassSpec {
                slot_size: 64,
                slots_per_slab: 32,
            }],
            slabs_per_class: 4,
        };
        let size = PmemHeap::required_size(&cfg);
        let mut pm = SimPmem::new(size, SimConfig::fast_test());
        let region = Region::new(0, size);

        // Wear-aware: alloc/free churn on one live blob at a time rotates
        // over all four slabs.
        let mut h = PmemHeap::create(&mut pm, region, &cfg).unwrap();
        for i in 0..64 {
            let p = h.alloc(&mut pm, &[i as u8; 32]).unwrap();
            h.free(&mut pm, p).unwrap();
        }
        let writes = h.slab_writes().to_vec();
        assert_eq!(writes.iter().sum::<u64>(), 64);
        assert!(
            writes.iter().all(|&w| w == 16),
            "wear-aware rotation should even out writes, got {writes:?}"
        );

        // First-fit baseline: the same churn hammers slab 0 only.
        let mut h = PmemHeap::create(&mut pm, region, &cfg).unwrap();
        h.set_rotation(RotationPolicy::FirstFit);
        for i in 0..64 {
            let p = h.alloc(&mut pm, &[i as u8; 32]).unwrap();
            h.free(&mut pm, p).unwrap();
        }
        let writes = h.slab_writes();
        assert_eq!(writes[0], 64);
        assert!(writes[1..].iter().all(|&w| w == 0));
    }

    #[test]
    fn gc_reclaims_unreferenced_blobs() {
        let (mut pm, mut h, _) = setup(32 * 1024);
        let mut owner = SetOwner::new();
        let mut leaked = 0;
        for i in 0..20u8 {
            let blob = vec![i; 24];
            let p = h.alloc(&mut pm, &blob).unwrap();
            if i % 4 == 0 {
                leaked += 1; // owner never learns about these
            } else {
                owner.live.insert(p.0, blob);
            }
        }
        let reclaimed = h.gc_full(&mut pm, &mut owner).unwrap();
        assert_eq!(reclaimed, leaked);
        assert_eq!(h.allocated(&pm), 20 - leaked);
        // Everything the owner references is still intact.
        for (&off, blob) in &owner.live {
            assert_eq!(&h.read(&pm, PmemPtr(off)).unwrap(), blob);
        }
        // A second pass finds nothing.
        assert_eq!(h.gc_full(&mut pm, &mut owner).unwrap(), 0);
    }

    #[test]
    fn gc_compacts_sparse_slabs() {
        let cfg = HeapConfig {
            classes: vec![ClassSpec {
                slot_size: 64,
                slots_per_slab: 16,
            }],
            slabs_per_class: 2,
        };
        let size = PmemHeap::required_size(&cfg);
        let mut pm = SimPmem::new(size, SimConfig::fast_test());
        let mut h = PmemHeap::create(&mut pm, Region::new(0, size), &cfg).unwrap();
        h.set_rotation(RotationPolicy::FirstFit);
        let mut owner = SetOwner::new();
        // Fill slab 0, spill a few into slab 1, then free most of slab 0
        // so it becomes sparse (≤ 4 live of 16).
        let mut ptrs = vec![];
        for i in 0..20u8 {
            let blob = vec![i; 32];
            let p = h.alloc(&mut pm, &blob).unwrap();
            owner.live.insert(p.0, blob);
            ptrs.push(p);
        }
        for &p in &ptrs[2..16] {
            owner.live.remove(&p.0);
            h.free(&mut pm, p).unwrap();
        }
        h.gc_full(&mut pm, &mut owner).unwrap();
        // Slab 0's two survivors moved into slab 1 (the denser slab).
        assert!(h.stats().gc_moves >= 2, "stats: {:?}", h.stats());
        let usage = h.class_usage(&pm);
        assert_eq!(usage[0].0, 6); // 2 moved + 4 spilled
        for (&off, blob) in &owner.live {
            assert_eq!(&h.read(&pm, PmemPtr(off)).unwrap(), blob);
        }
    }

    #[test]
    fn gc_step_is_bounded_and_resumable() {
        let (mut pm, mut h, region) = setup(32 * 1024);
        let mut owner = SetOwner::new();
        for i in 0..10u8 {
            h.alloc(&mut pm, &[i; 24]).unwrap(); // all leaked
        }
        assert!(!h.gc_pending(&pm));
        assert!(h.gc_step(&mut pm, 1, &mut owner).unwrap());
        assert!(h.gc_pending(&pm), "pass in flight is persisted");
        // The in-flight pass survives a re-open and resumes where it was.
        let mut h2 = PmemHeap::open(&pm, region).unwrap();
        assert!(h2.gc_pending(&pm));
        while h2.gc_step(&mut pm, 64, &mut owner).unwrap() {}
        assert!(!h2.gc_pending(&pm));
        assert_eq!(h2.allocated(&pm), 0, "every leaked blob reclaimed");
    }

    /// The heap's publish budgets, pinned: alloc = data persist + bitmap
    /// commit (2 flushes / 2 fences / 1 atomic), free = bitmap commit
    /// alone (1 / 1 / 1). Slots are 64 B here so the data persist is one
    /// line.
    #[test]
    fn alloc_and_free_budgets_are_pinned() {
        let cfg = HeapConfig {
            classes: vec![ClassSpec {
                slot_size: 64,
                slots_per_slab: 8,
            }],
            slabs_per_class: 1,
        };
        let size = PmemHeap::required_size(&cfg);
        let mut pm = SimPmem::new(size, SimConfig::fast_test());
        let mut h = PmemHeap::create(&mut pm, Region::new(0, size), &cfg).unwrap();
        pm.reset_stats();
        let p = h.alloc(&mut pm, &[7; 40]).unwrap();
        let st = pm.stats();
        assert_eq!((st.flushes, st.fences, st.atomic_writes), (2, 2, 1));
        pm.reset_stats();
        h.free(&mut pm, p).unwrap();
        let st = pm.stats();
        assert_eq!((st.flushes, st.fences, st.atomic_writes), (1, 1, 1));
    }

    #[test]
    fn read_view_reads_concurrently() {
        let (mut pm, mut h, _) = setup(32 * 1024);
        let p = h.alloc(&mut pm, b"shared read").unwrap();
        let view = h.read_view();
        let r = pm.read_handle();
        let got = std::thread::scope(|s| s.spawn(|| view.read(&r, p).unwrap()).join().unwrap());
        assert_eq!(got, b"shared read");
        assert!(view.is_allocated(&r, p));
    }
}
