//! A crash-consistent slab allocator for persistent memory.
//!
//! Group hashing stores fixed-size cells; real key-value systems also
//! need somewhere to put *variable-size* values. This allocator extends
//! the paper's consistency idiom — *data first, then one failure-atomic
//! 8-byte bitmap commit* — from hash cells to allocation:
//!
//! * the region is divided into **slabs**, one per size class, each a
//!   contiguous array of fixed slots with a persistent occupancy bitmap
//!   (the same [`PmemBitmap`] the tables use);
//! * `alloc` writes the blob (length prefix + bytes) into a free slot,
//!   persists it, and only then atomically sets the slot's bit — a crash
//!   before the commit leaves the slot free and the torn blob
//!   unreachable;
//! * `free` atomically clears the bit; the stale bytes are unreachable
//!   the instant the 8-byte store lands.
//!
//! There is no log and no recovery procedure: the bitmaps are the only
//! metadata and they are always consistent. After a crash, the worst
//! case is a *leak* — a slot whose bit committed but whose owner (e.g. a
//! hash-table entry pointing at it) did not. Owners fix that with a
//! mark-and-sweep over [`PmemAlloc::for_each_allocated`] (see
//! `nvm-kv`'s `gc`).
//!
//! # Example
//!
//! ```
//! use nvm_alloc::{AllocConfig, PmemAlloc};
//! use nvm_pmem::{Pmem, Region, SimConfig, SimPmem};
//!
//! let cfg = AllocConfig::balanced(64 * 1024);
//! let size = PmemAlloc::required_size(&cfg);
//! let mut pm = SimPmem::new(size, SimConfig::fast_test());
//! let mut heap = PmemAlloc::create(&mut pm, Region::new(0, size), &cfg).unwrap();
//!
//! let p = heap.alloc(&mut pm, b"hello nvm").unwrap();
//! assert_eq!(heap.read(&pm, p).unwrap(), b"hello nvm");
//! heap.free(&mut pm, p).unwrap();
//! ```

use nvm_pmem::{align_up, Pmem, PmemRead, Region, RegionAllocator, CACHELINE};
use nvm_table::PmemBitmap;

/// Magic word identifying an allocator header ("NVALLOC1").
const MAGIC: u64 = 0x4E56_414C_4C4F_4331;

/// Per-slot length-prefix bytes.
const LEN_PREFIX: usize = 8;

/// Maximum size classes.
const MAX_CLASSES: usize = 12;

/// A persistent pointer: the pool offset of an allocated slot. Stable
/// across re-opens (store it in other persistent structures).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PmemPtr(pub u64);

/// Allocation and geometry errors. Every failure mode is a typed
/// variant — no stringly-typed `Result`s (enforced by the `ci.sh` lint).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// No size class fits a blob this large.
    TooLarge(usize),
    /// The fitting size class is out of slots.
    OutOfMemory,
    /// The pointer does not name an allocated slot.
    BadPointer(PmemPtr),
    /// A config declared zero or more than `MAX_CLASSES` (12) size classes.
    BadClassCount(usize),
    /// A class's slot size is not a multiple of 8 or leaves no blob room.
    BadSlotSize {
        /// Index of the offending class.
        class: usize,
        /// Its declared slot size.
        slot_size: u64,
    },
    /// A class declared zero slots.
    ZeroSlots {
        /// Index of the offending class.
        class: usize,
    },
    /// Class slot sizes are not strictly ascending.
    NonAscendingClasses {
        /// Index of the first out-of-order class.
        class: usize,
    },
    /// The region cannot hold the configured (or persisted) geometry.
    RegionTooSmall {
        /// Bytes the region offers.
        have: usize,
        /// Bytes the geometry needs.
        need: usize,
    },
    /// `open` found no valid allocator header (static description).
    BadHeader(&'static str),
    /// `open` read a class count outside `1..=MAX_CLASSES`.
    CorruptClassCount(u64),
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::TooLarge(n) => write!(f, "blob of {n} bytes exceeds every size class"),
            AllocError::OutOfMemory => write!(f, "size class exhausted"),
            AllocError::BadPointer(p) => write!(f, "invalid persistent pointer {:#x}", p.0),
            AllocError::BadClassCount(n) => {
                write!(f, "need 1..={MAX_CLASSES} size classes, got {n}")
            }
            AllocError::BadSlotSize { class, slot_size } => {
                write!(f, "class {class}: bad slot size {slot_size}")
            }
            AllocError::ZeroSlots { class } => write!(f, "class {class}: zero slots"),
            AllocError::NonAscendingClasses { class } => {
                write!(f, "class {class}: slot sizes must be ascending")
            }
            AllocError::RegionTooSmall { have, need } => {
                write!(f, "region too small: {have} < {need}")
            }
            AllocError::BadHeader(msg) => f.write_str(msg),
            AllocError::CorruptClassCount(n) => write!(f, "corrupt class count {n}"),
        }
    }
}

impl std::error::Error for AllocError {}

/// One size class: fixed `slot_size` (including the 8-byte length
/// prefix), `slots` slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeClass {
    /// Slot width in bytes, including the length prefix. Must be a
    /// multiple of 8.
    pub slot_size: u64,
    /// Number of slots.
    pub slots: u64,
}

impl SizeClass {
    /// Largest blob this class stores.
    pub fn max_blob(&self) -> usize {
        self.slot_size as usize - LEN_PREFIX
    }
}

/// Allocator geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocConfig {
    /// Size classes, ascending `slot_size`.
    pub classes: Vec<SizeClass>,
}

impl AllocConfig {
    /// A general-purpose split of roughly `budget_bytes` of slot storage:
    /// classes of 32/64/128/256/1024/4096-byte slots with byte share
    /// 20/20/20/15/15/10 %.
    pub fn balanced(budget_bytes: u64) -> Self {
        let shares: [(u64, u64); 6] = [
            (32, 20),
            (64, 20),
            (128, 20),
            (256, 15),
            (1024, 15),
            (4096, 10),
        ];
        AllocConfig {
            classes: shares
                .iter()
                .map(|&(size, pct)| SizeClass {
                    slot_size: size,
                    slots: (budget_bytes * pct / 100 / size).max(1),
                })
                .collect(),
        }
    }

    /// Validates geometry.
    pub fn validate(&self) -> Result<(), AllocError> {
        if self.classes.is_empty() || self.classes.len() > MAX_CLASSES {
            return Err(AllocError::BadClassCount(self.classes.len()));
        }
        let mut prev = 0;
        for (i, c) in self.classes.iter().enumerate() {
            if c.slot_size % 8 != 0 || c.slot_size <= LEN_PREFIX as u64 {
                return Err(AllocError::BadSlotSize {
                    class: i,
                    slot_size: c.slot_size,
                });
            }
            if c.slots == 0 {
                return Err(AllocError::ZeroSlots { class: i });
            }
            if c.slot_size <= prev {
                return Err(AllocError::NonAscendingClasses { class: i });
            }
            prev = c.slot_size;
        }
        Ok(())
    }
}

/// Per-class runtime state.
#[derive(Debug, Clone, Copy)]
struct Slab {
    class: SizeClass,
    bitmap: PmemBitmap,
    slots_region: Region,
}

impl Slab {
    fn slot_off(&self, i: u64) -> u64 {
        self.slots_region.off as u64 + i * self.class.slot_size
    }

    /// Slot index of `off`, if it names a slot start in this slab.
    fn slot_of(&self, off: u64) -> Option<u64> {
        let base = self.slots_region.off as u64;
        if off < base {
            return None;
        }
        let rel = off - base;
        let i = rel / self.class.slot_size;
        (i < self.class.slots && rel.is_multiple_of(self.class.slot_size)).then_some(i)
    }
}

/// The allocator. All persistent state lives in its pool region; the
/// struct holds derived geometry and is reconstructed by
/// [`PmemAlloc::open`].
#[derive(Debug, Clone)]
pub struct PmemAlloc {
    slabs: Vec<Slab>,
    region: Region,
    /// Rotating search cursor per class (volatile; purely a performance
    /// hint so allocation doesn't rescan freed prefixes).
    cursors: Vec<u64>,
}

impl PmemAlloc {
    /// Header: magic + class count + per-class (slot_size, slots).
    fn header_len(n_classes: usize) -> usize {
        16 + n_classes * 16
    }

    fn layout(region: Region, config: &AllocConfig) -> (Region, Vec<(Region, Region)>) {
        let mut alloc = RegionAllocator::new(region.off, region.end());
        let header = alloc.alloc_lines(align_up(Self::header_len(config.classes.len()), 8));
        let parts = config
            .classes
            .iter()
            .map(|c| {
                let bm = alloc.alloc_lines(PmemBitmap::region_size(c.slots).max(8));
                let slots = alloc.alloc_lines((c.slot_size * c.slots) as usize);
                (bm, slots)
            })
            .collect();
        (header, parts)
    }

    /// Pool bytes needed for `config`.
    pub fn required_size(config: &AllocConfig) -> usize {
        let mut total = align_up(Self::header_len(config.classes.len()), 8) + CACHELINE;
        for c in &config.classes {
            total += PmemBitmap::region_size(c.slots).max(8) + CACHELINE;
            total += (c.slot_size * c.slots) as usize + CACHELINE;
        }
        total
    }

    fn assemble(region: Region, config: &AllocConfig) -> Self {
        let (_, parts) = Self::layout(region, config);
        let slabs = config
            .classes
            .iter()
            .zip(parts)
            .map(|(&class, (bm, slots))| Slab {
                class,
                bitmap: PmemBitmap::attach(bm, class.slots),
                slots_region: slots,
            })
            .collect::<Vec<_>>();
        let cursors = vec![0; slabs.len()];
        PmemAlloc {
            slabs,
            region,
            cursors,
        }
    }

    /// Creates a fresh allocator in `region`.
    pub fn create<P: Pmem>(
        pm: &mut P,
        region: Region,
        config: &AllocConfig,
    ) -> Result<Self, AllocError> {
        config.validate()?;
        if region.len < Self::required_size(config) {
            return Err(AllocError::RegionTooSmall {
                have: region.len,
                need: Self::required_size(config),
            });
        }
        let (header, parts) = Self::layout(region, config);
        for (c, (bm, _)) in config.classes.iter().zip(&parts) {
            PmemBitmap::create(pm, *bm, c.slots);
        }
        // Header: geometry first, magic last (same discipline as the
        // tables: a header is valid only once fully initialized).
        pm.write_u64(header.off + 8, config.classes.len() as u64);
        for (i, c) in config.classes.iter().enumerate() {
            pm.write_u64(header.off + 16 + i * 16, c.slot_size);
            pm.write_u64(header.off + 24 + i * 16, c.slots);
        }
        pm.persist(header.off, Self::header_len(config.classes.len()));
        pm.atomic_write_u64(header.off, MAGIC);
        pm.persist(header.off, 8);
        Ok(Self::assemble(region, config))
    }

    /// Re-opens an allocator previously created in `region`. Read-only:
    /// any [`PmemRead`] handle suffices.
    pub fn open<R: PmemRead>(pm: &R, region: Region) -> Result<Self, AllocError> {
        let header_off = align_up(region.off, CACHELINE);
        if !region.contains(header_off, 16) {
            return Err(AllocError::BadHeader(
                "region too small for an allocator header",
            ));
        }
        if pm.read_u64(header_off) != MAGIC {
            return Err(AllocError::BadHeader("allocator magic mismatch"));
        }
        let n = pm.read_u64(header_off + 8);
        if n == 0 || n > MAX_CLASSES as u64 {
            return Err(AllocError::CorruptClassCount(n));
        }
        let classes = (0..n as usize)
            .map(|i| SizeClass {
                slot_size: pm.read_u64(header_off + 16 + i * 16),
                slots: pm.read_u64(header_off + 24 + i * 16),
            })
            .collect::<Vec<_>>();
        let config = AllocConfig { classes };
        config.validate()?;
        if region.len < Self::required_size(&config) {
            return Err(AllocError::RegionTooSmall {
                have: region.len,
                need: Self::required_size(&config),
            });
        }
        Ok(Self::assemble(region, &config))
    }

    /// The smallest class fitting `len` blob bytes.
    fn class_for(&self, len: usize) -> Result<usize, AllocError> {
        self.slabs
            .iter()
            .position(|s| s.class.max_blob() >= len)
            .ok_or(AllocError::TooLarge(len))
    }

    /// Allocates and stores `blob`, returning its persistent pointer.
    /// The blob is durable and committed when this returns.
    pub fn alloc<P: Pmem>(&mut self, pm: &mut P, blob: &[u8]) -> Result<PmemPtr, AllocError> {
        let ci = self.class_for(blob.len())?;
        let slab = self.slabs[ci];
        let n = slab.class.slots;
        let start = self.cursors[ci] % n;
        // Rotating first-fit: search [start, n) then [0, start).
        let slot = slab
            .bitmap
            .find_zero_in_range(pm, start, n - start)
            .or_else(|| slab.bitmap.find_zero_in_range(pm, 0, start))
            .ok_or(AllocError::OutOfMemory)?;
        self.cursors[ci] = slot + 1;

        let off = slab.slot_off(slot) as usize;
        // Data first...
        pm.write_u64(off, blob.len() as u64);
        if !blob.is_empty() {
            pm.write(off + LEN_PREFIX, blob);
        }
        pm.persist(off, LEN_PREFIX + blob.len());
        // ...then the atomic commit.
        slab.bitmap.set_and_persist(pm, slot, true);
        Ok(PmemPtr(off as u64))
    }

    /// Resolves `ptr` to its slab and slot, requiring the slot to be
    /// allocated.
    fn resolve<R: PmemRead>(&self, pm: &R, ptr: PmemPtr) -> Result<(usize, u64), AllocError> {
        for (ci, slab) in self.slabs.iter().enumerate() {
            if let Some(slot) = slab.slot_of(ptr.0) {
                if slab.bitmap.get(pm, slot) {
                    return Ok((ci, slot));
                }
                return Err(AllocError::BadPointer(ptr));
            }
        }
        Err(AllocError::BadPointer(ptr))
    }

    /// Reads the blob at `ptr`.
    pub fn read<R: PmemRead>(&self, pm: &R, ptr: PmemPtr) -> Result<Vec<u8>, AllocError> {
        let (ci, _) = self.resolve(pm, ptr)?;
        let len = pm.read_u64(ptr.0 as usize) as usize;
        debug_assert!(len <= self.slabs[ci].class.max_blob());
        let mut buf = vec![0u8; len];
        if len > 0 {
            pm.read(ptr.0 as usize + LEN_PREFIX, &mut buf);
        }
        Ok(buf)
    }

    /// Frees the blob at `ptr` (atomic bitmap clear — the commit point).
    pub fn free<P: Pmem>(&mut self, pm: &mut P, ptr: PmemPtr) -> Result<(), AllocError> {
        let (ci, slot) = self.resolve(pm, ptr)?;
        self.slabs[ci].bitmap.set_and_persist(pm, slot, false);
        self.cursors[ci] = slot; // freed slot becomes the next candidate
        Ok(())
    }

    /// True if `ptr` names a currently-allocated slot.
    pub fn is_allocated<R: PmemRead>(&self, pm: &R, ptr: PmemPtr) -> bool {
        self.resolve(pm, ptr).is_ok()
    }

    /// Visits every allocated slot (for mark-and-sweep by owners).
    pub fn for_each_allocated<R: PmemRead>(&self, pm: &R, mut f: impl FnMut(PmemPtr)) {
        for slab in &self.slabs {
            for slot in 0..slab.class.slots {
                if slab.bitmap.get(pm, slot) {
                    f(PmemPtr(slab.slot_off(slot)));
                }
            }
        }
    }

    /// (allocated slots, total slots) per class.
    pub fn class_usage<R: PmemRead>(&self, pm: &R) -> Vec<(u64, u64)> {
        self.slabs
            .iter()
            .map(|s| (s.bitmap.count_ones(pm), s.class.slots))
            .collect()
    }

    /// Total allocated slots.
    pub fn allocated<R: PmemRead>(&self, pm: &R) -> u64 {
        self.class_usage(pm).iter().map(|&(a, _)| a).sum()
    }

    /// The allocator's pool region.
    pub fn region(&self) -> Region {
        self.region
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_pmem::{CrashResolution, SimConfig, SimPmem};

    fn setup(budget: u64) -> (SimPmem, PmemAlloc, Region) {
        let cfg = AllocConfig::balanced(budget);
        let size = PmemAlloc::required_size(&cfg);
        let mut pm = SimPmem::new(size, SimConfig::fast_test());
        let region = Region::new(0, size);
        let a = PmemAlloc::create(&mut pm, region, &cfg).unwrap();
        (pm, a, region)
    }

    #[test]
    fn roundtrip_various_sizes() {
        let (mut pm, mut a, _) = setup(64 * 1024);
        let blobs: Vec<Vec<u8>> = [0usize, 1, 7, 24, 56, 120, 248, 1000, 4000]
            .iter()
            .map(|&n| (0..n).map(|i| (i * 7) as u8).collect())
            .collect();
        let ptrs: Vec<PmemPtr> = blobs
            .iter()
            .map(|b| a.alloc(&mut pm, b).unwrap())
            .collect();
        for (b, &p) in blobs.iter().zip(&ptrs) {
            assert_eq!(&a.read(&pm, p).unwrap(), b);
        }
        assert_eq!(a.allocated(&pm), blobs.len() as u64);
    }

    #[test]
    fn free_enables_reuse() {
        let (mut pm, mut a, _) = setup(8 * 1024);
        let p1 = a.alloc(&mut pm, &[1u8; 20]).unwrap();
        a.free(&mut pm, p1).unwrap();
        assert!(!a.is_allocated(&pm, p1));
        let p2 = a.alloc(&mut pm, &[2u8; 20]).unwrap();
        assert_eq!(p1, p2, "freed slot should be reused first");
        assert_eq!(a.read(&pm, p2).unwrap(), vec![2u8; 20]);
    }

    #[test]
    fn class_exhaustion_is_reported() {
        let cfg = AllocConfig {
            classes: vec![SizeClass {
                slot_size: 32,
                slots: 4,
            }],
        };
        let size = PmemAlloc::required_size(&cfg);
        let mut pm = SimPmem::new(size, SimConfig::fast_test());
        let mut a = PmemAlloc::create(&mut pm, Region::new(0, size), &cfg).unwrap();
        for i in 0..4 {
            a.alloc(&mut pm, &[i as u8; 10]).unwrap();
        }
        assert_eq!(a.alloc(&mut pm, &[9; 10]), Err(AllocError::OutOfMemory));
        assert_eq!(a.alloc(&mut pm, &[9; 100]), Err(AllocError::TooLarge(100)));
    }

    #[test]
    fn bad_pointers_rejected() {
        let (mut pm, mut a, _) = setup(8 * 1024);
        let p = a.alloc(&mut pm, b"x").unwrap();
        assert!(a.read(&pm, PmemPtr(p.0 + 1)).is_err()); // misaligned
        assert!(a.read(&pm, PmemPtr(3)).is_err()); // header area
        a.free(&mut pm, p).unwrap();
        assert!(a.read(&pm, p).is_err()); // freed
        assert_eq!(a.free(&mut pm, p), Err(AllocError::BadPointer(p)));
    }

    #[test]
    fn reopen_preserves_heap() {
        let (mut pm, mut a, region) = setup(16 * 1024);
        let p = a.alloc(&mut pm, b"persistent blob").unwrap();
        drop(a);
        let a2 = PmemAlloc::open(&pm, region).unwrap();
        assert_eq!(a2.read(&pm, p).unwrap(), b"persistent blob");
        assert_eq!(a2.allocated(&pm), 1);
    }

    #[test]
    fn open_rejects_garbage() {
        let pm = SimPmem::new(4096, SimConfig::fast_test());
        assert!(PmemAlloc::open(&pm, Region::new(0, 4096)).is_err());
    }

    #[test]
    fn uncommitted_alloc_vanishes_on_crash() {
        use nvm_pmem::{run_with_crash, CrashPlan};
        let (pm0, a0, region) = setup(8 * 1024);
        // Crash at every event of an alloc; afterwards the heap is either
        // empty (commit didn't land) or holds exactly the intact blob.
        for at in 0..60 {
            let mut pm = pm0.clone();
            let mut a = a0.clone();
            let base = pm.events();
            pm.set_crash_plan(Some(CrashPlan {
                at_event: base + at,
            }));
            let done = run_with_crash(|| a.alloc(&mut pm, &[0xAB; 40]).unwrap()).is_ok();
            pm.crash(CrashResolution::Random(at));
            let a = PmemAlloc::open(&pm, region).unwrap();
            let mut live = vec![];
            a.for_each_allocated(&pm, |p| live.push(p));
            match live.len() {
                0 => {}
                1 => {
                    assert_eq!(a.read(&pm, live[0]).unwrap(), vec![0xAB; 40]);
                }
                n => panic!("{n} blobs after one alloc (crash at +{at})"),
            }
            if done {
                break;
            }
        }
    }

    #[test]
    fn class_usage_accounts() {
        let (mut pm, mut a, _) = setup(32 * 1024);
        a.alloc(&mut pm, &[0; 10]).unwrap(); // class 0 (32B slots)
        a.alloc(&mut pm, &[0; 10]).unwrap();
        a.alloc(&mut pm, &[0; 100]).unwrap(); // class 2 (128B slots)
        let usage = a.class_usage(&pm);
        assert_eq!(usage[0].0, 2);
        assert_eq!(usage[2].0, 1);
        assert!(usage[1].0 == 0 && usage[3].0 == 0);
    }
}
