//! Server-side observability: per-operation latency histograms and
//! connection counters, shared across worker threads.
//!
//! Latency is measured from the moment a command is parsed off the
//! wire to the moment its reply is queued — for writes that spans the
//! whole group-commit round trip (stage → shared batch → ticket
//! fulfilment), which is exactly the latency a client observes.

use std::sync::atomic::{AtomicU64, Ordering};

use nvm_metrics::{Histogram, Json};

/// Shared, interior-mutable server statistics.
#[derive(Debug)]
pub struct ServerStats {
    /// `get`/`gets` service latency (ns).
    pub get_ns: Histogram,
    /// `set` latency (ns), staging through commit acknowledgement.
    pub set_ns: Histogram,
    /// `delete` latency (ns), same span as `set_ns`.
    pub delete_ns: Histogram,
    /// Connections accepted since start.
    pub conns_accepted: AtomicU64,
    /// Connections closed (either side) since start.
    pub conns_closed: AtomicU64,
    /// Protocol errors answered with `ERROR`/`CLIENT_ERROR`.
    pub protocol_errors: AtomicU64,
}

impl ServerStats {
    pub fn new() -> ServerStats {
        ServerStats {
            get_ns: Histogram::latency_ns(),
            set_ns: Histogram::latency_ns(),
            delete_ns: Histogram::latency_ns(),
            conns_accepted: AtomicU64::new(0),
            conns_closed: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
        }
    }

    pub fn bump_accepted(&self) {
        self.conns_accepted.fetch_add(1, Ordering::Relaxed);
    }

    pub fn bump_closed(&self) {
        self.conns_closed.fetch_add(1, Ordering::Relaxed);
    }

    pub fn bump_protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// JSON snapshot (latencies in nanoseconds).
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.insert("get_ns", self.get_ns.to_json())
            .insert("set_ns", self.set_ns.to_json())
            .insert("delete_ns", self.delete_ns.to_json())
            .insert("conns_accepted", self.conns_accepted.load(Ordering::Relaxed))
            .insert("conns_closed", self.conns_closed.load(Ordering::Relaxed))
            .insert(
                "protocol_errors",
                self.protocol_errors.load(Ordering::Relaxed),
            );
        j
    }
}

impl Default for ServerStats {
    fn default() -> ServerStats {
        ServerStats::new()
    }
}
