//! Incremental memcached-text-protocol parser.
//!
//! The parser is a pure function over a byte buffer: given everything a
//! connection has received so far, it returns either one complete
//! command (plus how many bytes it consumed), `Incomplete` (read more),
//! or an error reply for a malformed line. It never panics on arbitrary
//! bytes and never consumes a partial frame — both properties are
//! proptested — which is what makes split-across-read-boundary frames
//! reassemble correctly: the session just keeps appending and re-parsing.
//!
//! Supported commands (the subset the front door serves):
//!
//! ```text
//! get <key>+\r\n
//! gets <key>+\r\n
//! set <key> <flags> <exptime> <bytes> [noreply]\r\n<data>\r\n
//! delete <key> [noreply]\r\n
//! stats\r\n
//! version\r\n
//! quit\r\n
//! ```
//!
//! Lines are `\r\n`-terminated; a bare `\n` is tolerated (convenient
//! for `nc` sessions). `exptime` is parsed and ignored — the store has
//! no expiry. `<flags>` round-trip: they are stored as a 4-byte prefix
//! on the value blob.
//!
//! A well-formed `set` the server refuses (payload over [`MAX_VALUE`])
//! still consumes its data block before the error reply, so the
//! connection stays framed — the payload is never parsed as commands.
//! `cas` is recognized the same way (fields validated, data block
//! consumed) but always refused: `gets` reports a store-wide commit
//! epoch, not a per-key token, so optimistic `cas` cannot be enforced.

/// Longest accepted key, per the memcached protocol.
pub const MAX_KEY: usize = 250;
/// Largest accepted value payload.
pub const MAX_VALUE: usize = 1 << 20;
/// Largest declared data block the parser will still buffer and discard
/// when refusing a `set`/`cas` (so the refusal consumes the client's
/// payload and the connection stays in sync, as memcached does).
/// Declaring more than this tears the connection down instead of
/// buffering unboundedly.
pub const MAX_SWALLOW: usize = 4 * MAX_VALUE;
/// Longest accepted command line (a full multi-get of long keys).
pub const MAX_LINE: usize = 8192;

/// One parsed command. Key/data slices borrow from the input buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum Command<'a> {
    /// `get`/`gets` — `with_cas` selects the `gets` reply shape.
    Get {
        keys: Vec<&'a [u8]>,
        with_cas: bool,
    },
    Set {
        key: &'a [u8],
        flags: u32,
        data: &'a [u8],
        noreply: bool,
    },
    Delete {
        key: &'a [u8],
        noreply: bool,
    },
    Stats,
    Version,
    Quit,
}

/// One step of parsing.
#[derive(Debug, PartialEq, Eq)]
pub enum Parsed<'a> {
    /// A complete command occupying the first `consumed` input bytes.
    Cmd { cmd: Command<'a>, consumed: usize },
    /// The buffer holds no complete frame yet.
    Incomplete,
    /// A malformed frame: send `reply`, drop `consumed` bytes, and tear
    /// the connection down if `fatal` (resynchronization is hopeless —
    /// e.g. an over-long line or a data block without its terminator).
    Error {
        reply: &'static [u8],
        consumed: usize,
        fatal: bool,
    },
}

/// Parses the first complete command out of `buf`.
pub fn parse(buf: &[u8]) -> Parsed<'_> {
    let Some(nl) = buf.iter().position(|&b| b == b'\n') else {
        return if buf.len() > MAX_LINE {
            Parsed::Error {
                reply: b"CLIENT_ERROR line too long\r\n",
                consumed: buf.len(),
                fatal: true,
            }
        } else {
            Parsed::Incomplete
        };
    };
    let line_consumed = nl + 1;
    if line_consumed > MAX_LINE {
        return Parsed::Error {
            reply: b"CLIENT_ERROR line too long\r\n",
            consumed: line_consumed,
            fatal: true,
        };
    }
    let mut line = &buf[..nl];
    if line.last() == Some(&b'\r') {
        line = &line[..line.len() - 1];
    }
    let mut tokens = line
        .split(|&b| b == b' ')
        .filter(|t| !t.is_empty());
    let Some(verb) = tokens.next() else {
        // Empty line: consume it quietly (nc users hitting return).
        return Parsed::Error {
            reply: b"",
            consumed: line_consumed,
            fatal: false,
        };
    };
    match verb {
        b"get" | b"gets" => {
            let keys: Vec<&[u8]> = tokens.collect();
            if keys.is_empty() || keys.iter().any(|k| k.len() > MAX_KEY) {
                return client_error(line_consumed);
            }
            Parsed::Cmd {
                cmd: Command::Get {
                    keys,
                    with_cas: verb == b"gets",
                },
                consumed: line_consumed,
            }
        }
        b"set" | b"cas" => {
            let is_cas = verb == b"cas";
            let (Some(key), Some(flags), Some(_exptime), Some(bytes)) =
                (tokens.next(), tokens.next(), tokens.next(), tokens.next())
            else {
                return client_error(line_consumed);
            };
            if is_cas {
                // `cas <key> <flags> <exptime> <bytes> <cas unique>`.
                let Some(id) = tokens.next() else {
                    return client_error(line_consumed);
                };
                if parse_u64(id).is_none() {
                    return client_error(line_consumed);
                }
            }
            let noreply = match tokens.next() {
                None => false,
                Some(b"noreply") => true,
                Some(_) => return client_error(line_consumed),
            };
            if tokens.next().is_some() || key.len() > MAX_KEY {
                return client_error(line_consumed);
            }
            let Some(flags) = parse_u64(flags).and_then(|f| u32::try_from(f).ok()) else {
                return client_error(line_consumed);
            };
            let Some(bytes) = parse_u64(bytes).map(|b| b as usize) else {
                return client_error(line_consumed);
            };
            if bytes > MAX_SWALLOW {
                // Too large to even buffer-and-discard; resync is
                // hopeless without unbounded memory, so tear down.
                return Parsed::Error {
                    reply: b"SERVER_ERROR object too large for cache\r\n",
                    consumed: line_consumed,
                    fatal: true,
                };
            }
            // The data block: `bytes` payload + its own \r\n terminator.
            // Waited for (and consumed) even when the command is about
            // to be refused — otherwise the payload that follows would
            // be parsed as commands, desyncing the connection.
            let total = line_consumed + bytes + 2;
            if buf.len() < total {
                return Parsed::Incomplete;
            }
            if &buf[line_consumed + bytes..total] != b"\r\n" {
                return Parsed::Error {
                    reply: b"CLIENT_ERROR bad data chunk\r\n",
                    consumed: total,
                    fatal: true,
                };
            }
            if is_cas {
                // `gets` hands out a store-wide commit epoch, not a
                // per-key token, so optimistic `cas` cannot be
                // enforced; refuse it clearly (data block consumed).
                return Parsed::Error {
                    reply: b"SERVER_ERROR cas not supported\r\n",
                    consumed: total,
                    fatal: false,
                };
            }
            if bytes > MAX_VALUE {
                return Parsed::Error {
                    reply: b"SERVER_ERROR object too large for cache\r\n",
                    consumed: total,
                    fatal: false,
                };
            }
            let data = &buf[line_consumed..line_consumed + bytes];
            Parsed::Cmd {
                cmd: Command::Set {
                    key,
                    flags,
                    data,
                    noreply,
                },
                consumed: total,
            }
        }
        b"delete" => {
            let Some(key) = tokens.next() else {
                return client_error(line_consumed);
            };
            let noreply = match tokens.next() {
                None => false,
                Some(b"noreply") => true,
                Some(_) => return client_error(line_consumed),
            };
            if tokens.next().is_some() || key.len() > MAX_KEY {
                return client_error(line_consumed);
            }
            Parsed::Cmd {
                cmd: Command::Delete { key, noreply },
                consumed: line_consumed,
            }
        }
        b"stats" => Parsed::Cmd {
            cmd: Command::Stats,
            consumed: line_consumed,
        },
        b"version" => Parsed::Cmd {
            cmd: Command::Version,
            consumed: line_consumed,
        },
        b"quit" => Parsed::Cmd {
            cmd: Command::Quit,
            consumed: line_consumed,
        },
        _ => Parsed::Error {
            reply: b"ERROR\r\n",
            consumed: line_consumed,
            fatal: false,
        },
    }
}

fn client_error(consumed: usize) -> Parsed<'static> {
    Parsed::Error {
        reply: b"CLIENT_ERROR bad command line format\r\n",
        consumed,
        fatal: false,
    }
}

/// Strict decimal parse (no sign, no empty, fits u64).
fn parse_u64(t: &[u8]) -> Option<u64> {
    if t.is_empty() || t.len() > 19 || t.iter().any(|b| !b.is_ascii_digit()) {
        return None;
    }
    let mut v = 0u64;
    for &b in t {
        v = v * 10 + (b - b'0') as u64;
    }
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_set_with_data_block() {
        let buf = b"set k 7 0 5\r\nhello\r\nget k\r\n";
        match parse(buf) {
            Parsed::Cmd { cmd, consumed } => {
                assert_eq!(consumed, 20);
                assert_eq!(
                    cmd,
                    Command::Set {
                        key: b"k",
                        flags: 7,
                        data: b"hello",
                        noreply: false
                    }
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn set_waits_for_its_data_block() {
        assert_eq!(parse(b"set k 0 0 5\r\nhel"), Parsed::Incomplete);
        assert_eq!(parse(b"set k 0 0 5\r\nhello\r"), Parsed::Incomplete);
    }

    #[test]
    fn multi_get_and_gets() {
        match parse(b"gets a bb ccc\r\n") {
            Parsed::Cmd {
                cmd: Command::Get { keys, with_cas },
                ..
            } => {
                assert!(with_cas);
                assert_eq!(keys, vec![&b"a"[..], b"bb", b"ccc"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_verb_is_nonfatal_error() {
        match parse(b"increment x\r\nget k\r\n") {
            Parsed::Error {
                reply,
                consumed,
                fatal,
            } => {
                assert_eq!(reply, b"ERROR\r\n");
                assert_eq!(consumed, 13);
                assert!(!fatal);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bad_data_terminator_is_fatal() {
        match parse(b"set k 0 0 2\r\nab!!") {
            Parsed::Error { fatal, .. } => assert!(fatal),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn oversize_set_swallows_its_data_block() {
        let line = format!("set k 0 0 {}\r\n", MAX_VALUE + 1);
        let mut buf = line.clone().into_bytes();
        buf.extend_from_slice(&vec![b'x'; MAX_VALUE + 1]);
        buf.extend_from_slice(b"\r\nget k\r\n");
        // The payload must not become visible until it has fully
        // arrived, and the error must consume it whole.
        assert_eq!(parse(&buf[..buf.len() / 2]), Parsed::Incomplete);
        let consumed = match parse(&buf) {
            Parsed::Error {
                reply,
                consumed,
                fatal,
            } => {
                assert_eq!(reply, b"SERVER_ERROR object too large for cache\r\n");
                assert_eq!(consumed, line.len() + MAX_VALUE + 1 + 2);
                assert!(!fatal);
                consumed
            }
            other => panic!("{other:?}"),
        };
        // The connection is still framed: the next command parses.
        match parse(&buf[consumed..]) {
            Parsed::Cmd {
                cmd: Command::Get { keys, .. },
                ..
            } => assert_eq!(keys, vec![&b"k"[..]]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn absurdly_large_set_is_fatal() {
        match parse(format!("set k 0 0 {}\r\n", MAX_SWALLOW + 1).as_bytes()) {
            Parsed::Error { fatal, .. } => assert!(fatal),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cas_is_refused_after_consuming_its_data_block() {
        let buf = b"cas k 0 0 5 42\r\nhello\r\nget k\r\n";
        let consumed = match parse(buf) {
            Parsed::Error {
                reply,
                consumed,
                fatal,
            } => {
                assert_eq!(reply, b"SERVER_ERROR cas not supported\r\n");
                assert_eq!(consumed, 23);
                assert!(!fatal);
                consumed
            }
            other => panic!("{other:?}"),
        };
        match parse(&buf[consumed..]) {
            Parsed::Cmd {
                cmd: Command::Get { keys, .. },
                ..
            } => assert_eq!(keys, vec![&b"k"[..]]),
            other => panic!("{other:?}"),
        }
        // Malformed cas lines (no cas id) are plain line errors.
        assert_eq!(parse(b"cas k 0 0 5\r\n"), client_error(13));
    }
}
