//! `nvm-server`: a memcached-text-protocol network front door over the
//! [`nvm_kv::Store`] facade.
//!
//! The server speaks the classic memcached text protocol — `get`,
//! `gets`, multi-key `get`, `set`, `delete`, `stats` — over TCP, and
//! maps every operation onto the unified `Store` API. It codes against
//! the facade *only*: no index, heap, or pmem internals leak into this
//! crate (the CI script lints the imports), which is the point — the
//! facade is sufficient to build a real network service on.
//!
//! What makes it more than a toy shim is the write path: concurrent
//! `set`s from *different connections* are staged into the store's
//! shared group-commit batch and persisted under one fence sequence
//! (2 fences for the value heap + K+2 for the index, amortized over
//! all K writes in the batch), while `get`s ride the lock-free seqlock
//! read path and never wait on writers. See [`server`] for the sweep
//! choreography and [`session`] for the per-connection ordering rules.
//!
//! ```text
//! cargo run --release -p nvm-server -- --addr 127.0.0.1:11211
//! printf 'set greeting 0 0 5\r\nhello\r\nget greeting\r\nquit\r\n' \
//!   | nc 127.0.0.1 11211
//! ```

pub mod protocol;
pub mod server;
pub mod session;
pub mod stats;

pub use server::{serve, ServerConfig, ServerHandle};
pub use session::Session;
pub use stats::ServerStats;
