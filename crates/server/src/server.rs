//! The TCP front door: a nonblocking accept loop plus thread-per-core
//! workers, each sweeping its connections with no locks of its own.
//!
//! ## Cross-connection group commit
//!
//! The interesting part is what a worker does *not* do: it never
//! commits a write by itself. Each sweep it reads every connection,
//! lets the sessions stage their `set`/`delete`s into the store's
//! shared per-shard batch, and only then calls [`Store::pump`] once.
//! All writes that arrived anywhere during the sweep — across
//! connections and across workers — share one group commit, so the
//! per-batch fence cost (2 for the heap stage, K+2 for the index) is
//! amortized over every concurrent client. With `coalesce` off each
//! staged op is pumped individually: the classic one-commit-per-request
//! baseline the harness experiment compares against.
//!
//! Workers own their connections outright (handed over by the accept
//! thread through a channel), so the only shared mutable state is the
//! store itself — contention happens exactly where the batching wants
//! it to, on the staged queues.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

use nvm_kv::prelude::*;
use nvm_pmem::Pmem;

use crate::session::Session;
use crate::stats::ServerStats;

/// How the server binds and schedules.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::addr`] for the result).
    pub addr: String,
    /// Worker threads. Defaults to the machine's parallelism.
    pub workers: usize,
    /// Cross-connection group commit (one pump per sweep). Off = one
    /// commit per write op, the uncoalesced baseline.
    pub coalesce: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            coalesce: true,
        }
    }
}

/// A running server: its bound address, shared stats, and the handle
/// to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    threads: Vec<thread::JoinHandle<()>>,
    stats: Arc<ServerStats>,
}

impl ServerHandle {
    /// The address actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn stats(&self) -> &Arc<ServerStats> {
        &self.stats
    }

    /// Stops accepting, drains the workers, and joins every thread.
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Starts serving `store` per `config`; returns once the listener is
/// bound and the workers are up.
pub fn serve<P>(store: Store<P>, config: &ServerConfig) -> io::Result<ServerHandle>
where
    P: Pmem + Send + 'static,
{
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(ServerStats::new());
    let workers = config.workers.max(1);
    let coalesce = config.coalesce;

    let mut threads = Vec::with_capacity(workers + 1);
    let mut txs = Vec::with_capacity(workers);
    for i in 0..workers {
        let (tx, rx) = mpsc::channel::<TcpStream>();
        txs.push(tx);
        let store = store.clone();
        let stats = Arc::clone(&stats);
        let shutdown = Arc::clone(&shutdown);
        threads.push(
            thread::Builder::new()
                .name(format!("nvm-server-worker-{i}"))
                .spawn(move || worker_loop(store, stats, rx, shutdown, coalesce))?,
        );
    }

    {
        let stats = Arc::clone(&stats);
        let shutdown = Arc::clone(&shutdown);
        threads.push(
            thread::Builder::new()
                .name("nvm-server-accept".to_string())
                .spawn(move || accept_loop(listener, txs, stats, shutdown))?,
        );
    }

    Ok(ServerHandle {
        addr,
        shutdown,
        threads,
        stats,
    })
}

fn accept_loop(
    listener: TcpListener,
    txs: Vec<mpsc::Sender<TcpStream>>,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
) {
    let mut next = 0usize;
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                stats.bump_accepted();
                // Round-robin handoff; a worker that exited drops its
                // receiver and the send just discards the connection.
                let _ = txs[next % txs.len()].send(stream);
                next = next.wrapping_add(1);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(1));
            }
            Err(_) => thread::sleep(Duration::from_millis(1)),
        }
    }
}

struct Conn {
    stream: TcpStream,
    session: Session,
    dead: bool,
}

fn worker_loop<P: Pmem>(
    store: Store<P>,
    stats: Arc<ServerStats>,
    rx: mpsc::Receiver<TcpStream>,
    shutdown: Arc<AtomicBool>,
    coalesce: bool,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut buf = vec![0u8; 64 * 1024];
    while !shutdown.load(Ordering::Relaxed) {
        while let Ok(stream) = rx.try_recv() {
            conns.push(Conn {
                stream,
                session: Session::new(),
                dead: false,
            });
        }

        // Pass 1: ingest bytes and stage writes from every connection.
        let mut activity = false;
        let mut staged = 0usize;
        for conn in conns.iter_mut() {
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(n) => {
                        conn.session.feed(&buf[..n]);
                        activity = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            staged += conn.session.step(&store, &stats, !coalesce);
        }

        // One group commit for everything staged during the sweep —
        // this is where cross-connection fence coalescing happens.
        if coalesce && staged > 0 {
            store.pump();
            activity = true;
        }

        // Pass 2: emit replies for completed commits (and any reads
        // that were queued behind them), then flush to the wire. A
        // command sequence like `set a; get a; set b` stages `b` only
        // here — count it so it gets its own pump below rather than
        // stranding until more traffic arrives.
        let mut late_staged = 0usize;
        for conn in conns.iter_mut() {
            if !conn.dead {
                late_staged += conn.session.step(&store, &stats, !coalesce);
            }
            while !conn.session.output().is_empty() {
                match conn.stream.write(conn.session.output()) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(n) => {
                        conn.session.consume_output(n);
                        activity = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            if conn.session.wants_close() {
                conn.dead = true;
            }
        }
        if coalesce && late_staged > 0 {
            store.pump();
            activity = true; // replies drain on the next sweep
        }

        conns.retain(|c| {
            if c.dead {
                stats.bump_closed();
            }
            !c.dead
        });

        if !activity {
            // Idle: anything in flight will be re-checked next sweep.
            thread::sleep(Duration::from_micros(200));
        }
    }
}
