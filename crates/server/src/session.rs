//! Per-connection protocol session.
//!
//! A [`Session`] owns a connection's input buffer, output buffer, and
//! the FIFO of in-flight write tickets. It is transport-agnostic — the
//! TCP layer feeds it raw bytes and drains its output — which is what
//! lets the conformance tests drive it directly against a [`Store`]
//! with no sockets involved.
//!
//! ## Ordering rules
//!
//! memcached clients rely on replies arriving in request order, and on
//! read-your-writes within one connection. Both fall out of two rules:
//!
//! 1. Writes (`set`/`delete`) are *staged* into the store's shared
//!    group-commit batch and their replies are queued as tickets in a
//!    FIFO; a ticket's reply is emitted only when it reaches the front
//!    of the FIFO *and* its commit has completed.
//! 2. Every other command (`get`, `stats`, errors, `quit`) produces its
//!    reply immediately, so it is only parsed once the ticket FIFO is
//!    empty. A `get` behind a pending `set` therefore waits for that
//!    set's commit — read-your-writes — and its reply cannot overtake
//!    the `STORED`.
//!
//! The session never blocks: if the front ticket is still in flight,
//! [`Session::step`] returns and the server sweeps back later.

use std::collections::VecDeque;
use std::time::Instant;

use nvm_kv::prelude::*;
use nvm_pmem::Pmem;

use crate::protocol::{self, Command, Parsed};
use crate::stats::ServerStats;

/// Compact the input buffer once the consumed prefix crosses this many
/// bytes (and is the majority of the buffer).
const COMPACT_THRESHOLD: usize = 8192;

/// What to say once a staged write's ticket completes.
#[derive(Debug, Clone, Copy)]
enum ReplyKind {
    Set { noreply: bool },
    Delete { noreply: bool },
}

struct Pending {
    ticket: WriteTicket,
    kind: ReplyKind,
    start: Instant,
}

/// One connection's protocol state.
pub struct Session {
    input: Vec<u8>,
    read_pos: usize,
    out: Vec<u8>,
    pending: VecDeque<Pending>,
    quit: bool,
    fatal: bool,
}

impl Session {
    pub fn new() -> Session {
        Session {
            input: Vec::new(),
            read_pos: 0,
            out: Vec::new(),
            pending: VecDeque::new(),
            quit: false,
            fatal: false,
        }
    }

    /// Appends freshly received bytes to the input buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.input.extend_from_slice(bytes);
    }

    /// Bytes queued for the wire. The transport writes some prefix of
    /// this and reports how much via [`Session::consume_output`].
    pub fn output(&self) -> &[u8] {
        &self.out
    }

    pub fn consume_output(&mut self, n: usize) {
        self.out.drain(..n);
    }

    /// Write tickets still awaiting their commit.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// True once the connection should be torn down *and* every queued
    /// reply has been emitted and flushed.
    pub fn wants_close(&self) -> bool {
        (self.quit || self.fatal) && self.pending.is_empty() && self.out.is_empty()
    }

    /// Runs the session forward: emits replies for completed tickets,
    /// then parses and executes as many complete commands as ordering
    /// allows. Returns the number of writes staged this call.
    ///
    /// With `pump_each` the store is pumped after every staged write —
    /// the uncoalesced baseline, one commit per op. Without it the
    /// caller pumps once per sweep, so writes from *all* connections
    /// share one group commit.
    pub fn step<P: Pmem>(
        &mut self,
        store: &Store<P>,
        stats: &ServerStats,
        pump_each: bool,
    ) -> usize {
        self.drain_tickets(stats);
        let mut staged = 0;
        while !self.quit && !self.fatal {
            match protocol::parse(&self.input[self.read_pos..]) {
                Parsed::Incomplete => break,
                Parsed::Error {
                    reply,
                    consumed,
                    fatal,
                } => {
                    if !self.pending.is_empty() {
                        break; // reply order: let the tickets drain first
                    }
                    if !reply.is_empty() {
                        stats.bump_protocol_error();
                        self.out.extend_from_slice(reply);
                    }
                    self.read_pos += consumed;
                    self.fatal |= fatal;
                }
                Parsed::Cmd { cmd, consumed } => match cmd {
                    Command::Set {
                        key,
                        flags,
                        data,
                        noreply,
                    } => {
                        let start = Instant::now();
                        let mut blob = Vec::with_capacity(4 + data.len());
                        blob.extend_from_slice(&flags.to_le_bytes());
                        blob.extend_from_slice(data);
                        let ticket = store.stage_set(key, &blob);
                        self.pending.push_back(Pending {
                            ticket,
                            kind: ReplyKind::Set { noreply },
                            start,
                        });
                        self.read_pos += consumed;
                        staged += 1;
                        if pump_each {
                            store.pump();
                            self.drain_tickets(stats);
                        }
                    }
                    Command::Delete { key, noreply } => {
                        let start = Instant::now();
                        let ticket = store.stage_delete(key);
                        self.pending.push_back(Pending {
                            ticket,
                            kind: ReplyKind::Delete { noreply },
                            start,
                        });
                        self.read_pos += consumed;
                        staged += 1;
                        if pump_each {
                            store.pump();
                            self.drain_tickets(stats);
                        }
                    }
                    Command::Get { keys, with_cas } => {
                        if !self.pending.is_empty() {
                            break; // read-your-writes: wait for commits
                        }
                        let start = Instant::now();
                        // `gets` cas is the store's commit epoch: it
                        // changes whenever any batch commits, which is
                        // a superset of "this key changed" — good
                        // enough for optimistic readers, cheap to keep.
                        let cas = with_cas.then(|| store.counters().batches);
                        let values = store.get_batch(&keys);
                        for (key, value) in keys.iter().zip(&values) {
                            if let Some(blob) = value {
                                write_value_line(&mut self.out, key, blob, cas);
                            }
                        }
                        self.out.extend_from_slice(b"END\r\n");
                        stats.get_ns.record(start.elapsed().as_nanos() as u64);
                        self.read_pos += consumed;
                    }
                    Command::Stats => {
                        if !self.pending.is_empty() {
                            break;
                        }
                        self.read_pos += consumed;
                        self.write_stats(store, stats);
                    }
                    Command::Version => {
                        if !self.pending.is_empty() {
                            break;
                        }
                        self.out.extend_from_slice(
                            concat!("VERSION nvm-server ", env!("CARGO_PKG_VERSION"), "\r\n")
                                .as_bytes(),
                        );
                        self.read_pos += consumed;
                    }
                    Command::Quit => {
                        if !self.pending.is_empty() {
                            break;
                        }
                        self.read_pos += consumed;
                        self.quit = true;
                    }
                },
            }
        }
        self.compact();
        staged
    }

    /// Emits replies for completed tickets at the front of the FIFO.
    fn drain_tickets(&mut self, stats: &ServerStats) {
        while let Some(front) = self.pending.front() {
            let Some(result) = front.ticket.try_result() else {
                break;
            };
            let p = self.pending.pop_front().expect("front exists");
            let elapsed = p.start.elapsed().as_nanos() as u64;
            match p.kind {
                ReplyKind::Set { noreply } => {
                    stats.set_ns.record(elapsed);
                    let reply: &[u8] = match result {
                        Ok(_) => b"STORED\r\n",
                        Err(_) => b"SERVER_ERROR out of memory storing object\r\n",
                    };
                    if !noreply {
                        self.out.extend_from_slice(reply);
                    }
                }
                ReplyKind::Delete { noreply } => {
                    stats.delete_ns.record(elapsed);
                    let reply: &[u8] = match result {
                        Ok(true) => b"DELETED\r\n",
                        Ok(false) => b"NOT_FOUND\r\n",
                        Err(_) => b"SERVER_ERROR delete failed\r\n",
                    };
                    if !noreply {
                        self.out.extend_from_slice(reply);
                    }
                }
            }
        }
    }

    fn write_stats<P: Pmem>(&mut self, store: &Store<P>, stats: &ServerStats) {
        let c = store.counters();
        let pm = store.pmem_stats();
        let mut s = String::new();
        let mut stat = |name: &str, v: String| {
            s.push_str("STAT ");
            s.push_str(name);
            s.push(' ');
            s.push_str(&v);
            s.push_str("\r\n");
        };
        stat("cmd_get", c.gets.to_string());
        stat("cmd_set", c.sets.to_string());
        stat("get_hits", c.get_hits.to_string());
        stat("get_misses", (c.gets - c.get_hits).to_string());
        stat("delete_hits", c.deletes.to_string());
        stat("curr_items", store.len().to_string());
        stat("batches", c.batches.to_string());
        stat("fences", pm.fences.to_string());
        stat(
            "fences_per_set",
            format!("{:.3}", pm.fences as f64 / c.sets.max(1) as f64),
        );
        stat(
            "ops_per_batch",
            format!(
                "{:.2}",
                (c.sets + c.deletes) as f64 / c.batches.max(1) as f64
            ),
        );
        for (name, h) in [
            ("get", &stats.get_ns),
            ("set", &stats.set_ns),
            ("delete", &stats.delete_ns),
        ] {
            stat(&format!("{name}_p50_us"), format!("{:.1}", h.p50() / 1000.0));
            stat(&format!("{name}_p95_us"), format!("{:.1}", h.p95() / 1000.0));
            stat(&format!("{name}_p99_us"), format!("{:.1}", h.p99() / 1000.0));
        }
        s.push_str("END\r\n");
        self.out.extend_from_slice(s.as_bytes());
    }

    /// Reclaims consumed input once it dominates the buffer.
    fn compact(&mut self) {
        if self.read_pos > COMPACT_THRESHOLD && self.read_pos * 2 > self.input.len() {
            self.input.drain(..self.read_pos);
            self.read_pos = 0;
        }
    }
}

impl Default for Session {
    fn default() -> Session {
        Session::new()
    }
}

/// `VALUE <key> <flags> <bytes>[ <cas>]\r\n<data>\r\n`. The 4-byte LE
/// flags prefix the server put on the stored blob is split back off.
fn write_value_line(out: &mut Vec<u8>, key: &[u8], blob: &[u8], cas: Option<u64>) {
    let (flags, data) = if blob.len() >= 4 {
        let f = u32::from_le_bytes([blob[0], blob[1], blob[2], blob[3]]);
        (f, &blob[4..])
    } else {
        // Not server-written (e.g. a pre-existing store); serve as-is.
        (0, blob)
    };
    out.extend_from_slice(b"VALUE ");
    out.extend_from_slice(key);
    match cas {
        Some(cas) => out.extend_from_slice(format!(" {flags} {} {cas}\r\n", data.len()).as_bytes()),
        None => out.extend_from_slice(format!(" {flags} {}\r\n", data.len()).as_bytes()),
    }
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
}
