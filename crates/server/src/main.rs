//! The `nvm-server` binary: builds a [`Store`] over simulated NVM and
//! serves it over TCP until killed.
//!
//! ```text
//! nvm-server [--addr HOST:PORT] [--capacity N] [--avg-value BYTES]
//!            [--shards N] [--workers N] [--latency-ns NS]
//!            [--no-coalesce]
//! ```

use std::thread;
use std::time::Duration;

use nvm_kv::prelude::*;
use nvm_pmem::RealPmem;
use nvm_server::{serve, ServerConfig};

fn main() {
    let mut config = ServerConfig {
        addr: "127.0.0.1:11211".to_string(),
        ..ServerConfig::default()
    };
    let mut capacity: u64 = 1_000_000;
    let mut avg_value: u64 = 64;
    let mut shards: usize = config.workers;
    let mut latency_ns: u64 = 300;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--capacity" => capacity = parse(&value("--capacity")),
            "--avg-value" => avg_value = parse(&value("--avg-value")),
            "--shards" => shards = parse(&value("--shards")),
            "--workers" => config.workers = parse(&value("--workers")),
            "--latency-ns" => latency_ns = parse(&value("--latency-ns")),
            "--no-coalesce" => config.coalesce = false,
            "--help" | "-h" => {
                println!(
                    "nvm-server [--addr HOST:PORT] [--capacity N] [--avg-value BYTES]\n\
                     \x20          [--shards N] [--workers N] [--latency-ns NS] [--no-coalesce]"
                );
                return;
            }
            other => die(&format!("unknown flag {other}")),
        }
    }

    let store = StoreBuilder::new()
        .capacity(capacity, avg_value)
        .shards(shards.max(1))
        .create_with(|_, size| RealPmem::with_write_latency(size, latency_ns))
        .unwrap_or_else(|e| die(&format!("store create failed: {e}")));

    let handle = serve(store, &config)
        .unwrap_or_else(|e| die(&format!("bind {} failed: {e}", config.addr)));
    println!(
        "nvm-server listening on {} ({} workers, {} shards, group commit {})",
        handle.addr(),
        config.workers,
        shards.max(1),
        if config.coalesce { "on" } else { "off" },
    );
    loop {
        thread::sleep(Duration::from_secs(3600));
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("bad numeric value {s:?}")))
}

fn die(msg: &str) -> ! {
    eprintln!("nvm-server: {msg}");
    std::process::exit(2);
}
