//! Property tests for the memcached-text parser.
//!
//! Two invariants carry the whole transport layer:
//!
//! 1. `parse` never panics and always makes progress on arbitrary
//!    bytes — a malicious or corrupted stream cannot wedge or crash a
//!    worker.
//! 2. Framing is split-invariant: chopping a valid command stream at
//!    *any* byte boundaries and re-feeding the pieces yields exactly
//!    the same command sequence as parsing it whole. This is the
//!    property that makes the session's append-and-reparse loop
//!    correct under short TCP reads.

use nvm_server::protocol::{parse, Command, Parsed};
use proptest::prelude::*;

/// Owned mirror of [`Command`] so sequences can be compared after the
/// input buffers are gone.
#[derive(Debug, Clone, PartialEq, Eq)]
enum OwnedCmd {
    Get(Vec<Vec<u8>>, bool),
    Set(Vec<u8>, u32, Vec<u8>, bool),
    Delete(Vec<u8>, bool),
    Stats,
    Version,
    Quit,
    Error(Vec<u8>),
}

fn to_owned_cmd(cmd: &Command<'_>) -> OwnedCmd {
    match cmd {
        Command::Get { keys, with_cas } => {
            OwnedCmd::Get(keys.iter().map(|k| k.to_vec()).collect(), *with_cas)
        }
        Command::Set {
            key,
            flags,
            data,
            noreply,
        } => OwnedCmd::Set(key.to_vec(), *flags, data.to_vec(), *noreply),
        Command::Delete { key, noreply } => OwnedCmd::Delete(key.to_vec(), *noreply),
        Command::Stats => OwnedCmd::Stats,
        Command::Version => OwnedCmd::Version,
        Command::Quit => OwnedCmd::Quit,
    }
}

/// Feeds `chunks` through the same buffer-append / parse / consume loop
/// the session runs, collecting every completed command.
fn collect_chunked(chunks: &[&[u8]]) -> Vec<OwnedCmd> {
    let mut buf: Vec<u8> = Vec::new();
    let mut pos = 0usize;
    let mut cmds = Vec::new();
    for chunk in chunks {
        buf.extend_from_slice(chunk);
        loop {
            match parse(&buf[pos..]) {
                Parsed::Incomplete => break,
                Parsed::Cmd { cmd, consumed } => {
                    cmds.push(to_owned_cmd(&cmd));
                    pos += consumed;
                }
                Parsed::Error {
                    reply,
                    consumed,
                    fatal,
                } => {
                    cmds.push(OwnedCmd::Error(reply.to_vec()));
                    pos += consumed;
                    if fatal {
                        return cmds;
                    }
                }
            }
        }
    }
    cmds
}

/// Renders one generated op as wire bytes.
fn render(op: &GenOp, out: &mut Vec<u8>) {
    match op {
        GenOp::Set { key, flags, data } => {
            out.extend_from_slice(
                format!("set {} {flags} 0 {}\r\n", String::from_utf8_lossy(key), data.len())
                    .as_bytes(),
            );
            out.extend_from_slice(data);
            out.extend_from_slice(b"\r\n");
        }
        GenOp::Get { keys, with_cas } => {
            out.extend_from_slice(if *with_cas { b"gets" } else { b"get" });
            for k in keys {
                out.push(b' ');
                out.extend_from_slice(k);
            }
            out.extend_from_slice(b"\r\n");
        }
        GenOp::Delete { key } => {
            out.extend_from_slice(b"delete ");
            out.extend_from_slice(key);
            out.extend_from_slice(b"\r\n");
        }
        GenOp::Stats => out.extend_from_slice(b"stats\r\n"),
    }
}

#[derive(Debug, Clone)]
enum GenOp {
    Set {
        key: Vec<u8>,
        flags: u32,
        data: Vec<u8>,
    },
    Get {
        keys: Vec<Vec<u8>>,
        with_cas: bool,
    },
    Delete {
        key: Vec<u8>,
    },
    Stats,
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(97u8..123, 1..24)
}

fn op_strategy() -> impl Strategy<Value = GenOp> {
    let set = (key_strategy(), any::<u32>(), prop::collection::vec(any::<u8>(), 0..80))
        .prop_map(|(key, flags, data)| GenOp::Set { key, flags, data });
    let get = (prop::collection::vec(key_strategy(), 1..5), any::<bool>())
        .prop_map(|(keys, with_cas)| GenOp::Get { keys, with_cas });
    let del = key_strategy().prop_map(|key| GenOp::Delete { key });
    let stats = Just(GenOp::Stats);
    prop_oneof![set, get, del, stats]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes never panic the parser, and every non-Incomplete
    /// result consumes at least one byte (the session's parse loop can
    /// never spin in place).
    #[test]
    fn arbitrary_bytes_never_panic_and_always_progress(
        bytes in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        let mut pos = 0usize;
        loop {
            match parse(&bytes[pos..]) {
                Parsed::Incomplete => break,
                Parsed::Cmd { consumed, .. } | Parsed::Error { consumed, .. } => {
                    prop_assert!(consumed > 0, "zero-byte consume at pos {pos}");
                    pos += consumed;
                    prop_assert!(pos <= bytes.len());
                }
            }
        }
    }

    /// A valid command stream parses to the same sequence no matter
    /// where the read boundaries fall. Set payloads are arbitrary
    /// bytes, so data blocks containing `\r\n` and split mid-payload
    /// are both exercised.
    #[test]
    fn split_frames_reassemble_identically(
        ops in prop::collection::vec(op_strategy(), 1..12),
        cuts in prop::collection::vec(any::<u16>(), 0..8),
    ) {
        let mut wire = Vec::new();
        for op in &ops {
            render(op, &mut wire);
        }

        let whole = collect_chunked(&[&wire]);
        prop_assert_eq!(whole.len(), ops.len(), "every rendered op must parse");

        // Cut the stream at arbitrary (sorted, deduped) positions.
        let mut points: Vec<usize> = cuts.iter().map(|&c| c as usize % (wire.len() + 1)).collect();
        points.sort_unstable();
        points.dedup();
        let mut chunks: Vec<&[u8]> = Vec::new();
        let mut prev = 0;
        for &p in &points {
            chunks.push(&wire[prev..p]);
            prev = p;
        }
        chunks.push(&wire[prev..]);

        let pieces = collect_chunked(&chunks);
        prop_assert_eq!(pieces, whole);
    }
}
