//! Conformance: a [`Session`]-driven store behaves exactly like the
//! same operation sequence issued directly against the [`Store`]
//! facade — same replies, same final contents — and a store the server
//! is actively writing recovers cleanly from a crash at any point,
//! with every acknowledged write intact.
//!
//! The session is driven with no sockets: bytes in, bytes out. That
//! keeps the equivalence argument about the protocol/session layer
//! itself, not about TCP.

use std::collections::HashMap;

use nvm_kv::prelude::*;
use nvm_pmem::{
    CrashPlan, CrashResolution, Pmem, SimConfig, SimPmem, run_with_crash,
};
use nvm_server::{ServerStats, Session};

/// One scripted client operation.
#[derive(Debug, Clone)]
enum Op {
    Set { key: Vec<u8>, flags: u32, data: Vec<u8> },
    Get { keys: Vec<Vec<u8>> },
    Delete { key: Vec<u8> },
}

/// Tiny deterministic generator — no clock, no global RNG.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn script(seed: u64, n: usize, key_space: u64) -> Vec<Op> {
    let mut rng = XorShift(seed | 1);
    (0..n)
        .map(|_| {
            let key = |rng: &mut XorShift| format!("key:{:03}", rng.below(key_space)).into_bytes();
            match rng.below(10) {
                0..=4 => {
                    let len = rng.below(120) as usize;
                    let mut data = vec![0u8; len];
                    for b in &mut data {
                        *b = rng.next() as u8; // arbitrary bytes, incl. \r\n
                    }
                    Op::Set {
                        key: key(&mut rng),
                        flags: rng.next() as u32,
                        data,
                    }
                }
                5..=7 => {
                    let k = 1 + rng.below(4) as usize;
                    Op::Get {
                        keys: (0..k).map(|_| key(&mut rng)).collect(),
                    }
                }
                _ => Op::Delete { key: key(&mut rng) },
            }
        })
        .collect()
}

fn render(ops: &[Op]) -> Vec<u8> {
    let mut wire = Vec::new();
    for op in ops {
        match op {
            Op::Set { key, flags, data } => {
                wire.extend_from_slice(
                    format!(
                        "set {} {flags} 0 {}\r\n",
                        String::from_utf8_lossy(key),
                        data.len()
                    )
                    .as_bytes(),
                );
                wire.extend_from_slice(data);
                wire.extend_from_slice(b"\r\n");
            }
            Op::Get { keys } => {
                wire.extend_from_slice(b"get");
                for k in keys {
                    wire.push(b' ');
                    wire.extend_from_slice(k);
                }
                wire.extend_from_slice(b"\r\n");
            }
            Op::Delete { key } => {
                wire.extend_from_slice(b"delete ");
                wire.extend_from_slice(key);
                wire.extend_from_slice(b"\r\n");
            }
        }
    }
    wire
}

/// The replies a correct memcached server gives for `ops`, computed
/// from a plain in-memory model.
fn expected_replies(ops: &[Op]) -> Vec<u8> {
    let mut model: HashMap<Vec<u8>, (u32, Vec<u8>)> = HashMap::new();
    let mut out = Vec::new();
    for op in ops {
        match op {
            Op::Set { key, flags, data } => {
                model.insert(key.clone(), (*flags, data.clone()));
                out.extend_from_slice(b"STORED\r\n");
            }
            Op::Get { keys } => {
                for k in keys {
                    if let Some((flags, data)) = model.get(k) {
                        out.extend_from_slice(
                            format!(
                                "VALUE {} {flags} {}\r\n",
                                String::from_utf8_lossy(k),
                                data.len()
                            )
                            .as_bytes(),
                        );
                        out.extend_from_slice(data);
                        out.extend_from_slice(b"\r\n");
                    }
                }
                out.extend_from_slice(b"END\r\n");
            }
            Op::Delete { key } => {
                out.extend_from_slice(if model.remove(key).is_some() {
                    b"DELETED\r\n".as_slice()
                } else {
                    b"NOT_FOUND\r\n".as_slice()
                });
            }
        }
    }
    out
}

/// Drives the session until every byte is parsed and every ticket has
/// its reply, pumping the store whenever work is staged.
fn run_to_quiescence<P: Pmem>(session: &mut Session, store: &Store<P>, stats: &ServerStats) {
    loop {
        let staged = session.step(store, stats, false);
        if session.in_flight() > 0 {
            store.pump();
            continue;
        }
        if staged == 0 {
            break;
        }
    }
}

#[test]
fn session_replies_and_contents_match_direct_store_calls() {
    let ops = script(0xC0FFEE, 400, 60);
    let builder = StoreBuilder::new().capacity(4096, 160).shards(2);

    // Arm A: through the protocol session.
    let served = builder
        .create_sim(SimConfig::paper_default())
        .expect("create served store");
    let stats = ServerStats::new();
    let mut session = Session::new();
    session.feed(&render(&ops));
    run_to_quiescence(&mut session, &served, &stats);
    assert_eq!(session.in_flight(), 0);

    // Byte-exact reply conformance against the model.
    let expect = expected_replies(&ops);
    assert_eq!(
        session.output(),
        expect.as_slice(),
        "session reply stream must match the memcached model"
    );

    // Arm B: the same sequence as direct facade calls (values carry
    // the same 4-byte flags prefix the server stores).
    let direct = builder
        .create_sim(SimConfig::paper_default())
        .expect("create direct store");
    for op in &ops {
        match op {
            Op::Set { key, flags, data } => {
                let mut blob = flags.to_le_bytes().to_vec();
                blob.extend_from_slice(data);
                direct.set(key, &blob).expect("direct set");
            }
            Op::Get { keys } => {
                let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
                direct.get_batch(&refs);
            }
            Op::Delete { key } => {
                direct.delete(key).expect("direct delete");
            }
        }
    }

    // Final contents must be identical.
    let dump = |s: &Store<SimPmem>| {
        let mut m: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        s.for_each(|k, v| {
            m.insert(k.to_vec(), v.to_vec());
        });
        m
    };
    assert_eq!(dump(&served), dump(&direct));
    served.check_consistency().expect("served store consistent");
}

#[test]
fn oversize_set_payload_is_never_executed_as_commands() {
    let store = StoreBuilder::new()
        .capacity(256, 64)
        .create_sim(SimConfig::fast_test())
        .expect("create");
    let stats = ServerStats::new();
    let mut session = Session::new();
    // An over-MAX_VALUE payload crafted to look like commands: if the
    // refusal failed to consume the data block, the connection would
    // desync and store `sneaky`.
    let payload = b"set sneaky 0 0 2\r\nhi\r\n"
        .repeat(nvm_server::protocol::MAX_VALUE / 22 + 1);
    let mut wire = format!("set big 0 0 {}\r\n", payload.len()).into_bytes();
    wire.extend_from_slice(&payload);
    wire.extend_from_slice(b"\r\nget sneaky big\r\n");
    session.feed(&wire);
    run_to_quiescence(&mut session, &store, &stats);
    assert_eq!(
        session.output(),
        b"SERVER_ERROR object too large for cache\r\nEND\r\n"
    );
    assert_eq!(store.len(), 0, "no part of the refused frame may be stored");
}

#[test]
fn crash_while_serving_recovers_with_acked_writes_intact() {
    let builder = StoreBuilder::new().capacity(2048, 96).seed(7);
    let sim = SimConfig::paper_default();

    // Base load, fully acknowledged before any crash window opens.
    let base_ops: Vec<Op> = (0..24)
        .map(|i| Op::Set {
            key: format!("base:{i:02}").into_bytes(),
            flags: i,
            data: format!("base-value-{i}").into_bytes(),
        })
        .collect();
    let store = builder.create_sim(sim).expect("create");
    {
        let stats = ServerStats::new();
        let mut s = Session::new();
        s.feed(&render(&base_ops));
        run_to_quiescence(&mut s, &store, &stats);
        assert_eq!(s.output(), "STORED\r\n".repeat(24).as_bytes());
    }
    let pools = store.into_pools().ok().expect("sole handle");
    let pm_base = pools.into_iter().next().expect("one shard");

    // The second wave the crash interrupts: new keys plus overwrites.
    let wave: Vec<Op> = (0..12)
        .map(|i| Op::Set {
            key: format!("wave:{i:02}").into_bytes(),
            flags: 100 + i,
            data: format!("wave-value-{i}").into_bytes(),
        })
        .chain((0..6).map(|i| Op::Set {
            key: format!("base:{i:02}").into_bytes(),
            flags: 200 + i,
            data: format!("overwritten-{i}").into_bytes(),
        }))
        .collect();
    let wave_wire = render(&wave);

    // Measure how many pmem events opening takes, then how many the
    // wave takes, on throwaway clones — the simulator is deterministic.
    let (open_span, wave_span) = {
        let pm = pm_base.clone();
        let before_open = pm.events();
        let store = builder.open(vec![pm]).expect("open");
        let after_open = {
            let pools = store.into_pools().ok().expect("sole");
            let pm = pools.into_iter().next().unwrap();
            let e = pm.events();
            let store = builder.open(vec![pm]).expect("reopen");
            let stats = ServerStats::new();
            let mut s = Session::new();
            s.feed(&wave_wire);
            run_to_quiescence(&mut s, &store, &stats);
            let pools = store.into_pools().ok().expect("sole");
            (e, pools.into_iter().next().unwrap().events())
        };
        (after_open.0 - before_open, after_open.1)
    };
    let wave_events = wave_span - (pm_base.events() + 2 * open_span);

    // Crash at a spread of points inside the wave's event window.
    for at in (0..wave_events).step_by((wave_events / 40).max(1) as usize) {
        let mut pm = pm_base.clone();
        pm.set_crash_plan(Some(CrashPlan {
            at_event: pm.events() + open_span + at,
        }));
        let store = builder.open(vec![pm]).expect("open armed");
        let stats = ServerStats::new();
        let mut session = Session::new();
        session.feed(&wave_wire);
        let outcome = run_with_crash(|| {
            run_to_quiescence(&mut session, &store, &stats);
        });

        let mut pools = store.into_pools().ok().expect("sole handle");
        if outcome.is_err() {
            pools[0].crash(CrashResolution::Random(at));
        }
        let store = builder.recover(pools).expect("recover");
        store.check_consistency().expect("consistent after crash");

        for i in 0..24u32 {
            let key = format!("base:{i:02}").into_bytes();
            let got = store.get(&key).unwrap_or_else(|| {
                panic!("acked key {} lost (crash at {at})", String::from_utf8_lossy(&key))
            });
            let (flags, data) = (
                u32::from_le_bytes([got[0], got[1], got[2], got[3]]),
                &got[4..],
            );
            if i < 6 {
                // Overwritten mid-crash: old or new, never torn.
                assert!(
                    (flags == i && data == format!("base-value-{i}").as_bytes())
                        || (flags == 200 + i && data == format!("overwritten-{i}").as_bytes()),
                    "torn value for base:{i:02} at crash {at}: flags={flags}"
                );
            } else {
                assert_eq!(flags, i);
                assert_eq!(data, format!("base-value-{i}").as_bytes());
            }
        }
        for i in 0..12u32 {
            if let Some(got) = store.get(format!("wave:{i:02}").as_bytes()) {
                assert_eq!(&got[4..], format!("wave-value-{i}").as_bytes());
            }
        }
    }
}
