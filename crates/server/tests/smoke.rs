//! Loopback smoke test: a real TCP client session against a served
//! store on an ephemeral port — set / get / multi-get / gets / delete /
//! stats / quit — then a clean shutdown. This is the test ci.sh runs
//! as its server gate.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use nvm_kv::prelude::*;
use nvm_pmem::RealPmem;
use nvm_server::{serve, ServerConfig};

/// Writes `send`, then reads until the reply ends with `terminator`.
fn roundtrip(stream: &mut TcpStream, send: &[u8], terminator: &[u8]) -> Vec<u8> {
    stream.write_all(send).expect("write");
    let mut reply = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                reply.extend_from_slice(&buf[..n]);
                if reply.ends_with(terminator) {
                    break;
                }
            }
            Err(e) => panic!("read failed: {e} (got {:?})", String::from_utf8_lossy(&reply)),
        }
    }
    reply
}

#[test]
fn loopback_session_and_clean_shutdown() {
    let store = StoreBuilder::new()
        .capacity(10_000, 64)
        .shards(2)
        .create_with(|_, size| RealPmem::with_write_latency(size, 0))
        .expect("create store");
    let handle = serve(
        store,
        &ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            coalesce: true,
        },
    )
    .expect("serve");

    let mut c = TcpStream::connect(handle.addr()).expect("connect");
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    // Store two values (one with binary-ish payload), read them back.
    assert_eq!(
        roundtrip(&mut c, b"set alpha 7 0 5\r\nhello\r\n", b"STORED\r\n"),
        b"STORED\r\n"
    );
    assert_eq!(
        roundtrip(&mut c, b"set beta 0 0 4\r\na\r\nb\r\n", b"STORED\r\n"),
        b"STORED\r\n"
    );
    assert_eq!(
        roundtrip(&mut c, b"get alpha\r\n", b"END\r\n"),
        b"VALUE alpha 7 5\r\nhello\r\nEND\r\n"
    );

    // Multi-get preserves key order and skips misses.
    assert_eq!(
        roundtrip(&mut c, b"get alpha missing beta\r\n", b"END\r\n"),
        b"VALUE alpha 7 5\r\nhello\r\nVALUE beta 0 4\r\na\r\nb\r\nEND\r\n"
    );

    // gets carries a cas column (the commit epoch).
    let reply = roundtrip(&mut c, b"gets alpha\r\n", b"END\r\n");
    let text = String::from_utf8_lossy(&reply);
    assert!(
        text.starts_with("VALUE alpha 7 5 "),
        "gets must add a cas column: {text:?}"
    );

    // Pipelined writes in one segment: both acks, in order.
    assert_eq!(
        roundtrip(
            &mut c,
            b"set p1 0 0 1\r\nx\r\nset p2 0 0 1\r\ny\r\n",
            b"STORED\r\nSTORED\r\n"
        ),
        b"STORED\r\nSTORED\r\n"
    );

    // Delete: hit then miss.
    assert_eq!(
        roundtrip(&mut c, b"delete beta\r\n", b"DELETED\r\n"),
        b"DELETED\r\n"
    );
    assert_eq!(
        roundtrip(&mut c, b"delete beta\r\n", b"NOT_FOUND\r\n"),
        b"NOT_FOUND\r\n"
    );

    // Unknown command answers ERROR without killing the connection.
    assert_eq!(roundtrip(&mut c, b"flush_all\r\n", b"ERROR\r\n"), b"ERROR\r\n");

    // stats reports the counters this session produced.
    let reply = roundtrip(&mut c, b"stats\r\n", b"END\r\n");
    let text = String::from_utf8_lossy(&reply);
    assert!(text.contains("STAT cmd_set 4\r\n"), "{text:?}");
    assert!(text.contains("STAT curr_items 3\r\n"), "{text:?}");
    assert!(text.contains("STAT fences "), "{text:?}");

    // quit closes the connection from the server side.
    c.write_all(b"quit\r\n").expect("write quit");
    let mut rest = Vec::new();
    c.read_to_end(&mut rest).expect("peer close");
    assert!(rest.is_empty(), "no reply after quit: {rest:?}");

    // A second connection still works after the first closed.
    let mut c2 = TcpStream::connect(handle.addr()).expect("reconnect");
    c2.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    assert_eq!(
        roundtrip(&mut c2, b"get alpha\r\n", b"END\r\n"),
        b"VALUE alpha 7 5\r\nhello\r\nEND\r\n"
    );
    drop(c2);

    // Clean shutdown: every thread joins.
    handle.shutdown();
}
