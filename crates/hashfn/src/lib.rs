//! Hash functions, digests, and fixed-size key/value traits.
//!
//! Persistent hash tables in this workspace are generic over a key type
//! implementing [`HashKey`] and a value type implementing [`Pod`]. Both are
//! fixed-size, byte-serializable, and `Copy`, because cells live at fixed
//! offsets inside a persistent memory pool.
//!
//! The hashing primitives are implemented from scratch (the workspace builds
//! every substrate it depends on):
//!
//! * [`xxhash64`] — the reference xxHash64 algorithm, validated against the
//!   official test vectors; used as the table hash function.
//! * [`murmur3_x64_128`] — MurmurHash3's 128-bit x64 variant, used when a
//!   second independent 64-bit stream is convenient.
//! * [`splitmix64`] — the SplitMix64 mixer; used to derive per-table seeds
//!   and as a cheap integer finalizer.
//! * [`md5()`](md5()) — RFC 1321 MD5, used by the Fingerprint trace generator to
//!   produce realistic 16-byte content digests.

pub mod md5;
mod mix;
mod murmur;
mod pod;
mod xxh;

pub use md5::{md5, Md5, Md5Digest};
pub use mix::{splitmix64, SplitMix64};
pub use murmur::murmur3_x64_128;
pub use pod::{HashKey, Pod};
pub use xxh::xxhash64;

/// A pair of independent hash functions over the same key type, as used by
/// two-choice schemes (PFHT, path hashing). Group hashing and linear probing
/// use only the first. A third stream exists for metadata that must stay
/// uncorrelated with cell placement (e.g. fingerprint tags).
///
/// All functions are xxHash64 under distinct seeds derived from a single
/// table seed via SplitMix64, so a table's whole hash family is captured by
/// one persisted 8-byte seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashPair {
    seed1: u64,
    seed2: u64,
    seed3: u64,
}

impl HashPair {
    /// Derives all seeds from `table_seed`. The derivation order is part of
    /// the on-NVM format: `seed1` and `seed2` are the first two SplitMix64
    /// outputs, exactly as before `seed3` existed, so existing pools rehash
    /// identically.
    pub fn from_seed(table_seed: u64) -> Self {
        let mut sm = SplitMix64::new(table_seed);
        HashPair {
            seed1: sm.next(),
            seed2: sm.next(),
            seed3: sm.next(),
        }
    }

    /// Primary hash of `key`.
    #[inline]
    pub fn h1<K: HashKey>(&self, key: &K) -> u64 {
        key.hash64(self.seed1)
    }

    /// Secondary hash of `key`, independent of [`HashPair::h1`].
    #[inline]
    pub fn h2<K: HashKey>(&self, key: &K) -> u64 {
        key.hash64(self.seed2)
    }

    /// Tertiary hash of `key`, independent of both placement streams.
    /// Tables derive volatile fingerprint tags from this stream so that a
    /// tag carries information the slot index does not already encode.
    #[inline]
    pub fn h3<K: HashKey>(&self, key: &K) -> u64 {
        key.hash64(self.seed3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_pair_is_deterministic() {
        let p = HashPair::from_seed(42);
        let q = HashPair::from_seed(42);
        assert_eq!(p.h1(&123u64), q.h1(&123u64));
        assert_eq!(p.h2(&123u64), q.h2(&123u64));
    }

    #[test]
    fn hash_pair_streams_differ() {
        let p = HashPair::from_seed(42);
        // The two streams should disagree on essentially every key.
        let disagreements = (0u64..1000).filter(|k| p.h1(k) != p.h2(k)).count();
        assert!(disagreements >= 999);
    }

    #[test]
    fn third_stream_is_independent() {
        let p = HashPair::from_seed(42);
        let vs_h1 = (0u64..1000).filter(|k| p.h3(k) != p.h1(k)).count();
        let vs_h2 = (0u64..1000).filter(|k| p.h3(k) != p.h2(k)).count();
        assert!(vs_h1 >= 999 && vs_h2 >= 999);
    }

    #[test]
    fn different_seeds_differ() {
        let p = HashPair::from_seed(1);
        let q = HashPair::from_seed(2);
        let disagreements = (0u64..1000).filter(|k| p.h1(k) != q.h1(k)).count();
        assert!(disagreements >= 999);
    }
}
