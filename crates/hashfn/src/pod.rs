//! Fixed-size plain-old-data key/value traits.
//!
//! Persistent cells live at fixed offsets in a pmem pool, so keys and values
//! must have a compile-time-known byte width and a stable serialization.
//! All integers serialize little-endian; byte arrays are verbatim.

use crate::xxh::xxhash64;

/// A fixed-size, byte-serializable, copyable value.
///
/// `SIZE` is the serialized width in bytes. `write_to`/`read_from` must
/// round-trip exactly and must touch exactly `SIZE` bytes.
pub trait Pod: Copy + PartialEq + std::fmt::Debug + Send + Sync + 'static {
    /// Serialized width in bytes.
    const SIZE: usize;

    /// Serializes into `buf[..Self::SIZE]`.
    fn write_to(&self, buf: &mut [u8]);

    /// Deserializes from `buf[..Self::SIZE]`.
    fn read_from(buf: &[u8]) -> Self;

    /// The all-zero-bytes value — what an erased persistent cell contains.
    fn zeroed() -> Self;
}

/// A [`Pod`] usable as a hash-table key: equality plus a seeded 64-bit hash.
pub trait HashKey: Pod + Eq {
    /// Seeded 64-bit hash of the key. Implementations must depend on every
    /// key byte and on the seed.
    fn hash64(&self, seed: u64) -> u64;
}

macro_rules! impl_pod_int {
    ($($t:ty),*) => {$(
        impl Pod for $t {
            const SIZE: usize = std::mem::size_of::<$t>();
            #[inline]
            fn write_to(&self, buf: &mut [u8]) {
                buf[..Self::SIZE].copy_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn read_from(buf: &[u8]) -> Self {
                <$t>::from_le_bytes(buf[..Self::SIZE].try_into().unwrap())
            }
            #[inline]
            fn zeroed() -> Self {
                0
            }
        }
        impl HashKey for $t {
            #[inline]
            fn hash64(&self, seed: u64) -> u64 {
                xxhash64(&self.to_le_bytes(), seed)
            }
        }
    )*};
}

impl_pod_int!(u8, u16, u32, u64, u128, i32, i64);

impl<const N: usize> Pod for [u8; N] {
    const SIZE: usize = N;
    #[inline]
    fn write_to(&self, buf: &mut [u8]) {
        buf[..N].copy_from_slice(self);
    }
    #[inline]
    fn read_from(buf: &[u8]) -> Self {
        buf[..N].try_into().unwrap()
    }
    #[inline]
    fn zeroed() -> Self {
        [0; N]
    }
}

impl<const N: usize> HashKey for [u8; N] {
    #[inline]
    fn hash64(&self, seed: u64) -> u64 {
        xxhash64(self, seed)
    }
}

impl Pod for () {
    const SIZE: usize = 0;
    #[inline]
    fn write_to(&self, _buf: &mut [u8]) {}
    #[inline]
    fn read_from(_buf: &[u8]) -> Self {}
    #[inline]
    fn zeroed() -> Self {}
}

/// A pair of pods, laid out first-then-second with no padding.
impl<A: Pod, B: Pod> Pod for (A, B) {
    const SIZE: usize = A::SIZE + B::SIZE;
    #[inline]
    fn write_to(&self, buf: &mut [u8]) {
        self.0.write_to(&mut buf[..A::SIZE]);
        self.1.write_to(&mut buf[A::SIZE..A::SIZE + B::SIZE]);
    }
    #[inline]
    fn read_from(buf: &[u8]) -> Self {
        (A::read_from(&buf[..A::SIZE]), B::read_from(&buf[A::SIZE..]))
    }
    #[inline]
    fn zeroed() -> Self {
        (A::zeroed(), B::zeroed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Pod>(v: T) {
        let mut buf = vec![0u8; T::SIZE];
        v.write_to(&mut buf);
        assert_eq!(T::read_from(&buf), v);
    }

    #[test]
    fn int_roundtrips() {
        roundtrip(0xDEADBEEFu32);
        roundtrip(u64::MAX);
        roundtrip(0x0123_4567_89AB_CDEF_0011_2233_4455_6677u128);
        roundtrip(-42i64);
        roundtrip(0xA5u8);
    }

    #[test]
    fn array_roundtrip() {
        roundtrip([1u8, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16]);
    }

    #[test]
    fn tuple_layout_is_concatenation() {
        let v: (u32, u64) = (0x11223344, 0x5566778899AABBCC);
        let mut buf = [0u8; 12];
        v.write_to(&mut buf);
        assert_eq!(&buf[..4], &0x11223344u32.to_le_bytes());
        assert_eq!(&buf[4..], &0x5566778899AABBCCu64.to_le_bytes());
        roundtrip(v);
    }

    #[test]
    fn unit_is_zero_sized() {
        assert_eq!(<() as Pod>::SIZE, 0);
        roundtrip(());
    }

    #[test]
    fn hash_depends_on_all_bytes() {
        let base = [0u8; 16];
        let h0 = base.hash64(1);
        for i in 0..16 {
            let mut k = base;
            k[i] = 1;
            assert_ne!(k.hash64(1), h0, "byte {i} ignored by hash");
        }
    }

    #[test]
    fn int_and_bytes_hash_consistently() {
        // u64 hashes as its LE bytes.
        let k: u64 = 0x0102030405060708;
        assert_eq!(k.hash64(5), k.to_le_bytes().hash64(5));
    }
}
