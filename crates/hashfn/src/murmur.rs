//! MurmurHash3 x64 128-bit variant.
//!
//! Ported from Austin Appleby's public-domain reference implementation
//! (`MurmurHash3_x64_128` in MurmurHash3.cpp) and validated against known
//! digests in the unit tests.

const C1: u64 = 0x87C37B91114253D5;
const C2: u64 = 0x4CF5AD432745937F;

#[inline]
fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xFF51AFD7ED558CCD);
    k ^= k >> 33;
    k = k.wrapping_mul(0xC4CEB9FE1A85EC53);
    k ^= k >> 33;
    k
}

#[inline]
fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().unwrap())
}

/// Computes the 128-bit MurmurHash3 (x64 variant) of `data` under `seed`,
/// returned as `(low, high)` 64-bit halves.
pub fn murmur3_x64_128(data: &[u8], seed: u32) -> (u64, u64) {
    let len = data.len();
    let nblocks = len / 16;

    let mut h1 = seed as u64;
    let mut h2 = seed as u64;

    for i in 0..nblocks {
        let mut k1 = read_u64(&data[i * 16..]);
        let mut k2 = read_u64(&data[i * 16 + 8..]);

        k1 = k1.wrapping_mul(C1).rotate_left(31).wrapping_mul(C2);
        h1 ^= k1;
        h1 = h1
            .rotate_left(27)
            .wrapping_add(h2)
            .wrapping_mul(5)
            .wrapping_add(0x52DCE729);

        k2 = k2.wrapping_mul(C2).rotate_left(33).wrapping_mul(C1);
        h2 ^= k2;
        h2 = h2
            .rotate_left(31)
            .wrapping_add(h1)
            .wrapping_mul(5)
            .wrapping_add(0x38495AB5);
    }

    let tail = &data[nblocks * 16..];
    let mut k1: u64 = 0;
    let mut k2: u64 = 0;
    // Intentional fallthrough ladder, as in the reference implementation.
    let t = tail.len();
    if t >= 9 {
        for i in (8..t).rev() {
            k2 ^= (tail[i] as u64) << ((i - 8) * 8);
        }
        k2 = k2.wrapping_mul(C2).rotate_left(33).wrapping_mul(C1);
        h2 ^= k2;
    }
    if t >= 1 {
        for i in (0..t.min(8)).rev() {
            k1 ^= (tail[i] as u64) << (i * 8);
        }
        k1 = k1.wrapping_mul(C1).rotate_left(31).wrapping_mul(C2);
        h1 ^= k1;
    }

    h1 ^= len as u64;
    h2 ^= len as u64;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);

    (h1, h2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_seed0() {
        // murmur3_x64_128("", 0) == 0 for both halves.
        assert_eq!(murmur3_x64_128(b"", 0), (0, 0));
    }

    #[test]
    fn known_digests() {
        // Widely published vectors for MurmurHash3 x64 128.
        // "The quick brown fox jumps over the lazy dog", seed 0 =>
        // 0x6c1b07bc7bbc4be347939ac4a93c437a (big-endian digest), i.e.
        // h1 = 0xe34bbc7bbc071b6c, h2 = 0x7a433ca9c49a9347 little-endian.
        let (h1, h2) =
            murmur3_x64_128(b"The quick brown fox jumps over the lazy dog", 0);
        assert_eq!(h1, 0xE34BBC7BBC071B6C);
        assert_eq!(h2, 0x7A433CA9C49A9347);
    }

    #[test]
    fn hello_seed0() {
        // "hello", seed 0 => digest cbd8a7b341bd9b02 5b1e906a48ae1d19
        let (h1, h2) = murmur3_x64_128(b"hello", 0);
        assert_eq!(h1, 0xCBD8A7B341BD9B02);
        assert_eq!(h2, 0x5B1E906A48AE1D19);
    }

    #[test]
    fn tail_lengths_all_distinct() {
        let data = [0xABu8; 32];
        let mut seen = std::collections::HashSet::new();
        for len in 0..=32 {
            assert!(seen.insert(murmur3_x64_128(&data[..len], 9)));
        }
    }

    #[test]
    fn seed_sensitivity() {
        assert_ne!(murmur3_x64_128(b"abc", 1), murmur3_x64_128(b"abc", 2));
    }
}
