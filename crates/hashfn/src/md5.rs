//! MD5 message digest (RFC 1321).
//!
//! Used by the Fingerprint trace generator: the paper's trace keys are
//! 16-byte MD5 fingerprints of files from a Mac OS X server snapshot; we
//! regenerate the same key *shape* by MD5-hashing synthetic file identities.
//! MD5 is implemented here in full (streaming API + one-shot helper) and
//! validated against the RFC 1321 test suite.
//!
//! MD5 is cryptographically broken; it is used here only as a trace-faithful
//! fingerprint format, never for security.

/// A 16-byte MD5 digest.
pub type Md5Digest = [u8; 16];

/// Per-round shift amounts (RFC 1321).
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// Sine-derived constants: `K[i] = floor(abs(sin(i+1)) * 2^32)` (RFC 1321).
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613,
    0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193,
    0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d,
    0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
    0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
    0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244,
    0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb,
    0xeb86d391,
];

/// Streaming MD5 state.
#[derive(Debug, Clone)]
pub struct Md5 {
    state: [u32; 4],
    /// Bytes processed so far (mod 2^64), for the length suffix.
    length: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

impl Md5 {
    pub fn new() -> Self {
        Md5 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476],
            length: 0,
            buf: [0; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, mut data: &[u8]) {
        self.length = self.length.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
            if data.is_empty() {
                // The input fit (partially or fully) in the buffer; do NOT
                // fall through to the tail store below, which would clobber
                // `buf_len` with 0 and lose the buffered prefix.
                return;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            self.compress(block.try_into().unwrap());
            data = rest;
        }
        self.buf[..data.len()].copy_from_slice(data);
        self.buf_len = data.len();
    }

    /// Finishes the digest, consuming the state.
    pub fn finalize(mut self) -> Md5Digest {
        let bit_len = self.length.wrapping_mul(8);
        // Padding: 0x80, zeros to 56 mod 64, then the 8-byte bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Manual length append (bypasses the length counter).
        self.buf[56..64].copy_from_slice(&bit_len.to_le_bytes());
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; 16];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for (i, w) in m.iter_mut().enumerate() {
            *w = u32::from_le_bytes(block[i * 4..i * 4 + 4].try_into().unwrap());
        }

        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(K[i])
                    .wrapping_add(m[g])
                    .rotate_left(S[i]),
            );
            a = tmp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

/// One-shot MD5 of `data`.
pub fn md5(data: &[u8]) -> Md5Digest {
    let mut h = Md5::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &Md5Digest) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// The complete RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_suite() {
        let cases: &[(&[u8], &str)] = &[
            (b"", "d41d8cd98f00b204e9800998ecf8427e"),
            (b"a", "0cc175b9c0f1b6a831c399e269772661"),
            (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
            (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                b"abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(&hex(&md5(input)), want, "input {:?}", String::from_utf8_lossy(input));
        }
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0usize, 1, 55, 56, 63, 64, 65, 128, 999, 1000] {
            let mut h = Md5::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), md5(&data), "split at {split}");
        }
    }

    #[test]
    fn byte_at_a_time() {
        let data = b"The quick brown fox jumps over the lazy dog";
        let mut h = Md5::new();
        for &b in data.iter() {
            h.update(&[b]);
        }
        assert_eq!(hex(&h.finalize()), "9e107d9d372bb6826bd81d3542a419d6");
    }

    #[test]
    fn block_boundary_lengths() {
        // Lengths straddling the 55/56-byte padding boundary and the
        // 64-byte block boundary must all differ.
        let data = [0x5Au8; 130];
        let mut seen = std::collections::HashSet::new();
        for len in 50..=70 {
            assert!(seen.insert(md5(&data[..len])), "collision at len {len}");
        }
    }
}
