//! SplitMix64 — seed derivation and cheap integer mixing.
//!
//! Reference: Sebastiano Vigna's public-domain `splitmix64.c`
//! (<https://prng.di.unimi.it/splitmix64.c>), also the seed-stretcher
//! recommended for xoshiro-family generators.

/// One SplitMix64 step: mixes `x + GOLDEN_GAMMA` through the finalizer.
/// Useful as a statically-seeded integer hash.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A SplitMix64 sequence generator, used to derive independent sub-seeds
/// from a single table seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_sequence() {
        // First three outputs of splitmix64 seeded with 0 and with
        // 0x9E3779B97F4A7C15, from the reference implementation.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next(), 0xE220A8397B1DCDAF);
        assert_eq!(sm.next(), 0x6E789E6AA1B965F4);
        assert_eq!(sm.next(), 0x06C45D188009454F);
    }

    #[test]
    fn stateless_matches_stateful() {
        // Both add the golden gamma before finalizing, so the first stateful
        // output from seed s equals the stateless mix of s.
        let mut sm = SplitMix64::new(10);
        assert_eq!(sm.next(), splitmix64(10));
    }

    #[test]
    fn bijective_no_collisions_on_range() {
        use std::collections::HashSet;
        let outs: HashSet<u64> = (0u64..10_000).map(splitmix64).collect();
        assert_eq!(outs.len(), 10_000); // splitmix64 is a bijection
    }
}
