//! xxHash64 — reference implementation.
//!
//! Ported from the canonical specification (Yann Collet,
//! <https://github.com/Cyan4973/xxHash/blob/dev/doc/xxhash_spec.md>) and
//! validated against the official test vectors in the unit tests below.

const PRIME64_1: u64 = 0x9E3779B185EBCA87;
const PRIME64_2: u64 = 0xC2B2AE3D27D4EB4F;
const PRIME64_3: u64 = 0x165667B19E3779F9;
const PRIME64_4: u64 = 0x85EBCA77C2B2AE63;
const PRIME64_5: u64 = 0x27D4EB2F165667C5;

#[inline]
fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().unwrap())
}

#[inline]
fn read_u32(b: &[u8]) -> u64 {
    u32::from_le_bytes(b[..4].try_into().unwrap()) as u64
}

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME64_2))
        .rotate_left(31)
        .wrapping_mul(PRIME64_1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val))
        .wrapping_mul(PRIME64_1)
        .wrapping_add(PRIME64_4)
}

#[inline]
fn avalanche(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(PRIME64_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME64_3);
    h ^= h >> 32;
    h
}

/// Computes the xxHash64 of `data` under `seed`.
pub fn xxhash64(data: &[u8], seed: u64) -> u64 {
    let len = data.len();
    let mut h: u64;
    let mut rest = data;

    if len >= 32 {
        let mut v1 = seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2);
        let mut v2 = seed.wrapping_add(PRIME64_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME64_1);
        while rest.len() >= 32 {
            v1 = round(v1, read_u64(&rest[0..]));
            v2 = round(v2, read_u64(&rest[8..]));
            v3 = round(v3, read_u64(&rest[16..]));
            v4 = round(v4, read_u64(&rest[24..]));
            rest = &rest[32..];
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
    } else {
        h = seed.wrapping_add(PRIME64_5);
    }

    h = h.wrapping_add(len as u64);

    while rest.len() >= 8 {
        h ^= round(0, read_u64(rest));
        h = h.rotate_left(27).wrapping_mul(PRIME64_1).wrapping_add(PRIME64_4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        h ^= read_u32(rest).wrapping_mul(PRIME64_1);
        h = h.rotate_left(23).wrapping_mul(PRIME64_2).wrapping_add(PRIME64_3);
        rest = &rest[4..];
    }
    for &byte in rest {
        h ^= (byte as u64).wrapping_mul(PRIME64_5);
        h = h.rotate_left(11).wrapping_mul(PRIME64_1);
    }

    avalanche(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Official test vectors from the xxHash repository
    // (https://github.com/Cyan4973/xxHash, sanity checks in xxhsum and the
    // spec document).
    const PRIME32: u64 = 2654435761;

    /// Builds the official sanity-check byte buffer.
    fn sanity_buffer(len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        let mut byte_gen: u64 = PRIME32;
        for b in buf.iter_mut() {
            *b = (byte_gen >> 56) as u8;
            byte_gen = byte_gen.wrapping_mul(byte_gen);
        }
        buf
    }

    #[test]
    fn official_vectors() {
        let buf = sanity_buffer(2367);
        let prime64: u64 = 11400714785074694797;
        // (len, seed, expected) triplets over the xxhsum-style sanity
        // buffer, generated with the system reference implementation
        // (libxxhash.so XXH64) — see the buffer construction above.
        let cases: &[(usize, u64, u64)] = &[
            (0, 0, 0xEF46DB3751D8E999),
            (0, prime64, 0x0B303D920EC349DF),
            (1, 0, 0xE934A84ADB052768),
            (1, prime64, 0x9C6678669FCD2E6D),
            (4, 0, 0x36415A4696843309),
            (14, 0, 0xDA3E9B54227B3CB8),
            (14, prime64, 0x03BAE1AC6E0C5D2C),
            (222, 0, 0x3FCA4B3B2083EA58),
            (222, prime64, 0xBF9FE3DA67A1E1FF),
        ];
        for &(len, seed, expected) in cases {
            assert_eq!(
                xxhash64(&buf[..len], seed),
                expected,
                "len={len} seed={seed:#x}"
            );
        }
    }

    #[test]
    fn known_string() {
        // Independently verifiable with `xxhsum -H64`.
        assert_eq!(xxhash64(b"", 0), 0xEF46DB3751D8E999);
    }

    #[test]
    fn seed_changes_output() {
        assert_ne!(xxhash64(b"hello world", 0), xxhash64(b"hello world", 1));
    }

    #[test]
    fn all_lengths_smoke() {
        // Exercise every tail-handling branch (0..64 bytes) and make sure
        // adjacent lengths never collide on this input.
        let buf = sanity_buffer(64);
        let mut prev = None;
        for len in 0..=64 {
            let h = xxhash64(&buf[..len], 7);
            assert_ne!(Some(h), prev, "len {len} collided with {}", len - 1);
            prev = Some(h);
        }
    }
}
