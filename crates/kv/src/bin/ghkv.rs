//! `ghkv` — a small CLI for group-hashing KV pool files.
//!
//! Pools are disk images of the simulated NVM (see `nvm_pmem::SimPmem::
//! save_image`); every command loads the image, applies the operation,
//! and writes the image back — the moral equivalent of mapping a real
//! NVM region per process run.
//!
//! ```text
//! ghkv <pool-file> create [--items N] [--avg-value N]
//! ghkv <pool-file> set <key> <value>
//! ghkv <pool-file> get <key>
//! ghkv <pool-file> del <key>
//! ghkv <pool-file> list [--limit N]
//! ghkv <pool-file> stats
//! ghkv <pool-file> metrics
//! ghkv <pool-file> gc
//! ```

use nvm_kv::{KvConfig, PmemKv};
use nvm_pmem::{PmemRead, Region, SimConfig, SimPmem};
use std::path::Path;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: ghkv <pool-file> <command>\n\
         commands:\n  \
         create [--items N] [--avg-value N]   make a new pool\n  \
         set <key> <value>                    store an entry\n  \
         get <key>                            print an entry's value\n  \
         del <key>                            delete an entry\n  \
         list [--limit N]                     print entries\n  \
         stats                                entry/slot/pool statistics\n  \
         metrics                              observability snapshot (JSON)\n  \
         gc                                   sweep leaked heap slots"
    );
    exit(2)
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("ghkv: {msg}");
    exit(1)
}

fn sim_config() -> SimConfig {
    // CLI runs don't need the cache/latency model's fidelity; the tiny
    // hierarchy keeps load/save snappy on big pools.
    SimConfig::fast_test()
}

fn load(path: &Path) -> (SimPmem, PmemKv<SimPmem>) {
    let mut pm = SimPmem::load_image(path, sim_config())
        .unwrap_or_else(|e| fail(format!("opening {}: {e}", path.display())));
    let region = Region::new(0, pm.len());
    let mut kv = PmemKv::open(&mut pm, region).unwrap_or_else(|e| fail(e));
    // Always run recovery: the previous writer may have been killed.
    kv.recover(&mut pm);
    (pm, kv)
}

fn store(path: &Path, pm: &SimPmem) {
    pm.save_image(path)
        .unwrap_or_else(|e| fail(format!("saving {}: {e}", path.display())));
}

/// Extracts `--flag N` from args, returning the remainder.
fn take_flag(args: &mut Vec<String>, flag: &str, default: u64) -> u64 {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        if pos + 1 >= args.len() {
            fail(format!("missing value for {flag}"));
        }
        let v = args[pos + 1]
            .parse()
            .unwrap_or_else(|e| fail(format!("{flag}: {e}")));
        args.drain(pos..=pos + 1);
        v
    } else {
        default
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        usage();
    }
    let pool = std::path::PathBuf::from(args.remove(0));
    let cmd = args.remove(0);

    match cmd.as_str() {
        "create" => {
            let items = take_flag(&mut args, "--items", 100_000);
            let avg_value = take_flag(&mut args, "--avg-value", 128);
            if !args.is_empty() {
                usage();
            }
            let cfg = KvConfig::for_capacity(items, avg_value);
            let size = PmemKv::<SimPmem>::required_size(&cfg);
            let mut pm = SimPmem::new(size, sim_config());
            PmemKv::create(&mut pm, Region::new(0, size), &cfg).unwrap_or_else(|e| fail(e));
            store(&pool, &pm);
            println!(
                "created {} ({:.1} MiB, ~{items} entries x {avg_value}B values)",
                pool.display(),
                size as f64 / (1 << 20) as f64
            );
        }
        "set" => {
            if args.len() != 2 {
                usage();
            }
            let (mut pm, mut kv) = load(&pool);
            kv.set(&mut pm, args[0].as_bytes(), args[1].as_bytes())
                .unwrap_or_else(|e| fail(e));
            store(&pool, &pm);
        }
        "get" => {
            if args.len() != 1 {
                usage();
            }
            let (pm, kv) = load(&pool);
            match kv.get(&pm, args[0].as_bytes()) {
                Some(v) => println!("{}", String::from_utf8_lossy(&v)),
                None => {
                    eprintln!("ghkv: key not found");
                    exit(1);
                }
            }
        }
        "del" => {
            if args.len() != 1 {
                usage();
            }
            let (mut pm, mut kv) = load(&pool);
            let was_there = kv.delete(&mut pm, args[0].as_bytes());
            store(&pool, &pm);
            if !was_there {
                eprintln!("ghkv: key not found");
                exit(1);
            }
        }
        "list" => {
            let limit = take_flag(&mut args, "--limit", u64::MAX);
            if !args.is_empty() {
                usage();
            }
            let (pm, kv) = load(&pool);
            let mut shown = 0u64;
            kv.for_each(&pm, |k, v| {
                if shown < limit {
                    println!(
                        "{}\t{}",
                        String::from_utf8_lossy(k),
                        String::from_utf8_lossy(v)
                    );
                }
                shown += 1;
            });
            if shown > limit {
                eprintln!("... ({} more)", shown - limit);
            }
        }
        "stats" => {
            if !args.is_empty() {
                usage();
            }
            let (pm, kv) = load(&pool);
            let (entries, slots) = kv.usage(&pm);
            println!("pool:    {} ({} bytes)", pool.display(), pm.len());
            println!("entries: {entries}");
            println!("slots:   {slots} ({} leaked)", slots - entries);
            kv.check_consistency(&pm)
                .map(|_| println!("status:  consistent"))
                .unwrap_or_else(|e| fail(format!("INCONSISTENT: {e}")));
        }
        "metrics" => {
            if !args.is_empty() {
                usage();
            }
            let (pm, kv) = load(&pool);
            // Counters cover this process's session (load + recovery);
            // an image reload starts them from zero.
            print!("{}", kv.metrics(&pm).to_string_pretty());
        }
        "gc" => {
            if !args.is_empty() {
                usage();
            }
            let (mut pm, mut kv) = load(&pool);
            let n = kv.gc(&mut pm);
            store(&pool, &pm);
            println!("reclaimed {n} leaked slots");
        }
        _ => usage(),
    }
}
