//! `ghkv` — a small CLI for group-hashing KV pool files.
//!
//! Pools are disk images of the simulated NVM (see `nvm_pmem::SimPmem::
//! save_image`); every command loads the image into a [`Store`], applies
//! the operation, and writes the image back — the moral equivalent of
//! mapping a real NVM region per process run.
//!
//! ```text
//! ghkv <pool-file> create [--items N] [--avg-value N]
//! ghkv <pool-file> set <key> <value>
//! ghkv <pool-file> get <key>
//! ghkv <pool-file> del <key>
//! ghkv <pool-file> list [--limit N]
//! ghkv <pool-file> stats
//! ghkv <pool-file> metrics
//! ghkv <pool-file> gc
//! ```

use nvm_kv::prelude::*;
use nvm_pmem::{PmemRead, SimConfig, SimPmem};
use std::path::Path;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: ghkv <pool-file> <command>\n\
         commands:\n  \
         create [--items N] [--avg-value N]   make a new pool\n  \
         set <key> <value>                    store an entry\n  \
         get <key>                            print an entry's value\n  \
         del <key>                            delete an entry\n  \
         list [--limit N]                     print entries\n  \
         stats                                entry/slot/pool statistics\n  \
         metrics                              observability snapshot (JSON)\n  \
         gc                                   sweep leaked heap slots"
    );
    exit(2)
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("ghkv: {msg}");
    exit(1)
}

fn sim_config() -> SimConfig {
    // CLI runs don't need the cache/latency model's fidelity; the tiny
    // hierarchy keeps load/save snappy on big pools.
    SimConfig::fast_test()
}

fn load(path: &Path) -> Store<SimPmem> {
    let pm = SimPmem::load_image(path, sim_config())
        .unwrap_or_else(|e| fail(format!("opening {}: {e}", path.display())));
    // Always run recovery: the previous writer may have been killed.
    StoreBuilder::new()
        .recover(vec![pm])
        .unwrap_or_else(|e| fail(e))
}

/// Tears the store down and writes its pool image back to `path`.
fn save(path: &Path, store: Store<SimPmem>) {
    let pools = store
        .into_pools()
        .unwrap_or_else(|_| fail("store still has live handles"));
    pools[0]
        .save_image(path)
        .unwrap_or_else(|e| fail(format!("saving {}: {e}", path.display())));
}

/// Extracts `--flag N` from args, returning the remainder.
fn take_flag(args: &mut Vec<String>, flag: &str, default: u64) -> u64 {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        if pos + 1 >= args.len() {
            fail(format!("missing value for {flag}"));
        }
        let v = args[pos + 1]
            .parse()
            .unwrap_or_else(|e| fail(format!("{flag}: {e}")));
        args.drain(pos..=pos + 1);
        v
    } else {
        default
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        usage();
    }
    let pool = std::path::PathBuf::from(args.remove(0));
    let cmd = args.remove(0);

    match cmd.as_str() {
        "create" => {
            let items = take_flag(&mut args, "--items", 100_000);
            let avg_value = take_flag(&mut args, "--avg-value", 128);
            if !args.is_empty() {
                usage();
            }
            let builder = StoreBuilder::new().capacity(items, avg_value);
            let size = builder.shard_size::<SimPmem>();
            let store = builder
                .create_sim(sim_config())
                .unwrap_or_else(|e| fail(e));
            save(&pool, store);
            println!(
                "created {} ({:.1} MiB, ~{items} entries x {avg_value}B values)",
                pool.display(),
                size as f64 / (1 << 20) as f64
            );
        }
        "set" => {
            if args.len() != 2 {
                usage();
            }
            let store = load(&pool);
            store
                .set(args[0].as_bytes(), args[1].as_bytes())
                .unwrap_or_else(|e| fail(e));
            save(&pool, store);
        }
        "get" => {
            if args.len() != 1 {
                usage();
            }
            let store = load(&pool);
            match store.get(args[0].as_bytes()) {
                Some(v) => println!("{}", String::from_utf8_lossy(&v)),
                None => {
                    eprintln!("ghkv: key not found");
                    exit(1);
                }
            }
        }
        "del" => {
            if args.len() != 1 {
                usage();
            }
            let store = load(&pool);
            let was_there = store
                .delete(args[0].as_bytes())
                .unwrap_or_else(|e| fail(e));
            save(&pool, store);
            if !was_there {
                eprintln!("ghkv: key not found");
                exit(1);
            }
        }
        "list" => {
            let limit = take_flag(&mut args, "--limit", u64::MAX);
            if !args.is_empty() {
                usage();
            }
            let store = load(&pool);
            let mut shown = 0u64;
            store.for_each(|k, v| {
                if shown < limit {
                    println!(
                        "{}\t{}",
                        String::from_utf8_lossy(k),
                        String::from_utf8_lossy(v)
                    );
                }
                shown += 1;
            });
            if shown > limit {
                eprintln!("... ({} more)", shown - limit);
            }
        }
        "stats" => {
            if !args.is_empty() {
                usage();
            }
            let store = load(&pool);
            let (entries, slots) = store.usage();
            println!("entries: {entries}");
            println!("slots:   {slots} ({} leaked)", slots - entries);
            store
                .check_consistency()
                .map(|_| println!("status:  consistent"))
                .unwrap_or_else(|e| fail(format!("INCONSISTENT: {e}")));
            let pools = store
                .into_pools()
                .unwrap_or_else(|_| fail("store still has live handles"));
            println!("pool:    {} ({} bytes)", pool.display(), pools[0].len());
        }
        "metrics" => {
            if !args.is_empty() {
                usage();
            }
            let store = load(&pool);
            // Counters cover this process's session (load + recovery);
            // an image reload starts them from zero.
            print!("{}", store.metrics().to_string_pretty());
        }
        "gc" => {
            if !args.is_empty() {
                usage();
            }
            let store = load(&pool);
            let n = store.gc();
            save(&pool, store);
            println!("reclaimed {n} leaked slots");
        }
        _ => usage(),
    }
}
