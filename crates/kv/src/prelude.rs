//! Everything a `Store` consumer needs, in one import.
//!
//! ```
//! use nvm_kv::prelude::*;
//! ```
//!
//! Re-exports the facade types plus the two index-mode enums from the
//! lower layers, so facade users (the `nvm-server` crate, examples,
//! harness bins) never import `nvm_table`/`group_hash` directly — a
//! boundary `ci.sh` lints.

pub use crate::{
    KvConfig, KvError, KvReadView, Store, StoreBuilder, StoreCounters, StoreError,
    StoreReadView, WriteTicket,
};
pub use group_hash::FpMode;
pub use nvm_table::ConsistencyMode;
