//! The unified `Store` facade: one front door over the KV engine.
//!
//! [`PmemKv`] is an engine: callers thread a `&mut P` pool through every
//! call, pick regions, and sequence recovery themselves. Network servers
//! and most applications want a *store*: a cloneable, thread-safe handle
//! with `set`/`get`/`delete` (+ `*_batch`), built by a [`StoreBuilder`],
//! failing with one typed [`StoreError`]. This module is that facade —
//! and the only public construction path going forward (the engine's
//! `create`/`open` constructors are deprecated in its favor).
//!
//! # Sharding and concurrency
//!
//! A store is `1..n` independent [`PmemKv`] pools ("shards"); keys route
//! by hash. Each shard pairs a writer lock with a seqlock-validated
//! lock-free read path (the [`ShardedGroupHash`] protocol, lifted to
//! whole-store reads): readers probe a [`KvReadView`] through a shared
//! [`PmemRead`] handle and retry iff the shard's sequence number moved —
//! so `get`/`get_batch` never block behind writers.
//!
//! # Cross-caller group commit
//!
//! Writes can be *staged*: [`Store::stage_set`]/[`Store::stage_delete`]
//! enqueue the op and return a [`WriteTicket`] immediately; any caller
//! (typically a server worker between socket sweeps) then drives
//! [`Store::pump`], which elects one leader per shard to drain the whole
//! staged queue as a single [`PmemKv::set_batch`]-style group commit.
//! K concurrent writers' sets thus share one fence-coalesced heap commit
//! (2 fences) plus one index batch (~K+2 fences) — the paper's batching
//! win amortized *across callers*, not just within one caller's batch.
//! The plain [`Store::set`]/[`Store::delete`] wrappers stage, pump, and
//! wait, so single-threaded callers keep sequential semantics.
//!
//! # Commit-boundary observability
//!
//! All externally visible counters ([`Store::counters`], the batch-size
//! histogram, entry counts) update *once per committed batch*, after the
//! fence that makes the batch durable — a sampler can never observe
//! staged-but-uncommitted ops, and successive snapshots differ by whole
//! batches.
//!
//! [`ShardedGroupHash`]: group_hash::ShardedGroupHash

use crate::{KvConfig, KvError, KvReadView, PmemKv};
use group_hash::FpMode;
use nvm_alloc::{AllocError, FragStats};
use nvm_hashfn::murmur3_x64_128;
use nvm_metrics::{HeapCounters, Histogram, MetricsRegistry};
use nvm_pmem::{Pmem, PmemStats, Region, SimConfig, SimPmem};
use nvm_table::{ConsistencyMode, TableError};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::{Condvar, Mutex as StdMutex};

/// Errors from the store facade — one type wrapping every layer's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The engine refused the operation.
    Kv(KvError),
    /// The index table layer failed.
    Table(TableError),
    /// The value heap failed.
    Alloc(AllocError),
    /// Builder/pool geometry problems.
    Layout(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Kv(e) => write!(f, "store: {e}"),
            StoreError::Table(e) => write!(f, "store index: {e}"),
            StoreError::Alloc(e) => write!(f, "store heap: {e}"),
            StoreError::Layout(e) => write!(f, "store layout: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<KvError> for StoreError {
    fn from(e: KvError) -> Self {
        // Keep the most specific layer's error as the variant.
        match e {
            KvError::Heap(a) => StoreError::Alloc(a),
            KvError::Table(t) => StoreError::Table(t),
            other => StoreError::Kv(other),
        }
    }
}

impl From<TableError> for StoreError {
    fn from(e: TableError) -> Self {
        StoreError::Table(e)
    }
}

impl From<AllocError> for StoreError {
    fn from(e: AllocError) -> Self {
        StoreError::Alloc(e)
    }
}

/// The seed the facade routes keys to shards with (distinct from the
/// index's cell-placement seed, so shard routing and in-shard placement
/// stay independent).
const ROUTE_SEED: u32 = 0x5348_4152;

/// A staged write's completion handle. `set` resolves to `Ok(true)`
/// (stored); `delete` to `Ok(present)`. Dropped tickets are harmless —
/// the op still commits.
#[derive(Clone)]
pub struct WriteTicket {
    inner: Arc<TicketInner>,
}

struct TicketInner {
    state: StdMutex<Option<Result<bool, StoreError>>>,
    cv: Condvar,
}

impl WriteTicket {
    fn new() -> WriteTicket {
        WriteTicket {
            inner: Arc::new(TicketInner {
                state: StdMutex::new(None),
                cv: Condvar::new(),
            }),
        }
    }

    fn fulfill(&self, r: Result<bool, StoreError>) {
        let mut s = self
            .inner
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        *s = Some(r);
        self.inner.cv.notify_all();
    }

    /// The result, if the op has committed.
    pub fn try_result(&self) -> Option<Result<bool, StoreError>> {
        self.inner
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Blocks until the op commits (someone must be pumping).
    pub fn wait(&self) -> Result<bool, StoreError> {
        let mut s = self
            .inner
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(r) = s.clone() {
                return r;
            }
            s = self
                .inner
                .cv
                .wait(s)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

enum Op {
    Set(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
    /// Test-only injection: makes the group commit panic mid-batch, to
    /// exercise the leader/seqlock panic guards.
    #[cfg(test)]
    InjectPanic,
}

struct StagedOp {
    op: Op,
    ticket: WriteTicket,
}

#[derive(Default)]
struct StagedQueue {
    ops: Vec<StagedOp>,
    /// True while a leader is draining this shard; stagers that lose the
    /// election return immediately — the leader re-checks the queue
    /// under this lock before stepping down, so no op strands.
    leader_active: bool,
}

struct ShardInner<P: Pmem> {
    pm: P,
    kv: PmemKv<P>,
}

struct StoreShard<P: Pmem> {
    /// Seqlock word: odd while a writer mutates, even when quiescent.
    seq: AtomicU64,
    inner: Mutex<ShardInner<P>>,
    staged: Mutex<StagedQueue>,
    /// Read-only lookup facade (valid across mutations; validated by
    /// `seq`).
    view: KvReadView,
    reader: P::ReadHandle,
}

/// Retry backoff for optimistic readers (spin briefly, then yield so a
/// descheduled writer can finish on few-core machines).
#[inline]
fn backoff(spins: &mut u32) {
    if *spins < 64 {
        *spins += 1;
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

impl<P: Pmem> StoreShard<P> {
    /// Runs `f` under the writer lock with the seqlock marked odd, so
    /// concurrent readers retry instead of observing a half-applied
    /// mutation. The closing parity bump rides a drop guard: if `f`
    /// panics the word still comes back even, so readers resume instead
    /// of spinning forever (torn state they then observe degrades to
    /// misses via the view's torn-blob tolerance).
    fn with_write<T>(&self, f: impl FnOnce(&mut ShardInner<P>) -> T) -> T {
        struct SeqGuard<'a>(&'a AtomicU64);
        impl Drop for SeqGuard<'_> {
            fn drop(&mut self) {
                fence(Ordering::SeqCst);
                self.0.fetch_add(1, Ordering::Release);
            }
        }
        let mut inner = self.inner.lock();
        self.seq.fetch_add(1, Ordering::AcqRel);
        fence(Ordering::SeqCst);
        let _guard = SeqGuard(&self.seq);
        f(&mut inner)
    }

    /// Seqlock-validated lock-free read.
    fn read<T>(&self, f: impl Fn(&KvReadView, &P::ReadHandle) -> T) -> T {
        let mut spins = 0u32;
        loop {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 0 {
                let out = f(&self.view, &self.reader);
                fence(Ordering::Acquire);
                if self.seq.load(Ordering::Relaxed) == s1 {
                    return out;
                }
            }
            backoff(&mut spins);
        }
    }
}

/// Commit-boundary counters (see [`Store::counters`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Committed `set` ops.
    pub sets: u64,
    /// Committed `delete` ops that removed an entry.
    pub deletes: u64,
    /// `get`/`get_batch` lookups answered.
    pub gets: u64,
    /// Lookups that found a value.
    pub get_hits: u64,
    /// Group commits driven by [`Store::pump`] (including the ones the
    /// sync wrappers trigger).
    pub batches: u64,
}

struct StoreCore<P: Pmem> {
    shards: Vec<StoreShard<P>>,
    sets: AtomicU64,
    deletes: AtomicU64,
    gets: AtomicU64,
    get_hits: AtomicU64,
    batches: AtomicU64,
    /// Committed group-commit sizes (ops per batch).
    batch_sizes: Histogram,
}

/// The facade handle. Cheap to clone; all clones share the same shards,
/// so any thread can read, stage writes, or pump commits.
pub struct Store<P: Pmem> {
    core: Arc<StoreCore<P>>,
}

impl<P: Pmem> Clone for Store<P> {
    fn clone(&self) -> Self {
        Store {
            core: Arc::clone(&self.core),
        }
    }
}

impl<P: Pmem> Store<P> {
    fn from_shards(shards: Vec<(P, PmemKv<P>)>) -> Store<P> {
        let shards = shards
            .into_iter()
            .map(|(pm, kv)| StoreShard {
                seq: AtomicU64::new(0),
                view: kv.read_view(),
                reader: pm.read_handle(),
                inner: Mutex::new(ShardInner { pm, kv }),
                staged: Mutex::new(StagedQueue::default()),
            })
            .collect();
        Store {
            core: Arc::new(StoreCore {
                shards,
                sets: AtomicU64::new(0),
                deletes: AtomicU64::new(0),
                gets: AtomicU64::new(0),
                get_hits: AtomicU64::new(0),
                batches: AtomicU64::new(0),
                batch_sizes: Histogram::exponential(1, 2, 14),
            }),
        }
    }

    fn shard_of(&self, key: &[u8]) -> &StoreShard<P> {
        let n = self.core.shards.len();
        let i = if n == 1 {
            0
        } else {
            (murmur3_x64_128(key, ROUTE_SEED).0 % n as u64) as usize
        };
        &self.core.shards[i]
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.core.shards.len()
    }

    // ---- reads (lock-free) ----

    /// Fetches `key`'s value without blocking behind writers.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let out = self.shard_of(key).read(|view, pm| view.get(pm, key));
        self.core.gets.fetch_add(1, Ordering::Relaxed);
        if out.is_some() {
            self.core.get_hits.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    /// Fetches many keys, one answer per key in input order, resolving
    /// each shard's subset through the vectorized prefetch-pipelined
    /// [`KvReadView::get_batch`].
    pub fn get_batch(&self, keys: &[&[u8]]) -> Vec<Option<Vec<u8>>> {
        let n = self.core.shards.len();
        let mut out: Vec<Option<Vec<u8>>> = vec![None; keys.len()];
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, key) in keys.iter().enumerate() {
            let s = if n == 1 {
                0
            } else {
                (murmur3_x64_128(key, ROUTE_SEED).0 % n as u64) as usize
            };
            by_shard[s].push(i);
        }
        for (s, idxs) in by_shard.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            let subset: Vec<&[u8]> = idxs.iter().map(|&i| keys[i]).collect();
            let answers =
                self.core.shards[s].read(|view, pm| view.get_batch(pm, &subset));
            for (&i, a) in idxs.iter().zip(answers) {
                out[i] = a;
            }
        }
        self.core.gets.fetch_add(keys.len() as u64, Ordering::Relaxed);
        let hits = out.iter().filter(|a| a.is_some()).count() as u64;
        self.core.get_hits.fetch_add(hits, Ordering::Relaxed);
        out
    }

    /// Whether `key` is stored.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.get(key).is_some()
    }

    /// A cloneable read-only handle (for reader threads that should not
    /// be able to write).
    pub fn read_view(&self) -> StoreReadView<P> {
        StoreReadView {
            core: Arc::clone(&self.core),
        }
    }

    // ---- staged writes + group commit ----

    fn stage(&self, key: &[u8], op: Op) -> WriteTicket {
        let ticket = WriteTicket::new();
        let shard = self.shard_of(key);
        shard.staged.lock().ops.push(StagedOp {
            op,
            ticket: ticket.clone(),
        });
        ticket
    }

    /// Stages a `set` without committing it; resolve via the ticket
    /// after a [`Store::pump`].
    pub fn stage_set(&self, key: &[u8], value: &[u8]) -> WriteTicket {
        self.stage(key, Op::Set(key.to_vec(), value.to_vec()))
    }

    /// Stages a `delete` without committing it.
    pub fn stage_delete(&self, key: &[u8]) -> WriteTicket {
        self.stage(key, Op::Delete(key.to_vec()))
    }

    /// Drains every shard's staged queue as group commits. One caller
    /// per shard becomes the leader and commits *all* staged ops —
    /// including ones other callers staged after the election — so
    /// concurrent writers' fences coalesce. Returns the number of ops
    /// committed by *this* caller.
    pub fn pump(&self) -> usize {
        let mut committed = 0;
        for shard in &self.core.shards {
            committed += self.pump_shard(shard);
        }
        committed
    }

    fn pump_shard(&self, shard: &StoreShard<P>) -> usize {
        let mut committed = 0;
        loop {
            let batch = {
                let mut q = shard.staged.lock();
                if q.ops.is_empty() || q.leader_active {
                    return committed;
                }
                q.leader_active = true;
                std::mem::take(&mut q.ops)
            };
            // If the commit panics, leadership must still be released
            // (or later stagers never elect a leader) and every drained
            // ticket must still resolve (or its waiters block forever).
            struct LeaderGuard<'a, P: Pmem> {
                shard: &'a StoreShard<P>,
                batch: &'a [StagedOp],
                armed: bool,
            }
            impl<P: Pmem> Drop for LeaderGuard<'_, P> {
                fn drop(&mut self) {
                    if !self.armed {
                        return;
                    }
                    for staged in self.batch {
                        staged.ticket.fulfill(Err(StoreError::Kv(KvError::Corrupt(
                            "group commit panicked".into(),
                        ))));
                    }
                    self.shard.staged.lock().leader_active = false;
                }
            }
            let mut guard = LeaderGuard {
                shard,
                batch: &batch,
                armed: true,
            };
            let results = shard.with_write(|inner| apply_batch(inner, &batch));
            guard.armed = false;
            drop(guard);
            // Commit boundary: the batch is durable; publish counters
            // once, then wake the waiters.
            let mut sets = 0u64;
            let mut dels = 0u64;
            for (staged, r) in batch.iter().zip(&results) {
                match (&staged.op, r) {
                    (Op::Set(..), Ok(true)) => sets += 1,
                    (Op::Delete(_), Ok(true)) => dels += 1,
                    _ => {}
                }
            }
            self.core.sets.fetch_add(sets, Ordering::Relaxed);
            self.core.deletes.fetch_add(dels, Ordering::Relaxed);
            self.core.batches.fetch_add(1, Ordering::Relaxed);
            self.core.batch_sizes.record(batch.len() as u64);
            committed += batch.len();
            for (staged, r) in batch.iter().zip(results) {
                staged.ticket.fulfill(r);
            }
            let mut q = shard.staged.lock();
            q.leader_active = false;
            if q.ops.is_empty() {
                return committed;
            }
            // Ops arrived while we were committing; drain them too
            // rather than strand them behind our stale election.
        }
    }

    /// Stores `key → value`. Stages, pumps, and waits — so concurrent
    /// callers' sets still share one group commit.
    pub fn set(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        let t = self.stage_set(key, value);
        self.pump();
        t.wait().map(|_| ())
    }

    /// Stores many pairs through one staged group commit.
    pub fn set_batch(&self, items: &[(&[u8], &[u8])]) -> Result<(), StoreError> {
        let tickets: Vec<WriteTicket> = items
            .iter()
            .map(|(k, v)| self.stage_set(k, v))
            .collect();
        self.pump();
        for t in tickets {
            t.wait()?;
        }
        Ok(())
    }

    /// Deletes `key`, returning whether it was present.
    pub fn delete(&self, key: &[u8]) -> Result<bool, StoreError> {
        let t = self.stage_delete(key);
        self.pump();
        t.wait()
    }

    /// Deletes many keys through one staged group commit; returns how
    /// many were present and removed.
    pub fn delete_batch(&self, keys: &[&[u8]]) -> Result<usize, StoreError> {
        let tickets: Vec<WriteTicket> =
            keys.iter().map(|k| self.stage_delete(k)).collect();
        self.pump();
        let mut removed = 0;
        for t in tickets {
            if t.wait()? {
                removed += 1;
            }
        }
        Ok(removed)
    }

    // ---- maintenance (writer lock per shard) ----

    /// Post-crash recovery across all shards (index repair + leak
    /// reclamation); returns total leaks reclaimed.
    pub fn recover(&self) -> u64 {
        self.core
            .shards
            .iter()
            .map(|s| s.with_write(|i| i.kv.recover(&mut i.pm)))
            .sum()
    }

    /// Runs the heap GC drainer to completion on every shard; returns
    /// blobs reclaimed.
    pub fn gc(&self) -> u64 {
        self.core
            .shards
            .iter()
            .map(|s| s.with_write(|i| i.kv.gc(&mut i.pm)))
            .sum()
    }

    /// One bounded GC increment per shard; `Ok(true)` while any shard's
    /// pass is incomplete.
    pub fn gc_step(&self, max_slots: u64) -> Result<bool, StoreError> {
        let mut pending = false;
        for s in &self.core.shards {
            pending |= s.with_write(|i| i.kv.gc_step(&mut i.pm, max_slots))?;
        }
        Ok(pending)
    }

    /// Structural validation across all shards.
    pub fn check_consistency(&self) -> Result<(), StoreError> {
        for s in &self.core.shards {
            let inner = s.inner.lock();
            inner.kv.check_consistency(&inner.pm)?;
        }
        Ok(())
    }

    /// Visits every `(key, value)` pair (order unspecified).
    pub fn for_each(&self, mut f: impl FnMut(&[u8], &[u8])) {
        for s in &self.core.shards {
            let inner = s.inner.lock();
            inner.kv.for_each(&inner.pm, &mut f);
        }
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.core
            .shards
            .iter()
            .map(|s| {
                let inner = s.inner.lock();
                inner.kv.len(&inner.pm)
            })
            .sum()
    }

    /// True when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// (index entries, heap slots allocated), summed over shards.
    pub fn usage(&self) -> (u64, u64) {
        let mut entries = 0;
        let mut slots = 0;
        for s in &self.core.shards {
            let inner = s.inner.lock();
            let (e, h) = inner.kv.usage(&inner.pm);
            entries += e;
            slots += h;
        }
        (entries, slots)
    }

    /// Heap fragmentation, summed over shards.
    pub fn frag_stats(&self) -> FragStats {
        let mut total = FragStats::default();
        for s in &self.core.shards {
            let inner = s.inner.lock();
            let f = inner.kv.frag_stats(&inner.pm);
            total.live_blob_bytes += f.live_blob_bytes;
            total.allocated_slot_bytes += f.allocated_slot_bytes;
            total.total_slot_bytes += f.total_slot_bytes;
        }
        total
    }

    // ---- observability (commit-boundary consistent) ----

    /// Op counters. Updated only at group-commit boundaries, so a
    /// sampler never observes staged-but-uncommitted ops.
    pub fn counters(&self) -> StoreCounters {
        StoreCounters {
            sets: self.core.sets.load(Ordering::Relaxed),
            deletes: self.core.deletes.load(Ordering::Relaxed),
            gets: self.core.gets.load(Ordering::Relaxed),
            get_hits: self.core.get_hits.load(Ordering::Relaxed),
            batches: self.core.batches.load(Ordering::Relaxed),
        }
    }

    /// Distribution of committed group-commit sizes (ops per batch).
    pub fn batch_size_histogram(&self) -> &Histogram {
        &self.core.batch_sizes
    }

    /// Cumulative pmem counters summed over all shard pools.
    pub fn pmem_stats(&self) -> PmemStats {
        let mut total = PmemStats::default();
        for s in &self.core.shards {
            let inner = s.inner.lock();
            let st = inner.pm.stats();
            total.reads += st.reads;
            total.bytes_read += st.bytes_read;
            total.writes += st.writes;
            total.bytes_written += st.bytes_written;
            total.atomic_writes += st.atomic_writes;
            total.flushes += st.flushes;
            total.fences += st.fences;
        }
        total
    }

    /// Zeroes every shard pool's pmem counters (experiment warm-up).
    pub fn reset_pmem_stats(&self) {
        for s in &self.core.shards {
            s.inner.lock().pm.reset_stats();
        }
    }

    /// Observability registry: pmem counters summed over shards, heap
    /// counters merged, plus (with the `instrument` feature) shard 0's
    /// index histograms.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.set_pmem("pmem", &self.pmem_stats());
        let mut allocs = 0;
        let mut frees = 0;
        let mut gc_moves = 0;
        let mut leaked = 0;
        let mut slab_writes: Vec<u64> = Vec::new();
        for s in &self.core.shards {
            let inner = s.inner.lock();
            let hs = inner.kv.heap.stats();
            allocs += hs.allocs;
            frees += hs.frees;
            gc_moves += hs.gc_moves;
            leaked += hs.leaked_reclaimed;
            let sw = inner.kv.heap.slab_writes();
            if slab_writes.len() < sw.len() {
                slab_writes.resize(sw.len(), 0);
            }
            for (a, b) in slab_writes.iter_mut().zip(sw) {
                *a += b;
            }
        }
        reg.set_heap(
            "heap",
            &HeapCounters::from_heap(allocs, frees, gc_moves, leaked, &slab_writes),
        );
        if let Some(s) = self.core.shards.first() {
            let inner = s.inner.lock();
            if let Some(i) =
                nvm_table::HashScheme::<P, [u8; 16], u64>::instrumentation(&inner.kv.index)
            {
                reg.set_instrumentation("index", i);
            }
        }
        reg
    }

    /// Tears the facade down and returns the shard pools (image
    /// save/restore, crash harnesses). Fails with `self` unchanged if
    /// other clones are still alive.
    pub fn into_pools(self) -> Result<Vec<P>, Store<P>> {
        match Arc::try_unwrap(self.core) {
            Ok(core) => Ok(core
                .shards
                .into_iter()
                .map(|s| s.inner.into_inner().pm)
                .collect()),
            Err(core) => Err(Store { core }),
        }
    }
}

/// Applies one drained batch inside the shard's write section. Ops run
/// in staged order, with consecutive same-kind runs fused into the
/// engine's fence-coalesced batch calls.
fn apply_batch<P: Pmem>(
    inner: &mut ShardInner<P>,
    batch: &[StagedOp],
) -> Vec<Result<bool, StoreError>> {
    let ShardInner { pm, kv } = inner;
    #[cfg(test)]
    if batch.iter().any(|s| matches!(s.op, Op::InjectPanic)) {
        panic!("injected group-commit panic");
    }
    let mut results: Vec<Result<bool, StoreError>> = Vec::with_capacity(batch.len());
    results.resize(batch.len(), Ok(false));
    let mut i = 0;
    while i < batch.len() {
        let is_set = matches!(batch[i].op, Op::Set(..));
        let mut j = i;
        while j < batch.len() && matches!(batch[j].op, Op::Set(..)) == is_set {
            j += 1;
        }
        if is_set {
            let pairs: Vec<(&[u8], &[u8])> = batch[i..j]
                .iter()
                .map(|s| match &s.op {
                    Op::Set(k, v) => (k.as_slice(), v.as_slice()),
                    _ => unreachable!(),
                })
                .collect();
            match kv.set_batch(pm, &pairs) {
                Ok(()) => {
                    for r in &mut results[i..j] {
                        *r = Ok(true);
                    }
                }
                Err(_) => {
                    // The coalesced commit refused (index/heap full);
                    // retry per-op so each ticket gets its own verdict.
                    for (r, (k, v)) in results[i..j].iter_mut().zip(&pairs) {
                        *r = kv
                            .set(pm, k, v)
                            .map(|()| true)
                            .map_err(StoreError::from);
                    }
                }
            }
        } else {
            // Deletes: answer "was present" in staged order (a key
            // deleted earlier in this run is already gone), then retract
            // the survivors with one fence-coalesced batch.
            let mut gone: HashSet<&[u8]> = HashSet::new();
            let mut doomed: Vec<&[u8]> = Vec::new();
            for (r, s) in results[i..j].iter_mut().zip(&batch[i..j]) {
                let Op::Delete(k) = &s.op else { unreachable!() };
                let present = !gone.contains(k.as_slice()) && kv.get(pm, k).is_some();
                if present {
                    gone.insert(k.as_slice());
                    doomed.push(k.as_slice());
                }
                *r = Ok(present);
            }
            let removed = kv.delete_batch(pm, &doomed);
            debug_assert_eq!(removed, doomed.len());
        }
        i = j;
    }
    results
}

/// A cloneable read-only handle over a [`Store`] (see
/// [`Store::read_view`]).
pub struct StoreReadView<P: Pmem> {
    core: Arc<StoreCore<P>>,
}

impl<P: Pmem> Clone for StoreReadView<P> {
    fn clone(&self) -> Self {
        StoreReadView {
            core: Arc::clone(&self.core),
        }
    }
}

impl<P: Pmem> StoreReadView<P> {
    fn as_store(&self) -> Store<P> {
        Store {
            core: Arc::clone(&self.core),
        }
    }

    /// Fetches `key`'s value without blocking behind writers.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.as_store().get(key)
    }

    /// Fetches many keys, one answer per key in input order.
    pub fn get_batch(&self, keys: &[&[u8]]) -> Vec<Option<Vec<u8>>> {
        self.as_store().get_batch(keys)
    }

    /// Whether `key` is stored.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.get(key).is_some()
    }
}

/// Builds a [`Store`]: capacity, shard count, index modes, then one of
/// the terminal `create*`/`open`/`recover` calls.
///
/// ```
/// use nvm_kv::prelude::*;
/// use nvm_pmem::SimConfig;
///
/// let store = StoreBuilder::new()
///     .capacity(1_000, 64)
///     .create_sim(SimConfig::fast_test())
///     .unwrap();
/// store.set(b"k", b"v").unwrap();
/// assert_eq!(store.get(b"k").as_deref(), Some(&b"v"[..]));
/// ```
#[derive(Debug, Clone)]
pub struct StoreBuilder {
    items: u64,
    avg_value: u64,
    shards: usize,
    fp: FpMode,
    consistency: ConsistencyMode,
    seed: Option<u64>,
}

impl Default for StoreBuilder {
    fn default() -> Self {
        StoreBuilder::new()
    }
}

impl StoreBuilder {
    pub fn new() -> StoreBuilder {
        StoreBuilder {
            items: 4096,
            avg_value: 64,
            shards: 1,
            fp: FpMode::default(),
            consistency: ConsistencyMode::default(),
            seed: None,
        }
    }

    /// Sizes the store for roughly `items` entries of ≤ `avg_value`
    /// bytes (split across shards).
    pub fn capacity(mut self, items: u64, avg_value: u64) -> Self {
        self.items = items;
        self.avg_value = avg_value;
        self
    }

    /// Number of independent shard pools (≥ 1); keys route by hash.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Index fingerprint-tag mode (create-time).
    pub fn fp_mode(mut self, fp: FpMode) -> Self {
        self.fp = fp;
        self
    }

    /// Index consistency mode (create-time).
    pub fn consistency(mut self, consistency: ConsistencyMode) -> Self {
        self.consistency = consistency;
        self
    }

    /// Overrides the hash seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    fn shard_config(&self) -> KvConfig {
        let per_shard = (self.items / self.shards as u64).max(16);
        let mut cfg = KvConfig::for_capacity(per_shard, self.avg_value)
            .with_fp_mode(self.fp)
            .with_consistency(self.consistency);
        if let Some(seed) = self.seed {
            cfg = cfg.with_seed(seed);
        }
        cfg
    }

    /// Pool bytes each shard needs under this configuration.
    pub fn shard_size<P: Pmem>(&self) -> usize {
        PmemKv::<P>::required_size(&self.shard_config())
    }

    /// Creates a fresh store, calling `make_pool(shard, bytes)` once per
    /// shard for its backing pool (which must be at least `bytes` long).
    pub fn create_with<P: Pmem>(
        &self,
        mut make_pool: impl FnMut(usize, usize) -> P,
    ) -> Result<Store<P>, StoreError> {
        let cfg = self.shard_config();
        let size = PmemKv::<P>::required_size(&cfg);
        let mut shards = Vec::with_capacity(self.shards);
        for i in 0..self.shards {
            let mut pm = make_pool(i, size);
            if pm.len() < size {
                return Err(StoreError::Layout(format!(
                    "shard {i} pool too small: {} < {size}",
                    pm.len()
                )));
            }
            let region = Region::new(0, size);
            let kv = PmemKv::create_impl(&mut pm, region, &cfg)?;
            shards.push((pm, kv));
        }
        Ok(Store::from_shards(shards))
    }

    /// Creates a fresh store over simulator pools.
    pub fn create_sim(&self, sim: SimConfig) -> Result<Store<SimPmem>, StoreError> {
        self.create_with(|_, bytes| SimPmem::new(bytes, sim.clone()))
    }

    /// Reopens a store from its shard pools (one per shard, in the order
    /// they were created). Capacity/mode settings on the builder are
    /// ignored — pools are self-describing.
    pub fn open<P: Pmem>(&self, pools: Vec<P>) -> Result<Store<P>, StoreError> {
        if pools.is_empty() {
            return Err(StoreError::Layout("open needs at least one pool".into()));
        }
        let mut shards = Vec::with_capacity(pools.len());
        for mut pm in pools {
            let region = Region::new(0, pm.len());
            let kv = PmemKv::open_impl(&mut pm, region)?;
            shards.push((pm, kv));
        }
        Ok(Store::from_shards(shards))
    }

    /// [`StoreBuilder::open`] followed by [`Store::recover`] — the
    /// post-crash path.
    pub fn recover<P: Pmem>(&self, pools: Vec<P>) -> Result<Store<P>, StoreError> {
        let store = self.open(pools)?;
        store.recover();
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_pmem::{CrashPlan, CrashResolution, SimConfig, SimPmem};

    fn fresh(items: u64) -> Store<SimPmem> {
        StoreBuilder::new()
            .capacity(items, 64)
            .create_sim(SimConfig::fast_test())
            .unwrap()
    }

    #[test]
    fn set_get_delete_roundtrip() {
        let store = fresh(256);
        assert!(store.is_empty());
        store.set(b"alpha", b"1").unwrap();
        store.set(b"beta", b"2").unwrap();
        assert_eq!(store.get(b"alpha").as_deref(), Some(&b"1"[..]));
        assert_eq!(store.get(b"beta").as_deref(), Some(&b"2"[..]));
        assert_eq!(store.get(b"gamma"), None);
        assert_eq!(store.len(), 2);
        assert!(store.delete(b"alpha").unwrap());
        assert!(!store.delete(b"alpha").unwrap());
        assert_eq!(store.get(b"alpha"), None);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn batch_ops_match_singles_across_shards() {
        for shards in [1usize, 3] {
            let store = StoreBuilder::new()
                .capacity(512, 32)
                .shards(shards)
                .create_sim(SimConfig::fast_test())
                .unwrap();
            let keys: Vec<Vec<u8>> =
                (0..100u32).map(|i| format!("k{i}").into_bytes()).collect();
            let vals: Vec<Vec<u8>> = (0..100u32)
                .map(|i| vec![i as u8; (i % 50) as usize])
                .collect();
            let items: Vec<(&[u8], &[u8])> = keys
                .iter()
                .zip(&vals)
                .map(|(k, v)| (k.as_slice(), v.as_slice()))
                .collect();
            store.set_batch(&items).unwrap();
            let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
            let got = store.get_batch(&refs);
            for (g, v) in got.iter().zip(&vals) {
                assert_eq!(g.as_deref(), Some(v.as_slice()));
            }
            assert_eq!(store.len(), 100);
            let doomed: Vec<&[u8]> = refs[..40].to_vec();
            assert_eq!(store.delete_batch(&doomed).unwrap(), 40);
            assert_eq!(store.delete_batch(&doomed).unwrap(), 0);
            assert_eq!(store.len(), 60);
            store.check_consistency().unwrap();
        }
    }

    #[test]
    fn staged_order_set_then_delete_same_key() {
        let store = fresh(128);
        let t1 = store.stage_set(b"k", b"v");
        let t2 = store.stage_delete(b"k");
        let t3 = store.stage_delete(b"k");
        let t4 = store.stage_set(b"k", b"w");
        store.pump();
        assert_eq!(t1.wait(), Ok(true));
        assert_eq!(t2.wait(), Ok(true));
        assert_eq!(t3.wait(), Ok(false));
        assert_eq!(t4.wait(), Ok(true));
        assert_eq!(store.get(b"k").as_deref(), Some(&b"w"[..]));
    }

    #[test]
    fn counters_move_only_at_commit_boundaries() {
        let store = fresh(256);
        let mut tickets = Vec::new();
        for i in 0..10u32 {
            let k = format!("c{i}");
            tickets.push(store.stage_set(k.as_bytes(), b"v"));
        }
        // Staged but uncommitted: nothing visible anywhere.
        let c = store.counters();
        assert_eq!((c.sets, c.batches), (0, 0));
        assert_eq!(store.len(), 0);
        assert!(tickets.iter().all(|t| t.try_result().is_none()));
        store.pump();
        // One commit boundary: everything visible at once.
        let c = store.counters();
        assert_eq!(c.sets, 10);
        assert_eq!(c.batches, 1);
        assert_eq!(store.len(), 10);
        assert_eq!(store.batch_size_histogram().count(), 1);
        assert_eq!(store.batch_size_histogram().max(), Some(10));
        for t in tickets {
            assert_eq!(t.wait(), Ok(true));
        }
    }

    #[test]
    fn staged_batch_coalesces_fences_below_per_op_floor() {
        let store = fresh(512);
        store.reset_pmem_stats();
        let tickets: Vec<WriteTicket> = (0..32u32)
            .map(|i| {
                let k = format!("f{i:03}");
                store.stage_set(k.as_bytes(), &[i as u8; 24])
            })
            .collect();
        store.pump();
        for t in tickets {
            t.wait().unwrap();
        }
        let fences = store.pmem_stats().fences;
        // 32 fresh sets in one group commit: ~2 (heap) + K+2 (index)
        // fences, so just over 1 per op — far under the ~3/op
        // uncoalesced floor the paper argues against.
        assert!(
            (fences as f64) < 1.5 * 32.0,
            "expected coalesced commit, saw {fences} fences for 32 sets"
        );
    }

    #[test]
    fn concurrent_writers_share_commits_and_readers_never_block() {
        let store = StoreBuilder::new()
            .capacity(4096, 32)
            .create_sim(SimConfig::fast_test())
            .unwrap();
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let s = store.clone();
                std::thread::spawn(move || {
                    for i in 0..200u32 {
                        let k = format!("w{w}-{i}");
                        s.set(k.as_bytes(), &[w as u8; 16]).unwrap();
                    }
                })
            })
            .collect();
        let view = store.read_view();
        let reader = std::thread::spawn(move || {
            let mut hits = 0u32;
            for _ in 0..2000 {
                if view.contains(b"w0-0") {
                    hits += 1;
                }
            }
            hits
        });
        for w in writers {
            w.join().unwrap();
        }
        reader.join().unwrap();
        assert_eq!(store.len(), 800);
        let c = store.counters();
        assert_eq!(c.sets, 800);
        // Group commit must have fused at least some concurrent sets
        // (strictly fewer batches than ops is the win; equality would
        // mean zero cross-caller coalescing even under 4 writers).
        assert!(c.batches <= c.sets);
        store.check_consistency().unwrap();
    }

    #[test]
    fn writer_panic_restores_seqlock_parity_for_readers() {
        let store = fresh(128);
        store.set(b"k", b"v").unwrap();
        let shard = &store.core.shards[0];
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shard.with_write(|_| panic!("boom"));
        }));
        assert!(r.is_err());
        // Parity restored: readers must not spin forever.
        assert_eq!(shard.seq.load(Ordering::Relaxed) & 1, 0);
        assert_eq!(store.get(b"k").as_deref(), Some(&b"v"[..]));
        store.set(b"k2", b"w").unwrap();
        assert_eq!(store.get(b"k2").as_deref(), Some(&b"w"[..]));
    }

    #[test]
    fn panicked_commit_releases_leadership_and_unblocks_waiters() {
        let store = fresh(128);
        let shard = &store.core.shards[0];
        let ticket = WriteTicket::new();
        shard.staged.lock().ops.push(StagedOp {
            op: Op::InjectPanic,
            ticket: ticket.clone(),
        });
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| store.pump()));
        assert!(r.is_err());
        // The drained ticket resolves (with an error) instead of
        // stranding its waiter, and leadership is released so later
        // stagers can elect a new leader.
        assert!(matches!(ticket.wait(), Err(StoreError::Kv(KvError::Corrupt(_)))));
        assert!(!shard.staged.lock().leader_active);
        assert_eq!(shard.seq.load(Ordering::Relaxed) & 1, 0);
        // The store keeps serving.
        store.set(b"after", b"ok").unwrap();
        assert_eq!(store.get(b"after").as_deref(), Some(&b"ok"[..]));
    }

    /// Rebuilds the deterministic pre-crash state: 20 base keys stored
    /// and committed, store torn down to its bare pool.
    fn crash_base() -> SimPmem {
        let store = fresh(256);
        for i in 0..20u32 {
            let k = format!("base{i}");
            store.set(k.as_bytes(), &[1u8; 16]).unwrap();
        }
        store.into_pools().ok().unwrap().into_iter().next().unwrap()
    }

    #[test]
    fn survives_crash_mid_pump_and_recovers() {
        // The simulator is deterministic, so reopening the same base
        // state always consumes the same number of mutation events;
        // measure that once, then crash at every sampled event of the
        // staged group commit that follows.
        let open_events = {
            let pm = crash_base();
            let before = pm.events();
            let store = StoreBuilder::new().open(vec![pm]).unwrap();
            let pools = store.into_pools().ok().unwrap();
            pools[0].events() - before
        };
        for at in (0..400u64).step_by(7) {
            let mut pm = crash_base();
            let arm = pm.events() + open_events + at;
            pm.set_crash_plan(Some(CrashPlan { at_event: arm }));
            let store = StoreBuilder::new().open(vec![pm]).unwrap();
            let outcome = nvm_pmem::run_with_crash(|| {
                for i in 0..10u32 {
                    let k = format!("new{i}");
                    store.stage_set(k.as_bytes(), &[2u8; 16]);
                }
                store.stage_delete(b"base0");
                store.pump();
            });
            let mut pm = store.into_pools().ok().unwrap().into_iter().next().unwrap();
            if outcome.is_err() {
                pm.crash(CrashResolution::Random(at));
            } else {
                pm.set_crash_plan(None);
            }
            let store = StoreBuilder::new().recover(vec![pm]).unwrap();
            store.check_consistency().unwrap();
            // Pre-crash data survives (except the one staged delete,
            // which may or may not have committed).
            for i in 1..20u32 {
                let k = format!("base{i}");
                assert_eq!(store.get(k.as_bytes()).as_deref(), Some(&[1u8; 16][..]));
            }
            let (entries, slots) = store.usage();
            assert_eq!(entries, slots, "recovery must reclaim every leak");
        }
    }

    #[test]
    fn reopen_from_pools_preserves_data() {
        let store = StoreBuilder::new()
            .capacity(512, 32)
            .shards(2)
            .create_sim(SimConfig::fast_test())
            .unwrap();
        for i in 0..60u32 {
            let k = format!("p{i}");
            store.set(k.as_bytes(), k.as_bytes()).unwrap();
        }
        let pools = store.into_pools().ok().unwrap();
        let store = StoreBuilder::new().open(pools).unwrap();
        assert_eq!(store.len(), 60);
        for i in 0..60u32 {
            let k = format!("p{i}");
            assert_eq!(store.get(k.as_bytes()).as_deref(), Some(k.as_bytes()));
        }
    }

    #[test]
    fn typed_error_wraps_layers() {
        // Tiny store: filling it surfaces the engine's IndexFull as a
        // typed facade error rather than a panic.
        let store = StoreBuilder::new()
            .capacity(16, 16)
            .create_sim(SimConfig::fast_test())
            .unwrap();
        let mut hit_full = false;
        for i in 0..10_000u32 {
            let k = format!("fill{i}");
            match store.set(k.as_bytes(), &[0u8; 8]) {
                Ok(()) => {}
                Err(StoreError::Kv(KvError::IndexFull)) | Err(StoreError::Alloc(_)) => {
                    hit_full = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(hit_full, "tiny store never filled");
        store.check_consistency().unwrap();
    }
}
