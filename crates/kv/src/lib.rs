//! A small crash-consistent key-value engine on group hashing.
//!
//! The paper's table stores fixed-size cells; real stores (the
//! memcached-class systems its introduction cites) hold string keys and
//! variable-size values. `PmemKv` composes the workspace's pieces into
//! that system, inside one persistent pool:
//!
//! * a [`GroupHash`] **index** mapping 16-byte key fingerprints
//!   (MurmurHash3 x64-128) to 8-byte persistent pointers;
//! * a [`PmemHeap`] **value heap** holding `[key_len | key | value]`
//!   blobs in wear-rotated slab classes, so fingerprint collisions are
//!   detected by comparing the stored key. The store talks only to the
//!   heap's policy layer — never to slab-store internals (enforced by a
//!   `ci.sh` layering lint).
//!
//! # Crash consistency, without a log
//!
//! Every mutation is a sequence of individually-committed steps ordered
//! so that a crash anywhere leaves the store *consistent*, at worst
//! *leaking* heap slots that [`PmemKv::gc`] reclaims:
//!
//! * **insert**: commit blob → commit index entry. Crash between: an
//!   unreferenced blob (leak).
//! * **update**: commit new blob → atomically swap the 8-byte pointer in
//!   the index (old value or new value, never torn) → free old blob.
//!   Crash windows leak either the new or the old blob.
//! * **delete**: remove index entry (atomic bitmap clear) → free blob.
//!   Crash between: a leak.
//!
//! The index itself is exactly the paper's structure, so its own
//! crash-recovery story (Algorithm 4) carries over; [`PmemKv::recover`]
//! runs it and then runs [`PmemKv::gc_recover`] — the heap's bounded,
//! crash-resumable GC drainer driven with the index as [`GcOwner`] —
//! until every unreachable blob is reclaimed. The same drainer is
//! available incrementally online via [`PmemKv::gc_step`] /
//! [`PmemKv::gc_pending`], mirroring `migrate_into`'s choreography.

use group_hash::{CommitStrategy, FpMode, GroupHash, GroupHashConfig, GroupReadView};
use nvm_alloc::{AllocError, FragStats, GcOwner, HeapConfig, HeapReadView, PmemHeap, PmemPtr};
use nvm_hashfn::murmur3_x64_128;
use nvm_metrics::{HeapCounters, MetricsRegistry};
use nvm_pmem::{align_up, Pmem, PmemRead, Region, RegionAllocator, CACHELINE};
use nvm_table::{ConsistencyMode, HashScheme, InsertError, MigrationSource, TableError};
use std::collections::{HashMap, HashSet};

mod store;

pub mod prelude;

pub use store::{
    Store, StoreBuilder, StoreCounters, StoreError, StoreReadView, WriteTicket,
};

/// Magic word identifying a KV header ("NVKVSTR1").
const MAGIC: u64 = 0x4E56_4B56_5354_5231;

/// Errors from the KV engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// The index has no free cell for this key.
    IndexFull,
    /// The heap cannot store this value.
    Heap(AllocError),
    /// Creating/opening the index table failed.
    Table(TableError),
    /// Region split / KV header problems.
    Layout(String),
    /// A consistency check found the store's invariants violated.
    Corrupt(String),
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::IndexFull => write!(f, "index full"),
            KvError::Heap(e) => write!(f, "heap: {e}"),
            KvError::Table(e) => write!(f, "index: {e}"),
            KvError::Layout(e) => write!(f, "layout: {e}"),
            KvError::Corrupt(e) => write!(f, "corrupt: {e}"),
        }
    }
}

impl std::error::Error for KvError {}

impl From<AllocError> for KvError {
    fn from(e: AllocError) -> Self {
        KvError::Heap(e)
    }
}

impl From<TableError> for KvError {
    fn from(e: TableError) -> Self {
        KvError::Table(e)
    }
}

/// Engine geometry.
#[derive(Debug, Clone)]
pub struct KvConfig {
    /// Index cells per level (power of two); capacity ≈ 2× this.
    pub index_cells_per_level: u64,
    /// Group size for the index.
    pub group_size: u64,
    /// Heap slot-storage budget in bytes.
    pub heap_bytes: u64,
    /// Hash seed.
    pub seed: u64,
    /// Index fingerprint-tag mode (create-time; reopened stores restore
    /// it from the index's own persisted header).
    pub fp: FpMode,
    /// Index consistency mode (create-time; `UndoLog` wraps index
    /// commits in the undo journal, `None` uses the paper's atomic
    /// bitmap commit).
    pub consistency: ConsistencyMode,
}

impl KvConfig {
    /// A store sized for roughly `items` entries of ≤`avg_value` bytes.
    pub fn for_capacity(items: u64, avg_value: u64) -> Self {
        let cells = (items * 2).next_power_of_two().max(128);
        KvConfig {
            index_cells_per_level: cells / 2,
            group_size: 64.min(cells / 2),
            // 4x headroom: the balanced memcached-style class split
            // cannot match every value-size distribution exactly, and
            // small blobs all round up to the 80-byte base class.
            heap_bytes: (items * (avg_value + 64) * 4).max(8192),
            seed: 0x4B56_5354,
            fp: FpMode::default(),
            consistency: ConsistencyMode::default(),
        }
    }

    /// Overrides the index geometry (cells per level; power of two).
    pub fn with_index_cells_per_level(mut self, cells: u64) -> Self {
        self.index_cells_per_level = cells;
        self
    }

    /// Overrides the index group size.
    pub fn with_group_size(mut self, group_size: u64) -> Self {
        self.group_size = group_size;
        self
    }

    /// Overrides the heap budget.
    pub fn with_heap_bytes(mut self, heap_bytes: u64) -> Self {
        self.heap_bytes = heap_bytes;
        self
    }

    /// Overrides the hash seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the index fingerprint-tag mode.
    pub fn with_fp_mode(mut self, fp: FpMode) -> Self {
        self.fp = fp;
        self
    }

    /// Overrides the index consistency mode.
    pub fn with_consistency(mut self, consistency: ConsistencyMode) -> Self {
        self.consistency = consistency;
        self
    }
}

/// 16-byte fingerprint of `key` (MurmurHash3 x64-128).
fn fingerprint(key: &[u8]) -> [u8; 16] {
    let (lo, hi) = murmur3_x64_128(key, 0x4B56);
    let mut f = [0u8; 16];
    f[..8].copy_from_slice(&lo.to_le_bytes());
    f[8..].copy_from_slice(&hi.to_le_bytes());
    f
}

/// `[key_len u32-LE | key | value]`.
fn encode_blob(key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut blob = Vec::with_capacity(4 + key.len() + value.len());
    blob.extend_from_slice(&(key.len() as u32).to_le_bytes());
    blob.extend_from_slice(key);
    blob.extend_from_slice(value);
    blob
}

fn decode_blob(blob: &[u8]) -> (&[u8], &[u8]) {
    let klen = u32::from_le_bytes(blob[..4].try_into().unwrap()) as usize;
    (&blob[4..4 + klen], &blob[4 + klen..])
}

/// [`decode_blob`] for blobs that may not be well-formed KV records:
/// the GC sweep can encounter torn or foreign allocations, and the
/// lock-free [`KvReadView`] paths can observe a slot mid-rewrite (new
/// length prefix, stale bytes) before seqlock validation discards the
/// result — neither may panic.
fn try_decode_blob(blob: &[u8]) -> Option<(&[u8], &[u8])> {
    let klen = u32::from_le_bytes(blob.get(..4)?.try_into().ok()?) as usize;
    let key = blob.get(4..4 + klen)?;
    Some((key, &blob[4 + klen..]))
}

/// The engine. All persistent state lives in its pool region.
pub struct PmemKv<P: Pmem> {
    index: GroupHash<P, [u8; 16], u64>,
    heap: PmemHeap,
    region: Region,
}

/// The index as the heap's [`GcOwner`]: a blob is live iff its stored
/// key's fingerprint maps to exactly that blob's pointer, and a repoint
/// is the same atomic in-place pointer swap updates use.
struct IndexOwner<'a, P: Pmem> {
    index: &'a mut GroupHash<P, [u8; 16], u64>,
}

impl<P: Pmem> GcOwner<P> for IndexOwner<'_, P> {
    fn is_live(&mut self, pm: &P, ptr: PmemPtr, blob: &[u8]) -> bool {
        // A blob that doesn't parse as a KV record can't be referenced by
        // the index — it's garbage from a crashed writer.
        let Some((key, _)) = try_decode_blob(blob) else {
            return false;
        };
        self.index.get(pm, &fingerprint(key)) == Some(ptr.0)
    }

    fn repoint(&mut self, pm: &mut P, old: PmemPtr, new: PmemPtr, blob: &[u8]) -> bool {
        let Some((key, _)) = try_decode_blob(blob) else {
            return false;
        };
        let fp = fingerprint(key);
        // Re-check under the same borrow: decline if the entry moved on.
        if self.index.get(pm, &fp) != Some(old.0) {
            return false;
        }
        self.index.update_in_place(pm, &fp, new.0)
    }
}

impl<P: Pmem> PmemKv<P> {
    /// Header: magic + the four config words (self-describing pools).
    const HEADER_LEN: usize = 40;

    fn split(region: Region, config: &KvConfig) -> Result<(Region, Region, Region), KvError> {
        let index_cfg = Self::index_config(config);
        let index_size = GroupHash::<P, [u8; 16], u64>::required_size(&index_cfg);
        let heap_cfg = HeapConfig::balanced(config.heap_bytes);
        let heap_size = PmemHeap::required_size(&heap_cfg);
        let mut alloc = RegionAllocator::new(region.off, region.end());
        if region.len < Self::HEADER_LEN + index_size + heap_size + 320 {
            return Err(KvError::Layout(format!(
                "region too small: {} < {}",
                region.len,
                Self::HEADER_LEN + index_size + heap_size + 320
            )));
        }
        let header_r = alloc.alloc_lines(Self::HEADER_LEN);
        let index_r = alloc.alloc_lines(index_size);
        let heap_r = alloc.alloc_lines(heap_size);
        Ok((header_r, index_r, heap_r))
    }

    fn index_config(config: &KvConfig) -> GroupHashConfig {
        GroupHashConfig::new(config.index_cells_per_level, config.group_size)
            .with_seed(config.seed)
            .with_fp_mode(config.fp)
            .with_commit(match config.consistency {
                ConsistencyMode::None => CommitStrategy::AtomicBitmap,
                ConsistencyMode::UndoLog => CommitStrategy::UndoLog,
            })
    }

    /// Pool bytes needed for `config`.
    pub fn required_size(config: &KvConfig) -> usize {
        let index_cfg = Self::index_config(config);
        Self::HEADER_LEN
            + GroupHash::<P, [u8; 16], u64>::required_size(&index_cfg)
            + PmemHeap::required_size(&HeapConfig::balanced(config.heap_bytes))
            + 576
    }

    /// Creates a fresh store in `region`.
    #[deprecated(note = "construct through the `Store` facade: `StoreBuilder::new(..).create(..)`")]
    pub fn create(pm: &mut P, region: Region, config: &KvConfig) -> Result<Self, KvError> {
        Self::create_impl(pm, region, config)
    }

    pub(crate) fn create_impl(
        pm: &mut P,
        region: Region,
        config: &KvConfig,
    ) -> Result<Self, KvError> {
        let (header_r, index_r, heap_r) = Self::split(region, config)?;
        let index = GroupHash::create(pm, index_r, Self::index_config(config))
            .map_err(KvError::Table)?;
        let heap = PmemHeap::create(pm, heap_r, &HeapConfig::balanced(config.heap_bytes))
            .map_err(KvError::Heap)?;
        // Self-describing header: config words first, magic last.
        pm.write_u64(header_r.off + 8, config.index_cells_per_level);
        pm.write_u64(header_r.off + 16, config.group_size);
        pm.write_u64(header_r.off + 24, config.heap_bytes);
        pm.write_u64(header_r.off + 32, config.seed);
        pm.persist(header_r.off, Self::HEADER_LEN);
        pm.atomic_write_u64(header_r.off, MAGIC);
        pm.persist(header_r.off, 8);
        Ok(PmemKv {
            index,
            heap,
            region,
        })
    }

    /// Reads the persisted configuration of a store in `region`.
    pub fn read_config(pm: &P, region: Region) -> Result<KvConfig, KvError> {
        let off = align_up(region.off, CACHELINE);
        if !region.contains(off, Self::HEADER_LEN) {
            return Err(KvError::Layout("region too small for a KV header".into()));
        }
        if pm.read_u64(off) != MAGIC {
            return Err(KvError::Layout("KV magic mismatch".into()));
        }
        Ok(KvConfig {
            index_cells_per_level: pm.read_u64(off + 8),
            group_size: pm.read_u64(off + 16),
            heap_bytes: pm.read_u64(off + 24),
            seed: pm.read_u64(off + 32),
            // Index modes live in the index's *own* persisted header
            // (flag word), which `GroupHash::open` restores; the layout
            // is mode-independent, so reopening never needs them.
            fp: FpMode::default(),
            consistency: ConsistencyMode::default(),
        })
    }

    /// Re-opens a store from its persisted header — no configuration
    /// needed.
    #[deprecated(note = "construct through the `Store` facade: `StoreBuilder::new(..).open(..)`")]
    pub fn open(pm: &mut P, region: Region) -> Result<Self, KvError> {
        Self::open_impl(pm, region)
    }

    pub(crate) fn open_impl(pm: &mut P, region: Region) -> Result<Self, KvError> {
        let config = Self::read_config(pm, region)?;
        let (_, index_r, heap_r) = Self::split(region, &config)?;
        let index = GroupHash::open(pm, index_r).map_err(KvError::Table)?;
        let heap = PmemHeap::open(pm, heap_r).map_err(KvError::Heap)?;
        Ok(PmemKv {
            index,
            heap,
            region,
        })
    }

    /// Reads the blob behind an index entry and checks the stored key.
    fn load_checked(&self, pm: &P, ptr: u64, key: &[u8]) -> Option<Vec<u8>> {
        let blob = self.heap.read(pm, PmemPtr(ptr)).ok()?;
        let (stored_key, value) = decode_blob(&blob);
        (stored_key == key).then(|| value.to_vec())
    }

    /// Stores `key → value` (insert or update).
    pub fn set(&mut self, pm: &mut P, key: &[u8], value: &[u8]) -> Result<(), KvError> {
        let fp = fingerprint(key);
        let blob = encode_blob(key, value);
        match self.index.get(pm, &fp) {
            Some(old_ptr) => {
                // Update: commit new blob, atomically swap the pointer,
                // then free the old blob.
                let new_ptr = self.heap.alloc(pm, &blob)?;
                let swapped = self.index.update_in_place(pm, &fp, new_ptr.0);
                debug_assert!(swapped);
                // Old blob now unreachable; reclaim it.
                let _ = self.heap.free(pm, PmemPtr(old_ptr));
                Ok(())
            }
            None => {
                let ptr = self.heap.alloc(pm, &blob)?;
                match self.index.insert(pm, fp, ptr.0) {
                    Ok(()) => Ok(()),
                    Err(InsertError::TableFull) => {
                        // Index refused: roll the blob back (still crash
                        // safe — worst case it leaks and gc reclaims).
                        let _ = self.heap.free(pm, ptr);
                        Err(KvError::IndexFull)
                    }
                    Err(e) => unreachable!("insert: {e}"),
                }
            }
        }
    }

    /// Stores many pairs with fence-coalesced heap *and* index commits.
    ///
    /// All K blobs commit through one [`PmemHeap::alloc_batch`] (2
    /// fences for the whole batch instead of 2 per blob); then updates
    /// swap their pointer in place (same per-op choreography as
    /// [`PmemKv::set`]) and fresh keys group-commit through the index's
    /// batch insert (~K+2 fences instead of 3K). A batch of K fresh
    /// inserts therefore costs ~K+4 fences end to end — the engine-level
    /// realization of the paper's group-commit arithmetic. Crash
    /// ordering is unchanged: blobs commit before index entries, and a
    /// crash mid-batch durably keeps some prefix of the new entries
    /// (the rest leak and [`PmemKv::gc`] reclaims them).
    ///
    /// Duplicate keys within the batch collapse in DRAM (last write
    /// wins) before anything touches the pool. If the heap cannot place
    /// every blob, *nothing* is stored; on `IndexFull` the
    /// already-committed prefix stays stored and the unindexed blobs
    /// are rolled back.
    pub fn set_batch(&mut self, pm: &mut P, items: &[(&[u8], &[u8])]) -> Result<(), KvError> {
        if items.is_empty() {
            return Ok(());
        }
        // Pass one (DRAM only): collapse duplicate keys, last write wins.
        let mut ops: Vec<([u8; 16], &[u8], &[u8])> = Vec::with_capacity(items.len());
        let mut at: HashMap<[u8; 16], usize> = HashMap::new();
        for &(key, value) in items {
            let fp = fingerprint(key);
            match at.get(&fp) {
                Some(&i) => ops[i] = (fp, key, value),
                None => {
                    at.insert(fp, ops.len());
                    ops.push((fp, key, value));
                }
            }
        }
        // Pass two: commit every blob with one fence-coalesced heap
        // batch. On failure the heap committed nothing, so neither did
        // the store.
        let blobs: Vec<Vec<u8>> = ops.iter().map(|(_, k, v)| encode_blob(k, v)).collect();
        let blob_refs: Vec<&[u8]> = blobs.iter().map(|b| b.as_slice()).collect();
        let ptrs = self.heap.alloc_batch(pm, &blob_refs)?;
        // Pass three: updates apply immediately (the pointer swap is
        // already a single atomic); fresh keys defer into one index
        // batch.
        let mut pending: Vec<([u8; 16], u64)> = Vec::new();
        for ((fp, _, _), ptr) in ops.iter().zip(&ptrs) {
            match self.index.get(pm, fp) {
                Some(old_ptr) => {
                    let swapped = self.index.update_in_place(pm, fp, ptr.0);
                    debug_assert!(swapped);
                    let _ = self.heap.free(pm, PmemPtr(old_ptr));
                }
                None => pending.push((*fp, ptr.0)),
            }
        }
        if pending.is_empty() {
            return Ok(());
        }
        match self.index.insert_batch(pm, &pending) {
            Ok(()) => Ok(()),
            Err(e) => {
                for (_, ptr) in &pending[e.committed..] {
                    let _ = self.heap.free(pm, PmemPtr(*ptr));
                }
                match e.error {
                    InsertError::TableFull => Err(KvError::IndexFull),
                    err => unreachable!("insert_batch: {err}"),
                }
            }
        }
    }

    /// Fetches `key`'s value.
    pub fn get(&self, pm: &P, key: &[u8]) -> Option<Vec<u8>> {
        self.try_get(pm, key).ok().flatten()
    }

    /// Fetches many keys at once, one answer per key in input order —
    /// same results as calling [`PmemKv::get`] per element, pipelined for
    /// NVM latency: fingerprint every key up front, resolve all index
    /// probes through the vectorized [`GroupHash::get_batch`] (which
    /// software-prefetches every candidate line before comparing any),
    /// software-prefetch every hit's heap blob, then decode and
    /// key-verify the blobs against warm cache. Still a pure read: zero
    /// flushes, zero fences, zero writes.
    pub fn get_batch(&self, pm: &P, keys: &[&[u8]]) -> Vec<Option<Vec<u8>>> {
        let fps: Vec<[u8; 16]> = keys.iter().map(|k| fingerprint(k)).collect();
        let ptrs = self.index.get_batch(pm, &fps);
        // Warm each hit's first blob line (length prefix + leading bytes)
        // before any decode dereferences it.
        for ptr in ptrs.iter().flatten() {
            pm.prefetch(*ptr as usize, 8);
        }
        keys.iter()
            .zip(ptrs)
            .map(|(key, ptr)| self.load_checked(pm, ptr?, key))
            .collect()
    }

    /// Fetches `key`'s value, distinguishing "not stored" (`Ok(None)`)
    /// from a heap read failure — a dangling index pointer — which
    /// [`PmemKv::get`] silently folds into `None`.
    pub fn try_get(&self, pm: &P, key: &[u8]) -> Result<Option<Vec<u8>>, KvError> {
        let fp = fingerprint(key);
        let Some(ptr) = self.index.get(pm, &fp) else {
            return Ok(None);
        };
        let blob = self
            .heap
            .read(pm, PmemPtr(ptr))
            .map_err(|e| KvError::Corrupt(format!("index points at bad blob: {e}")))?;
        let (stored_key, value) = decode_blob(&blob);
        Ok((stored_key == key).then(|| value.to_vec()))
    }

    /// Deletes `key`, returning whether it was present.
    pub fn delete(&mut self, pm: &mut P, key: &[u8]) -> bool {
        let fp = fingerprint(key);
        let Some(ptr) = self.index.get(pm, &fp) else {
            return false;
        };
        // Verify before destroying (fingerprint collision paranoia).
        if self.load_checked(pm, ptr, key).is_none() {
            return false;
        }
        let removed = self.index.remove(pm, &fp);
        debug_assert!(removed);
        let _ = self.heap.free(pm, PmemPtr(ptr));
        true
    }

    /// Deletes many keys with one fence-coalesced index commit per chunk;
    /// returns how many were present and removed. Index entries retract
    /// first, then the blobs free — a crash between the two leaks, which
    /// [`PmemKv::gc`] reclaims, exactly like single-key deletes.
    pub fn delete_batch(&mut self, pm: &mut P, keys: &[&[u8]]) -> usize {
        let mut fps: Vec<[u8; 16]> = Vec::new();
        let mut ptrs: Vec<u64> = Vec::new();
        let mut seen: HashSet<[u8; 16]> = HashSet::new();
        for key in keys {
            let fp = fingerprint(key);
            if seen.contains(&fp) {
                continue; // duplicate key in the batch
            }
            let Some(ptr) = self.index.get(pm, &fp) else {
                continue;
            };
            // Verify before destroying (fingerprint collision paranoia).
            if self.load_checked(pm, ptr, key).is_none() {
                continue;
            }
            seen.insert(fp);
            fps.push(fp);
            ptrs.push(ptr);
        }
        let removed = self.index.remove_batch(pm, &fps);
        debug_assert_eq!(removed, fps.len());
        for ptr in ptrs {
            let _ = self.heap.free(pm, PmemPtr(ptr));
        }
        removed
    }

    /// Number of entries.
    pub fn len(&self, pm: &P) -> u64 {
        self.index.len(pm)
    }

    /// True when the store holds no entries.
    pub fn is_empty(&self, pm: &P) -> bool {
        self.len(pm) == 0
    }

    /// Post-crash recovery: repairs the index (Algorithm 4), then runs
    /// the heap drainer until every unreachable blob — leaked by a crash
    /// mid-`set`/`set_batch`/`delete` or orphaned by an interrupted GC
    /// move — is reclaimed. Returns the number of leaks reclaimed.
    pub fn recover(&mut self, pm: &mut P) -> u64 {
        self.index.recover(pm);
        self.gc_recover(pm)
    }

    /// The recovery-time heap sweep: finishes any GC pass interrupted by
    /// a crash, then runs one full fresh pass, so afterwards *every*
    /// heap slot is referenced by the index (`usage()` entries == slots).
    /// Returns the number of unreachable blobs reclaimed.
    pub fn gc_recover(&mut self, pm: &mut P) -> u64 {
        self.gc(pm)
    }

    /// Reclaims unreachable heap blobs by running the heap's GC drainer
    /// to completion (resuming an interrupted pass first). Returns the
    /// number reclaimed.
    pub fn gc(&mut self, pm: &mut P) -> u64 {
        let mut owner = IndexOwner {
            index: &mut self.index,
        };
        self.heap
            .gc_full(pm, &mut owner)
            .expect("heap GC over its own pointers cannot fail")
    }

    /// True while a GC pass is in flight (persisted; survives crashes).
    /// Keep calling [`PmemKv::gc_step`] until it returns `Ok(false)`.
    pub fn gc_pending(&self, pm: &P) -> bool {
        self.heap.gc_pending(pm)
    }

    /// Runs one bounded GC increment over up to `max_slots` heap slots —
    /// the online counterpart of [`PmemKv::gc_recover`], shaped exactly
    /// like [`PmemKv::migrate_into`]: a persisted cursor makes the drain
    /// resumable across crashes, dead blobs are freed, and live blobs in
    /// sparse slabs are compacted with at most one transient duplicate.
    /// Returns `Ok(true)` while the pass is incomplete.
    pub fn gc_step(&mut self, pm: &mut P, max_slots: u64) -> Result<bool, KvError> {
        let mut owner = IndexOwner {
            index: &mut self.index,
        };
        self.heap
            .gc_step(pm, max_slots, &mut owner)
            .map_err(KvError::Heap)
    }

    /// Structural validation: index invariants, every index pointer
    /// resolves to an allocated blob whose stored key fingerprints back
    /// to its index cell, and no two entries share a blob.
    pub fn check_consistency(&self, pm: &P) -> Result<(), KvError> {
        use nvm_table::HashScheme;
        self.index.check_consistency(pm)?;
        let mut entries = Vec::new();
        self.index.for_each_entry(pm, |fp, ptr| {
            entries.push((fp, ptr));
        });
        let mut seen = HashSet::new();
        for (fp, ptr) in entries {
            if !seen.insert(ptr) {
                return Err(KvError::Corrupt(format!("blob {ptr:#x} referenced twice")));
            }
            let blob = self
                .heap
                .read(pm, PmemPtr(ptr))
                .map_err(|e| KvError::Corrupt(format!("index points at bad blob: {e}")))?;
            let (key, _) = decode_blob(&blob);
            if fingerprint(key) != fp {
                return Err(KvError::Corrupt(format!(
                    "blob {ptr:#x} key does not match its fingerprint"
                )));
            }
        }
        Ok(())
    }

    /// Visits every `(key, value)` pair (order unspecified).
    pub fn for_each(&self, pm: &P, mut f: impl FnMut(&[u8], &[u8])) {
        let mut ptrs = Vec::new();
        self.index.for_each_entry(pm, |_, ptr| ptrs.push(ptr));
        for ptr in ptrs {
            if let Ok(blob) = self.heap.read(pm, PmemPtr(ptr)) {
                let (k, v) = decode_blob(&blob);
                f(k, v);
            }
        }
    }

    /// True while an interrupted [`PmemKv::migrate_into`] still has
    /// entries to move (including across a crash — the flag persists in
    /// the index header). Keep calling `migrate_into` until it returns
    /// `Ok(false)`.
    pub fn migration_pending(&self, pm: &P) -> bool {
        self.index.migration_active(pm)
    }

    /// Moves up to `max_moves` entries into `dst` (a store in another
    /// region of the same pool, typically sized larger), returning
    /// `Ok(true)` while entries remain — the kv-level counterpart of the
    /// index's incremental online expansion, for when the *store* has
    /// outgrown its region and must relocate wholesale without a
    /// stop-the-world rebuild.
    ///
    /// Each moved entry is re-stored in `dst` under its original key
    /// (blob copied into `dst`'s heap, fingerprint re-indexed), then
    /// evicted here (index retract + heap free). The persisted migration
    /// cursor in this store's index header makes the drain resumable:
    /// after a crash, reopen both stores, run [`PmemKv::recover`] on
    /// each, and keep calling `migrate_into` — re-moving the boundary
    /// entry is an idempotent upsert in `dst`, so the cursor only needs
    /// persisting once per call, not once per entry. Mid-drain, a key
    /// lives in exactly one store except for the entry being moved,
    /// which may transiently exist in both (with equal values); route
    /// lookups `dst`-first and the window is invisible.
    ///
    /// On `Err` (e.g. `dst` full) the migration stays pending and no
    /// entry is lost; the failing entry is still stored here.
    pub fn migrate_into(
        &mut self,
        pm: &mut P,
        dst: &mut PmemKv<P>,
        max_moves: u64,
    ) -> Result<bool, KvError> {
        let total = self.index.migration_cells();
        if !self.index.migration_active(pm) {
            // Cursor first, flag second: a crash between the two leaves
            // the flag clear, and the next call restarts cleanly.
            self.index.set_migration_cursor(pm, 0);
            self.index.set_migration_active(pm, true);
        }
        let mut cursor = self.index.migration_cursor(pm);
        let mut moved = 0u64;
        while cursor < total && moved < max_moves {
            if let Some((_, ptr)) = self.index.entry_at(pm, cursor) {
                let blob = self
                    .heap
                    .read(pm, PmemPtr(ptr))
                    .map_err(|e| KvError::Corrupt(format!("index points at bad blob: {e}")))?;
                let (key, value) = decode_blob(&blob);
                if let Err(e) = dst.set(pm, key, value) {
                    self.index.set_migration_cursor(pm, cursor);
                    return Err(e);
                }
                let evicted = self.index.evict_cell(pm, cursor);
                debug_assert!(evicted);
                let _ = self.heap.free(pm, PmemPtr(ptr));
                moved += 1;
            }
            cursor += 1;
        }
        self.index.set_migration_cursor(pm, cursor);
        if cursor >= total {
            self.index.set_migration_active(pm, false);
            return Ok(false);
        }
        Ok(true)
    }

    /// (index entries, heap slots allocated) — equal when there are no
    /// leaks.
    pub fn usage(&self, pm: &P) -> (u64, u64) {
        (self.index.len(pm), self.heap.allocated(pm))
    }

    /// The heap's fragmentation snapshot (live blob bytes vs allocated
    /// and total slot bytes) — the byte-level counterpart of
    /// [`PmemKv::usage`].
    pub fn frag_stats(&self, pm: &P) -> FragStats {
        self.heap.frag_stats(pm)
    }

    /// Captures a [`KvReadView`]: a read-only lookup facade over the
    /// index's [`GroupReadView`] and the heap geometry, usable through
    /// any [`PmemRead`] handle (e.g. [`Pmem::read_handle`] clones handed
    /// to reader threads). The view holds no pool bytes, so it stays
    /// valid across mutations; concurrent use needs an external
    /// validation protocol, exactly as for `GroupReadView`.
    pub fn read_view(&self) -> KvReadView {
        KvReadView {
            index: self.index.read_view(),
            heap: self.heap.read_view(),
        }
    }

    /// The store's pool region.
    pub fn region(&self) -> Region {
        self.region
    }

    /// The store's observability snapshot: cumulative pmem counters,
    /// cache-hierarchy counters when the backend models one, the value
    /// heap's alloc/free/GC counters and per-slab write histogram under
    /// `heap`, and — when built with the `instrument` feature — the
    /// index's probe/occupancy/displacement histograms under `index`.
    pub fn metrics(&self, pm: &P) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.set_pmem("pmem", &pm.stats());
        if let Some(c) = pm.cache_stats() {
            reg.set_cache("cache", &c);
        }
        let hs = self.heap.stats();
        reg.set_heap(
            "heap",
            &HeapCounters::from_heap(
                hs.allocs,
                hs.frees,
                hs.gc_moves,
                hs.leaked_reclaimed,
                self.heap.slab_writes(),
            ),
        );
        if let Some(i) = HashScheme::<P, [u8; 16], u64>::instrumentation(&self.index) {
            reg.set_instrumentation("index", i);
        }
        reg
    }
}

/// A read-only facade over a [`PmemKv`]: fingerprint the key, probe the
/// index through a [`GroupReadView`], then read + verify the heap blob —
/// all through a bare [`PmemRead`] handle, no `&mut` pool access.
#[derive(Debug, Clone)]
pub struct KvReadView {
    index: GroupReadView<[u8; 16], u64>,
    heap: HeapReadView,
}

impl KvReadView {
    /// Fetches `key`'s value. Dangling index pointers and torn blobs
    /// (possible only when racing a writer without a validation
    /// protocol — the caller's seqlock retry then yields the correct
    /// answer) read as `None`, like [`PmemKv::get`].
    pub fn get<R: PmemRead>(&self, pm: &R, key: &[u8]) -> Option<Vec<u8>> {
        let ptr = self.index.get(pm, &fingerprint(key))?;
        let blob = self.heap.read(pm, PmemPtr(ptr)).ok()?;
        let (stored_key, value) = try_decode_blob(&blob)?;
        (stored_key == key).then(|| value.to_vec())
    }

    /// Fetches many keys at once through a bare read handle — the view
    /// analogue of [`PmemKv::get_batch`]: fingerprint everything, probe
    /// the index via the vectorized [`GroupReadView::get_batch`],
    /// software-prefetch every hit's blob line, then decode + key-verify.
    /// Answers come back one per key in input order.
    pub fn get_batch<R: PmemRead>(&self, pm: &R, keys: &[&[u8]]) -> Vec<Option<Vec<u8>>> {
        let fps: Vec<[u8; 16]> = keys.iter().map(|k| fingerprint(k)).collect();
        let ptrs = self.index.get_batch(pm, &fps);
        for ptr in ptrs.iter().flatten() {
            pm.prefetch(*ptr as usize, 8);
        }
        keys.iter()
            .zip(ptrs)
            .map(|(key, ptr)| {
                let blob = self.heap.read(pm, PmemPtr(ptr?)).ok()?;
                let (stored_key, value) = try_decode_blob(&blob)?;
                (stored_key == *key).then(|| value.to_vec())
            })
            .collect()
    }

    /// Whether `key` is stored.
    pub fn contains<R: PmemRead>(&self, pm: &R, key: &[u8]) -> bool {
        self.get(pm, key).is_some()
    }
}

#[cfg(test)]
mod tests {
    // The engine tests exercise `PmemKv` directly, below the `Store`
    // facade the deprecated constructors point users at.
    #![allow(deprecated)]

    use super::*;
    use nvm_pmem::{CrashResolution, SimConfig, SimPmem};

    fn setup(items: u64) -> (SimPmem, PmemKv<SimPmem>, Region, KvConfig) {
        setup_avg(items, 64)
    }

    fn setup_avg(items: u64, avg_value: u64) -> (SimPmem, PmemKv<SimPmem>, Region, KvConfig) {
        let cfg = KvConfig::for_capacity(items, avg_value);
        let size = PmemKv::<SimPmem>::required_size(&cfg);
        let mut pm = SimPmem::new(size, SimConfig::fast_test());
        let region = Region::new(0, size);
        let kv = PmemKv::create(&mut pm, region, &cfg).unwrap();
        (pm, kv, region, cfg)
    }

    /// Two stores side by side in one pool: `src` sized for `src_items`,
    /// `dst` sized for `dst_items`.
    fn setup_pair(
        src_items: u64,
        dst_items: u64,
    ) -> (SimPmem, PmemKv<SimPmem>, PmemKv<SimPmem>, Region, Region) {
        let src_cfg = KvConfig::for_capacity(src_items, 32);
        let dst_cfg = KvConfig::for_capacity(dst_items, 32);
        let src_size = PmemKv::<SimPmem>::required_size(&src_cfg);
        let dst_size = PmemKv::<SimPmem>::required_size(&dst_cfg);
        let mut pm = SimPmem::new(src_size + dst_size, SimConfig::fast_test());
        let src_region = Region::new(0, src_size);
        let dst_region = Region::new(src_size, dst_size);
        let src = PmemKv::create(&mut pm, src_region, &src_cfg).unwrap();
        let dst = PmemKv::create(&mut pm, dst_region, &dst_cfg).unwrap();
        (pm, src, dst, src_region, dst_region)
    }

    #[test]
    fn migrate_into_moves_store_in_bounded_steps() {
        let (mut pm, mut src, mut dst, _, _) = setup_pair(64, 256);
        for i in 0..50u32 {
            let key = format!("mig-{i}");
            src.set(&mut pm, key.as_bytes(), &vec![i as u8; (i % 40) as usize])
                .unwrap();
        }
        dst.set(&mut pm, b"resident", b"already-here").unwrap();

        let mut steps = 0u32;
        while src.migrate_into(&mut pm, &mut dst, 7).unwrap() {
            assert!(src.migration_pending(&pm));
            steps += 1;
            assert!(steps < 10_000, "drain never finished");
        }
        assert!(steps > 1, "max_moves=7 over 50 entries must take many steps");

        assert!(src.is_empty(&pm));
        assert!(!src.migration_pending(&pm));
        assert_eq!(dst.len(&pm), 51);
        for i in 0..50u32 {
            let key = format!("mig-{i}");
            assert_eq!(src.get(&pm, key.as_bytes()), None);
            assert_eq!(
                dst.get(&pm, key.as_bytes()),
                Some(vec![i as u8; (i % 40) as usize]),
                "{key}"
            );
        }
        assert_eq!(dst.get(&pm, b"resident").as_deref(), Some(&b"already-here"[..]));
        src.check_consistency(&pm).unwrap();
        dst.check_consistency(&pm).unwrap();
        assert_eq!(src.usage(&pm), (0, 0));
        let (entries, slots) = dst.usage(&pm);
        assert_eq!(entries, slots, "migration leaked dst heap slots");
    }

    #[test]
    fn crash_anywhere_during_migrate_into_is_safe() {
        use nvm_pmem::{run_with_crash, CrashPlan};
        let (mut pm0, mut src0, _dst0, src_region, dst_region) = setup_pair(32, 128);
        let n = 12u32;
        for i in 0..n {
            src0.set(&mut pm0, format!("ck-{i}").as_bytes(), &[i as u8; 9])
                .unwrap();
        }
        drop(src0);

        let mut at = 0u64;
        loop {
            let mut pm = pm0.clone();
            let mut src = PmemKv::open(&mut pm, src_region).unwrap();
            let mut dst = PmemKv::open(&mut pm, dst_region).unwrap();
            let base = pm.events();
            pm.set_crash_plan(Some(CrashPlan {
                at_event: base + at,
            }));
            let done = run_with_crash(|| {
                while src.migrate_into(&mut pm, &mut dst, 3).unwrap() {}
            })
            .is_ok();
            pm.crash(CrashResolution::Random(at));

            // Reopen, recover, and audit the torn state.
            let mut src = PmemKv::open(&mut pm, src_region).unwrap();
            let mut dst = PmemKv::open(&mut pm, dst_region).unwrap();
            src.recover(&mut pm);
            dst.recover(&mut pm);
            src.check_consistency(&pm)
                .unwrap_or_else(|e| panic!("src at +{at}: {e}"));
            dst.check_consistency(&pm)
                .unwrap_or_else(|e| panic!("dst at +{at}: {e}"));
            let mut dups = 0u64;
            for i in 0..n {
                let key = format!("ck-{i}");
                let want = vec![i as u8; 9];
                let s = src.get(&pm, key.as_bytes());
                let d = dst.get(&pm, key.as_bytes());
                // Every copy that exists is intact, and at least one does.
                for got in [&s, &d].into_iter().flatten() {
                    assert_eq!(*got, want, "{key} at +{at}");
                }
                assert!(s.is_some() || d.is_some(), "{key} lost at +{at}");
                if s.is_some() && d.is_some() {
                    dups += 1;
                }
            }
            // Only the entry in flight can transiently live in both.
            assert!(dups <= 1, "{dups} duplicated keys at +{at}");

            // Resume the drain to completion; the boundary re-move is an
            // idempotent upsert.
            while src.migrate_into(&mut pm, &mut dst, 3).unwrap() {}
            assert!(src.is_empty(&pm));
            assert!(!src.migration_pending(&pm));
            assert_eq!(dst.len(&pm), n as u64);
            for i in 0..n {
                let key = format!("ck-{i}");
                assert_eq!(dst.get(&pm, key.as_bytes()), Some(vec![i as u8; 9]), "{key}");
            }
            src.check_consistency(&pm).unwrap();
            dst.check_consistency(&pm).unwrap();
            let (entries, slots) = dst.usage(&pm);
            assert_eq!(entries, slots, "leak after resumed drain at +{at}");

            if done {
                break;
            }
            at += 1;
            assert!(at < 5000, "migration never completed");
        }
    }

    #[test]
    fn set_get_delete_roundtrip() {
        let (mut pm, mut kv, _, _) = setup(100);
        kv.set(&mut pm, b"user:1", b"ada").unwrap();
        kv.set(&mut pm, b"user:2", b"grace").unwrap();
        assert_eq!(kv.get(&pm, b"user:1").as_deref(), Some(&b"ada"[..]));
        assert_eq!(kv.get(&pm, b"user:2").as_deref(), Some(&b"grace"[..]));
        assert_eq!(kv.get(&pm, b"user:3"), None);
        assert!(kv.delete(&mut pm, b"user:1"));
        assert_eq!(kv.get(&pm, b"user:1"), None);
        assert!(!kv.delete(&mut pm, b"user:1"));
        assert_eq!(kv.len(&pm), 1);
        kv.check_consistency(&pm).unwrap();
        assert_eq!(kv.usage(&pm), (1, 1));
    }

    #[test]
    fn batch_set_get_delete_roundtrip() {
        let (mut pm, mut kv, _, _) = setup(300);
        kv.set(&mut pm, b"pre", b"existing").unwrap();
        let items: Vec<(Vec<u8>, Vec<u8>)> = (0..100u32)
            .map(|i| (format!("bk-{i}").into_bytes(), vec![i as u8; 16]))
            .collect();
        let refs: Vec<(&[u8], &[u8])> = items
            .iter()
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
            .collect();
        kv.set_batch(&mut pm, &refs).unwrap();
        for (k, v) in &items {
            assert_eq!(kv.get(&pm, k).as_deref(), Some(v.as_slice()));
        }
        assert_eq!(kv.len(&pm), 101);
        // Updates and duplicate keys inside one batch: last write wins.
        kv.set_batch(
            &mut pm,
            &[
                (b"pre".as_slice(), b"updated".as_slice()),
                (b"dup".as_slice(), b"first".as_slice()),
                (b"dup".as_slice(), b"second".as_slice()),
            ],
        )
        .unwrap();
        assert_eq!(kv.get(&pm, b"pre").as_deref(), Some(&b"updated"[..]));
        assert_eq!(kv.get(&pm, b"dup").as_deref(), Some(&b"second"[..]));
        kv.check_consistency(&pm).unwrap();
        // Batch delete with a duplicate and a missing key mixed in.
        let kill: Vec<&[u8]> = vec![
            b"bk-0".as_slice(),
            b"bk-1".as_slice(),
            b"bk-1".as_slice(),
            b"missing".as_slice(),
            b"dup".as_slice(),
        ];
        assert_eq!(kv.delete_batch(&mut pm, &kill), 3);
        assert_eq!(kv.get(&pm, b"bk-0"), None);
        assert_eq!(kv.get(&pm, b"dup"), None);
        kv.check_consistency(&pm).unwrap();
        let (entries, slots) = kv.usage(&pm);
        assert_eq!(entries, slots, "batch ops leaked heap slots");
    }

    #[test]
    fn try_get_distinguishes_missing_from_corrupt() {
        let (mut pm, mut kv, _, _) = setup(64);
        kv.set(&mut pm, b"k", b"v").unwrap();
        assert_eq!(
            kv.try_get(&pm, b"k").unwrap().as_deref(),
            Some(&b"v"[..])
        );
        assert_eq!(kv.try_get(&pm, b"absent").unwrap(), None);
        // Free the blob out from under the index: try_get must report the
        // dangling pointer instead of pretending the key is absent.
        let mut ptr = 0;
        kv.index.for_each_entry(&pm, |_, p| ptr = p);
        kv.heap.free(&mut pm, PmemPtr(ptr)).unwrap();
        assert!(matches!(kv.try_get(&pm, b"k"), Err(KvError::Corrupt(_))));
        assert_eq!(kv.get(&pm, b"k"), None);
    }

    #[test]
    fn read_view_treats_torn_blobs_as_misses_without_panicking() {
        // A lock-free reader racing a writer can observe a slot whose
        // length words are newer than its payload bytes. The view must
        // degrade to a miss (the caller's seqlock retry corrects it),
        // never slice out of bounds or panic.
        let (mut pm, mut kv, _, _) = setup(64);
        kv.set(&mut pm, b"k", b"value").unwrap();
        let view = kv.read_view();
        assert_eq!(view.get(&pm, b"k").as_deref(), Some(&b"value"[..]));
        let mut ptr = 0;
        kv.index.for_each_entry(&pm, |_, p| ptr = p);

        // Torn key-length prefix: klen runs past the blob's end.
        pm.write(ptr as usize + 8, &u32::MAX.to_le_bytes());
        assert_eq!(view.get(&pm, b"k"), None);
        assert_eq!(view.get_batch(&pm, &[b"k".as_slice()]), vec![None]);

        // Torn slot-length word: blob length exceeds the slot capacity.
        pm.write_u64(ptr as usize, 1 << 40);
        assert_eq!(view.get(&pm, b"k"), None);
        assert_eq!(view.get_batch(&pm, &[b"k".as_slice()]), vec![None]);
    }

    #[test]
    fn config_builders_override_fields() {
        let cfg = KvConfig::for_capacity(100, 64)
            .with_index_cells_per_level(256)
            .with_group_size(32)
            .with_heap_bytes(1 << 16)
            .with_seed(9);
        assert_eq!(cfg.index_cells_per_level, 256);
        assert_eq!(cfg.group_size, 32);
        assert_eq!(cfg.heap_bytes, 1 << 16);
        assert_eq!(cfg.seed, 9);
        let size = PmemKv::<SimPmem>::required_size(&cfg);
        let mut pm = SimPmem::new(size, SimConfig::fast_test());
        let mut kv = PmemKv::create(&mut pm, Region::new(0, size), &cfg).unwrap();
        kv.set(&mut pm, b"a", b"b").unwrap();
        assert_eq!(kv.get(&pm, b"a").as_deref(), Some(&b"b"[..]));
    }

    #[test]
    fn metrics_snapshot_has_pmem_counters() {
        let (mut pm, mut kv, _, _) = setup(100);
        kv.set(&mut pm, b"k", b"v").unwrap();
        let json = kv.metrics(&pm).to_string_pretty();
        assert!(json.contains("\"pmem\""), "{json}");
        assert!(json.contains("\"flushes\""), "{json}");
        // With `instrument` (directly or via feature unification) the
        // index section carries the probe histogram.
        if cfg!(feature = "instrument") {
            assert!(json.contains("\"index\""), "{json}");
            assert!(json.contains("\"probe\""), "{json}");
        }
    }

    #[test]
    fn update_replaces_and_reclaims() {
        let (mut pm, mut kv, _, _) = setup(100);
        kv.set(&mut pm, b"k", b"small").unwrap();
        kv.set(&mut pm, b"k", b"a much longer value that needs a bigger class")
            .unwrap();
        assert_eq!(
            kv.get(&pm, b"k").as_deref(),
            Some(&b"a much longer value that needs a bigger class"[..])
        );
        // No leak: old blob was freed.
        assert_eq!(kv.usage(&pm), (1, 1));
        kv.check_consistency(&pm).unwrap();
    }

    #[test]
    fn variable_sizes_and_many_keys() {
        let (mut pm, mut kv, _, _) = setup_avg(500, 256);
        for i in 0..300u32 {
            let key = format!("key-{i}");
            let value = vec![i as u8; (i % 200) as usize];
            kv.set(&mut pm, key.as_bytes(), &value).unwrap();
        }
        for i in 0..300u32 {
            let key = format!("key-{i}");
            assert_eq!(
                kv.get(&pm, key.as_bytes()),
                Some(vec![i as u8; (i % 200) as usize]),
                "{key}"
            );
        }
        assert_eq!(kv.len(&pm), 300);
        kv.check_consistency(&pm).unwrap();
    }

    #[test]
    fn reopen_preserves_store() {
        let (mut pm, mut kv, region, _cfg) = setup(100);
        kv.set(&mut pm, b"alpha", b"1").unwrap();
        kv.set(&mut pm, b"beta", b"2").unwrap();
        drop(kv);
        let kv2 = PmemKv::open(&mut pm, region).unwrap();
        assert_eq!(kv2.get(&pm, b"alpha").as_deref(), Some(&b"1"[..]));
        assert_eq!(kv2.len(&pm), 2);
        kv2.check_consistency(&pm).unwrap();
    }

    #[test]
    fn gc_reclaims_orphans() {
        let (mut pm, mut kv, _, _) = setup(100);
        kv.set(&mut pm, b"live", b"v").unwrap();
        // Fabricate a leak: allocate directly in the heap, bypassing the
        // index (exactly the state a crash between blob and index commit
        // leaves behind).
        kv.heap.alloc(&mut pm, b"orphan").unwrap();
        assert_eq!(kv.usage(&pm), (1, 2));
        assert_eq!(kv.gc(&mut pm), 1);
        assert_eq!(kv.usage(&pm), (1, 1));
        assert_eq!(kv.get(&pm, b"live").as_deref(), Some(&b"v"[..]));
        kv.check_consistency(&pm).unwrap();
    }

    #[test]
    fn crash_anywhere_in_set_update_delete_is_safe() {
        use nvm_pmem::{run_with_crash, CrashPlan};
        let (mut pm0, mut kv0, region, _cfg) = setup(64);
        kv0.set(&mut pm0, b"stable", b"rock").unwrap();
        kv0.set(&mut pm0, b"victim", b"old-value").unwrap();

        // Three in-flight ops to crash: fresh set, update, delete.
        type OpFn = fn(&mut PmemKv<SimPmem>, &mut SimPmem);
        let ops: [(&str, OpFn); 3] = [
            ("set-new", |kv, pm| kv.set(pm, b"fresh", b"new").unwrap()),
            ("update", |kv, pm| {
                kv.set(pm, b"victim", b"new-value").unwrap()
            }),
            ("delete", |kv, pm| {
                assert!(kv.delete(pm, b"victim"));
            }),
        ];
        for (name, op) in ops {
            let mut at = 0u64;
            loop {
                let mut pm = pm0.clone();
                let mut kv = PmemKv::open(&mut pm, region).unwrap();
                let base = pm.events();
                pm.set_crash_plan(Some(CrashPlan {
                    at_event: base + at,
                }));
                let done = run_with_crash(|| op(&mut kv, &mut pm)).is_ok();
                pm.crash(CrashResolution::Random(at));

                let mut kv = PmemKv::open(&mut pm, region).unwrap();
                let leaks = kv.recover(&mut pm);
                kv.check_consistency(&pm)
                    .unwrap_or_else(|e| panic!("{name} crash at +{at}: {e}"));
                // Stable entry always intact.
                assert_eq!(
                    kv.get(&pm, b"stable").as_deref(),
                    Some(&b"rock"[..]),
                    "{name} at +{at}"
                );
                // The targeted key is in a sane pre- or post-state.
                match name {
                    "set-new" => {
                        let got = kv.get(&pm, b"fresh");
                        assert!(
                            got.is_none() || got.as_deref() == Some(b"new"),
                            "{name} at +{at}: {got:?}"
                        );
                    }
                    "update" => {
                        let got = kv.get(&pm, b"victim");
                        assert!(
                            got.as_deref() == Some(b"old-value")
                                || got.as_deref() == Some(b"new-value"),
                            "{name} at +{at}: {got:?}"
                        );
                    }
                    "delete" => {
                        let got = kv.get(&pm, b"victim");
                        assert!(
                            got.is_none() || got.as_deref() == Some(b"old-value"),
                            "{name} at +{at}: {got:?}"
                        );
                    }
                    _ => unreachable!(),
                }
                // After recovery there are never leaks left behind.
                let (entries, slots) = kv.usage(&pm);
                assert_eq!(entries, slots, "{name} at +{at}: leak survived gc ({leaks})");
                if done {
                    break;
                }
                at += 1;
                assert!(at < 300, "{name}: op never completed");
            }
        }
    }

    #[test]
    fn crash_anywhere_during_set_batch_recovers_leaks() {
        use nvm_pmem::{run_with_crash, CrashPlan};
        let (mut pm0, mut kv0, region, _cfg) = setup(128);
        kv0.set(&mut pm0, b"stable", b"rock").unwrap();
        kv0.set(&mut pm0, b"upd-a", b"old-a").unwrap();
        kv0.set(&mut pm0, b"upd-b", b"old-b").unwrap();
        drop(kv0);

        // Fresh inserts, two updates, and an in-batch duplicate: every
        // branch of the two-stage (blobs first, grouped index commit
        // second) choreography gets a crash window.
        let fresh: Vec<(Vec<u8>, Vec<u8>)> = (0..6u32)
            .map(|i| (format!("bf-{i}").into_bytes(), vec![0x40 + i as u8; 24]))
            .collect();
        let mut items: Vec<(&[u8], &[u8])> = fresh
            .iter()
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
            .collect();
        items.push((b"upd-a", b"new-a"));
        items.push((b"upd-b", b"new-b"));
        items.push((b"dupk", b"first"));
        items.push((b"dupk", b"second"));

        let mut at = 0u64;
        loop {
            let mut pm = pm0.clone();
            let mut kv = PmemKv::open(&mut pm, region).unwrap();
            let base = pm.events();
            pm.set_crash_plan(Some(CrashPlan {
                at_event: base + at,
            }));
            let done = run_with_crash(|| kv.set_batch(&mut pm, &items).unwrap()).is_ok();
            pm.crash(CrashResolution::Random(at));

            let mut kv = PmemKv::open(&mut pm, region).unwrap();
            let leaks = kv.recover(&mut pm);
            kv.check_consistency(&pm)
                .unwrap_or_else(|e| panic!("crash at +{at}: {e}"));
            assert_eq!(
                kv.get(&pm, b"stable").as_deref(),
                Some(&b"rock"[..]),
                "at +{at}"
            );
            // Every batch key is in a sane pre- or post-state; torn
            // values never surface.
            for (i, (k, _)) in fresh.iter().enumerate() {
                let got = kv.get(&pm, k);
                assert!(
                    got.is_none() || got.as_deref() == Some(&[0x40 + i as u8; 24][..]),
                    "bf-{i} at +{at}: {got:?}"
                );
            }
            for (k, old, new) in [
                (&b"upd-a"[..], &b"old-a"[..], &b"new-a"[..]),
                (&b"upd-b"[..], &b"old-b"[..], &b"new-b"[..]),
            ] {
                let got = kv.get(&pm, k);
                assert!(
                    got.as_deref() == Some(old) || got.as_deref() == Some(new),
                    "update at +{at}: {got:?}"
                );
            }
            // In-batch last-write-wins resolves in DRAM before the index
            // commit, so the first duplicate's value is never visible.
            let got = kv.get(&pm, b"dupk");
            assert!(
                got.is_none() || got.as_deref() == Some(b"second"),
                "dupk at +{at}: {got:?}"
            );
            // The recovery sweep reclaimed every blob the index can't
            // reach: committed blobs awaiting their index entry, new
            // update blobs never swapped in, old update blobs never
            // freed.
            let (entries, slots) = kv.usage(&pm);
            assert_eq!(
                entries, slots,
                "at +{at}: leak survived recovery (reclaimed {leaks})"
            );

            // Re-running the batch converges on the post state.
            kv.set_batch(&mut pm, &items).unwrap();
            for (i, (k, _)) in fresh.iter().enumerate() {
                assert_eq!(kv.get(&pm, k), Some(vec![0x40 + i as u8; 24]), "at +{at}");
            }
            assert_eq!(kv.get(&pm, b"upd-a").as_deref(), Some(&b"new-a"[..]));
            assert_eq!(kv.get(&pm, b"dupk").as_deref(), Some(&b"second"[..]));
            kv.check_consistency(&pm).unwrap();
            let (entries, slots) = kv.usage(&pm);
            assert_eq!(entries, slots, "at +{at}: leak after replay");

            if done {
                break;
            }
            at += 1;
            assert!(at < 5000, "set_batch never completed");
        }
    }

    #[test]
    fn crash_anywhere_during_gc_step_is_safe() {
        use nvm_pmem::{run_with_crash, CrashPlan};
        let (mut pm0, mut kv0, region, _cfg) = setup(96);
        // Live entries, then churn: delete most of them so slabs go
        // sparse and the drainer's compactor has real work to do.
        let n = 24u32;
        for i in 0..n {
            kv0.set(&mut pm0, format!("gk-{i}").as_bytes(), &[i as u8; 20])
                .unwrap();
        }
        let survivors: Vec<u32> = (0..n).filter(|i| i % 6 == 0).collect();
        for i in 0..n {
            if !survivors.contains(&i) {
                assert!(kv0.delete(&mut pm0, format!("gk-{i}").as_bytes()));
            }
        }
        // Fabricate leaked blobs — both well-formed KV records whose keys
        // the index never saw, and raw garbage that doesn't even decode —
        // exactly what crashed writers leave behind.
        for i in 0..4u32 {
            kv0.heap
                .alloc(&mut pm0, &encode_blob(format!("ghost-{i}").as_bytes(), &[0xEE; 12]))
                .unwrap();
        }
        kv0.heap.alloc(&mut pm0, b"not a kv record").unwrap();
        let (entries0, slots0) = kv0.usage(&pm0);
        assert_eq!(entries0, survivors.len() as u64);
        assert_eq!(slots0, entries0 + 5, "fixture must start leaky");
        drop(kv0);

        let mut at = 0u64;
        loop {
            let mut pm = pm0.clone();
            let mut kv = PmemKv::open(&mut pm, region).unwrap();
            let base = pm.events();
            pm.set_crash_plan(Some(CrashPlan {
                at_event: base + at,
            }));
            let done = run_with_crash(|| {
                while kv.gc_step(&mut pm, 4).unwrap() {}
            })
            .is_ok();
            pm.crash(CrashResolution::Random(at));

            // A crash mid-compaction may leave the moved blob's old or
            // new copy unreferenced; recovery resumes the persisted
            // cursor, finishes the pass, and sweeps again.
            let mut kv = PmemKv::open(&mut pm, region).unwrap();
            kv.recover(&mut pm);
            assert!(!kv.gc_pending(&pm), "pass still pending at +{at}");
            kv.check_consistency(&pm)
                .unwrap_or_else(|e| panic!("crash at +{at}: {e}"));
            for &i in &survivors {
                assert_eq!(
                    kv.get(&pm, format!("gk-{i}").as_bytes()),
                    Some(vec![i as u8; 20]),
                    "gk-{i} lost at +{at}"
                );
            }
            assert_eq!(kv.len(&pm), survivors.len() as u64, "at +{at}");
            let (entries, slots) = kv.usage(&pm);
            assert_eq!(entries, slots, "at +{at}: GC crash left a permanent leak");

            if done {
                break;
            }
            at += 1;
            assert!(at < 5000, "gc pass never completed");
        }
    }

    #[test]
    fn read_view_matches_engine_reads() {
        let (mut pm, mut kv, _, _) = setup(200);
        for i in 0..100u32 {
            kv.set(&mut pm, format!("rv-{i}").as_bytes(), &[i as u8; 12])
                .unwrap();
        }
        let view = kv.read_view();
        let reader = pm.read_handle();
        for i in 0..100u32 {
            let key = format!("rv-{i}");
            assert_eq!(
                view.get(&reader, key.as_bytes()),
                kv.get(&pm, key.as_bytes()),
                "{key}"
            );
            assert!(view.contains(&reader, key.as_bytes()));
        }
        assert_eq!(view.get(&reader, b"absent"), None);
        // The view tracks later mutations (it holds layout, not bytes).
        assert!(kv.delete(&mut pm, b"rv-0"));
        assert_eq!(view.get(&reader, b"rv-0"), None);
    }

    #[test]
    fn get_batch_matches_sequential_gets() {
        let (mut pm, mut kv, _, _) = setup_avg(300, 64);
        for i in 0..200u32 {
            kv.set(&mut pm, format!("mb-{i}").as_bytes(), &vec![i as u8; (i % 90) as usize])
                .unwrap();
        }
        let owned: Vec<Vec<u8>> = (0..260u32) // 200.. miss
            .map(|i| format!("mb-{i}").into_bytes())
            .chain([b"mb-7".to_vec()]) // duplicate
            .collect();
        let keys: Vec<&[u8]> = owned.iter().map(|k| k.as_slice()).collect();
        let batch = kv.get_batch(&pm, &keys);
        assert_eq!(batch.len(), keys.len());
        for (key, got) in keys.iter().zip(&batch) {
            assert_eq!(*got, kv.get(&pm, key));
        }
        // The read view agrees, through a bare read handle.
        let view = kv.read_view();
        let reader = pm.read_handle();
        assert_eq!(view.get_batch(&reader, &keys), batch);
        assert!(kv.get_batch(&pm, &[]).is_empty());
        // A pure read: the batch added no persistence events.
        pm.reset_stats();
        let _ = kv.get_batch(&pm, &keys);
        let s = pm.stats();
        assert_eq!(
            (s.flushes, s.fences, s.atomic_writes, s.writes),
            (0, 0, 0, 0)
        );
    }

    #[test]
    fn empty_keys_and_values() {
        let (mut pm, mut kv, _, _) = setup(32);
        kv.set(&mut pm, b"", b"empty-key").unwrap();
        kv.set(&mut pm, b"empty-value", b"").unwrap();
        assert_eq!(kv.get(&pm, b"").as_deref(), Some(&b"empty-key"[..]));
        assert_eq!(kv.get(&pm, b"empty-value").as_deref(), Some(&b""[..]));
        kv.check_consistency(&pm).unwrap();
    }

    #[test]
    fn index_full_is_clean() {
        let cfg = KvConfig {
            index_cells_per_level: 16,
            group_size: 16,
            heap_bytes: 64 * 1024,
            seed: 1,
            fp: FpMode::default(),
            consistency: ConsistencyMode::default(),
        };
        let size = PmemKv::<SimPmem>::required_size(&cfg);
        let mut pm = SimPmem::new(size, SimConfig::fast_test());
        let mut kv = PmemKv::create(&mut pm, Region::new(0, size), &cfg).unwrap();
        let mut stored = 0;
        let mut full = false;
        for i in 0..200u32 {
            match kv.set(&mut pm, format!("k{i}").as_bytes(), b"v") {
                Ok(()) => stored += 1,
                Err(KvError::IndexFull) => {
                    full = true;
                    break;
                }
                Err(e) => panic!("{e}"),
            }
        }
        assert!(full, "tiny index never filled ({stored} stored)");
        // The failed insert must not leak its blob.
        let (entries, slots) = kv.usage(&pm);
        assert_eq!(entries, slots);
        kv.check_consistency(&pm).unwrap();
    }
}
