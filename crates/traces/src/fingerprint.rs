//! The *Fingerprint* trace (paper §4.1) — synthetic equivalent.
//!
//! The paper uses 16-byte MD5 fingerprints of files from daily snapshots
//! of a Mac OS X server (the FSL dedup corpus, Tarasov et al. ATC'12);
//! items are 32 bytes. We regenerate the key *shape* faithfully: keys are
//! genuine MD5 digests — computed with this workspace's own RFC 1321
//! implementation — of synthetic file identities drawn from a simulated
//! snapshot series (host, path id, content version). Cryptographic
//! digests of distinct inputs are uniformly distributed 16-byte strings,
//! exactly like the original trace's keys.
//!
//! The generator models a snapshot server: most files persist unchanged
//! across snapshots (same digest — skipped by the dedup layer, i.e. our
//! dedup filter), a fraction are modified (new version ⇒ new digest), and
//! new files appear. Only first-seen digests are emitted, matching a
//! dedup index's insert stream.

use crate::Trace;
use nvm_hashfn::md5;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;

/// Synthetic file-snapshot MD5 fingerprint stream (16-byte keys).
#[derive(Debug, Clone)]
pub struct Fingerprint {
    rng: ChaCha8Rng,
    emitted: HashSet<[u8; 16]>,
    /// Next fresh file id.
    next_file: u64,
    /// Live files as (file_id, version).
    live: Vec<(u64, u32)>,
    /// Queue of digests to emit.
    pending: Vec<[u8; 16]>,
}

impl Fingerprint {
    /// Fraction of live files modified per simulated snapshot.
    const MODIFY_RATE: f64 = 0.05;
    /// New files added per snapshot, as a fraction of live files.
    const GROWTH_RATE: f64 = 0.10;
    /// Files in the first snapshot.
    const INITIAL_FILES: usize = 4096;

    pub fn new(seed: u64) -> Self {
        Fingerprint {
            rng: ChaCha8Rng::seed_from_u64(seed),
            emitted: HashSet::new(),
            next_file: 0,
            live: Vec::new(),
            pending: Vec::new(),
        }
    }

    fn digest_of(file: u64, version: u32) -> [u8; 16] {
        let mut ident = [0u8; 20];
        ident[..8].copy_from_slice(&file.to_le_bytes());
        ident[8..12].copy_from_slice(&version.to_le_bytes());
        ident[12..].copy_from_slice(b"osxsnap\0");
        md5(&ident)
    }

    fn add_file(&mut self) {
        let f = self.next_file;
        self.next_file += 1;
        self.live.push((f, 0));
        self.pending.push(Self::digest_of(f, 0));
    }

    /// Simulates one snapshot: grow, modify, enqueue the *new* digests.
    fn next_snapshot(&mut self) {
        if self.live.is_empty() {
            for _ in 0..Self::INITIAL_FILES {
                self.add_file();
            }
            return;
        }
        let grow = ((self.live.len() as f64 * Self::GROWTH_RATE) as usize).max(1);
        for _ in 0..grow {
            self.add_file();
        }
        let n = self.live.len();
        let modify = ((n as f64 * Self::MODIFY_RATE) as usize).max(1);
        for _ in 0..modify {
            let i = self.rng.gen_range(0..n);
            let (f, v) = self.live[i];
            self.live[i] = (f, v + 1);
            self.pending.push(Self::digest_of(f, v + 1));
        }
    }
}

impl Trace for Fingerprint {
    type Key = [u8; 16];

    fn name(&self) -> &'static str {
        "Fingerprint"
    }

    fn next_key(&mut self) -> [u8; 16] {
        loop {
            if let Some(d) = self.pending.pop() {
                if self.emitted.insert(d) {
                    return d;
                }
                continue; // dedup: already-seen digest
            }
            self.next_snapshot();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_distinct_md5_digests() {
        let mut t = Fingerprint::new(3);
        let keys = t.take_keys(20_000);
        let set: HashSet<[u8; 16]> = keys.iter().copied().collect();
        assert_eq!(set.len(), keys.len());
    }

    #[test]
    fn digests_match_md5_of_identity() {
        // Spot-check the construction against a direct MD5 call.
        let d = Fingerprint::digest_of(42, 7);
        let mut ident = [0u8; 20];
        ident[..8].copy_from_slice(&42u64.to_le_bytes());
        ident[8..12].copy_from_slice(&7u32.to_le_bytes());
        ident[12..].copy_from_slice(b"osxsnap\0");
        assert_eq!(d, md5(&ident));
    }

    #[test]
    fn digest_bytes_look_uniform() {
        // Each of the 16 byte positions should use the full byte range.
        let mut t = Fingerprint::new(4);
        let keys = t.take_keys(8_000);
        for pos in 0..16 {
            let distinct: HashSet<u8> = keys.iter().map(|k| k[pos]).collect();
            assert!(distinct.len() > 200, "byte {pos}: {} values", distinct.len());
        }
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(
            Fingerprint::new(11).take_keys(1000),
            Fingerprint::new(11).take_keys(1000)
        );
    }

    #[test]
    fn snapshots_mix_new_and_modified() {
        let mut t = Fingerprint::new(5);
        // Drain several snapshots; file ids must grow and versions churn.
        let _ = t.take_keys(30_000);
        assert!(t.next_file > Fingerprint::INITIAL_FILES as u64);
        assert!(t.live.iter().any(|&(_, v)| v > 0), "no file ever modified");
    }
}
